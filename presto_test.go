package presto_test

import (
	"strings"
	"testing"

	"presto"
)

const facadeSrc = `
aggregate V[] { float x; float y; }
parallel func produce(parallel g: V) { g.x = #0; }
parallel func consume(parallel g: V) { g.y = g[#0+1].x + g[#0-1].x; }
func main() {
  let g = V[128];
  for it in 0..6 {
    produce(g);
    consume(g);
  }
  let total = reduce(+, g.y);
}
`

func TestFacadeCompileExecute(t *testing.T) {
	a, err := presto.Compile(facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.Report(), "pre-send directive") {
		t.Fatal("report missing directives")
	}
	r, err := presto.Execute(a, presto.ExecuteOptions{
		Machine: presto.Config{Nodes: 8, BlockSize: 32, Protocol: presto.Predictive},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Scalars["total"] == 0 {
		t.Fatal("zero checksum")
	}
	if r.Counters.PresendsSent == 0 {
		t.Fatal("no pre-sends under the predictive protocol")
	}
	if viol := presto.CheckCoherence(r.Machine); len(viol) > 0 {
		t.Fatalf("coherence: %v", viol)
	}
}

func TestFacadeMachineAPI(t *testing.T) {
	m := presto.NewMachine(presto.Config{Nodes: 4, BlockSize: 32, Protocol: presto.Stache})
	arr := m.NewArray1D("data", 16, 1, false)
	if err := m.Run(func(w *presto.Worker) {
		lo, hi := arr.MyRange(w)
		for i := lo; i < hi; i++ {
			w.WriteF64(arr.At(i, 0), float64(i))
		}
		w.Barrier()
		sum := 0.0
		for i := 0; i < arr.N; i++ {
			sum += w.ReadF64(arr.At(i, 0))
		}
		if sum != 120 {
			t.Errorf("sum = %v", sum)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if m.Elapsed() == 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestFacadeApplications(t *testing.T) {
	w, err := presto.RunWater(presto.WaterConfig{
		Machine:   presto.Config{Nodes: 4, BlockSize: 32, Protocol: presto.Predictive},
		Molecules: 32, Steps: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Energy == 0 {
		t.Fatal("water energy zero")
	}
	ad, err := presto.RunAdaptive(presto.AdaptiveConfig{
		Machine: presto.Config{Nodes: 4, BlockSize: 32},
		Size:    16, Iters: 6, RefineEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ad.Checksum == 0 {
		t.Fatal("adaptive checksum zero")
	}
	ba, err := presto.RunBarnes(presto.BarnesConfig{
		Machine: presto.Config{Nodes: 4, BlockSize: 32},
		Bodies:  128, Iters: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ba.Cells == 0 {
		t.Fatal("barnes built no cells")
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	exps := presto.Experiments()
	if len(exps) < 9 {
		t.Fatalf("experiments = %d", len(exps))
	}
	e, ok := presto.ExperimentByID("figure4")
	if !ok {
		t.Fatal("figure4 missing")
	}
	res, err := presto.RunExperiment(e, presto.ExperimentOptions{Scale: presto.QuickScale})
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "figure4" {
		t.Fatalf("result id = %s", res.ID)
	}
	if _, ok := presto.ExperimentByID("nope"); ok {
		t.Fatal("bogus experiment found")
	}
}
