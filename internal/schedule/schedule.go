// Package schedule implements the communication schedules built by the
// predictive protocol (paper §3.3).
//
// A schedule is kept per compiler-identified parallel phase, at each home
// node, and records — for every cache block that required communication
// due to a faulting access — whether the block was read or written and by
// which processors. Blocks both read and written within one phase are
// marked as conflicts (false sharing or conflicting parallel tasks) and
// are not pre-sent. Schedules grow incrementally: requests not anticipated
// by the pre-send phase fault as usual and extend the schedule for
// subsequent iterations; deletions are not tracked (a Flush rebuilds from
// scratch).
//
// Entries live in a dense paged block-state table (internal/blockstate),
// which keeps them in block order by construction: the pre-send walk
// iterates a cached, already-ordered slice with zero allocation and no
// per-walk sort.
package schedule

import (
	"sort"

	"presto/internal/blockstate"
	"presto/internal/memory"
	"presto/internal/tempest"
)

// Mode classifies a scheduled block within one phase.
type Mode uint8

const (
	// ModeRead blocks were only read remotely in the phase; the pre-send
	// phase forwards read-only copies to all recorded readers.
	ModeRead Mode = iota
	// ModeWrite blocks were only written in the phase; the pre-send phase
	// invalidates stale copies and forwards a writable copy to the
	// recorded writer.
	ModeWrite
	// ModeConflict blocks were both read and written within the phase;
	// they are recorded but not pre-sent (paper §3.4).
	ModeConflict
)

func (m Mode) String() string {
	switch m {
	case ModeRead:
		return "read"
	case ModeWrite:
		return "write"
	case ModeConflict:
		return "conflict"
	}
	return "mode?"
}

// Entry is one block's record within a phase schedule.
type Entry struct {
	Block   memory.Block
	Mode    Mode
	Readers tempest.Bitset // recorded readers (ModeRead)
	Writer  int            // last recorded writer (ModeWrite)

	// FirstMode, FirstReaders and FirstWriter freeze the entry as it was
	// before it became a conflict — the paper's suggested (future work)
	// policy of anticipating the first stable state.
	FirstMode    Mode
	FirstReaders tempest.Bitset
	FirstWriter  int
}

// Phase is the incremental communication schedule of one parallel phase
// at one home node.
type Phase struct {
	ID int

	tab blockstate.Store[Entry]
	// cache is the block-ordered entry slice handed out by Entries(),
	// rebuilt lazily after a record invalidates it. Entry pointers are
	// stable (blockstate slots never move), so the cache survives
	// in-place mutation of existing entries.
	cache   []*Entry
	cacheOK bool
}

// NewPhase returns an empty schedule for the given phase ID.
func NewPhase(as *memory.AddressSpace, id int, kind blockstate.Kind) *Phase {
	return &Phase{ID: id, tab: blockstate.New[Entry](as, kind)}
}

// Len reports the number of scheduled blocks.
func (p *Phase) Len() int { return p.tab.Len() }

// Empty reports whether the schedule has no entries.
func (p *Phase) Empty() bool { return p.tab.Len() == 0 }

// Lookup returns the entry for b, or nil.
func (p *Phase) Lookup(b memory.Block) *Entry { return p.tab.Get(b) }

// RecordRead notes a faulting read of b by reader. It returns true when
// this record turned the entry into a conflict.
func (p *Phase) RecordRead(b memory.Block, reader int) (becameConflict bool) {
	e, created := p.tab.Ensure(b)
	if created {
		e.Block = b
		e.Mode = ModeRead
		e.Writer = -1
		e.FirstWriter = -1
		e.Readers.Add(reader)
		p.cacheOK = false
		return false
	}
	switch e.Mode {
	case ModeRead:
		e.Readers.Add(reader)
	case ModeWrite:
		e.freeze()
		e.Mode = ModeConflict
		return true
	}
	return false
}

// RecordWrite notes a faulting write of b by writer. It returns true when
// this record turned the entry into a conflict.
func (p *Phase) RecordWrite(b memory.Block, writer int) (becameConflict bool) {
	e, created := p.tab.Ensure(b)
	if created {
		e.Block = b
		e.Mode = ModeWrite
		e.Writer = writer
		e.FirstWriter = -1
		p.cacheOK = false
		return false
	}
	switch e.Mode {
	case ModeWrite:
		e.Writer = writer // migratory: last writer wins
	case ModeRead:
		e.freeze()
		e.Mode = ModeConflict
		return true
	}
	return false
}

// freeze captures the pre-conflict stable state.
func (e *Entry) freeze() {
	e.FirstMode = e.Mode
	e.FirstReaders = e.Readers.Clone() // snapshot must survive later records
	e.FirstWriter = e.Writer
}

// Entries returns the schedule's entries in ascending block order — the
// deterministic pre-send walk order, which also makes contiguous blocks
// adjacent for coalescing. The slice is cached and rebuilt only after new
// blocks were recorded, so the repeated-walk path performs no allocation
// and no sort; callers must not retain it across records.
func (p *Phase) Entries() []*Entry {
	if !p.cacheOK {
		p.cache = p.cache[:0]
		p.tab.ForEach(func(_ memory.Block, e *Entry) {
			p.cache = append(p.cache, e)
		})
		p.cacheOK = true
	}
	return p.cache
}

// Conflicts reports the number of conflict entries.
func (p *Phase) Conflicts() int {
	c := 0
	p.tab.ForEach(func(_ memory.Block, e *Entry) {
		if e.Mode == ModeConflict {
			c++
		}
	})
	return c
}

// Table holds one home node's schedules for all phases.
type Table struct {
	as     *memory.AddressSpace
	kind   blockstate.Kind
	phases map[int]*Phase
}

// NewTable returns an empty schedule table whose phases store entries in
// the given block-state backend.
func NewTable(as *memory.AddressSpace, kind blockstate.Kind) *Table {
	return &Table{as: as, kind: kind, phases: make(map[int]*Phase)}
}

// Phase returns the schedule for id, creating it if absent.
func (t *Table) Phase(id int) *Phase {
	p := t.phases[id]
	if p == nil {
		p = NewPhase(t.as, id, t.kind)
		t.phases[id] = p
	}
	return p
}

// Lookup returns the schedule for id, or nil.
func (t *Table) Lookup(id int) *Phase { return t.phases[id] }

// Flush discards the schedule for phase id (it will be rebuilt
// incrementally from faults) — the paper's remedy for patterns with many
// deletions.
func (t *Table) Flush(id int) { delete(t.phases, id) }

// FlushAll discards every schedule.
func (t *Table) FlushAll() { t.phases = make(map[int]*Phase) }

// ForEach visits every phase schedule in ascending phase-ID order
// (deterministic — state hashing and reporting).
func (t *Table) ForEach(fn func(p *Phase)) {
	ids := make([]int, 0, len(t.phases))
	for id := range t.phases {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fn(t.phases[id])
	}
}

// Blocks reports the total number of scheduled blocks across phases.
func (t *Table) Blocks() int {
	n := 0
	for _, p := range t.phases {
		n += p.Len()
	}
	return n
}
