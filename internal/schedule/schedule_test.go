package schedule

import (
	"testing"
	"testing/quick"

	"presto/internal/blockstate"
	"presto/internal/memory"
)

func blk(i int) memory.Block { return memory.Block(i * 32) }

func schedAS() *memory.AddressSpace {
	as := memory.NewAddressSpace(2, 32)
	as.NewRegion("r", 1<<16, func(b int64) int { return int(b % 2) })
	return as
}

var kinds = []blockstate.Kind{blockstate.Dense, blockstate.MapRef}

func newPhase(id int, kind blockstate.Kind) *Phase {
	return NewPhase(schedAS(), id, kind)
}

func forKinds(t *testing.T, f func(t *testing.T, kind blockstate.Kind)) {
	for _, kind := range kinds {
		t.Run(string(kind), func(t *testing.T) { f(t, kind) })
	}
}

func TestRecordReadAccumulatesReaders(t *testing.T) {
	forKinds(t, func(t *testing.T, kind blockstate.Kind) {
		p := newPhase(1, kind)
		p.RecordRead(blk(0), 2)
		p.RecordRead(blk(0), 5)
		e := p.Lookup(blk(0))
		if e == nil || e.Mode != ModeRead {
			t.Fatalf("entry = %+v", e)
		}
		if !e.Readers.Has(2) || !e.Readers.Has(5) || e.Readers.Count() != 2 {
			t.Fatalf("readers = %v", e.Readers)
		}
	})
}

func TestRecordWriteLastWriterWins(t *testing.T) {
	forKinds(t, func(t *testing.T, kind blockstate.Kind) {
		p := newPhase(1, kind)
		p.RecordWrite(blk(0), 1)
		p.RecordWrite(blk(0), 3)
		e := p.Lookup(blk(0))
		if e.Mode != ModeWrite || e.Writer != 3 {
			t.Fatalf("entry = %+v", e)
		}
	})
}

func TestReadThenWriteConflicts(t *testing.T) {
	forKinds(t, func(t *testing.T, kind blockstate.Kind) {
		p := newPhase(1, kind)
		p.RecordRead(blk(0), 1)
		if became := p.RecordWrite(blk(0), 2); !became {
			t.Fatal("expected conflict transition")
		}
		e := p.Lookup(blk(0))
		if e.Mode != ModeConflict {
			t.Fatalf("mode = %v", e.Mode)
		}
		if e.FirstMode != ModeRead || !e.FirstReaders.Has(1) {
			t.Fatalf("first state not frozen: %+v", e)
		}
	})
}

func TestWriteThenReadConflicts(t *testing.T) {
	forKinds(t, func(t *testing.T, kind blockstate.Kind) {
		p := newPhase(1, kind)
		p.RecordWrite(blk(0), 2)
		if became := p.RecordRead(blk(0), 1); !became {
			t.Fatal("expected conflict transition")
		}
		e := p.Lookup(blk(0))
		if e.FirstMode != ModeWrite || e.FirstWriter != 2 {
			t.Fatalf("first state = %+v", e)
		}
		// Further records keep the conflict and report no new transition.
		if p.RecordRead(blk(0), 3) || p.RecordWrite(blk(0), 4) {
			t.Fatal("conflict re-transitioned")
		}
		if p.Conflicts() != 1 {
			t.Fatalf("conflicts = %d", p.Conflicts())
		}
	})
}

func TestEntriesSortedByBlock(t *testing.T) {
	forKinds(t, func(t *testing.T, kind blockstate.Kind) {
		p := newPhase(1, kind)
		for _, i := range []int{5, 1, 3, 2} {
			p.RecordRead(blk(i), 0)
		}
		es := p.Entries()
		if len(es) != 4 {
			t.Fatalf("len = %d, want 4", len(es))
		}
		for i := 1; i < len(es); i++ {
			if es[i-1].Block >= es[i].Block {
				t.Fatalf("not sorted: %v", es)
			}
		}
	})
}

func TestEntriesCacheInvalidation(t *testing.T) {
	forKinds(t, func(t *testing.T, kind blockstate.Kind) {
		p := newPhase(1, kind)
		p.RecordRead(blk(2), 0)
		first := p.Entries()
		if len(first) != 1 {
			t.Fatalf("len = %d, want 1", len(first))
		}
		// Mutating an existing entry must not require a rebuild: the cached
		// pointers see it in place.
		p.RecordRead(blk(2), 1)
		if got := p.Entries(); len(got) != 1 || !got[0].Readers.Has(1) {
			t.Fatalf("in-place mutation lost: %+v", got)
		}
		// A new block invalidates the cache.
		p.RecordWrite(blk(0), 3)
		es := p.Entries()
		if len(es) != 2 || es[0].Block != blk(0) || es[1].Block != blk(2) {
			t.Fatalf("cache not rebuilt in order: %v", es)
		}
	})
}

func TestTablePhaseIsolationAndFlush(t *testing.T) {
	forKinds(t, func(t *testing.T, kind blockstate.Kind) {
		tb := NewTable(schedAS(), kind)
		tb.Phase(1).RecordRead(blk(0), 1)
		tb.Phase(2).RecordWrite(blk(0), 2)
		if tb.Phase(1).Lookup(blk(0)).Mode != ModeRead {
			t.Fatal("phase 1 polluted")
		}
		if tb.Phase(2).Lookup(blk(0)).Mode != ModeWrite {
			t.Fatal("phase 2 polluted")
		}
		if tb.Blocks() != 2 {
			t.Fatalf("blocks = %d", tb.Blocks())
		}
		tb.Flush(1)
		if tb.Lookup(1) != nil {
			t.Fatal("flush failed")
		}
		if tb.Lookup(2) == nil {
			t.Fatal("flush removed wrong phase")
		}
		tb.FlushAll()
		if tb.Blocks() != 0 {
			t.Fatal("FlushAll failed")
		}
	})
}

func TestIncrementalGrowth(t *testing.T) {
	forKinds(t, func(t *testing.T, kind blockstate.Kind) {
		// New faults extend an existing schedule (adaptive applications).
		p := newPhase(7, kind)
		p.RecordRead(blk(0), 1)
		if p.Len() != 1 {
			t.Fatal("len")
		}
		p.RecordRead(blk(1), 2)
		p.RecordRead(blk(0), 3) // extends reader set, not entry count
		if p.Len() != 2 {
			t.Fatalf("len = %d, want 2", p.Len())
		}
		if p.Lookup(blk(0)).Readers.Count() != 2 {
			t.Fatal("reader set not extended")
		}
	})
}

// Property: regardless of the interleaving of read/write records, an entry
// that saw both kinds is a conflict, one that saw only reads is ModeRead
// with all readers recorded, and one that saw only writes is ModeWrite.
func TestModeClassificationProperty(t *testing.T) {
	forKinds(t, func(t *testing.T, kind blockstate.Kind) {
		as := schedAS()
		f := func(ops []bool, nodes []uint8) bool {
			if len(ops) > 20 {
				ops = ops[:20]
			}
			p := NewPhase(as, 0, kind)
			sawRead, sawWrite := false, false
			for i, isWrite := range ops {
				node := 0
				if len(nodes) > 0 {
					node = int(nodes[i%len(nodes)]) % 32
				}
				if isWrite {
					p.RecordWrite(blk(0), node)
					sawWrite = true
				} else {
					p.RecordRead(blk(0), node)
					sawRead = true
				}
			}
			if len(ops) == 0 {
				return p.Empty()
			}
			e := p.Lookup(blk(0))
			switch {
			case sawRead && sawWrite:
				return e.Mode == ModeConflict
			case sawRead:
				return e.Mode == ModeRead
			default:
				return e.Mode == ModeWrite
			}
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatal(err)
		}
	})
}

// TestEntriesRepeatWalkZeroAlloc is the regression guard for the cached
// pre-send walk: once the schedule is stable, repeated Entries() calls must
// not allocate. This is the property BenchmarkEntriesRepeatWalk measures
// and the CI bench-regression job gates on.
func TestEntriesRepeatWalkZeroAlloc(t *testing.T) {
	p := newPhase(1, blockstate.Dense)
	for i := 0; i < 512; i++ {
		p.RecordRead(blk(i), i%4)
	}
	p.Entries() // build the cache once
	allocs := testing.AllocsPerRun(100, func() {
		es := p.Entries()
		for _, e := range es {
			_ = e.Mode
		}
	})
	if allocs != 0 {
		t.Fatalf("repeated Entries() walk allocates %v/op, want 0", allocs)
	}
}

// BenchmarkEntriesRepeatWalk measures the steady-state pre-send walk over a
// 512-entry schedule: iterate the cached block-ordered slice.
func BenchmarkEntriesRepeatWalk(b *testing.B) {
	p := newPhase(1, blockstate.Dense)
	for i := 0; i < 512; i++ {
		p.RecordRead(blk(i), i%4)
	}
	p.Entries()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, e := range p.Entries() {
			if e.Mode != ModeConflict {
				n++
			}
		}
		if n != 512 {
			b.Fatal(n)
		}
	}
}
