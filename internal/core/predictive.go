// Package core implements the paper's primary contribution: the
// predictive cache-coherence protocol (paper §3).
//
// The protocol augments Stache in two parts. While a compiler-identified
// parallel phase executes, home-node handlers record every faulting
// read/write request into that phase's communication schedule
// (internal/schedule). When the phase is entered again in a later
// iteration, a compiler-placed directive triggers the pre-send phase: each
// home node walks its schedule and transfers data early — forwarding
// read-only copies to recorded readers (invalidating a current writer
// first) and writable copies to the recorded writer (invalidating current
// readers first). Neighboring blocks destined for the same node are
// coalesced into bulk messages to amortize message startup costs, and a
// global barrier after the pre-send ensures all block states are stable
// before the phase's computation begins (§3.4).
//
// Schedules are incremental: faults not anticipated by the pre-send extend
// the schedule for subsequent iterations, which is what lets the protocol
// track adaptive applications. Conflict blocks (read and written within
// one phase) are not pre-sent; the optional AnticipateConflicts mode
// implements the paper's suggested extension of pre-sending a conflict
// block's first stable state.
package core

import (
	"fmt"

	"presto/internal/blockstate"
	"presto/internal/memory"
	"presto/internal/schedule"
	"presto/internal/sim"
	"presto/internal/stache"
	"presto/internal/tempest"
)

// Predictive is the predictive protocol. It extends Stache: all default
// coherence behavior is inherited, with home-side recording hooks and the
// pre-send machinery layered on top.
type Predictive struct {
	base *stache.Protocol

	// Coalesce enables bulk transfer of neighboring scheduled blocks
	// (paper §3.4). On by default; exposed for the ablation benches.
	Coalesce bool
	// AnticipateConflicts pre-sends conflict blocks according to their
	// first stable state (the paper's suggested future extension).
	AnticipateConflicts bool
	// FlushEvery, when positive, rebuilds each phase's schedule from
	// scratch every FlushEvery-th pre-send of that phase — the paper's
	// remedy for patterns with many deletions ("the schedule must be
	// rebuilt often by flushing the old schedule and building a new
	// one", §3.3), automated as a protocol policy.
	FlushEvery int

	// Storage selects the block-state backend for schedules and the
	// inherited Stache state (dense by default). Set before Init.
	Storage blockstate.Kind
}

// New returns a predictive protocol with the paper's configuration
// (coalescing on, conflicts not pre-sent).
func New() *Predictive {
	p := &Predictive{base: stache.New(), Coalesce: true}
	p.base.Hooks = p
	return p
}

// nodeState is the predictive protocol's per-node state.
type nodeState struct {
	cache *stache.NodeState // Stache cache-side state

	table     *schedule.Table // schedules for blocks this node homes
	recording bool
	phase     int
	// curSched caches table.Phase(phase) while recording, so the
	// per-fault record hooks skip the phase-map lookup.
	curSched *schedule.Phase

	// bulks holds the per-destination coalescing state of the pre-send
	// walk (reused across walks; entry buffers come from the tempest
	// bulk pool and are handed off with each MsgBulk).
	bulks []pendingBulk

	// Pre-send walk bookkeeping (protocol processor).
	presendActive      bool
	presendPhase       int
	presendOutstanding int

	// seen counts executions of each phase directive on this node; the
	// pre-send (and its stabilization barrier) runs from the second
	// execution on. SPMD execution makes this consistent across nodes.
	seen map[int]int
	// presends counts pre-send executions per phase (FlushEvery policy).
	presends map[int]int
}

// StacheState implements stache.StateHolder.
func (ns *nodeState) StacheState() *stache.NodeState { return ns.cache }

func pstate(n *tempest.Node) *nodeState {
	ns, ok := n.ProtoState.(*nodeState)
	if !ok {
		panic(fmt.Sprintf("core: node %d not initialized for predictive protocol", n.ID))
	}
	return ns
}

// Name implements tempest.Protocol.
func (p *Predictive) Name() string { return "predictive" }

// Init implements tempest.Protocol.
func (p *Predictive) Init(n *tempest.Node) {
	p.base.Storage = p.Storage
	n.ProtoState = &nodeState{
		cache:    stache.NewNodeState(n.AS, p.Storage),
		table:    schedule.NewTable(n.AS, p.Storage),
		phase:    -1,
		seen:     make(map[int]int),
		presends: make(map[int]int),
	}
}

// OnFault implements tempest.Protocol (inherited from Stache).
func (p *Predictive) OnFault(n *tempest.Node, b memory.Block, write bool) bool {
	return p.base.OnFault(n, b, write)
}

// Handle implements tempest.Protocol.
func (p *Predictive) Handle(n *tempest.Node, d sim.Delivery) {
	if m, ok := d.Msg.(tempest.MsgPresendGo); ok {
		p.runPresend(n, m.Phase)
		return
	}
	p.base.Handle(n, d)
}

// RecordRead implements stache.Hooks: extend the current phase's schedule.
func (p *Predictive) RecordRead(n *tempest.Node, b memory.Block, req int) {
	ns := pstate(n)
	if !ns.recording {
		return
	}
	if ns.curSched.RecordRead(b, req) {
		n.Stats.Conflicts++
	}
}

// RecordWrite implements stache.Hooks.
func (p *Predictive) RecordWrite(n *tempest.Node, b memory.Block, req int) {
	ns := pstate(n)
	if !ns.recording {
		return
	}
	if ns.curSched.RecordWrite(b, req) {
		n.Stats.Conflicts++
	}
}

// PresendOpDone implements stache.Hooks: one pre-send-generated grant has
// completed at this home node.
func (p *Predictive) PresendOpDone(n *tempest.Node, b memory.Block) {
	ns := pstate(n)
	if !ns.presendActive {
		return
	}
	ns.presendOutstanding--
	if ns.presendOutstanding == 0 {
		p.finishPresend(n)
	}
}

// BeginPhase implements tempest.PhaseProtocol. It runs on the compute
// processor: from the second execution of a phase directive on, it
// triggers the pre-send walk on the protocol processor and blocks until
// completion. The returned duration is this node's pre-send time (the
// runtime adds the stabilization barrier separately).
func (p *Predictive) BeginPhase(n *tempest.Node, phase int) sim.Time {
	ns := pstate(n)
	first := ns.seen[phase] == 0
	ns.seen[phase]++
	ns.recording = true
	ns.phase = phase
	if first {
		ns.curSched = ns.table.Phase(phase)
		return 0
	}
	ns.presends[phase]++
	if p.FlushEvery > 0 && ns.presends[phase]%p.FlushEvery == 0 {
		// Periodic rebuild: drop the (possibly deletion-stale) schedule
		// and relearn it from this execution's faults.
		ns.table.Flush(phase)
	}
	// Cache after the possible flush so records extend the live schedule.
	ns.curSched = ns.table.Phase(phase)
	start := n.Compute.Now()
	n.Post(n.Compute, n, tempest.MsgPresendGo{Phase: phase})
	n.RecvCompute(n.Compute, func(m any) bool {
		pd, ok := m.(tempest.MsgPresendDone)
		if ok && pd.Phase != phase {
			panic(fmt.Sprintf("core: node %d: presend-done for phase %d during phase %d", n.ID, pd.Phase, phase))
		}
		return ok
	})
	dt := n.Compute.Now() - start
	n.Stats.Presend += dt
	if ps := n.CurPhase(); ps != nil {
		ps.PresendNS += int64(dt)
	}
	return dt
}

// EndPhase implements tempest.PhaseProtocol.
func (p *Predictive) EndPhase(n *tempest.Node, phase int) {
	ns := pstate(n)
	ns.recording = false
	ns.phase = -1
	ns.curSched = nil
}

// FlushSchedules drops this node's schedules (all phases, or one phase if
// id >= 0) — the paper's remedy for deletion-heavy pattern changes.
func (p *Predictive) FlushSchedules(n *tempest.Node, id int) {
	ns := pstate(n)
	if id < 0 {
		ns.table.FlushAll()
	} else {
		ns.table.Flush(id)
	}
	if ns.recording && (id < 0 || id == ns.phase) {
		// The cached schedule was just dropped; records must extend the
		// replacement.
		ns.curSched = ns.table.Phase(ns.phase)
	}
}

// DebugPresend reports the node's pre-send bookkeeping (diagnostics).
func (p *Predictive) DebugPresend(n *tempest.Node) (active bool, phase, outstanding int) {
	ns := pstate(n)
	return ns.presendActive, ns.presendPhase, ns.presendOutstanding
}

// ScheduleTable exposes the node's schedule table (tests, stats).
func (p *Predictive) ScheduleTable(n *tempest.Node) *schedule.Table { return pstate(n).table }

// pendingBulk accumulates coalesced pre-send data for one destination.
type pendingBulk struct {
	lastBlock memory.Block
	entries   []tempest.BulkEntry
}

// runPresend executes the pre-send walk on n's protocol processor.
func (p *Predictive) runPresend(n *tempest.Node, phase int) {
	ns := pstate(n)
	ph := ns.table.Lookup(phase)
	if ph == nil || ph.Empty() {
		p.sendPresendDone(n, phase)
		return
	}
	ns.presendActive = true
	ns.presendPhase = phase
	ns.presendOutstanding = 1 // walk sentinel

	if ns.bulks == nil {
		ns.bulks = make([]pendingBulk, len(n.Peers))
	}
	flush := func(dst int) {
		pb := &ns.bulks[dst]
		if len(pb.entries) == 0 {
			return
		}
		// The message takes ownership of the pooled buffer; the receiver
		// returns it after installing the entries. PostBulk diverts
		// cross-group bulks into the node-leader aggregation buffer when
		// rt.Config.Aggregate is on.
		msg := tempest.MsgBulk{Entries: pb.entries, Presend: true}
		pb.entries = nil
		n.PostBulk(n.ProtoProc, n.Peers[dst], msg)
		n.Stats.BulkMsgs++
	}

	// enqueue adds one immediately-grantable read copy for dst,
	// coalescing with the previous block if contiguous.
	enqueue := func(b memory.Block, dst int, data []byte) {
		if !p.Coalesce {
			n.Post(n.ProtoProc, n.Peers[dst], tempest.MsgDataRO{Block: b, Data: data, Presend: true})
			n.Stats.PresendsSent++
			return
		}
		pb := &ns.bulks[dst]
		if len(pb.entries) > 0 && !n.AS.Contiguous(pb.lastBlock, b) {
			flush(dst)
		}
		if pb.entries == nil {
			pb.entries = tempest.GetBulkEntries()
		}
		pb.entries = append(pb.entries, tempest.BulkEntry{Block: b, Data: data})
		pb.lastBlock = b
		n.Stats.PresendsSent++
	}

	for _, e := range ph.Entries() {
		mode, readers, writer := e.Mode, e.Readers, e.Writer
		if mode == schedule.ModeConflict {
			if !p.AnticipateConflicts {
				continue
			}
			mode, readers, writer = e.FirstMode, e.FirstReaders, e.FirstWriter
		}
		switch mode {
		case schedule.ModeRead:
			dir := n.Dir.Entry(e.Block)
			if dir.State == tempest.DirHome {
				// Fast path: forward read-only copies directly, with
				// coalescing.
				downgraded := false
				readers.ForEach(func(r int) {
					if r == n.ID || dir.Sharers.Has(r) {
						n.Stats.PresendsSkipped++
						return
					}
					if !downgraded && n.Store.Tag(e.Block) == memory.ReadWrite {
						n.Store.SetTag(e.Block, memory.ReadOnly)
						downgraded = true
					}
					dir.Sharers.Add(r)
					data := append([]byte(nil), n.Store.Data(e.Block)...)
					enqueue(e.Block, r, data)
				})
				continue
			}
			// Slow path (current writer must be recalled first): route
			// each reader through the regular request machinery.
			readers.ForEach(func(r int) {
				ns.presendOutstanding++
				p.base.HandleGet(n, e.Block, r, false, true)
			})
		case schedule.ModeWrite:
			if writer < 0 {
				continue
			}
			ns.presendOutstanding++
			p.base.HandleGet(n, e.Block, writer, true, true)
		}
	}
	// Flush residual batches in destination order for determinism, then
	// drain anything the aggregation layer buffered during the walk.
	for dst := range n.Peers {
		flush(dst)
	}
	n.FlushAgg(n.ProtoProc)
	// Drop the walk sentinel.
	ns.presendOutstanding--
	if ns.presendOutstanding == 0 {
		p.finishPresend(n)
	}
}

func (p *Predictive) finishPresend(n *tempest.Node) {
	ns := pstate(n)
	ns.presendActive = false
	p.sendPresendDone(n, ns.presendPhase)
}

func (p *Predictive) sendPresendDone(n *tempest.Node, phase int) {
	n.ProtoProc.Send(n.Compute, tempest.MsgPresendDone{Phase: phase}, n.Net.LocalDelay)
}
