package core_test

import (
	"testing"

	"presto/internal/core"
	"presto/internal/memory"
	"presto/internal/rt"
	"presto/internal/schedule"
)

// predictiveOf extracts the protocol from a machine.
func predictiveOf(t *testing.T, m *rt.Machine) *core.Predictive {
	t.Helper()
	p, ok := m.Proto.(*core.Predictive)
	if !ok {
		t.Fatalf("machine protocol is %T", m.Proto)
	}
	return p
}

func TestRecordingBuildsReadSchedule(t *testing.T) {
	m := rt.New(rt.Config{Nodes: 3, BlockSize: 32, Protocol: rt.ProtoPredictive})
	arr := m.NewArray1D("x", 12, 1, false) // 4 elems/block; one block per node
	if err := m.Run(func(w *rt.Worker) {
		w.Phase(7, func() {
			if w.ID != 0 {
				w.ReadF64(arr.At(0, 0)) // both remote nodes read node 0's block
			}
		})
	}); err != nil {
		t.Fatal(err)
	}
	p := predictiveOf(t, m)
	tab := p.ScheduleTable(m.Nodes[0])
	ph := tab.Lookup(7)
	if ph == nil || ph.Len() != 1 {
		t.Fatalf("schedule = %+v", ph)
	}
	e := ph.Entries()[0]
	if e.Mode != schedule.ModeRead {
		t.Fatalf("mode = %v", e.Mode)
	}
	if !e.Readers.Has(1) || !e.Readers.Has(2) || e.Readers.Has(0) {
		t.Fatalf("readers = %v", e.Readers)
	}
	// Other nodes' tables stay empty (they home no requested blocks).
	if p.ScheduleTable(m.Nodes[1]).Blocks() != 0 {
		t.Fatal("non-home node recorded entries")
	}
}

func TestRecordingTracksLastWriter(t *testing.T) {
	m := rt.New(rt.Config{Nodes: 3, BlockSize: 32, Protocol: rt.ProtoPredictive})
	arr := m.NewArray1D("x", 12, 1, false)
	if err := m.Run(func(w *rt.Worker) {
		// Writers take turns migrating node 0's block within one phase
		// (no overlap: token order via signals).
		w.Phase(3, func() {
			switch w.ID {
			case 1:
				w.WriteF64(arr.At(0, 0), 1)
				w.Signal(2, 0)
			case 2:
				w.AwaitSignal()
				w.WriteF64(arr.At(0, 0), 2)
			}
		})
	}); err != nil {
		t.Fatal(err)
	}
	p := predictiveOf(t, m)
	e := p.ScheduleTable(m.Nodes[0]).Phase(3).Entries()[0]
	if e.Mode != schedule.ModeWrite || e.Writer != 2 {
		t.Fatalf("entry = mode %v writer %d, want write by last writer 2", e.Mode, e.Writer)
	}
}

func TestFaultsOutsidePhasesNotRecorded(t *testing.T) {
	m := rt.New(rt.Config{Nodes: 2, BlockSize: 32, Protocol: rt.ProtoPredictive})
	arr := m.NewArray1D("x", 8, 1, false)
	if err := m.Run(func(w *rt.Worker) {
		// Phase executes and ends; a later bare access faults outside any
		// phase window.
		w.Phase(1, func() {})
		if w.ID == 1 {
			w.ReadF64(arr.At(0, 0))
		}
		w.Barrier()
	}); err != nil {
		t.Fatal(err)
	}
	p := predictiveOf(t, m)
	if n := p.ScheduleTable(m.Nodes[0]).Blocks(); n != 0 {
		t.Fatalf("recorded %d blocks outside phases", n)
	}
}

func TestPresendRecallsFromExclusiveOwner(t *testing.T) {
	// Phase A: node 1 writes node 0's block (migratory, leaves it
	// RemoteExcl at node 1). Phase B: node 2 reads it. On the second
	// iteration the pre-send of phase B must recall the block from node 1
	// and forward it to node 2 — the slow path of the walk.
	m := rt.New(rt.Config{Nodes: 3, BlockSize: 32, Protocol: rt.ProtoPredictive})
	arr := m.NewArray1D("x", 12, 1, false)
	var faultsPerIter []int64
	if err := m.Run(func(w *rt.Worker) {
		for it := 0; it < 3; it++ {
			w.Phase(1, func() {
				if w.ID == 1 {
					w.WriteF64(arr.At(0, 0), float64(it))
				}
			})
			before := w.Node.Stats.ReadFaults
			w.Phase(2, func() {
				if w.ID == 2 {
					if got := w.ReadF64(arr.At(0, 0)); got != float64(it) {
						t.Errorf("iter %d read %v", it, got)
					}
				}
			})
			if w.ID == 2 {
				faultsPerIter = append(faultsPerIter, w.Node.Stats.ReadFaults-before)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if faultsPerIter[0] == 0 {
		t.Fatal("first iteration must fault (recording)")
	}
	for it := 1; it < 3; it++ {
		if faultsPerIter[it] != 0 {
			t.Fatalf("iteration %d faulted %d times; pre-send recall path failed", it, faultsPerIter[it])
		}
	}
}

func TestAnticipateConflictsServesFrozenReaders(t *testing.T) {
	run := func(anticipate bool) int64 {
		m := rt.New(rt.Config{Nodes: 2, BlockSize: 64, Protocol: rt.ProtoPredictive, AnticipateConflicts: anticipate})
		arr := m.NewArray1D("x", 8, 1, false) // one 64B block
		if err := m.Run(func(w *rt.Worker) {
			for it := 0; it < 6; it++ {
				w.Phase(1, func() {
					// Reader first (ordering fixed by signal), then
					// writer: FirstMode freezes as read.
					if w.ID == 1 {
						w.ReadF64(arr.At(4, 0))
						w.Signal(0, 0)
					} else {
						w.AwaitSignal()
						w.WriteF64(arr.At(0, 0), float64(it))
					}
				})
			}
		}); err != nil {
			t.Fatal(err)
		}
		return m.Counters().ReadFaults
	}
	base := run(false)
	ant := run(true)
	if base == 0 {
		t.Fatal("no read faults in baseline")
	}
	if ant >= base {
		t.Fatalf("anticipation did not reduce read faults: %d vs %d", ant, base)
	}
}

func TestScheduleEntriesSortedForWalk(t *testing.T) {
	m := rt.New(rt.Config{Nodes: 2, BlockSize: 32, Protocol: rt.ProtoPredictive})
	arr := m.NewArray1D("x", 64, 1, false)
	if err := m.Run(func(w *rt.Worker) {
		w.Phase(1, func() {
			if w.ID == 1 {
				// Read in scrambled order; the schedule walk must still
				// see sorted blocks (coalescing prerequisite).
				for _, i := range []int{28, 4, 12, 20, 0, 24, 8, 16} {
					w.ReadF64(arr.At(i, 0))
				}
			}
		})
	}); err != nil {
		t.Fatal(err)
	}
	p := predictiveOf(t, m)
	es := p.ScheduleTable(m.Nodes[0]).Phase(1).Entries()
	for i := 1; i < len(es); i++ {
		if es[i-1].Block >= es[i].Block {
			t.Fatal("entries not sorted")
		}
	}
	if len(es) != 8 {
		t.Fatalf("entries = %d, want 8", len(es))
	}
}

func TestDebugPresendIdleAfterRun(t *testing.T) {
	m := rt.New(rt.Config{Nodes: 2, BlockSize: 32, Protocol: rt.ProtoPredictive})
	arr := m.NewArray1D("x", 8, 1, false)
	if err := m.Run(func(w *rt.Worker) {
		for it := 0; it < 2; it++ {
			w.Phase(1, func() {
				if w.ID == 1 {
					w.ReadF64(arr.At(0, 0))
				}
			})
		}
	}); err != nil {
		t.Fatal(err)
	}
	p := predictiveOf(t, m)
	for _, n := range m.Nodes {
		active, _, outstanding := p.DebugPresend(n)
		if active || outstanding != 0 {
			t.Fatalf("node %d presend not quiescent: active=%v outstanding=%d", n.ID, active, outstanding)
		}
	}
}

func TestPresendSkipsTargetsWithCopies(t *testing.T) {
	// If a reader keeps its copy (no intervening write), later pre-sends
	// skip it rather than re-sending redundant data.
	m := rt.New(rt.Config{Nodes: 2, BlockSize: 32, Protocol: rt.ProtoPredictive})
	arr := m.NewArray1D("x", 8, 1, false)
	if err := m.Run(func(w *rt.Worker) {
		for it := 0; it < 4; it++ {
			w.Phase(2, func() {
				if w.ID == 1 {
					w.ReadF64(arr.At(0, 0)) // nobody ever invalidates it
				}
			})
		}
	}); err != nil {
		t.Fatal(err)
	}
	c := m.Counters()
	if c.PresendsSkipped == 0 {
		t.Fatal("no skipped pre-sends despite stable copy")
	}
	if c.PresendsSent != 0 {
		t.Fatalf("redundant pre-sends: %d", c.PresendsSent)
	}
}

func TestFlushEveryPolicyRelearns(t *testing.T) {
	run := func(flushEvery int) (faults, presends int64) {
		m := rt.New(rt.Config{Nodes: 2, BlockSize: 32, Protocol: rt.ProtoPredictive, FlushEvery: flushEvery})
		arr := m.NewArray1D("x", 64, 1, false)
		if err := m.Run(func(w *rt.Worker) {
			for it := 0; it < 12; it++ {
				w.Phase(1, func() {
					if w.ID == 0 {
						for i := 0; i < 32; i++ {
							w.WriteF64(arr.At(i, 0), float64(it))
						}
					}
				})
				// Rotating read window: stale entries accumulate without
				// flushing.
				start := (it / 3) * 8
				w.Phase(2, func() {
					if w.ID == 1 {
						for k := 0; k < 8; k++ {
							w.ReadF64(arr.At((start+k)%32, 0))
						}
					}
				})
			}
		}); err != nil {
			t.Fatal(err)
		}
		c := m.Counters()
		return c.ReadFaults, c.PresendsSent
	}
	_, never := run(0)
	faultsP, policy := run(3)
	if policy >= never {
		t.Fatalf("FlushEvery policy did not cut stale pre-sends: %d vs %d", policy, never)
	}
	if faultsP == 0 {
		t.Fatal("relearning implies some faults")
	}
}

func TestNameAndBlockAccess(t *testing.T) {
	p := core.New()
	if p.Name() != "predictive" {
		t.Fatalf("name = %q", p.Name())
	}
	var b memory.Block = 0
	_ = b
}
