package tempest

import (
	"sync"

	"presto/internal/sim"
)

// Node-leader message aggregation.
//
// On a clustered interconnect the expensive resource is the top-level
// network: every cross-group message pays the full wire latency and
// send-startup cost. The protocol's bulk traffic — pre-send grants,
// write-update pushes, gather replies — is highly clumped by
// destination group: one home typically owes data to several consumers
// on the same remote cluster node within a single operation. With
// rt.Config.Aggregate on, PostBulk diverts such cross-group bulks into
// a per-destination-group buffer; a flush coalesces everything owed to
// one group into a single MsgAgg addressed to that group's leader (its
// lowest node ID), which redistributes the parts over the cheap
// intra-group fabric as ordinary MsgBulk messages. Per-message overhead
// is paid once per group instead of once per destination; each extra
// part costs only its routing word and payload.
//
// Aggregation is timing-visible but memory-invariant: the leader
// re-posts each part through the normal Post path, so the receiving
// protocol processors handle byte-identical MsgBulk messages in a
// possibly different order at different times — which the protocols
// already tolerate (bulk arrival order between distinct destinations
// is unordered even without aggregation).
//
// Flush discipline (all triggers are functions of virtual state, so
// serial and parallel runs flush identically):
//
//  1. Occupancy cap: a group buffer reaching aggFlushEntries entries
//     flushes immediately, bounding buffered data and message size.
//  2. End of operation: the pre-send walk and a write-update push
//     flush what they buffered before returning.
//  3. Idle protocol processor: ProtocolLoop flushes before blocking in
//     Recv, so buffered gather replies ride out as soon as the request
//     burst that produced them drains.
//  4. Phase boundary: the runtime flushes at every barrier arrival as a
//     safety net.
//
// A buffer therefore never outlives the operation that filled it —
// in particular it never spans a point where the buffering node blocks
// on a remote reply, which is what makes the scheme deadlock-free: no
// node's progress ever depends on data sitting in an unflushed buffer.

// aggFlushEntries is the occupancy cap: a group buffer holding this
// many bulk entries flushes without waiting for the operation to end.
// 64 entries of a typical block keep the aggregate well under the
// size where transit time dominates startup savings.
const aggFlushEntries = 64

// aggPool recycles the AggPart slices carried by MsgAgg, mirroring
// bulkPool: the flushing node takes a buffer, hands ownership to the
// message, and the leader returns it after redistributing the parts.
var aggPool = sync.Pool{
	New: func() any {
		s := make([]AggPart, 0, 8)
		return &s
	},
}

func getAggParts() []AggPart {
	return (*aggPool.Get().(*[]AggPart))[:0]
}

func putAggParts(s []AggPart) {
	if cap(s) == 0 {
		return
	}
	for i := range s {
		s[i] = AggPart{}
	}
	s = s[:0]
	aggPool.Put(&s)
}

// aggBuf is one destination group's pending parts.
type aggBuf struct {
	parts   []AggPart
	entries int // total bulk entries across parts (occupancy cap)
}

// EnableAggregation turns on node-leader coalescing for this node's
// cross-group bulks. dropEntry is the chaos mutation hook: a flush
// silently drops one coalesced entry, which surfaces either as a
// deadlock (a pre-send's consumer refetches a copy its home believes is
// in flight) or as an AggEntriesOut/AggEntriesIn gap in the aggregation
// conservation identity (check.Accounting).
func (n *Node) EnableAggregation(dropEntry bool) {
	if !n.Net.Clustered() {
		return // nothing to coalesce on a flat machine
	}
	n.aggOn = true
	n.aggDrop = dropEntry
	n.aggBufs = make([]aggBuf, n.Net.Groups)
}

// AggOn reports whether node-leader aggregation is active on this node.
func (n *Node) AggOn() bool { return n.aggOn }

// PostBulk routes a bulk transfer through the aggregation layer: with
// aggregation on, a cross-group bulk joins the destination group's
// buffer (its send cost deferred to the flush); everything else — local
// and intra-group destinations, or aggregation off — posts directly.
func (n *Node) PostBulk(src *sim.Proc, dst *Node, m MsgBulk) {
	if !n.aggOn || dst == n || n.Net.SameGroup(n.ID, dst.ID) {
		n.Post(src, dst, m)
		return
	}
	g := n.Net.GroupOf(dst.ID)
	buf := &n.aggBufs[g]
	if len(buf.parts) == 0 {
		if buf.parts == nil {
			buf.parts = getAggParts()
		}
		n.aggDirty = append(n.aggDirty, g)
	}
	buf.parts = append(buf.parts, AggPart{Dst: dst.ID, Bulk: m})
	buf.entries += len(m.Entries)
	if buf.entries >= aggFlushEntries {
		n.flushAggGroup(src, g)
	}
}

// FlushAgg posts every buffered aggregate, in the order the groups
// first became dirty (a deterministic function of protocol execution).
// Called at the end of each buffering operation and from the runtime's
// phase-boundary safety net; cheap when nothing is buffered.
func (n *Node) FlushAgg(src *sim.Proc) {
	for len(n.aggDirty) > 0 {
		g := n.aggDirty[0]
		n.flushAggGroup(src, g)
	}
}

// AggPending reports the number of bulk entries currently buffered
// (test hook: must be zero at quiescence).
func (n *Node) AggPending() int {
	total := 0
	for i := range n.aggBufs {
		total += n.aggBufs[i].entries
	}
	return total
}

// flushAggGroup sends group g's buffer. A single-part buffer posts its
// bulk straight to the final destination — an aggregate of one would
// add a leader hop for no startup saving. Multi-part buffers become one
// MsgAgg to the group leader; the conservation counters AggEntriesOut
// (here) and AggEntriesIn (at the leader) track every coalesced entry
// exactly.
func (n *Node) flushAggGroup(src *sim.Proc, g int) {
	buf := &n.aggBufs[g]
	for i, d := range n.aggDirty {
		if d == g {
			n.aggDirty = append(n.aggDirty[:i], n.aggDirty[i+1:]...)
			break
		}
	}
	parts := buf.parts
	buf.parts, buf.entries = nil, 0
	if len(parts) == 0 {
		putAggParts(parts)
		return
	}
	if len(parts) == 1 {
		dst, bulk := parts[0].Dst, parts[0].Bulk
		putAggParts(parts)
		n.Post(src, n.Peers[dst], bulk)
		return
	}
	for i := range parts {
		n.Stats.AggEntriesOut += int64(len(parts[i].Bulk.Entries))
	}
	if n.aggDrop {
		// Chaos mutation: lose one coalesced entry on the wire. Counted
		// as sent but never redistributed, so AggEntriesIn falls short
		// of AggEntriesOut machine-wide.
		for i := range parts {
			if k := len(parts[i].Bulk.Entries); k > 0 {
				parts[i].Bulk.Entries = parts[i].Bulk.Entries[:k-1]
				break
			}
		}
	}
	n.Stats.AggMsgs++
	leader := n.Peers[g*n.Net.GroupSize]
	n.Post(src, leader, MsgAgg{Parts: parts})
}

// redistributeAgg is the group leader's half: re-post each part to its
// final destination over the intra-group fabric as an ordinary MsgBulk.
// Runs on the leader's protocol processor (ProtocolLoop intercepts
// MsgAgg before protocol dispatch — no protocol ever sees one).
func (n *Node) redistributeAgg(p *sim.Proc, agg MsgAgg) {
	for _, part := range agg.Parts {
		n.Stats.AggEntriesIn += int64(len(part.Bulk.Entries))
		n.Post(p, n.Peers[part.Dst], part.Bulk)
	}
	putAggParts(agg.Parts)
}
