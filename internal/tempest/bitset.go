package tempest

import (
	"fmt"
	"math/bits"
	"strings"
)

// Bitset is a set of node IDs (the machine is capped at 64 nodes, like
// the 32-processor CM-5 partition the paper measured).
type Bitset uint64

// Add inserts node n.
func (b *Bitset) Add(n int) { *b |= 1 << uint(n) }

// Remove deletes node n.
func (b *Bitset) Remove(n int) { *b &^= 1 << uint(n) }

// Has reports membership of node n.
func (b Bitset) Has(n int) bool { return b&(1<<uint(n)) != 0 }

// Empty reports whether the set has no members.
func (b Bitset) Empty() bool { return b == 0 }

// Count returns the number of members.
func (b Bitset) Count() int { return bits.OnesCount64(uint64(b)) }

// Clear removes all members.
func (b *Bitset) Clear() { *b = 0 }

// ForEach calls fn for each member in ascending order.
func (b Bitset) ForEach(fn func(n int)) {
	v := uint64(b)
	for v != 0 {
		n := bits.TrailingZeros64(v)
		fn(n)
		v &^= 1 << uint(n)
	}
}

// String renders the set as {0,3,7}.
func (b Bitset) String() string {
	var parts []string
	b.ForEach(func(n int) { parts = append(parts, fmt.Sprint(n)) })
	return "{" + strings.Join(parts, ",") + "}"
}
