package tempest

import (
	"fmt"
	"math/bits"
	"strings"
)

// Bitset is a set of node IDs. The first 64 IDs live in an inline word,
// so on paper-scale machines (the 32-processor CM-5 partition) a set
// never allocates; IDs 64 and up spill into lazily grown extension
// words, scaling the directory to kilonode machines. The zero value is
// the empty set.
//
// A Bitset assignment copies the inline word but aliases the extension
// words — use Clone for an independent snapshot that will be mutated or
// that must survive mutation of the original.
type Bitset struct {
	lo uint64   // IDs 0..63
	hi []uint64 // word w holds IDs 64*(w+1) .. 64*(w+2)-1
}

// Add inserts node n.
func (b *Bitset) Add(n int) {
	if n < 64 {
		b.lo |= 1 << uint(n)
		return
	}
	w := n/64 - 1
	for len(b.hi) <= w {
		b.hi = append(b.hi, 0)
	}
	b.hi[w] |= 1 << uint(n%64)
}

// Remove deletes node n.
func (b *Bitset) Remove(n int) {
	if n < 64 {
		b.lo &^= 1 << uint(n)
		return
	}
	if w := n/64 - 1; w < len(b.hi) {
		b.hi[w] &^= 1 << uint(n%64)
	}
}

// Has reports membership of node n.
func (b Bitset) Has(n int) bool {
	if n < 64 {
		return b.lo&(1<<uint(n)) != 0
	}
	w := n/64 - 1
	return w < len(b.hi) && b.hi[w]&(1<<uint(n%64)) != 0
}

// Empty reports whether the set has no members.
func (b Bitset) Empty() bool {
	if b.lo != 0 {
		return false
	}
	for _, w := range b.hi {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of members.
func (b Bitset) Count() int {
	n := bits.OnesCount64(b.lo)
	for _, w := range b.hi {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clear removes all members. Extension storage is retained for reuse.
func (b *Bitset) Clear() {
	b.lo = 0
	for i := range b.hi {
		b.hi[i] = 0
	}
}

// Clone returns an independent copy: mutating either set never affects
// the other.
func (b Bitset) Clone() Bitset {
	out := Bitset{lo: b.lo}
	if len(b.hi) > 0 {
		out.hi = append([]uint64(nil), b.hi...)
	}
	return out
}

// ForEach calls fn for each member in ascending order.
func (b Bitset) ForEach(fn func(n int)) {
	forWord(b.lo, 0, fn)
	for w, v := range b.hi {
		forWord(v, 64*(w+1), fn)
	}
}

func forWord(v uint64, base int, fn func(n int)) {
	for v != 0 {
		n := bits.TrailingZeros64(v)
		fn(base + n)
		v &^= 1 << uint(n)
	}
}

// String renders the set as {0,3,7}.
func (b Bitset) String() string {
	var parts []string
	b.ForEach(func(n int) { parts = append(parts, fmt.Sprint(n)) })
	return "{" + strings.Join(parts, ",") + "}"
}
