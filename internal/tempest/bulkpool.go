package tempest

import "sync"

// bulkPool recycles the BulkEntry slices carried by MsgBulk. Senders
// (the pre-send walk, gather replies, update pushes) take a buffer with
// GetBulkEntries, hand ownership to the message, and the receiver
// returns it with PutBulkEntries once every entry is installed — so
// steady-state bulk construction reuses backing arrays instead of
// allocating per phase. sync.Pool makes the hand-off safe under the
// parallel engine, where sender and receiver run on different lanes.
var bulkPool = sync.Pool{
	New: func() any {
		s := make([]BulkEntry, 0, 16)
		return &s
	},
}

// GetBulkEntries returns an empty BulkEntry buffer from the pool.
func GetBulkEntries() []BulkEntry {
	return (*bulkPool.Get().(*[]BulkEntry))[:0]
}

// PutBulkEntries returns a buffer to the pool. The caller must be the
// message's sole consumer and must not touch the slice afterwards; data
// references are dropped so installed blocks don't pin the pool.
func PutBulkEntries(s []BulkEntry) {
	if cap(s) == 0 {
		return
	}
	for i := range s {
		s[i] = BulkEntry{}
	}
	s = s[:0]
	bulkPool.Put(&s)
}
