// Package tempest is the user-level shared-memory substrate of the
// simulated machine, modeled on the Tempest interface that Blizzard
// implemented on the CM-5: fine-grain access control (package memory),
// access faults vectored to user-level protocol handlers, low-level
// messaging between nodes, and the directory bookkeeping shared by the
// coherence protocols built on top (stache, the predictive protocol, and
// the write-update baseline).
//
// Each simulated node runs two sim Procs: a compute processor executing
// application code, and a protocol processor running a message-handler
// loop (Blizzard dispatched protocol handlers from active messages and
// polling; the split models handler occupancy without modeling preemption
// of compute, a second-order effect).
package tempest

import (
	"fmt"

	"presto/internal/blockstate"
	"presto/internal/memory"
	"presto/internal/metrics"
	"presto/internal/network"
	"presto/internal/sim"
	"presto/internal/trace"
)

// Protocol is a user-level cache-coherence protocol in the Tempest sense.
// Implementations keep their per-node state via Node.ProtoState.
type Protocol interface {
	// Name identifies the protocol in reports.
	Name() string
	// Init prepares per-node protocol state; called once per node before
	// the simulation starts.
	Init(n *Node)
	// OnFault runs on n's compute processor after an access fault on
	// block b has been detected and vectored. It either initiates the
	// request that will eventually make the block accessible and wake
	// the compute processor (returning false), or resolves the fault
	// locally without blocking (returning true).
	OnFault(n *Node, b memory.Block, write bool) (resolved bool)
	// Handle runs on n's protocol processor for each arriving message
	// (dispatch overhead has already been charged).
	Handle(n *Node, d sim.Delivery)
}

// PhaseProtocol is implemented by protocols that accept the compiler's
// parallel-phase directives (the predictive protocol).
type PhaseProtocol interface {
	Protocol
	// BeginPhase runs on n's compute processor at a phase directive. It
	// may block (executing the pre-send phase) and returns the virtual
	// time spent pre-sending on this node.
	BeginPhase(n *Node, phase int) sim.Time
	// EndPhase runs on n's compute processor when the parallel phase
	// completes (after the phase's closing barrier).
	EndPhase(n *Node, phase int)
}

// Stats is one node's time breakdown and event counters. The three time
// buckets mirror the paper's figure legends: remote-data wait, predictive
// protocol (pre-send), and compute+synchronization.
type Stats struct {
	Compute    sim.Time // application computation (Advance'd by the app)
	RemoteWait sim.Time // blocked in access faults
	Presend    sim.Time // executing pre-send directives
	Sync       sim.Time // waiting at barriers

	ReadFaults  int64
	WriteFaults int64
	MsgsSent    int64
	BytesSent   int64

	PresendsSent    int64 // blocks pre-sent from this home
	PresendsSkipped int64 // schedule entries skipped (target already had a copy)
	BulkMsgs        int64 // coalesced pre-send messages
	Conflicts       int64 // schedule entries recorded as conflicts

	// CrossMsgs counts messages that left the sender's local fabric: on
	// a clustered machine, messages to another group; on a flat machine,
	// every remote message. The scaling experiments' aggregation ratio
	// guard rides on it.
	CrossMsgs int64

	// Node-leader aggregation conservation (see aggregate.go): AggMsgs
	// counts MsgAgg sent, AggEntriesOut counts bulk entries coalesced
	// into them, AggEntriesIn counts entries this node redistributed as
	// a group leader. Machine-wide, ΣAggEntriesOut == ΣAggEntriesIn at
	// quiescence, exactly (check.Accounting) — the identity that catches
	// a dropped coalesced entry.
	AggMsgs       int64
	AggEntriesOut int64
	AggEntriesIn  int64
}

// Total returns the node's total accounted virtual time.
func (s *Stats) Total() sim.Time { return s.Compute + s.RemoteWait + s.Presend + s.Sync }

// Node is one simulated machine node.
type Node struct {
	ID    int
	AS    *memory.AddressSpace
	Store *memory.Store
	Net   *network.Params
	Proto Protocol
	Dir   *Directory // directory for blocks this node homes

	Compute   *sim.Proc // set by the runtime when the compute Proc spawns
	ProtoProc *sim.Proc
	Peers     []*Node // all nodes, indexed by ID (includes self)

	Stats Stats

	// Compute-processor fault rendezvous.
	waiting   bool
	waitBlock memory.Block

	// sigStash holds application signals that arrived while the compute
	// processor was blocked in a protocol wait.
	sigStash []sim.Delivery

	// pendingUse tracks blocks granted to a fault-waiting compute
	// processor that have not yet been accessed. Protocols defer recalls
	// and invalidations for such blocks until the access completes,
	// which guarantees every grantee makes progress (no migratory
	// livelock). pendingDeferred marks the subset with a protocol action
	// waiting on the use.
	pendingUse      *blockstate.BitTable
	pendingDeferred *blockstate.BitTable

	// ProtoState holds protocol-private per-node state.
	ProtoState any

	// Trace, when non-nil, receives protocol events (ring, JSONL or
	// Chrome backends — see internal/trace).
	Trace trace.Sink

	// Met is the node's metric instrument set (never nil).
	Met *Metrics

	// Rec, when non-nil, records the node's communication schedule for
	// the analytical predictor (rt.Config.Record). Updated only by this
	// node's own processors, which share a lane under the parallel
	// engine, so recording is race-free without synchronization.
	Rec *CommRecord

	// Prof, when non-nil, maps a phase ID (-1 = between phases) to the
	// attribution slot the compute processor's time is charged into. The
	// runtime installs it when causal profiling is on; BeginPhaseMetrics/
	// EndPhaseMetrics switch the compute processor's slot through it.
	Prof func(phase int) *sim.AttrSlot

	// flowSeq counts this node's traced sends. Flow IDs are node-tagged
	// (node ID in the high bits) so they are unique machine-wide without
	// any cross-node shared counter — a requirement for the parallel
	// engine, where nodes trace concurrently.
	flowSeq int64

	// Phase attribution: curPhase points at the per-phase accumulator of
	// the parallel phase the compute processor currently executes (nil
	// between phases).
	curPhase  *metrics.PhaseStats
	phaseID   int
	phaseIter int

	// presendFresh tracks pre-sent blocks installed but not yet consumed
	// by a compute access (schedule hit/accuracy accounting).
	presendFresh *blockstate.BitTable

	// Node-leader aggregation state (see aggregate.go): aggBufs is
	// indexed by destination group, aggDirty lists non-empty groups in
	// first-enqueue order, aggDrop is the chaos drop-one-entry mutation.
	aggOn    bool
	aggDrop  bool
	aggBufs  []aggBuf
	aggDirty []int
}

// NewNode constructs a node over the given address space. The runtime
// wires Peers and spawns the Procs.
func NewNode(id int, as *memory.AddressSpace, net *network.Params, proto Protocol) *Node {
	n := &Node{
		ID:              id,
		AS:              as,
		Store:           memory.NewStore(as, id),
		Net:             net,
		Proto:           proto,
		Dir:             NewDirectory(as),
		phaseID:         -1,
		pendingUse:      blockstate.NewBitTable(as),
		pendingDeferred: blockstate.NewBitTable(as),
		presendFresh:    blockstate.NewBitTable(as),
	}
	n.Met = NewMetrics(metrics.New(), id) // standalone registry; rt rebinds
	return n
}

// UseMetrics rebinds the node's instruments to a shared registry (called
// by the runtime so one registry covers the whole machine).
func (n *Node) UseMetrics(reg *metrics.Registry) {
	n.Met = NewMetrics(reg, n.ID)
}

// BeginPhaseMetrics establishes phase id (0-based iteration iter) as the
// attribution target for faults, wait time and pre-send consumption on
// this node. Called by the runtime at each phase directive.
func (n *Node) BeginPhaseMetrics(id, iter int) {
	ps := n.Met.Phases.Phase(id)
	ps.Iters++
	n.curPhase = ps
	n.phaseID = id
	n.phaseIter = iter
	if n.Prof != nil {
		n.Compute.SetAttrSlot(n.Prof(id))
	}
}

// EndPhaseMetrics leaves the current phase.
func (n *Node) EndPhaseMetrics() {
	n.curPhase = nil
	n.phaseID = -1
	n.phaseIter = 0
	if n.Prof != nil {
		n.Compute.SetAttrSlot(n.Prof(-1))
	}
}

// CurPhase returns the accumulator of the phase the compute processor is
// currently in, or nil between phases.
func (n *Node) CurPhase() *metrics.PhaseStats { return n.curPhase }

// PhaseContext reports the current phase ID (-1 if none) and iteration
// for trace attribution.
func (n *Node) PhaseContext() (phase, iter int) { return n.phaseID, n.phaseIter }

// SetDirState transitions a directory entry's state, counting the
// transition. All protocol state changes route through this so the
// per-node transition matrix is complete.
func (n *Node) SetDirState(e *DirEntry, to DirState) {
	if e.State != to {
		n.Met.Dir[e.State][to].Inc()
	}
	e.State = to
}

// NotePresendArrival records that a pre-sent copy of b was installed at
// this node. When the compute processor is not already fault-waiting on b
// (i.e. the pre-send genuinely arrived early), the block becomes eligible
// for a schedule hit on its first access.
func (n *Node) NotePresendArrival(b memory.Block) {
	n.Met.PresendsIn.Inc()
	if n.curPhase != nil {
		n.curPhase.PresendsIn++
	}
	if n.Rec != nil {
		n.Rec.NotePresend(n.phaseID, b)
	}
	if wb, waiting := n.FaultWaitBlock(); waiting && wb == b {
		n.Met.PresendsRaced.Inc()
		return // raced with a fault: the fault was not averted
	}
	if !n.presendFresh.Set(b) {
		// A re-pre-send superseding a still-fresh copy: the earlier
		// install was never consumed, so score it stale — every install
		// must land in exactly one bucket (check.Accounting).
		n.Met.PresendsStale.Inc()
	}
}

// notePresendUse scores a schedule hit if the accessed block was pre-sent
// and not yet consumed. Called on the compute processor's successful
// access fast path (guarded by presendFresh.Count() > 0).
func (n *Node) notePresendUse(a memory.Addr) {
	b := n.AS.BlockOf(a)
	if !n.presendFresh.Clear(b) {
		return
	}
	n.Met.PresendHits.Inc()
	if n.curPhase != nil {
		n.curPhase.PresendHits++
	}
}

// PresendFreshCount reports the pre-sent blocks installed at this node
// that no compute access has consumed yet. At quiescence the exact
// accounting identity PresendsIn == PresendHits + PresendsStale +
// PresendFreshCount must hold (checked by internal/check).
func (n *Node) PresendFreshCount() int { return n.presendFresh.Count() }

// ResetPresendCounters zeroes the node's schedule-hit bookkeeping for
// phase id (all phases when id < 0), including pending unconsumed
// pre-sends. Used when schedules are flushed so hit rates are measured
// from the rebuild onward.
func (n *Node) ResetPresendCounters(id int) {
	if id < 0 {
		for _, ps := range n.Met.Phases.All() {
			ps.ResetHits()
		}
		n.Met.PresendsIn.Set(0)
		n.Met.PresendHits.Set(0)
		n.Met.PresendsStale.Set(0)
		n.Met.PresendsRaced.Set(0)
	} else if ps := n.Met.Phases.Lookup(id); ps != nil {
		ps.ResetHits()
		// The fresh set is not phase-tagged, so a per-phase flush drops
		// every unconsumed pre-send. Account them as stale (wasted) so the
		// node-global exact identity PresendsIn == PresendHits +
		// PresendsStale + PresendFreshCount survives the flush.
		n.Met.PresendsStale.Add(int64(n.presendFresh.Count()))
	}
	n.presendFresh.Reset()
}

// tracedMsg wraps a protocol message with the flow ID that links its
// traced Send event to the Recv event; ProtocolLoop unwraps it before
// dispatch. Only used while tracing is enabled.
type tracedMsg struct {
	Msg  Msg
	Flow int64
}

// PayloadBytes implements Msg (wire size is the wrapped message's).
func (t tracedMsg) PayloadBytes() int { return t.Msg.PayloadBytes() }

// Post sends a protocol message from src (the currently running Proc on
// this node) to dst's protocol processor, charging sender occupancy and
// network transit per the cost model. Node-local messages (dst == n) use
// the cheap local path.
func (n *Node) Post(src *sim.Proc, dst *Node, m Msg) {
	kind := KindOf(m)
	n.Met.Sent[kind].Inc()
	payload := m.PayloadBytes()
	var send Msg = m
	if n.Trace != nil {
		n.flowSeq++
		flow := int64(n.ID)<<32 | n.flowSeq
		send = tracedMsg{Msg: m, Flow: flow}
		proc := trace.ProcProto
		if src == n.Compute {
			proc = trace.ProcCompute
		}
		ev := trace.Event{
			At: src.Now(), Node: n.ID, Proc: proc, Kind: trace.Send,
			Phase: n.phaseID, Iter: n.phaseIter, Flow: flow,
			What: fmt.Sprintf("%s -> n%d", MsgString(m), dst.ID),
		}
		src.OnCommit(func() { n.Trace.Record(ev) })
	}
	if dst == n {
		src.AdvanceCat(n.Net.LocalOverhead, sim.CatOccupancy)
		src.Send(n.ProtoProc, send, n.Net.LocalDelay)
		return
	}
	n.Met.MsgPayload.Observe(int64(payload))
	// The *At cost variants apply seeded per-message jitter when the
	// Params enable it (chaos testing); with jitter off they are exactly
	// SendCost/TransitDelayPair. The pair-aware transit rides the cheap
	// intra-group fabric when a clustered interconnect places both nodes
	// in one group; on flat interconnects it is exactly TransitDelay.
	src.AdvanceCat(n.Net.SendCostAt(payload, src.Now(), n.ID, dst.ID), sim.CatOccupancy)
	src.Send(dst.ProtoProc, send, n.Net.TransitDelayPairAt(payload, src.Now(), n.ID, dst.ID))
	n.Stats.MsgsSent++
	n.Stats.BytesSent += int64(payload + n.Net.HeaderBytes)
	if !n.Net.SameGroup(n.ID, dst.ID) {
		n.Stats.CrossMsgs++
	}
}

// MsgString renders a protocol message compactly for traces.
func MsgString(m Msg) string {
	switch v := m.(type) {
	case MsgGetRO:
		return fmt.Sprintf("GetRO(%#x req=%d)", uint64(v.Block), v.Req)
	case MsgGetRW:
		return fmt.Sprintf("GetRW(%#x req=%d)", uint64(v.Block), v.Req)
	case MsgDataRO:
		return fmt.Sprintf("DataRO(%#x p=%v)", uint64(v.Block), v.Presend)
	case MsgDataRW:
		return fmt.Sprintf("DataRW(%#x p=%v)", uint64(v.Block), v.Presend)
	case MsgInval:
		return fmt.Sprintf("Inval(%#x)", uint64(v.Block))
	case MsgInvalAck:
		return fmt.Sprintf("InvalAck(%#x from=%d)", uint64(v.Block), v.From)
	case MsgRecallRO:
		return fmt.Sprintf("RecallRO(%#x)", uint64(v.Block))
	case MsgRecallRW:
		return fmt.Sprintf("RecallRW(%#x)", uint64(v.Block))
	case MsgWriteBack:
		return fmt.Sprintf("WriteBack(%#x from=%d dg=%v)", uint64(v.Block), v.From, v.Downgraded)
	case MsgBulk:
		return fmt.Sprintf("Bulk(%d blocks)", len(v.Entries))
	case MsgAgg:
		k := 0
		for _, part := range v.Parts {
			k += len(part.Bulk.Entries)
		}
		return fmt.Sprintf("Agg(%d parts, %d blocks)", len(v.Parts), k)
	default:
		return fmt.Sprintf("%T", m)
	}
}

// InstallCost returns the modeled receiver-side cost of installing a data
// block (copy into the line plus access-control tag update).
func (n *Node) InstallCost(bytes int) sim.Time {
	return sim.Time(bytes) * n.Net.PerByteSend
}

// WakeCompute releases the compute processor if it is fault-waiting on
// block b. Must be called from the protocol processor.
func (n *Node) WakeCompute(b memory.Block) {
	if n.waiting && n.waitBlock == b {
		n.waiting = false
		n.ProtoProc.Send(n.Compute, MsgWake{Block: b}, n.Net.LocalDelay)
	}
}

// FaultWaitBlock reports the block the compute processor is currently
// fault-waiting on, if any.
func (n *Node) FaultWaitBlock() (memory.Block, bool) { return n.waitBlock, n.waiting }

// fault vectors an access fault on the compute processor p: it charges
// detection cost, invokes the protocol, and blocks until the protocol
// processor wakes it. Time spent is accounted as remote-data wait.
func (n *Node) fault(p *sim.Proc, a memory.Addr, write bool) {
	start := p.Now()
	p.AdvanceCat(n.Net.FaultDetect, sim.CatOccupancy)
	b := n.AS.BlockOf(a)
	if n.Trace != nil {
		ev := trace.Event{
			At: p.Now(), Node: n.ID, Proc: trace.ProcCompute, Kind: trace.Fault,
			Phase: n.phaseID, Iter: n.phaseIter,
			What: fmt.Sprintf("block %#x write=%v", uint64(b), write),
		}
		p.OnCommit(func() { n.Trace.Record(ev) })
	}
	if n.presendFresh.Count() > 0 && n.presendFresh.Clear(b) {
		// A pre-sent copy was installed but invalidated or recalled
		// before the compute processor consumed it: a wasted pre-send.
		n.Met.PresendsStale.Inc()
	}
	n.waiting, n.waitBlock = true, b
	resolved := n.Proto.OnFault(n, b, write)
	if resolved {
		n.waiting = false
	} else {
		p.SetWaitCat(sim.CatStall)
		n.RecvCompute(p, func(m any) bool {
			w, ok := m.(MsgWake)
			return ok && w.Block == b
		})
		p.SetWaitCat(sim.CatIdle)
	}
	dt := p.Now() - start
	n.Stats.RemoteWait += dt
	n.Met.FaultLatency.Observe(int64(dt))
	if n.Rec != nil {
		n.Rec.NoteStall(dt)
	}
	if ps := n.curPhase; ps != nil {
		ps.RemoteWaitNS += int64(dt)
		if write {
			ps.WriteFaults++
		} else {
			ps.ReadFaults++
		}
	}
	if write {
		n.Stats.WriteFaults++
	} else {
		n.Stats.ReadFaults++
	}
}

// ReadF64 performs a shared-memory load of a float64 on compute processor
// p, faulting into the protocol as needed.
func (n *Node) ReadF64(p *sim.Proc, a memory.Addr) float64 {
	if n.Rec != nil {
		n.Rec.NoteAccess(n.phaseID, n.phaseIter, p.Now(), n.AS.BlockOf(a), false)
	}
	for {
		if v, ok := n.Store.LoadF64(a); ok {
			if n.pendingUse.Count() > 0 {
				n.finishUse(p, a)
			}
			if n.presendFresh.Count() > 0 {
				n.notePresendUse(a)
			}
			return v
		}
		n.fault(p, a, false)
	}
}

// WriteF64 performs a shared-memory store of a float64.
func (n *Node) WriteF64(p *sim.Proc, a memory.Addr, v float64) {
	if n.Rec != nil {
		n.Rec.NoteAccess(n.phaseID, n.phaseIter, p.Now(), n.AS.BlockOf(a), true)
	}
	for {
		if n.Store.StoreF64(a, v) {
			if n.pendingUse.Count() > 0 {
				n.finishUse(p, a)
			}
			if n.presendFresh.Count() > 0 {
				n.notePresendUse(a)
			}
			return
		}
		n.fault(p, a, true)
	}
}

// RMWF64 performs an atomic read-modify-write of a shared float64: it
// first acquires write access (faulting as needed), then applies fn in a
// single non-yielding step, so no other node's write can interleave —
// the shared-memory analogue of a lock-protected update.
func (n *Node) RMWF64(p *sim.Proc, a memory.Addr, fn func(v float64) float64) {
	if n.Rec != nil {
		n.Rec.NoteAccess(n.phaseID, n.phaseIter, p.Now(), n.AS.BlockOf(a), true)
	}
	for {
		if v, ok := n.Store.LoadF64(a); ok {
			if n.Store.StoreF64(a, fn(v)) {
				if n.pendingUse.Count() > 0 {
					n.finishUse(p, a)
				}
				if n.presendFresh.Count() > 0 {
					n.notePresendUse(a)
				}
				return
			}
		}
		n.fault(p, a, true)
	}
}

// ReadU64 performs a shared-memory load of a uint64.
func (n *Node) ReadU64(p *sim.Proc, a memory.Addr) uint64 {
	if n.Rec != nil {
		n.Rec.NoteAccess(n.phaseID, n.phaseIter, p.Now(), n.AS.BlockOf(a), false)
	}
	for {
		if v, ok := n.Store.LoadU64(a); ok {
			if n.pendingUse.Count() > 0 {
				n.finishUse(p, a)
			}
			if n.presendFresh.Count() > 0 {
				n.notePresendUse(a)
			}
			return v
		}
		n.fault(p, a, false)
	}
}

// WriteU64 performs a shared-memory store of a uint64.
func (n *Node) WriteU64(p *sim.Proc, a memory.Addr, v uint64) {
	if n.Rec != nil {
		n.Rec.NoteAccess(n.phaseID, n.phaseIter, p.Now(), n.AS.BlockOf(a), true)
	}
	for {
		if n.Store.StoreU64(a, v) {
			if n.pendingUse.Count() > 0 {
				n.finishUse(p, a)
			}
			if n.presendFresh.Count() > 0 {
				n.notePresendUse(a)
			}
			return
		}
		n.fault(p, a, true)
	}
}

// ReadU32 performs a shared-memory load of a uint32.
func (n *Node) ReadU32(p *sim.Proc, a memory.Addr) uint32 {
	if n.Rec != nil {
		n.Rec.NoteAccess(n.phaseID, n.phaseIter, p.Now(), n.AS.BlockOf(a), false)
	}
	for {
		if v, ok := n.Store.LoadU32(a); ok {
			if n.pendingUse.Count() > 0 {
				n.finishUse(p, a)
			}
			if n.presendFresh.Count() > 0 {
				n.notePresendUse(a)
			}
			return v
		}
		n.fault(p, a, false)
	}
}

// WriteU32 performs a shared-memory store of a uint32.
func (n *Node) WriteU32(p *sim.Proc, a memory.Addr, v uint32) {
	if n.Rec != nil {
		n.Rec.NoteAccess(n.phaseID, n.phaseIter, p.Now(), n.AS.BlockOf(a), true)
	}
	for {
		if n.Store.StoreU32(a, v) {
			if n.pendingUse.Count() > 0 {
				n.finishUse(p, a)
			}
			if n.presendFresh.Count() > 0 {
				n.notePresendUse(a)
			}
			return
		}
		n.fault(p, a, true)
	}
}

// MarkPendingUse records that the compute processor is about to consume a
// grant for b. Called by protocols when installing data for a
// fault-waiting compute processor.
func (n *Node) MarkPendingUse(b memory.Block) {
	n.pendingUse.Set(b)
}

// PendingUse reports whether a grant for b awaits its first use.
func (n *Node) PendingUse(b memory.Block) bool {
	return n.pendingUse.Has(b)
}

// DeferPostUse marks that the protocol owes a post-use action for b. It
// reports false when no use is pending (the caller must act now).
func (n *Node) DeferPostUse(b memory.Block) bool {
	if !n.pendingUse.Has(b) {
		return false
	}
	n.pendingDeferred.Set(b)
	return true
}

// finishUse clears the pending-use mark after a successful access and, if
// a protocol action was deferred, notifies the protocol processor.
func (n *Node) finishUse(p *sim.Proc, a memory.Addr) {
	b := n.AS.BlockOf(a)
	if !n.pendingUse.Clear(b) {
		return
	}
	if n.pendingDeferred.Clear(b) {
		n.Post(p, n, MsgUseDone{Block: b})
	}
}

// RecvCompute blocks the compute processor until a message satisfying want
// arrives. Application signals (MsgSignal) arriving meanwhile are stashed
// for PopSignal; any other message is a protocol bug.
func (n *Node) RecvCompute(p *sim.Proc, want func(m any) bool) sim.Delivery {
	for {
		d := p.Recv()
		if want(d.Msg) {
			return d
		}
		if _, ok := d.Msg.(MsgSignal); ok {
			n.sigStash = append(n.sigStash, d)
			continue
		}
		panic(fmt.Sprintf("tempest: node %d compute got unexpected %T", n.ID, d.Msg))
	}
}

// PopSignal returns the earliest stashed application signal, if any.
func (n *Node) PopSignal() (sim.Delivery, bool) {
	if len(n.sigStash) == 0 {
		return sim.Delivery{}, false
	}
	d := n.sigStash[0]
	n.sigStash = n.sigStash[1:]
	return d, true
}

// ProtocolLoop is the protocol processor's body: dispatch messages to the
// protocol until the simulation drains (the Proc runs as a daemon).
func (n *Node) ProtocolLoop(p *sim.Proc) {
	for {
		d := p.Recv()
		p.Advance(n.Net.RecvOverheadAt(p.Now(), n.ID))
		var flow int64
		if tm, ok := d.Msg.(tracedMsg); ok {
			d.Msg = tm.Msg
			flow = tm.Flow
		}
		if m, ok := d.Msg.(Msg); ok {
			n.Met.Recv[KindOf(m)].Inc()
			if n.Trace != nil {
				ev := trace.Event{
					At: p.Now(), Node: n.ID, Proc: trace.ProcProto, Kind: trace.Recv,
					Phase: n.phaseID, Iter: n.phaseIter, Flow: flow,
					What: MsgString(m),
				}
				p.OnCommit(func() { n.Trace.Record(ev) })
			}
		}
		if agg, ok := d.Msg.(MsgAgg); ok {
			// Node-leader aggregate: redistribute the parts here; the
			// protocol only ever sees ordinary MsgBulk.
			n.redistributeAgg(p, agg)
		} else {
			n.Proto.Handle(n, d)
		}
		if n.aggOn && len(n.aggDirty) > 0 && p.Pending() == 0 {
			// About to block in Recv with bulks still buffered (e.g.
			// gather replies from a request burst): flush now, so no
			// one ever waits on data parked in an idle node's buffer.
			n.FlushAgg(p)
		}
	}
}
