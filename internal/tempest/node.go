// Package tempest is the user-level shared-memory substrate of the
// simulated machine, modeled on the Tempest interface that Blizzard
// implemented on the CM-5: fine-grain access control (package memory),
// access faults vectored to user-level protocol handlers, low-level
// messaging between nodes, and the directory bookkeeping shared by the
// coherence protocols built on top (stache, the predictive protocol, and
// the write-update baseline).
//
// Each simulated node runs two sim Procs: a compute processor executing
// application code, and a protocol processor running a message-handler
// loop (Blizzard dispatched protocol handlers from active messages and
// polling; the split models handler occupancy without modeling preemption
// of compute, a second-order effect).
package tempest

import (
	"fmt"

	"presto/internal/memory"
	"presto/internal/network"
	"presto/internal/sim"
	"presto/internal/trace"
)

// Protocol is a user-level cache-coherence protocol in the Tempest sense.
// Implementations keep their per-node state via Node.ProtoState.
type Protocol interface {
	// Name identifies the protocol in reports.
	Name() string
	// Init prepares per-node protocol state; called once per node before
	// the simulation starts.
	Init(n *Node)
	// OnFault runs on n's compute processor after an access fault on
	// block b has been detected and vectored. It either initiates the
	// request that will eventually make the block accessible and wake
	// the compute processor (returning false), or resolves the fault
	// locally without blocking (returning true).
	OnFault(n *Node, b memory.Block, write bool) (resolved bool)
	// Handle runs on n's protocol processor for each arriving message
	// (dispatch overhead has already been charged).
	Handle(n *Node, d sim.Delivery)
}

// PhaseProtocol is implemented by protocols that accept the compiler's
// parallel-phase directives (the predictive protocol).
type PhaseProtocol interface {
	Protocol
	// BeginPhase runs on n's compute processor at a phase directive. It
	// may block (executing the pre-send phase) and returns the virtual
	// time spent pre-sending on this node.
	BeginPhase(n *Node, phase int) sim.Time
	// EndPhase runs on n's compute processor when the parallel phase
	// completes (after the phase's closing barrier).
	EndPhase(n *Node, phase int)
}

// Stats is one node's time breakdown and event counters. The three time
// buckets mirror the paper's figure legends: remote-data wait, predictive
// protocol (pre-send), and compute+synchronization.
type Stats struct {
	Compute    sim.Time // application computation (Advance'd by the app)
	RemoteWait sim.Time // blocked in access faults
	Presend    sim.Time // executing pre-send directives
	Sync       sim.Time // waiting at barriers

	ReadFaults  int64
	WriteFaults int64
	MsgsSent    int64
	BytesSent   int64

	PresendsSent    int64 // blocks pre-sent from this home
	PresendsSkipped int64 // schedule entries skipped (target already had a copy)
	BulkMsgs        int64 // coalesced pre-send messages
	Conflicts       int64 // schedule entries recorded as conflicts
}

// Total returns the node's total accounted virtual time.
func (s *Stats) Total() sim.Time { return s.Compute + s.RemoteWait + s.Presend + s.Sync }

// Node is one simulated machine node.
type Node struct {
	ID    int
	AS    *memory.AddressSpace
	Store *memory.Store
	Net   *network.Params
	Proto Protocol
	Dir   *Directory // directory for blocks this node homes

	Compute   *sim.Proc // set by the runtime when the compute Proc spawns
	ProtoProc *sim.Proc
	Peers     []*Node // all nodes, indexed by ID (includes self)

	Stats Stats

	// Compute-processor fault rendezvous.
	waiting   bool
	waitBlock memory.Block

	// sigStash holds application signals that arrived while the compute
	// processor was blocked in a protocol wait.
	sigStash []sim.Delivery

	// pendingUse tracks blocks granted to a fault-waiting compute
	// processor that have not yet been accessed. Protocols defer recalls
	// and invalidations for such blocks until the access completes,
	// which guarantees every grantee makes progress (no migratory
	// livelock).
	pendingUse  map[memory.Block]*useState
	pendingUseN int

	// ProtoState holds protocol-private per-node state.
	ProtoState any

	// Trace, when non-nil, records protocol events.
	Trace *trace.Ring
}

// NewNode constructs a node over the given address space. The runtime
// wires Peers and spawns the Procs.
func NewNode(id int, as *memory.AddressSpace, net *network.Params, proto Protocol) *Node {
	n := &Node{
		ID:    id,
		AS:    as,
		Store: memory.NewStore(as, id),
		Net:   net,
		Proto: proto,
		Dir:   NewDirectory(),
	}
	return n
}

// Post sends a protocol message from src (the currently running Proc on
// this node) to dst's protocol processor, charging sender occupancy and
// network transit per the cost model. Node-local messages (dst == n) use
// the cheap local path.
func (n *Node) Post(src *sim.Proc, dst *Node, m Msg) {
	if dst == n {
		src.Advance(n.Net.LocalOverhead)
		src.Send(n.ProtoProc, m, n.Net.LocalDelay)
		return
	}
	payload := m.PayloadBytes()
	src.Advance(n.Net.SendCost(payload))
	src.Send(dst.ProtoProc, m, n.Net.TransitDelay(payload))
	n.Stats.MsgsSent++
	n.Stats.BytesSent += int64(payload + n.Net.HeaderBytes)
	if n.Trace != nil {
		n.Trace.Add(src.Now(), n.ID, trace.Send, "%s -> n%d", MsgString(m), dst.ID)
	}
}

// MsgString renders a protocol message compactly for traces.
func MsgString(m Msg) string {
	switch v := m.(type) {
	case MsgGetRO:
		return fmt.Sprintf("GetRO(%#x req=%d)", uint64(v.Block), v.Req)
	case MsgGetRW:
		return fmt.Sprintf("GetRW(%#x req=%d)", uint64(v.Block), v.Req)
	case MsgDataRO:
		return fmt.Sprintf("DataRO(%#x p=%v)", uint64(v.Block), v.Presend)
	case MsgDataRW:
		return fmt.Sprintf("DataRW(%#x p=%v)", uint64(v.Block), v.Presend)
	case MsgInval:
		return fmt.Sprintf("Inval(%#x)", uint64(v.Block))
	case MsgInvalAck:
		return fmt.Sprintf("InvalAck(%#x from=%d)", uint64(v.Block), v.From)
	case MsgRecallRO:
		return fmt.Sprintf("RecallRO(%#x)", uint64(v.Block))
	case MsgRecallRW:
		return fmt.Sprintf("RecallRW(%#x)", uint64(v.Block))
	case MsgWriteBack:
		return fmt.Sprintf("WriteBack(%#x from=%d dg=%v)", uint64(v.Block), v.From, v.Downgraded)
	case MsgBulk:
		return fmt.Sprintf("Bulk(%d blocks)", len(v.Entries))
	default:
		return fmt.Sprintf("%T", m)
	}
}

// InstallCost returns the modeled receiver-side cost of installing a data
// block (copy into the line plus access-control tag update).
func (n *Node) InstallCost(bytes int) sim.Time {
	return sim.Time(bytes) * n.Net.PerByteSend
}

// WakeCompute releases the compute processor if it is fault-waiting on
// block b. Must be called from the protocol processor.
func (n *Node) WakeCompute(b memory.Block) {
	if n.waiting && n.waitBlock == b {
		n.waiting = false
		n.ProtoProc.Send(n.Compute, MsgWake{Block: b}, n.Net.LocalDelay)
	}
}

// FaultWaitBlock reports the block the compute processor is currently
// fault-waiting on, if any.
func (n *Node) FaultWaitBlock() (memory.Block, bool) { return n.waitBlock, n.waiting }

// fault vectors an access fault on the compute processor p: it charges
// detection cost, invokes the protocol, and blocks until the protocol
// processor wakes it. Time spent is accounted as remote-data wait.
func (n *Node) fault(p *sim.Proc, a memory.Addr, write bool) {
	start := p.Now()
	p.Advance(n.Net.FaultDetect)
	b := n.AS.BlockOf(a)
	if n.Trace != nil {
		n.Trace.Add(p.Now(), n.ID, trace.Fault, "block %#x write=%v", uint64(b), write)
	}
	n.waiting, n.waitBlock = true, b
	if n.Proto.OnFault(n, b, write) {
		n.waiting = false
		n.Stats.RemoteWait += p.Now() - start
		if write {
			n.Stats.WriteFaults++
		} else {
			n.Stats.ReadFaults++
		}
		return
	}
	n.RecvCompute(p, func(m any) bool {
		w, ok := m.(MsgWake)
		return ok && w.Block == b
	})
	n.Stats.RemoteWait += p.Now() - start
	if write {
		n.Stats.WriteFaults++
	} else {
		n.Stats.ReadFaults++
	}
}

// ReadF64 performs a shared-memory load of a float64 on compute processor
// p, faulting into the protocol as needed.
func (n *Node) ReadF64(p *sim.Proc, a memory.Addr) float64 {
	for {
		if v, ok := n.Store.LoadF64(a); ok {
			if n.pendingUseN > 0 {
				n.finishUse(p, a)
			}
			return v
		}
		n.fault(p, a, false)
	}
}

// WriteF64 performs a shared-memory store of a float64.
func (n *Node) WriteF64(p *sim.Proc, a memory.Addr, v float64) {
	for {
		if n.Store.StoreF64(a, v) {
			if n.pendingUseN > 0 {
				n.finishUse(p, a)
			}
			return
		}
		n.fault(p, a, true)
	}
}

// RMWF64 performs an atomic read-modify-write of a shared float64: it
// first acquires write access (faulting as needed), then applies fn in a
// single non-yielding step, so no other node's write can interleave —
// the shared-memory analogue of a lock-protected update.
func (n *Node) RMWF64(p *sim.Proc, a memory.Addr, fn func(v float64) float64) {
	for {
		if v, ok := n.Store.LoadF64(a); ok {
			if n.Store.StoreF64(a, fn(v)) {
				if n.pendingUseN > 0 {
					n.finishUse(p, a)
				}
				return
			}
		}
		n.fault(p, a, true)
	}
}

// ReadU64 performs a shared-memory load of a uint64.
func (n *Node) ReadU64(p *sim.Proc, a memory.Addr) uint64 {
	for {
		if v, ok := n.Store.LoadU64(a); ok {
			if n.pendingUseN > 0 {
				n.finishUse(p, a)
			}
			return v
		}
		n.fault(p, a, false)
	}
}

// WriteU64 performs a shared-memory store of a uint64.
func (n *Node) WriteU64(p *sim.Proc, a memory.Addr, v uint64) {
	for {
		if n.Store.StoreU64(a, v) {
			if n.pendingUseN > 0 {
				n.finishUse(p, a)
			}
			return
		}
		n.fault(p, a, true)
	}
}

// ReadU32 performs a shared-memory load of a uint32.
func (n *Node) ReadU32(p *sim.Proc, a memory.Addr) uint32 {
	for {
		if v, ok := n.Store.LoadU32(a); ok {
			if n.pendingUseN > 0 {
				n.finishUse(p, a)
			}
			return v
		}
		n.fault(p, a, false)
	}
}

// WriteU32 performs a shared-memory store of a uint32.
func (n *Node) WriteU32(p *sim.Proc, a memory.Addr, v uint32) {
	for {
		if n.Store.StoreU32(a, v) {
			if n.pendingUseN > 0 {
				n.finishUse(p, a)
			}
			return
		}
		n.fault(p, a, true)
	}
}

// useState tracks one pending first use of a freshly granted block.
type useState struct {
	deferred bool // a protocol action waits for the use to complete
}

// MarkPendingUse records that the compute processor is about to consume a
// grant for b. Called by protocols when installing data for a
// fault-waiting compute processor.
func (n *Node) MarkPendingUse(b memory.Block) {
	if n.pendingUse == nil {
		n.pendingUse = make(map[memory.Block]*useState)
	}
	if _, ok := n.pendingUse[b]; !ok {
		n.pendingUse[b] = &useState{}
		n.pendingUseN++
	}
}

// PendingUse reports whether a grant for b awaits its first use.
func (n *Node) PendingUse(b memory.Block) bool {
	_, ok := n.pendingUse[b]
	return ok
}

// DeferPostUse marks that the protocol owes a post-use action for b. It
// reports false when no use is pending (the caller must act now).
func (n *Node) DeferPostUse(b memory.Block) bool {
	st := n.pendingUse[b]
	if st == nil {
		return false
	}
	st.deferred = true
	return true
}

// finishUse clears the pending-use mark after a successful access and, if
// a protocol action was deferred, notifies the protocol processor.
func (n *Node) finishUse(p *sim.Proc, a memory.Addr) {
	b := n.AS.BlockOf(a)
	st := n.pendingUse[b]
	if st == nil {
		return
	}
	delete(n.pendingUse, b)
	n.pendingUseN--
	if st.deferred {
		n.Post(p, n, MsgUseDone{Block: b})
	}
}

// RecvCompute blocks the compute processor until a message satisfying want
// arrives. Application signals (MsgSignal) arriving meanwhile are stashed
// for PopSignal; any other message is a protocol bug.
func (n *Node) RecvCompute(p *sim.Proc, want func(m any) bool) sim.Delivery {
	for {
		d := p.Recv()
		if want(d.Msg) {
			return d
		}
		if _, ok := d.Msg.(MsgSignal); ok {
			n.sigStash = append(n.sigStash, d)
			continue
		}
		panic(fmt.Sprintf("tempest: node %d compute got unexpected %T", n.ID, d.Msg))
	}
}

// PopSignal returns the earliest stashed application signal, if any.
func (n *Node) PopSignal() (sim.Delivery, bool) {
	if len(n.sigStash) == 0 {
		return sim.Delivery{}, false
	}
	d := n.sigStash[0]
	n.sigStash = n.sigStash[1:]
	return d, true
}

// ProtocolLoop is the protocol processor's body: dispatch messages to the
// protocol until the simulation drains (the Proc runs as a daemon).
func (n *Node) ProtocolLoop(p *sim.Proc) {
	for {
		d := p.Recv()
		p.Advance(n.Net.RecvOverhead)
		if n.Trace != nil {
			if m, ok := d.Msg.(Msg); ok {
				n.Trace.Add(p.Now(), n.ID, trace.Recv, "%s", MsgString(m))
			}
		}
		n.Proto.Handle(n, d)
	}
}
