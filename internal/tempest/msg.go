package tempest

import "presto/internal/memory"

// Msg is a protocol message. PayloadBytes reports the wire payload size
// (the fixed header is accounted separately by the network model).
type Msg interface {
	PayloadBytes() int
}

// addrBytes is the wire size of a block address or node ID field.
const addrBytes = 8

// MsgGetRO requests a read-only copy of a block from its home node.
type MsgGetRO struct {
	Block memory.Block
	Req   int // requesting node
}

// MsgGetRW requests a writable copy of a block from its home node.
type MsgGetRW struct {
	Block memory.Block
	Req   int
}

// MsgDataRO carries a read-only copy of a block to a requester (or to a
// scheduled reader during the pre-send phase when Presend is set).
type MsgDataRO struct {
	Block   memory.Block
	Data    []byte
	Presend bool
}

// MsgDataRW carries an exclusive writable copy of a block.
type MsgDataRW struct {
	Block   memory.Block
	Data    []byte
	Presend bool
}

// MsgInval orders a sharer to drop its read-only copy.
type MsgInval struct {
	Block memory.Block
}

// MsgInvalAck acknowledges an invalidation back to the home node.
type MsgInvalAck struct {
	Block memory.Block
	From  int
}

// MsgRecallRO orders the exclusive owner to downgrade to read-only and
// return the current data to the home node.
type MsgRecallRO struct {
	Block memory.Block
}

// MsgRecallRW orders the exclusive owner to invalidate its copy and return
// the current data to the home node.
type MsgRecallRW struct {
	Block memory.Block
}

// MsgWriteBack returns a block's current data from the (former) exclusive
// owner to the home node. Downgraded reports that the owner kept a
// read-only copy (RecallRO) rather than invalidating (RecallRW).
type MsgWriteBack struct {
	Block      memory.Block
	Data       []byte
	From       int
	Downgraded bool
}

// BulkEntry is one block within a coalesced pre-send message.
type BulkEntry struct {
	Block memory.Block
	Data  []byte
	RW    bool
}

// MsgBulk is a coalesced transfer carrying several blocks to one
// destination under a single message-startup cost: pre-sends (paper §3.4),
// write-update pushes, and gather replies all use it. Notify asks the
// receiving protocol processor to signal its compute processor
// (MsgGatherDone) after installing the entries.
type MsgBulk struct {
	Entries []BulkEntry
	Notify  bool
}

// MsgGetBulk requests read-only copies of many blocks from their common
// home in one message — the transport an inspector-executor runtime
// (CHAOS-style, paper §2) uses to execute its communication schedule.
// Blocks that are not home-valid are silently skipped; the requester
// falls back to ordinary faults for them.
type MsgGetBulk struct {
	Blocks []memory.Block
	Req    int
}

// MsgGatherDone is the node-local completion notice for a Notify bulk.
type MsgGatherDone struct{}

// MsgWake is a node-local message from the protocol processor to the
// compute processor: the block it faulted on is now accessible.
type MsgWake struct {
	Block memory.Block
}

// MsgPresendGo is a node-local directive from the compute processor asking
// its protocol processor to execute the pre-send phase for a schedule.
type MsgPresendGo struct {
	Phase int
}

// MsgPresendDone is the node-local completion notice for MsgPresendGo.
type MsgPresendDone struct {
	Phase int
}

// MsgUseDone is a node-local notice from the compute processor that the
// access a just-installed grant satisfied has completed, releasing any
// recall or invalidation the protocol deferred to guarantee the grantee
// makes progress (livelock avoidance under migratory storms).
type MsgUseDone struct {
	Block memory.Block
}

// MsgSignal is an application-level point-to-point signal between compute
// processors (e.g. the token that serializes parallel tree insertion).
type MsgSignal struct {
	Tag  int
	From int
}

// MsgUpdate pushes fresh data for a block directly to a consumer (the
// write-update baseline protocol used by the hand-optimized SPMD Barnes).
type MsgUpdate struct {
	Block memory.Block
	Data  []byte
}

func (m MsgGetRO) PayloadBytes() int     { return 2 * addrBytes }
func (m MsgGetRW) PayloadBytes() int     { return 2 * addrBytes }
func (m MsgDataRO) PayloadBytes() int    { return addrBytes + len(m.Data) }
func (m MsgDataRW) PayloadBytes() int    { return addrBytes + len(m.Data) }
func (m MsgInval) PayloadBytes() int     { return addrBytes }
func (m MsgInvalAck) PayloadBytes() int  { return 2 * addrBytes }
func (m MsgRecallRO) PayloadBytes() int  { return addrBytes }
func (m MsgRecallRW) PayloadBytes() int  { return addrBytes }
func (m MsgWriteBack) PayloadBytes() int { return 2*addrBytes + len(m.Data) }
func (m MsgBulk) PayloadBytes() int {
	n := 0
	for _, e := range m.Entries {
		n += addrBytes + len(e.Data)
	}
	return n
}
func (m MsgGetBulk) PayloadBytes() int     { return addrBytes * (len(m.Blocks) + 1) }
func (m MsgGatherDone) PayloadBytes() int  { return 0 }
func (m MsgWake) PayloadBytes() int        { return 0 }
func (m MsgPresendGo) PayloadBytes() int   { return 0 }
func (m MsgPresendDone) PayloadBytes() int { return 0 }
func (m MsgUpdate) PayloadBytes() int      { return addrBytes + len(m.Data) }
func (m MsgSignal) PayloadBytes() int      { return 2 * addrBytes }
func (m MsgUseDone) PayloadBytes() int     { return addrBytes }
