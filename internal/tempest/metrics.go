package tempest

import (
	"fmt"

	"presto/internal/metrics"
)

// MsgKind is a dense index over the protocol message types, used for
// per-kind send/receive counters.
type MsgKind uint8

const (
	KindGetRO MsgKind = iota
	KindGetRW
	KindDataRO
	KindDataRW
	KindInval
	KindInvalAck
	KindRecallRO
	KindRecallRW
	KindWriteBack
	KindBulk
	KindAgg
	KindGetBulk
	KindGatherDone
	KindWake
	KindPresendGo
	KindPresendDone
	KindUseDone
	KindSignal
	KindUpdate
	KindOther
	NumMsgKinds
)

var msgKindNames = [NumMsgKinds]string{
	"GetRO", "GetRW", "DataRO", "DataRW", "Inval", "InvalAck",
	"RecallRO", "RecallRW", "WriteBack", "Bulk", "Agg", "GetBulk", "GatherDone",
	"Wake", "PresendGo", "PresendDone", "UseDone", "Signal", "Update",
	"Other",
}

func (k MsgKind) String() string { return msgKindNames[k] }

// KindOf classifies a protocol message.
func KindOf(m Msg) MsgKind {
	switch m.(type) {
	case MsgGetRO:
		return KindGetRO
	case MsgGetRW:
		return KindGetRW
	case MsgDataRO:
		return KindDataRO
	case MsgDataRW:
		return KindDataRW
	case MsgInval:
		return KindInval
	case MsgInvalAck:
		return KindInvalAck
	case MsgRecallRO:
		return KindRecallRO
	case MsgRecallRW:
		return KindRecallRW
	case MsgWriteBack:
		return KindWriteBack
	case MsgBulk:
		return KindBulk
	case MsgAgg:
		return KindAgg
	case MsgGetBulk:
		return KindGetBulk
	case MsgGatherDone:
		return KindGatherDone
	case MsgWake:
		return KindWake
	case MsgPresendGo:
		return KindPresendGo
	case MsgPresendDone:
		return KindPresendDone
	case MsgUseDone:
		return KindUseDone
	case MsgSignal:
		return KindSignal
	case MsgUpdate:
		return KindUpdate
	}
	return KindOther
}

// numDirStates sizes the directory-transition counter matrix.
const numDirStates = 4

// Metrics is one node's instrument set, registered against the machine's
// shared registry under an "nNN/" prefix. All pointers are cached at
// construction so hot-path updates are lookup- and allocation-free.
type Metrics struct {
	// Sent and Recv count protocol messages by kind (Sent at the posting
	// node, Recv at the dispatching protocol processor).
	Sent [NumMsgKinds]*metrics.Counter
	Recv [NumMsgKinds]*metrics.Counter

	// Dir counts directory state transitions [from][to] at this home.
	Dir [numDirStates][numDirStates]*metrics.Counter

	// FaultLatency is the fault-to-grant latency distribution (virtual
	// nanoseconds from fault detection to resumed access).
	FaultLatency *metrics.Histogram
	// MsgPayload is the sent-message payload-size distribution (bytes,
	// excluding the fixed header).
	MsgPayload *metrics.Histogram

	// PresendsIn counts pre-sent blocks installed at this node;
	// PresendHits counts those consumed by an access before any fault
	// (a fault averted); PresendsStale counts pre-sent blocks that
	// faulted anyway (invalidated or recalled before use).
	PresendsIn    *metrics.Counter
	PresendHits   *metrics.Counter
	PresendsStale *metrics.Counter
	// PresendsRaced counts pre-sent blocks that arrived while the compute
	// processor was already fault-waiting on them (too late to avert the
	// fault). At quiescence PresendsIn == PresendHits + PresendsStale +
	// PresendsRaced + the node's still-fresh count, exactly
	// (check.Accounting).
	PresendsRaced *metrics.Counter

	// Phases attributes faults, wait time and pre-send consumption to
	// compiler-identified parallel phases (per node).
	Phases metrics.PhaseSet
}

// NewMetrics registers one node's instruments with reg.
func NewMetrics(reg *metrics.Registry, node int) *Metrics {
	p := fmt.Sprintf("n%02d/", node)
	m := &Metrics{
		FaultLatency:  reg.Histogram(p + "fault_latency_ns"),
		MsgPayload:    reg.Histogram(p + "msg_payload_bytes"),
		PresendsIn:    reg.Counter(p + "presends_in"),
		PresendHits:   reg.Counter(p + "presend_hits"),
		PresendsStale: reg.Counter(p + "presends_stale"),
		PresendsRaced: reg.Counter(p + "presends_raced"),
	}
	for k := MsgKind(0); k < NumMsgKinds; k++ {
		m.Sent[k] = reg.Counter(p + "sent/" + k.String())
		m.Recv[k] = reg.Counter(p + "recv/" + k.String())
	}
	for from := 0; from < numDirStates; from++ {
		for to := 0; to < numDirStates; to++ {
			m.Dir[from][to] = reg.Counter(fmt.Sprintf("%sdir/%v_to_%v",
				p, DirState(from), DirState(to)))
		}
	}
	return m
}
