package tempest

import (
	"presto/internal/memory"
	"presto/internal/sim"
)

// AccessEv is one shared-memory access (load, store or RMW) in a node's
// calibration trace: the virtual time it was issued, the block it
// touched (at the calibration block size) and whether it needed write
// access. The analytical predictor (internal/predict) merges the
// per-node traces by time and replays a coherence automaton at coarser
// block granularities to derive fault counts without re-simulating.
type AccessEv struct {
	At       sim.Time
	StallCum sim.Time // node's cumulative fault wait before this issue
	Block    memory.Block
	Phase    int32
	Iter     int32
	Write    bool
}

// CommRecord captures one node's memory behavior during a calibration
// run for the analytical predictor: the time-ordered access trace plus
// per-phase pre-send arrivals. Recording is observation only — it
// charges no virtual time and never perturbs the simulation — and all
// state is updated exclusively by the owning node's processors, which
// share a lane under the parallel engine, so no synchronization is
// needed (the same argument as Stats).
type CommRecord struct {
	// Accesses is the node's access trace in issue order (times are
	// nondecreasing: each compute processor issues sequentially).
	Accesses []AccessEv
	// Presend maps a parallel-phase ID (-1 = outside any phase) to the
	// arrival count of each pre-sent block installed at this node.
	Presend map[int]map[memory.Block]int64

	stallCum sim.Time
}

// NewCommRecord returns an empty recorder.
func NewCommRecord() *CommRecord {
	return &CommRecord{Presend: make(map[int]map[memory.Block]int64)}
}

// NoteAccess appends one access to the trace. Called once per accessor
// invocation, before the hit check — fault retries are not re-counted.
func (r *CommRecord) NoteAccess(phase, iter int, at sim.Time, b memory.Block, write bool) {
	r.Accesses = append(r.Accesses, AccessEv{
		At: at, StallCum: r.stallCum, Block: b,
		Phase: int32(phase), Iter: int32(iter), Write: write,
	})
}

// NoteStall accumulates one resolved fault's wait time, letting the
// replay subtract calibration-size stalls from the recorded timeline
// (subtracting At-StallCum leaves pure compute progression).
func (r *CommRecord) NoteStall(dt sim.Time) { r.stallCum += dt }

// NotePresend records one pre-send arrival for block b.
func (r *CommRecord) NotePresend(phase int, b memory.Block) {
	m := r.Presend[phase]
	if m == nil {
		m = make(map[memory.Block]int64)
		r.Presend[phase] = m
	}
	m[b]++
}
