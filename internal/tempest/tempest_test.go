package tempest

import (
	"strings"
	"testing"
	"testing/quick"

	"presto/internal/memory"
	"presto/internal/network"
	"presto/internal/sim"
)

func TestBitsetBasics(t *testing.T) {
	var b Bitset
	if !b.Empty() {
		t.Fatal("zero bitset not empty")
	}
	b.Add(0)
	b.Add(5)
	b.Add(63)
	if b.Count() != 3 || !b.Has(5) || b.Has(4) {
		t.Fatalf("bitset = %v", b)
	}
	b.Remove(5)
	if b.Has(5) || b.Count() != 2 {
		t.Fatalf("after remove: %v", b)
	}
	var seen []int
	b.ForEach(func(n int) { seen = append(seen, n) })
	if len(seen) != 2 || seen[0] != 0 || seen[1] != 63 {
		t.Fatalf("foreach = %v", seen)
	}
	if b.String() != "{0,63}" {
		t.Fatalf("string = %s", b)
	}
	b.Clear()
	if !b.Empty() {
		t.Fatal("clear failed")
	}
}

// Property: Add/Remove behave like a set over [0,64).
func TestBitsetSetSemantics(t *testing.T) {
	f := func(ops []uint8) bool {
		var b Bitset
		ref := map[int]bool{}
		for _, op := range ops {
			n := int(op % 64)
			if op&0x80 != 0 {
				b.Remove(n)
				delete(ref, n)
			} else {
				b.Add(n)
				ref[n] = true
			}
		}
		if b.Count() != len(ref) {
			return false
		}
		for n := range ref {
			if !b.Has(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func dirAS() *memory.AddressSpace {
	as := memory.NewAddressSpace(2, 32)
	as.NewRegion("r", 1<<16, func(b int64) int { return int(b % 2) })
	return as
}

func TestDirectoryMaterialization(t *testing.T) {
	for name, d := range map[string]*Directory{
		"dense":  NewDirectory(dirAS()),
		"mapref": NewDirectoryRef(dirAS()),
	} {
		t.Run(name, func(t *testing.T) {
			b := memory.Block(0x40)
			if d.Lookup(b) != nil {
				t.Fatal("lookup created an entry")
			}
			e := d.Entry(b)
			if e.State != DirHome || e.Owner != -1 {
				t.Fatalf("fresh entry = %+v", e)
			}
			if d.Entry(b) != e {
				t.Fatal("entry not stable")
			}
			if d.Len() != 1 {
				t.Fatalf("len = %d", d.Len())
			}
			count := 0
			d.ForEach(func(memory.Block, *DirEntry) { count++ })
			if count != 1 {
				t.Fatalf("foreach visited %d", count)
			}
		})
	}
}

func TestDirectoryForEachOrdered(t *testing.T) {
	for name, d := range map[string]*Directory{
		"dense":  NewDirectory(dirAS()),
		"mapref": NewDirectoryRef(dirAS()),
	} {
		t.Run(name, func(t *testing.T) {
			for _, off := range []int64{0x400, 0x40, 0x2000, 0x0, 0x80} {
				d.Entry(memory.Block(off))
			}
			var got []memory.Block
			d.ForEach(func(b memory.Block, _ *DirEntry) { got = append(got, b) })
			want := []memory.Block{0x0, 0x40, 0x80, 0x400, 0x2000}
			if len(got) != len(want) {
				t.Fatalf("visited %d entries, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("order[%d] = %#x, want %#x", i, uint64(got[i]), uint64(want[i]))
				}
			}
		})
	}
}

func TestDirectoryPendingQueue(t *testing.T) {
	d := NewDirectory(dirAS())
	e := d.Entry(memory.Block(0x40))
	if e.PendingLen() != 0 {
		t.Fatal("fresh entry has pending requests")
	}
	if _, ok := d.PopPending(e); ok {
		t.Fatal("pop on empty queue succeeded")
	}
	// Push enough to force the ring to grow past the slab buffer size.
	const reqs = 20
	for i := 0; i < reqs; i++ {
		d.PushPending(e, PendReq{Req: i, Write: i%2 == 0})
	}
	if e.PendingLen() != reqs {
		t.Fatalf("PendingLen = %d, want %d", e.PendingLen(), reqs)
	}
	i := 0
	e.ForEachPending(func(r PendReq) {
		if r.Req != i {
			t.Fatalf("ForEachPending[%d].Req = %d", i, r.Req)
		}
		i++
	})
	for i := 0; i < reqs; i++ {
		r, ok := d.PopPending(e)
		if !ok || r.Req != i || r.Write != (i%2 == 0) {
			t.Fatalf("pop %d = %+v ok=%v", i, r, ok)
		}
	}
	if e.PendingLen() != 0 {
		t.Fatal("queue not drained")
	}
	// Drained buffers recycle through the slab: interleaved push/pop on
	// two entries must keep FIFO order per entry.
	e2 := d.Entry(memory.Block(0x80))
	d.PushPending(e, PendReq{Req: 100})
	d.PushPending(e2, PendReq{Req: 200})
	d.PushPending(e, PendReq{Req: 101})
	if r, _ := d.PopPending(e); r.Req != 100 {
		t.Fatalf("interleaved pop = %+v", r)
	}
	if r, _ := d.PopPending(e2); r.Req != 200 {
		t.Fatal("cross-entry queue corruption")
	}
	if r, _ := d.PopPending(e); r.Req != 101 {
		t.Fatal("FIFO order lost after slab recycling")
	}
}

func TestDirStateStrings(t *testing.T) {
	for s, want := range map[DirState]string{
		DirHome: "Home", DirRemoteExcl: "RemoteExcl",
		DirAwaitAcks: "AwaitAcks", DirAwaitWB: "AwaitWB",
	} {
		if s.String() != want {
			t.Fatalf("%d = %q, want %q", s, s.String(), want)
		}
	}
}

func TestMsgPayloadSizes(t *testing.T) {
	data := make([]byte, 32)
	cases := []struct {
		m    Msg
		want int
	}{
		{MsgGetRO{}, 16},
		{MsgGetRW{}, 16},
		{MsgDataRO{Data: data}, 40},
		{MsgDataRW{Data: data}, 40},
		{MsgInval{}, 8},
		{MsgInvalAck{}, 16},
		{MsgRecallRO{}, 8},
		{MsgRecallRW{}, 8},
		{MsgWriteBack{Data: data}, 48},
		{MsgBulk{Entries: []BulkEntry{{Data: data}, {Data: data}}}, 80},
		{MsgWake{}, 0},
		{MsgPresendGo{}, 0},
		{MsgPresendDone{}, 0},
		{MsgUpdate{Data: data}, 40},
		{MsgSignal{}, 16},
		{MsgUseDone{}, 8},
	}
	for _, c := range cases {
		if got := c.m.PayloadBytes(); got != c.want {
			t.Errorf("%T payload = %d, want %d", c.m, got, c.want)
		}
	}
}

func TestMsgString(t *testing.T) {
	s := MsgString(MsgGetRW{Block: 0x20, Req: 3})
	if !strings.Contains(s, "GetRW") || !strings.Contains(s, "req=3") {
		t.Fatalf("MsgString = %q", s)
	}
	if !strings.Contains(MsgString(MsgBulk{Entries: make([]BulkEntry, 4)}), "4 blocks") {
		t.Fatal("bulk string")
	}
}

// nullProto satisfies Protocol for substrate-level tests: faults resolve
// locally by installing a writable line (like a trivially coherent
// single-copy protocol).
type nullProto struct {
	handled []any
	faults  int
}

func (p *nullProto) Name() string { return "null" }
func (p *nullProto) Init(n *Node) {}
func (p *nullProto) OnFault(n *Node, b memory.Block, w bool) bool {
	p.faults++
	n.Store.Ensure(b).Tag = memory.ReadWrite
	return true
}
func (p *nullProto) Handle(n *Node, d sim.Delivery) { p.handled = append(p.handled, d.Msg) }

func twoNodes(t *testing.T) (*sim.Kernel, []*Node, *nullProto) {
	t.Helper()
	k := sim.NewKernel()
	as := memory.NewAddressSpace(2, 32)
	as.NewRegion("r", 1024, func(b int64) int { return int(b % 2) })
	proto := &nullProto{}
	nodes := []*Node{NewNode(0, as, network.CM5(), proto), NewNode(1, as, network.CM5(), proto)}
	for _, n := range nodes {
		n.Peers = nodes
	}
	for _, n := range nodes {
		n := n
		n.ProtoProc = k.Spawn("proto", n.ProtocolLoop)
		n.ProtoProc.SetDaemon(true)
	}
	return k, nodes, proto
}

func TestPostAccountsMessages(t *testing.T) {
	k, nodes, proto := twoNodes(t)
	nodes[0].Compute = k.Spawn("c0", func(p *sim.Proc) {
		nodes[0].Post(p, nodes[1], MsgInval{Block: 0})
		nodes[0].Post(p, nodes[0], MsgWake{}) // local: not counted as a message
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if nodes[0].Stats.MsgsSent != 1 {
		t.Fatalf("msgs = %d, want 1 (local excluded)", nodes[0].Stats.MsgsSent)
	}
	wantBytes := int64(8 + 16) // payload + header
	if nodes[0].Stats.BytesSent != wantBytes {
		t.Fatalf("bytes = %d, want %d", nodes[0].Stats.BytesSent, wantBytes)
	}
	if len(proto.handled) != 2 {
		t.Fatalf("handled = %d", len(proto.handled))
	}
}

func TestLocallyResolvedFaultAccounting(t *testing.T) {
	// nullProto resolves every fault locally; the fault path must account
	// detection cost and counters without blocking.
	k, nodes, proto := twoNodes(t)
	var elapsed sim.Time
	nodes[0].Compute = k.Spawn("c0", func(p *sim.Proc) {
		a := memory.Addr(32) // block 1 -> home node 1, invalid here
		nodes[0].ReadF64(p, a)
		elapsed = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if proto.faults != 1 {
		t.Fatalf("faults = %d, want 1", proto.faults)
	}
	if elapsed == 0 {
		t.Fatal("no fault-detection time accounted")
	}
	if nodes[0].Stats.ReadFaults != 1 || nodes[0].Stats.RemoteWait == 0 {
		t.Fatalf("stats = %+v", nodes[0].Stats)
	}
}

func TestPendingUseLifecycle(t *testing.T) {
	k, nodes, _ := twoNodes(t)
	n := nodes[0]
	b := memory.Block(0) // home at node 0
	n.Compute = k.Spawn("c0", func(p *sim.Proc) {
		n.MarkPendingUse(b)
		if !n.PendingUse(b) {
			t.Error("mark failed")
		}
		if !n.DeferPostUse(b) {
			t.Error("defer on pending use failed")
		}
		// A successful access consumes the pending use and notifies the
		// protocol processor (deferred flag set).
		n.ReadF64(p, memory.Addr(0))
		if n.PendingUse(b) {
			t.Error("use did not clear pending mark")
		}
		if n.DeferPostUse(b) {
			t.Error("defer after use should report no pending use")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// The deferred flag must have produced a MsgUseDone to the protocol
	// processor.
	// (nullProto records everything it handles.)
	found := false
	for _, m := range nodes[0].Proto.(*nullProto).handled {
		if _, ok := m.(MsgUseDone); ok {
			found = true
		}
	}
	if !found {
		t.Fatal("no MsgUseDone delivered")
	}
}

func TestRecvComputeStashesSignals(t *testing.T) {
	k, nodes, _ := twoNodes(t)
	n := nodes[0]
	n.Compute = k.Spawn("c0", func(p *sim.Proc) {
		// Wait for a wake; a signal arrives first and must be stashed.
		d := n.RecvCompute(p, func(m any) bool {
			_, ok := m.(MsgWake)
			return ok
		})
		if _, ok := d.Msg.(MsgWake); !ok {
			t.Errorf("got %T", d.Msg)
		}
		sig, ok := n.PopSignal()
		if !ok {
			t.Error("signal not stashed")
		}
		if s := sig.Msg.(MsgSignal); s.Tag != 7 {
			t.Errorf("tag = %d", s.Tag)
		}
	})
	k.Spawn("driver", func(p *sim.Proc) {
		p.Send(n.Compute, MsgSignal{Tag: 7, From: 1}, sim.Microsecond)
		p.Send(n.Compute, MsgWake{}, 2*sim.Microsecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestInstallCostScalesWithSize(t *testing.T) {
	_, nodes, _ := twoNodes(t)
	small := nodes[0].InstallCost(32)
	big := nodes[0].InstallCost(1024)
	if big <= small || small <= 0 {
		t.Fatalf("install costs: 32B=%v 1024B=%v", small, big)
	}
}

func TestStatsTotal(t *testing.T) {
	s := Stats{Compute: 1, RemoteWait: 2, Presend: 3, Sync: 4}
	if s.Total() != 10 {
		t.Fatalf("total = %v", s.Total())
	}
}
