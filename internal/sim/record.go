package sim

// Causal flight recorder and time attribution.
//
// When enabled (EnableRecorder), the kernel records a causality Edge for
// every *binding* wake — a wake that advanced the woken Proc's virtual
// clock: the Proc was the waiter and the wake was the constraint. Wakes
// that do not move the clock (a delivery that arrived while the Proc was
// busy, a barrier release at or before the Proc's own time) are not
// causal constraints and are not recorded. Binding edges are exactly the
// edges a backward critical-path walk follows (internal/causal), so the
// recorder captures the full constraint graph with one ring entry per
// blocking wake instead of one per event.
//
// Alongside edges, every virtual-clock mutation is charged to an
// attribution bucket: Advance charges the Proc's running category,
// resume jumps charge its waiting category, and delivery jumps split
// into network transit (Posted..At) and the waiting category (the
// pre-post remainder). Buckets therefore sum *exactly* to the Proc's
// final clock — the attribution invariant checked by internal/causal.
//
// Recording order equals commit order: under the serial engine, hooks
// append directly to the shared ring in dispatch order; under the
// parallel engine, edges buffer into the current laneStep and flush
// when the step commits, so the ring sees the same global order and the
// profile is byte-identical across engines. All hooks are guarded by a
// single nil check (k.rec / p.aslot), so a disabled recorder is a dead
// branch with zero allocations on the hot paths.

// EdgeKind classifies what woke the destination Proc.
type EdgeKind uint8

const (
	// EdgeSpawn is the initial resume that starts a Proc at time 0.
	EdgeSpawn EdgeKind = iota
	// EdgeTimer is a Sleep expiry (self-posted resume).
	EdgeTimer
	// EdgeBarrier is a barrier release; Src is the last arriver and
	// Posted is the last arrival time (At - Posted = barrier cost).
	EdgeBarrier
	// EdgeDeliver is a message delivery that unblocked a Recv; Posted is
	// the sender's clock at the send (At - Posted = network transit).
	EdgeDeliver
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeSpawn:
		return "spawn"
	case EdgeTimer:
		return "timer"
	case EdgeBarrier:
		return "barrier"
	case EdgeDeliver:
		return "deliver"
	}
	return "?"
}

// causes carried on events so the recorder can classify resume edges.
const (
	causeNone    uint8 = iota // spawn (from == nil) or plain resume
	causeTimer                // Sleep expiry
	causeBarrier              // barrier release batch
)

// Edge is one binding wake: Dst's clock jumped from Prev to At because
// Src did something at Posted.
type Edge struct {
	Kind   EdgeKind
	Src    int32 // waking Proc id (-1 for spawn)
	Dst    int32 // woken Proc id
	At     Time  // wake time (Dst's clock after the jump)
	Posted Time  // Src's clock when it caused the wake
	Prev   Time  // Dst's clock before the jump
}

// Recorder is a fixed-capacity ring of causality edges shared by all
// Procs of one kernel. It is written only in commit order (serial
// dispatch, or parallel commit replay), so no locking is needed.
type Recorder struct {
	buf   []Edge
	next  int
	total int64
}

// DefaultRecorderCap bounds the flight recorder when no explicit
// capacity is given (≈40 B/edge → ~40 MiB at the default).
const DefaultRecorderCap = 1 << 20

// EnableRecorder switches on causal edge recording with a ring holding
// the last cap binding edges (cap <= 0 selects DefaultRecorderCap).
// Must be called before Run/RunParallel.
func (k *Kernel) EnableRecorder(cap int) *Recorder {
	if cap <= 0 {
		cap = DefaultRecorderCap
	}
	k.rec = &Recorder{buf: make([]Edge, 0, cap)}
	return k.rec
}

// Recorder returns the kernel's flight recorder (nil when disabled).
func (k *Kernel) Recorder() *Recorder { return k.rec }

func (r *Recorder) push(e Edge) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.total++
}

// Total reports how many edges were recorded overall, including evicted
// ones; Total() > len(Edges()) means the ring wrapped and a critical-path
// walk may be truncated.
func (r *Recorder) Total() int64 { return r.total }

// Truncated reports whether the ring evicted edges.
func (r *Recorder) Truncated() bool { return r.total > int64(len(r.buf)) }

// Edges returns the retained edges in commit order, oldest first.
func (r *Recorder) Edges() []Edge {
	if len(r.buf) < cap(r.buf) {
		return append([]Edge(nil), r.buf...)
	}
	out := make([]Edge, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// record appends a binding-wake edge, buffering through the current
// laneStep under the parallel engine so ring order stays commit order.
func (p *Proc) record(e Edge) {
	if l := p.lane; l != nil {
		l.cur.edges = append(l.cur.edges, e)
		return
	}
	p.k.rec.push(e)
}

// resumeEdge classifies and records a binding evResume wake. prev is the
// Proc's clock before the jump.
func (p *Proc) resumeEdge(at, posted, prev Time, from *Proc, cause uint8) {
	e := Edge{Dst: int32(p.id), At: at, Posted: posted, Prev: prev, Src: -1}
	if from != nil {
		e.Src = int32(from.id)
	}
	switch cause {
	case causeTimer:
		e.Kind = EdgeTimer
	case causeBarrier:
		e.Kind = EdgeBarrier
	default:
		e.Kind = EdgeSpawn
	}
	p.record(e)
}

// AttrCat is a time-attribution bucket. Every simulated nanosecond of a
// profiled Proc's clock lands in exactly one bucket.
type AttrCat uint8

const (
	// CatCompute is application computation (Worker.Compute).
	CatCompute AttrCat = iota
	// CatTransit is the final network hop of a binding delivery.
	CatTransit
	// CatOccupancy is messaging CPU overhead on the compute processor:
	// send occupancy, fault detection, block install.
	CatOccupancy
	// CatService is protocol service: the protocol processor's handler
	// time, and compute-side waits on protocol operations (gather).
	CatService
	// CatBarrier is time blocked in barriers (including the release cost).
	CatBarrier
	// CatStall is time a compute processor stalled on an access miss,
	// net of the final-hop transit (which lands in CatTransit).
	CatStall
	// CatPresend is pre-send overhead: executing deferred send schedules
	// at a phase boundary and waiting out the stabilization barrier.
	CatPresend
	// CatIdle is everything else: Sleep, a daemon waiting for work, or
	// waits no one tagged. A nonzero CatIdle on a compute processor
	// usually means a wait site is missing its SetWaitCat tag.
	CatIdle

	// NumCat is the number of attribution buckets.
	NumCat = int(CatIdle) + 1
)

func (c AttrCat) String() string {
	switch c {
	case CatCompute:
		return "compute"
	case CatTransit:
		return "transit"
	case CatOccupancy:
		return "occupancy"
	case CatService:
		return "service"
	case CatBarrier:
		return "barrier"
	case CatStall:
		return "stall"
	case CatPresend:
		return "presend"
	case CatIdle:
		return "idle"
	}
	return "?"
}

// AttrSlot accumulates attributed virtual time per category. The runtime
// points each Proc at one slot per phase (SetAttrSlot) and the kernel
// charges every clock mutation to the active slot, so the sum over all
// of a Proc's slots equals its final clock exactly.
type AttrSlot [NumCat]Time

// Sum returns the slot's total attributed time.
func (s *AttrSlot) Sum() Time {
	var t Time
	for _, v := range s {
		t += v
	}
	return t
}

// Add accumulates o into s.
func (s *AttrSlot) Add(o *AttrSlot) {
	for i := range s {
		s[i] += o[i]
	}
}

// SetAttrSlot directs subsequent time charges into slot (nil disables
// attribution for this Proc — the default). Callers switch slots at
// phase boundaries; the switch itself is free.
func (p *Proc) SetAttrSlot(slot *AttrSlot) { p.aslot = slot }

// AttrSlot returns the Proc's active attribution slot (nil when off).
func (p *Proc) AttrSlot() *AttrSlot { return p.aslot }

// SetRunCat sets the category charged by Advance (default CatCompute).
func (p *Proc) SetRunCat(c AttrCat) { p.runCat = c }

// SetWaitCat sets the category charged when a blocking wake jumps this
// Proc's clock (default CatIdle). Call before blocking; the tag is
// sticky until changed.
func (p *Proc) SetWaitCat(c AttrCat) { p.waitCat = c }

// AdvanceCat advances the clock like Advance but charges an explicit
// category, leaving the running category untouched.
func (p *Proc) AdvanceCat(d Time, c AttrCat) {
	if d > 0 {
		p.now += d
		if p.aslot != nil {
			p.aslot[c] += d
		}
	}
}

// chargeWait attributes a blocking-wake clock jump of d to the waiting
// category. Caller guarantees d > 0 and p.aslot != nil.
func (p *Proc) chargeWait(d Time) { p.aslot[p.waitCat] += d }

// chargeRecv attributes a binding delivery jump: the final hop
// (posted..at) is network transit; any blocked time before the sender
// posted is the waiting category. Caller guarantees at > prev and
// p.aslot != nil.
func (p *Proc) chargeRecv(at, posted, prev Time) {
	transit := at - posted
	if posted < prev {
		transit = at - prev // posted before we blocked: the whole jump is wire time
	} else {
		p.aslot[p.waitCat] += posted - prev
	}
	p.aslot[CatTransit] += transit
}

// EngineFlight is the parallel engine's self-observability record:
// per-window width and occupancy distributions plus wall-clock phase
// timers. Wall-clock fields feed only the profile artifact — never
// fingerprints or golden outputs — so determinism is unaffected.
type EngineFlight struct {
	Windows     int64 // conservative windows executed
	Events      int64 // window events handed to lanes
	SoloWindows int64 // windows with exactly one active lane
	// MergedWindows counts windows whose commit took the k-way merge
	// path (some lane posted an event inside its own window); the rest
	// used the linear pop-order walk.
	MergedWindows int64
	// Steals counts lanes executed by a worker that did not own their
	// active-lane position (deterministic work stealing). Which worker
	// runs a lane is host-scheduling-dependent, so like the wall-clock
	// fields this counter is diagnostic only and never feeds
	// fingerprints.
	Steals int64

	// LaneHist[i] counts windows with i+1 active lanes (capped at the
	// last bucket); EventHist is a power-of-two histogram of events per
	// window (bucket i counts windows with 2^(i-1) < events <= 2^i).
	LaneHist  []int64
	EventHist [33]int64

	// Wall-clock nanoseconds spent opening windows (scheduler scan),
	// executing lanes, and committing, as measured by the engine
	// goroutine. Exec includes worker fan-out/join overhead.
	OpenNS, ExecNS, CommitNS int64
}

func (f *EngineFlight) observe(activeLanes, events int) {
	f.Windows++
	f.Events += int64(events)
	if activeLanes == 1 {
		f.SoloWindows++
	}
	i := activeLanes - 1
	if i >= len(f.LaneHist) {
		i = len(f.LaneHist) - 1
	}
	if i >= 0 {
		f.LaneHist[i]++
	}
	b := 0
	for v := events; v > 1; v >>= 1 {
		b++
	}
	if events > 1<<b {
		b++
	}
	f.EventHist[b]++
}

// EngineFlightRecord returns the parallel engine's flight data, or nil
// when the recorder was off or the run used the serial engine.
func (k *Kernel) EngineFlightRecord() *EngineFlight { return k.eng }
