package sim

import (
	"fmt"
	"strings"
	"testing"
)

// The tests in this file pin the per-lane-pair lookahead windows: the
// min-row clamp on asymmetric matrices, the exact commit boundary at the
// pair bound, the partitioned commit's lookahead-violation detector, and
// steal-vs-no-steal identity.

// nearFar builds a three-proc workload with asymmetric causal distances:
// procs A and B ping-pong with a small delay while C exchanges with A at
// a 10x larger delay. With each proc on its own lane, the pair matrix is
// ragged — A and B have narrow causal horizons (their nearest neighbor is
// each other), C a wide one — exercising both the min-row window clamp
// and the per-lane horizon checks.
func nearFar(rounds int) (*Kernel, *[]string, Time, Time) {
	const (
		dNear = 4 * Microsecond
		dFar  = 40 * Microsecond
	)
	k := NewKernel()
	log := &[]string{}
	say := func(p *Proc, format string, args ...any) {
		line := fmt.Sprintf(format, args...)
		p.OnCommit(func() { *log = append(*log, line) })
	}
	var a, b, c *Proc
	b = k.Spawn("b", func(p *Proc) {
		for r := 0; r < rounds; r++ {
			d := p.Recv()
			p.Advance(300 * Nanosecond)
			p.Send(d.From, d.Msg, dNear)
			say(p, "b r%d %v@%v", r, d.Msg, d.At)
		}
	})
	c = k.Spawn("c", func(p *Proc) {
		for r := 0; r < rounds; r++ {
			p.Send(a, 1000+r, dFar)
			d := p.Recv()
			say(p, "c r%d %v@%v now %v", r, d.Msg, d.At, p.now)
		}
	})
	a = k.Spawn("a", func(p *Proc) {
		for r := 0; r < rounds; r++ {
			p.Advance(150 * Nanosecond)
			p.Send(b, r, dNear)
			for i := 0; i < 2; i++ { // pong from b + this round's probe from c
				d := p.Recv()
				say(p, "a r%d %v@%v", r, d.Msg, d.At)
				if from, ok := d.Msg.(int); ok && from >= 1000 {
					p.Send(c, from+1, dFar)
				}
			}
		}
	})
	return k, log, dNear, dFar
}

// pairNearFar is the lookahead matrix for nearFar's lane layout (proc id
// == lane id): lanes 0 (b) and 2 (a) are near each other, lane 1 (c) is
// far from everyone.
func pairNearFar(dNear, dFar Time) func(i, j int) Time {
	return func(i, j int) Time {
		if (i == 0 && j == 2) || (i == 2 && j == 0) {
			return dNear
		}
		return dFar
	}
}

// TestPairLookaheadRaggedMatrixMatchesSerial runs the asymmetric workload
// under the pair matrix and demands outcome identity with the serial
// engine across worker counts, including the exact-edge case (the
// near-pair messages are delayed by exactly the pair bound, which is also
// the executed window width).
func TestPairLookaheadRaggedMatrixMatchesSerial(t *testing.T) {
	const rounds = 30
	run := func(par *ParallelConfig, rec bool) (runOutcome, *EngineFlight) {
		k, log, dNear, dFar := nearFar(rounds)
		if rec {
			k.EnableRecorder(1 << 16)
		}
		var err error
		if par == nil {
			err = k.Run()
		} else {
			cfg := *par
			cfg.PairLookahead = pairNearFar(dNear, dFar)
			err = k.RunParallel(cfg)
		}
		var times []Time
		for _, p := range k.Procs() {
			times = append(times, p.now)
		}
		return runOutcome{err: err, stats: k.Stats(), times: times, log: *log}, k.eng
	}
	serial, _ := run(nil, false)
	if serial.err != nil {
		t.Fatalf("serial: %v", serial.err)
	}
	for _, workers := range []int{1, 2, 3} {
		par, _ := run(&ParallelConfig{Workers: workers}, false)
		assertSameOutcome(t, serial, par)
	}
	par, eng := run(&ParallelConfig{Workers: 2}, true)
	assertSameOutcome(t, serial, par)
	if eng == nil || eng.Windows == 0 {
		t.Fatalf("flight recorder observed no windows: %+v", eng)
	}
}

// TestPairLookaheadWindowBoundary pins the exactness of the per-lane
// window end: a cross-lane message delayed by exactly PairLookahead(i,j)
// lands at the target's window end and commits cleanly; one nanosecond
// less is a lookahead violation the commit must detect and panic on.
func TestPairLookaheadWindowBoundary(t *testing.T) {
	run := func(delay, pairLA Time) (recovered any, err error) {
		k := NewKernel()
		var a, b *Proc
		b = k.Spawn("b", func(p *Proc) {
			for i := 0; i < 20; i++ {
				p.Recv()
			}
		})
		a = k.Spawn("a", func(p *Proc) {
			for i := 0; i < 20; i++ {
				p.Send(b, i, delay)
				p.Sleep(delay)
			}
		})
		_ = a
		defer func() { recovered = recover() }()
		err = k.RunParallel(ParallelConfig{
			Workers:       2,
			PairLookahead: func(i, j int) Time { return pairLA },
		})
		return nil, err
	}
	const la = 10 * Microsecond
	if r, err := run(la, la); r != nil || err != nil {
		t.Fatalf("delay == pair lookahead must commit cleanly, got panic %v err %v", r, err)
	}
	r, _ := run(la-Nanosecond, la)
	if r == nil {
		t.Fatal("delay one ns below the pair bound must panic")
	}
	if !strings.Contains(fmt.Sprint(r), "lookahead violation") {
		t.Fatalf("unexpected panic: %v", r)
	}
}

// TestPartitionedCommitViolationDetector exercises the merge-path
// detector: lanes are partitions (two procs per lane) with in-window
// local traffic forcing the k-way merge, and one cross-partition message
// below the target lane's window end must be caught at commit.
func TestPartitionedCommitViolationDetector(t *testing.T) {
	run := func(crossDelay Time) (recovered any) {
		const localD = 500 * Nanosecond
		k := NewKernel()
		// Lane 0: front0+back0, lane 1: front1+back1.
		var back [2]*Proc
		var front [2]*Proc
		for i := 0; i < 2; i++ {
			i := i
			back[i] = k.Spawn(fmt.Sprintf("back%d", i), func(p *Proc) {
				for {
					d := p.Recv()
					p.Advance(100 * Nanosecond)
					p.Send(d.From, d.Msg, localD)
				}
			})
		}
		for i := 0; i < 2; i++ {
			i := i
			front[i] = k.Spawn(fmt.Sprintf("front%d", i), func(p *Proc) {
				for r := 0; r < 10; r++ {
					p.Send(back[i], r, localD) // in-window: forces the merge commit
					p.Recv()
					p.Send(front[1-i], r, crossDelay)
					p.Recv()
				}
			})
		}
		defer func() { recovered = recover() }()
		_ = k.RunParallel(ParallelConfig{
			Workers:   2,
			Lookahead: 20 * Microsecond,
			Lanes:     2,
			LaneOf:    func(p *Proc) int { return p.ID() % 2 },
		})
		return nil
	}
	if r := run(25 * Microsecond); r != nil {
		t.Fatalf("legal cross-partition delay panicked: %v", r)
	}
	r := run(2 * Microsecond)
	if r == nil {
		t.Fatal("cross-partition message below the lookahead must panic at commit")
	}
	if !strings.Contains(fmt.Sprint(r), "lookahead violation") {
		t.Fatalf("unexpected panic: %v", r)
	}
}

// TestStealVsNoStealIdentity: work stealing changes which worker executes
// a lane, never the result. Serial, stealing, and owner-only runs must
// produce identical outcomes.
func TestStealVsNoStealIdentity(t *testing.T) {
	const (
		n      = 8
		rounds = 40
		delay  = 10 * Microsecond
	)
	serial := runMesh(t, n, rounds, delay, nil)
	if serial.err != nil {
		t.Fatalf("serial: %v", serial.err)
	}
	steal := runMesh(t, n, rounds, delay, &ParallelConfig{Workers: 4, Lookahead: delay})
	noSteal := runMesh(t, n, rounds, delay, &ParallelConfig{Workers: 4, Lookahead: delay, NoSteal: true})
	assertSameOutcome(t, serial, steal)
	assertSameOutcome(t, serial, noSteal)
}

// TestReverseRunMutationDiverges: the chaos mutation must actually break
// the engine — a window run executed tail-first reorders mailbox
// deliveries, and the divergence must be visible in committed output.
// This is the sim-level counterpart of the protofuzz -expect-fail band.
func TestReverseRunMutationDiverges(t *testing.T) {
	const (
		n      = 4
		rounds = 20
		dA     = 20 * Microsecond
		dB     = 23 * Microsecond // lands in the same window as dA's message
	)
	build := func() (*Kernel, *[]string) {
		k := NewKernel()
		log := &[]string{}
		procs := make([]*Proc, n)
		for i := 0; i < n; i++ {
			i := i
			procs[i] = k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for r := 0; r < rounds; r++ {
					// Two messages to the right neighbor whose arrivals
					// fall in one lookahead window: the neighbor's lane
					// opens with a two-event established run, which the
					// mutation reverses.
					p.Send(procs[(i+1)%n], 1000*i+2*r, dA)
					p.Send(procs[(i+1)%n], 1000*i+2*r+1, dB)
					for m := 0; m < 2; m++ {
						d := p.Recv()
						line := fmt.Sprintf("p%d r%d got %v@%v", i, r, d.Msg, d.At)
						p.OnCommit(func() { *log = append(*log, line) })
					}
				}
			})
		}
		return k, log
	}
	cfg := ParallelConfig{Workers: 1, Lookahead: dA}
	k, clean := build()
	if err := k.RunParallel(cfg); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	k2, mutated := build()
	cfg.MutateReverseRuns = true
	err := k2.RunParallel(cfg) // may legitimately deadlock/err once diverged
	same := err == nil && len(*clean) == len(*mutated)
	if same {
		for i := range *clean {
			if (*clean)[i] != (*mutated)[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("reverse-run mutation produced identical output; the chaos oracle would not catch it")
	}
}
