package sim

import (
	"errors"
	"fmt"
	"testing"
)

// mesh builds a deterministic message storm: n procs in a ring, each
// forwarding a counter to its right neighbor with the given delay, plus a
// barrier every burst messages. It returns a closure recording per-proc
// observations so serial and parallel runs can be compared field by field.
func mesh(n, rounds int, delay Time) (*Kernel, *[]string) {
	k := NewKernel()
	log := &[]string{}
	procs := make([]*Proc, n)
	bar := k.NewBarrier(n, 5*delay)
	for i := 0; i < n; i++ {
		i := i
		procs[i] = k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for r := 0; r < rounds; r++ {
				p.Advance(Time(i+1) * 100 * Nanosecond) // skew clocks
				p.Send(procs[(i+1)%n], r*n+i, delay)
				d := p.Recv()
				line := fmt.Sprintf("p%d r%d got %v at %v now %v", i, r, d.Msg, d.At, p.now)
				p.OnCommit(func() {
					*log = append(*log, line)
				})
				if r%3 == 2 {
					p.Wait(bar)
				}
			}
		})
	}
	return k, log
}

type runOutcome struct {
	err   error
	stats KernelStats
	times []Time
	log   []string
}

func runMesh(t *testing.T, n, rounds int, delay Time, par *ParallelConfig) runOutcome {
	t.Helper()
	k, log := mesh(n, rounds, delay)
	var err error
	if par == nil {
		err = k.Run()
	} else {
		err = k.RunParallel(*par)
	}
	var times []Time
	for _, p := range k.Procs() {
		times = append(times, p.now)
	}
	return runOutcome{err: err, stats: k.Stats(), times: times, log: *log}
}

func assertSameOutcome(t *testing.T, serial, parallel runOutcome) {
	t.Helper()
	if (serial.err == nil) != (parallel.err == nil) {
		t.Fatalf("error mismatch: serial %v, parallel %v", serial.err, parallel.err)
	}
	if serial.err != nil && serial.err.Error() != parallel.err.Error() {
		t.Fatalf("error mismatch:\nserial:   %v\nparallel: %v", serial.err, parallel.err)
	}
	if serial.stats != parallel.stats {
		t.Fatalf("kernel stats mismatch:\nserial:   %+v\nparallel: %+v", serial.stats, parallel.stats)
	}
	if len(serial.times) != len(parallel.times) {
		t.Fatalf("proc count mismatch")
	}
	for i := range serial.times {
		if serial.times[i] != parallel.times[i] {
			t.Fatalf("proc %d final time: serial %v, parallel %v", i, serial.times[i], parallel.times[i])
		}
	}
	if len(serial.log) != len(parallel.log) {
		t.Fatalf("log length: serial %d, parallel %d", len(serial.log), len(parallel.log))
	}
	for i := range serial.log {
		if serial.log[i] != parallel.log[i] {
			t.Fatalf("log[%d]:\nserial:   %s\nparallel: %s", i, serial.log[i], parallel.log[i])
		}
	}
}

func TestParallelMatchesSerialMesh(t *testing.T) {
	const (
		n      = 8
		rounds = 60
		delay  = 10 * Microsecond
	)
	serial := runMesh(t, n, rounds, delay, nil)
	if serial.err != nil {
		t.Fatalf("serial run: %v", serial.err)
	}
	for _, workers := range []int{1, 2, 8} {
		par := runMesh(t, n, rounds, delay, &ParallelConfig{Workers: workers, Lookahead: delay})
		assertSameOutcome(t, serial, par)
	}
}

// TestParallelMatchesSerialTightLookahead uses a lookahead much smaller
// than the message delay, forcing many small windows (including windows
// where only one lane is active).
func TestParallelMatchesSerialTightLookahead(t *testing.T) {
	serial := runMesh(t, 6, 40, 9*Microsecond, nil)
	if serial.err != nil {
		t.Fatalf("serial run: %v", serial.err)
	}
	par := runMesh(t, 6, 40, 9*Microsecond, &ParallelConfig{Workers: 4, Lookahead: 2 * Microsecond})
	assertSameOutcome(t, serial, par)
}

// TestParallelIntraLaneLocalMessages groups pairs of procs into shared
// lanes; messages within a pair use sub-lookahead delays (exercising fresh
// intra-window events), while cross-pair messages respect the lookahead.
func TestParallelIntraLaneLocalMessages(t *testing.T) {
	const (
		pairs     = 4
		rounds    = 30
		localD    = 500 * Nanosecond
		remoteD   = 20 * Microsecond
		lookahead = remoteD
	)
	build := func() (*Kernel, *[]string) {
		k := NewKernel()
		log := &[]string{}
		// front[i] and back[i] form lane i; front procs form a cross-lane ring.
		front := make([]*Proc, pairs)
		back := make([]*Proc, pairs)
		for i := 0; i < pairs; i++ {
			i := i
			back[i] = k.Spawn(fmt.Sprintf("back%d", i), func(p *Proc) {
				for r := 0; r < rounds; r++ {
					d := p.Recv()
					p.Advance(200 * Nanosecond)
					p.Send(d.From, d.Msg, localD) // local echo, far below lookahead
				}
			})
		}
		for i := 0; i < pairs; i++ {
			i := i
			front[i] = k.Spawn(fmt.Sprintf("front%d", i), func(p *Proc) {
				for r := 0; r < rounds; r++ {
					p.Send(back[i], r, localD)
					echo := p.Recv()
					p.Send(front[(i+1)%pairs], echo.Msg, remoteD)
					d := p.Recv()
					p.OnCommit(func() {
						*log = append(*log, fmt.Sprintf("front%d r%d %v@%v", i, r, d.Msg, d.At))
					})
				}
			})
		}
		return k, log
	}

	k, slog := build()
	serr := k.Run()
	if serr != nil {
		t.Fatalf("serial: %v", serr)
	}
	sstats := k.Stats()

	k2, plog := build()
	laneOf := func(p *Proc) int { return p.ID() % pairs } // back i ↔ front i share lane i
	perr := k2.RunParallel(ParallelConfig{Workers: 4, Lookahead: lookahead, Lanes: pairs, LaneOf: laneOf})
	if perr != nil {
		t.Fatalf("parallel: %v", perr)
	}
	if sstats != k2.Stats() {
		t.Fatalf("stats mismatch:\nserial:   %+v\nparallel: %+v", sstats, k2.Stats())
	}
	if len(*slog) != len(*plog) {
		t.Fatalf("log length: %d vs %d", len(*slog), len(*plog))
	}
	for i := range *slog {
		if (*slog)[i] != (*plog)[i] {
			t.Fatalf("log[%d]: %q vs %q", i, (*slog)[i], (*plog)[i])
		}
	}
}

func TestParallelDeadlockDetected(t *testing.T) {
	build := func() *Kernel {
		k := NewKernel()
		var a, b *Proc
		a = k.Spawn("a", func(p *Proc) {
			p.Recv() // never delivered
		})
		b = k.Spawn("b", func(p *Proc) {
			p.Recv()
		})
		_, _ = a, b
		return k
	}
	serial := build().Run()
	parallel := build().RunParallel(ParallelConfig{Workers: 2, Lookahead: Microsecond})
	var sde, pde *DeadlockError
	if !errors.As(serial, &sde) {
		t.Fatalf("serial: want DeadlockError, got %v", serial)
	}
	if !errors.As(parallel, &pde) {
		t.Fatalf("parallel: want DeadlockError, got %v", parallel)
	}
	if serial.Error() != parallel.Error() {
		t.Fatalf("deadlock reports differ:\nserial:   %v\nparallel: %v", serial, parallel)
	}
}

func TestParallelRunawayGuard(t *testing.T) {
	build := func() *Kernel {
		k := NewKernel()
		var a, b *Proc
		b = k.Spawn("b", func(p *Proc) {
			for {
				d := p.Recv()
				p.Send(d.From, d.Msg, 10*Microsecond)
			}
		})
		a = k.Spawn("a", func(p *Proc) {
			p.Send(b, 0, 10*Microsecond)
			for {
				d := p.Recv()
				p.Send(d.From, d.Msg, 10*Microsecond)
			}
		})
		_ = a
		k.MaxEvents = 501
		return k
	}
	serial := build().Run()
	parallel := build().RunParallel(ParallelConfig{Workers: 2, Lookahead: 10 * Microsecond})
	var sre, pre *RunawayError
	if !errors.As(serial, &sre) {
		t.Fatalf("serial: want RunawayError, got %v", serial)
	}
	if !errors.As(parallel, &pre) {
		t.Fatalf("parallel: want RunawayError, got %v", parallel)
	}
	if *sre != *pre {
		t.Fatalf("runaway mismatch: serial %+v, parallel %+v", *sre, *pre)
	}
}

func TestParallelProcPanicPropagates(t *testing.T) {
	run := func(parallel bool) (recovered any) {
		k := NewKernel()
		var target *Proc
		target = k.Spawn("victim", func(p *Proc) {
			p.Recv()
			panic("boom in proc")
		})
		k.Spawn("sender", func(p *Proc) {
			p.Send(target, 1, 20*Microsecond)
		})
		defer func() { recovered = recover() }()
		if parallel {
			_ = k.RunParallel(ParallelConfig{Workers: 2, Lookahead: 5 * Microsecond})
		} else {
			_ = k.Run()
		}
		return nil
	}
	s := run(false)
	p := run(true)
	if s == nil || p == nil {
		t.Fatalf("panic not propagated: serial %v, parallel %v", s, p)
	}
	if fmt.Sprint(s) != fmt.Sprint(p) {
		t.Fatalf("panic values differ: %v vs %v", s, p)
	}
}

func TestParallelLookaheadViolationPanics(t *testing.T) {
	k := NewKernel()
	var a, b *Proc
	b = k.Spawn("b", func(p *Proc) {
		p.Recv()
	})
	a = k.Spawn("a", func(p *Proc) {
		p.Send(b, 1, Microsecond) // cross-lane delay below the configured lookahead
	})
	_ = a
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected lookahead-violation panic")
		}
	}()
	_ = k.RunParallel(ParallelConfig{Workers: 2, Lookahead: 50 * Microsecond})
}

func TestParallelRequiresLookahead(t *testing.T) {
	k := NewKernel()
	k.Spawn("p", func(p *Proc) {})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic for zero lookahead")
		}
	}()
	_ = k.RunParallel(ParallelConfig{Workers: 2})
}

func TestSpawnDuringParallelRunPanics(t *testing.T) {
	k := NewKernel()
	k.Spawn("root", func(p *Proc) {
		p.k.Spawn("child", func(*Proc) {})
	})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic for Spawn during parallel run")
		}
	}()
	_ = k.RunParallel(ParallelConfig{Workers: 1, Lookahead: Microsecond})
}

// TestMailboxRingWraps exercises wraparound + growth of the mailbox ring.
func TestMailboxRingWraps(t *testing.T) {
	k := NewKernel()
	const msgs = 100
	var got []int
	cons := k.Spawn("cons", func(p *Proc) {
		// Alternate sleeping (letting deliveries pile up) and draining a few.
		for len(got) < msgs {
			p.Sleep(10 * Microsecond)
			for i := 0; i < 7; i++ {
				if d, ok := p.TryRecv(); ok {
					got = append(got, d.Msg.(int))
				}
			}
		}
	})
	k.Spawn("prod", func(p *Proc) {
		for i := 0; i < msgs; i++ {
			p.Send(cons, i, Microsecond)
			p.Sleep(2 * Microsecond)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != msgs {
		t.Fatalf("got %d msgs", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %d", i, v)
		}
	}
}
