package sim

import (
	"errors"
	"fmt"
	"testing"
)

// TestMailboxWraparoundGrow drives the mailbox ring directly through
// multiple wraparound-then-grow cycles: pops move the head off zero, and
// each growth then has to relinearize a ring whose live region wraps the
// array end. FIFO order and Pending() must survive every cycle.
func TestMailboxWraparoundGrow(t *testing.T) {
	p := &Proc{}
	next := 0  // next value to push
	first := 0 // next value expected from mpop
	push := func(n int) {
		for i := 0; i < n; i++ {
			p.mpush(Delivery{Msg: next})
			next++
		}
	}
	pop := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			d := p.mpop()
			if d.Msg.(int) != first {
				t.Fatalf("mpop = %v, want %d (cap %d head %d len %d)",
					d.Msg, first, len(p.mbox), p.mhead, p.mlen)
			}
			first++
		}
	}
	check := func() {
		t.Helper()
		if got, want := p.Pending(), next-first; got != want {
			t.Fatalf("Pending() = %d, want %d", got, want)
		}
	}

	// Fill the initial 8-slot ring, then pop a few so the head is interior.
	push(8)
	pop(3)
	check()
	// Wrap: these land in slots 0..2 ahead of the head at 3...
	push(3)
	check()
	// ...and the next push grows 8 -> 16 with a wrapped live region.
	push(4)
	if len(p.mbox) != 16 {
		t.Fatalf("cap = %d, want 16 after first grow", len(p.mbox))
	}
	check()
	pop(5)
	// Second cycle: wrap the 16-slot ring, then force 16 -> 32 and 32 -> 64,
	// popping only part of the backlog in between.
	push(9)
	check()
	push(30)
	if len(p.mbox) != 64 {
		t.Fatalf("cap = %d, want 64 after repeated growth", len(p.mbox))
	}
	check()
	pop(20)
	push(5)
	check()
	// Drain completely; every element must still come out in push order.
	pop(p.Pending())
	if first != next {
		t.Fatalf("drained %d values, pushed %d", first, next)
	}
	check()
}

// TestBarrierSingleMember pins the degenerate n=1 barrier: the sole
// member is its own last arrival, so each Wait costs exactly the barrier
// cost and the barrier is immediately reusable.
func TestBarrierSingleMember(t *testing.T) {
	k := NewKernel()
	b := k.NewBarrier(1, 5*Microsecond)
	var waits []Time
	var ends []Time
	k.Spawn("solo", func(p *Proc) {
		for round := 0; round < 3; round++ {
			p.Advance(100 * Microsecond)
			waits = append(waits, p.Wait(b))
			ends = append(ends, p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, w := range waits {
		if w != 5*Microsecond {
			t.Fatalf("round %d wait = %v, want 5us", i, w)
		}
		want := Time(i+1) * 105 * Microsecond
		if ends[i] != want {
			t.Fatalf("round %d released at %v, want %v", i, ends[i], want)
		}
	}
}

// TestBarrierReuseWithDaemons reuses one barrier across iterations while
// daemon procs are live and receiving: daemons must neither count toward
// the barrier nor keep the run from completing once the members finish.
func TestBarrierReuseWithDaemons(t *testing.T) {
	k := NewKernel()
	const members, rounds = 3, 4
	b := k.NewBarrier(members, Microsecond)
	served := 0
	daemon := k.Spawn("daemon", func(p *Proc) {
		for {
			p.Recv()
			served++
		}
	})
	daemon.SetDaemon(true)
	ends := make([]Time, members)
	for i := 0; i < members; i++ {
		i := i
		k.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			for round := 0; round < rounds; round++ {
				p.Advance(Time(i+1) * 10 * Microsecond)
				p.Send(daemon, round, Microsecond)
				p.Wait(b)
			}
			ends[i] = p.Now()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if served != members*rounds {
		t.Fatalf("daemon served %d messages, want %d", served, members*rounds)
	}
	// Every round releases at the slowest member's arrival + cost; after
	// the release all clocks agree, so arrivals stay 10/20/30us apart and
	// each round adds 31us to the common release time.
	want := Time(rounds) * 31 * Microsecond
	for i, e := range ends {
		if e != want {
			t.Fatalf("member %d finished at %v, want %v", i, e, want)
		}
	}
}

// TestBarrierMemberExitsDeadlock covers the partial-arrival failure mode:
// one member waits, the other exits without ever reaching the barrier.
// The run must stop with a DeadlockError naming the stuck member — not
// hang, and not release the barrier early.
func TestBarrierMemberExitsDeadlock(t *testing.T) {
	k := NewKernel()
	b := k.NewBarrier(2, 0)
	k.Spawn("stuck", func(p *Proc) {
		p.Wait(b)
	})
	k.Spawn("quitter", func(p *Proc) {
		p.Advance(Microsecond) // do some work, never Wait
	})
	err := k.Run()
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 1 || de.Blocked[0] != "stuck(blocked-barrier)" {
		t.Fatalf("blocked = %v, want [stuck(blocked-barrier)]", de.Blocked)
	}
}

// TestBarrierMemberExitsDeadlockParallel is the same failure mode under
// the parallel engine, where the arrival is applied by the window commit.
func TestBarrierMemberExitsDeadlockParallel(t *testing.T) {
	k := NewKernel()
	b := k.NewBarrier(2, 0)
	k.Spawn("stuck", func(p *Proc) {
		p.Sleep(Microsecond)
		p.Wait(b)
	})
	k.Spawn("quitter", func(p *Proc) {
		p.Sleep(2 * Microsecond)
	})
	err := k.RunParallel(ParallelConfig{Workers: 2, Lookahead: Microsecond})
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 1 || de.Blocked[0] != "stuck(blocked-barrier)" {
		t.Fatalf("blocked = %v, want [stuck(blocked-barrier)]", de.Blocked)
	}
}

// wheelEvent builds a bare scheduler event for white-box wheel tests.
func wheelEvent(at Time, seq uint64) *event {
	return &event{at: at, seq: seq}
}

// drainSched pops every pending event, asserting (at, seq) never goes
// backwards, and returns the pop order.
func drainSched(t *testing.T, s scheduler) []*event {
	t.Helper()
	var out []*event
	for s.len() > 0 {
		e := s.pop()
		if n := len(out); n > 0 && eventAfter(out[n-1], e) {
			t.Fatalf("pop order regressed: (%v, %d) after (%v, %d)",
				e.at, e.seq, out[n-1].at, out[n-1].seq)
		}
		out = append(out, e)
	}
	if s.peek() != nil {
		t.Fatal("peek after drain != nil")
	}
	return out
}

// TestWheelBucketWrap pushes events whose bucket indices wrap the 256-slot
// array while staying inside the horizon: physical slot order disagrees
// with time order, and the sweep must still pop in (at, seq) order.
func TestWheelBucketWrap(t *testing.T) {
	w := newWheel(Microsecond, 0)
	// Advance the cursor off zero so later pushes wrap the slot mask.
	w.push(wheelEvent(10*Microsecond, 0))
	if e := w.pop(); e.at != 10*Microsecond {
		t.Fatalf("pop at %v, want 10us", e.at)
	}
	// Bucket indices 265, 200, 11: slots 9, 200, 11 — the earliest-slot
	// event (9) is the latest in time.
	w.push(wheelEvent(265*Microsecond, 1))
	w.push(wheelEvent(200*Microsecond, 2))
	w.push(wheelEvent(11*Microsecond, 3))
	order := drainSched(t, w)
	var ats []Time
	for _, e := range order {
		ats = append(ats, e.at)
	}
	want := []Time{11 * Microsecond, 200 * Microsecond, 265 * Microsecond}
	for i := range want {
		if ats[i] != want[i] {
			t.Fatalf("pop order %v, want %v", ats, want)
		}
	}
}

// TestWheelOverflowMigration parks events beyond the horizon in the
// overflow heap and checks they migrate into their bucket — interleaved
// correctly with near events — once the cursor sweeps forward.
func TestWheelOverflowMigration(t *testing.T) {
	w := newWheel(Microsecond, 0)
	far1 := wheelEvent(300*Microsecond, 0) // beyond 256us horizon from cursor 0
	far2 := wheelEvent(300*Microsecond, 1) // same bucket, later seq
	far3 := wheelEvent(1000*Microsecond, 2)
	w.push(far1)
	w.push(far3)
	w.push(far2)
	if len(w.overflow) != 3 {
		t.Fatalf("overflow holds %d events, want 3", len(w.overflow))
	}
	near := wheelEvent(5*Microsecond, 3)
	w.push(near)
	order := drainSched(t, w)
	want := []*event{near, far1, far2, far3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pop %d = (%v, %d), want (%v, %d)",
				i, order[i].at, order[i].seq, want[i].at, want[i].seq)
		}
	}
}

// TestWheelCursorJump: when every near bucket is empty and only far
// timers remain, peek must jump the cursor straight to the earliest far
// timer's bucket instead of sweeping hundreds of empty slots.
func TestWheelCursorJump(t *testing.T) {
	w := newWheel(Microsecond, 0)
	w.push(wheelEvent(Microsecond, 0))
	if e := w.pop(); e.seq != 0 {
		t.Fatalf("unexpected first pop (%v, %d)", e.at, e.seq)
	}
	far := wheelEvent(100_000*Microsecond, 1)
	w.push(far)
	if e := w.peek(); e != far {
		t.Fatal("peek did not surface the far timer")
	}
	if w.curIdx != 100_000 {
		t.Fatalf("cursor at bucket %d, want jump to 100000", w.curIdx)
	}
	if e := w.pop(); e != far {
		t.Fatal("pop did not return the far timer")
	}
}

// TestWheelPushBatch covers the batch insert on all three paths — current
// bucket, near wheel, overflow — interleaved with individual pushes at
// the same timestamp; pops must come out in strict (at, seq) order.
func TestWheelPushBatch(t *testing.T) {
	w := newWheel(Microsecond, 0)
	// Current-bucket path: cursor sits in bucket 2 with a remainder.
	w.push(wheelEvent(2*Microsecond, 0))
	w.push(wheelEvent(2*Microsecond+500*Nanosecond, 5))
	if e := w.pop(); e.seq != 0 {
		t.Fatalf("unexpected first pop seq %d", e.seq)
	}
	w.pushBatch([]*event{
		wheelEvent(2*Microsecond+100*Nanosecond, 1),
		wheelEvent(2*Microsecond+100*Nanosecond, 2),
	})
	// Near-wheel path, plus an individual push into the same bucket.
	w.pushBatch([]*event{
		wheelEvent(40*Microsecond, 6),
		wheelEvent(40*Microsecond, 7),
	})
	w.push(wheelEvent(40*Microsecond, 3)) // earlier seq, pushed later
	// Overflow path.
	w.pushBatch([]*event{
		wheelEvent(900*Microsecond, 8),
		wheelEvent(900*Microsecond, 9),
	})
	var seqs []uint64
	for _, e := range drainSched(t, w) {
		seqs = append(seqs, e.seq)
	}
	want := []uint64{1, 2, 5, 3, 6, 7, 8, 9}
	if len(seqs) != len(want) {
		t.Fatalf("drained %d events, want %d", len(seqs), len(want))
	}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("pop seqs %v, want %v", seqs, want)
		}
	}
}

// TestWheelPopBefore pins popBefore's contract on both schedulers: it
// pops the head only when the head is strictly before the cutoff, and
// never disturbs order otherwise.
func TestWheelPopBefore(t *testing.T) {
	for _, tc := range []struct {
		name string
		s    scheduler
	}{
		{"wheel", newWheel(Microsecond, 0)},
		{"heap", &heapSched{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.s
			if e := s.popBefore(Second); e != nil {
				t.Fatal("popBefore on empty scheduler != nil")
			}
			a := wheelEvent(3*Microsecond, 0)
			b := wheelEvent(700*Microsecond, 1) // overflow for the wheel
			s.push(a)
			s.push(b)
			if e := s.popBefore(3 * Microsecond); e != nil {
				t.Fatalf("popBefore(=head.at) popped (%v, %d); cutoff is exclusive", e.at, e.seq)
			}
			if e := s.popBefore(4 * Microsecond); e != a {
				t.Fatal("popBefore(4us) did not pop the due head")
			}
			// Slow path: the wheel's current bucket is exhausted, the next
			// head sits beyond it.
			if e := s.popBefore(700 * Microsecond); e != nil {
				t.Fatal("popBefore must not pop a head at the cutoff")
			}
			if e := s.popBefore(701 * Microsecond); e != b {
				t.Fatal("popBefore(701us) did not pop the far head")
			}
			if s.len() != 0 {
				t.Fatalf("len = %d after drain", s.len())
			}
		})
	}
}

// TestWheelHeapDifferential runs a deterministic pseudo-random push/pop
// trace through the wheel and the heap reference and demands identical
// pop sequences — the scheduler-swap property at the data-structure level.
func TestWheelHeapDifferential(t *testing.T) {
	wheel := newWheel(Microsecond, 0)
	heap := &heapSched{}
	rng := uint64(0x9e3779b97f4a7c15)
	next := func(n uint64) uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		rng %= 1<<63 - 1
		return rng % n
	}
	var now Time // lower bound for pushes: the last popped timestamp
	seq := uint64(0)
	for step := 0; step < 20000; step++ {
		if both := wheel.len(); both == 0 || next(3) > 0 {
			// Push: mostly near the cursor, sometimes far into overflow.
			d := Time(next(40)) * Microsecond
			if next(10) == 0 {
				d = Time(200+next(2000)) * Microsecond
			}
			at := now + d
			e, f := wheelEvent(at, seq), wheelEvent(at, seq)
			seq++
			wheel.push(e)
			heap.push(f)
		} else {
			we, he := wheel.pop(), heap.pop()
			if we.at != he.at || we.seq != he.seq {
				t.Fatalf("step %d: wheel popped (%v, %d), heap popped (%v, %d)",
					step, we.at, we.seq, he.at, he.seq)
			}
			now = we.at
		}
		if wheel.len() != heap.len() {
			t.Fatalf("step %d: wheel len %d != heap len %d", step, wheel.len(), heap.len())
		}
	}
	for heap.len() > 0 {
		we, he := wheel.pop(), heap.pop()
		if we.at != he.at || we.seq != he.seq {
			t.Fatalf("drain: wheel (%v, %d) vs heap (%v, %d)", we.at, we.seq, he.at, he.seq)
		}
	}
	if wheel.len() != 0 {
		t.Fatalf("wheel holds %d events after heap drained", wheel.len())
	}
}

// TestWheelSizeDifferential drives an identical randomized push/pop trace
// through wheels of every capacity class — default, mid-size hint, and a
// hint beyond the cap — plus the reference heap. Bucket count moves events
// between the near wheel and the overflow heap, but the pop order must be
// bit-identical across all of them: capacity is a constant-factor knob,
// never a semantic one.
func TestWheelSizeDifferential(t *testing.T) {
	scheds := []scheduler{
		newWheel(Microsecond, 0),     // default 256 buckets
		newWheel(Microsecond, 2048),  // the 1024-lane machine's hint
		newWheel(Microsecond, 1<<20), // clamped to maxWheelBuckets
		&heapSched{},
	}
	if got := newWheel(Microsecond, 1<<20).size; got != maxWheelBuckets {
		t.Fatalf("oversized hint produced %d buckets, want cap %d", got, maxWheelBuckets)
	}
	if got := newWheel(Microsecond, 2048).size; got != 2048 {
		t.Fatalf("hint 2048 produced %d buckets", got)
	}
	rng := uint64(0x2545f4914f6cdd1d)
	next := func(n uint64) uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % n
	}
	var now Time
	seq := uint64(0)
	for step := 0; step < 20000; step++ {
		if scheds[0].len() == 0 || next(3) > 0 {
			d := Time(next(300)) * Microsecond
			if next(8) == 0 {
				// Far timers: land beyond the small wheel's horizon but
				// inside the big wheel's, so the overflow paths diverge.
				d = Time(500+next(5000)) * Microsecond
			}
			at := now + d
			for _, s := range scheds {
				s.push(wheelEvent(at, seq))
			}
			seq++
		} else {
			ref := scheds[0].pop()
			now = ref.at
			for _, s := range scheds[1:] {
				e := s.pop()
				if e.at != ref.at || e.seq != ref.seq {
					t.Fatalf("step %d: pop (%v, %d), want (%v, %d)",
						step, e.at, e.seq, ref.at, ref.seq)
				}
			}
		}
	}
	for scheds[0].len() > 0 {
		ref := scheds[0].pop()
		for _, s := range scheds[1:] {
			e := s.pop()
			if e.at != ref.at || e.seq != ref.seq {
				t.Fatalf("drain: pop (%v, %d), want (%v, %d)", e.at, e.seq, ref.at, ref.seq)
			}
		}
	}
	for _, s := range scheds[1:] {
		if s.len() != 0 {
			t.Fatalf("scheduler holds %d events after reference drained", s.len())
		}
	}
}
