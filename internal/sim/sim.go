// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel models a parallel machine in virtual time. Each simulated
// activity is a Proc: a goroutine with a private virtual clock that
// exchanges timestamped messages with other Procs and synchronizes at
// barriers. Under the serial engine (Run) the kernel serializes execution —
// exactly one Proc goroutine runs at any real instant, and control is
// handed out in global (timestamp, sequence) order — so simulations are
// fully deterministic and need no locking in the simulated node state.
//
// The parallel engine (RunParallel) executes groups of Procs ("lanes")
// concurrently inside conservative lookahead windows and commits their
// side effects in the same global (timestamp, sequence) order, producing
// results byte-identical to the serial engine; see parallel.go.
//
// A Proc advances its own clock with Advance (batched, without yielding to
// the kernel); cross-Proc interaction happens only through timestamped
// messages (Send/Recv) and barriers (Barrier.Wait). This discipline gives
// causally correct virtual time for programs whose cross-Proc interactions
// are message-mediated, which holds for the data-race-free phase-structured
// programs this repository simulates.
package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Time is virtual time in nanoseconds.
type Time int64

// Common virtual-time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats a Time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// procState tracks what a Proc goroutine is currently doing.
type procState int

const (
	stateNew procState = iota
	stateRunnable
	stateRunning
	stateBlockedRecv
	stateBlockedBarrier
	stateSleeping
	stateDone
)

func (s procState) String() string {
	switch s {
	case stateNew:
		return "new"
	case stateRunnable:
		return "runnable"
	case stateRunning:
		return "running"
	case stateBlockedRecv:
		return "blocked-recv"
	case stateBlockedBarrier:
		return "blocked-barrier"
	case stateSleeping:
		return "sleeping"
	case stateDone:
		return "done"
	}
	return "unknown"
}

// Delivery is a message as received: payload plus provenance and the
// virtual time at which it arrived at the destination.
type Delivery struct {
	At     Time  // arrival time at the destination
	Posted Time  // sender's clock when the message was sent
	From   *Proc // sending Proc (nil for kernel-injected messages)
	Msg    any   // payload
}

// Proc is a simulated sequential activity with its own virtual clock.
type Proc struct {
	k      *Kernel
	id     int
	name   string
	daemon bool

	now   Time
	state procState

	// Mailbox is a power-of-two ring buffer ordered by arrival (the
	// kernel delivers in time order), so dequeue is O(1) regardless of
	// backlog depth.
	mbox  []Delivery
	mhead int
	mlen  int

	resume chan struct{}
	park   chan struct{} // the executor's park channel (kernel's, or the lane's)
	lane   *lane         // non-nil while running under the parallel engine
	fn     func(*Proc)

	// Time attribution (record.go). aslot == nil — the default — disables
	// charging entirely; the hot paths then pay one nil check.
	aslot   *AttrSlot
	runCat  AttrCat // category charged by Advance
	waitCat AttrCat // category charged by blocking-wake clock jumps

	err      error // set if fn panicked
	panicVal any
}

// ID returns the Proc's kernel-assigned identifier (dense, from 0).
func (p *Proc) ID() int { return p.id }

// Name returns the Proc's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Now returns the Proc's current virtual time. It may only be called from
// the Proc's own goroutine.
func (p *Proc) Now() Time { return p.now }

// Advance adds d to the Proc's virtual clock without yielding to the
// kernel. Negative durations are ignored. Under attribution the time is
// charged to the Proc's running category (SetRunCat).
func (p *Proc) Advance(d Time) {
	if d > 0 {
		p.now += d
		if p.aslot != nil {
			p.aslot[p.runCat] += d
		}
	}
}

// mpush appends a delivery to the mailbox ring.
func (p *Proc) mpush(d Delivery) {
	if p.mlen == len(p.mbox) {
		p.mgrow()
	}
	p.mbox[(p.mhead+p.mlen)&(len(p.mbox)-1)] = d
	p.mlen++
}

func (p *Proc) mgrow() {
	newCap := len(p.mbox) * 2
	if newCap == 0 {
		newCap = 8
	}
	nb := make([]Delivery, newCap)
	for i := 0; i < p.mlen; i++ {
		nb[i] = p.mbox[(p.mhead+i)&(len(p.mbox)-1)]
	}
	p.mbox = nb
	p.mhead = 0
}

// mpop removes and returns the earliest delivery. Caller guarantees mlen > 0.
func (p *Proc) mpop() Delivery {
	d := p.mbox[p.mhead]
	p.mbox[p.mhead] = Delivery{} // drop payload references for GC
	p.mhead = (p.mhead + 1) & (len(p.mbox) - 1)
	p.mlen--
	return d
}

// event kinds processed by the kernel loop.
type eventKind int

const (
	evResume  eventKind = iota // wake a blocked/new Proc at ev.at
	evDeliver                  // deliver ev.msg to ev.proc at ev.at
)

type event struct {
	at     Time
	posted Time // poster's clock when the event was scheduled
	seq    uint64
	kind   eventKind
	proc   *Proc
	from   *Proc
	msg    any

	// cause classifies evResume events for the flight recorder
	// (record.go): causeTimer for Sleep expiries, causeBarrier for
	// barrier releases, causeNone for the initial spawn resume.
	cause uint8

	// fresh marks an event posted during the current lookahead window of
	// a parallel run: its seq is a provisional lane-local order key until
	// the commit replay assigns the real global sequence number.
	fresh bool
}

// eventPool is a free list of event nodes. Events are recycled once
// processed, so steady-state send/recv traffic allocates nothing.
type eventPool struct{ free []*event }

func (ep *eventPool) get() *event {
	if n := len(ep.free); n > 0 {
		e := ep.free[n-1]
		ep.free[n-1] = nil
		ep.free = ep.free[:n-1]
		return e
	}
	return &event{}
}

func (ep *eventPool) put(e *event) {
	*e = event{}
	ep.free = append(ep.free, e)
}

// eventHeap is a binary min-heap over (at, seq), hand-rolled to avoid the
// container/heap interface boxing on the hot path.
type eventHeap []*event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e *event) {
	q := append(*h, e)
	*h = q
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *eventHeap) pop() *event {
	q := *h
	n := len(q) - 1
	e := q[0]
	q[0] = q[n]
	q[n] = nil
	q = q[:n]
	*h = q
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && q.less(r, l) {
			c = r
		}
		if !q.less(c, i) {
			break
		}
		q[i], q[c] = q[c], q[i]
		i = c
	}
	return e
}

func (h eventHeap) peek() *event { return h[0] }

// Kernel owns the event queue and all Procs of one simulation.
type Kernel struct {
	procs []*Proc
	sched scheduler
	seq   uint64
	park  chan struct{} // the baton returns here when the serial engine stops
	pool  eventPool
	batch []*event // scratch for batch barrier releases

	// stop bookkeeping for the direct-dispatch baton (dispatch.go).
	stop   stopReason
	stopAt Time
	failed *Proc

	started  bool
	finished bool
	parallel bool

	// MaxEvents, when positive, bounds the number of events Run will
	// process — a guard against protocol livelock in tests.
	MaxEvents int64
	processed int64

	deliveries int64
	resumes    int64
	maxQueue   int

	// Causal profiling (record.go). Both are nil unless EnableRecorder
	// ran; every hot-path hook guards on that nil.
	rec *Recorder
	eng *EngineFlight
}

// KernelStats is the kernel's own accounting: total events dispatched,
// the split into message deliveries and Proc resumes (scheduling), and
// the event queue's high-water mark. Deterministic for a deterministic
// simulation — and identical across the serial and parallel engines — so
// exact values are assertable in tests.
type KernelStats struct {
	Events     int64 `json:"events"`
	Deliveries int64 `json:"deliveries"`
	Resumes    int64 `json:"resumes"`
	MaxQueue   int   `json:"max_queue"`
	Procs      int   `json:"procs"`
}

// Stats returns the kernel's dispatch statistics so far.
func (k *Kernel) Stats() KernelStats {
	return KernelStats{
		Events:     k.processed,
		Deliveries: k.deliveries,
		Resumes:    k.resumes,
		MaxQueue:   k.maxQueue,
		Procs:      len(k.procs),
	}
}

// NewKernel returns an empty simulation using the timing-wheel scheduler
// at DefaultWheelGranularity; UseScheduler selects the heap reference or a
// different bucket width.
func NewKernel() *Kernel {
	return &Kernel{park: make(chan struct{}), sched: newWheel(DefaultWheelGranularity, 0)}
}

// Spawn registers a new Proc that will begin executing fn at virtual time 0
// when Run is called (or immediately, if the serial simulation is already
// running). Daemon Procs (see SetDaemon) do not prevent Run from
// completing. Spawning after RunParallel has started is not supported.
func (k *Kernel) Spawn(name string, fn func(*Proc)) *Proc {
	if k.started && k.parallel {
		panic("sim: Spawn during a parallel run")
	}
	p := &Proc{
		k:       k,
		id:      len(k.procs),
		name:    name,
		state:   stateNew,
		resume:  make(chan struct{}),
		fn:      fn,
		waitCat: CatIdle,
	}
	if k.started {
		p.park = k.park
	}
	k.procs = append(k.procs, p)
	go p.run()
	e := k.pool.get()
	e.at, e.kind, e.proc = 0, evResume, p
	k.post(e)
	return p
}

// SetDaemon marks p as a daemon: the simulation is considered complete when
// every non-daemon Proc has finished, all remaining events have drained,
// and every daemon is blocked waiting for messages. Protocol-handler loops
// are daemons.
func (p *Proc) SetDaemon(d bool) { p.daemon = d }

func (p *Proc) run() {
	<-p.resume
	defer func() {
		if r := recover(); r != nil {
			p.err = fmt.Errorf("proc %q panicked: %v", p.name, r)
			p.panicVal = r
		}
		p.state = stateDone
		p.finish()
	}()
	p.fn(p)
}

func (k *Kernel) post(e *event) {
	e.seq = k.seq
	k.seq++
	k.sched.push(e)
}

// releaseAll schedules an evResume at `at` for each waiter, then for self,
// as one scheduler batch with consecutive sequence numbers — event-for-
// event identical to posting them individually, but the wake times are
// precomputed up front and the wheel files the whole release with a single
// bucket append instead of n pushes. posted is the last arrival time (the
// release minus the barrier cost), carried for the flight recorder: the
// release edge spans [posted, at] with the last arriver (self) as source.
func (k *Kernel) releaseAll(waiters []*Proc, self *Proc, at, posted Time) {
	es := k.batch[:0]
	for _, w := range waiters {
		e := k.pool.get()
		e.at, e.kind, e.proc = at, evResume, w
		e.from, e.posted, e.cause = self, posted, causeBarrier
		e.seq = k.seq
		k.seq++
		es = append(es, e)
	}
	e := k.pool.get()
	e.at, e.kind, e.proc = at, evResume, self
	e.from, e.posted, e.cause = self, posted, causeBarrier
	e.seq = k.seq
	k.seq++
	es = append(es, e)
	k.sched.pushBatch(es)
	for i := range es {
		es[i] = nil // the scheduler owns them now
	}
	k.batch = es[:0]
}

// postFrom schedules an event on behalf of the running Proc p, routing it
// through p's lane buffer under the parallel engine. The poster's current
// clock is stamped as the event's posted time (flight-recorder edges).
func (p *Proc) postFrom(at Time, kind eventKind, dst, from *Proc, msg any, cause uint8) {
	if l := p.lane; l != nil {
		l.postLocal(at, kind, dst, from, msg, p.now, cause)
		return
	}
	e := p.k.pool.get()
	e.at, e.kind, e.proc, e.from, e.msg = at, kind, dst, from, msg
	e.posted, e.cause = p.now, cause
	p.k.post(e)
}

// OnCommit runs fn when the current event commits in global order. Under
// the serial engine that is immediately; under the parallel engine fn is
// buffered and invoked during the window's commit replay, after all
// virtual-time-earlier events of other lanes have committed. Side effects
// that escape the simulated node state (trace records, shared sinks) must
// go through OnCommit so both engines emit them in the same order. fn runs
// single-threaded, on whichever goroutine performs the commit; it must not
// call back into the kernel, and it
// must capture any simulated state it needs by value — the Proc may have
// run further ahead inside the window by the time fn executes.
func (p *Proc) OnCommit(fn func()) {
	if l := p.lane; l != nil {
		l.cur.effects = append(l.cur.effects, fn)
		return
	}
	fn()
}

// Send schedules delivery of msg to dst at p.Now()+delay. The sender's own
// clock is not advanced; model sender-side occupancy with Advance before
// calling Send. Delay must be non-negative.
func (p *Proc) Send(dst *Proc, msg any, delay Time) {
	if delay < 0 {
		panic("sim: negative send delay")
	}
	if dst == nil {
		panic("sim: send to nil proc")
	}
	p.postFrom(p.now+delay, evDeliver, dst, p, msg, causeNone)
}

// SendAt schedules delivery of msg to dst at absolute virtual time at
// (which must be >= the sender's current time).
func (p *Proc) SendAt(dst *Proc, msg any, at Time) {
	if at < p.now {
		panic("sim: SendAt into the past")
	}
	p.postFrom(at, evDeliver, dst, p, msg, causeNone)
}

// Recv blocks until a message is available and returns the earliest one.
// If the message arrived while the Proc was busy, the Proc's clock is
// unchanged (the message waited); otherwise the clock advances to the
// arrival time — a binding delivery, recorded as a causal edge and
// attributed (transit plus pre-post wait) when profiling is on.
func (p *Proc) Recv() Delivery {
	for p.mlen == 0 {
		p.state = stateBlockedRecv
		p.yield()
	}
	d := p.mpop()
	if d.At > p.now {
		if p.aslot != nil {
			p.chargeRecv(d.At, d.Posted, p.now)
		}
		if p.k.rec != nil {
			p.record(Edge{Kind: EdgeDeliver, Src: procID(d.From), Dst: int32(p.id),
				At: d.At, Posted: d.Posted, Prev: p.now})
		}
		p.now = d.At
	}
	return d
}

// TryRecv returns the earliest pending message, if any, without blocking.
func (p *Proc) TryRecv() (Delivery, bool) {
	if p.mlen == 0 {
		return Delivery{}, false
	}
	d := p.mpop()
	if d.At > p.now {
		if p.aslot != nil {
			p.chargeRecv(d.At, d.Posted, p.now)
		}
		if p.k.rec != nil {
			p.record(Edge{Kind: EdgeDeliver, Src: procID(d.From), Dst: int32(p.id),
				At: d.At, Posted: d.Posted, Prev: p.now})
		}
		p.now = d.At
	}
	return d, true
}

// procID is the edge source id of a possibly-nil Proc.
func procID(p *Proc) int32 {
	if p == nil {
		return -1
	}
	return int32(p.id)
}

// Pending reports the number of messages waiting in the Proc's mailbox.
func (p *Proc) Pending() int { return p.mlen }

// Sleep blocks the Proc until its clock reaches now+d, letting other
// (earlier) events run meanwhile. Slept time is attributed to CatIdle.
func (p *Proc) Sleep(d Time) {
	if d <= 0 {
		return
	}
	p.postFrom(p.now+d, evResume, p, p, nil, causeTimer)
	p.state = stateSleeping // deliveries queue but do not wake a sleeper
	save := p.waitCat
	p.waitCat = CatIdle
	p.yield()
	p.waitCat = save
}

// Barrier synchronizes a fixed group of Procs. All participants block in
// Wait until the last arrives; every participant then resumes at
// max(arrival times) + Cost.
type Barrier struct {
	k    *Kernel
	n    int
	cost Time

	count   int
	maxAt   Time
	waiters []*Proc
	epoch   uint64
}

// NewBarrier creates a barrier for n participants with the given per-use
// synchronization cost (e.g. a log-tree of message latencies).
func (k *Kernel) NewBarrier(n int, cost Time) *Barrier {
	if n <= 0 {
		panic("sim: barrier with n <= 0")
	}
	return &Barrier{k: k, n: n, cost: cost}
}

// Wait enters the barrier and returns the virtual time this Proc spent
// waiting for the release (including the barrier cost).
func (p *Proc) Wait(b *Barrier) Time {
	if b.k != p.k {
		panic("sim: barrier from a different kernel")
	}
	arrive := p.now
	if l := p.lane; l != nil {
		// Parallel engine: barrier state is shared across lanes, so the
		// arrival is only logged here; the commit replay applies it — and
		// synthesizes the release events — in global order (see
		// applyArrival in parallel.go).
		st := l.cur
		st.barrier = b
		st.barrierAt = arrive
		p.state = stateBlockedBarrier
		p.yield()
		return p.now - arrive
	}
	b.count++
	if arrive > b.maxAt {
		b.maxAt = arrive
	}
	if b.count < b.n {
		b.waiters = append(b.waiters, p)
		p.state = stateBlockedBarrier
		p.yield()
		return p.now - arrive
	}
	// Last arrival: release everyone (including self) at maxAt+cost, as
	// one batch — waiters in arrival order, then self.
	release := b.maxAt + b.cost
	p.k.releaseAll(b.waiters, p, release, b.maxAt)
	b.count = 0
	b.maxAt = 0
	b.waiters = b.waiters[:0]
	b.epoch++
	p.state = stateBlockedBarrier
	p.yield()
	return p.now - arrive
}

// RunawayError reports a simulation stopped by the MaxEvents guard
// (almost always a protocol livelock).
type RunawayError struct {
	Events int64
	At     Time
}

func (e *RunawayError) Error() string {
	return fmt.Sprintf("sim: runaway: %d events processed, virtual time %v", e.Events, e.At)
}

// Processed reports how many events Run has handled so far.
func (k *Kernel) Processed() int64 { return k.processed }

// DeadlockError reports a simulation that stopped with blocked non-daemon
// Procs and no pending events.
type DeadlockError struct {
	Blocked []string
}

func (e *DeadlockError) Error() string {
	return "sim: deadlock; blocked procs: " + strings.Join(e.Blocked, ", ")
}

// Run executes the simulation serially until every non-daemon Proc has
// finished and the event queue has drained. It returns a DeadlockError if
// non-daemon Procs remain blocked with no events pending, or the panic
// value if a Proc panicked.
//
// "Serially" means one Proc goroutine runs at a time; control is handed
// directly from Proc to Proc in global event order (see dispatch.go), and
// this goroutine resumes only when the simulation stops.
func (k *Kernel) Run() error {
	if k.finished {
		return fmt.Errorf("sim: kernel already ran")
	}
	k.started = true
	for _, p := range k.procs {
		p.park = k.park
	}
	if k.serialNext(nil) == dispatchHandoff {
		<-k.park
	}
	switch k.stop {
	case stopRunaway:
		k.finished = true
		return &RunawayError{Events: k.processed, At: k.stopAt}
	case stopPanic:
		k.finished = true
		panic(k.failed.panicVal)
	}
	return k.conclude()
}

// conclude marks the simulation finished and scans for deadlocked Procs.
func (k *Kernel) conclude() error {
	k.finished = true
	var blocked []string
	for _, p := range k.procs {
		if p.state == stateDone {
			continue
		}
		if p.daemon && p.state == stateBlockedRecv {
			continue
		}
		blocked = append(blocked, fmt.Sprintf("%s(%s)", p.name, p.state))
	}
	if len(blocked) > 0 {
		sort.Strings(blocked)
		return &DeadlockError{Blocked: blocked}
	}
	return nil
}

// Procs returns all Procs registered with the kernel, in spawn order.
func (k *Kernel) Procs() []*Proc { return k.procs }
