// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel models a parallel machine in virtual time. Each simulated
// activity is a Proc: a goroutine with a private virtual clock that
// exchanges timestamped messages with other Procs and synchronizes at
// barriers. The kernel serializes execution — exactly one Proc goroutine
// runs at any real instant, and control is handed out in global
// (timestamp, sequence) order — so simulations are fully deterministic and
// need no locking in the simulated node state.
//
// A Proc advances its own clock with Advance (batched, without yielding to
// the kernel); cross-Proc interaction happens only through timestamped
// messages (Send/Recv) and barriers (Barrier.Wait). This discipline gives
// causally correct virtual time for programs whose cross-Proc interactions
// are message-mediated, which holds for the data-race-free phase-structured
// programs this repository simulates.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
)

// Time is virtual time in nanoseconds.
type Time int64

// Common virtual-time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats a Time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// procState tracks what a Proc goroutine is currently doing.
type procState int

const (
	stateNew procState = iota
	stateRunnable
	stateRunning
	stateBlockedRecv
	stateBlockedBarrier
	stateSleeping
	stateDone
)

func (s procState) String() string {
	switch s {
	case stateNew:
		return "new"
	case stateRunnable:
		return "runnable"
	case stateRunning:
		return "running"
	case stateBlockedRecv:
		return "blocked-recv"
	case stateBlockedBarrier:
		return "blocked-barrier"
	case stateSleeping:
		return "sleeping"
	case stateDone:
		return "done"
	}
	return "unknown"
}

// Delivery is a message as received: payload plus provenance and the
// virtual time at which it arrived at the destination.
type Delivery struct {
	At   Time  // arrival time at the destination
	From *Proc // sending Proc (nil for kernel-injected messages)
	Msg  any   // payload
}

// Proc is a simulated sequential activity with its own virtual clock.
type Proc struct {
	k      *Kernel
	id     int
	name   string
	daemon bool

	now     Time
	state   procState
	mailbox []Delivery // ordered by arrival (kernel delivers in time order)

	resume chan struct{}
	fn     func(*Proc)

	err error // set if fn panicked
}

// ID returns the Proc's kernel-assigned identifier (dense, from 0).
func (p *Proc) ID() int { return p.id }

// Name returns the Proc's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Now returns the Proc's current virtual time. It may only be called from
// the Proc's own goroutine.
func (p *Proc) Now() Time { return p.now }

// Advance adds d to the Proc's virtual clock without yielding to the
// kernel. Negative durations are ignored.
func (p *Proc) Advance(d Time) {
	if d > 0 {
		p.now += d
	}
}

// event kinds processed by the kernel loop.
type eventKind int

const (
	evResume  eventKind = iota // wake a blocked/new Proc at ev.at
	evDeliver                  // deliver ev.msg to ev.proc at ev.at
)

type event struct {
	at   Time
	seq  uint64
	kind eventKind
	proc *Proc
	from *Proc
	msg  any
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
func (h eventHeap) peek() *event   { return h[0] }
func (h *eventHeap) pop() *event   { return heap.Pop(h).(*event) }
func (h *eventHeap) push(e *event) { heap.Push(h, e) }

// Kernel owns the event queue and all Procs of one simulation.
type Kernel struct {
	procs []*Proc
	queue eventHeap
	seq   uint64
	park  chan struct{} // Procs signal here when yielding control

	started  bool
	finished bool
	panicked any

	// MaxEvents, when positive, bounds the number of events Run will
	// process — a guard against protocol livelock in tests.
	MaxEvents int64
	processed int64

	deliveries int64
	resumes    int64
	maxQueue   int
}

// KernelStats is the kernel's own accounting: total events dispatched,
// the split into message deliveries and Proc resumes (scheduling), and
// the event queue's high-water mark. Deterministic for a deterministic
// simulation, so exact values are assertable in tests.
type KernelStats struct {
	Events     int64 `json:"events"`
	Deliveries int64 `json:"deliveries"`
	Resumes    int64 `json:"resumes"`
	MaxQueue   int   `json:"max_queue"`
	Procs      int   `json:"procs"`
}

// Stats returns the kernel's dispatch statistics so far.
func (k *Kernel) Stats() KernelStats {
	return KernelStats{
		Events:     k.processed,
		Deliveries: k.deliveries,
		Resumes:    k.resumes,
		MaxQueue:   k.maxQueue,
		Procs:      len(k.procs),
	}
}

// NewKernel returns an empty simulation.
func NewKernel() *Kernel {
	return &Kernel{park: make(chan struct{})}
}

// Spawn registers a new Proc that will begin executing fn at virtual time 0
// when Run is called (or immediately, if the simulation is already
// running). Daemon Procs (see SetDaemon) do not prevent Run from
// completing.
func (k *Kernel) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{
		k:      k,
		id:     len(k.procs),
		name:   name,
		state:  stateNew,
		resume: make(chan struct{}),
		fn:     fn,
	}
	k.procs = append(k.procs, p)
	go p.run()
	k.post(&event{at: 0, kind: evResume, proc: p})
	return p
}

// SetDaemon marks p as a daemon: the simulation is considered complete when
// every non-daemon Proc has finished, all remaining events have drained,
// and every daemon is blocked waiting for messages. Protocol-handler loops
// are daemons.
func (p *Proc) SetDaemon(d bool) { p.daemon = d }

func (p *Proc) run() {
	<-p.resume
	defer func() {
		if r := recover(); r != nil {
			p.err = fmt.Errorf("proc %q panicked: %v", p.name, r)
			p.k.panicked = r
		}
		p.state = stateDone
		p.k.park <- struct{}{}
	}()
	p.fn(p)
}

func (k *Kernel) post(e *event) {
	e.seq = k.seq
	k.seq++
	k.queue.push(e)
}

// activate hands control to p and blocks until p yields back.
func (k *Kernel) activate(p *Proc) {
	p.state = stateRunning
	p.resume <- struct{}{}
	<-k.park
}

// yield returns control from a Proc goroutine to the kernel and blocks
// until the kernel reactivates the Proc.
func (p *Proc) yield() {
	p.k.park <- struct{}{}
	<-p.resume
}

// Send schedules delivery of msg to dst at p.Now()+delay. The sender's own
// clock is not advanced; model sender-side occupancy with Advance before
// calling Send. Delay must be non-negative.
func (p *Proc) Send(dst *Proc, msg any, delay Time) {
	if delay < 0 {
		panic("sim: negative send delay")
	}
	if dst == nil {
		panic("sim: send to nil proc")
	}
	p.k.post(&event{at: p.now + delay, kind: evDeliver, proc: dst, from: p, msg: msg})
}

// SendAt schedules delivery of msg to dst at absolute virtual time at
// (which must be >= the sender's current time).
func (p *Proc) SendAt(dst *Proc, msg any, at Time) {
	if at < p.now {
		panic("sim: SendAt into the past")
	}
	p.k.post(&event{at: at, kind: evDeliver, proc: dst, from: p, msg: msg})
}

// Recv blocks until a message is available and returns the earliest one.
// If the message arrived while the Proc was busy, the Proc's clock is
// unchanged (the message waited); otherwise the clock advances to the
// arrival time.
func (p *Proc) Recv() Delivery {
	for len(p.mailbox) == 0 {
		p.state = stateBlockedRecv
		p.yield()
	}
	d := p.mailbox[0]
	copy(p.mailbox, p.mailbox[1:])
	p.mailbox = p.mailbox[:len(p.mailbox)-1]
	if d.At > p.now {
		p.now = d.At
	}
	return d
}

// TryRecv returns the earliest pending message, if any, without blocking.
func (p *Proc) TryRecv() (Delivery, bool) {
	if len(p.mailbox) == 0 {
		return Delivery{}, false
	}
	d := p.mailbox[0]
	copy(p.mailbox, p.mailbox[1:])
	p.mailbox = p.mailbox[:len(p.mailbox)-1]
	if d.At > p.now {
		p.now = d.At
	}
	return d, true
}

// Pending reports the number of messages waiting in the Proc's mailbox.
func (p *Proc) Pending() int { return len(p.mailbox) }

// Sleep blocks the Proc until its clock reaches now+d, letting other
// (earlier) events run meanwhile.
func (p *Proc) Sleep(d Time) {
	if d <= 0 {
		return
	}
	p.k.post(&event{at: p.now + d, kind: evResume, proc: p})
	p.state = stateSleeping // deliveries queue but do not wake a sleeper
	p.yield()
}

// Barrier synchronizes a fixed group of Procs. All participants block in
// Wait until the last arrives; every participant then resumes at
// max(arrival times) + Cost.
type Barrier struct {
	k    *Kernel
	n    int
	cost Time

	count   int
	maxAt   Time
	waiters []*Proc
	epoch   uint64
}

// NewBarrier creates a barrier for n participants with the given per-use
// synchronization cost (e.g. a log-tree of message latencies).
func (k *Kernel) NewBarrier(n int, cost Time) *Barrier {
	if n <= 0 {
		panic("sim: barrier with n <= 0")
	}
	return &Barrier{k: k, n: n, cost: cost}
}

// Wait enters the barrier and returns the virtual time this Proc spent
// waiting for the release (including the barrier cost).
func (p *Proc) Wait(b *Barrier) Time {
	if b.k != p.k {
		panic("sim: barrier from a different kernel")
	}
	arrive := p.now
	b.count++
	if arrive > b.maxAt {
		b.maxAt = arrive
	}
	if b.count < b.n {
		b.waiters = append(b.waiters, p)
		p.state = stateBlockedBarrier
		p.yield()
		return p.now - arrive
	}
	// Last arrival: release everyone (including self) at maxAt+cost.
	release := b.maxAt + b.cost
	for _, w := range b.waiters {
		p.k.post(&event{at: release, kind: evResume, proc: w})
	}
	p.k.post(&event{at: release, kind: evResume, proc: p})
	b.count = 0
	b.maxAt = 0
	b.waiters = b.waiters[:0]
	b.epoch++
	p.state = stateBlockedBarrier
	p.yield()
	return p.now - arrive
}

// RunawayError reports a simulation stopped by the MaxEvents guard
// (almost always a protocol livelock).
type RunawayError struct {
	Events int64
	At     Time
}

func (e *RunawayError) Error() string {
	return fmt.Sprintf("sim: runaway: %d events processed, virtual time %v", e.Events, e.At)
}

// Processed reports how many events Run has handled so far.
func (k *Kernel) Processed() int64 { return k.processed }

// DeadlockError reports a simulation that stopped with blocked non-daemon
// Procs and no pending events.
type DeadlockError struct {
	Blocked []string
}

func (e *DeadlockError) Error() string {
	return "sim: deadlock; blocked procs: " + strings.Join(e.Blocked, ", ")
}

// Run executes the simulation until every non-daemon Proc has finished and
// the event queue has drained. It returns a DeadlockError if non-daemon
// Procs remain blocked with no events pending, or the panic value if a
// Proc panicked.
func (k *Kernel) Run() error {
	if k.finished {
		return fmt.Errorf("sim: kernel already ran")
	}
	heap.Init(&k.queue)
	for len(k.queue) > 0 {
		if k.MaxEvents > 0 && k.processed >= k.MaxEvents {
			k.finished = true
			return &RunawayError{Events: k.processed, At: k.queue.peek().at}
		}
		if n := len(k.queue); n > k.maxQueue {
			k.maxQueue = n
		}
		k.processed++
		e := k.queue.pop()
		p := e.proc
		if p.state == stateDone {
			continue
		}
		switch e.kind {
		case evResume:
			k.resumes++
			if p.state == stateRunning {
				panic("sim: resume of running proc")
			}
			if e.at > p.now {
				p.now = e.at
			}
			k.activate(p)
		case evDeliver:
			k.deliveries++
			p.mailbox = append(p.mailbox, Delivery{At: e.at, From: e.from, Msg: e.msg})
			if p.state == stateBlockedRecv {
				k.activate(p)
			}
		}
		if k.panicked != nil {
			k.finished = true
			panic(k.panicked)
		}
	}
	k.finished = true
	var blocked []string
	for _, p := range k.procs {
		if p.state == stateDone {
			continue
		}
		if p.daemon && p.state == stateBlockedRecv {
			continue
		}
		blocked = append(blocked, fmt.Sprintf("%s(%s)", p.name, p.state))
	}
	if len(blocked) > 0 {
		sort.Strings(blocked)
		return &DeadlockError{Blocked: blocked}
	}
	return nil
}

// Procs returns all Procs registered with the kernel, in spawn order.
func (k *Kernel) Procs() []*Proc { return k.procs }
