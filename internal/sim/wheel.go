package sim

// Pluggable pending-event schedulers.
//
// The kernel dispatches events in global (timestamp, sequence) order; the
// scheduler is the data structure that hands them out in that order. Two
// implementations exist: the binary eventHeap (sim.go), kept as the
// reference, and the hierarchical timing wheel below, which exploits the
// shape of discrete-event traffic in this simulator — long runs of events
// at the same or nearby timestamps (message bursts, barrier releases) —
// to make the common push/pop pair O(1) instead of O(log n).
//
// Both orders are identical: within a wheel bucket events are drained in
// (at, seq) order, buckets are swept in ascending time order, and the
// overflow heap releases far timers into their bucket before the cursor
// reaches it. A simulation therefore produces byte-identical results —
// same dispatch order, same statistics, same traces — under either
// scheduler; internal/chaos runs a differential across both to enforce
// this.

// SchedulerKind selects the kernel's pending-event data structure.
type SchedulerKind string

const (
	// SchedWheel is the timing-wheel scheduler (the default).
	SchedWheel SchedulerKind = "wheel"
	// SchedHeap is the binary-heap reference scheduler.
	SchedHeap SchedulerKind = "heap"
)

// DefaultWheelGranularity is the bucket width used when no explicit
// granularity is configured. Simulations driven by a network cost model
// should pass the model's minimum cross-node latency instead (see
// rt.Config.Sched), which aligns one lookahead window with O(1) buckets.
const DefaultWheelGranularity = Microsecond

// scheduler is the kernel's pending-event set, ordered by (at, seq).
type scheduler interface {
	push(e *event)
	pushBatch(es []*event) // all events share es[0].at; seqs ascending
	pop() *event
	peek() *event            // nil when empty
	popBefore(t Time) *event // pop the head iff it exists and is before t
	len() int
}

// UseScheduler replaces the kernel's event scheduler. It must be called
// before any Proc is spawned or event posted; granularity sets the wheel
// bucket width (ignored by SchedHeap; <= 0 selects
// DefaultWheelGranularity).
func (k *Kernel) UseScheduler(kind SchedulerKind, granularity Time) {
	k.UseSchedulerSized(kind, granularity, 0)
}

// UseSchedulerSized is UseScheduler with an explicit wheel capacity hint:
// the near-wheel bucket count is the hint rounded up to a power of two
// (minimum wheelBuckets; <= 0 keeps the default). A machine with many
// processors in flight wants a wheel at least as wide as its concurrent
// event population so pushes stay O(1) appends instead of spilling to the
// overflow heap; bucket count never affects dispatch order, only the
// constant factors.
func (k *Kernel) UseSchedulerSized(kind SchedulerKind, granularity Time, buckets int) {
	if k.started || k.seq != 0 || k.sched.len() != 0 {
		panic("sim: UseScheduler after events were scheduled")
	}
	switch kind {
	case SchedHeap:
		k.sched = &heapSched{}
	case SchedWheel:
		k.sched = newWheel(granularity, buckets)
	default:
		panic("sim: unknown scheduler kind " + string(kind))
	}
}

// heapSched adapts the hand-rolled eventHeap to the scheduler interface.
type heapSched struct{ h eventHeap }

func (s *heapSched) push(e *event) { s.h.push(e) }
func (s *heapSched) pop() *event   { return s.h.pop() }
func (s *heapSched) len() int      { return len(s.h) }
func (s *heapSched) pushBatch(es []*event) {
	for _, e := range es {
		s.h.push(e)
	}
}
func (s *heapSched) popBefore(t Time) *event {
	if len(s.h) == 0 || s.h.peek().at >= t {
		return nil
	}
	return s.h.pop()
}
func (s *heapSched) peek() *event {
	if len(s.h) == 0 {
		return nil
	}
	return s.h.peek()
}

// wheelBuckets is the default near-wheel size (a power of two). The
// horizon — bucket count × granularity of virtual time — bounds how far
// ahead an event may land and still get an O(1) bucket append; anything
// farther waits in the overflow heap and migrates into its bucket as the
// cursor sweeps forward. Large machines pass a bigger hint through
// UseSchedulerSized (rt scales it with the node count) so a 1024-lane
// burst doesn't thrash the overflow heap.
const wheelBuckets = 256

// maxWheelBuckets caps the hint: beyond this the wheel's resident
// footprint (one slice header per bucket) outweighs the overflow savings.
const maxWheelBuckets = 8192

// wheelSched is a single-level timing wheel with an overflow heap.
//
// Invariants:
//   - cur holds the remainder of bucket curIdx, sorted by (at, seq),
//     draining from curPos;
//   - buckets[i&mask] holds unsorted events whose bucket index i lies in
//     (curIdx, curIdx+size); slots never alias because two live
//     indices differ by less than size;
//   - overflow holds events at bucket indices >= curIdx+size (at
//     the time they were pushed); loadBucket migrates due entries;
//   - event times never precede the cursor: the kernel's dispatch time is
//     nondecreasing and every post is at the poster's current time or
//     later, so a push lands in cur (sorted insert) or ahead of it.
type wheelSched struct {
	g       Time // bucket width
	curIdx  int64
	cur     []*event
	curPos  int
	inWheel int // events in cur remainder + buckets (not overflow)

	size     int64 // bucket count (power of two)
	mask     int64 // size - 1
	buckets  [][]*event
	overflow eventHeap

	// spare recycles the largest drained bucket's storage for the next
	// batch push. Without it a periodic burst (a 1024-proc barrier
	// release) lands in a fresh empty bucket every time and re-grows it
	// from nothing, while the previously grown storage sits parked in a
	// slot the cursor only revisits a full wrap later.
	spare []*event
}

func newWheel(g Time, size int) *wheelSched {
	if g <= 0 {
		g = DefaultWheelGranularity
	}
	n := int64(wheelBuckets)
	for int64(size) > n && n < maxWheelBuckets {
		n <<= 1
	}
	return &wheelSched{g: g, size: n, mask: n - 1, buckets: make([][]*event, n)}
}

func (w *wheelSched) len() int { return w.inWheel + len(w.overflow) }

func (w *wheelSched) push(e *event) {
	idx := int64(e.at) / int64(w.g)
	switch {
	case idx <= w.curIdx:
		w.insertCur(e)
	case idx < w.curIdx+w.size:
		w.buckets[idx&w.mask] = append(w.buckets[idx&w.mask], e)
		w.inWheel++
	default:
		w.overflow.push(e)
	}
}

// pushBatch schedules a run of events that share one timestamp (ascending
// seq) — a barrier release — in one go: one bucket-index computation, and
// on the near-wheel path a single append covers the whole batch.
func (w *wheelSched) pushBatch(es []*event) {
	if len(es) == 0 {
		return
	}
	idx := int64(es[0].at) / int64(w.g)
	switch {
	case idx <= w.curIdx:
		for _, e := range es {
			w.insertCur(e)
		}
	case idx < w.curIdx+w.size:
		slot := idx & w.mask
		if b := w.buckets[slot]; len(b) == 0 && cap(b) < len(es) && len(es) <= cap(w.spare) {
			w.buckets[slot], w.spare = w.spare[:0], b
		}
		w.buckets[slot] = append(w.buckets[slot], es...)
		w.inWheel += len(es)
	default:
		for _, e := range es {
			w.overflow.push(e)
		}
	}
}

// insertCur places an event into the sorted remainder of the current
// bucket. The common cases append: a burst at one timestamp arrives in
// seq order, and anything later than the bucket's tail belongs at the end.
func (w *wheelSched) insertCur(e *event) {
	w.inWheel++
	if n := len(w.cur); n == w.curPos || eventAfter(e, w.cur[n-1]) {
		w.cur = append(w.cur, e)
		return
	}
	lo, hi := w.curPos, len(w.cur)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if eventAfter(e, w.cur[mid]) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	w.cur = append(w.cur, nil)
	copy(w.cur[lo+1:], w.cur[lo:])
	w.cur[lo] = e
}

// eventAfter reports whether a orders strictly after b in (at, seq).
func eventAfter(a, b *event) bool {
	if a.at != b.at {
		return a.at > b.at
	}
	return a.seq > b.seq
}

// peek returns the earliest pending event, advancing the cursor across
// empty buckets as needed (order is unaffected), or nil when empty.
func (w *wheelSched) peek() *event {
	for {
		if w.curPos < len(w.cur) {
			return w.cur[w.curPos]
		}
		if w.inWheel == 0 {
			if len(w.overflow) == 0 {
				return nil
			}
			// Every near bucket is empty: jump the cursor straight to the
			// earliest far timer's bucket instead of sweeping dead air.
			w.curIdx = int64(w.overflow.peek().at) / int64(w.g)
			w.loadBucket()
			continue
		}
		w.curIdx++
		w.loadBucket()
	}
}

func (w *wheelSched) pop() *event {
	e := w.peek()
	if e == nil {
		panic("sim: pop from empty scheduler")
	}
	w.cur[w.curPos] = nil
	w.curPos++
	w.inWheel--
	return e
}

// popBefore pops the head event iff one exists with at < t. The fast path
// — the current bucket's sorted remainder has a due head — is a single
// bounds check and indexed load, which matters in the window-open loop
// where the engine drains a burst in one sweep.
func (w *wheelSched) popBefore(t Time) *event {
	if w.curPos < len(w.cur) {
		if e := w.cur[w.curPos]; e.at < t {
			w.cur[w.curPos] = nil
			w.curPos++
			w.inWheel--
			return e
		}
		return nil
	}
	e := w.peek()
	if e == nil || e.at >= t {
		return nil
	}
	w.cur[w.curPos] = nil
	w.curPos++
	w.inWheel--
	return e
}

// loadBucket makes bucket curIdx current: it swaps the slot's slice in
// (recycling the drained one's storage), migrates due overflow timers,
// and sorts the result by (at, seq). Insertion sort keeps the sweep O(1)
// per event for the dominant cases — a same-timestamp burst arrives
// already sorted because sequence numbers are assigned in push order.
func (w *wheelSched) loadBucket() {
	slot := w.curIdx & w.mask
	w.cur = w.cur[:0]
	w.cur, w.buckets[slot] = w.buckets[slot], w.cur
	// Keep the largest idle storage where the next batch push can find
	// it; the slot just holds the smaller one (it is empty either way).
	if cap(w.buckets[slot]) > cap(w.spare) {
		w.spare, w.buckets[slot] = w.buckets[slot], w.spare
	}
	w.curPos = 0
	for len(w.overflow) > 0 && int64(w.overflow.peek().at)/int64(w.g) <= w.curIdx {
		w.cur = append(w.cur, w.overflow.pop())
		w.inWheel++
	}
	q := w.cur
	for i := 1; i < len(q); i++ {
		e := q[i]
		j := i
		for j > 0 && eventAfter(q[j-1], e) {
			q[j] = q[j-1]
			j--
		}
		q[j] = e
	}
}
