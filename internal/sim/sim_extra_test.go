package sim

import (
	"errors"
	"strings"
	"testing"
)

func TestRunawayGuard(t *testing.T) {
	k := NewKernel()
	k.MaxEvents = 50
	a, b := make(chan *Proc, 1), make(chan *Proc, 1)
	pa := k.Spawn("a", func(p *Proc) {
		pb := <-b
		for {
			p.Send(pb, 1, Microsecond)
			p.Recv()
		}
	})
	pb := k.Spawn("b", func(p *Proc) {
		pa := <-a
		for {
			p.Recv()
			p.Send(pa, 1, Microsecond)
		}
	})
	a <- pa
	b <- pb
	err := k.Run()
	var re *RunawayError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RunawayError", err)
	}
	if re.Events < 50 {
		t.Fatalf("events = %d", re.Events)
	}
	if !strings.Contains(re.Error(), "runaway") {
		t.Fatalf("message = %q", re.Error())
	}
	if k.Processed() < 50 {
		t.Fatalf("processed = %d", k.Processed())
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		500 * Nanosecond:       "500ns",
		5 * Microsecond:        "5.000us",
		1500 * Microsecond:     "1.500ms",
		2*Second + Millisecond: "2.001s",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(in), got, want)
		}
	}
	if s := (2 * Second).Seconds(); s != 2.0 {
		t.Errorf("Seconds = %v", s)
	}
}

func TestSendAtAndPastPanic(t *testing.T) {
	k := NewKernel()
	var arrival Time
	dst := k.Spawn("dst", func(p *Proc) {
		arrival = p.Recv().At
	})
	k.Spawn("src", func(p *Proc) {
		p.Advance(10 * Microsecond)
		p.SendAt(dst, 1, 25*Microsecond)
		defer func() {
			if recover() == nil {
				t.Error("SendAt into the past did not panic")
			}
		}()
		p.SendAt(dst, 2, 5*Microsecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if arrival != 25*Microsecond {
		t.Fatalf("arrival = %v", arrival)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	k := NewKernel()
	dst := k.Spawn("dst", func(p *Proc) { p.Recv() })
	dst.SetDaemon(true)
	k.Spawn("src", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("negative delay did not panic")
			}
		}()
		p.Send(dst, 1, -1)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierAcrossManyRounds(t *testing.T) {
	// Stress the barrier reuse with skewed arrival patterns.
	k := NewKernel()
	const n, rounds = 5, 20
	b := k.NewBarrier(n, Microsecond)
	ends := make([]Time, n)
	for i := 0; i < n; i++ {
		i := i
		k.Spawn("w", func(p *Proc) {
			for r := 0; r < rounds; r++ {
				p.Advance(Time((i*7+r*3)%11+1) * Microsecond)
				p.Wait(b)
			}
			ends[i] = p.Now()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if ends[i] != ends[0] {
			t.Fatalf("desynchronized: %v", ends)
		}
	}
}

func TestProcIdentity(t *testing.T) {
	k := NewKernel()
	p1 := k.Spawn("alpha", func(p *Proc) {})
	p2 := k.Spawn("beta", func(p *Proc) {})
	if p1.ID() != 0 || p2.ID() != 1 {
		t.Fatalf("ids = %d, %d", p1.ID(), p2.ID())
	}
	if p1.Name() != "alpha" || p2.Name() != "beta" {
		t.Fatal("names wrong")
	}
	if len(k.Procs()) != 2 {
		t.Fatal("procs list")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroSleepIsNoop(t *testing.T) {
	k := NewKernel()
	k.Spawn("p", func(p *Proc) {
		p.Sleep(0)
		p.Sleep(-5)
		if p.Now() != 0 {
			t.Errorf("clock moved: %v", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
