package sim

// Direct-dispatch event loop.
//
// The serial engine used to bounce every event through a dedicated
// scheduler goroutine: a Proc that blocked handed control to the kernel
// goroutine (one channel rendezvous), which popped the next event and
// handed control to the next Proc (a second rendezvous) — two goroutine
// switches per dispatched event. Since exactly one goroutine may run at a
// time anyway, the scheduler loop does not need its own goroutine: it is
// a baton. Whichever Proc goroutine can no longer run executes the
// dispatch loop inline (serialNext) and transfers control directly to the
// Proc the next event wakes — one rendezvous — or, when the next event
// targets itself, simply keeps running with no channel operation at all
// (the Sleep/self-delivery fast path). Events that wake nobody (a
// delivery to a busy Proc) are absorbed inline without any switch.
//
// Run's goroutine only holds the baton at the very start and receives it
// back — via k.park — when the simulation stops: queue drained, MaxEvents
// exceeded, or a Proc panicked. The event order, statistics and observable
// behavior are exactly those of the classic central loop; only the number
// of goroutine switches changes. The lane engine applies the same pattern
// within each lane (see parallel.go).

// dispatchOutcome says where control went after a dispatch step.
type dispatchOutcome int

const (
	// dispatchSelf: the next event reactivated the calling Proc itself —
	// it may simply continue running (no channel operation happened).
	dispatchSelf dispatchOutcome = iota
	// dispatchHandoff: another Proc received the baton; the caller must
	// block (or, if finished, may exit).
	dispatchHandoff
	// dispatchStop: no further event can be dispatched here — the baton
	// must return to the engine goroutine.
	dispatchStop
)

// stopReason records why the baton came back to Run.
type stopReason int

const (
	stopDrained stopReason = iota // event queue empty
	stopRunaway                   // MaxEvents guard tripped
	stopPanic                     // a Proc panicked (k.failed)
)

// serialNext dispatches pending events on the calling goroutine until
// control must move: it returns dispatchSelf when an event reactivates
// self (the calling Proc), dispatchHandoff after waking a different Proc
// (which now owns the baton), or dispatchStop after recording the stop
// reason on the kernel. Pass self == nil when the caller cannot be
// reactivated (the engine goroutine, or a finished Proc).
func (k *Kernel) serialNext(self *Proc) dispatchOutcome {
	for {
		if k.sched.len() == 0 {
			k.stop = stopDrained
			return dispatchStop
		}
		if k.MaxEvents > 0 && k.processed >= k.MaxEvents {
			k.stop = stopRunaway
			k.stopAt = k.sched.peek().at
			return dispatchStop
		}
		if n := k.sched.len(); n > k.maxQueue {
			k.maxQueue = n
		}
		k.processed++
		e := k.sched.pop()
		p := e.proc
		at, kind, from, msg := e.at, e.kind, e.from, e.msg
		posted, cause := e.posted, e.cause
		k.pool.put(e)
		if p.state == stateDone {
			continue
		}
		switch kind {
		case evResume:
			k.resumes++
			if p.state == stateRunning {
				panic("sim: resume of running proc")
			}
			if at > p.now {
				if p.aslot != nil {
					p.chargeWait(at - p.now)
				}
				if k.rec != nil {
					p.resumeEdge(at, posted, p.now, from, cause)
				}
				p.now = at
			}
		case evDeliver:
			k.deliveries++
			p.mpush(Delivery{At: at, Posted: posted, From: from, Msg: msg})
			if p.state != stateBlockedRecv {
				continue
			}
		}
		p.state = stateRunning
		if p == self {
			return dispatchSelf
		}
		p.resume <- struct{}{}
		return dispatchHandoff
	}
}

// yield hands the baton onward from a Proc that has just blocked. The
// caller must have set its state (blocked/sleeping) beforehand; yield
// returns when an event reactivates the Proc.
func (p *Proc) yield() {
	if l := p.lane; l != nil {
		l.yieldFrom(p)
		return
	}
	switch p.k.serialNext(p) {
	case dispatchSelf:
		// Reactivated without leaving this goroutine.
	case dispatchHandoff:
		<-p.resume
	case dispatchStop:
		p.k.park <- struct{}{}
		<-p.resume // parked until the process exits (deadlocked Proc)
	}
}

// finish passes the baton onward from a Proc whose body has returned (or
// panicked). It runs on the Proc's goroutine as its final act.
func (p *Proc) finish() {
	if l := p.lane; l != nil {
		l.finishFrom(p)
		return
	}
	k := p.k
	if p.panicVal != nil {
		k.stop = stopPanic
		k.failed = p
		k.park <- struct{}{}
		return
	}
	if k.serialNext(nil) == dispatchStop {
		k.park <- struct{}{}
	}
}
