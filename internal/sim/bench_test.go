package sim_test

import (
	"testing"

	"presto/internal/kernelbench"
)

// BenchmarkKernel runs the shared kernel hot-path workloads (see
// internal/kernelbench). paperbench -kernel-bench records the same cases
// into BENCH_kernel.json.
func BenchmarkKernel(b *testing.B) {
	for _, c := range kernelbench.Cases() {
		b.Run(c.Name, c.Bench)
	}
}
