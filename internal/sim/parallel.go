package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Conservative parallel execution.
//
// RunParallel partitions Procs into lanes — groups that may share mutable
// simulated state and therefore must execute serially relative to each
// other (for the DSM machine: the compute and protocol Procs of one node).
// Cross-lane interaction happens only through timestamped messages whose
// delay is bounded below by the configured lookahead L (the interconnect's
// minimum cross-node latency), so an event at virtual time t can only
// schedule work on another lane at t+L or later.
//
// Each round the engine takes the earliest pending event time T and opens
// the window [T, T+L): every queued event inside the window is handed to
// its lane, and the active lanes execute concurrently on a worker pool.
// Nothing a lane does inside the window can affect another lane inside the
// same window, so each lane's mini-kernel processes exactly the events the
// serial engine would have given it, in the same relative order.
//
// Side effects are not applied during lane execution. Posted events are
// buffered per activation, OnCommit effects (trace records) are deferred,
// and barrier arrivals are logged. After all lanes join, a single-threaded
// commit merges the window's events in global (timestamp, sequence) order,
// assigns the real sequence numbers to buffered posts in exactly the order
// the serial engine would have (posts of an earlier activation precede
// posts of a later one; posts within an activation keep program order),
// applies barrier arrivals, runs deferred effects, and maintains the
// kernel's dispatch statistics.
//
// The commit needs no replay heap: each lane executed its window events in
// nondecreasing (timestamp, order-key) order, so its step log is already a
// sorted run and the global order is the k-way merge of the active lanes'
// runs. A merge head always has its real sequence number — established
// events were sequenced before the window opened, and a fresh post only
// reaches the head after its posting activation (an earlier step of the
// same lane) committed and sequenced it. Windows that activated a single
// lane skip the merge and walk that lane's run directly. The commit panics
// if any buffered event lands inside the window on a foreign lane (a
// lookahead violation) or if a lane's run is not exhausted when the merge
// ends (an ordering divergence). The result — final state, sequence
// numbers, statistics, traces — is byte-identical to the serial engine's.

// ParallelConfig configures Kernel.RunParallel.
type ParallelConfig struct {
	// Workers bounds how many lanes execute concurrently. Values <= 1
	// keep lane execution on the caller's goroutine — the full commit
	// machinery still runs, which makes Workers=1 useful for determinism
	// testing on small hosts.
	Workers int

	// Lookahead is the conservative window width: a strict lower bound on
	// the virtual-time delay of any cross-lane interaction (message or
	// barrier release). Must be positive unless PairLookahead refines it.
	// See network.Params.MinLatency.
	Lookahead Time

	// PairLookahead, when non-nil, replaces the scalar Lookahead with a
	// per-lane-pair matrix: an event executing on lane i at time t cannot
	// schedule work on lane j (i != j) before t + PairLookahead(i, j).
	// Lane j's causal horizon is then T + rowMin[j], rowMin[j] = min over
	// i of PairLookahead(i, j) — its earliest possible foreign influence.
	// The executed window is [T, T + min over j of rowMin[j]): committing
	// ragged per-lane windows would interleave OnCommit effects out of
	// global (timestamp, sequence) order, so the widest *uniform* window
	// the matrix allows is used. That is exactly where the matrix pays
	// off: lanes partitioned so that every pair crosses a slow link (e.g.
	// cluster nodes over a top-level network) get windows as wide as that
	// slow link, not the machine-wide minimum that intra-node traffic
	// would impose. The per-lane horizons are still enforced
	// individually: the commit panics on any cross-lane post inside the
	// *target* lane's horizon, a stricter detector than the executed
	// window. Every entry must be positive; the diagonal is never
	// consulted. A barrier releasing lanes must also respect the matrix
	// (fold the barrier cost into each entry: network.Params.PairMinLatency
	// does). Ignored when Lanes <= 1.
	PairLookahead func(i, j int) Time

	// Lanes is the number of lanes; LaneOf maps each Proc to a lane in
	// [0, Lanes). Procs that share mutable simulated state must map to
	// the same lane. When Lanes is 0, every Proc gets its own lane
	// (LaneOf is ignored), which is valid only for Procs that interact
	// purely through messages delayed by at least Lookahead.
	Lanes  int
	LaneOf func(p *Proc) int

	// NoSteal disables deterministic work stealing in the worker pool:
	// each worker executes only the lanes it owns (active-lane positions
	// congruent to its index). Results are byte-identical either way —
	// stealing only changes which OS thread executes a lane — so this
	// exists for differential testing and overhead measurement.
	NoSteal bool

	// MutateReverseRuns is a chaos mutation hook: reverse the initial
	// event order of every lane except lane 0 in each window, so lanes
	// execute their window events tail-first. This breaks the engine's
	// execution-order invariant on purpose; the differential oracles must
	// detect the divergence. Never set outside mutation testing.
	MutateReverseRuns bool
}

// laneStep records one event processed by a lane inside a window: the
// event itself, everything the activation posted (in program order, with
// provisional lane-local keys), deferred OnCommit effects, an optional
// barrier arrival, and whether the activation panicked.
type laneStep struct {
	ev        *event
	posts     []*event
	effects   []func()
	edges     []Edge // flight-recorder edges, flushed to the ring at commit
	barrier   *Barrier
	barrierAt Time
	panicked  any
	skipped   bool // event targeted an already-finished Proc
}

// lane executes a group of Procs serially within a window. Its fields are
// touched by the lane's worker goroutine during execution and by the
// engine goroutine during extraction/commit — never both at once; the
// round's fork/join provides the happens-before edges.
type lane struct {
	id        int
	park      chan struct{}
	pool      eventPool
	pending   []*event // sorted window events; consumed from phead
	phead     int
	steps     []laneStep
	cur       *laneStep
	next      int    // commit-merge cursor into steps
	postKey   uint64 // provisional order key for freshly posted events
	windowEnd Time
	active    bool
	stopped   bool     // a step panicked; stop executing this window
	inWin     int      // fresh posts that landed inside this window
	wex       *winExec // non-nil while this window runs serialized (baton crosses lanes)
	claim     uint32   // CAS-claimed by the worker that executes this window (pool mode)
}

// laneBefore orders a lane's window events: by timestamp, then established
// events (global seq already assigned) before fresh posts — a fresh post
// always receives a larger global seq than any event that existed when the
// window opened — then fresh posts by lane-local post order, which is the
// order the serial engine would have posted (and hence sequenced) them.
func laneBefore(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.fresh != b.fresh {
		return !a.fresh
	}
	return a.seq < b.seq
}

// laneAdd places an event into the lane's sorted pending run. Established
// events arrive from open() in global pop order — already sorted — and a
// fresh post usually belongs at the tail, so the common case is a plain
// append; anything else binary-inserts into the unconsumed suffix.
func (l *lane) laneAdd(e *event) {
	if n := len(l.pending); n == l.phead || laneBefore(l.pending[n-1], e) {
		l.pending = append(l.pending, e)
		return
	}
	lo, hi := l.phead, len(l.pending)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if laneBefore(l.pending[mid], e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	l.pending = append(l.pending, nil)
	copy(l.pending[lo+1:], l.pending[lo:])
	l.pending[lo] = e
}

// newStep appends (or recycles) a step record for event e.
func (l *lane) newStep(e *event) *laneStep {
	if len(l.steps) < cap(l.steps) {
		l.steps = l.steps[:len(l.steps)+1]
	} else {
		l.steps = append(l.steps, laneStep{})
	}
	st := &l.steps[len(l.steps)-1]
	st.ev = e
	st.posts = st.posts[:0]
	st.effects = st.effects[:0]
	st.edges = st.edges[:0]
	st.barrier = nil // barrierAt is only read under a non-nil barrier
	st.panicked = nil
	st.skipped = false
	return st
}

// postLocal buffers an event posted by this lane's running Proc. Events
// destined for this lane inside the current window also enter the lane's
// pending heap so they are processed before the window closes, exactly as
// the serial engine would.
func (l *lane) postLocal(at Time, kind eventKind, dst, from *Proc, msg any, posted Time, cause uint8) {
	e := l.pool.get()
	e.at, e.kind, e.proc, e.from, e.msg = at, kind, dst, from, msg
	e.posted, e.cause = posted, cause
	e.fresh = true
	e.seq = l.postKey
	l.postKey++
	l.cur.posts = append(l.cur.posts, e)
	if at < l.windowEnd && dst.lane == l {
		l.laneAdd(e)
		l.inWin++
	}
}

// run drains the lane's pending window events, mirroring the serial
// kernel's dispatch for each one and logging a step per event. Control
// transfers directly between the lane's Proc goroutines (the same baton
// pattern as the serial engine, dispatch.go): run hands off to the first
// Proc the window wakes and waits on l.park for the baton back when the
// lane's window work is done.
func (l *lane) run() {
	if l.laneNext(nil) == dispatchHandoff {
		<-l.park
	}
}

// laneNext dispatches the lane's pending window events on the calling
// goroutine until control must move (see serialNext for the contract).
func (l *lane) laneNext(self *Proc) dispatchOutcome {
	for {
		if l.stopped || l.phead == len(l.pending) {
			return dispatchStop
		}
		e := l.pending[l.phead]
		l.pending[l.phead] = nil
		l.phead++
		st := l.newStep(e)
		l.cur = st
		p := e.proc
		if p.state == stateDone {
			st.skipped = true
			continue
		}
		switch e.kind {
		case evResume:
			if p.state == stateRunning {
				panic("sim: resume of running proc")
			}
			if e.at > p.now {
				if p.aslot != nil {
					p.chargeWait(e.at - p.now)
				}
				if p.k.rec != nil {
					p.resumeEdge(e.at, e.posted, p.now, e.from, e.cause)
				}
				p.now = e.at
			}
		case evDeliver:
			p.mpush(Delivery{At: e.at, Posted: e.posted, From: e.from, Msg: e.msg})
			if p.state != stateBlockedRecv {
				continue
			}
		}
		p.state = stateRunning
		if p == self {
			return dispatchSelf
		}
		p.resume <- struct{}{}
		return dispatchHandoff
	}
}

// yieldFrom hands the lane baton onward from a Proc that just blocked.
func (l *lane) yieldFrom(p *Proc) {
	if x := l.wex; x != nil {
		x.yieldFrom(p)
		return
	}
	switch l.laneNext(p) {
	case dispatchSelf:
	case dispatchHandoff:
		<-p.resume
	case dispatchStop:
		l.park <- struct{}{}
		<-p.resume
	}
}

// finishFrom hands the lane baton onward from a Proc whose body returned
// or panicked; it runs as the goroutine's final act. A panic stops the
// lane's window immediately — the commit re-raises it at this step's
// position in global order.
func (l *lane) finishFrom(p *Proc) {
	if x := l.wex; x != nil {
		x.finishFrom(p)
		return
	}
	if p.panicVal != nil {
		l.cur.panicked = p.panicVal
		l.stopped = true
		l.park <- struct{}{}
		return
	}
	if l.laneNext(nil) == dispatchStop {
		l.park <- struct{}{}
	}
}

// winExec drives window execution when lanes run serialized — Workers <= 1
// (chain mode), or a single-active-lane window under a worker pool. The
// per-lane fork/join (worker handoff in, park rendezvous out) is pure
// overhead when only one lane runs at a time; instead the baton crosses
// lane boundaries directly: a Proc whose lane has drained continues
// dispatching the next active lane's events inline. A lane's pending set
// never refills after draining — in-window posts land only on the posting
// Proc's own lane — so one forward sweep suffices.
//
// In chain mode the baton crosses window boundaries too: the goroutine
// that drains the window's last lane commits the window, opens the next
// one, and keeps dispatching. The engine goroutine parks once at the start
// and receives the baton back (via k.park) only when the run stops —
// scheduler drained, commit error, or a re-raised Proc panic (recorded on
// err/panicVal). The commit still runs single-threaded in global order on
// whichever goroutine holds the baton, so its semantics are unchanged.
type winExec struct {
	k      *Kernel
	width  Time          // executed window width (scalar, or the matrix's min row)
	rowMin []Time        // per-lane causal horizons for violation checks (nil = scalar)
	chain  bool          // commit + reopen windows inline (serialized engine)
	eng    *EngineFlight // non-nil when the flight recorder is on

	active    []*lane
	order     []*lane // lane of each window event, in global (at, seq) pop order
	idx       int
	base      Time // window start T (earliest pending event when opened)
	windowEnd Time // executed window bound T + width
	pending   int  // window events handed to lanes, not yet committed
	reverse   bool // chaos mutation: execute lanes' window runs tail-first

	err      error
	panicVal any // a Proc-body panic re-raised by the commit
	fault    any // a commit-machinery panic (lookahead violation, divergence)
}

// laneEnd returns lane l's causal horizon for this window: T plus its row
// minimum of the pair-lookahead matrix, or the uniform scalar bound. A
// cross-lane post below this is a lookahead violation even when it lands
// past the (narrower) executed window. Valid for inactive lanes too — the
// commit checks posts against the *target* lane's horizon, whether or not
// that lane woke this round.
func (x *winExec) laneEnd(l *lane) Time {
	if x.rowMin == nil {
		return x.windowEnd
	}
	return x.base + x.rowMin[l.id]
}

// open claims the next conservative window [T, T+width): it checks the
// runaway guard, then moves every queued event inside the window onto its
// lane's pending heap. The scheduler must be non-empty.
func (x *winExec) open() error {
	k := x.k
	if k.MaxEvents > 0 && k.processed >= k.MaxEvents {
		return &RunawayError{Events: k.processed, At: k.sched.peek().at}
	}
	var t0 time.Time
	if x.eng != nil {
		t0 = time.Now()
	}
	x.base = k.sched.peek().at
	x.windowEnd = x.base + x.width
	x.active = x.active[:0]
	x.order = x.order[:0]
	x.idx = 0
	x.pending = 0
	for {
		e := k.sched.popBefore(x.windowEnd)
		if e == nil {
			break
		}
		l := e.proc.lane
		if !l.active {
			l.active = true
			l.windowEnd = x.windowEnd
			x.active = append(x.active, l)
		}
		l.pending = append(l.pending, e)
		x.order = append(x.order, l)
		x.pending++
	}
	if x.reverse {
		// Chaos mutation: flip every non-zero lane's initial run so the
		// window executes tail-first. Mailbox deliveries then arrive in
		// the wrong order — a divergence the differential oracles must
		// catch against the serial engine.
		for _, l := range x.active {
			if l.id == 0 {
				continue
			}
			for i, j := 0, len(l.pending)-1; i < j; i, j = i+1, j-1 {
				l.pending[i], l.pending[j] = l.pending[j], l.pending[i]
			}
		}
	}
	if x.eng != nil {
		x.eng.observe(len(x.active), x.pending)
		x.eng.OpenNS += time.Since(t0).Nanoseconds()
	}
	return nil
}

// close commits the drained window and resets its lanes for the next one.
// It reports whether the run may continue; on a commit error or a
// re-raised Proc panic the outcome is recorded on err/panicVal.
func (x *winExec) close() bool {
	var t0 time.Time
	if x.eng != nil {
		t0 = time.Now()
	}
	x.err, x.panicVal = x.k.commitWindow(x)
	if x.eng != nil {
		x.eng.CommitNS += time.Since(t0).Nanoseconds()
	}
	ok := x.err == nil && x.panicVal == nil
	for _, l := range x.active {
		if ok && l.next != len(l.steps) {
			panic(fmt.Sprintf(
				"sim: parallel commit diverged from lane %d execution: %d of %d steps committed",
				l.id, l.next, len(l.steps)))
		}
		l.active = false
		l.stopped = false
		l.pending = l.pending[:0]
		l.phead = 0
		l.steps = l.steps[:0]
		l.next = 0
		l.postKey = 0
		l.inWin = 0
		l.cur = nil
		l.claim = 0 // engine goroutine, after the pool joined: no CAS in flight
	}
	return ok
}

// next dispatches remaining window events across lanes on the calling
// goroutine; the contract matches serialNext. In chain mode a drained
// window is committed and the next one opened without releasing the baton.
func (x *winExec) next(self *Proc) dispatchOutcome {
	for {
		// Per-lane dispatch, inlined from laneNext: this runs once per
		// simulated event, and the extra call frames measurably slow the
		// serialized engine's hot loop.
		for x.idx < len(x.active) {
			l := x.active[x.idx]
			for !l.stopped && l.phead < len(l.pending) {
				e := l.pending[l.phead]
				l.pending[l.phead] = nil
				l.phead++
				st := l.newStep(e)
				l.cur = st
				p := e.proc
				if p.state == stateDone {
					st.skipped = true
					continue
				}
				switch e.kind {
				case evResume:
					if p.state == stateRunning {
						panic("sim: resume of running proc")
					}
					if e.at > p.now {
						if p.aslot != nil {
							p.chargeWait(e.at - p.now)
						}
						if p.k.rec != nil {
							p.resumeEdge(e.at, e.posted, p.now, e.from, e.cause)
						}
						p.now = e.at
					}
				case evDeliver:
					p.mpush(Delivery{At: e.at, Posted: e.posted, From: e.from, Msg: e.msg})
					if p.state != stateBlockedRecv {
						continue
					}
				}
				p.state = stateRunning
				if p == self {
					return dispatchSelf
				}
				p.resume <- struct{}{}
				return dispatchHandoff
			}
			x.idx++
		}
		if !x.chain || !x.advance(self) {
			return dispatchStop
		}
	}
}

// advance closes the drained window and opens the next one (chain mode).
// It reports whether dispatch may continue. The commit's own diagnostic
// panics — lookahead violation, ordering divergence — may fire on a Proc
// goroutine here; they are captured as a fault and re-raised by
// RunParallel on the engine goroutine, where callers can recover them.
func (x *winExec) advance(self *Proc) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			x.fault = r
			ok = false
		}
	}()
	if !x.close() {
		return false
	}
	if x.k.sched.len() == 0 {
		return false
	}
	if err := x.open(); err != nil {
		x.err = err
		return false
	}
	// Locality rotation: visit the committing Proc's own lane first. Lane
	// visit order within a window is semantically free — lanes are
	// independent and the commit order is fixed separately (x.order / the
	// merge) — and starting with self's lane lets its next event continue
	// on this goroutine (dispatchSelf), skipping a channel rendezvous at
	// the window boundary.
	if self != nil && self.lane.active {
		for j, c := range x.active {
			if c == self.lane {
				x.active[0], x.active[j] = c, x.active[0]
				break
			}
		}
	}
	return true
}

func (x *winExec) yieldFrom(p *Proc) {
	switch x.next(p) {
	case dispatchSelf:
	case dispatchHandoff:
		<-p.resume
	case dispatchStop:
		x.k.park <- struct{}{}
		<-p.resume
	}
}

func (x *winExec) finishFrom(p *Proc) {
	if p.panicVal != nil {
		// Record the panic and move on to the remaining lanes: their
		// effects stay buffered, and the commit re-raises the panic at
		// this step's position before reaching any of them.
		l := p.lane
		l.cur.panicked = p.panicVal
		l.stopped = true
	}
	if x.next(nil) == dispatchStop {
		x.k.park <- struct{}{}
	}
}

// run1 executes a single-active-lane window on the engine goroutine with
// the baton crossing directly (no worker handoff). Worker-pool mode only;
// the engine commits the window afterwards.
func (x *winExec) run1() {
	l := x.active[0]
	l.wex = x
	if x.next(nil) == dispatchHandoff {
		<-x.k.park
	}
	l.wex = nil
}

// RunParallel executes the simulation with the conservative parallel
// engine. It produces results byte-identical to Run: same final Proc
// clocks, same message sequence numbers, same KernelStats, and OnCommit
// effects in the same global order.
func (k *Kernel) RunParallel(cfg ParallelConfig) error {
	if k.finished {
		return fmt.Errorf("sim: kernel already ran")
	}
	if cfg.Lookahead <= 0 && cfg.PairLookahead == nil {
		panic("sim: RunParallel requires a positive lookahead")
	}
	nlanes, laneOf := cfg.Lanes, cfg.LaneOf
	if nlanes <= 0 {
		nlanes = len(k.procs)
		laneOf = func(p *Proc) int { return p.id }
	} else if laneOf == nil {
		panic("sim: ParallelConfig.Lanes set without LaneOf")
	}

	// Collapse the pair matrix into per-lane causal horizons: lane j
	// cannot be reached by any other lane before T + rowMin[j], rowMin[j]
	// = min over i != j of PairLookahead(i, j). The executed window width
	// is the narrowest horizon (committing ragged windows would reorder
	// effects; see PairLookahead), and each lane's own horizon backs the
	// commit's per-pair violation checks.
	var rowMin []Time
	width := cfg.Lookahead
	if cfg.PairLookahead != nil && nlanes > 1 {
		rowMin = make([]Time, nlanes)
		width = 0
		for j := 0; j < nlanes; j++ {
			min := Time(0)
			for i := 0; i < nlanes; i++ {
				if i == j {
					continue
				}
				v := cfg.PairLookahead(i, j)
				if v <= 0 {
					panic(fmt.Sprintf("sim: PairLookahead(%d,%d) = %v, must be positive", i, j, v))
				}
				if min == 0 || v < min {
					min = v
				}
			}
			rowMin[j] = min
			if width == 0 || min < width {
				width = min
			}
		}
	}
	if width <= 0 {
		panic("sim: RunParallel requires a positive lookahead")
	}
	k.started = true
	k.parallel = true
	lanes := make([]*lane, nlanes)
	for i := range lanes {
		lanes[i] = &lane{id: i, park: make(chan struct{}, 1)}
	}
	for _, p := range k.procs {
		li := laneOf(p)
		if li < 0 || li >= nlanes {
			panic(fmt.Sprintf("sim: LaneOf(%q) = %d out of range [0,%d)", p.name, li, nlanes))
		}
		p.lane = lanes[li]
		p.park = lanes[li].park
	}

	// Workers beyond GOMAXPROCS cannot add parallelism — they only add
	// scheduling overhead and window-broadcast rendezvous — so the pool
	// is clamped to the host's usable CPUs (results are
	// worker-independent).
	workers := cfg.Workers
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	if workers > nlanes {
		workers = nlanes
	}

	if k.rec != nil {
		k.eng = &EngineFlight{LaneHist: make([]int64, nlanes)}
	}
	wx := &winExec{k: k, width: width, rowMin: rowMin, eng: k.eng, reverse: cfg.MutateReverseRuns}

	// Pool mode: each window is broadcast to every worker. Worker w owns
	// the active-lane positions congruent to w mod workers and claims
	// each with a CAS before running it; once its own positions are
	// drained it scans the other workers' positions tail-first
	// (classic deque stealing) so a worker stuck behind one hot lane
	// does not idle the rest of the pool. Which worker executes a lane
	// is a race, but it is a benign one: every lane runs exactly once,
	// lane execution only touches lane-local state, and the commit
	// order is fixed by (timestamp, sequence) — results are
	// byte-identical no matter who ran what. Workers signal completion
	// per *window* (not per lane), so by the time the engine commits,
	// no worker is touching claim flags.
	var wg sync.WaitGroup
	var steals int64
	var pool []chan *winExec
	if workers > 1 {
		pool = make([]chan *winExec, workers)
		for i := range pool {
			pool[i] = make(chan *winExec, 1)
		}
		defer func() {
			for _, ch := range pool {
				close(ch)
			}
		}()
		for w := 0; w < workers; w++ {
			go func(w int) {
				for x := range pool[w] {
					n := len(x.active)
					for i := w; i < n; i += workers {
						l := x.active[i]
						if atomic.CompareAndSwapUint32(&l.claim, 0, 1) {
							l.run()
						}
					}
					if !cfg.NoSteal {
						for off := 1; off < workers; off++ {
							v := (w + off) % workers
							if v >= n {
								continue
							}
							for i := v + (n-1-v)/workers*workers; i >= v; i -= workers {
								l := x.active[i]
								if atomic.CompareAndSwapUint32(&l.claim, 0, 1) {
									atomic.AddInt64(&steals, 1)
									l.run()
								}
							}
						}
					}
					wg.Done()
				}
			}(w)
		}
	}

	if pool == nil {
		// Serialized engine: the baton chains across lanes and windows
		// alike, so the entire run costs the same goroutine switches as
		// the serial engine plus exactly one park rendezvous at the end.
		wx.chain = true
		for _, l := range lanes {
			l.wex = wx
		}
		if k.sched.len() > 0 {
			if err := wx.open(); err != nil {
				k.finished = true
				return err
			}
			if wx.next(nil) == dispatchHandoff {
				<-k.park
			}
			if wx.fault != nil {
				k.finished = true
				panic(wx.fault)
			}
			if wx.panicVal != nil {
				k.finished = true
				panic(wx.panicVal)
			}
			if wx.err != nil {
				k.finished = true
				return wx.err
			}
		}
		return k.conclude()
	}

	for k.sched.len() > 0 {
		if err := wx.open(); err != nil {
			k.finished = true
			return err
		}
		var t0 time.Time
		if k.eng != nil {
			t0 = time.Now()
		}
		if len(wx.active) == 1 {
			wx.run1()
		} else {
			wg.Add(workers)
			for _, ch := range pool {
				ch <- wx
			}
			wg.Wait()
		}
		if k.eng != nil {
			k.eng.ExecNS += time.Since(t0).Nanoseconds()
			k.eng.Steals = atomic.LoadInt64(&steals)
		}
		if !wx.close() {
			k.finished = true
			if wx.panicVal != nil {
				panic(wx.panicVal)
			}
			return wx.err
		}
	}
	if k.eng != nil {
		k.eng.Steals = atomic.LoadInt64(&steals)
	}
	return k.conclude()
}

// commitWindow replays the window's events in global (timestamp, sequence)
// order, assigning real sequence numbers to buffered posts, applying
// barrier arrivals, and running deferred effects. It mirrors the serial
// engine's statistics exactly: pending (the count of window events not yet
// committed) plus the global queue length is, at every step, the serial
// engine's event-queue length at the corresponding moment.
//
// When no lane posted an event inside the window — the dominant case, as
// cross-lane traffic lands at or past windowEnd by the lookahead bound —
// every committed event was already sequenced when open() popped it from
// the scheduler, so the global order is precisely the recorded pop order
// and the commit is a linear walk. Otherwise the active lanes' step logs
// are still sorted runs (established events in pop order, fresh posts
// sequenced in commit order before they can reach a log head), and the
// global order is their k-way merge via a min-scan.
func (k *Kernel) commitWindow(x *winExec) (error, any) {
	merge := false
	for _, l := range x.active {
		if l.inWin > 0 {
			merge = true
			break
		}
	}
	if merge && x.eng != nil {
		x.eng.MergedWindows++
	}
	pending := x.pending
	if !merge {
		// Specialized walk: every post routes out of the window (a fresh
		// in-window post would have set inWin), so pending only shrinks
		// and the scheduler length can be tracked without re-querying.
		qlen := k.sched.len()
		for _, l := range x.order {
			if l.next >= len(l.steps) {
				panic(fmt.Sprintf(
					"sim: parallel commit diverged from lane %d execution: step %d missing",
					l.id, l.next))
			}
			st := &l.steps[l.next]
			e := st.ev
			if k.MaxEvents > 0 && k.processed >= k.MaxEvents {
				return &RunawayError{Events: k.processed, At: e.at}, nil
			}
			if n := qlen + pending; n > k.maxQueue {
				k.maxQueue = n
			}
			k.processed++
			l.next++
			pending--
			if !st.skipped {
				if e.kind == evResume {
					k.resumes++
				} else {
					k.deliveries++
				}
			}
			for _, pe := range st.posts {
				pe.seq = k.seq
				k.seq++
				pe.fresh = false
				// A same-lane post past the window routes out by
				// construction (an in-window one would have forced the
				// merge path); a cross-lane post must clear the target
				// lane's causal horizon.
				if pl := pe.proc.lane; pl != l && pe.at < x.laneEnd(pl) {
					panic(fmt.Sprintf(
						"sim: lookahead violation: %q scheduled an event on lane %d at %v, inside that lane's horizon ending %v",
						e.proc.name, pl.id, pe.at, x.laneEnd(pl)))
				}
				k.sched.push(pe)
				qlen++
			}
			if k.rec != nil {
				for _, ed := range st.edges {
					k.rec.push(ed)
				}
			}
			for _, fn := range st.effects {
				fn()
			}
			if st.barrier != nil {
				k.applyArrival(st, x)
				qlen = k.sched.len() // arrival may post release events
			}
			if st.panicked != nil {
				return nil, st.panicked
			}
			l.pool.put(e)
		}
		return nil, nil
	}
	single := len(x.active) == 1
	for {
		var l *lane
		if single {
			l = x.active[0]
			if l.next >= len(l.steps) {
				return nil, nil
			}
		} else {
			for _, c := range x.active {
				if c.next >= len(c.steps) {
					continue
				}
				if l == nil {
					l = c
					continue
				}
				a, b := c.steps[c.next].ev, l.steps[l.next].ev
				if a.at < b.at || (a.at == b.at && a.seq < b.seq) {
					l = c
				}
			}
			if l == nil {
				return nil, nil
			}
		}
		if err, pv := k.commitStep(l, x, &pending); err != nil || pv != nil {
			return err, pv
		}
	}
}

// commitStep commits lane l's next logged step: statistics, post
// sequencing and routing, deferred effects, barrier arrival. It returns a
// non-nil error (runaway) or panic value when the run must stop at this
// step.
func (k *Kernel) commitStep(l *lane, x *winExec, pending *int) (error, any) {
	st := &l.steps[l.next]
	e := st.ev
	if k.MaxEvents > 0 && k.processed >= k.MaxEvents {
		return &RunawayError{Events: k.processed, At: e.at}, nil
	}
	if n := k.sched.len() + *pending; n > k.maxQueue {
		k.maxQueue = n
	}
	k.processed++
	l.next++
	*pending--
	if !st.skipped {
		if e.kind == evResume {
			k.resumes++
		} else {
			k.deliveries++
		}
	}
	for _, pe := range st.posts {
		pe.seq = k.seq
		k.seq++
		pe.fresh = false
		if pl := pe.proc.lane; pl == l {
			// Same lane: in-window posts were executed by the lane
			// (postLocal added them); later ones route out. The posting
			// lane needs no lookahead from itself.
			if pe.at < x.windowEnd {
				*pending++
			} else {
				k.sched.push(pe)
			}
		} else {
			if pe.at < x.laneEnd(pl) {
				panic(fmt.Sprintf(
					"sim: lookahead violation: %q scheduled an event on lane %d at %v, inside that lane's horizon ending %v",
					e.proc.name, pl.id, pe.at, x.laneEnd(pl)))
			}
			k.sched.push(pe)
		}
	}
	if k.rec != nil {
		for _, ed := range st.edges {
			k.rec.push(ed)
		}
	}
	for _, fn := range st.effects {
		fn()
	}
	if st.barrier != nil {
		k.applyArrival(st, x)
	}
	if st.panicked != nil {
		return nil, st.panicked
	}
	l.pool.put(e)
	return nil, nil
}

// applyArrival applies one logged barrier arrival in commit order. The
// arrival is always the final action of its activation (Wait blocks), so
// applying it after the activation's posts preserves the serial sequence.
func (k *Kernel) applyArrival(st *laneStep, x *winExec) {
	b := st.barrier
	p := st.ev.proc
	b.count++
	if st.barrierAt > b.maxAt {
		b.maxAt = st.barrierAt
	}
	if b.count < b.n {
		b.waiters = append(b.waiters, p)
		return
	}
	// Last arrival: release everyone (waiters in arrival order, then the
	// last arriver) in one batch, exactly as the serial Wait does. Each
	// released Proc's resume must land at or past its own lane's window
	// end — inside the window that lane already executed past the release
	// point, a divergence from serial order.
	release := b.maxAt + b.cost
	for _, w := range b.waiters {
		if end := x.laneEnd(w.lane); release < end {
			panic(fmt.Sprintf(
				"sim: lookahead violation: barrier release at %v inside lane %d's window ending %v (barrier cost < lookahead)",
				release, w.lane.id, end))
		}
	}
	if end := x.laneEnd(p.lane); release < end {
		panic(fmt.Sprintf(
			"sim: lookahead violation: barrier release at %v inside lane %d's window ending %v (barrier cost < lookahead)",
			release, p.lane.id, end))
	}
	k.releaseAll(b.waiters, p, release, b.maxAt)
	b.count = 0
	b.maxAt = 0
	b.waiters = b.waiters[:0]
	b.epoch++
}
