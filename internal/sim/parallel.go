package sim

import (
	"fmt"
	"sync"
)

// Conservative parallel execution.
//
// RunParallel partitions Procs into lanes — groups that may share mutable
// simulated state and therefore must execute serially relative to each
// other (for the DSM machine: the compute and protocol Procs of one node).
// Cross-lane interaction happens only through timestamped messages whose
// delay is bounded below by the configured lookahead L (the interconnect's
// minimum cross-node latency), so an event at virtual time t can only
// schedule work on another lane at t+L or later.
//
// Each round the engine takes the earliest pending event time T and opens
// the window [T, T+L): every queued event inside the window is handed to
// its lane, and the active lanes execute concurrently on a worker pool.
// Nothing a lane does inside the window can affect another lane inside the
// same window, so each lane's mini-kernel processes exactly the events the
// serial engine would have given it, in the same relative order.
//
// Side effects are not applied during lane execution. Posted events are
// buffered per activation, OnCommit effects (trace records) are deferred,
// and barrier arrivals are logged. After all lanes join, a single-threaded
// commit replay merges the window's events in global (timestamp, sequence)
// order, assigns the real sequence numbers to buffered posts in exactly
// the order the serial engine would have (posts of an earlier activation
// precede posts of a later one; posts within an activation keep program
// order), applies barrier arrivals, runs deferred effects, and maintains
// the kernel's dispatch statistics. The replay cross-checks every commit
// against the lane's own execution log and panics on divergence, and it
// panics if any buffered event lands inside the window on a foreign lane
// (a lookahead violation). The result — final state, sequence numbers,
// statistics, traces — is byte-identical to the serial engine's.

// ParallelConfig configures Kernel.RunParallel.
type ParallelConfig struct {
	// Workers bounds how many lanes execute concurrently. Values <= 1
	// keep lane execution on the caller's goroutine — the full commit
	// machinery still runs, which makes Workers=1 useful for determinism
	// testing on small hosts.
	Workers int

	// Lookahead is the conservative window width: a strict lower bound on
	// the virtual-time delay of any cross-lane interaction (message or
	// barrier release). Must be positive. See network.Params.MinLatency.
	Lookahead Time

	// Lanes is the number of lanes; LaneOf maps each Proc to a lane in
	// [0, Lanes). Procs that share mutable simulated state must map to
	// the same lane. When Lanes is 0, every Proc gets its own lane
	// (LaneOf is ignored), which is valid only for Procs that interact
	// purely through messages delayed by at least Lookahead.
	Lanes  int
	LaneOf func(p *Proc) int
}

// laneStep records one event processed by a lane inside a window: the
// event itself, everything the activation posted (in program order, with
// provisional lane-local keys), deferred OnCommit effects, an optional
// barrier arrival, and whether the activation panicked.
type laneStep struct {
	ev        *event
	posts     []*event
	effects   []func()
	barrier   *Barrier
	barrierAt Time
	panicked  any
	skipped   bool // event targeted an already-finished Proc
}

// lane executes a group of Procs serially within a window. Its fields are
// touched by the lane's worker goroutine during execution and by the
// engine goroutine during extraction/commit — never both at once; the
// round's fork/join provides the happens-before edges.
type lane struct {
	id        int
	park      chan struct{}
	pool      eventPool
	pending   laneHeap
	steps     []laneStep
	cur       *laneStep
	next      int    // commit-replay cursor into steps
	postKey   uint64 // provisional order key for freshly posted events
	windowEnd Time
	active    bool
}

// laneHeap orders a lane's window events: by timestamp, then established
// events (global seq already assigned) before fresh posts — a fresh post
// always receives a larger global seq than any event that existed when the
// window opened — then fresh posts by lane-local post order, which is the
// order the serial engine would have posted (and hence sequenced) them.
type laneHeap []*event

func (h laneHeap) less(i, j int) bool {
	a, b := h[i], h[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.fresh != b.fresh {
		return !a.fresh
	}
	return a.seq < b.seq
}

func (h *laneHeap) push(e *event) {
	q := append(*h, e)
	*h = q
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *laneHeap) pop() *event {
	q := *h
	n := len(q) - 1
	e := q[0]
	q[0] = q[n]
	q[n] = nil
	q = q[:n]
	*h = q
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && q.less(r, l) {
			c = r
		}
		if !q.less(c, i) {
			break
		}
		q[i], q[c] = q[c], q[i]
		i = c
	}
	return e
}

// newStep appends (or recycles) a step record for event e.
func (l *lane) newStep(e *event) *laneStep {
	if len(l.steps) < cap(l.steps) {
		l.steps = l.steps[:len(l.steps)+1]
	} else {
		l.steps = append(l.steps, laneStep{})
	}
	st := &l.steps[len(l.steps)-1]
	st.ev = e
	st.posts = st.posts[:0]
	st.effects = st.effects[:0]
	st.barrier = nil
	st.barrierAt = 0
	st.panicked = nil
	st.skipped = false
	return st
}

// postLocal buffers an event posted by this lane's running Proc. Events
// destined for this lane inside the current window also enter the lane's
// pending heap so they are processed before the window closes, exactly as
// the serial engine would.
func (l *lane) postLocal(at Time, kind eventKind, dst, from *Proc, msg any) {
	e := l.pool.get()
	e.at, e.kind, e.proc, e.from, e.msg = at, kind, dst, from, msg
	e.fresh = true
	e.seq = l.postKey
	l.postKey++
	l.cur.posts = append(l.cur.posts, e)
	if at < l.windowEnd && dst.lane == l {
		l.pending.push(e)
	}
}

// run drains the lane's pending window events, mirroring the serial
// kernel's dispatch for each one and logging a step per event.
func (l *lane) run() {
	for len(l.pending) > 0 {
		e := l.pending.pop()
		st := l.newStep(e)
		l.cur = st
		p := e.proc
		if p.state == stateDone {
			st.skipped = true
			continue
		}
		switch e.kind {
		case evResume:
			if p.state == stateRunning {
				panic("sim: resume of running proc")
			}
			if e.at > p.now {
				p.now = e.at
			}
			l.activate(p)
		case evDeliver:
			p.mpush(Delivery{At: e.at, From: e.from, Msg: e.msg})
			if p.state == stateBlockedRecv {
				l.activate(p)
			}
		}
		if st.panicked != nil {
			// Stop executing; the commit replay re-raises the panic at
			// this step's position in global order.
			return
		}
	}
}

func (l *lane) activate(p *Proc) {
	p.state = stateRunning
	p.resume <- struct{}{}
	<-l.park
	if p.panicVal != nil {
		l.cur.panicked = p.panicVal
	}
}

// RunParallel executes the simulation with the conservative parallel
// engine. It produces results byte-identical to Run: same final Proc
// clocks, same message sequence numbers, same KernelStats, and OnCommit
// effects in the same global order.
func (k *Kernel) RunParallel(cfg ParallelConfig) error {
	if k.finished {
		return fmt.Errorf("sim: kernel already ran")
	}
	if cfg.Lookahead <= 0 {
		panic("sim: RunParallel requires a positive lookahead")
	}
	nlanes, laneOf := cfg.Lanes, cfg.LaneOf
	if nlanes <= 0 {
		nlanes = len(k.procs)
		laneOf = func(p *Proc) int { return p.id }
	} else if laneOf == nil {
		panic("sim: ParallelConfig.Lanes set without LaneOf")
	}
	k.started = true
	k.parallel = true
	lanes := make([]*lane, nlanes)
	for i := range lanes {
		lanes[i] = &lane{id: i, park: make(chan struct{}, 1)}
	}
	for _, p := range k.procs {
		li := laneOf(p)
		if li < 0 || li >= nlanes {
			panic(fmt.Sprintf("sim: LaneOf(%q) = %d out of range [0,%d)", p.name, li, nlanes))
		}
		p.lane = lanes[li]
		p.park = lanes[li].park
	}

	workers := cfg.Workers
	if workers > nlanes {
		workers = nlanes
	}
	var work chan *lane
	var wg sync.WaitGroup
	if workers > 1 {
		work = make(chan *lane)
		defer close(work)
		for i := 0; i < workers; i++ {
			go func() {
				for l := range work {
					l.run()
					wg.Done()
				}
			}()
		}
	}

	var active []*lane
	var replay eventHeap
	for len(k.queue) > 0 {
		if k.MaxEvents > 0 && k.processed >= k.MaxEvents {
			k.finished = true
			return &RunawayError{Events: k.processed, At: k.queue.peek().at}
		}
		windowEnd := k.queue.peek().at + cfg.Lookahead
		active = active[:0]
		replay = replay[:0]
		for len(k.queue) > 0 && k.queue.peek().at < windowEnd {
			e := k.queue.pop()
			l := e.proc.lane
			if !l.active {
				l.active = true
				l.windowEnd = windowEnd
				active = append(active, l)
			}
			l.pending.push(e)
			replay.push(e)
		}

		switch {
		case len(active) == 1:
			active[0].run()
		case work == nil:
			for _, l := range active {
				l.run()
			}
		default:
			wg.Add(len(active))
			for _, l := range active {
				work <- l
			}
			wg.Wait()
		}

		err, panicVal := k.commitWindow(&replay, windowEnd)
		for _, l := range active {
			l.active = false
			l.steps = l.steps[:0]
			l.next = 0
			l.postKey = 0
			l.cur = nil
		}
		if panicVal != nil {
			k.finished = true
			panic(panicVal)
		}
		if err != nil {
			k.finished = true
			return err
		}
	}
	return k.conclude()
}

// commitWindow replays the window's events in global (timestamp, sequence)
// order, assigning real sequence numbers to buffered posts, applying
// barrier arrivals, and running deferred effects. It mirrors the serial
// engine's statistics exactly: the union of the replay heap and the global
// queue is, at every step, the serial engine's event queue at the
// corresponding moment.
func (k *Kernel) commitWindow(replay *eventHeap, windowEnd Time) (error, any) {
	for len(*replay) > 0 {
		if k.MaxEvents > 0 && k.processed >= k.MaxEvents {
			return &RunawayError{Events: k.processed, At: replay.peek().at}, nil
		}
		if n := len(k.queue) + len(*replay); n > k.maxQueue {
			k.maxQueue = n
		}
		k.processed++
		e := replay.pop()
		l := e.proc.lane
		if l.next >= len(l.steps) || l.steps[l.next].ev != e {
			panic(fmt.Sprintf("sim: parallel commit diverged from lane %d execution order (proc %q at %v)",
				l.id, e.proc.name, e.at))
		}
		st := &l.steps[l.next]
		l.next++
		if !st.skipped {
			if e.kind == evResume {
				k.resumes++
			} else {
				k.deliveries++
			}
		}
		for _, pe := range st.posts {
			pe.seq = k.seq
			k.seq++
			pe.fresh = false
			if pe.at < windowEnd {
				if pe.proc.lane != l {
					panic(fmt.Sprintf(
						"sim: lookahead violation: %q scheduled an event on lane %d at %v, inside the window ending %v",
						e.proc.name, pe.proc.lane.id, pe.at, windowEnd))
				}
				replay.push(pe)
			} else {
				k.queue.push(pe)
			}
		}
		for _, fn := range st.effects {
			fn()
		}
		if st.barrier != nil {
			k.applyArrival(st, windowEnd)
		}
		if st.panicked != nil {
			return nil, st.panicked
		}
		l.pool.put(e)
	}
	return nil, nil
}

// applyArrival applies one logged barrier arrival in commit order. The
// arrival is always the final action of its activation (Wait blocks), so
// applying it after the activation's posts preserves the serial sequence.
func (k *Kernel) applyArrival(st *laneStep, windowEnd Time) {
	b := st.barrier
	p := st.ev.proc
	b.count++
	if st.barrierAt > b.maxAt {
		b.maxAt = st.barrierAt
	}
	if b.count < b.n {
		b.waiters = append(b.waiters, p)
		return
	}
	// Last arrival: release everyone (waiters in arrival order, then the
	// last arriver), exactly as the serial Wait does.
	release := b.maxAt + b.cost
	if release < windowEnd {
		panic(fmt.Sprintf(
			"sim: lookahead violation: barrier release at %v inside the window ending %v (barrier cost < lookahead)",
			release, windowEnd))
	}
	for _, w := range b.waiters {
		e := k.pool.get()
		e.at, e.kind, e.proc = release, evResume, w
		k.post(e)
	}
	e := k.pool.get()
	e.at, e.kind, e.proc = release, evResume, p
	k.post(e)
	b.count = 0
	b.maxAt = 0
	b.waiters = b.waiters[:0]
	b.epoch++
}
