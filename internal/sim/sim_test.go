package sim

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingleProcAdvance(t *testing.T) {
	k := NewKernel()
	var end Time
	k.Spawn("p", func(p *Proc) {
		p.Advance(10 * Microsecond)
		p.Advance(5 * Microsecond)
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 15*Microsecond {
		t.Fatalf("end = %v, want 15us", end)
	}
}

func TestAdvanceIgnoresNegative(t *testing.T) {
	k := NewKernel()
	var end Time
	k.Spawn("p", func(p *Proc) {
		p.Advance(10)
		p.Advance(-100)
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 10 {
		t.Fatalf("end = %v, want 10", end)
	}
}

func TestSendRecvLatency(t *testing.T) {
	k := NewKernel()
	var gotAt, recvClock Time
	var payload any
	a := k.Spawn("a", func(p *Proc) {
		d := p.Recv()
		gotAt = d.At
		recvClock = p.Now()
		payload = d.Msg
	})
	k.Spawn("b", func(p *Proc) {
		p.Advance(3 * Microsecond)
		p.Send(a, "hello", 7*Microsecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if gotAt != 10*Microsecond || recvClock != 10*Microsecond {
		t.Fatalf("arrival = %v clock = %v, want 10us both", gotAt, recvClock)
	}
	if payload != "hello" {
		t.Fatalf("payload = %v", payload)
	}
}

func TestRecvDoesNotRewindClock(t *testing.T) {
	k := NewKernel()
	var clock Time
	a := k.Spawn("a", func(p *Proc) {
		p.Advance(100 * Microsecond) // busy past the arrival
		d := p.Recv()
		if d.At != 5*Microsecond {
			t.Errorf("arrival = %v, want 5us", d.At)
		}
		clock = p.Now()
	})
	k.Spawn("b", func(p *Proc) {
		p.Send(a, 1, 5*Microsecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if clock != 100*Microsecond {
		t.Fatalf("clock = %v, want 100us (no rewind)", clock)
	}
}

func TestMessagesDeliveredInTimestampOrder(t *testing.T) {
	k := NewKernel()
	var got []int
	a := k.Spawn("a", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, p.Recv().Msg.(int))
		}
	})
	k.Spawn("b", func(p *Proc) {
		p.Send(a, 3, 30*Microsecond)
		p.Send(a, 1, 10*Microsecond)
		p.Send(a, 2, 20*Microsecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestTieBreakBySequence(t *testing.T) {
	// Two messages with identical timestamps arrive in send order.
	k := NewKernel()
	var got []int
	a := k.Spawn("a", func(p *Proc) {
		got = append(got, p.Recv().Msg.(int), p.Recv().Msg.(int))
	})
	k.Spawn("b", func(p *Proc) {
		p.Send(a, 1, 5*Microsecond)
		p.Send(a, 2, 5*Microsecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v, want [1 2]", got)
	}
}

func TestTryRecv(t *testing.T) {
	k := NewKernel()
	a := k.Spawn("a", func(p *Proc) {
		if _, ok := p.TryRecv(); ok {
			t.Error("TryRecv on empty mailbox returned ok")
		}
		p.Recv()                 // block until the first message is there
		p.Sleep(5 * Microsecond) // let the second delivery event fire
		if p.Pending() != 1 {
			t.Errorf("pending = %d, want 1", p.Pending())
		}
		d, ok := p.TryRecv()
		if !ok || d.Msg.(int) != 2 {
			t.Errorf("TryRecv = %v %v", d, ok)
		}
	})
	k.Spawn("b", func(p *Proc) {
		p.Send(a, 1, Microsecond)
		p.Send(a, 2, 2*Microsecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierReleasesAtMaxPlusCost(t *testing.T) {
	k := NewKernel()
	b := k.NewBarrier(3, 10*Microsecond)
	ends := make([]Time, 3)
	waits := make([]Time, 3)
	for i := 0; i < 3; i++ {
		i := i
		k.Spawn("w", func(p *Proc) {
			p.Advance(Time(i+1) * 100 * Microsecond) // arrivals at 100,200,300us
			waits[i] = p.Wait(b)
			ends[i] = p.Now()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, e := range ends {
		if e != 310*Microsecond {
			t.Fatalf("proc %d released at %v, want 310us", i, e)
		}
	}
	if waits[0] != 210*Microsecond || waits[2] != 10*Microsecond {
		t.Fatalf("waits = %v", waits)
	}
}

func TestBarrierReusable(t *testing.T) {
	k := NewKernel()
	b := k.NewBarrier(2, 0)
	var seq []int
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn("w", func(p *Proc) {
			for round := 0; round < 3; round++ {
				p.Advance(Time(i+1) * Microsecond)
				p.Wait(b)
				if i == 0 {
					seq = append(seq, round)
				}
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seq) != 3 {
		t.Fatalf("rounds = %v", seq)
	}
}

func TestSleepOrdersWithMessages(t *testing.T) {
	k := NewKernel()
	var order []string
	a := k.Spawn("a", func(p *Proc) {
		p.Sleep(50 * Microsecond)
		order = append(order, "woke")
		d, ok := p.TryRecv()
		if !ok || d.Msg.(string) != "early" {
			t.Errorf("expected queued early message, got %v %v", d, ok)
		}
	})
	k.Spawn("b", func(p *Proc) {
		p.Send(a, "early", 10*Microsecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 1 {
		t.Fatalf("order = %v", order)
	}
}

func TestDaemonAllowsCompletion(t *testing.T) {
	k := NewKernel()
	d := k.Spawn("daemon", func(p *Proc) {
		for {
			p.Recv()
		}
	})
	d.SetDaemon(true)
	k.Spawn("client", func(p *Proc) {
		p.Send(d, 1, Microsecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	k := NewKernel()
	k.Spawn("stuck", func(p *Proc) {
		p.Recv() // nobody ever sends
	})
	err := k.Run()
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 1 {
		t.Fatalf("blocked = %v", de.Blocked)
	}
}

func TestPingPong(t *testing.T) {
	k := NewKernel()
	const rounds = 10
	const lat = 7 * Microsecond
	var aEnd Time
	var b *Proc
	k.Spawn("a", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			p.Send(b, i, lat)
			p.Recv()
		}
		aEnd = p.Now()
	})
	b = k.Spawn("b", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			d := p.Recv()
			p.Send(d.From, d.Msg, lat)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if want := Time(rounds) * 2 * lat; aEnd != want {
		t.Fatalf("aEnd = %v, want %v", aEnd, want)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic to propagate from Run")
		}
	}()
	k := NewKernel()
	k.Spawn("boom", func(p *Proc) {
		panic("boom")
	})
	k.Run()
}

func TestRunTwiceFails(t *testing.T) {
	k := NewKernel()
	k.Spawn("p", func(p *Proc) {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err == nil {
		t.Fatal("second Run should fail")
	}
}

// TestDeterminism runs a randomized message storm twice and requires
// identical completion times.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) Time {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		procs := make([]*Proc, 8)
		var last Time
		plan := make([][]int, 8) // delays per proc
		for i := range plan {
			for j := 0; j < 20; j++ {
				plan[i] = append(plan[i], rng.Intn(100)+1)
			}
		}
		done := k.NewBarrier(8, 0)
		for i := 0; i < 8; i++ {
			i := i
			procs[i] = k.Spawn("p", func(p *Proc) {
				for _, d := range plan[i] {
					p.Advance(Time(d) * Microsecond)
					p.Send(procs[(i+1)%8], d, Time(d)*Microsecond)
					for _, ok := p.TryRecv(); ok; _, ok = p.TryRecv() {
					}
				}
				p.Wait(done)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		if err := k.Run(); err != nil {
			// Trailing undelivered messages to finished procs are fine;
			// deadlock is not.
			t.Fatal(err)
		}
		return last
	}
	if a, b := run(42), run(42); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}

// Property: for any non-negative delays, a chain of sends accumulates
// exactly the sum of the delays.
func TestChainLatencyProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		delays := raw
		if len(delays) > 32 {
			delays = delays[:32]
		}
		if len(delays) == 0 {
			return true
		}
		k := NewKernel()
		procs := make([]*Proc, len(delays)+1)
		var end Time
		var want Time
		for _, d := range delays {
			want += Time(d)
		}
		for i := len(delays); i >= 0; i-- {
			i := i
			if i == len(delays) {
				procs[i] = k.Spawn("sink", func(p *Proc) {
					p.Recv()
					end = p.Now()
				})
				continue
			}
			procs[i] = k.Spawn("hop", func(p *Proc) {
				if i > 0 {
					p.Recv()
				}
				p.Send(procs[i+1], i, Time(delays[i]))
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		return end == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
