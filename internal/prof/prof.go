// Package prof wires the standard -cpuprofile/-memprofile flags into the
// repository's command-line tools.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling (when cpu is non-empty) and arranges a heap
// profile dump at stop time (when mem is non-empty). The returned stop
// function is idempotent; call it before every exit path that should
// flush profiles.
func Start(cpu, mem string) func() {
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpu != "" {
			pprof.StopCPUProfile()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			f.Close()
		}
	}
}
