// Package update implements a write-update protocol of the kind used by
// the hand-optimized SPMD Barnes baseline the paper compares against
// (Falsafi et al., "Application-Specific Protocols for User-Level Shared
// Memory"). Producers write their home-resident data without invalidating
// consumers' read-only copies, then push fresh data directly to the
// recorded consumers with an explicit application directive — one message
// per producer-consumer transfer instead of Stache's four (paper §3.2).
//
// As the paper notes, update protocols do not preserve sequential
// consistency and cannot be used in general: consumers may observe values
// one push behind. The hand-optimized applications tolerate that, which
// is exactly why they needed hand-written protocols.
package update

import (
	"fmt"

	"presto/internal/blockstate"
	"presto/internal/memory"
	"presto/internal/sim"
	"presto/internal/stache"
	"presto/internal/tempest"
)

// Update is the write-update protocol. Everything except the
// producer-consumer path inherits Stache behavior.
type Update struct {
	base *stache.Protocol

	// regions restricts the update fast path to specific memory regions
	// (nil = all). A hand-optimized application applies its custom
	// protocol only to its producer-consumer data (e.g. body positions
	// in SPMD Barnes) and leaves the rest under the default protocol.
	regions map[int]bool

	// Storage selects the block-state backend for the inherited Stache
	// state (dense by default). Set before Init.
	Storage blockstate.Kind
}

// New returns a write-update protocol instance applying to all regions.
func New() *Update { return &Update{base: stache.New()} }

// SetRegions restricts the update fast path to the given region IDs.
func (u *Update) SetRegions(ids ...int) {
	u.regions = make(map[int]bool, len(ids))
	for _, id := range ids {
		u.regions[id] = true
	}
}

// applies reports whether the update fast path covers block b.
func (u *Update) applies(b memory.Block) bool {
	return u.regions == nil || u.regions[b.RegionID()]
}

type nodeState struct {
	cache *stache.NodeState
}

// StacheState implements stache.StateHolder.
func (ns *nodeState) StacheState() *stache.NodeState { return ns.cache }

// Name implements tempest.Protocol.
func (u *Update) Name() string { return "update" }

// Init implements tempest.Protocol.
func (u *Update) Init(n *tempest.Node) {
	u.base.Storage = u.Storage
	n.ProtoState = &nodeState{cache: stache.NewNodeState(n.AS, u.Storage)}
}

// OnFault implements tempest.Protocol. A home-node write to a block with
// outstanding read-only copies upgrades locally without invalidating the
// sharers — they keep (stale) copies until the next push.
func (u *Update) OnFault(n *tempest.Node, b memory.Block, write bool) bool {
	if write && u.applies(b) && n.AS.HomeOf(b) == n.ID {
		e := n.Dir.Entry(b)
		if e.State == tempest.DirHome {
			n.Store.SetTag(b, memory.ReadWrite)
			return true
		}
	}
	return u.base.OnFault(n, b, write)
}

// Handle implements tempest.Protocol.
func (u *Update) Handle(n *tempest.Node, d sim.Delivery) {
	switch m := d.Msg.(type) {
	case tempest.MsgGetRO:
		if !u.applies(m.Block) {
			u.base.Handle(n, d)
			return
		}
		// Home-side read grant that registers the consumer but leaves the
		// home copy writable (no sequential consistency).
		e := n.Dir.Entry(m.Block)
		if e.State == tempest.DirHome {
			if m.Req == n.ID {
				n.WakeCompute(m.Block)
				return
			}
			e.Sharers.Add(m.Req)
			data := append([]byte(nil), n.Store.Data(m.Block)...)
			n.Post(n.ProtoProc, n.Peers[m.Req], tempest.MsgDataRO{Block: m.Block, Data: data})
			return
		}
		u.base.Handle(n, d)
	case tempest.MsgUpdate:
		u.installUpdate(n, m.Block, m.Data)
	case tempest.MsgBulk:
		// Pushed bulk updates.
		for _, e := range m.Entries {
			u.installUpdate(n, e.Block, e.Data)
		}
		tempest.PutBulkEntries(m.Entries)
	default:
		u.base.Handle(n, d)
	}
}

// installUpdate refreshes a consumer's read-only copy in place.
func (u *Update) installUpdate(n *tempest.Node, b memory.Block, data []byte) {
	if l := n.Store.Line(b); l != nil && l.Tag == memory.ReadWrite {
		panic(fmt.Sprintf("update: node %d: update for writable block %#x", n.ID, uint64(b)))
	}
	n.ProtoProc.Advance(n.InstallCost(len(data)))
	n.Store.Install(b, data, memory.ReadOnly)
	n.WakeCompute(b)
}

// Push multicasts the current contents of the given home-resident blocks
// to their recorded consumers, coalescing contiguous blocks per
// destination. It runs on the compute processor (an explicit directive in
// the hand-optimized application) and is fire-and-forget: the application
// synchronizes with a barrier afterwards.
func (u *Update) Push(n *tempest.Node, src *sim.Proc, blocks []memory.Block) {
	type pending struct {
		last    memory.Block
		entries []tempest.BulkEntry
	}
	bulks := make([]pending, len(n.Peers))
	flush := func(dst int) {
		pb := &bulks[dst]
		if len(pb.entries) == 0 {
			return
		}
		msg := tempest.MsgBulk{Entries: pb.entries}
		pb.entries = nil
		n.PostBulk(src, n.Peers[dst], msg)
		n.Stats.BulkMsgs++
	}
	for _, b := range blocks {
		if n.AS.HomeOf(b) != n.ID {
			panic(fmt.Sprintf("update: node %d pushing non-home block %#x", n.ID, uint64(b)))
		}
		e := n.Dir.Lookup(b)
		if e == nil || e.State != tempest.DirHome || e.Sharers.Empty() {
			continue
		}
		data := n.Store.Data(b)
		e.Sharers.ForEach(func(r int) {
			pb := &bulks[r]
			if len(pb.entries) > 0 && !n.AS.Contiguous(pb.last, b) {
				flush(r)
			}
			if pb.entries == nil {
				pb.entries = tempest.GetBulkEntries()
			}
			pb.entries = append(pb.entries, tempest.BulkEntry{Block: b, Data: append([]byte(nil), data...)})
			pb.last = b
			n.Stats.PresendsSent++
		})
	}
	for dst := range bulks {
		flush(dst)
	}
	// A push is one operation: drain the aggregation buffers before the
	// application reaches its synchronizing barrier.
	n.FlushAgg(src)
}
