package update_test

import (
	"testing"

	"presto/internal/memory"
	"presto/internal/rt"
	"presto/internal/update"
)

func TestLocalUpgradeKeepsSharers(t *testing.T) {
	m := rt.New(rt.Config{Nodes: 2, BlockSize: 32, Protocol: rt.ProtoUpdate})
	arr := m.NewArray1D("a", 2, 1, true)
	if err := m.Run(func(w *rt.Worker) {
		if w.ID == 1 {
			w.ReadF64(arr.At(0, 0)) // register as consumer
		}
		w.Barrier()
		if w.ID == 0 {
			w.WriteF64(arr.At(0, 0), 4) // local upgrade, no invalidation
		}
		w.Barrier()
	}); err != nil {
		t.Fatal(err)
	}
	home := m.Nodes[0]
	b := m.AS.BlockOf(arr.At(0, 0))
	e := home.Dir.Lookup(b)
	if e == nil || !e.Sharers.Has(1) {
		t.Fatalf("sharer lost: %+v", e)
	}
	if home.Store.Tag(b) != memory.ReadWrite {
		t.Fatalf("home tag = %v", home.Store.Tag(b))
	}
	// Consumer holds a stale but readable copy (update semantics).
	if m.Nodes[1].Store.Tag(b) != memory.ReadOnly {
		t.Fatalf("consumer tag = %v", m.Nodes[1].Store.Tag(b))
	}
	// No write faults at all: the home tag stays writable under the
	// update protocol (grants never downgrade it).
	if c := m.Counters(); c.WriteFaults != 0 || c.MsgsSent > 4 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestPushRefreshesAllConsumers(t *testing.T) {
	m := rt.New(rt.Config{Nodes: 4, BlockSize: 32, Protocol: rt.ProtoUpdate})
	arr := m.NewArray1D("a", 16, 1, false) // blocks 0..3, one per node
	reads := make([]float64, 4)
	if err := m.Run(func(w *rt.Worker) {
		if w.ID != 0 {
			w.ReadF64(arr.At(0, 0)) // three consumers
		}
		w.Barrier()
		if w.ID == 0 {
			w.WriteF64(arr.At(0, 0), 11)
			w.PushUpdates([]memory.Addr{arr.At(0, 0)})
		}
		w.Barrier()
		w.Compute(1e6) // 1ms: let pushes land
		if w.ID != 0 {
			reads[w.ID] = w.ReadF64(arr.At(0, 0))
		}
		w.Barrier()
	}); err != nil {
		t.Fatal(err)
	}
	for id := 1; id < 4; id++ {
		if reads[id] != 11 {
			t.Fatalf("consumer %d read %v", id, reads[id])
		}
	}
	if c := m.Counters(); c.PresendsSent != 3 {
		t.Fatalf("pushed %d copies, want 3", c.PresendsSent)
	}
}

func TestPushCoalescesContiguousBlocks(t *testing.T) {
	m := rt.New(rt.Config{Nodes: 2, BlockSize: 32, Protocol: rt.ProtoUpdate})
	arr := m.NewArray1D("a", 64, 1, false) // 8 blocks on node 0
	if err := m.Run(func(w *rt.Worker) {
		if w.ID == 1 {
			for i := 0; i < 32; i += 4 {
				w.ReadF64(arr.At(i, 0))
			}
		}
		w.Barrier()
		if w.ID == 0 {
			addrs := []memory.Addr{}
			for i := 0; i < 32; i++ {
				w.WriteF64(arr.At(i, 0), 1)
				addrs = append(addrs, arr.At(i, 0))
			}
			w.PushUpdates(addrs)
		}
		w.Barrier()
	}); err != nil {
		t.Fatal(err)
	}
	c := m.Counters()
	if c.PresendsSent != 8 {
		t.Fatalf("pushed blocks = %d, want 8", c.PresendsSent)
	}
	if c.BulkMsgs != 1 {
		t.Fatalf("bulk messages = %d, want 1 (contiguous run)", c.BulkMsgs)
	}
}

func TestSetRegionsRestrictsFastPath(t *testing.T) {
	m := rt.New(rt.Config{Nodes: 2, BlockSize: 32, Protocol: rt.ProtoUpdate})
	fast := m.NewArray1D("fast", 2, 1, true)
	slow := m.NewArray1D("slow", 2, 1, true)
	if u, ok := m.Proto.(*update.Update); ok {
		u.SetRegions(fast.R.ID)
	} else {
		t.Fatal("not an update machine")
	}
	if err := m.Run(func(w *rt.Worker) {
		if w.ID == 1 {
			w.ReadF64(fast.At(0, 0))
			w.ReadF64(slow.At(0, 0))
		}
		w.Barrier()
		if w.ID == 0 {
			w.WriteF64(fast.At(0, 0), 1) // update fast path: sharers kept
			w.WriteF64(slow.At(0, 0), 1) // stache path: invalidates
		}
		w.Barrier()
	}); err != nil {
		t.Fatal(err)
	}
	bFast := m.AS.BlockOf(fast.At(0, 0))
	bSlow := m.AS.BlockOf(slow.At(0, 0))
	if !m.Nodes[0].Dir.Lookup(bFast).Sharers.Has(1) {
		t.Fatal("fast region lost its sharer")
	}
	if e := m.Nodes[0].Dir.Lookup(bSlow); e.Sharers.Has(1) {
		t.Fatal("slow region kept its sharer (should invalidate)")
	}
	if m.Nodes[1].Store.Tag(bSlow) != memory.Invalid {
		t.Fatal("slow-region consumer copy not invalidated")
	}
}
