package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"presto/internal/apps/adaptive"
	"presto/internal/apps/barnes"
	"presto/internal/apps/water"
	"presto/internal/rt"
)

// phasesFor runs one small configuration of the named app and returns the
// machine's per-phase breakdown.
func phasesFor(t *testing.T, app string, proto rt.ProtocolKind) []rt.PhaseStat {
	t.Helper()
	mc := rt.Config{Nodes: 8, BlockSize: 32, Protocol: proto}
	var m *rt.Machine
	var err error
	switch app {
	case "adaptive":
		var r *adaptive.Result
		r, err = adaptive.Run(adaptive.Config{Machine: mc, Size: 32, Iters: 10, RefineEvery: 4})
		if err == nil {
			m = r.Machine
		}
	case "barnes":
		var r *barnes.Result
		r, err = barnes.Run(barnes.Config{Machine: mc, Bodies: 512, Iters: 2})
		if err == nil {
			m = r.Machine
		}
	case "water":
		var r *water.Result
		r, err = water.Run(water.Config{Machine: mc, Molecules: 64, Steps: 3})
		if err == nil {
			m = r.Machine
		}
	default:
		t.Fatalf("unknown app %q", app)
	}
	if err != nil {
		t.Fatalf("%s/%s: %v", app, proto, err)
	}
	return m.PhaseBreakdown()
}

// TestScheduleCoverageByProtocol is the observability acceptance check:
// the per-phase schedule coverage must be positive for the optimized
// (predictive) versions of all three paper applications, and exactly
// zero — no pre-sends received, none hit — for the unoptimized Stache
// runs.
func TestScheduleCoverageByProtocol(t *testing.T) {
	for _, app := range []string{"adaptive", "barnes", "water"} {
		t.Run(app, func(t *testing.T) {
			opt := phasesFor(t, app, rt.ProtoPredictive)
			anyCovered := false
			for _, p := range opt {
				if p.Coverage() > 0 {
					anyCovered = true
				}
				if p.PresendHits > p.PresendsIn {
					t.Fatalf("phase %s: hits %d > presends %d", p.Name, p.PresendHits, p.PresendsIn)
				}
			}
			if !anyCovered {
				t.Fatalf("predictive %s: no phase shows schedule coverage > 0: %+v", app, opt)
			}
			unopt := phasesFor(t, app, rt.ProtoStache)
			if len(unopt) == 0 {
				t.Fatalf("stache %s recorded no phases", app)
			}
			for _, p := range unopt {
				if p.PresendsIn != 0 || p.PresendHits != 0 || p.Coverage() != 0 {
					t.Fatalf("stache %s phase %s: presends %d hits %d coverage %v, want all zero",
						app, p.Name, p.PresendsIn, p.PresendHits, p.Coverage())
				}
			}
		})
	}
}

func TestRenderIncludesPhaseBreakdown(t *testing.T) {
	res := &Result{ID: "x", Title: "t"}
	res.Rows = append(res.Rows, Row{
		Label: "opt (32)", BlockSize: 32,
		B: rt.Breakdown{Elapsed: 1000, Compute: 500, RemoteWait: 300, Presend: 100, Sync: 100},
		Phases: []rt.PhaseStat{{
			Phase: 2, Name: "forces", Iters: 3,
			RemoteWaitNS: 1500, PresendNS: 700,
			ReadFaults: 4, PresendsIn: 12, PresendHits: 12,
		}},
	})
	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	for _, want := range []string{"per-phase breakdown", "forces", "hit-rate", "75.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	res := &Result{ID: "figure9", Title: "t", Notes: []string{"n"}}
	res.Rows = append(res.Rows, Row{
		Label: "v1", BlockSize: 64,
		Phases: []rt.PhaseStat{{Phase: 1, Name: "p", Iters: 2, PresendsIn: 3, PresendHits: 2}},
	})
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []*Result{res}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Experiments []struct {
			ID   string `json:"id"`
			Rows []struct {
				Label      string `json:"label"`
				BlockBytes int    `json:"block_bytes"`
				Phases     []struct {
					Name        string `json:"name"`
					PresendsIn  int64  `json:"presends_in"`
					PresendHits int64  `json:"presend_hits"`
				} `json:"phases"`
			} `json:"rows"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.Experiments) != 1 || doc.Experiments[0].ID != "figure9" {
		t.Fatalf("doc = %+v", doc)
	}
	r := doc.Experiments[0].Rows[0]
	if r.Label != "v1" || r.BlockBytes != 64 || len(r.Phases) != 1 || r.Phases[0].PresendHits != 2 {
		t.Fatalf("row = %+v", r)
	}
}
