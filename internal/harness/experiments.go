package harness

import (
	"fmt"
	"os"

	"presto/internal/apps/adaptive"
	"presto/internal/apps/barnes"
	"presto/internal/apps/unstructured"
	"presto/internal/apps/water"
	"presto/internal/compiler"
	"presto/internal/lang"
	"presto/internal/network"
	"presto/internal/rt"
)

// adaptiveCfg builds one Adaptive configuration.
func adaptiveCfg(o Options, proto rt.ProtocolKind, bs int) adaptive.Config {
	c := adaptive.Config{Machine: o.machine(rt.Config{Nodes: 32, BlockSize: bs, Protocol: proto})}
	if o.Scale == Quick {
		c.Machine.Nodes = 16
		c.Size = 64
		c.Iters = 30
		c.RefineEvery = 4
	}
	return c
}

func barnesCfg(o Options, proto rt.ProtocolKind, bs int, spmd bool) barnes.Config {
	c := barnes.Config{Machine: o.machine(rt.Config{Nodes: 32, BlockSize: bs, Protocol: proto}), SPMD: spmd}
	if o.Scale == Quick {
		c.Machine.Nodes = 16
		c.Bodies = 2048
	}
	return c
}

func waterCfg(o Options, proto rt.ProtocolKind, bs int, splash bool) water.Config {
	c := water.Config{Machine: o.machine(rt.Config{Nodes: 32, BlockSize: bs, Protocol: proto}), Splash: splash}
	if o.Scale == Quick {
		c.Machine.Nodes = 16
		c.Molecules = 256
		c.Steps = 8
	}
	return c
}

func init() {
	Register(Experiment{
		ID:    "table1",
		Title: "Benchmark applications (Table 1)",
		Paper: "Adaptive: 128x128 mesh, 100 iterations; Barnes: 16384 bodies, 3 iterations; Water: 512 molecules, 20 iterations.",
		Run:   runTable1,
	})
	Register(Experiment{
		ID:    "figure4",
		Title: "Compiler analysis of the Barnes main loop (Figure 4)",
		Paper: "Access summaries annotate the CFG; directives cover 4 parallel phases; the home-only center-of-mass loop gets a single hoisted directive.",
		Run:   runFigure4,
	})
	Register(Experiment{
		ID:    "figure5",
		Title: "Adaptive execution time, 4 versions (Figure 5)",
		Paper: "Pre-sending cuts shared-data wait and synchronization; best optimized is ~1.56x the best unoptimized; larger blocks help the unoptimized version but make pre-send less effective.",
		Run:   runFigure5,
	})
	Register(Experiment{
		ID:    "figure6",
		Title: "Barnes execution time, 5 versions (Figure 6)",
		Paper: "Optimization cuts remote wait at 32B blocks, but Barnes's spatial locality lets the unoptimized 1024B version run marginally faster than the optimized versions; both 1024B versions are about as fast as the hand-optimized SPMD.",
		Run:   runFigure6,
	})
	Register(Experiment{
		ID:    "figure7",
		Title: "Water execution time, 3 versions (Figure 7)",
		Paper: "Optimization reduces shared-memory wait but overall improvement is small (~1.05x); the optimized version is ~1.2x faster than the Splash shared-memory version.",
		Run:   runFigure7,
	})
	Register(Experiment{
		ID:    "inspector",
		Title: "Predictive protocol vs Inspector-Executor (related work, §2)",
		Paper: "The predictive approach needs no inspector/executor code and its incremental schedules handle adaptive applications; CHAOS-style inspection must re-run whenever the indirection changes.",
		Run:   runInspector,
	})
	Register(Experiment{
		ID:    "sweep",
		Title: "Block-size sensitivity (discussion, §5.4)",
		Paper: "The predictive protocol works best at small blocks; unoptimized versions exploit large blocks.",
		Run:   runSweep,
	})
	Register(Experiment{
		ID:    "platforms",
		Title: "Platform tradeoff: CM-5 vs network of workstations vs hardware DSM (§5.4)",
		Paper: "The technique is beneficial on machines with significant remote access latency (Blizzard/CM-5, networks of workstations); the tradeoff is different for hardware-assisted DSMs with smaller latencies.",
		Run:   runPlatforms,
	})
	Register(Experiment{
		ID:    "ablate-coalesce",
		Title: "Ablation: pre-send bulk coalescing (§3.4)",
		Paper: "Coalescing neighboring blocks amortizes message startup costs over large messages.",
		Run:   runAblateCoalesce,
	})
	Register(Experiment{
		ID:    "ablate-conflicts",
		Title: "Extension: conflict-block anticipation (§3.4 future work)",
		Paper: "Conflict blocks are not pre-sent; anticipating their first stable state is the paper's suggested extension.",
		Run:   runAblateConflicts,
	})
	Register(Experiment{
		ID:    "ablate-flush",
		Title: "Extension: schedule flushing under deletions (§3.3)",
		Paper: "Incremental schedules do not track deletions; patterns with many deletions need periodic schedule rebuilds.",
		Run:   runAblateFlush,
	})
}

func runTable1(o Options) (*Result, error) {
	res := &Result{ID: "table1", Title: "Benchmark applications"}
	type row struct{ name, desc, data string }
	rows := []row{
		{"Adaptive", "Structured adaptive mesh", "128x128 mesh, 100 iterations"},
		{"Barnes", "Gravitational N-body simulation", "16384 bodies, 3 iterations"},
		{"Water", "Molecular dynamics", "512 molecules, 20 iterations"},
	}
	for _, r := range rows {
		res.AddNote(fmt.Sprintf("%-9s %-34s %s", r.name, r.desc, r.data))
	}
	if o.Scale == Quick {
		res.AddNote("(quick scale runs 64x64/30, 2048 bodies, 256 molecules on 16 nodes)")
	}
	return res, nil
}

func runFigure4(Options) (*Result, error) {
	src, err := os.ReadFile(findTestdata("barnes.cstar"))
	if err != nil {
		return nil, err
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		return nil, err
	}
	a, err := compiler.Analyze(prog)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "figure4", Title: "Compiler analysis of Barnes"}
	res.AddNote(a.Report())
	return res, nil
}

// findTestdata locates the repository testdata directory from either the
// repo root or a package directory.
func findTestdata(name string) string {
	for _, p := range []string{"testdata/" + name, "../../testdata/" + name, "../testdata/" + name} {
		if _, err := os.Stat(p); err == nil {
			return p
		}
	}
	return "testdata/" + name
}

func runFigure5(o Options) (*Result, error) {
	res := &Result{ID: "figure5", Title: "Adaptive, 4 versions (32 processors)"}
	versions := []struct {
		label string
		proto rt.ProtocolKind
		bs    int
	}{
		{"C** unopt (32)", rt.ProtoStache, 32},
		{"C** opt (32)", rt.ProtoPredictive, 32},
		{"C** unopt (256)", rt.ProtoStache, 256},
		{"C** opt (256)", rt.ProtoPredictive, 256},
	}
	pc := newPredictor()
	for _, v := range versions {
		var row Row
		if o.Predict {
			cal, err := pc.adaptive(o, v.proto)
			if err != nil {
				return nil, err
			}
			if row, err = predictedRow(cal, v.label, v.bs); err != nil {
				return nil, err
			}
		} else {
			r, err := adaptive.Run(adaptiveCfg(o, v.proto, v.bs))
			if err != nil {
				return nil, fmt.Errorf("%s: %w", v.label, err)
			}
			row = Row{Label: v.label, BlockSize: v.bs, B: r.Breakdown, C: r.Counters, Phases: r.Machine.PhaseBreakdown()}
			if err := o.attachProfile(&row, r.Machine, "adaptive"); err != nil {
				return nil, err
			}
		}
		res.Rows = append(res.Rows, row)
	}
	if o.Predict {
		predictNote(res, len(pc.cals))
	}
	bestOpt, _ := res.Best("C** opt")
	bestUnopt, _ := res.Best("C** unopt")
	res.AddNote("best optimized (%s) is %.2fx faster than best unoptimized (%s); paper: 1.56x",
		bestOpt.Label, ratio(bestUnopt.Total(), bestOpt.Total()), bestUnopt.Label)
	o32, _ := res.Find("C** opt (32)")
	u32, _ := res.Find("C** unopt (32)")
	res.AddNote("at 32B blocks pre-send removes %.0f%% of remote-data wait and cuts synchronization from %v to %v",
		100*(1-ratio(o32.B.RemoteWait, u32.B.RemoteWait)), u32.B.Sync, o32.B.Sync)
	return res, nil
}

func runFigure6(o Options) (*Result, error) {
	res := &Result{ID: "figure6", Title: "Barnes, 5 versions (32 processors)"}
	versions := []struct {
		label string
		proto rt.ProtocolKind
		bs    int
		spmd  bool
	}{
		{"C** unopt (32)", rt.ProtoStache, 32, false},
		{"C** opt (32)", rt.ProtoPredictive, 32, false},
		{"C** unopt (1024)", rt.ProtoStache, 1024, false},
		{"C** opt (1024)", rt.ProtoPredictive, 1024, false},
		{"SPMD write-update (1024)", rt.ProtoUpdate, 1024, true},
	}
	pc := newPredictor()
	for _, v := range versions {
		var row Row
		if o.Predict {
			cal, err := pc.barnes(o, v.proto, v.spmd)
			if err != nil {
				return nil, err
			}
			if row, err = predictedRow(cal, v.label, v.bs); err != nil {
				return nil, err
			}
		} else {
			r, err := barnes.Run(barnesCfg(o, v.proto, v.bs, v.spmd))
			if err != nil {
				return nil, fmt.Errorf("%s: %w", v.label, err)
			}
			row = Row{Label: v.label, BlockSize: v.bs, B: r.Breakdown, C: r.Counters, Phases: r.Machine.PhaseBreakdown()}
			if err := o.attachProfile(&row, r.Machine, "barnes"); err != nil {
				return nil, err
			}
		}
		res.Rows = append(res.Rows, row)
	}
	if o.Predict {
		predictNote(res, len(pc.cals))
	}
	o32, _ := res.Find("C** opt (32)")
	u32, _ := res.Find("C** unopt (32)")
	u1024, _ := res.Find("C** unopt (1024)")
	res.AddNote("at 32B blocks pre-send removes %.0f%% of remote-data wait",
		100*(1-ratio(o32.B.RemoteWait, u32.B.RemoteWait)))
	res.AddNote("spatial locality: unopt (1024) runs %.2fx faster than opt (32) — the paper's crossover",
		ratio(o32.Total(), u1024.Total()))
	res.AddNote("the two 1024B versions and the hand-optimized SPMD are comparable (within a few percent)")
	return res, nil
}

func runFigure7(o Options) (*Result, error) {
	res := &Result{ID: "figure7", Title: "Water, 3 versions (32 processors)"}
	// The paper picks each version's best block size; sweep and keep the
	// best per version, labeling it like the paper's "(256)" annotations.
	type version struct {
		prefix string
		proto  rt.ProtocolKind
		splash bool
	}
	versions := []version{
		{"C** opt", rt.ProtoPredictive, false},
		{"C** unopt", rt.ProtoStache, false},
		{"Splash", rt.ProtoStache, true},
	}
	pc := newPredictor()
	for _, v := range versions {
		var best *Row
		for _, bs := range []int{32, 128, 256} {
			var row Row
			if o.Predict {
				cal, err := pc.water(o, v.proto, v.splash)
				if err != nil {
					return nil, err
				}
				if row, err = predictedRow(cal, fmt.Sprintf("%s (%d)", v.prefix, bs), bs); err != nil {
					return nil, err
				}
			} else {
				r, err := water.Run(waterCfg(o, v.proto, bs, v.splash))
				if err != nil {
					return nil, fmt.Errorf("%s(%d): %w", v.prefix, bs, err)
				}
				row = Row{Label: fmt.Sprintf("%s (%d)", v.prefix, bs), BlockSize: bs, B: r.Breakdown, C: r.Counters, Phases: r.Machine.PhaseBreakdown()}
				if err := o.attachProfile(&row, r.Machine, "water"); err != nil {
					return nil, err
				}
			}
			if best == nil || row.Total() < best.Total() {
				b := row
				best = &b
			}
		}
		res.Rows = append(res.Rows, *best)
	}
	if o.Predict {
		predictNote(res, len(pc.cals))
	}
	opt, _ := res.Best("C** opt")
	unopt, _ := res.Best("C** unopt")
	splash, _ := res.Best("Splash")
	res.AddNote("optimized is %.2fx faster than unoptimized (paper: 1.05x) and %.2fx faster than Splash (paper: 1.2x)",
		ratio(unopt.Total(), opt.Total()), ratio(splash.Total(), opt.Total()))
	return res, nil
}

// runInspector compares the three strategies on the Figure-3-style
// unstructured kernel, on a static mesh and on an adapting mesh.
func runInspector(o Options) (*Result, error) {
	res := &Result{ID: "inspector", Title: "Unstructured bipartite mesh: plain vs predictive vs inspector-executor"}
	base := unstructured.Config{
		Machine: o.machine(rt.Config{Nodes: 32, BlockSize: 32}),
		Primal:  4096, Dual: 4096, Edges: 6, Iters: 24,
	}
	if o.Scale == Quick {
		base.Machine.Nodes = 16
		base.Primal, base.Dual = 1024, 1024
		base.Iters = 12
	}
	for _, mesh := range []struct {
		tag   string
		adapt int
	}{{"static", 0}, {"adaptive", 3}} {
		for _, strat := range []unstructured.Strategy{unstructured.Plain, unstructured.Predictive, unstructured.InspectorExecutor} {
			cfg := base
			cfg.Strategy = strat
			cfg.AdaptEvery = mesh.adapt
			r, err := unstructured.Run(cfg)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Row{
				Label:     fmt.Sprintf("%s mesh, %s", mesh.tag, strat),
				BlockSize: base.Machine.BlockSize,
				B:         r.Breakdown, C: r.Counters,
				Phases: r.Machine.PhaseBreakdown(),
			})
		}
	}
	ps, _ := res.Find("static mesh, predictive")
	is, _ := res.Find("static mesh, inspector")
	pa, _ := res.Find("adaptive mesh, predictive")
	ia, _ := res.Find("adaptive mesh, inspector")
	res.AddNote("static mesh: inspector-executor/predictive total ratio %.2f — comparable, but the predictive version needs no inspector/executor code (the paper's first §2 distinction)",
		ratio(is.Total(), ps.Total()))
	res.AddNote("adaptive mesh: inspector re-analysis adds %v of compute per run (vs %v static); the predictive protocol's incremental schedules absorb the same churn in-protocol (ratio %.2f)",
		ia.B.Compute-is.B.Compute, is.B.Compute, ratio(ia.Total(), pa.Total()))
	return res, nil
}

func runSweep(o Options) (*Result, error) {
	res := &Result{ID: "sweep", Title: "Block-size sweep (Water), unopt vs opt"}
	pc := newPredictor()
	for _, bs := range []int{32, 64, 128, 256, 1024} {
		for _, v := range []struct {
			label string
			proto rt.ProtocolKind
		}{{"unopt", rt.ProtoStache}, {"opt", rt.ProtoPredictive}} {
			label := fmt.Sprintf("water %s (%d)", v.label, bs)
			if o.Predict {
				cal, err := pc.water(o, v.proto, false)
				if err != nil {
					return nil, err
				}
				row, err := predictedRow(cal, label, bs)
				if err != nil {
					return nil, err
				}
				res.Rows = append(res.Rows, row)
				continue
			}
			r, err := water.Run(waterCfg(o, v.proto, bs, false))
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Row{
				Label: label, BlockSize: bs,
				B: r.Breakdown, C: r.Counters, Phases: r.Machine.PhaseBreakdown(),
			})
		}
	}
	if o.Predict {
		predictNote(res, len(pc.cals))
	}
	res.AddNote("pre-send benefit is largest at the smallest blocks; large blocks close the gap by exploiting spatial locality (paper §5.4)")
	return res, nil
}

// runPlatforms runs Water opt/unopt under three interconnect models and
// reports how the predictive protocol's benefit scales with remote
// latency.
func runPlatforms(o Options) (*Result, error) {
	res := &Result{ID: "platforms", Title: "Water opt vs unopt across platforms (32B blocks)"}
	platforms := []struct {
		tag string
		net func() *network.Params
	}{
		{"NOW", network.NOW},
		{"CM-5", network.CM5},
		{"hw-DSM", network.HardwareDSM},
	}
	type pair struct{ unopt, opt Row }
	pairs := map[string]pair{}
	for _, pl := range platforms {
		var pr pair
		for _, v := range []struct {
			label string
			proto rt.ProtocolKind
		}{{"unopt", rt.ProtoStache}, {"opt", rt.ProtoPredictive}} {
			cfg := waterCfg(o, v.proto, 32, false)
			cfg.Machine.Net = pl.net()
			r, err := water.Run(cfg)
			if err != nil {
				return nil, err
			}
			row := Row{Label: fmt.Sprintf("%s %s", pl.tag, v.label), BlockSize: 32, B: r.Breakdown, C: r.Counters, Phases: r.Machine.PhaseBreakdown()}
			res.Rows = append(res.Rows, row)
			if v.label == "unopt" {
				pr.unopt = row
			} else {
				pr.opt = row
			}
		}
		pairs[pl.tag] = pr
	}
	for _, pl := range platforms {
		pr := pairs[pl.tag]
		res.AddNote("%-6s speedup %.2fx (remote wait %v -> %v)", pl.tag,
			ratio(pr.unopt.Total(), pr.opt.Total()), pr.unopt.B.RemoteWait, pr.opt.B.RemoteWait)
	}
	return res, nil
}

func runAblateCoalesce(o Options) (*Result, error) {
	res := &Result{ID: "ablate-coalesce", Title: "Pre-send coalescing on/off (Adaptive, 32B)"}
	for _, v := range []struct {
		label string
		off   bool
	}{{"coalescing on", false}, {"coalescing off", true}} {
		cfg := adaptiveCfg(o, rt.ProtoPredictive, 32)
		cfg.Machine.NoCoalesce = v.off
		r, err := adaptive.Run(cfg)
		if err != nil {
			return nil, err
		}
		row := Row{Label: v.label, BlockSize: 32, B: r.Breakdown, C: r.Counters, Phases: r.Machine.PhaseBreakdown()}
		res.Rows = append(res.Rows, row)
	}
	on := res.Rows[0]
	off := res.Rows[1]
	res.AddNote("coalescing sends %d bulk messages and cuts pre-send time %.2fx (%v -> %v)",
		on.C.BulkMsgs, ratio(off.B.Presend, on.B.Presend), off.B.Presend, on.B.Presend)
	return res, nil
}

// runAblateConflicts uses a synthetic false-sharing kernel (one node
// repeatedly writes the left half of each block while another reads the
// right half in the same phase — the paper's conflict scenario, §3.3).
func runAblateConflicts(o Options) (*Result, error) {
	res := &Result{ID: "ablate-conflicts", Title: "Conflict anticipation off/on (false-sharing kernel, 64B)"}
	iters := 16
	blocks := 64
	if o.Scale == Quick {
		iters, blocks = 10, 32
	}
	run := func(label string, anticipate bool) error {
		m := rt.New(o.machine(rt.Config{Nodes: 2, BlockSize: 64, Protocol: rt.ProtoPredictive, AnticipateConflicts: anticipate}))
		// 8 elements per 64B block; all blocks homed on node 0.
		arr := m.NewArray1D("x", blocks*8, 1, false)
		err := m.Run(func(w *rt.Worker) {
			for it := 0; it < iters; it++ {
				w.Phase(1, func() {
					for b := 0; b < blocks/2; b++ {
						if w.ID == 0 {
							w.WriteF64(arr.At(b*8, 0), float64(it)) // left half
						} else {
							w.ReadF64(arr.At(b*8+4, 0)) // right half: false sharing
						}
					}
				})
			}
		})
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, Row{Label: label, BlockSize: 64, B: m.Breakdown(), C: m.Counters(), Phases: m.PhaseBreakdown()})
		return nil
	}
	if err := run("conflicts not pre-sent (paper)", false); err != nil {
		return nil, err
	}
	if err := run("anticipate first stable state", true); err != nil {
		return nil, err
	}
	res.AddNote("conflict entries recorded: %d; anticipation changes faults %d -> %d",
		res.Rows[0].C.Conflicts,
		res.Rows[0].C.ReadFaults+res.Rows[0].C.WriteFaults,
		res.Rows[1].C.ReadFaults+res.Rows[1].C.WriteFaults)
	return res, nil
}

// runAblateFlush exercises schedule flushing on a synthetic
// deletion-heavy pattern: consumers rotate away from previously read
// blocks, so stale schedule entries cause redundant pre-sends unless
// flushed.
func runAblateFlush(o Options) (*Result, error) {
	res := &Result{ID: "ablate-flush", Title: "Schedule flushing under a rotating (deletion-heavy) pattern"}
	iters := 24
	elems := 512
	nodes := 16
	if o.Scale == Quick {
		iters, elems, nodes = 16, 256, 8
	}
	run := func(label string, flushEvery, policyEvery int) error {
		m := rt.New(o.machine(rt.Config{Nodes: nodes, BlockSize: 32, Protocol: rt.ProtoPredictive, FlushEvery: policyEvery}))
		arr := m.NewArray1D("x", elems, 1, false)
		err := m.Run(func(w *rt.Worker) {
			lo, hi := arr.MyRange(w)
			for it := 0; it < iters; it++ {
				w.Phase(1, func() {
					for i := lo; i < hi; i++ {
						w.WriteF64(arr.At(i, 0), float64(it+i))
					}
				})
				// The read window rotates: old entries become useless.
				start := (it / 4) * (elems / 8)
				w.Phase(2, func() {
					for k := 0; k < elems/8; k++ {
						w.ReadF64(arr.At((start+k)%elems, 0))
					}
				})
				if flushEvery > 0 && (it+1)%flushEvery == 0 {
					w.FlushSchedules(-1)
				}
			}
		})
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, Row{Label: label, BlockSize: 32, B: m.Breakdown(), C: m.Counters(), Phases: m.PhaseBreakdown()})
		return nil
	}
	if err := run("never flush (paper default)", 0, 0); err != nil {
		return nil, err
	}
	if err := run("app flush every 4 iterations", 4, 0); err != nil {
		return nil, err
	}
	if err := run("protocol FlushEvery=4 policy", 0, 4); err != nil {
		return nil, err
	}
	nf := res.Rows[0]
	fl := res.Rows[1]
	po := res.Rows[2]
	res.AddNote("without flushing, stale entries keep %d blocks pre-sent; app-directed flushing drops pre-sends to %d, the in-protocol policy to %d",
		nf.C.PresendsSent, fl.C.PresendsSent, po.C.PresendsSent)
	return res, nil
}
