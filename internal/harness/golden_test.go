package harness

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"presto/internal/rt"
)

// -update regenerates the golden CSVs from the current implementation:
//
//	go test ./internal/harness -run TestFigureCSVGolden -update
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden CSV files")

// TestFigureCSVGolden locks the figure 5–7 harness output against
// committed golden files: the quick-scale CSV rows — execution times,
// fault counts, message counts — must reproduce bit-exactly under every
// {scheduler} × {engine} combination. Any intentional change to the
// protocols, cost model or workloads shows up as a reviewable golden diff
// (regenerate with -update).
func TestFigureCSVGolden(t *testing.T) {
	for _, id := range []string{"figure5", "figure6", "figure7"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %q not registered", id)
			}
			path := filepath.Join("testdata", "golden", id+".csv")
			for _, o := range []Options{
				{Scale: Quick, Sched: rt.SchedWheel},
				{Scale: Quick, Sched: rt.SchedHeap},
				{Scale: Quick, Sched: rt.SchedWheel, Engine: rt.EngineParallel, Workers: 4},
				{Scale: Quick, Sched: rt.SchedHeap, Engine: rt.EngineParallel, Workers: 4},
				{Scale: Quick, Sched: rt.SchedWheel, Engine: rt.EngineParallel, Workers: 4, Lookahead: rt.LookaheadGlobal},
				{Scale: Quick, Sched: rt.SchedWheel, Engine: rt.EngineParallel, Workers: 4, NoSteal: true},
			} {
				res, err := RunExperiment(e, o)
				if err != nil {
					t.Fatalf("%s (%s/%s): %v", id, o.Engine, o.Sched, err)
				}
				var buf bytes.Buffer
				res.CSV(&buf)
				if *updateGolden && o.Engine != rt.EngineParallel && o.Sched == rt.SchedWheel {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
						t.Fatal(err)
					}
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (regenerate with -update): %v", err)
				}
				if !bytes.Equal(buf.Bytes(), want) {
					t.Errorf("%s engine %q sched %q diverges from %s:\n--- got ---\n%s--- want ---\n%s",
						id, res.Engine, o.Sched, path, buf.Bytes(), want)
				}
			}
		})
	}
}
