package harness

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"presto/internal/rt"
)

// -update regenerates the golden CSVs from the current implementation:
//
//	go test ./internal/harness -run TestFigureCSVGolden -update
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden CSV files")

// TestFigureCSVGolden locks the figure 5–7 harness output against
// committed golden files: the quick-scale CSV rows — execution times,
// fault counts, message counts — must reproduce bit-exactly under both
// kernel engines. Any intentional change to the protocols, cost model or
// workloads shows up as a reviewable golden diff (regenerate with
// -update).
func TestFigureCSVGolden(t *testing.T) {
	for _, id := range []string{"figure5", "figure6", "figure7"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %q not registered", id)
			}
			path := filepath.Join("testdata", "golden", id+".csv")
			for _, o := range []Options{
				{Scale: Quick},
				{Scale: Quick, Engine: rt.EngineParallel, Workers: 4},
			} {
				res, err := RunExperiment(e, o)
				if err != nil {
					t.Fatalf("%s (%s): %v", id, o.Engine, err)
				}
				var buf bytes.Buffer
				res.CSV(&buf)
				if *updateGolden && o.Engine != rt.EngineParallel {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
						t.Fatal(err)
					}
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (regenerate with -update): %v", err)
				}
				if !bytes.Equal(buf.Bytes(), want) {
					t.Errorf("%s engine %q diverges from %s:\n--- got ---\n%s--- want ---\n%s",
						id, res.Engine, path, buf.Bytes(), want)
				}
			}
		})
	}
}
