package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"presto/internal/rt"
)

// TestScaleCSVGolden locks the scaling curve against a committed golden
// file: every (topology, nodes, aggregation) point — elapsed time, total
// and cross-group message counts, leader aggregates — must reproduce
// bit-exactly under serial and parallel engines and both schedulers,
// 1024-node machines included. Regenerate with -update.
func TestScaleCSVGolden(t *testing.T) {
	e, ok := ByID("scale")
	if !ok {
		t.Fatal("scale experiment not registered")
	}
	path := filepath.Join("testdata", "golden", "scale.csv")
	for _, o := range []Options{
		{Scale: Quick, Sched: rt.SchedWheel},
		{Scale: Quick, Sched: rt.SchedHeap},
		{Scale: Quick, Sched: rt.SchedWheel, Engine: rt.EngineParallel, Workers: 4},
	} {
		res, err := RunExperiment(e, o)
		if err != nil {
			t.Fatalf("scale (%s/%s): %v", o.Engine, o.Sched, err)
		}
		var buf bytes.Buffer
		res.CSV(&buf)
		if *updateGolden && o.Engine != rt.EngineParallel && o.Sched == rt.SchedWheel {
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden file (regenerate with -update): %v", err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("scale engine %q sched %q diverges from %s:\n--- got ---\n%s--- want ---\n%s",
				res.Engine, o.Sched, path, buf.Bytes(), want)
		}
	}
}
