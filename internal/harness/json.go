package harness

import (
	"encoding/json"
	"io"

	"presto/internal/predict"
	"presto/internal/rt"
)

// rowJSON is a Row with stable machine-readable field names. Times are
// virtual nanoseconds.
type rowJSON struct {
	Label        string         `json:"label"`
	BlockBytes   int            `json:"block_bytes"`
	TotalNS      int64          `json:"total_ns"`
	RemoteWaitNS int64          `json:"remote_wait_ns"`
	PresendNS    int64          `json:"presend_ns"`
	ComputeNS    int64          `json:"compute_ns"`
	SyncNS       int64          `json:"sync_ns"`
	ReadFaults   int64          `json:"read_faults"`
	WriteFaults  int64          `json:"write_faults"`
	MsgsSent     int64          `json:"msgs_sent"`
	BytesSent    int64          `json:"bytes_sent"`
	PresendsSent int64          `json:"presends_sent"`
	BulkMsgs     int64          `json:"bulk_msgs"`
	Conflicts    int64          `json:"conflicts"`
	Phases       []rt.PhaseStat `json:"phases,omitempty"`
}

// resultJSON is one experiment's machine-readable record.
type resultJSON struct {
	ID    string    `json:"id"`
	Title string    `json:"title"`
	Rows  []rowJSON `json:"rows"`
	Notes []string  `json:"notes,omitempty"`
	// Error is the predicted-vs-simulated comparison table (the
	// predict-error experiment and paperbench -predict).
	Error *predict.ErrorTable `json:"predict_error,omitempty"`
	// Curve is the scaling experiment's (topology, nodes, aggregation)
	// measurements.
	Curve *ScalingCurve `json:"scaling_curve,omitempty"`
}

func (res *Result) toJSON() resultJSON {
	out := resultJSON{ID: res.ID, Title: res.Title, Notes: res.Notes, Error: res.Error, Curve: res.Curve}
	for _, r := range res.Rows {
		out.Rows = append(out.Rows, rowJSON{
			Label:        r.Label,
			BlockBytes:   r.BlockSize,
			TotalNS:      int64(r.B.Elapsed),
			RemoteWaitNS: int64(r.B.RemoteWait),
			PresendNS:    int64(r.B.Presend),
			ComputeNS:    int64(r.B.Compute),
			SyncNS:       int64(r.B.Sync),
			ReadFaults:   r.C.ReadFaults,
			WriteFaults:  r.C.WriteFaults,
			MsgsSent:     r.C.MsgsSent,
			BytesSent:    r.C.BytesSent,
			PresendsSent: r.C.PresendsSent,
			BulkMsgs:     r.C.BulkMsgs,
			Conflicts:    r.C.Conflicts,
			Phases:       r.Phases,
		})
	}
	return out
}

// JSON renders the result as one machine-readable JSON document (the
// same per-experiment record WriteJSON emits, without the wrapper) —
// deterministic for a fixed configuration.
func (res *Result) JSON() ([]byte, error) {
	return json.Marshal(res.toJSON())
}

// WriteJSON writes the experiments' results as one machine-readable JSON
// document (paperbench's BENCH_results.json). Virtual time makes the
// output deterministic for a fixed configuration.
func WriteJSON(w io.Writer, results []*Result) error {
	docs := make([]resultJSON, 0, len(results))
	for _, res := range results {
		docs = append(docs, res.toJSON())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Experiments []resultJSON `json:"experiments"`
	}{docs})
}
