// Package harness regenerates the paper's experimental artifacts: Table 1
// (the benchmark workloads), Figure 4 (the compiler's annotated Barnes
// CFG), and Figures 5-7 (execution-time comparisons for Adaptive, Barnes
// and Water), plus the §5.4 block-size sweep and the ablations called out
// in DESIGN.md. Each experiment produces labeled rows (one per program
// version/bar) with the paper's three-way time split, rendered as text
// tables with ASCII bars.
package harness

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"

	"presto/internal/causal"
	"presto/internal/network"
	"presto/internal/predict"
	"presto/internal/rt"
	"presto/internal/sim"
)

// Scale selects workload sizes.
type Scale int

const (
	// Quick runs CI-sized workloads (seconds of wall clock).
	Quick Scale = iota
	// Paper runs the paper's workload sizes (Table 1).
	Paper
)

// ParseScale maps "paper"/"quick" to a Scale.
func ParseScale(s string) Scale {
	if strings.EqualFold(s, "paper") {
		return Paper
	}
	return Quick
}

// Options selects how experiments execute: the workload scale and the
// kernel engine. The engine changes wall-clock time only — results are
// byte-identical across engines (asserted by determinism tests).
type Options struct {
	Scale Scale
	// Engine is the kernel execution strategy (default rt.EngineSerial).
	Engine rt.EngineKind
	// Workers caps parallel-engine workers (0 = auto).
	Workers int
	// Lookahead selects the parallel engine's window derivation
	// (default rt.LookaheadPair); results are byte-identical across kinds.
	Lookahead rt.LookaheadKind
	// NoSteal disables the parallel engine's deterministic work stealing.
	NoSteal bool
	// Sched selects the kernel's event scheduler (default rt.SchedWheel).
	Sched rt.SchedKind
	// Net, when non-nil, overrides the default interconnect for
	// experiments that do not pick their own (the platform-comparison
	// experiments keep their per-row presets).
	Net *network.Params
	// Aggregate enables node-leader message aggregation on every machine
	// an experiment builds (a structural no-op on machines without node
	// groups). Experiments that sweep aggregation themselves (the scaling
	// curve) override it per row.
	Aggregate bool
	// Profile enables the causal profiler on every machine an experiment
	// builds; figure rows then carry a validated attribution profile
	// (rendered after the phase table and exported in the JSON results).
	Profile bool
	// Predict switches the figure 5-7 and sweep experiments onto the
	// analytical fast path (internal/predict): one recorded calibration
	// simulation per (application, protocol) pair, every other block size
	// extrapolated without simulating. Rows at the calibration block size
	// are bit-identical to the simulated rows (the predictor's identity
	// guarantee); extrapolated rows stay within the validated error band.
	Predict bool
}

func (o Options) withDefaults() Options {
	if o.Engine == "" {
		o.Engine = rt.EngineSerial
	}
	return o
}

// machine stamps the engine selection onto a machine configuration.
func (o Options) machine(c rt.Config) rt.Config {
	c.Engine = o.Engine
	c.Workers = o.Workers
	c.Lookahead = o.Lookahead
	c.NoSteal = o.NoSteal
	c.Sched = o.Sched
	c.Profile = o.Profile
	if o.Aggregate {
		c.Aggregate = true
	}
	if c.Net == nil && o.Net != nil {
		c.Net = o.Net
	}
	return c
}

// Row is one bar of a figure: a program version's time breakdown.
type Row struct {
	Label     string
	BlockSize int
	B         rt.Breakdown
	C         rt.Counters
	// Phases is the per-parallel-phase breakdown (empty for rows whose
	// runner predates phase attribution).
	Phases []rt.PhaseStat
	// Profile is the validated causal attribution profile, present when
	// the experiment ran with Options.Profile.
	Profile *causal.Profile `json:"profile,omitempty"`
}

// attachProfile assembles and validates the row's causal profile when
// profiling is on (a no-op otherwise). The attribution invariant is
// enforced here: a profile whose buckets do not sum to the simulated
// time fails the experiment.
func (o Options) attachProfile(row *Row, m *rt.Machine, app string) error {
	if !o.Profile {
		return nil
	}
	p, err := m.Profile(app)
	if err != nil {
		return err
	}
	if err := p.Validate(); err != nil {
		return fmt.Errorf("%s: %w", row.Label, err)
	}
	row.Profile = p
	return nil
}

// Total returns the row's execution time.
func (r Row) Total() sim.Time { return r.B.Elapsed }

// Result is one experiment's output.
type Result struct {
	ID    string
	Title string
	Rows  []Row
	// Notes carries derived findings (speedups, crossovers) recorded in
	// EXPERIMENTS.md.
	Notes []string
	// Engine records the kernel engine the experiment ran under. It is
	// metadata only: rows and CSV output are engine-independent.
	Engine rt.EngineKind
	// Error is the predicted-vs-simulated comparison table produced by the
	// predict-error experiment; when set it replaces Rows as the CSV
	// payload (the table is the experiment's artifact).
	Error *predict.ErrorTable
	// Curve is the scaling experiment's payload; like Error it replaces
	// Rows as the CSV payload when set.
	Curve *ScalingCurve
}

// Best returns the fastest row matching the label prefix.
func (res *Result) Best(prefix string) (Row, bool) {
	var best Row
	found := false
	for _, r := range res.Rows {
		if !strings.HasPrefix(r.Label, prefix) {
			continue
		}
		if !found || r.Total() < best.Total() {
			best = r
			found = true
		}
	}
	return best, found
}

// Find returns the row with the exact label.
func (res *Result) Find(label string) (Row, bool) {
	for _, r := range res.Rows {
		if r.Label == label {
			return r, true
		}
	}
	return Row{}, false
}

// AddNote records a derived finding.
func (res *Result) AddNote(format string, args ...any) {
	res.Notes = append(res.Notes, fmt.Sprintf(format, args...))
}

// Render prints the figure as a table plus normalized stacked bars, in
// the spirit of the paper's figures (bars normalized to the fastest
// version, split into remote-wait / pre-send / compute+synch).
func (res *Result) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n\n", res.ID, res.Title)
	if res.Engine != "" && res.Engine != rt.EngineSerial {
		fmt.Fprintf(w, "(engine: %s)\n\n", res.Engine)
	}
	if res.Error != nil {
		res.Error.Render(w)
		for _, n := range res.Notes {
			fmt.Fprintf(w, "  - %s\n", n)
		}
		fmt.Fprintln(w)
		return
	}
	if res.Curve != nil {
		res.Curve.Render(w)
		if len(res.Notes) > 0 {
			fmt.Fprintln(w)
			for _, n := range res.Notes {
				fmt.Fprintf(w, "  - %s\n", n)
			}
		}
		fmt.Fprintln(w)
		return
	}
	if len(res.Rows) == 0 {
		for _, n := range res.Notes {
			fmt.Fprintln(w, n)
		}
		return
	}
	fastest := res.Rows[0].Total()
	for _, r := range res.Rows {
		if r.Total() < fastest {
			fastest = r.Total()
		}
	}
	fmt.Fprintf(w, "%-26s %10s %12s %12s %14s %8s\n",
		"version", "total", "remote-wait", "presend", "compute+synch", "rel")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-26s %10v %12v %12v %14v %8.2f\n",
			r.Label, r.B.Elapsed, r.B.RemoteWait, r.B.Presend, r.B.ComputeSynch(),
			float64(r.Total())/float64(fastest))
	}
	fmt.Fprintln(w)
	// Stacked bars: #=compute+synch, p=presend, r=remote wait; width
	// proportional to time relative to the slowest version.
	var slowest sim.Time
	for _, r := range res.Rows {
		if r.Total() > slowest {
			slowest = r.Total()
		}
	}
	const width = 60
	for _, r := range res.Rows {
		cs := int(float64(r.B.ComputeSynch()) / float64(slowest) * width)
		ps := int(float64(r.B.Presend) / float64(slowest) * width)
		rw := int(float64(r.B.RemoteWait) / float64(slowest) * width)
		fmt.Fprintf(w, "%-26s |%s%s%s\n", r.Label,
			strings.Repeat("#", cs), strings.Repeat("p", ps), strings.Repeat("r", rw))
	}
	fmt.Fprintln(w, "\n  # compute+synch   p predictive protocol (pre-send)   r remote-data wait")
	res.renderPhases(w)
	res.renderAttribution(w)
	if len(res.Notes) > 0 {
		fmt.Fprintln(w)
		for _, n := range res.Notes {
			fmt.Fprintf(w, "  - %s\n", n)
		}
	}
	fmt.Fprintln(w)
}

// renderPhases prints each row's per-phase breakdown: where the time went
// and how much of the communication the pre-send anticipated.
func (res *Result) renderPhases(w io.Writer) {
	any := false
	for _, r := range res.Rows {
		if len(r.Phases) > 0 {
			any = true
			break
		}
	}
	if !any {
		return
	}
	fmt.Fprintf(w, "\nper-phase breakdown (times are per-node averages):\n")
	fmt.Fprintf(w, "  %-26s %-14s %6s %12s %12s %8s %9s %9s\n",
		"version", "phase", "iters", "remote-wait", "presend", "faults", "presends", "hit-rate")
	for _, r := range res.Rows {
		for _, p := range r.Phases {
			hit := "-"
			if p.PresendsIn > 0 {
				hit = fmt.Sprintf("%8.1f%%", 100*p.Coverage())
			}
			fmt.Fprintf(w, "  %-26s %-14s %6d %12v %12v %8d %9d %9s\n",
				r.Label, p.Name, p.Iters,
				sim.Time(p.RemoteWaitNS), sim.Time(p.PresendNS),
				p.Faults(), p.PresendsIn, hit)
		}
	}
}

// renderAttribution prints each profiled row's exact time-attribution
// split (machine-summed causal buckets) plus its critical-path length —
// the paperbench -profile view of the figure sweeps.
func (res *Result) renderAttribution(w io.Writer) {
	any := false
	for _, r := range res.Rows {
		if r.Profile != nil {
			any = true
			break
		}
	}
	if !any {
		return
	}
	fmt.Fprintf(w, "\ncausal attribution (machine-summed, %% of total accounted time):\n")
	fmt.Fprintf(w, "  %-26s %8s %8s %8s %8s %8s %8s %8s %8s %12s\n",
		"version", "compute", "transit", "occup", "service", "barrier", "stall", "presend", "idle", "crit-path")
	for _, r := range res.Rows {
		p := r.Profile
		if p == nil {
			continue
		}
		b := p.MachineBuckets()
		tot := float64(b.Total())
		pc := func(v int64) string {
			if tot == 0 {
				return "-"
			}
			return fmt.Sprintf("%.1f%%", 100*float64(v)/tot)
		}
		fmt.Fprintf(w, "  %-26s %8s %8s %8s %8s %8s %8s %8s %8s %12v\n",
			r.Label, pc(b.ComputeNS), pc(b.TransitNS), pc(b.OccupancyNS), pc(b.ServiceNS),
			pc(b.BarrierNS), pc(b.StallNS), pc(b.PresendNS), pc(b.IdleNS), sim.Time(p.Path.LengthNS))
	}
}

// CSV renders the rows as comma-separated values for external plotting.
// A result carrying a predicted-vs-simulated error table renders that
// table instead — it is the experiment's payload.
func (res *Result) CSV(w io.Writer) {
	if res.Error != nil {
		res.Error.WriteCSV(w)
		return
	}
	if res.Curve != nil {
		res.Curve.WriteCSV(w)
		return
	}
	fmt.Fprintln(w, "experiment,version,block_bytes,total_s,remote_wait_s,presend_s,compute_synch_s,read_faults,write_faults,msgs,presends,conflicts")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%s,%s,%d,%.6f,%.6f,%.6f,%.6f,%d,%d,%d,%d,%d\n",
			res.ID, r.Label, r.BlockSize,
			r.B.Elapsed.Seconds(), r.B.RemoteWait.Seconds(), r.B.Presend.Seconds(),
			r.B.ComputeSynch().Seconds(),
			r.C.ReadFaults, r.C.WriteFaults, r.C.MsgsSent, r.C.PresendsSent, r.C.Conflicts)
	}
}

// Experiment is one registered paper artifact.
type Experiment struct {
	ID    string
	Title string
	// Paper states the qualitative claim being reproduced.
	Paper string
	Run   func(o Options) (*Result, error)
}

// RunExperiment executes the experiment with the given options and stamps
// the result with the engine it ran under.
func RunExperiment(e Experiment, o Options) (*Result, error) {
	o = o.withDefaults()
	res, err := e.Run(o)
	if res != nil {
		res.Engine = o.Engine
	}
	return res, err
}

// RunCSV executes the experiment and returns its rows rendered as CSV
// bytes alongside the result. This is the serving layer's experiment
// payload: CSV bytes are deterministic for a fixed configuration, so a
// run through dsmserve must be byte-identical to an in-process run.
func RunCSV(e Experiment, o Options) ([]byte, *Result, error) {
	res, err := RunExperiment(e, o)
	if err != nil {
		return nil, nil, err
	}
	var buf bytes.Buffer
	res.CSV(&buf)
	return buf.Bytes(), res, nil
}

var registry []Experiment

// Register installs an experiment (called from init functions).
func Register(e Experiment) { registry = append(registry, e) }

// All returns registered experiments sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns a registered experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ratio formats a speedup with two decimals.
func ratio(a, b sim.Time) float64 { return float64(a) / float64(b) }
