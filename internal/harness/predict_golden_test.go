package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestPredictErrorGolden locks the predictor's figure 5-7 error table:
// the quick-scale predicted-vs-simulated comparison must reproduce byte
// for byte (virtual time makes both sides deterministic). Any model or
// workload change shows up as a reviewable golden diff (regenerate with
// -update). The serving layer's test compares its HTTP payload against
// the same file, closing the in-process-vs-HTTP identity loop.
func TestPredictErrorGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("predict-error simulates every figure target (tens of seconds)")
	}
	e, ok := ByID("predict-error")
	if !ok {
		t.Fatal("predict-error not registered")
	}
	res, err := RunExperiment(e, Options{Scale: Quick})
	if err != nil {
		t.Fatal(err)
	}
	if res.Error == nil {
		t.Fatal("predict-error result carries no error table")
	}
	var buf bytes.Buffer
	res.CSV(&buf)
	path := filepath.Join("testdata", "golden", "predict-error.csv")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("predict-error CSV diverges from %s:\n--- got ---\n%s--- want ---\n%s",
			path, buf.Bytes(), want)
	}
}

// TestPredictFigureIdentity pins the predictor's identity guarantee at
// the harness level: figure5 rows at the calibration block size must be
// bit-identical between Options.Predict and the full simulation.
func TestPredictFigureIdentity(t *testing.T) {
	e, ok := ByID("figure5")
	if !ok {
		t.Fatal("figure5 not registered")
	}
	simRes, err := RunExperiment(e, Options{Scale: Quick})
	if err != nil {
		t.Fatal(err)
	}
	predRes, err := RunExperiment(e, Options{Scale: Quick, Predict: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"C** unopt (32)", "C** opt (32)"} {
		want, ok1 := simRes.Find(label)
		got, ok2 := predRes.Find(label)
		if !ok1 || !ok2 {
			t.Fatalf("row %q missing (sim %v, predict %v)", label, ok1, ok2)
		}
		if got.B != want.B {
			t.Errorf("%s: predicted breakdown %+v != simulated %+v", label, got.B, want.B)
		}
		if got.C != want.C {
			t.Errorf("%s: predicted counters %+v != simulated %+v", label, got.C, want.C)
		}
	}
	// Extrapolated rows must exist and carry nonzero forecasts.
	for _, label := range []string{"C** unopt (256)", "C** opt (256)"} {
		row, ok := predRes.Find(label)
		if !ok || row.B.Elapsed == 0 {
			t.Errorf("predicted row %q missing or empty", label)
		}
	}
}
