package harness

import (
	"bytes"
	"testing"

	"presto/internal/rt"
)

// TestFigureCSVEngineIdentity is the harness-level determinism check: for
// each of the paper's execution-time figures, the CSV rows produced under
// the parallel engine must be byte-identical to the serial engine's.
func TestFigureCSVEngineIdentity(t *testing.T) {
	for _, id := range []string{"figure5", "figure6", "figure7"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %q not registered", id)
			}
			csvFor := func(o Options) []byte {
				res, err := RunExperiment(e, o)
				if err != nil {
					t.Fatalf("%s (%s): %v", id, o.Engine, err)
				}
				var buf bytes.Buffer
				res.CSV(&buf)
				return buf.Bytes()
			}
			serial := csvFor(Options{Scale: Quick})
			parallel := csvFor(Options{Scale: Quick, Engine: rt.EngineParallel, Workers: 4})
			if !bytes.Equal(serial, parallel) {
				t.Fatalf("CSV rows differ between engines:\nserial:\n%s\nparallel:\n%s", serial, parallel)
			}
		})
	}
}
