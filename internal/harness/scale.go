package harness

// The scaling-curve experiment: elapsed time and message traffic versus
// machine size, 32 to 1024 nodes, across flat / cluster / mesh / fat-tree
// interconnects with node-leader aggregation off and on. This is the
// ROADMAP's big-machine arc made measurable: the hub-exchange workload
// keeps per-node work constant while cross-group traffic grows with the
// machine, so the curve shows where hierarchical topologies pay and how
// much of the cross-group message load aggregation removes.

import (
	"fmt"
	"io"

	"presto/internal/memory"
	"presto/internal/network"
	"presto/internal/rt"
	"presto/internal/sim"
)

// ScalingPoint is one (topology, nodes, aggregation) measurement.
type ScalingPoint struct {
	Topology  string `json:"topology"` // flat | cluster | mesh | fattree
	Preset    string `json:"preset"`   // the -net spelling
	Nodes     int    `json:"nodes"`
	Aggregate bool   `json:"aggregate"`
	ElapsedNS int64  `json:"elapsed_ns"`
	Msgs      int64  `json:"msgs"`
	CrossMsgs int64  `json:"cross_msgs"`
	AggMsgs   int64  `json:"agg_msgs"`
	BytesSent int64  `json:"bytes_sent"`
}

// ScalingCurve is the scaling experiment's payload: one point per
// (topology, nodes, aggregation) cell, in run order.
type ScalingCurve struct {
	Points []ScalingPoint `json:"points"`
}

// WriteCSV renders the curve for external plotting.
func (c *ScalingCurve) WriteCSV(w io.Writer) {
	fmt.Fprintln(w, "experiment,topology,preset,nodes,aggregate,elapsed_s,msgs,cross_msgs,agg_msgs,bytes")
	for _, p := range c.Points {
		agg := "off"
		if p.Aggregate {
			agg = "on"
		}
		fmt.Fprintf(w, "scale,%s,%s,%d,%s,%.6f,%d,%d,%d,%d\n",
			p.Topology, p.Preset, p.Nodes, agg,
			sim.Time(p.ElapsedNS).Seconds(), p.Msgs, p.CrossMsgs, p.AggMsgs, p.BytesSent)
	}
}

// Render prints the curve as a per-topology table with the aggregation
// columns side by side.
func (c *ScalingCurve) Render(w io.Writer) {
	fmt.Fprintf(w, "%-8s %6s %12s %12s %12s %12s %8s %8s\n",
		"topology", "nodes", "elapsed", "elapsed+agg", "cross", "cross+agg", "aggs", "x-less")
	for i := 0; i < len(c.Points); i++ {
		p := c.Points[i]
		if p.Aggregate {
			continue // rendered with its unaggregated partner
		}
		// The aggregated partner is the next point (same topology/nodes).
		var on *ScalingPoint
		if i+1 < len(c.Points) && c.Points[i+1].Aggregate &&
			c.Points[i+1].Topology == p.Topology && c.Points[i+1].Nodes == p.Nodes {
			on = &c.Points[i+1]
		}
		if on == nil {
			fmt.Fprintf(w, "%-8s %6d %12v %12s %12d %12s %8s %8s\n",
				p.Topology, p.Nodes, sim.Time(p.ElapsedNS), "-", p.CrossMsgs, "-", "-", "-")
			continue
		}
		ratio := "-"
		if on.CrossMsgs > 0 {
			ratio = fmt.Sprintf("%.2f", float64(p.CrossMsgs)/float64(on.CrossMsgs))
		}
		fmt.Fprintf(w, "%-8s %6d %12v %12v %12d %12d %8d %8s\n",
			p.Topology, p.Nodes, sim.Time(p.ElapsedNS), sim.Time(on.ElapsedNS),
			p.CrossMsgs, on.CrossMsgs, on.AggMsgs, ratio)
	}
}

// scaleNodeCounts is the curve's machine-size axis.
var scaleNodeCounts = []int{32, 128, 512, 1024}

// scaleTopologies is the curve's interconnect axis.
var scaleTopologies = []string{"flat", "cluster", "mesh", "fattree"}

// scalePreset returns the -net spelling for a topology at a node count,
// or ok=false when the topology cannot express that machine size (the
// fat tree pins 4^levels nodes, so it appears only at 1024 on this axis).
func scalePreset(topo string, n int) (string, bool) {
	switch topo {
	case "flat":
		return "cm5", true
	case "cluster":
		if n%8 != 0 || n/8 < 2 {
			return "", false
		}
		return fmt.Sprintf("cluster:%dx8", n/8), true
	case "mesh":
		// Widest power-of-two factorization at or below the square root.
		h := 1
		for h*h*4 <= n {
			h *= 2
		}
		if n%h != 0 {
			return "", false
		}
		return fmt.Sprintf("mesh:%dx%d", n/h, h), true
	case "fattree":
		levels, m := 0, 1
		for m < n {
			m *= 4
			levels++
		}
		if m != n || levels < 2 {
			return "", false
		}
		return fmt.Sprintf("fattree:%d", levels), true
	}
	return "", false
}

// scaleProg is the hub-exchange workload under the write-update
// protocol: every node owns one block; each iteration every node updates
// its block and multicasts it to its registered consumers (PushUpdates),
// then reads its two ring neighbors and the hub blocks. The ring keeps
// traffic mostly local on hierarchical machines; the hubs — a handful of
// nodes everyone watches — each owe every remote consumer a push per
// iteration, which is exactly the many-bulks-to-one-group pattern
// node-leader aggregation coalesces. Per-node work is constant, so the
// curve isolates how the interconnect and the aggregation layer respond
// to machine size.
func scaleProg(m *rt.Machine, iters, hubs int) rt.Program {
	n := m.Cfg.Nodes
	arr := m.NewArray1D("scale", n, 1, true)
	return func(w *rt.Worker) {
		w.WriteF64(arr.At(w.ID, 0), float64(w.ID))
		w.Barrier()
		// Warm-up reads register this node as a consumer of its ring
		// neighbors and of every hub.
		_ = w.ReadF64(arr.At((w.ID+1)%n, 0))
		_ = w.ReadF64(arr.At((w.ID+n-1)%n, 0))
		for h := 0; h < hubs; h++ {
			_ = w.ReadF64(arr.At(h, 0))
		}
		w.Barrier()
		own := []memory.Addr{arr.At(w.ID, 0)}
		for it := 0; it < iters; it++ {
			w.Phase(1, func() {
				w.WriteF64(own[0], float64(w.ID+it))
				w.PushUpdates(own)
				w.Compute(2 * sim.Microsecond)
			})
			w.Phase(2, func() {
				s := w.ReadF64(arr.At((w.ID+1)%n, 0)) +
					w.ReadF64(arr.At((w.ID+n-1)%n, 0))
				for h := 0; h < hubs; h++ {
					s += w.ReadF64(arr.At(h, 0))
				}
				_ = s
				w.Compute(2 * sim.Microsecond)
			})
		}
	}
}

func init() {
	Register(Experiment{
		ID:    "scale",
		Title: "Scaling curve to 1024 nodes (hub exchange, write-update)",
		Paper: "ROADMAP extension beyond the paper's 32 CM-5 nodes: hierarchical interconnects keep the curve flat where a uniform network's hub traffic grows, and node-leader aggregation cuts cross-group messages several-fold at scale.",
		Run:   runScale,
	})
}

func runScale(o Options) (*Result, error) {
	res := &Result{ID: "scale", Title: "Scaling curve to 1024 nodes", Curve: &ScalingCurve{}}
	iters, hubs := 4, 4
	if o.Scale == Paper {
		iters = 12
	}
	run := func(preset string, n int, agg bool) (*rt.Machine, error) {
		net, err := network.Preset(preset)
		if err != nil {
			return nil, err
		}
		cfg := o.machine(rt.Config{Nodes: n, BlockSize: 32, Protocol: rt.ProtoUpdate, Net: net})
		cfg.Aggregate = agg
		m := rt.New(cfg)
		if err := m.Run(scaleProg(m, iters, hubs)); err != nil {
			return nil, fmt.Errorf("%s n=%d agg=%v: %w", preset, n, agg, err)
		}
		return m, nil
	}
	type cell struct{ off, on ScalingPoint }
	last := map[string]cell{} // per topology, the largest machine's pair
	for _, n := range scaleNodeCounts {
		for _, topo := range scaleTopologies {
			preset, ok := scalePreset(topo, n)
			if !ok {
				continue
			}
			var pair cell
			var hash [2]uint64
			for i, agg := range []bool{false, true} {
				m, err := run(preset, n, agg)
				if err != nil {
					return nil, err
				}
				c := m.Counters()
				p := ScalingPoint{
					Topology: topo, Preset: preset, Nodes: n, Aggregate: agg,
					ElapsedNS: int64(m.Breakdown().Elapsed),
					Msgs:      c.MsgsSent, CrossMsgs: c.CrossMsgs,
					AggMsgs: c.AggMsgs, BytesSent: c.BytesSent,
				}
				res.Curve.Points = append(res.Curve.Points, p)
				hash[i] = m.HashMemory()
				if agg {
					pair.on = p
				} else {
					pair.off = p
				}
			}
			// Aggregation is timing-visible but memory-invariant; a hash
			// divergence means the coalescing layer corrupted data.
			if hash[0] != hash[1] {
				return nil, fmt.Errorf("%s n=%d: aggregation changed final memory (%#x vs %#x)",
					preset, n, hash[0], hash[1])
			}
			last[topo] = cell{pair.off, pair.on}
		}
	}
	if p := last["cluster"]; p.on.AggMsgs > 0 {
		res.AddNote("cluster at %d nodes: aggregation cuts cross-group messages %d -> %d (%.1fx) with %d leader aggregates",
			p.off.Nodes, p.off.CrossMsgs, p.on.CrossMsgs,
			float64(p.off.CrossMsgs)/float64(p.on.CrossMsgs), p.on.AggMsgs)
	}
	if p := last["fattree"]; p.on.AggMsgs > 0 {
		res.AddNote("fat tree at %d nodes (leaf groups of 4): cross-group messages %d -> %d (%.1fx)",
			p.off.Nodes, p.off.CrossMsgs, p.on.CrossMsgs,
			float64(p.off.CrossMsgs)/float64(p.on.CrossMsgs))
	}
	res.AddNote("flat and mesh machines have no node groups, so aggregation is a structural no-op there (identical rows)")
	res.AddNote("the fat tree pins 4^levels nodes and so appears only at 1024 on this axis")
	res.AddNote("final memory is byte-identical between every aggregated run and its unaggregated partner (checked per cell)")
	return res, nil
}
