package harness

import (
	"fmt"
	"time"

	"presto/internal/apps/adaptive"
	"presto/internal/apps/barnes"
	"presto/internal/apps/water"
	"presto/internal/network"
	"presto/internal/predict"
	"presto/internal/rt"
)

// predictCalBS is the block size every calibration simulation runs at.
// The predictor extrapolates upward from it (predict.MaxShift powers of
// two), which covers every block size the figure experiments sweep.
const predictCalBS = 32

// predictor caches one calibration per (application, protocol, variant)
// so a figure experiment's block-size sweep — or the whole predict-error
// table — pays for each calibration simulation exactly once.
type predictor struct {
	cals map[string]*predict.Calibration
}

func newPredictor() *predictor {
	return &predictor{cals: map[string]*predict.Calibration{}}
}

// calibration runs (or reuses) one recorded calibration simulation and
// distills it. build must run the application at predictCalBS with the
// profiler and recorder enabled.
func (p *predictor) calibration(key, app string, build func() (*rt.Machine, error)) (*predict.Calibration, error) {
	if cal, ok := p.cals[key]; ok {
		return cal, nil
	}
	m, err := build()
	if err != nil {
		return nil, fmt.Errorf("calibrating %s: %w", key, err)
	}
	cal, err := predict.Calibrate(m, app)
	if err != nil {
		return nil, fmt.Errorf("calibrating %s: %w", key, err)
	}
	p.cals[key] = cal
	return cal, nil
}

func (p *predictor) adaptive(o Options, proto rt.ProtocolKind) (*predict.Calibration, error) {
	return p.calibration("adaptive/"+string(proto), "adaptive", func() (*rt.Machine, error) {
		cfg := adaptiveCfg(o, proto, predictCalBS)
		cfg.Machine.Profile = true
		cfg.Machine.Record = true
		r, err := adaptive.Run(cfg)
		if err != nil {
			return nil, err
		}
		return r.Machine, nil
	})
}

func (p *predictor) barnes(o Options, proto rt.ProtocolKind, spmd bool) (*predict.Calibration, error) {
	key := fmt.Sprintf("barnes/%s/spmd=%v", proto, spmd)
	return p.calibration(key, "barnes", func() (*rt.Machine, error) {
		cfg := barnesCfg(o, proto, predictCalBS, spmd)
		cfg.Machine.Profile = true
		cfg.Machine.Record = true
		r, err := barnes.Run(cfg)
		if err != nil {
			return nil, err
		}
		return r.Machine, nil
	})
}

func (p *predictor) water(o Options, proto rt.ProtocolKind, splash bool) (*predict.Calibration, error) {
	key := fmt.Sprintf("water/%s/splash=%v", proto, splash)
	return p.calibration(key, "water", func() (*rt.Machine, error) {
		cfg := waterCfg(o, proto, predictCalBS, splash)
		cfg.Machine.Profile = true
		cfg.Machine.Record = true
		r, err := water.Run(cfg)
		if err != nil {
			return nil, err
		}
		return r.Machine, nil
	})
}

// predictedRow extrapolates one figure row from a calibration. At the
// calibration block size the row is bit-identical to the simulated row.
func predictedRow(cal *predict.Calibration, label string, bs int) (Row, error) {
	pr, err := cal.Predict(predict.Target{BlockSize: bs})
	if err != nil {
		return Row{}, fmt.Errorf("%s: %w", label, err)
	}
	return Row{Label: label, BlockSize: bs, B: pr.Breakdown, C: pr.Counters}, nil
}

// PredictCapable reports whether an experiment honors Options.Predict —
// the figure sweeps and the block-size sweep, whose rows are
// (application, protocol, block size) points a calibration extrapolates
// to. The serving layer rejects predict specs for any other experiment so
// the spec space stays canonical (a predict flag that changes nothing
// must not mint a second cache identity for the same result).
func PredictCapable(id string) bool {
	switch id {
	case "figure5", "figure6", "figure7", "sweep":
		return true
	}
	return false
}

// predictNote annotates a figure result produced by the analytical path.
func predictNote(res *Result, cals int) {
	res.AddNote("rows predicted analytically from %d recorded %dB calibration run(s) — no per-row simulation (internal/predict)",
		cals, predictCalBS)
}

func init() {
	Register(Experiment{
		ID:    "predict-error",
		Title: "Analytical predictor vs full simulation (figure 5-7 sweeps)",
		Paper: "The predictor answers the figure 5-7 block-size sweeps from one calibration simulation per program/protocol; this experiment validates every predicted elapsed time against the corresponding full simulation.",
		Run:   runPredictError,
	})
}

// figureTargets enumerates every figure 5-7 (version, block size)
// configuration the predictor must reproduce, keyed by the calibration it
// extrapolates from.
type figureTarget struct {
	experiment string
	label      string
	bs         int
	cal        func(*predictor, Options) (*predict.Calibration, error)
	sim        func(Options) (rt.Breakdown, error)
}

func figureTargets() []figureTarget {
	var out []figureTarget
	// Figure 5: Adaptive, stache vs predictive at 32B and 256B.
	for _, v := range []struct {
		label string
		proto rt.ProtocolKind
		bs    int
	}{
		{"C** unopt (32)", rt.ProtoStache, 32},
		{"C** opt (32)", rt.ProtoPredictive, 32},
		{"C** unopt (256)", rt.ProtoStache, 256},
		{"C** opt (256)", rt.ProtoPredictive, 256},
	} {
		v := v
		out = append(out, figureTarget{
			experiment: "figure5", label: v.label, bs: v.bs,
			cal: func(p *predictor, o Options) (*predict.Calibration, error) { return p.adaptive(o, v.proto) },
			sim: func(o Options) (rt.Breakdown, error) {
				r, err := adaptive.Run(adaptiveCfg(o, v.proto, v.bs))
				if err != nil {
					return rt.Breakdown{}, err
				}
				return r.Breakdown, nil
			},
		})
	}
	// Figure 6: Barnes, including the hand-optimized SPMD write-update bar.
	for _, v := range []struct {
		label string
		proto rt.ProtocolKind
		bs    int
		spmd  bool
	}{
		{"C** unopt (32)", rt.ProtoStache, 32, false},
		{"C** opt (32)", rt.ProtoPredictive, 32, false},
		{"C** unopt (1024)", rt.ProtoStache, 1024, false},
		{"C** opt (1024)", rt.ProtoPredictive, 1024, false},
		{"SPMD write-update (1024)", rt.ProtoUpdate, 1024, true},
	} {
		v := v
		out = append(out, figureTarget{
			experiment: "figure6", label: v.label, bs: v.bs,
			cal: func(p *predictor, o Options) (*predict.Calibration, error) { return p.barnes(o, v.proto, v.spmd) },
			sim: func(o Options) (rt.Breakdown, error) {
				r, err := barnes.Run(barnesCfg(o, v.proto, v.bs, v.spmd))
				if err != nil {
					return rt.Breakdown{}, err
				}
				return r.Breakdown, nil
			},
		})
	}
	// Figure 7: Water sweeps each version over three block sizes.
	for _, v := range []struct {
		prefix string
		proto  rt.ProtocolKind
		splash bool
	}{
		{"C** opt", rt.ProtoPredictive, false},
		{"C** unopt", rt.ProtoStache, false},
		{"Splash", rt.ProtoStache, true},
	} {
		v := v
		for _, bs := range []int{32, 128, 256} {
			bs := bs
			out = append(out, figureTarget{
				experiment: "figure7", label: fmt.Sprintf("%s (%d)", v.prefix, bs), bs: bs,
				cal: func(p *predictor, o Options) (*predict.Calibration, error) { return p.water(o, v.proto, v.splash) },
				sim: func(o Options) (rt.Breakdown, error) {
					r, err := water.Run(waterCfg(o, v.proto, bs, v.splash))
					if err != nil {
						return rt.Breakdown{}, err
					}
					return r.Breakdown, nil
				},
			})
		}
	}
	return out
}

// runPredictError validates the analytical predictor against full
// simulation on every figure 5-7 configuration: one calibration per
// (program, protocol, variant), one simulation per target, one error row
// each. The table is the experiment's CSV payload (and the golden under
// testdata/golden/predict-error.csv).
func runPredictError(o Options) (*Result, error) {
	table, err := FigureErrorTable(o)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "predict-error",
		Title: "Analytical predictor vs full simulation",
		Error: table,
	}
	res.AddNote("mean absolute elapsed-time error %.2f%% over %d figure 5-7 configurations (max %.2f%%)",
		table.MAE(), len(table.Rows), table.MaxErr())
	res.AddNote("rows at the %dB calibration size are exact by construction (the predictor's identity guarantee)", predictCalBS)
	return res, nil
}

// FigureErrorTable builds the predicted-vs-simulated comparison over the
// figure 5-7 sweeps — the structured half of the CI predict-validate gate
// (the other half is the chaos seed band, predict.ChaosBandShifts).
func FigureErrorTable(o Options) (*predict.ErrorTable, error) {
	o = o.withDefaults()
	p := newPredictor()
	table := &predict.ErrorTable{}
	for _, t := range figureTargets() {
		cal, err := t.cal(p, o)
		if err != nil {
			return nil, fmt.Errorf("%s %s: %w", t.experiment, t.label, err)
		}
		pred, err := cal.Predict(predict.Target{BlockSize: t.bs})
		if err != nil {
			return nil, fmt.Errorf("%s %s: %w", t.experiment, t.label, err)
		}
		bd, err := t.sim(o)
		if err != nil {
			return nil, fmt.Errorf("%s %s: simulating: %w", t.experiment, t.label, err)
		}
		table.Add(t.experiment, t.label, t.bs, pred.ElapsedNS, int64(bd.Elapsed))
	}
	return table, nil
}

// SweepBench is the predictor's headline performance artifact: the wall
// clock of answering a large parameter sweep analytically versus
// simulating every configuration (BENCH_kernel.json predict_sweep).
type SweepBench struct {
	// Configs is the number of distinct (block size, network, node count)
	// targets predicted.
	Configs int `json:"configs"`
	// CalibrationMS is the one-time cost: the recorded calibration
	// simulation plus trace distillation.
	CalibrationMS float64 `json:"calibration_ms"`
	// PredictTotalMS is the wall clock of predicting every target.
	PredictTotalMS float64 `json:"predict_total_ms"`
	// SimPerConfigMS is one measured full simulation of an extrapolated
	// configuration — the per-config price the predictor avoids.
	SimPerConfigMS float64 `json:"sim_per_config_ms"`
	// SweepSpeedup is (Configs × SimPerConfigMS) / PredictTotalMS: how
	// much faster the sweep itself runs once calibrated.
	SweepSpeedup float64 `json:"sweep_speedup"`
	// AmortizedSpeedup charges the calibration to the sweep:
	// (Configs × SimPerConfigMS) / (CalibrationMS + PredictTotalMS).
	AmortizedSpeedup float64 `json:"amortized_speedup"`
}

// PredictSweepBench calibrates once (Adaptive, stache) and times a
// configs-point sweep over block sizes × network presets × node counts,
// against the measured cost of one full simulation per configuration.
func PredictSweepBench(o Options, configs int) (*SweepBench, error) {
	o = o.withDefaults()
	p := newPredictor()
	start := time.Now()
	cal, err := p.adaptive(o, rt.ProtoStache)
	if err != nil {
		return nil, err
	}
	calMS := float64(time.Since(start).Nanoseconds()) / 1e6

	start = time.Now()
	if _, err := adaptive.Run(adaptiveCfg(o, rt.ProtoStache, 2*predictCalBS)); err != nil {
		return nil, err
	}
	simMS := float64(time.Since(start).Nanoseconds()) / 1e6

	var nets []*network.Params
	for _, name := range []string{"cm5", "now", "hwdsm", "cluster:4x8"} {
		np, err := network.Preset(name)
		if err != nil {
			return nil, err
		}
		nets = append(nets, np)
	}

	done := 0
	start = time.Now()
sweep:
	for n := 2; ; n++ {
		for _, np := range nets {
			for k := 0; k <= predict.MaxShift; k++ {
				if done >= configs {
					break sweep
				}
				t := predict.Target{BlockSize: predictCalBS << k, Net: np, Nodes: n}
				if _, err := cal.Predict(t); err != nil {
					return nil, fmt.Errorf("sweep config %+v: %w", t, err)
				}
				done++
			}
		}
	}
	predMS := float64(time.Since(start).Nanoseconds()) / 1e6

	total := float64(configs) * simMS
	return &SweepBench{
		Configs:          configs,
		CalibrationMS:    calMS,
		PredictTotalMS:   predMS,
		SimPerConfigMS:   simMS,
		SweepSpeedup:     total / predMS,
		AmortizedSpeedup: total / (calMS + predMS),
	}, nil
}

// PredictValidation builds the combined error table the CI
// predict-validate job gates on: every figure 5-7 configuration plus a
// chaos seed band at the 2x block-size extrapolation (shift 1). Wider
// chaos extrapolations are validated separately with a looser bound
// (predict.ChaosBand; DESIGN.md §13).
func PredictValidation(o Options, seeds int) (*predict.ErrorTable, error) {
	table, err := FigureErrorTable(o)
	if err != nil {
		return nil, err
	}
	band, err := predict.ChaosBandShifts(seeds, []int{1})
	if err != nil {
		return nil, err
	}
	table.Rows = append(table.Rows, band.Rows...)
	return table, nil
}
