package harness

import (
	"bytes"
	"strings"
	"testing"
)

func runExp(t *testing.T, id string) *Result {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	res, err := RunExperiment(e, Options{Scale: Quick})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"ablate-coalesce", "ablate-conflicts", "ablate-flush",
		"figure4", "figure5", "figure6", "figure7", "inspector", "platforms",
		"predict-error", "scale", "sweep", "table1"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("experiment %d = %q, want %q", i, e.ID, want[i])
		}
		if e.Paper == "" || e.Title == "" {
			t.Fatalf("experiment %q missing metadata", e.ID)
		}
	}
}

func TestTable1(t *testing.T) {
	res := runExp(t, "table1")
	joined := strings.Join(res.Notes, "\n")
	for _, want := range []string{"128x128 mesh, 100 iterations", "16384 bodies", "512 molecules"} {
		if !strings.Contains(joined, want) {
			t.Errorf("table1 missing %q", want)
		}
	}
}

func TestFigure4(t *testing.T) {
	res := runExp(t, "figure4")
	joined := strings.Join(res.Notes, "\n")
	for _, want := range []string{"4 pre-send directives", "hoisted out of loop", "Non-Home"} {
		if !strings.Contains(joined, want) {
			t.Errorf("figure4 report missing %q", want)
		}
	}
}

// TestFigure5Claims is the Adaptive acceptance test: the paper's shape
// must hold at quick scale.
func TestFigure5Claims(t *testing.T) {
	res := runExp(t, "figure5")
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	bestOpt, _ := res.Best("C** opt")
	bestUnopt, _ := res.Best("C** unopt")
	speedup := float64(bestUnopt.Total()) / float64(bestOpt.Total())
	if speedup < 1.15 {
		t.Fatalf("best opt speedup = %.2f, want >= 1.15 (paper: 1.56)", speedup)
	}
	o32, _ := res.Find("C** opt (32)")
	u32, _ := res.Find("C** unopt (32)")
	if o32.B.RemoteWait*3 >= u32.B.RemoteWait {
		t.Fatalf("32B pre-send did not cut remote wait enough: %v vs %v", o32.B.RemoteWait, u32.B.RemoteWait)
	}
	if o32.B.Sync >= u32.B.Sync {
		t.Fatalf("pre-send should reduce synchronization (paper: load-imbalance effect): %v vs %v", o32.B.Sync, u32.B.Sync)
	}
	u256, _ := res.Find("C** unopt (256)")
	if u256.Total() >= u32.Total() {
		t.Fatal("larger blocks should help the unoptimized version")
	}
}

// TestFigure6Claims is the Barnes acceptance test.
func TestFigure6Claims(t *testing.T) {
	res := runExp(t, "figure6")
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	o32, _ := res.Find("C** opt (32)")
	u32, _ := res.Find("C** unopt (32)")
	u1024, _ := res.Find("C** unopt (1024)")
	o1024, _ := res.Find("C** opt (1024)")
	spmd, _ := res.Find("SPMD write-update (1024)")
	if o32.B.RemoteWait >= u32.B.RemoteWait {
		t.Fatal("pre-send did not reduce remote wait at 32B")
	}
	if u1024.Total() >= o32.Total() {
		t.Fatalf("paper crossover missing: unopt(1024)=%v should beat opt(32)=%v", u1024.Total(), o32.Total())
	}
	// The two 1024B versions and SPMD are comparable (within 15%).
	for _, pair := range [][2]Row{{u1024, o1024}, {u1024, spmd}} {
		r := float64(pair[0].Total()) / float64(pair[1].Total())
		if r < 0.85 || r > 1.18 {
			t.Fatalf("%q vs %q not comparable: ratio %.2f", pair[0].Label, pair[1].Label, r)
		}
	}
}

// TestFigure7Claims is the Water acceptance test.
func TestFigure7Claims(t *testing.T) {
	res := runExp(t, "figure7")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	opt, _ := res.Best("C** opt")
	unopt, _ := res.Best("C** unopt")
	splash, _ := res.Best("Splash")
	r1 := float64(unopt.Total()) / float64(opt.Total())
	if r1 < 1.0 || r1 > 1.35 {
		t.Fatalf("opt vs unopt ratio = %.2f, want small improvement (paper: 1.05)", r1)
	}
	r2 := float64(splash.Total()) / float64(opt.Total())
	if r2 < 1.05 {
		t.Fatalf("opt vs splash ratio = %.2f, want >= 1.05 (paper: 1.2)", r2)
	}
	if splash.Total() <= unopt.Total() {
		t.Fatal("Splash should be the slowest version")
	}
}

func TestSweepShape(t *testing.T) {
	res := runExp(t, "sweep")
	// At every block size, opt's remote wait must be below unopt's, and
	// the opt-vs-unopt total gap must shrink as blocks grow.
	gaps := map[int]float64{}
	for _, bs := range []int{32, 64, 128, 256, 1024} {
		var u, o Row
		for _, r := range res.Rows {
			if r.BlockSize != bs {
				continue
			}
			if strings.Contains(r.Label, "unopt") {
				u = r
			} else {
				o = r
			}
		}
		if o.B.RemoteWait >= u.B.RemoteWait {
			t.Fatalf("bs=%d: opt remote wait %v >= unopt %v", bs, o.B.RemoteWait, u.B.RemoteWait)
		}
		gaps[bs] = float64(u.Total()) - float64(o.Total())
	}
	if gaps[1024] >= gaps[32] {
		t.Fatalf("gap should shrink with block size: 32B=%.0f 1024B=%.0f", gaps[32], gaps[1024])
	}
}

func TestAblations(t *testing.T) {
	co := runExp(t, "ablate-coalesce")
	if co.Rows[0].B.Presend >= co.Rows[1].B.Presend {
		t.Fatalf("coalescing should cut pre-send time: on=%v off=%v",
			co.Rows[0].B.Presend, co.Rows[1].B.Presend)
	}
	if co.Rows[0].C.BulkMsgs == 0 || co.Rows[1].C.BulkMsgs != 0 {
		t.Fatal("bulk message counters inconsistent")
	}

	ac := runExp(t, "ablate-conflicts")
	if ac.Rows[0].C.Conflicts == 0 {
		t.Fatal("expected conflict entries at 256B blocks")
	}

	fl := runExp(t, "ablate-flush")
	never := fl.Rows[0]
	flush := fl.Rows[1]
	policy := fl.Rows[2]
	if flush.C.PresendsSent >= never.C.PresendsSent {
		t.Fatalf("flushing should reduce pre-sends under a rotating pattern: %d vs %d",
			flush.C.PresendsSent, never.C.PresendsSent)
	}
	if policy.C.PresendsSent >= never.C.PresendsSent {
		t.Fatalf("protocol flush policy should reduce pre-sends: %d vs %d",
			policy.C.PresendsSent, never.C.PresendsSent)
	}
}

func TestInspectorComparison(t *testing.T) {
	res := runExp(t, "inspector")
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Static mesh: both optimizations beat plain.
	plainS, _ := res.Find("static mesh, plain")
	predS, _ := res.Find("static mesh, predictive")
	ieS, _ := res.Find("static mesh, inspector")
	if predS.Total() >= plainS.Total() || ieS.Total() >= plainS.Total() {
		t.Fatal("optimizations did not beat plain on the static mesh")
	}
	// Adaptive mesh: the predictive protocol keeps its advantage over
	// plain with no application-level machinery, and stays competitive
	// with the inspector-executor (within 35%), whose re-inspection
	// compute grows with mesh churn while the static run inspects once.
	plainA, _ := res.Find("adaptive mesh, plain")
	predA, _ := res.Find("adaptive mesh, predictive")
	ieA, _ := res.Find("adaptive mesh, inspector")
	if predA.Total() >= plainA.Total() {
		t.Fatal("predictive lost to plain under churn")
	}
	if r := float64(predA.Total()) / float64(ieA.Total()); r > 1.35 {
		t.Fatalf("predictive %.2fx slower than inspector-executor under churn", r)
	}
	if ieA.B.Compute <= ieS.B.Compute {
		t.Fatalf("re-inspection compute missing: adaptive %v <= static %v",
			ieA.B.Compute, ieS.B.Compute)
	}
}

// TestPlatformTradeoff reproduces the §5.4 discussion: the predictive
// protocol's benefit grows with remote latency and nearly vanishes on a
// hardware-assisted DSM.
func TestPlatformTradeoff(t *testing.T) {
	res := runExp(t, "platforms")
	speedup := func(tag string) float64 {
		u, okU := res.Find(tag + " unopt")
		o, okO := res.Find(tag + " opt")
		if !okU || !okO {
			t.Fatalf("missing rows for %s", tag)
		}
		return float64(u.Total()) / float64(o.Total())
	}
	now, cm5, hw := speedup("NOW"), speedup("CM-5"), speedup("hw-DSM")
	if !(now > cm5 && cm5 > hw) {
		t.Fatalf("speedups not ordered by latency: NOW=%.2f CM-5=%.2f hw=%.2f", now, cm5, hw)
	}
	if hw > 1.10 {
		t.Fatalf("hardware DSM speedup %.2f; should be marginal (paper §5.4)", hw)
	}
	if now < 1.2 {
		t.Fatalf("NOW speedup %.2f; should be substantial", now)
	}
}

func TestRenderAndCSV(t *testing.T) {
	res := runExp(t, "figure7")
	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	for _, want := range []string{"figure7", "remote-wait", "compute+synch", "|"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q\n%s", want, out)
		}
	}
	buf.Reset()
	res.CSV(&buf)
	if lines := strings.Count(buf.String(), "\n"); lines != 4 {
		t.Fatalf("csv lines = %d, want 4 (header + 3 rows)", lines)
	}
}
