package causal_test

import (
	"testing"

	"presto/internal/causal"
	"presto/internal/sim"
)

// TestPathSendRecv checks the walk on the simplest cross-proc chain:
// a computes, sends to b, b computes — the path must tile [0, end] as
// run(a) / deliver / run(b), and attribution must account every
// nanosecond of both timelines.
func TestPathSendRecv(t *testing.T) {
	k := sim.NewKernel()
	k.EnableRecorder(0)
	var slotA, slotB sim.AttrSlot
	var b *sim.Proc
	a := k.Spawn("a", func(p *sim.Proc) {
		p.Advance(100)
		p.Send(b, "x", 50)
		p.Advance(10)
	})
	b = k.Spawn("b", func(p *sim.Proc) {
		p.Recv()
		p.Advance(20)
	})
	a.SetAttrSlot(&slotA)
	b.SetAttrSlot(&slotB)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := b.Now(); got != 170 {
		t.Fatalf("b finished at %v, want 170", got)
	}

	path, err := causal.ComputePath(k, b.ID(), b.Now())
	if err != nil {
		t.Fatal(err)
	}
	if path.Length != path.End || path.Length != 170 {
		t.Fatalf("path length %v end %v, want 170", path.Length, path.End)
	}
	want := []causal.Segment{
		{Proc: a.ID(), Name: "a", Kind: "run", Start: 0, End: 100},
		{Proc: a.ID(), Name: "a", Kind: "deliver", Start: 100, End: 150},
		{Proc: b.ID(), Name: "b", Kind: "run", Start: 150, End: 170},
	}
	if len(path.Segments) != len(want) {
		t.Fatalf("got %d segments %+v, want %d", len(path.Segments), path.Segments, len(want))
	}
	for i, s := range path.Segments {
		if s != want[i] {
			t.Errorf("segment %d = %+v, want %+v", i, s, want[i])
		}
	}

	// Attribution invariant: bucket sums equal each proc's final clock.
	if got := slotA.Sum(); got != a.Now() {
		t.Errorf("a buckets sum %v != clock %v", got, a.Now())
	}
	if got := slotB.Sum(); got != b.Now() {
		t.Errorf("b buckets sum %v != clock %v", got, b.Now())
	}
	// b: idle until a posted (100), wire transit (50), compute (20).
	if slotB[sim.CatIdle] != 100 || slotB[sim.CatTransit] != 50 || slotB[sim.CatCompute] != 20 {
		t.Errorf("b buckets = %+v, want idle=100 transit=50 compute=20", slotB)
	}
}

// TestPathTimerAndBarrier checks the two kernel-generated edge kinds:
// a timer wake and a barrier release.
func TestPathTimerAndBarrier(t *testing.T) {
	k := sim.NewKernel()
	k.EnableRecorder(0)
	bar := k.NewBarrier(2, 10)
	fast := k.Spawn("fast", func(p *sim.Proc) {
		p.Advance(5)
		p.Wait(bar)
	})
	slow := k.Spawn("slow", func(p *sim.Proc) {
		p.Sleep(100)
		p.Wait(bar)
		p.Advance(7)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// slow: sleeps to 100, joins; barrier releases at 100+10.
	if got := slow.Now(); got != 117 {
		t.Fatalf("slow finished at %v, want 117", got)
	}
	path, err := causal.ComputePath(k, slow.ID(), slow.Now())
	if err != nil {
		t.Fatal(err)
	}
	if path.Length != 117 {
		t.Fatalf("path length %v, want 117", path.Length)
	}
	byKind := path.ByKind()
	if byKind["timer"] != 100 {
		t.Errorf("timer time on path = %v, want 100 (%+v)", byKind["timer"], path.Segments)
	}
	if byKind["barrier"] != 10 {
		t.Errorf("barrier time on path = %v, want 10 (%+v)", byKind["barrier"], path.Segments)
	}
	// fast's path would instead show a barrier wait: check its
	// attribution via a quick recompute from fast's end.
	if fast.Now() != 110 {
		t.Errorf("fast finished at %v, want 110", fast.Now())
	}
}

// TestPathNoRecorder checks the error path.
func TestPathNoRecorder(t *testing.T) {
	k := sim.NewKernel()
	k.Spawn("a", func(p *sim.Proc) { p.Advance(1) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := causal.ComputePath(k, 0, 1); err == nil {
		t.Fatal("ComputePath without a recorder should error")
	}
}

// TestValidateCatchesBadSums checks that Validate rejects a profile
// whose buckets do not sum to the stated totals.
func TestValidateCatchesBadSums(t *testing.T) {
	p := &causal.Profile{
		Schema: causal.SchemaVersion,
		Engine: "serial",
		PerNode: []causal.NodeProfile{{
			Node:    0,
			TotalNS: 100,
			Buckets: causal.Buckets{ComputeNS: 90},
			Phases:  []causal.PhaseAttr{{Phase: -1, Buckets: causal.Buckets{ComputeNS: 90}}},
		}},
	}
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted buckets (90) != total (100)")
	}
	p.PerNode[0].Buckets.ComputeNS = 100
	p.PerNode[0].Phases[0].Buckets.ComputeNS = 100
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate rejected a consistent profile: %v", err)
	}
	p.Schema = "bogus"
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted a wrong schema version")
	}
}
