// Package causal turns the sim kernel's flight-recorder edges into a
// critical path and an exact time-attribution profile.
//
// The flight recorder (sim.Recorder) holds one Edge per binding wake —
// a wake that advanced the woken Proc's clock, meaning the Proc was
// waiting and the wake was the constraint. The critical path of the
// execution is recovered by a backward walk from the last-finishing
// Proc: at any point (proc, t) the proc's latest binding edge at or
// before t is the wake that started the run leading to t, so the
// interval between them is on-processor execution, the edge's
// [Posted, At] interval is the waking mechanism (wire transit, barrier
// cost, timer), and the walk continues from the waker at its posting
// time. Segments therefore tile [0, end] exactly: a complete walk's
// length equals the end-to-end simulated time by construction, and any
// gap or overlap indicates recorder corruption (reported as an error).
package causal

import (
	"fmt"

	"presto/internal/sim"
)

// Segment is one contiguous critical-path interval.
type Segment struct {
	Proc int    // kernel Proc id (-1 for a cross-proc edge's convention: never; edges carry the source proc)
	Name string // Proc name ("compute3", "proto1")
	// Kind is "run" for on-processor execution, or the waking edge kind
	// ("deliver" = wire transit, "barrier" = release cost, "timer").
	Kind  string
	Start sim.Time
	End   sim.Time
}

// Dur returns the segment's duration.
func (s Segment) Dur() sim.Time { return s.End - s.Start }

// Path is a computed critical path.
type Path struct {
	// Segments tile [Segments[0].Start, End] in forward time order.
	Segments []Segment
	// End is the walk's origin (the last Proc's finish time); Length is
	// End minus the earliest reached time — equal to End when complete.
	End    sim.Time
	Length sim.Time
	// Truncated reports that the recorder ring evicted edges, so the
	// walk may have terminated early (its tail run segment then absorbs
	// the unexplained prefix).
	Truncated bool
}

// walkCap bounds the walk's steps against pathological edge data; a real
// recorder cannot cycle (kernel sequence order is acyclic), so hitting
// the cap indicates corruption.
const walkCap = 64

// ComputePath walks the critical path backward from Proc endProc at
// time end, using the kernel's flight recorder. The kernel must have
// finished running with the recorder enabled.
func ComputePath(k *sim.Kernel, endProc int, end sim.Time) (Path, error) {
	rec := k.Recorder()
	if rec == nil {
		return Path{}, fmt.Errorf("causal: kernel has no flight recorder")
	}
	procs := k.Procs()
	name := func(id int) string {
		if id >= 0 && id < len(procs) {
			return procs[id].Name()
		}
		return fmt.Sprintf("proc%d", id)
	}
	// Partition the ring by destination. Ring order is commit order, so
	// each Proc's slice is already sorted by At (a binding edge strictly
	// advances its Proc's monotone clock).
	byDst := make([][]sim.Edge, len(procs))
	for _, e := range rec.Edges() {
		byDst[e.Dst] = append(byDst[e.Dst], e)
	}

	p := Path{End: end, Truncated: rec.Truncated()}
	cur, t := endProc, end
	maxSteps := 2*len(rec.Edges()) + walkCap
	for steps := 0; ; steps++ {
		if steps > maxSteps {
			return p, fmt.Errorf("causal: critical-path walk did not terminate (cycle in edge data)")
		}
		if cur < 0 || cur >= len(procs) {
			return p, fmt.Errorf("causal: edge references unknown proc %d", cur)
		}
		// Latest edge on cur with At <= t.
		edges := byDst[cur]
		lo, hi := 0, len(edges)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if edges[mid].At <= t {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == 0 {
			// No earlier wake: the proc ran from its spawn (time 0) — or
			// from the ring's horizon, if edges were evicted.
			p.Segments = append(p.Segments, Segment{Proc: cur, Name: name(cur), Kind: "run", Start: 0, End: t})
			break
		}
		e := edges[lo-1]
		if e.Posted > e.At {
			return p, fmt.Errorf("causal: edge posted after delivery (%v > %v)", e.Posted, e.At)
		}
		p.Segments = append(p.Segments, Segment{Proc: cur, Name: name(cur), Kind: "run", Start: e.At, End: t})
		src := int(e.Src)
		seg := Segment{Proc: src, Name: name(src), Kind: e.Kind.String(), Start: e.Posted, End: e.At}
		if src < 0 { // kernel-injected wake: nothing further to chase
			seg.Name = "kernel"
			seg.Start = 0
			p.Segments = append(p.Segments, seg)
			break
		}
		p.Segments = append(p.Segments, seg)
		cur, t = src, e.Posted
		if t == 0 {
			break
		}
	}
	// Reverse into forward time order and total the length.
	for i, j := 0, len(p.Segments)-1; i < j; i, j = i+1, j-1 {
		p.Segments[i], p.Segments[j] = p.Segments[j], p.Segments[i]
	}
	for _, s := range p.Segments {
		if s.Dur() < 0 {
			return p, fmt.Errorf("causal: negative segment [%v,%v] on %s", s.Start, s.End, s.Name)
		}
		p.Length += s.Dur()
	}
	// Contiguity check: segments must tile [Start0, End] exactly.
	for i := 1; i < len(p.Segments); i++ {
		if p.Segments[i].Start != p.Segments[i-1].End {
			return p, fmt.Errorf("causal: critical path has a gap at %v (%s -> %s)",
				p.Segments[i-1].End, p.Segments[i-1].Name, p.Segments[i].Name)
		}
	}
	return p, nil
}

// ByKind aggregates the path's time per segment kind.
func (p Path) ByKind() map[string]sim.Time {
	out := make(map[string]sim.Time)
	for _, s := range p.Segments {
		out[s.Kind] += s.Dur()
	}
	return out
}

// ByProc aggregates the path's time per Proc name.
func (p Path) ByProc() map[string]sim.Time {
	out := make(map[string]sim.Time)
	for _, s := range p.Segments {
		out[s.Name] += s.Dur()
	}
	return out
}
