package causal

import (
	"fmt"
	"io"
	"sort"

	"presto/internal/sim"
)

// SchemaVersion identifies the profile.json layout. Consumers (the
// future internal/predict) must check it before parsing.
const SchemaVersion = "presto-profile/1"

// Buckets is the exact time-attribution breakdown: every simulated
// nanosecond of a processor's timeline lands in exactly one bucket, so
// Total() equals the processor's final virtual clock (Validate checks
// this invariant).
type Buckets struct {
	ComputeNS   int64 `json:"compute_ns"`
	TransitNS   int64 `json:"transit_ns"`
	OccupancyNS int64 `json:"occupancy_ns"`
	ServiceNS   int64 `json:"service_ns"`
	BarrierNS   int64 `json:"barrier_ns"`
	StallNS     int64 `json:"stall_ns"`
	PresendNS   int64 `json:"presend_ns"`
	IdleNS      int64 `json:"idle_ns"`
}

// FromSlot converts a kernel attribution slot into schema buckets.
func FromSlot(s *sim.AttrSlot) Buckets {
	return Buckets{
		ComputeNS:   int64(s[sim.CatCompute]),
		TransitNS:   int64(s[sim.CatTransit]),
		OccupancyNS: int64(s[sim.CatOccupancy]),
		ServiceNS:   int64(s[sim.CatService]),
		BarrierNS:   int64(s[sim.CatBarrier]),
		StallNS:     int64(s[sim.CatStall]),
		PresendNS:   int64(s[sim.CatPresend]),
		IdleNS:      int64(s[sim.CatIdle]),
	}
}

// Total sums the buckets.
func (b Buckets) Total() int64 {
	return b.ComputeNS + b.TransitNS + b.OccupancyNS + b.ServiceNS +
		b.BarrierNS + b.StallNS + b.PresendNS + b.IdleNS
}

// Add accumulates o into b.
func (b *Buckets) Add(o Buckets) {
	b.ComputeNS += o.ComputeNS
	b.TransitNS += o.TransitNS
	b.OccupancyNS += o.OccupancyNS
	b.ServiceNS += o.ServiceNS
	b.BarrierNS += o.BarrierNS
	b.StallNS += o.StallNS
	b.PresendNS += o.PresendNS
	b.IdleNS += o.IdleNS
}

// each iterates the buckets in schema order with their labels.
func (b Buckets) each(fn func(label string, ns int64)) {
	fn("compute", b.ComputeNS)
	fn("transit", b.TransitNS)
	fn("occupancy", b.OccupancyNS)
	fn("service", b.ServiceNS)
	fn("barrier", b.BarrierNS)
	fn("stall", b.StallNS)
	fn("presend", b.PresendNS)
	fn("idle", b.IdleNS)
}

// PhaseAttr is one compute processor's attribution within one parallel
// phase (-1 collects time outside any phase).
type PhaseAttr struct {
	Phase   int     `json:"phase"`
	Name    string  `json:"name,omitempty"`
	Buckets Buckets `json:"buckets"`
}

// NodeProfile is one node's attribution: the compute processor's full
// timeline (TotalNS, split per phase) and the protocol processor's own
// timeline, reported separately — protocol service overlaps compute-side
// waits, so folding it in would double-count.
type NodeProfile struct {
	Node         int         `json:"node"`
	TotalNS      int64       `json:"total_ns"`
	Buckets      Buckets     `json:"buckets"`
	Phases       []PhaseAttr `json:"phases"`
	ProtoTotalNS int64       `json:"proto_total_ns"`
	Proto        Buckets     `json:"proto"`
}

// SegmentJSON is one critical-path segment in the artifact.
type SegmentJSON struct {
	Proc    string `json:"proc"`
	Kind    string `json:"kind"`
	StartNS int64  `json:"start_ns"`
	EndNS   int64  `json:"end_ns"`
}

// PathProfile condenses the critical path for the artifact: aggregates
// plus the longest segments (the full path can run to thousands of
// segments; TopSegments keeps the artifact bounded).
type PathProfile struct {
	LengthNS    int64            `json:"length_ns"`
	Truncated   bool             `json:"truncated,omitempty"`
	Segments    int              `json:"segments"`
	ByKindNS    map[string]int64 `json:"by_kind_ns"`
	ByProcNS    map[string]int64 `json:"by_proc_ns"`
	TopSegments []SegmentJSON    `json:"top_segments"`
}

// EngineProfile is the parallel engine's flight data. Window counts and
// histograms are deterministic; the *WallNS timers are wall-clock and
// vary run to run (they never feed fingerprints or goldens).
type EngineProfile struct {
	Workers int `json:"workers"`
	// Lanes is the engine's lane count; Lookahead names the window
	// derivation ("pair" or "global").
	Lanes     int    `json:"lanes,omitempty"`
	Lookahead string `json:"lookahead,omitempty"`
	// LookaheadNS is the executed window width: the pair matrix's
	// narrowest row under "pair", the interconnect's global minimum
	// latency under "global".
	LookaheadNS   int64   `json:"lookahead_ns"`
	Windows       int64   `json:"windows"`
	Events        int64   `json:"events"`
	SoloWindows   int64   `json:"solo_windows"`
	MergedWindows int64   `json:"merged_windows"`
	Steals        int64   `json:"steals"`
	LaneHist      []int64 `json:"lane_hist"`
	EventHist     []int64 `json:"event_hist"`
	OpenWallNS    int64   `json:"open_wall_ns"`
	ExecWallNS    int64   `json:"exec_wall_ns"`
	CommitWallNS  int64   `json:"commit_wall_ns"`
}

// Profile is the profile.json artifact (see DESIGN.md §10 for the full
// schema contract).
type Profile struct {
	Schema    string         `json:"schema"`
	App       string         `json:"app,omitempty"`
	Protocol  string         `json:"protocol"`
	Nodes     int            `json:"nodes"`
	BlockSize int            `json:"block_size"`
	Engine    string         `json:"engine"`
	ElapsedNS int64          `json:"elapsed_ns"`
	PerNode   []NodeProfile  `json:"per_node"`
	Path      PathProfile    `json:"critical_path"`
	Flight    *EngineProfile `json:"engine_flight,omitempty"`
}

// TopSegments returns the n longest segments of a path, ties broken by
// start time, converted to the artifact form.
func TopSegments(p Path, n int) []SegmentJSON {
	segs := append([]Segment(nil), p.Segments...)
	sort.Slice(segs, func(i, j int) bool {
		if d1, d2 := segs[i].Dur(), segs[j].Dur(); d1 != d2 {
			return d1 > d2
		}
		return segs[i].Start < segs[j].Start
	})
	if len(segs) > n {
		segs = segs[:n]
	}
	out := make([]SegmentJSON, len(segs))
	for i, s := range segs {
		out[i] = SegmentJSON{Proc: s.Name, Kind: s.Kind, StartNS: int64(s.Start), EndNS: int64(s.End)}
	}
	return out
}

// PathProfileOf condenses a computed path, keeping the top segments.
func PathProfileOf(p Path, top int) PathProfile {
	out := PathProfile{
		LengthNS:    int64(p.Length),
		Truncated:   p.Truncated,
		Segments:    len(p.Segments),
		ByKindNS:    map[string]int64{},
		ByProcNS:    map[string]int64{},
		TopSegments: TopSegments(p, top),
	}
	for k, v := range p.ByKind() {
		out.ByKindNS[k] = int64(v)
	}
	for k, v := range p.ByProc() {
		out.ByProcNS[k] = int64(v)
	}
	return out
}

// Validate checks the profile's internal invariants:
//   - schema version matches
//   - per node, the bucket sum equals the compute processor's total
//     simulated time exactly, and the per-phase buckets sum to the
//     node buckets category by category
//   - the protocol processor's buckets sum to its total
//   - on serial runs, the critical-path length equals the end-to-end
//     elapsed time (unless the recorder ring truncated the walk)
func (p *Profile) Validate() error {
	if p.Schema != SchemaVersion {
		return fmt.Errorf("profile: schema %q, want %q", p.Schema, SchemaVersion)
	}
	for _, n := range p.PerNode {
		if got := n.Buckets.Total(); got != n.TotalNS {
			return fmt.Errorf("profile: node %d buckets sum %d != total %d", n.Node, got, n.TotalNS)
		}
		var phased Buckets
		for _, ph := range n.Phases {
			phased.Add(ph.Buckets)
		}
		if phased != n.Buckets {
			return fmt.Errorf("profile: node %d phase buckets %+v != node buckets %+v", n.Node, phased, n.Buckets)
		}
		if got := n.Proto.Total(); got != n.ProtoTotalNS {
			return fmt.Errorf("profile: node %d proto buckets sum %d != total %d", n.Node, got, n.ProtoTotalNS)
		}
	}
	if p.Engine == "serial" && !p.Path.Truncated && p.Path.LengthNS != p.ElapsedNS {
		return fmt.Errorf("profile: critical-path length %d != elapsed %d", p.Path.LengthNS, p.ElapsedNS)
	}
	return nil
}

// MachineBuckets sums the per-node compute-processor buckets.
func (p *Profile) MachineBuckets() Buckets {
	var b Buckets
	for _, n := range p.PerNode {
		b.Add(n.Buckets)
	}
	return b
}

func pct(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// Render writes the human-readable profile report: machine attribution,
// per-phase table, top critical-path segments, and (parallel runs) the
// engine flight summary.
func (p *Profile) Render(w io.Writer) {
	fmt.Fprintf(w, "causal profile: %s protocol=%s nodes=%d block=%d engine=%s\n",
		orDefault(p.App, "?"), p.Protocol, p.Nodes, p.BlockSize, p.Engine)
	fmt.Fprintf(w, "elapsed %v\n\n", sim.Time(p.ElapsedNS))

	total := p.MachineBuckets()
	grand := total.Total()
	fmt.Fprintf(w, "time attribution (all compute processors, %v):\n", sim.Time(grand))
	total.each(func(label string, ns int64) {
		if ns == 0 {
			return
		}
		fmt.Fprintf(w, "  %-10s %14v  %5.1f%%\n", label, sim.Time(ns), pct(ns, grand))
	})

	// Per-phase table: aggregate each phase over nodes.
	type phaseRow struct {
		phase int
		name  string
		b     Buckets
	}
	agg := map[int]*phaseRow{}
	for _, n := range p.PerNode {
		for _, ph := range n.Phases {
			r := agg[ph.Phase]
			if r == nil {
				r = &phaseRow{phase: ph.Phase, name: ph.Name}
				agg[ph.Phase] = r
			}
			r.b.Add(ph.Buckets)
		}
	}
	rows := make([]*phaseRow, 0, len(agg))
	for _, r := range agg {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].phase < rows[j].phase })
	if len(rows) > 0 {
		fmt.Fprintf(w, "\nper-phase attribution (node-summed ns):\n")
		fmt.Fprintf(w, "  %-16s %12s %12s %12s %12s %12s %12s %12s %12s\n",
			"phase", "compute", "transit", "occupancy", "service", "barrier", "stall", "presend", "idle")
		for _, r := range rows {
			name := r.name
			if name == "" {
				if r.phase < 0 {
					name = "(outside)"
				} else {
					name = fmt.Sprintf("phase %d", r.phase)
				}
			}
			fmt.Fprintf(w, "  %-16s %12d %12d %12d %12d %12d %12d %12d %12d\n",
				name, r.b.ComputeNS, r.b.TransitNS, r.b.OccupancyNS, r.b.ServiceNS,
				r.b.BarrierNS, r.b.StallNS, r.b.PresendNS, r.b.IdleNS)
		}
	}

	fmt.Fprintf(w, "\ncritical path: %v over %d segments", sim.Time(p.Path.LengthNS), p.Path.Segments)
	if p.Path.Truncated {
		fmt.Fprintf(w, " (TRUNCATED: recorder ring wrapped)")
	}
	fmt.Fprintln(w)
	kinds := make([]string, 0, len(p.Path.ByKindNS))
	for k := range p.Path.ByKindNS {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(w, "  on %-8s %14v  %5.1f%%\n", k, sim.Time(p.Path.ByKindNS[k]), pct(p.Path.ByKindNS[k], p.Path.LengthNS))
	}
	if len(p.Path.TopSegments) > 0 {
		fmt.Fprintf(w, "  top segments:\n")
		n := len(p.Path.TopSegments)
		if n > 10 {
			n = 10
		}
		for _, s := range p.Path.TopSegments[:n] {
			fmt.Fprintf(w, "    %-10s %-8s %14v  [%v .. %v]\n",
				s.Proc, s.Kind, sim.Time(s.EndNS-s.StartNS), sim.Time(s.StartNS), sim.Time(s.EndNS))
		}
	}

	if f := p.Flight; f != nil {
		fmt.Fprintf(w, "\nparallel engine: %d windows, %d events (%.1f events/window), %d solo-lane windows (%.1f%%)\n",
			f.Windows, f.Events, avg(f.Events, f.Windows), f.SoloWindows, pct(f.SoloWindows, f.Windows))
		if f.Lanes > 0 {
			fmt.Fprintf(w, "  %d lanes, %s lookahead %v; %d merged-commit windows (%.1f%%), %d steals\n",
				f.Lanes, orDefault(f.Lookahead, "global"), sim.Time(f.LookaheadNS),
				f.MergedWindows, pct(f.MergedWindows, f.Windows), f.Steals)
		}
		fmt.Fprintf(w, "  active lanes per window:")
		for i, c := range f.LaneHist {
			if c != 0 {
				fmt.Fprintf(w, " %d:%d", i+1, c)
			}
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "  wall clock: open %v, exec %v, commit %v\n",
			sim.Time(f.OpenWallNS), sim.Time(f.ExecWallNS), sim.Time(f.CommitWallNS))
	}
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

func avg(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
