// Package metrics is the simulator's metrics registry: typed counters,
// virtual-time timers and power-of-two histograms that protocol and
// runtime code update on hot paths without allocating. Instruments are
// registered once (at machine construction) and updated through cached
// pointers; a Snapshot renders every instrument in deterministic (sorted)
// order, so two runs of the same configuration produce byte-identical
// exports — metrics double as a correctness oracle in tests.
//
// The simulation kernel serializes all Proc goroutines (handing control
// through channels, which establishes happens-before edges), so the
// instruments deliberately use plain fields rather than atomics.
package metrics

import (
	"encoding/json"
	"io"
	"math/bits"
	"sort"

	"presto/internal/sim"
)

// Counter is a monotonically updated event count.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n int64) { c.v += n }

// Set overwrites the value (used to publish externally tracked totals,
// e.g. kernel statistics, into a registry at snapshot time).
func (c *Counter) Set(n int64) { c.v = n }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Timer accumulates virtual-time durations.
type Timer struct {
	total sim.Time
	n     int64
}

// Observe adds one duration.
func (t *Timer) Observe(d sim.Time) {
	t.total += d
	t.n++
}

// Total returns the accumulated virtual time.
func (t *Timer) Total() sim.Time { return t.total }

// Count returns the number of observations.
func (t *Timer) Count() int64 { return t.n }

// Mean returns the mean observed duration (0 when empty).
func (t *Timer) Mean() sim.Time {
	if t.n == 0 {
		return 0
	}
	return t.total / sim.Time(t.n)
}

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts values v with bits.Len64(v) == i, i.e. bucket 0 holds v == 0 and
// bucket i>0 holds v in [2^(i-1), 2^i).
const histBuckets = 65

// Histogram is a power-of-two histogram of non-negative int64 samples
// (message sizes in bytes, fault-to-grant latencies in nanoseconds).
// Observing is allocation-free: the bucket index is the sample's bit
// length.
type Histogram struct {
	buckets [histBuckets]int64
	n       int64
	sum     int64
	max     int64
}

// Observe records one sample. Negative samples clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.n }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Max returns the largest sample seen.
func (h *Histogram) Max() int64 { return h.max }

// Bucket returns the count of bucket i (see histBuckets).
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i] }

// Quantile estimates the q-th quantile (q in [0,1]) as the inclusive
// upper bound of the first bucket whose cumulative count reaches
// ceil(q*n). Power-of-two buckets make this an upper estimate within 2x
// of the true value — good enough for p50/p99 latency reporting. Returns
// 0 for an empty histogram; the top bucket clamps to Max.
func (h *Histogram) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	want := int64(q * float64(h.n))
	if float64(want) < q*float64(h.n) || want == 0 {
		want++
	}
	var cum int64
	for i, c := range h.buckets {
		cum += c
		if cum >= want {
			var le int64
			if i >= 63 {
				le = int64(^uint64(0) >> 1)
			} else {
				le = int64(1)<<uint(i) - 1
			}
			if le > h.max {
				le = h.max
			}
			return le
		}
	}
	return h.max
}

// nonEmpty returns the dense [lo,hi) bucket range holding all samples.
func (h *Histogram) nonEmpty() (lo, hi int) {
	lo, hi = -1, 0
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		if lo < 0 {
			lo = i
		}
		hi = i + 1
	}
	if lo < 0 {
		lo = 0
	}
	return lo, hi
}

// Registry owns named instruments. Lookup methods get-or-create, so
// instruments can be declared wherever they are first wired; callers must
// cache the returned pointer rather than re-looking-up on hot paths.
type Registry struct {
	counters map[string]*Counter
	timers   map[string]*Timer
	hists    map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		timers:   make(map[string]*Timer),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if absent.
func (r *Registry) Counter(name string) *Counter {
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Timer returns the named timer, creating it if absent.
func (r *Registry) Timer(name string) *Timer {
	t := r.timers[name]
	if t == nil {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Histogram returns the named histogram, creating it if absent.
func (r *Registry) Histogram(name string) *Histogram {
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// TimerValue is one timer in a snapshot.
type TimerValue struct {
	Name    string `json:"name"`
	TotalNS int64  `json:"total_ns"`
	Count   int64  `json:"count"`
}

// HistogramBucket is one non-empty power-of-two bucket: Le is the
// bucket's inclusive upper bound (2^i - 1).
type HistogramBucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramValue is one histogram in a snapshot.
type HistogramValue struct {
	Name    string            `json:"name"`
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Max     int64             `json:"max"`
	Buckets []HistogramBucket `json:"buckets"`
}

// Snapshot is a deterministic (name-sorted) rendering of a registry.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Timers     []TimerValue     `json:"timers,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
}

// Snapshot renders the registry. Zero-valued counters are kept (the
// instrument set is part of the oracle); histogram buckets are trimmed to
// the dense non-empty range.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: c.v})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	for name, t := range r.timers {
		s.Timers = append(s.Timers, TimerValue{Name: name, TotalNS: int64(t.total), Count: t.n})
	}
	sort.Slice(s.Timers, func(i, j int) bool { return s.Timers[i].Name < s.Timers[j].Name })
	for name, h := range r.hists {
		hv := HistogramValue{Name: name, Count: h.n, Sum: h.sum, Max: h.max}
		lo, hi := h.nonEmpty()
		for i := lo; i < hi; i++ {
			var le int64
			if i >= 63 {
				le = int64(^uint64(0) >> 1) // MaxInt64
			} else {
				le = int64(1)<<uint(i) - 1
			}
			hv.Buckets = append(hv.Buckets, HistogramBucket{Le: le, Count: h.buckets[i]})
		}
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// WriteJSON renders the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Counter returns the value of the named counter in the snapshot (0 if
// absent).
func (s *Snapshot) Counter(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// PhaseStats accumulates one node's metrics for one compiler-identified
// parallel phase. The runtime establishes the current phase at each phase
// directive; the substrate attributes faults, wait time and pre-send
// consumption to it through a cached pointer (no lookups on hot paths).
type PhaseStats struct {
	Phase int   `json:"phase"`
	Iters int64 `json:"iters"`

	ComputeNS    int64 `json:"compute_ns"`
	RemoteWaitNS int64 `json:"remote_wait_ns"`
	PresendNS    int64 `json:"presend_ns"`
	SyncNS       int64 `json:"sync_ns"`

	ReadFaults  int64 `json:"read_faults"`
	WriteFaults int64 `json:"write_faults"`
	PresendsIn  int64 `json:"presends_in"`
	PresendHits int64 `json:"presend_hits"`
}

// Faults returns the phase's total fault count.
func (p *PhaseStats) Faults() int64 { return p.ReadFaults + p.WriteFaults }

// Coverage is the fraction of would-be faults averted by pre-sends:
// hits / (hits + faults). Zero when the phase saw no accesses of either
// kind.
func (p *PhaseStats) Coverage() float64 {
	den := p.PresendHits + p.Faults()
	if den == 0 {
		return 0
	}
	return float64(p.PresendHits) / float64(den)
}

// Accuracy is the fraction of pre-sent blocks actually consumed:
// hits / presends-received. Zero when nothing was pre-sent.
func (p *PhaseStats) Accuracy() float64 {
	if p.PresendsIn == 0 {
		return 0
	}
	return float64(p.PresendHits) / float64(p.PresendsIn)
}

// ResetHits zeroes the schedule-hit counters (pre-sends received and
// consumed), e.g. when the application flushes its communication
// schedules and wants hit rates measured from the rebuild onward.
func (p *PhaseStats) ResetHits() {
	p.PresendsIn = 0
	p.PresendHits = 0
}

// PhaseSet holds one node's per-phase stats. The zero value is ready to
// use.
type PhaseSet struct {
	m map[int]*PhaseStats
}

// Phase returns the stats for phase id, creating them if absent.
func (s *PhaseSet) Phase(id int) *PhaseStats {
	if s.m == nil {
		s.m = make(map[int]*PhaseStats)
	}
	p := s.m[id]
	if p == nil {
		p = &PhaseStats{Phase: id}
		s.m[id] = p
	}
	return p
}

// Lookup returns the stats for phase id, or nil.
func (s *PhaseSet) Lookup(id int) *PhaseStats { return s.m[id] }

// All returns every phase's stats sorted by phase ID.
func (s *PhaseSet) All() []*PhaseStats {
	out := make([]*PhaseStats, 0, len(s.m))
	for _, p := range s.m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Phase < out[j].Phase })
	return out
}
