package metrics

import (
	"bytes"
	"math"
	"testing"

	"presto/internal/sim"
)

func TestCounter(t *testing.T) {
	r := New()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("value = %d", c.Value())
	}
	if r.Counter("x") != c {
		t.Fatal("re-lookup returned a different counter")
	}
	c.Set(9)
	if c.Value() != 9 {
		t.Fatalf("after Set, value = %d", c.Value())
	}
}

func TestTimer(t *testing.T) {
	var tm Timer
	tm.Observe(10 * sim.Microsecond)
	tm.Observe(30 * sim.Microsecond)
	if tm.Count() != 2 || tm.Total() != 40*sim.Microsecond || tm.Mean() != 20*sim.Microsecond {
		t.Fatalf("timer = %+v", tm)
	}
	var empty Timer
	if empty.Mean() != 0 {
		t.Fatal("empty timer mean != 0")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// Bucket i holds values with bit length i: 0 -> bucket 0, 1 -> 1,
	// 2..3 -> 2, 4..7 -> 3, ...
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 1023, -5} {
		h.Observe(v)
	}
	if h.Count() != 9 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 1023 {
		t.Fatalf("max = %d", h.Max())
	}
	wantBuckets := map[int]int64{0: 2, 1: 1, 2: 2, 3: 2, 4: 1, 10: 1} // -5 clamps to 0
	for i, want := range wantBuckets {
		if got := h.Bucket(i); got != want {
			t.Fatalf("bucket %d = %d, want %d", i, got, want)
		}
	}
}

func TestSnapshotSortedAndDeterministic(t *testing.T) {
	r := New()
	r.Counter("zz").Add(1)
	r.Counter("aa").Add(2)
	r.Timer("t").Observe(5)
	r.Histogram("h").Observe(100)
	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "aa" || s.Counters[1].Name != "zz" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	if s.Counter("aa") != 2 || s.Counter("missing") != 0 {
		t.Fatalf("snapshot lookup failed: %+v", s.Counters)
	}
	var b1, b2 bytes.Buffer
	if err := s.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("two snapshots of the same registry differ")
	}
}

func TestSnapshotHistogramUpperBounds(t *testing.T) {
	r := New()
	h := r.Histogram("lat")
	h.Observe(6) // bucket 3, le 7
	s := r.Snapshot()
	if len(s.Histograms) != 1 || len(s.Histograms[0].Buckets) != 1 {
		t.Fatalf("histograms = %+v", s.Histograms)
	}
	if b := s.Histograms[0].Buckets[0]; b.Le != 7 || b.Count != 1 {
		t.Fatalf("bucket = %+v", b)
	}
}

func TestPhaseStatsRates(t *testing.T) {
	var set PhaseSet
	p := set.Phase(3)
	p.PresendHits = 6
	p.PresendsIn = 8
	p.ReadFaults = 2
	if got := p.Coverage(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("coverage = %v", got)
	}
	if got := p.Accuracy(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("accuracy = %v", got)
	}
	p.ResetHits()
	if p.PresendsIn != 0 || p.PresendHits != 0 {
		t.Fatalf("ResetHits left %+v", p)
	}
	if p.ReadFaults != 2 {
		t.Fatal("ResetHits must not clear fault counts")
	}
	if set.Phase(3) != p {
		t.Fatal("Phase not idempotent")
	}
	if set.Lookup(99) != nil {
		t.Fatal("Lookup of absent phase != nil")
	}
}

func TestPhaseSetAllSorted(t *testing.T) {
	var set PhaseSet
	for _, id := range []int{7, 1, 4} {
		set.Phase(id)
	}
	all := set.All()
	if len(all) != 3 || all[0].Phase != 1 || all[1].Phase != 4 || all[2].Phase != 7 {
		t.Fatalf("All() = %+v", all)
	}
}

func TestEmptyPhaseRates(t *testing.T) {
	var p PhaseStats
	if p.Coverage() != 0 || p.Accuracy() != 0 {
		t.Fatal("empty phase must report zero rates")
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must report 0")
	}

	h.Observe(5) // bucket 3: [4,8), upper bound 7 clamps to max 5
	if got := h.Quantile(0.5); got != 5 {
		t.Fatalf("single-sample p50 = %d, want 5 (bucket bound clamped to max)", got)
	}

	// 99 small samples and one large one: p50/p99 land in the small
	// bucket, only the tail quantile reaches the outlier.
	h = Histogram{}
	for i := 0; i < 99; i++ {
		h.Observe(10) // bucket 4: [8,16), upper bound 15
	}
	h.Observe(1000) // bucket 10: [512,1024), upper bound 1023 clamps to 1000
	if got := h.Quantile(0.5); got != 15 {
		t.Fatalf("p50 = %d, want 15", got)
	}
	if got := h.Quantile(0.99); got != 15 {
		t.Fatalf("p99 = %d, want 15 (99/100 samples are small)", got)
	}
	if got := h.Quantile(1); got != 1000 {
		t.Fatalf("p100 = %d, want 1000", got)
	}

	// Out-of-range q clamps instead of misbehaving.
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Fatal("q outside [0,1] must clamp")
	}
}
