package lang

// Program is one parsed cstar source file.
type Program struct {
	Aggregates []*AggregateDecl
	Funcs      []*FuncDecl
}

// Aggregate returns the aggregate declaration with the given name, or nil.
func (p *Program) Aggregate(name string) *AggregateDecl {
	for _, a := range p.Aggregates {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Func returns the function declaration with the given name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// AggregateDecl declares a data collection type: `aggregate Grid[,] {
// float v; }` (paper Figure 1). Two-dimensional aggregates may name a
// computation distribution — `rowblock` (default) or `tiled` — matching
// the distributions C**'s runtime provided (paper §4.1).
type AggregateDecl struct {
	Pos    Pos
	Name   string
	Dims   int    // 1 or 2
	Dist   string // "", "rowblock" or "tiled"
	Fields []string
}

// FieldIndex returns the index of a field, or -1.
func (a *AggregateDecl) FieldIndex(name string) int {
	for i, f := range a.Fields {
		if f == name {
			return i
		}
	}
	return -1
}

// Param is one function parameter.
type Param struct {
	Pos  Pos
	Name string
	// Type is "float", "int", or an aggregate type name.
	Type string
	// Parallel marks the parallel aggregate parameter (paper Figure 2).
	Parallel bool
}

// FuncDecl declares a function; Parallel functions execute once per
// element of their parallel parameter.
type FuncDecl struct {
	Pos      Pos
	Name     string
	Parallel bool
	Params   []*Param
	Body     *Block
}

// ParallelParam returns the parallel parameter of a parallel function.
func (f *FuncDecl) ParallelParam() *Param {
	for _, p := range f.Params {
		if p.Parallel {
			return p
		}
	}
	return nil
}

// Block is a brace-delimited statement list.
type Block struct {
	Pos   Pos
	Stmts []Stmt
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// LetStmt declares a scalar variable or instantiates an aggregate:
// `let x = 3;` or `let g = Grid[128, 128];`.
type LetStmt struct {
	Pos  Pos
	Name string
	// AggType/AggDims are set for aggregate instantiations.
	AggType string
	AggDims []Expr
	// Value is set for scalar initialization.
	Value Expr
}

// AssignStmt writes to a scalar variable or an aggregate element field.
type AssignStmt struct {
	Pos    Pos
	Target Expr // VarRef, FieldAccess
	Value  Expr
}

// IfStmt is a two-way conditional.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then *Block
	Else *Block // may be nil
}

// ForStmt is a half-open integer range loop: `for i in a..b { }`.
type ForStmt struct {
	Pos      Pos
	Var      string
	From, To Expr
	Body     *Block
}

// ExprStmt evaluates an expression for effect (function calls).
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// ReturnStmt returns from a function (optionally with a value).
type ReturnStmt struct {
	Pos   Pos
	Value Expr // may be nil
}

func (*LetStmt) stmtNode()    {}
func (*AssignStmt) stmtNode() {}
func (*IfStmt) stmtNode()     {}
func (*ForStmt) stmtNode()    {}
func (*ExprStmt) stmtNode()   {}
func (*ReturnStmt) stmtNode() {}

// Expr is an expression node.
type Expr interface {
	exprNode()
	Position() Pos
}

// NumberLit is a numeric literal.
type NumberLit struct {
	Pos   Pos
	Value float64
	Text  string
}

// VarRef names a variable or parameter.
type VarRef struct {
	Pos  Pos
	Name string
}

// PosRef is an element-position pseudo-variable (#0 or #1, paper
// Figure 2).
type PosRef struct {
	Pos Pos
	Dim int // 0 or 1
}

// FieldAccess reads or writes an aggregate element field:
// `g.v` (own element) or `g[i, j].v` / `g[#0+1, #1].v`.
type FieldAccess struct {
	Pos   Pos
	Base  string // aggregate variable or parameter name
	Index []Expr // nil for own-element access
	Field string
}

// BinaryExpr applies an infix operator.
type BinaryExpr struct {
	Pos  Pos
	Op   Kind
	L, R Expr
}

// UnaryExpr applies a prefix operator (-, !).
type UnaryExpr struct {
	Pos Pos
	Op  Kind
	X   Expr
}

// CallExpr invokes a function: parallel calls name an aggregate argument.
type CallExpr struct {
	Pos    Pos
	Callee string
	Args   []Expr
}

// ReduceExpr is a language-level reduction over an aggregate field:
// `reduce(+, g.v)` (paper §1: reductions have high-level support and are
// outside the predictive protocol's scope).
type ReduceExpr struct {
	Pos   Pos
	Op    Kind // Plus or Star or Lt/Gt for min/max
	Base  string
	Field string
}

func (*NumberLit) exprNode()   {}
func (*VarRef) exprNode()      {}
func (*PosRef) exprNode()      {}
func (*FieldAccess) exprNode() {}
func (*BinaryExpr) exprNode()  {}
func (*UnaryExpr) exprNode()   {}
func (*CallExpr) exprNode()    {}
func (*ReduceExpr) exprNode()  {}

// Position implements Expr.
func (e *NumberLit) Position() Pos   { return e.Pos }
func (e *VarRef) Position() Pos      { return e.Pos }
func (e *PosRef) Position() Pos      { return e.Pos }
func (e *FieldAccess) Position() Pos { return e.Pos }
func (e *BinaryExpr) Position() Pos  { return e.Pos }
func (e *UnaryExpr) Position() Pos   { return e.Pos }
func (e *CallExpr) Position() Pos    { return e.Pos }
func (e *ReduceExpr) Position() Pos  { return e.Pos }
