// Package lang implements "cstar", the C**-subset data-parallel language
// this repository's compiler front end analyzes (paper §4.1). C** is a
// large-grain data-parallel language based on C++; cstar keeps its
// analysis-relevant core — Aggregate declarations, parallel functions
// operating element-wise on an aggregate with #0/#1 element positions, and
// a sequential main with loops and parallel-function calls — behind a
// small, unambiguous grammar.
package lang

import "fmt"

// Kind classifies a token.
type Kind uint8

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	NUMBER
	POS // #0 or #1

	// Keywords.
	KwAggregate
	KwParallel
	KwFunc
	KwFloat
	KwLet
	KwFor
	KwIn
	KwIf
	KwElse
	KwReturn
	KwReduce

	// Punctuation and operators.
	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Comma
	Semicolon
	Colon
	Dot
	DotDot
	Assign
	Plus
	Minus
	Star
	Slash
	Percent
	Lt
	Gt
	Le
	Ge
	EqEq
	NotEq
	AndAnd
	OrOr
	Not
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", NUMBER: "number", POS: "#position",
	KwAggregate: "aggregate", KwParallel: "parallel", KwFunc: "func",
	KwFloat: "float", KwLet: "let", KwFor: "for", KwIn: "in", KwIf: "if",
	KwElse: "else", KwReturn: "return", KwReduce: "reduce",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBracket: "[", RBracket: "]", Comma: ",", Semicolon: ";", Colon: ":",
	Dot: ".", DotDot: "..", Assign: "=", Plus: "+", Minus: "-", Star: "*",
	Slash: "/", Percent: "%", Lt: "<", Gt: ">", Le: "<=", Ge: ">=",
	EqEq: "==", NotEq: "!=", AndAnd: "&&", OrOr: "||", Not: "!",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

var keywords = map[string]Kind{
	"aggregate": KwAggregate,
	"parallel":  KwParallel,
	"func":      KwFunc,
	"float":     KwFloat,
	"let":       KwLet,
	"for":       KwFor,
	"in":        KwIn,
	"if":        KwIf,
	"else":      KwElse,
	"return":    KwReturn,
	"reduce":    KwReduce,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexeme.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, NUMBER, POS:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
