package lang

import (
	"fmt"
	"strings"
)

// Format renders a Program back to canonical cstar source.
func Format(p *Program) string {
	var b strings.Builder
	for _, a := range p.Aggregates {
		dims := "[]"
		if a.Dims == 2 {
			dims = "[,]"
		}
		dist := ""
		if a.Dist != "" {
			dist = " " + a.Dist
		}
		fmt.Fprintf(&b, "aggregate %s%s%s {\n", a.Name, dims, dist)
		for _, f := range a.Fields {
			fmt.Fprintf(&b, "  float %s;\n", f)
		}
		b.WriteString("}\n\n")
	}
	for i, f := range p.Funcs {
		if i > 0 {
			b.WriteString("\n")
		}
		if f.Parallel {
			b.WriteString("parallel ")
		}
		fmt.Fprintf(&b, "func %s(", f.Name)
		for j, par := range f.Params {
			if j > 0 {
				b.WriteString(", ")
			}
			if par.Parallel {
				b.WriteString("parallel ")
			}
			fmt.Fprintf(&b, "%s: %s", par.Name, par.Type)
		}
		b.WriteString(") ")
		formatBlock(&b, f.Body, 0)
		b.WriteString("\n")
	}
	return b.String()
}

func formatBlock(b *strings.Builder, blk *Block, depth int) {
	b.WriteString("{\n")
	for _, s := range blk.Stmts {
		formatStmt(b, s, depth+1)
	}
	indent(b, depth)
	b.WriteString("}")
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func formatStmt(b *strings.Builder, s Stmt, depth int) {
	indent(b, depth)
	switch v := s.(type) {
	case *LetStmt:
		if v.AggType != "" {
			dims := make([]string, len(v.AggDims))
			for i, d := range v.AggDims {
				dims[i] = ExprString(d)
			}
			fmt.Fprintf(b, "let %s = %s[%s];\n", v.Name, v.AggType, strings.Join(dims, ", "))
		} else {
			fmt.Fprintf(b, "let %s = %s;\n", v.Name, ExprString(v.Value))
		}
	case *AssignStmt:
		fmt.Fprintf(b, "%s = %s;\n", ExprString(v.Target), ExprString(v.Value))
	case *IfStmt:
		fmt.Fprintf(b, "if %s ", ExprString(v.Cond))
		formatBlock(b, v.Then, depth)
		if v.Else != nil {
			b.WriteString(" else ")
			formatBlock(b, v.Else, depth)
		}
		b.WriteString("\n")
	case *ForStmt:
		fmt.Fprintf(b, "for %s in %s..%s ", v.Var, ExprString(v.From), ExprString(v.To))
		formatBlock(b, v.Body, depth)
		b.WriteString("\n")
	case *ExprStmt:
		fmt.Fprintf(b, "%s;\n", ExprString(v.X))
	case *ReturnStmt:
		if v.Value != nil {
			fmt.Fprintf(b, "return %s;\n", ExprString(v.Value))
		} else {
			b.WriteString("return;\n")
		}
	default:
		fmt.Fprintf(b, "/* unknown stmt %T */\n", s)
	}
}

// ExprString renders one expression.
func ExprString(e Expr) string {
	switch v := e.(type) {
	case *NumberLit:
		if v.Text != "" {
			return v.Text
		}
		return fmt.Sprint(v.Value)
	case *VarRef:
		return v.Name
	case *PosRef:
		return fmt.Sprintf("#%d", v.Dim)
	case *FieldAccess:
		if v.Index == nil {
			return fmt.Sprintf("%s.%s", v.Base, v.Field)
		}
		idx := make([]string, len(v.Index))
		for i, x := range v.Index {
			idx[i] = ExprString(x)
		}
		return fmt.Sprintf("%s[%s].%s", v.Base, strings.Join(idx, ", "), v.Field)
	case *BinaryExpr:
		return fmt.Sprintf("(%s %s %s)", ExprString(v.L), v.Op, ExprString(v.R))
	case *UnaryExpr:
		return fmt.Sprintf("%s%s", v.Op, ExprString(v.X))
	case *CallExpr:
		args := make([]string, len(v.Args))
		for i, a := range v.Args {
			args[i] = ExprString(a)
		}
		return fmt.Sprintf("%s(%s)", v.Callee, strings.Join(args, ", "))
	case *ReduceExpr:
		return fmt.Sprintf("reduce(%s, %s.%s)", v.Op, v.Base, v.Field)
	default:
		return fmt.Sprintf("/*%T*/", e)
	}
}
