package lang

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse drives the cstar front end with arbitrary input: the parser
// must never panic, and any program it accepts must pretty-print to a
// fixed point (Parse ∘ Format idempotent — the printer emits canonical
// source the parser reads back identically).
func FuzzParse(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.cstar"))
	if err != nil {
		f.Fatal(err)
	}
	if len(paths) == 0 {
		f.Fatal("no .cstar seeds under testdata/")
	}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Add(jacobiSrc)
	f.Add("")
	f.Add("func main() { let x = 1; }")
	f.Add("aggregate A[,] { float v; }")
	f.Add("parallel func s(parallel g: A) { g.v = g[#0-1, #1].v; }")
	f.Add("for it in 0..50 { }")
	f.Add("// comment\n#0 #1 a..b <= != &&")

	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		once := Format(p)
		p2, err := Parse(once)
		if err != nil {
			t.Fatalf("formatted output does not re-parse: %v\n--- formatted ---\n%s", err, once)
		}
		twice := Format(p2)
		if once != twice {
			t.Fatalf("Format not idempotent\n--- once ---\n%s\n--- twice ---\n%s", once, twice)
		}
	})
}
