package lang

import (
	"fmt"
	"strconv"
)

// ParseError reports a syntax error.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Parse lexes and parses one cstar source file.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, aggTypes: map[string]int{}}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse parses or panics (tests and examples).
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type parser struct {
	toks []Token
	i    int
	// aggTypes maps declared aggregate names to their dimensionality.
	aggTypes map[string]int
}

func (p *parser) peek() Token { return p.toks[p.i] }
func (p *parser) peekAt(k int) Token {
	j := p.i + k
	if j >= len(p.toks) {
		j = len(p.toks) - 1
	}
	return p.toks[j]
}
func (p *parser) next() Token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) accept(k Kind) (Token, bool) {
	if p.peek().Kind == k {
		return p.next(), true
	}
	return Token{}, false
}

func (p *parser) expect(k Kind) (Token, error) {
	if t, ok := p.accept(k); ok {
		return t, nil
	}
	t := p.peek()
	return Token{}, &ParseError{t.Pos, fmt.Sprintf("expected %s, found %s", k, t)}
}

func (p *parser) program() (*Program, error) {
	prog := &Program{}
	for p.peek().Kind != EOF {
		switch p.peek().Kind {
		case KwAggregate:
			a, err := p.aggregateDecl()
			if err != nil {
				return nil, err
			}
			prog.Aggregates = append(prog.Aggregates, a)
			p.aggTypes[a.Name] = a.Dims
		case KwParallel, KwFunc:
			f, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, f)
		default:
			t := p.peek()
			return nil, &ParseError{t.Pos, fmt.Sprintf("expected declaration, found %s", t)}
		}
	}
	return prog, nil
}

// aggregateDecl := "aggregate" IDENT ("[" "]" | "[" "," "]") "{" ("float" IDENT ";")* "}"
func (p *parser) aggregateDecl() (*AggregateDecl, error) {
	kw, _ := p.expect(KwAggregate)
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LBracket); err != nil {
		return nil, err
	}
	dims := 1
	if _, ok := p.accept(Comma); ok {
		dims = 2
	}
	if _, err := p.expect(RBracket); err != nil {
		return nil, err
	}
	dist := ""
	if p.peek().Kind == IDENT {
		d := p.next()
		switch d.Text {
		case "rowblock", "tiled":
			dist = d.Text
		default:
			return nil, &ParseError{d.Pos, fmt.Sprintf("unknown distribution %q (want rowblock or tiled)", d.Text)}
		}
		if dist == "tiled" && dims != 2 {
			return nil, &ParseError{d.Pos, "tiled distribution requires a 2-D aggregate"}
		}
	}
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}
	a := &AggregateDecl{Pos: kw.Pos, Name: name.Text, Dims: dims, Dist: dist}
	for p.peek().Kind != RBrace {
		if _, err := p.expect(KwFloat); err != nil {
			return nil, err
		}
		f, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		a.Fields = append(a.Fields, f.Text)
	}
	p.next() // RBrace
	if len(a.Fields) == 0 {
		return nil, &ParseError{a.Pos, "aggregate has no fields"}
	}
	return a, nil
}

// funcDecl := "parallel"? "func" IDENT "(" params? ")" block
func (p *parser) funcDecl() (*FuncDecl, error) {
	f := &FuncDecl{}
	if t, ok := p.accept(KwParallel); ok {
		f.Parallel = true
		f.Pos = t.Pos
	}
	t, err := p.expect(KwFunc)
	if err != nil {
		return nil, err
	}
	if !f.Parallel {
		f.Pos = t.Pos
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	f.Name = name.Text
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	for p.peek().Kind != RParen {
		if len(f.Params) > 0 {
			if _, err := p.expect(Comma); err != nil {
				return nil, err
			}
		}
		par := &Param{}
		if t, ok := p.accept(KwParallel); ok {
			par.Parallel = true
			par.Pos = t.Pos
		}
		id, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if !par.Parallel {
			par.Pos = id.Pos
		}
		par.Name = id.Text
		if _, err := p.expect(Colon); err != nil {
			return nil, err
		}
		switch p.peek().Kind {
		case KwFloat:
			p.next()
			par.Type = "float"
		case IDENT:
			ty := p.next()
			if _, ok := p.aggTypes[ty.Text]; !ok && ty.Text != "int" {
				return nil, &ParseError{ty.Pos, fmt.Sprintf("unknown type %q", ty.Text)}
			}
			par.Type = ty.Text
		default:
			return nil, &ParseError{p.peek().Pos, "expected parameter type"}
		}
		f.Params = append(f.Params, par)
	}
	p.next() // RParen
	if f.Parallel {
		if f.ParallelParam() == nil {
			return nil, &ParseError{f.Pos, fmt.Sprintf("parallel function %q has no parallel parameter", f.Name)}
		}
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *parser) block() (*Block, error) {
	lb, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	b := &Block{Pos: lb.Pos}
	for p.peek().Kind != RBrace {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // RBrace
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	switch p.peek().Kind {
	case KwLet:
		return p.letStmt()
	case KwIf:
		return p.ifStmt()
	case KwFor:
		return p.forStmt()
	case KwReturn:
		t := p.next()
		r := &ReturnStmt{Pos: t.Pos}
		if p.peek().Kind != Semicolon {
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			r.Value = v
		}
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return r, nil
	default:
		// Assignment or expression statement.
		pos := p.peek().Pos
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, ok := p.accept(Assign); ok {
			switch x.(type) {
			case *VarRef, *FieldAccess:
			default:
				return nil, &ParseError{pos, "invalid assignment target"}
			}
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(Semicolon); err != nil {
				return nil, err
			}
			return &AssignStmt{Pos: pos, Target: x, Value: v}, nil
		}
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &ExprStmt{Pos: pos, X: x}, nil
	}
}

func (p *parser) letStmt() (Stmt, error) {
	kw := p.next()
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Assign); err != nil {
		return nil, err
	}
	// Aggregate instantiation: `let g = Grid[...dims...];`
	if p.peek().Kind == IDENT {
		if dims, ok := p.aggTypes[p.peek().Text]; ok && p.peekAt(1).Kind == LBracket {
			ty := p.next()
			p.next() // LBracket
			var sizes []Expr
			for k := 0; k < dims; k++ {
				if k > 0 {
					if _, err := p.expect(Comma); err != nil {
						return nil, err
					}
				}
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				sizes = append(sizes, e)
			}
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			if _, err := p.expect(Semicolon); err != nil {
				return nil, err
			}
			return &LetStmt{Pos: kw.Pos, Name: name.Text, AggType: ty.Text, AggDims: sizes}, nil
		}
	}
	v, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	return &LetStmt{Pos: kw.Pos, Name: name.Text, Value: v}, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	kw := p.next()
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Pos: kw.Pos, Cond: cond, Then: then}
	if _, ok := p.accept(KwElse); ok {
		els, err := p.block()
		if err != nil {
			return nil, err
		}
		s.Else = els
	}
	return s, nil
}

func (p *parser) forStmt() (Stmt, error) {
	kw := p.next()
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(KwIn); err != nil {
		return nil, err
	}
	from, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(DotDot); err != nil {
		return nil, err
	}
	to, err := p.expr()
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &ForStmt{Pos: kw.Pos, Var: name.Text, From: from, To: to, Body: body}, nil
}

// Precedence climbing.
var binPrec = map[Kind]int{
	OrOr:   1,
	AndAnd: 2,
	EqEq:   3, NotEq: 3, Lt: 3, Gt: 3, Le: 3, Ge: 3,
	Plus: 4, Minus: 4,
	Star: 5, Slash: 5, Percent: 5,
}

func (p *parser) expr() (Expr, error) { return p.binary(1) }

func (p *parser) binary(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.peek()
		prec, ok := binPrec[op.Kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Pos: op.Pos, Op: op.Kind, L: lhs, R: rhs}
	}
}

func (p *parser) unary() (Expr, error) {
	if t := p.peek(); t.Kind == Minus || t.Kind == Not {
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: t.Pos, Op: t.Kind, X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case NUMBER:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, &ParseError{t.Pos, "bad number literal"}
		}
		return &NumberLit{Pos: t.Pos, Value: v, Text: t.Text}, nil
	case POS:
		p.next()
		dim := 0
		if t.Text == "#1" {
			dim = 1
		}
		return &PosRef{Pos: t.Pos, Dim: dim}, nil
	case LParen:
		p.next()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return x, nil
	case KwReduce:
		p.next()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		op := p.next()
		switch op.Kind {
		case Plus, Star, Lt, Gt:
		default:
			return nil, &ParseError{op.Pos, "reduce operator must be one of + * < >"}
		}
		if _, err := p.expect(Comma); err != nil {
			return nil, err
		}
		base, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Dot); err != nil {
			return nil, err
		}
		field, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return &ReduceExpr{Pos: t.Pos, Op: op.Kind, Base: base.Text, Field: field.Text}, nil
	case IDENT:
		p.next()
		// Call?
		if p.peek().Kind == LParen {
			p.next()
			call := &CallExpr{Pos: t.Pos, Callee: t.Text}
			for p.peek().Kind != RParen {
				if len(call.Args) > 0 {
					if _, err := p.expect(Comma); err != nil {
						return nil, err
					}
				}
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
			}
			p.next() // RParen
			return call, nil
		}
		// Element access: base[indices].field
		if p.peek().Kind == LBracket {
			p.next()
			var idx []Expr
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				idx = append(idx, e)
				if _, ok := p.accept(Comma); !ok {
					break
				}
			}
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			if _, err := p.expect(Dot); err != nil {
				return nil, err
			}
			f, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			return &FieldAccess{Pos: t.Pos, Base: t.Text, Index: idx, Field: f.Text}, nil
		}
		// Own-element field access: base.field
		if p.peek().Kind == Dot {
			p.next()
			f, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			return &FieldAccess{Pos: t.Pos, Base: t.Text, Field: f.Text}, nil
		}
		return &VarRef{Pos: t.Pos, Name: t.Text}, nil
	default:
		return nil, &ParseError{t.Pos, fmt.Sprintf("unexpected %s in expression", t)}
	}
}
