package lang

import (
	"fmt"
	"strings"
)

// LexError reports a tokenization failure.
type LexError struct {
	Pos Pos
	Msg string
}

func (e *LexError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lex tokenizes src (comments: // to end of line).
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	n := len(src)
	adv := func(k int) {
		for j := 0; j < k; j++ {
			if src[i+j] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += k
	}
	for i < n {
		c := src[i]
		pos := Pos{line, col}
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			adv(1)
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				adv(1)
			}
		// Identifier starts are ASCII-only: the lexer scans bytes, and
		// promoting a lone UTF-8 continuation byte via rune(c) would
		// classify it as a letter while isIdentChar rejects it — an
		// empty token and no progress.
		case isIdentStart(c):
			j := i
			for j < n && (isIdentChar(src[j])) {
				j++
			}
			word := src[i:j]
			if k, ok := keywords[word]; ok {
				toks = append(toks, Token{Kind: k, Text: word, Pos: pos})
			} else {
				toks = append(toks, Token{Kind: IDENT, Text: word, Pos: pos})
			}
			adv(j - i)
		case c >= '0' && c <= '9':
			j := i
			seenDot := false
			for j < n {
				if src[j] >= '0' && src[j] <= '9' {
					j++
					continue
				}
				// A '.' starts a fraction only if not part of "..".
				if src[j] == '.' && !seenDot && j+1 < n && src[j+1] != '.' {
					seenDot = true
					j++
					continue
				}
				break
			}
			toks = append(toks, Token{Kind: NUMBER, Text: src[i:j], Pos: pos})
			adv(j - i)
		case c == '#':
			if i+1 < n && (src[i+1] == '0' || src[i+1] == '1') {
				toks = append(toks, Token{Kind: POS, Text: src[i : i+2], Pos: pos})
				adv(2)
				break
			}
			return nil, &LexError{pos, "expected #0 or #1"}
		default:
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			var k Kind
			var width int
			switch two {
			case "..":
				k, width = DotDot, 2
			case "<=":
				k, width = Le, 2
			case ">=":
				k, width = Ge, 2
			case "==":
				k, width = EqEq, 2
			case "!=":
				k, width = NotEq, 2
			case "&&":
				k, width = AndAnd, 2
			case "||":
				k, width = OrOr, 2
			default:
				width = 1
				switch c {
				case '(':
					k = LParen
				case ')':
					k = RParen
				case '{':
					k = LBrace
				case '}':
					k = RBrace
				case '[':
					k = LBracket
				case ']':
					k = RBracket
				case ',':
					k = Comma
				case ';':
					k = Semicolon
				case ':':
					k = Colon
				case '.':
					k = Dot
				case '=':
					k = Assign
				case '+':
					k = Plus
				case '-':
					k = Minus
				case '*':
					k = Star
				case '/':
					k = Slash
				case '%':
					k = Percent
				case '<':
					k = Lt
				case '>':
					k = Gt
				case '!':
					k = Not
				default:
					return nil, &LexError{pos, fmt.Sprintf("unexpected character %q", c)}
				}
			}
			toks = append(toks, Token{Kind: k, Text: strings.TrimSpace(src[i : i+width]), Pos: pos})
			adv(width)
		}
	}
	toks = append(toks, Token{Kind: EOF, Pos: Pos{line, col}})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
