package lang

import (
	"strings"
	"testing"
)

const jacobiSrc = `
// Two-buffer Jacobi relaxation (paper Figure 2's stencil, cstar syntax).
aggregate Cell[,] {
  float v;
  float nv;
}

parallel func sweep(parallel g: Cell) {
  g.nv = 0.25 * (g[#0-1, #1].v + g[#0+1, #1].v + g[#0, #1-1].v + g[#0, #1+1].v);
}

parallel func commit(parallel g: Cell) {
  g.v = g.nv;
}

func main() {
  let g = Cell[64, 64];
  for it in 0..50 {
    sweep(g);
    commit(g);
  }
}
`

func TestLexBasics(t *testing.T) {
	toks, err := Lex("let x = 1.5; // comment\n#0 #1 a..b <= != &&")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []Kind
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	want := []Kind{KwLet, IDENT, Assign, NUMBER, Semicolon, POS, POS, IDENT, DotDot, IDENT, Le, NotEq, AndAnd, EOF}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexNumberVsRange(t *testing.T) {
	toks, err := Lex("0..100 1.5 2.25")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != NUMBER || toks[0].Text != "0" {
		t.Fatalf("tok0 = %v", toks[0])
	}
	if toks[1].Kind != DotDot {
		t.Fatalf("tok1 = %v", toks[1])
	}
	if toks[3].Text != "1.5" || toks[4].Text != "2.25" {
		t.Fatalf("floats = %v %v", toks[3], toks[4])
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("a $ b"); err == nil {
		t.Fatal("expected error for $")
	}
	if _, err := Lex("#2"); err == nil {
		t.Fatal("expected error for #2")
	}
}

func TestParseJacobi(t *testing.T) {
	prog, err := Parse(jacobiSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Aggregates) != 1 || prog.Aggregates[0].Dims != 2 {
		t.Fatalf("aggregates = %+v", prog.Aggregates)
	}
	if got := prog.Aggregate("Cell").FieldIndex("nv"); got != 1 {
		t.Fatalf("field index = %d", got)
	}
	if len(prog.Funcs) != 3 {
		t.Fatalf("funcs = %d", len(prog.Funcs))
	}
	sweep := prog.Func("sweep")
	if sweep == nil || !sweep.Parallel || sweep.ParallelParam().Name != "g" {
		t.Fatalf("sweep = %+v", sweep)
	}
	main := prog.Func("main")
	if main.Parallel {
		t.Fatal("main must be sequential")
	}
	let := main.Body.Stmts[0].(*LetStmt)
	if let.AggType != "Cell" || len(let.AggDims) != 2 {
		t.Fatalf("let = %+v", let)
	}
	loop := main.Body.Stmts[1].(*ForStmt)
	if loop.Var != "it" || len(loop.Body.Stmts) != 2 {
		t.Fatalf("loop = %+v", loop)
	}
}

func TestParseAccessForms(t *testing.T) {
	src := `
aggregate A[] { float x; }
parallel func f(parallel g: A, other: A) {
  g.x = g[#0+1].x + other[3].x;
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("f")
	asn := f.Body.Stmts[0].(*AssignStmt)
	tgt := asn.Target.(*FieldAccess)
	if tgt.Base != "g" || tgt.Index != nil || tgt.Field != "x" {
		t.Fatalf("target = %+v", tgt)
	}
	sum := asn.Value.(*BinaryExpr)
	l := sum.L.(*FieldAccess)
	if l.Base != "g" || len(l.Index) != 1 {
		t.Fatalf("lhs = %+v", l)
	}
	r := sum.R.(*FieldAccess)
	if r.Base != "other" || len(r.Index) != 1 {
		t.Fatalf("rhs = %+v", r)
	}
}

func TestParsePrecedence(t *testing.T) {
	prog := MustParse(`
aggregate A[] { float x; }
func main() {
  let a = 1 + 2 * 3;
  let b = (1 + 2) * 3;
  let c = 1 < 2 && 3 < 4 || 0 == 1;
}
`)
	main := prog.Func("main")
	a := main.Body.Stmts[0].(*LetStmt).Value.(*BinaryExpr)
	if a.Op != Plus {
		t.Fatalf("a root op = %v, want +", a.Op)
	}
	b := main.Body.Stmts[1].(*LetStmt).Value.(*BinaryExpr)
	if b.Op != Star {
		t.Fatalf("b root op = %v, want *", b.Op)
	}
	c := main.Body.Stmts[2].(*LetStmt).Value.(*BinaryExpr)
	if c.Op != OrOr {
		t.Fatalf("c root op = %v, want ||", c.Op)
	}
}

func TestParseReduce(t *testing.T) {
	prog := MustParse(`
aggregate A[] { float x; }
func main() {
  let g = A[10];
  let s = reduce(+, g.x);
}
`)
	red := prog.Func("main").Body.Stmts[1].(*LetStmt).Value.(*ReduceExpr)
	if red.Op != Plus || red.Base != "g" || red.Field != "x" {
		t.Fatalf("reduce = %+v", red)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"aggregate A[] { }",                          // no fields
		"parallel func f(x: float) {}",               // no parallel param
		"func main() { let g = Unknown[4]; }",        // unknown type in param position is fine; this is var ref + index without .field
		"func main() { 1 + ; }",                      // broken expr
		"aggregate A[] { float x; } func f(a: B) {}", // unknown param type
		"func main() { (1+2) = 3; }",                 // bad assign target
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	prog := MustParse(jacobiSrc)
	out := Format(prog)
	// The formatted source must itself parse to an equivalent program.
	prog2, err := Parse(out)
	if err != nil {
		t.Fatalf("formatted source does not parse: %v\n%s", err, out)
	}
	if Format(prog2) != out {
		t.Fatal("format not idempotent")
	}
	if !strings.Contains(out, "parallel func sweep(parallel g: Cell)") {
		t.Fatalf("missing parallel marker:\n%s", out)
	}
}

func TestDistributionAttribute(t *testing.T) {
	prog := MustParse(`
aggregate A[,] tiled { float x; }
aggregate B[,] rowblock { float x; }
aggregate C[,] { float x; }
func main() { let a = A[4,4]; }
`)
	if prog.Aggregate("A").Dist != "tiled" {
		t.Fatal("tiled attribute lost")
	}
	if prog.Aggregate("B").Dist != "rowblock" {
		t.Fatal("rowblock attribute lost")
	}
	if prog.Aggregate("C").Dist != "" {
		t.Fatal("default dist not empty")
	}
	out := Format(prog)
	if !strings.Contains(out, "aggregate A[,] tiled {") {
		t.Fatalf("format lost distribution:\n%s", out)
	}
	if _, err := Parse(out); err != nil {
		t.Fatalf("format round trip: %v", err)
	}
}
