package network

import "presto/internal/sim"

// This file implements the chaos subsystem's perturbation layer: seeded,
// deterministic jitter on per-message software costs. The fixed cost
// presets always produce the same message interleavings for a given
// program; jitter shakes out orderings those presets never reach
// (invalidations overtaking grants, recalls chasing migrating blocks)
// while keeping every run reproducible from (Params, JitterSeed).
//
// Determinism requirement: the parallel kernel engine executes events
// concurrently and commits them in serial order, so any randomness
// consumed at send time must be a pure function of *simulated* state —
// never of host scheduling. The jitter here hashes (seed, virtual time,
// src, dst, payload) with a splitmix64-style mixer, which satisfies that
// requirement: serial and parallel engines see identical costs.

// mix64 is the splitmix64 finalizer: a fast, well-distributed 64-bit
// mixing function (Steele et al., "Fast Splittable Pseudorandom Number
// Generators").
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// jitter scales d by a factor in [1-pct%, 1+pct%] derived from the hash
// inputs. d == 0 stays 0.
func (p *Params) jitter(d sim.Time, now sim.Time, a, b, payload int) sim.Time {
	if p.JitterPct <= 0 || d == 0 {
		return d
	}
	h := mix64(p.JitterSeed ^ mix64(uint64(now)^uint64(a)<<48^uint64(b)<<32^uint64(payload)))
	// signed offset in [-pct, +pct] permille-ish: use basis points for
	// resolution (pct*100 bp).
	span := int64(p.JitterPct) * 100 * 2
	off := int64(h%uint64(span+1)) - int64(p.JitterPct)*100
	return d + sim.Time(int64(d)*off/10000)
}

// SendCostAt returns SendCost perturbed by seeded jitter, as a pure
// function of (virtual time, sender, receiver, payload).
func (p *Params) SendCostAt(payload int, now sim.Time, src, dst int) sim.Time {
	return p.jitter(p.SendCost(payload), now, src, dst, payload)
}

// RecvOverheadAt returns RecvOverhead perturbed by seeded jitter.
func (p *Params) RecvOverheadAt(now sim.Time, node int) sim.Time {
	return p.jitter(p.RecvOverhead, now, node, node, 1)
}

// TransitDelayAt returns TransitDelay perturbed by seeded jitter, clamped
// below at MinLatency so a jittered message can never undercut the
// conservative lookahead the parallel engine derives from these Params.
func (p *Params) TransitDelayAt(payload int, now sim.Time, src, dst int) sim.Time {
	d := p.jitter(p.TransitDelay(payload), now, src, dst, payload)
	if min := p.MinLatency(); d < min {
		d = min
	}
	return d
}

// TransitDelayPairAt is TransitDelayAt's topology-aware variant: the
// jittered pair transit is clamped below at that pair's minimal transit
// (empty payload), so a jittered message can never undercut the
// per-lane-pair lookahead (PairMinLatency) the parallel engine derives
// from these Params. Clamping at the global MinLatency would not be
// enough on a clustered machine: the intra-node minimum is far below the
// cross-node floor the pair matrix promises. On flat presets the pair
// floor equals TransitDelay(0) == MinLatency(), so this is byte-identical
// to TransitDelayAt there.
func (p *Params) TransitDelayPairAt(payload int, now sim.Time, src, dst int) sim.Time {
	d := p.jitter(p.TransitDelayPair(payload, src, dst), now, src, dst, payload)
	if min := p.TransitDelayPair(0, src, dst); d < min {
		d = min
	}
	return d
}

// WithJitter returns a copy of p with the given jitter configuration
// (percent magnitude and hash seed).
func (p *Params) WithJitter(pct int, seed uint64) *Params {
	out := *p
	out.JitterPct = pct
	out.JitterSeed = seed
	return &out
}
