// Package network models the interconnect and software messaging costs of
// the simulated machine.
//
// The original system ran on a 32-node Thinking Machines CM-5 under
// Blizzard, a software fine-grain DSM whose remote data accesses averaged
// roughly 200 microseconds (paper §5.4). All costs here are software
// costs — active-message send/dispatch overheads, protocol-handler
// occupancy, and per-byte copy costs — plus a small wire latency, which is
// what dominated on that platform.
package network

import (
	"fmt"
	"strconv"
	"strings"

	"presto/internal/sim"
)

// Params describes one interconnect/software-messaging configuration.
// All times are virtual (sim.Time).
type Params struct {
	// SendOverhead is the sender-side CPU occupancy to compose and inject
	// one message (active-message send, protocol send handler).
	SendOverhead sim.Time
	// RecvOverhead is the receiver-side dispatch occupancy charged by the
	// protocol-handler loop for every message before handling it.
	RecvOverhead sim.Time
	// WireLatency is the network transit time for a minimal message.
	WireLatency sim.Time
	// PerByteSend is the sender-side copy cost per payload byte.
	PerByteSend sim.Time
	// PerByteWire is the network occupancy per payload byte.
	PerByteWire sim.Time
	// LocalDelay is the delivery delay for a node messaging itself (a
	// compute processor invoking its own protocol handler).
	LocalDelay sim.Time
	// LocalOverhead is the CPU occupancy for posting such a local message.
	LocalOverhead sim.Time
	// FaultDetect is the cost of detecting an access fault and vectoring
	// to the user-level handler (Tempest fine-grain access control).
	FaultDetect sim.Time
	// HeaderBytes is the fixed wire size of a protocol message.
	HeaderBytes int
	// BarrierLatency is the cost of one global barrier once all
	// participants have arrived (e.g. a log-depth combining tree).
	BarrierLatency sim.Time

	// JitterPct, when positive, perturbs per-message costs (send/recv
	// occupancy and transit delay) by up to ±JitterPct percent. The
	// perturbation is a pure hash of (JitterSeed, virtual time, nodes,
	// payload) — a function of simulated state only — so a jittered run
	// remains byte-identical across kernel engines and repeated runs.
	// Transit delays are clamped below at MinLatency(), preserving the
	// parallel engine's conservative-lookahead invariant.
	JitterPct int
	// JitterSeed salts the jitter hash; distinct seeds explore distinct
	// message orderings.
	JitterSeed uint64

	// GroupSize, when >= 2, arranges the machine as a two-level cluster:
	// node IDs [k*GroupSize, (k+1)*GroupSize) share physical cluster node
	// k, and messages between them cross the intra-node fabric
	// (IntraWireLatency/IntraPerByteWire) instead of the top-level wire.
	// Software costs (send/recv overheads, per-byte copies) are charged
	// uniformly — only transit depends on the pair. 0 or 1 means a flat
	// machine and leaves every existing preset byte-identical.
	GroupSize int
	// Groups pins the expected group count when positive (the
	// cluster:<nodes>x<cores> preset sets it); rt.Machine.Run validates
	// the simulated node count against Groups*GroupSize.
	Groups int
	// IntraWireLatency is the transit time of a minimal intra-group
	// message (required positive when GroupSize >= 2).
	IntraWireLatency sim.Time
	// IntraPerByteWire is the intra-group fabric occupancy per byte.
	IntraPerByteWire sim.Time

	// Hier lists intermediate fabric levels between the intra-group
	// fabric and the top-level network, innermost-first (see FabricLevel).
	// Empty for flat machines and classic two-level clusters; the
	// cluster:<a>x<b>x<c> and fattree:<levels> presets populate it.
	Hier []FabricLevel

	// MeshW/MeshH, when both positive, arrange a flat machine as a 2D
	// mesh: node i sits at (i mod MeshW, i div MeshW) and transit grows
	// by HopLatency per Manhattan hop beyond the first. Mutually
	// exclusive with GroupSize >= 2.
	MeshW, MeshH int
	// HopLatency is the extra transit per mesh hop beyond the first.
	HopLatency sim.Time
}

// Validate rejects configurations that would panic or hang downstream:
// non-positive latencies/occupancies (the simulator requires every
// message to advance virtual time), negative per-byte costs, and a
// degenerate lookahead (MinLatency must be positive for the parallel
// engine to make progress).
func (p *Params) Validate() error {
	pos := []struct {
		name string
		v    sim.Time
	}{
		{"SendOverhead", p.SendOverhead},
		{"RecvOverhead", p.RecvOverhead},
		{"WireLatency", p.WireLatency},
		{"LocalDelay", p.LocalDelay},
		{"LocalOverhead", p.LocalOverhead},
		{"FaultDetect", p.FaultDetect},
		{"BarrierLatency", p.BarrierLatency},
	}
	for _, f := range pos {
		if f.v <= 0 {
			return fmt.Errorf("network: %s = %v, must be positive", f.name, f.v)
		}
	}
	if p.PerByteSend < 0 || p.PerByteWire < 0 {
		return fmt.Errorf("network: per-byte costs must be non-negative (send %v, wire %v)",
			p.PerByteSend, p.PerByteWire)
	}
	if p.HeaderBytes < 0 {
		return fmt.Errorf("network: HeaderBytes = %d, must be non-negative", p.HeaderBytes)
	}
	if p.JitterPct < 0 || p.JitterPct >= 100 {
		return fmt.Errorf("network: JitterPct = %d, must be in [0,100)", p.JitterPct)
	}
	if p.GroupSize < 0 {
		return fmt.Errorf("network: GroupSize = %d, must be non-negative", p.GroupSize)
	}
	if p.Groups < 0 {
		return fmt.Errorf("network: Groups = %d, must be non-negative", p.Groups)
	}
	if p.Clustered() {
		if p.IntraWireLatency <= 0 {
			return fmt.Errorf("network: IntraWireLatency = %v, must be positive on a clustered machine",
				p.IntraWireLatency)
		}
		if p.IntraPerByteWire < 0 {
			return fmt.Errorf("network: IntraPerByteWire = %v, must be non-negative", p.IntraPerByteWire)
		}
	} else if p.Groups > 1 {
		return fmt.Errorf("network: Groups = %d needs GroupSize >= 2 (got %d)", p.Groups, p.GroupSize)
	}
	if err := p.validateTopology(); err != nil {
		return err
	}
	if p.MinLatency() <= 0 {
		return fmt.Errorf("network: MinLatency() = %v, must be positive", p.MinLatency())
	}
	return nil
}

// mustValid asserts a preset validates (a broken preset is a programming
// error, caught at first use rather than as a downstream panic).
func mustValid(p *Params) *Params {
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("network: invalid preset: %v", err))
	}
	return p
}

// CM5 returns parameters calibrated to Blizzard on the CM-5: a simple
// two-hop read miss costs ~110us and a three-hop (recall) miss ~190us,
// bracketing the paper's reported 200us average remote access latency.
func CM5() *Params {
	return mustValid(&Params{
		SendOverhead:   20 * sim.Microsecond,
		RecvOverhead:   25 * sim.Microsecond,
		WireLatency:    6 * sim.Microsecond,
		PerByteSend:    25 * sim.Nanosecond, // ~40 MB/s copy
		PerByteWire:    33 * sim.Nanosecond, // ~30 MB/s effective wire
		LocalDelay:     2 * sim.Microsecond,
		LocalOverhead:  3 * sim.Microsecond,
		FaultDetect:    5 * sim.Microsecond,
		HeaderBytes:    16,
		BarrierLatency: 40 * sim.Microsecond,
	})
}

// NOW returns parameters for a mid-90s network of workstations without
// hardware shared-memory support (paper §5.4: the predictive protocol is
// "beneficial on ... networks of workstations"): higher per-message
// software costs and wire latency than the CM-5.
func NOW() *Params {
	return mustValid(&Params{
		SendOverhead:   60 * sim.Microsecond,
		RecvOverhead:   70 * sim.Microsecond,
		WireLatency:    80 * sim.Microsecond,
		PerByteSend:    50 * sim.Nanosecond,
		PerByteWire:    100 * sim.Nanosecond, // ~10 MB/s Ethernet-class
		LocalDelay:     2 * sim.Microsecond,
		LocalOverhead:  3 * sim.Microsecond,
		FaultDetect:    8 * sim.Microsecond,
		HeaderBytes:    32,
		BarrierLatency: 400 * sim.Microsecond,
	})
}

// HardwareDSM returns parameters for a hardware-assisted DSM (paper §5.4:
// "the tradeoff is likely to be different for shared-memory
// multiprocessors or hardware-assisted DSMs, which have smaller remote
// access latencies"): protocol handling in hardware, microsecond-scale
// misses.
func HardwareDSM() *Params {
	return mustValid(&Params{
		SendOverhead:   400 * sim.Nanosecond,
		RecvOverhead:   500 * sim.Nanosecond,
		WireLatency:    600 * sim.Nanosecond,
		PerByteSend:    2 * sim.Nanosecond,
		PerByteWire:    3 * sim.Nanosecond,
		LocalDelay:     200 * sim.Nanosecond,
		LocalOverhead:  100 * sim.Nanosecond,
		FaultDetect:    300 * sim.Nanosecond,
		HeaderBytes:    16,
		BarrierLatency: 5 * sim.Microsecond,
	})
}

// Cluster returns a two-level machine: `groups` cluster nodes of `cores`
// simulated nodes each. Nodes sharing a cluster node communicate over a
// hardware-DSM-class intra-node fabric; distinct cluster nodes over the
// CM-5-class top-level network. Software messaging costs stay CM-5-like
// regardless of destination (the messaging layer is the same code path) —
// only the wire differs, which is exactly the asymmetry the parallel
// engine's per-lane-pair lookahead exploits: cross-group windows stretch
// to the top-level transit delay instead of collapsing to the intra-node
// minimum.
func Cluster(groups, cores int) (*Params, error) {
	if groups < 1 || cores < 2 {
		return nil, fmt.Errorf("network: cluster needs >= 1 groups of >= 2 cores (got %dx%d)", groups, cores)
	}
	if groups*cores > MaxNodes {
		return nil, fmt.Errorf("network: cluster %dx%d exceeds %d nodes", groups, cores, MaxNodes)
	}
	p := *CM5()
	p.Groups = groups
	p.GroupSize = cores
	p.IntraWireLatency = 600 * sim.Nanosecond
	p.IntraPerByteWire = 3 * sim.Nanosecond
	return mustValid(&p), nil
}

// Preset returns the named parameter preset — the shared vocabulary of
// the -net command-line flags and the chaos derivation. Besides the fixed
// presets it accepts the parameterized topology forms (Grammars lists
// them all): cluster:<groups>x<cores> (e.g. cluster:4x8 = 32 simulated
// nodes on 4 cluster nodes), deeper cluster:<a>x<b>x<c> hierarchies,
// mesh:<w>x<h> 2D meshes and fattree:<levels> 4-ary fat trees.
func Preset(name string) (*Params, error) {
	switch name {
	case "cm5":
		return CM5(), nil
	case "now":
		return NOW(), nil
	case "hwdsm":
		return HardwareDSM(), nil
	}
	if shape, ok := strings.CutPrefix(name, "cluster:"); ok {
		dims, ok := parseDims(shape)
		if !ok || len(dims) < 2 {
			return nil, fmt.Errorf("network: malformed cluster preset %q (want cluster:<groups>x<cores> or cluster:<groups>x<subgroups>x<cores>)", name)
		}
		if len(dims) == 2 {
			return Cluster(dims[0], dims[1])
		}
		return ClusterLevels(dims)
	}
	if shape, ok := strings.CutPrefix(name, "mesh:"); ok {
		dims, ok := parseDims(shape)
		if !ok || len(dims) != 2 {
			return nil, fmt.Errorf("network: malformed mesh preset %q (want mesh:<w>x<h>)", name)
		}
		return Mesh(dims[0], dims[1])
	}
	if lvl, ok := strings.CutPrefix(name, "fattree:"); ok {
		l, err := strconv.Atoi(lvl)
		if err != nil {
			return nil, fmt.Errorf("network: malformed fattree preset %q (want fattree:<levels>)", name)
		}
		return FatTree(l)
	}
	return nil, fmt.Errorf("network: unknown preset %q (want %s)", name, Grammars())
}

// SendCost returns the sender CPU occupancy for a message with the given
// payload size.
func (p *Params) SendCost(payload int) sim.Time {
	return p.SendOverhead + sim.Time(payload)*p.PerByteSend
}

// TransitDelay returns the in-flight delay for a message with the given
// payload size (header included) over the top-level network.
func (p *Params) TransitDelay(payload int) sim.Time {
	return p.WireLatency + sim.Time(payload+p.HeaderBytes)*p.PerByteWire
}

// intraTransit is the in-flight delay over the intra-group fabric.
func (p *Params) intraTransit(payload int) sim.Time {
	return p.IntraWireLatency + sim.Time(payload+p.HeaderBytes)*p.IntraPerByteWire
}

// Clustered reports whether the machine is a two-level cluster (nodes
// grouped onto shared cluster nodes with a distinct intra fabric).
func (p *Params) Clustered() bool { return p.GroupSize >= 2 }

// GroupOf returns the cluster node hosting a simulated node (the node's
// own ID on a flat machine).
func (p *Params) GroupOf(node int) int {
	if !p.Clustered() {
		return node
	}
	return node / p.GroupSize
}

// SameGroup reports whether two nodes share a cluster node.
func (p *Params) SameGroup(i, j int) bool {
	return p.Clustered() && i/p.GroupSize == j/p.GroupSize
}

// TransitDelayPair returns the in-flight delay between a specific pair
// of nodes: the innermost fabric containing both on a hierarchical
// machine (intra-group, then each Hier level outward, then the
// top-level network), or the Manhattan-distance-scaled transit on a
// mesh. Identical to TransitDelay on flat machines.
func (p *Params) TransitDelayPair(payload, src, dst int) sim.Time {
	if p.SameGroup(src, dst) {
		return p.intraTransit(payload)
	}
	for _, l := range p.Hier {
		if src/l.Span == dst/l.Span {
			return p.hierTransit(l, payload)
		}
	}
	if p.Meshed() {
		d := p.TransitDelay(payload)
		if h := p.meshHops(src, dst); h > 1 {
			d += sim.Time(h-1) * p.HopLatency
		}
		return d
	}
	return p.TransitDelay(payload)
}

// PairMinLatency returns the smallest virtual-time gap between an action
// on node i and its earliest possible effect on node j: the lesser of the
// pair's minimal transit delay (empty payload) and the barrier release
// cost (barriers synchronize all nodes regardless of topology). This is
// the per-lane-pair lookahead matrix the parallel engine uses to open
// windows: a lane whose nearest neighbor is across the top-level network
// gets a window as wide as the top-level transit, not the global minimum.
func (p *Params) PairMinLatency(i, j int) sim.Time {
	min := p.TransitDelayPair(0, i, j)
	if p.BarrierLatency < min {
		min = p.BarrierLatency
	}
	return min
}

// MinLatency returns the smallest virtual-time gap between an action on
// one node and its earliest possible effect on another node, over all
// pairs: the lesser of the minimal message transit delay (empty payload,
// header only; the intra-group fabric when clustered) and the barrier
// release cost. It is the safe global lookahead for conservative parallel
// simulation (sim.ParallelConfig.Lookahead): within a window narrower
// than MinLatency, nodes cannot affect each other. PairMinLatency refines
// this bound per pair.
func (p *Params) MinLatency() sim.Time {
	min := p.TransitDelay(0)
	if p.Clustered() {
		if d := p.intraTransit(0); d < min {
			min = d
		}
	}
	for _, l := range p.Hier {
		if d := p.hierTransit(l, 0); d < min {
			min = d
		}
	}
	if p.BarrierLatency < min {
		min = p.BarrierLatency
	}
	return min
}

// RemoteReadMiss2Hop estimates the latency of a simple two-hop read miss
// for a block of the given size. Used for calibration tests and docs, not
// by the protocols themselves.
func (p *Params) RemoteReadMiss2Hop(block int) sim.Time {
	req := p.FaultDetect + p.SendCost(0) + p.TransitDelay(0) + p.RecvOverhead
	rep := p.SendCost(block) + p.TransitDelay(block) + p.RecvOverhead
	return req + rep
}
