// Package network models the interconnect and software messaging costs of
// the simulated machine.
//
// The original system ran on a 32-node Thinking Machines CM-5 under
// Blizzard, a software fine-grain DSM whose remote data accesses averaged
// roughly 200 microseconds (paper §5.4). All costs here are software
// costs — active-message send/dispatch overheads, protocol-handler
// occupancy, and per-byte copy costs — plus a small wire latency, which is
// what dominated on that platform.
package network

import (
	"fmt"

	"presto/internal/sim"
)

// Params describes one interconnect/software-messaging configuration.
// All times are virtual (sim.Time).
type Params struct {
	// SendOverhead is the sender-side CPU occupancy to compose and inject
	// one message (active-message send, protocol send handler).
	SendOverhead sim.Time
	// RecvOverhead is the receiver-side dispatch occupancy charged by the
	// protocol-handler loop for every message before handling it.
	RecvOverhead sim.Time
	// WireLatency is the network transit time for a minimal message.
	WireLatency sim.Time
	// PerByteSend is the sender-side copy cost per payload byte.
	PerByteSend sim.Time
	// PerByteWire is the network occupancy per payload byte.
	PerByteWire sim.Time
	// LocalDelay is the delivery delay for a node messaging itself (a
	// compute processor invoking its own protocol handler).
	LocalDelay sim.Time
	// LocalOverhead is the CPU occupancy for posting such a local message.
	LocalOverhead sim.Time
	// FaultDetect is the cost of detecting an access fault and vectoring
	// to the user-level handler (Tempest fine-grain access control).
	FaultDetect sim.Time
	// HeaderBytes is the fixed wire size of a protocol message.
	HeaderBytes int
	// BarrierLatency is the cost of one global barrier once all
	// participants have arrived (e.g. a log-depth combining tree).
	BarrierLatency sim.Time

	// JitterPct, when positive, perturbs per-message costs (send/recv
	// occupancy and transit delay) by up to ±JitterPct percent. The
	// perturbation is a pure hash of (JitterSeed, virtual time, nodes,
	// payload) — a function of simulated state only — so a jittered run
	// remains byte-identical across kernel engines and repeated runs.
	// Transit delays are clamped below at MinLatency(), preserving the
	// parallel engine's conservative-lookahead invariant.
	JitterPct int
	// JitterSeed salts the jitter hash; distinct seeds explore distinct
	// message orderings.
	JitterSeed uint64
}

// Validate rejects configurations that would panic or hang downstream:
// non-positive latencies/occupancies (the simulator requires every
// message to advance virtual time), negative per-byte costs, and a
// degenerate lookahead (MinLatency must be positive for the parallel
// engine to make progress).
func (p *Params) Validate() error {
	pos := []struct {
		name string
		v    sim.Time
	}{
		{"SendOverhead", p.SendOverhead},
		{"RecvOverhead", p.RecvOverhead},
		{"WireLatency", p.WireLatency},
		{"LocalDelay", p.LocalDelay},
		{"LocalOverhead", p.LocalOverhead},
		{"FaultDetect", p.FaultDetect},
		{"BarrierLatency", p.BarrierLatency},
	}
	for _, f := range pos {
		if f.v <= 0 {
			return fmt.Errorf("network: %s = %v, must be positive", f.name, f.v)
		}
	}
	if p.PerByteSend < 0 || p.PerByteWire < 0 {
		return fmt.Errorf("network: per-byte costs must be non-negative (send %v, wire %v)",
			p.PerByteSend, p.PerByteWire)
	}
	if p.HeaderBytes < 0 {
		return fmt.Errorf("network: HeaderBytes = %d, must be non-negative", p.HeaderBytes)
	}
	if p.JitterPct < 0 || p.JitterPct >= 100 {
		return fmt.Errorf("network: JitterPct = %d, must be in [0,100)", p.JitterPct)
	}
	if p.MinLatency() <= 0 {
		return fmt.Errorf("network: MinLatency() = %v, must be positive", p.MinLatency())
	}
	return nil
}

// mustValid asserts a preset validates (a broken preset is a programming
// error, caught at first use rather than as a downstream panic).
func mustValid(p *Params) *Params {
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("network: invalid preset: %v", err))
	}
	return p
}

// CM5 returns parameters calibrated to Blizzard on the CM-5: a simple
// two-hop read miss costs ~110us and a three-hop (recall) miss ~190us,
// bracketing the paper's reported 200us average remote access latency.
func CM5() *Params {
	return mustValid(&Params{
		SendOverhead:   20 * sim.Microsecond,
		RecvOverhead:   25 * sim.Microsecond,
		WireLatency:    6 * sim.Microsecond,
		PerByteSend:    25 * sim.Nanosecond, // ~40 MB/s copy
		PerByteWire:    33 * sim.Nanosecond, // ~30 MB/s effective wire
		LocalDelay:     2 * sim.Microsecond,
		LocalOverhead:  3 * sim.Microsecond,
		FaultDetect:    5 * sim.Microsecond,
		HeaderBytes:    16,
		BarrierLatency: 40 * sim.Microsecond,
	})
}

// NOW returns parameters for a mid-90s network of workstations without
// hardware shared-memory support (paper §5.4: the predictive protocol is
// "beneficial on ... networks of workstations"): higher per-message
// software costs and wire latency than the CM-5.
func NOW() *Params {
	return mustValid(&Params{
		SendOverhead:   60 * sim.Microsecond,
		RecvOverhead:   70 * sim.Microsecond,
		WireLatency:    80 * sim.Microsecond,
		PerByteSend:    50 * sim.Nanosecond,
		PerByteWire:    100 * sim.Nanosecond, // ~10 MB/s Ethernet-class
		LocalDelay:     2 * sim.Microsecond,
		LocalOverhead:  3 * sim.Microsecond,
		FaultDetect:    8 * sim.Microsecond,
		HeaderBytes:    32,
		BarrierLatency: 400 * sim.Microsecond,
	})
}

// HardwareDSM returns parameters for a hardware-assisted DSM (paper §5.4:
// "the tradeoff is likely to be different for shared-memory
// multiprocessors or hardware-assisted DSMs, which have smaller remote
// access latencies"): protocol handling in hardware, microsecond-scale
// misses.
func HardwareDSM() *Params {
	return mustValid(&Params{
		SendOverhead:   400 * sim.Nanosecond,
		RecvOverhead:   500 * sim.Nanosecond,
		WireLatency:    600 * sim.Nanosecond,
		PerByteSend:    2 * sim.Nanosecond,
		PerByteWire:    3 * sim.Nanosecond,
		LocalDelay:     200 * sim.Nanosecond,
		LocalOverhead:  100 * sim.Nanosecond,
		FaultDetect:    300 * sim.Nanosecond,
		HeaderBytes:    16,
		BarrierLatency: 5 * sim.Microsecond,
	})
}

// Preset returns the named parameter preset — the shared vocabulary of
// the -net command-line flags and the chaos derivation.
func Preset(name string) (*Params, error) {
	switch name {
	case "cm5":
		return CM5(), nil
	case "now":
		return NOW(), nil
	case "hwdsm":
		return HardwareDSM(), nil
	}
	return nil, fmt.Errorf("network: unknown preset %q (want cm5, now or hwdsm)", name)
}

// SendCost returns the sender CPU occupancy for a message with the given
// payload size.
func (p *Params) SendCost(payload int) sim.Time {
	return p.SendOverhead + sim.Time(payload)*p.PerByteSend
}

// TransitDelay returns the in-flight delay for a message with the given
// payload size (header included).
func (p *Params) TransitDelay(payload int) sim.Time {
	return p.WireLatency + sim.Time(payload+p.HeaderBytes)*p.PerByteWire
}

// MinLatency returns the smallest virtual-time gap between an action on
// one node and its earliest possible effect on another node: the lesser of
// the minimal message transit delay (empty payload, header only) and the
// barrier release cost. It is the safe lookahead for conservative parallel
// simulation (sim.ParallelConfig.Lookahead): within a window narrower than
// MinLatency, nodes cannot affect each other.
func (p *Params) MinLatency() sim.Time {
	min := p.TransitDelay(0)
	if p.BarrierLatency < min {
		min = p.BarrierLatency
	}
	return min
}

// RemoteReadMiss2Hop estimates the latency of a simple two-hop read miss
// for a block of the given size. Used for calibration tests and docs, not
// by the protocols themselves.
func (p *Params) RemoteReadMiss2Hop(block int) sim.Time {
	req := p.FaultDetect + p.SendCost(0) + p.TransitDelay(0) + p.RecvOverhead
	rep := p.SendCost(block) + p.TransitDelay(block) + p.RecvOverhead
	return req + rep
}
