package network

import (
	"testing"

	"presto/internal/sim"
)

func TestCM5MissLatencyNearPaper(t *testing.T) {
	p := CM5()
	// The paper reports ~200us *average* remote access latency on
	// Blizzard/CM-5. A two-hop miss should be below that and a recall
	// (three-hop) above-or-near it; check the two-hop is in a plausible
	// band for a 32-byte block.
	lat := p.RemoteReadMiss2Hop(32)
	if lat < 80*sim.Microsecond || lat > 200*sim.Microsecond {
		t.Fatalf("2-hop 32B miss latency = %v, want within [80us,200us]", lat)
	}
	threeHop := lat + p.SendCost(32) + p.TransitDelay(32) + p.RecvOverhead
	if threeHop < 120*sim.Microsecond || threeHop > 320*sim.Microsecond {
		t.Fatalf("3-hop miss = %v, out of band", threeHop)
	}
}

func TestCostsMonotonicInSize(t *testing.T) {
	p := CM5()
	if p.SendCost(1024) <= p.SendCost(32) {
		t.Fatal("SendCost not monotonic")
	}
	if p.TransitDelay(1024) <= p.TransitDelay(32) {
		t.Fatal("TransitDelay not monotonic")
	}
}

func TestBulkCheaperThanManySmall(t *testing.T) {
	p := CM5()
	// Coalescing 8 blocks of 32B into one message must beat 8 messages:
	// it amortizes 7 header+overhead costs.
	bulk := p.SendCost(256) + p.TransitDelay(256) + p.RecvOverhead
	var many sim.Time
	for i := 0; i < 8; i++ {
		many += p.SendCost(32) + p.TransitDelay(32) + p.RecvOverhead
	}
	if bulk >= many {
		t.Fatalf("bulk %v not cheaper than 8 small %v", bulk, many)
	}
}

// TestMinLatency pins the conservative-parallel lookahead: it must be the
// smaller of the minimal transit delay and the barrier cost, and positive
// on every platform model.
func TestMinLatency(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    *Params
	}{{"CM5", CM5()}, {"NOW", NOW()}, {"HardwareDSM", HardwareDSM()}} {
		min := tc.p.MinLatency()
		if min <= 0 {
			t.Fatalf("%s: MinLatency = %v, want > 0", tc.name, min)
		}
		if min > tc.p.TransitDelay(0) || min > tc.p.BarrierLatency {
			t.Fatalf("%s: MinLatency %v exceeds transit %v or barrier %v",
				tc.name, min, tc.p.TransitDelay(0), tc.p.BarrierLatency)
		}
	}
	// On the CM-5 the minimal transit (6us wire + 16 header bytes) is well
	// below the 40us barrier, so it is the lookahead.
	cm5 := CM5()
	if got, want := cm5.MinLatency(), cm5.TransitDelay(0); got != want {
		t.Fatalf("CM5 MinLatency = %v, want TransitDelay(0) = %v", got, want)
	}
}
