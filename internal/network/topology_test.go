package network

import (
	"strings"
	"testing"

	"presto/internal/sim"
)

// TestPresetTopologies parses every new grammar and checks the pinned
// node counts.
func TestPresetTopologies(t *testing.T) {
	cases := []struct {
		name  string
		nodes int
	}{
		{"cluster:4x8", 32},
		{"cluster:16x64", 1024},
		{"cluster:4x16x16", 1024},
		{"cluster:2x4x8", 64},
		{"mesh:32x32", 1024},
		{"mesh:8x4", 32},
		{"fattree:5", 1024},
		{"fattree:2", 16},
	}
	for _, c := range cases {
		p, err := Preset(c.name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", c.name, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Preset(%q).Validate: %v", c.name, err)
		}
		if got := p.ExpectNodes(); got != c.nodes {
			t.Errorf("Preset(%q).ExpectNodes = %d, want %d", c.name, got, c.nodes)
		}
		if p.MinLatency() <= 0 {
			t.Errorf("Preset(%q).MinLatency = %v", c.name, p.MinLatency())
		}
	}
}

// TestPresetErrorsEnumerateGrammars asserts a typo'd preset error names
// every legal grammar (the CLI help-text contract).
func TestPresetErrorsEnumerateGrammars(t *testing.T) {
	_, err := Preset("torus:4x4")
	if err == nil {
		t.Fatal("Preset accepted an unknown topology")
	}
	for _, want := range []string{"cm5", "now", "hwdsm", "cluster:<groups>x<cores>",
		"cluster:<groups>x<subgroups>x<cores>", "mesh:<w>x<h>", "fattree:<levels>"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-preset error %q does not mention %q", err, want)
		}
	}
	for _, bad := range []string{"cluster:8", "cluster:axb", "mesh:9", "mesh:2x2x2", "fattree:x", "fattree:9", "mesh:0x5"} {
		if _, err := Preset(bad); err == nil {
			t.Errorf("Preset(%q) unexpectedly succeeded", bad)
		}
	}
}

// TestHierTransitOrdering checks that transit delay is monotone in
// hierarchy distance: same group < same mid-level < cross-machine, and
// that every pair's jittered transit respects the pair clamp at 1024
// nodes.
func TestHierTransitOrdering(t *testing.T) {
	for _, name := range []string{"cluster:4x16x16", "fattree:5"} {
		p, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		inner := p.TransitDelayPair(64, 0, 1)                 // same innermost group
		mid := p.TransitDelayPair(64, 0, p.GroupSize)         // same first Hier level
		outer := p.TransitDelayPair(64, 0, p.ExpectNodes()-1) // cross-machine
		if !(inner < mid && mid < outer) {
			t.Errorf("%s: transit not monotone: inner %v, mid %v, outer %v", name, inner, mid, outer)
		}
		if got := p.TransitDelayPair(64, 0, p.GroupSize-1); got != inner {
			t.Errorf("%s: intra-group transit differs within group: %v vs %v", name, got, inner)
		}
	}
}

// TestMeshTransit checks Manhattan-distance scaling and that neighbors
// pay exactly the flat transit.
func TestMeshTransit(t *testing.T) {
	p, err := Preset("mesh:32x32")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.TransitDelayPair(0, 0, 1); got != p.TransitDelay(0) {
		t.Errorf("neighbor transit %v, want flat %v", got, p.TransitDelay(0))
	}
	// Opposite corners: 31+31 hops, 61 extra HopLatency charges.
	want := p.TransitDelay(0) + 61*p.HopLatency
	if got := p.TransitDelayPair(0, 0, 1023); got != want {
		t.Errorf("corner transit %v, want %v", got, want)
	}
	// Symmetry.
	if a, b := p.TransitDelayPair(32, 5, 997), p.TransitDelayPair(32, 997, 5); a != b {
		t.Errorf("mesh transit asymmetric: %v vs %v", a, b)
	}
}

// TestPairClampAt1024 asserts the jittered pair transit never undercuts
// the pair's minimal transit on every new topology — the invariant the
// parallel engine's pair lookahead rides on.
func TestPairClampAt1024(t *testing.T) {
	for _, name := range []string{"cluster:16x64", "cluster:4x16x16", "mesh:32x32", "fattree:5"} {
		p, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		j := p.WithJitter(40, 0xfeed)
		n := p.ExpectNodes()
		pairs := [][2]int{{0, 1}, {0, n / 2}, {n - 1, 0}, {n/2 - 1, n / 2}, {7, n - 3}}
		for _, pr := range pairs {
			floor := p.TransitDelayPair(0, pr[0], pr[1])
			for now := sim.Time(0); now < 50*sim.Microsecond; now += 977 * sim.Nanosecond {
				if got := j.TransitDelayPairAt(0, now, pr[0], pr[1]); got < floor {
					t.Fatalf("%s: jittered transit %v under pair floor %v for %v at %v", name, got, floor, pr, now)
				}
			}
			if pm := p.PairMinLatency(pr[0], pr[1]); pm <= 0 || pm > floor {
				t.Errorf("%s: PairMinLatency(%v) = %v, floor %v", name, pr, pm, floor)
			}
		}
	}
}

// TestClusterLevelsBackCompat asserts a two-dim ClusterLevels shape is
// identical to the classic Cluster preset.
func TestClusterLevelsBackCompat(t *testing.T) {
	a, err := Cluster(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ClusterLevels([]int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.GroupSize != b.GroupSize || a.Groups != b.Groups || len(b.Hier) != 0 {
		t.Errorf("ClusterLevels([4,8]) diverges from Cluster(4,8): %+v vs %+v", b, a)
	}
}
