package network

import (
	"fmt"
	"strconv"
	"strings"

	"presto/internal/sim"
)

// This file grows the interconnect model beyond the flat presets and the
// two-level cluster: generalized multi-level cluster hierarchies, 2D
// meshes, and fat trees, all expressed through the same pair-aware
// primitives (TransitDelayPair / PairMinLatency) the parallel engine and
// the jitter clamp already consume. A topology only changes *transit*
// costs between specific node pairs; software messaging costs stay
// uniform, exactly as in the two-level cluster.

// MaxNodes caps every parameterized topology preset. 4096 bounds the
// pair-lookahead matrix and the per-node metrics registries; the scaling
// arc targets 1024.
const MaxNodes = 4096

// FabricLevel is one intermediate level of a hierarchical interconnect:
// node IDs i and j communicate over the innermost level whose Span-sized
// block contains both. Levels are listed innermost-first with strictly
// increasing spans; each span must be a multiple of the previous one
// (and of GroupSize). Pairs that no level covers use the top-level
// network (WireLatency/PerByteWire).
type FabricLevel struct {
	// Span is the number of consecutive node IDs per unit at this level.
	Span int
	// Wire is the transit time of a minimal message over this fabric.
	Wire sim.Time
	// PerByte is this fabric's occupancy per payload byte.
	PerByte sim.Time
}

// Grammars enumerates every legal -net / Preset spelling. Error messages
// and CLI help text quote it so the full vocabulary is always
// discoverable from a typo.
func Grammars() string {
	return "cm5, now, hwdsm, cluster:<groups>x<cores>, cluster:<groups>x<subgroups>x<cores>, mesh:<w>x<h> or fattree:<levels>"
}

// hierTransit is the in-flight delay over one intermediate fabric level.
func (p *Params) hierTransit(l FabricLevel, payload int) sim.Time {
	return l.Wire + sim.Time(payload+p.HeaderBytes)*l.PerByte
}

// Meshed reports whether the machine is arranged as a 2D mesh (a flat
// machine whose transit grows with Manhattan distance).
func (p *Params) Meshed() bool { return p.MeshW >= 1 && p.MeshH >= 1 && p.MeshW*p.MeshH >= 2 }

// meshHops returns the Manhattan distance between two mesh nodes.
func (p *Params) meshHops(i, j int) int {
	xi, yi := i%p.MeshW, i/p.MeshW
	xj, yj := j%p.MeshW, j/p.MeshW
	dx, dy := xi-xj, yi-yj
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// ExpectNodes returns the node count a topology preset pins, or 0 when
// any count is legal (the flat presets). rt.Machine.Run validates the
// simulated node count against it.
func (p *Params) ExpectNodes() int {
	if p.Meshed() {
		return p.MeshW * p.MeshH
	}
	if p.Clustered() && p.Groups > 0 {
		return p.Groups * p.GroupSize
	}
	return 0
}

// validateTopology extends Validate with the mesh and multi-level
// hierarchy invariants.
func (p *Params) validateTopology() error {
	if (p.MeshW != 0) != (p.MeshH != 0) || p.MeshW < 0 || p.MeshH < 0 {
		return fmt.Errorf("network: mesh dimensions %dx%d, want both positive or both zero", p.MeshW, p.MeshH)
	}
	if p.Meshed() {
		if p.Clustered() {
			return fmt.Errorf("network: a machine cannot be both a mesh and a cluster (MeshW/MeshH with GroupSize %d)", p.GroupSize)
		}
		if p.HopLatency < 0 {
			return fmt.Errorf("network: HopLatency = %v, must be non-negative", p.HopLatency)
		}
		if p.MeshW*p.MeshH > MaxNodes {
			return fmt.Errorf("network: mesh %dx%d exceeds %d nodes", p.MeshW, p.MeshH, MaxNodes)
		}
	}
	if len(p.Hier) > 0 && !p.Clustered() {
		return fmt.Errorf("network: Hier levels need GroupSize >= 2 (got %d)", p.GroupSize)
	}
	prev := p.GroupSize
	for i, l := range p.Hier {
		if l.Span <= prev || prev == 0 || l.Span%prev != 0 {
			return fmt.Errorf("network: Hier[%d].Span = %d, must be a strict multiple of the previous span %d", i, l.Span, prev)
		}
		if l.Wire <= 0 {
			return fmt.Errorf("network: Hier[%d].Wire = %v, must be positive", i, l.Wire)
		}
		if l.PerByte < 0 {
			return fmt.Errorf("network: Hier[%d].PerByte = %v, must be non-negative", i, l.PerByte)
		}
		prev = l.Span
	}
	if n := p.ExpectNodes(); n != 0 && len(p.Hier) > 0 && n%prev != 0 {
		return fmt.Errorf("network: outermost Hier span %d does not tile the %d-node machine", prev, n)
	}
	return nil
}

// ClusterLevels returns a hierarchical cluster machine from an
// outermost-first shape: shape[len-1] cores per innermost group,
// aggregated upward. A two-element shape is exactly the classic
// two-level Cluster; deeper shapes insert intermediate fabrics whose
// latency doubles per level between the hardware-DSM-class innermost
// fabric and the CM-5-class top-level network.
func ClusterLevels(shape []int) (*Params, error) {
	if len(shape) < 2 {
		return nil, fmt.Errorf("network: cluster needs at least <groups>x<cores> (got %d dims)", len(shape))
	}
	nodes := 1
	for i, d := range shape {
		min := 1
		if i == len(shape)-1 {
			min = 2 // innermost: a "cluster" of 1 core is just a flat machine
		}
		if d < min {
			return nil, fmt.Errorf("network: cluster dimension %d is %d, must be >= %d", i, d, min)
		}
		if nodes > MaxNodes/d {
			return nil, fmt.Errorf("network: cluster %s exceeds %d nodes", shapeString(shape), MaxNodes)
		}
		nodes *= d
	}
	p := *CM5()
	cores := shape[len(shape)-1]
	p.GroupSize = cores
	p.Groups = nodes / cores
	p.IntraWireLatency = 600 * sim.Nanosecond
	p.IntraPerByteWire = 3 * sim.Nanosecond
	// Intermediate levels, innermost-first: span grows by each further
	// dimension, latency doubles per level toward the top-level wire.
	span := cores
	wire := p.IntraWireLatency
	perByte := p.IntraPerByteWire
	for i := len(shape) - 2; i >= 1; i-- {
		span *= shape[i]
		wire *= 2
		perByte *= 2
		p.Hier = append(p.Hier, FabricLevel{Span: span, Wire: wire, PerByte: perByte})
	}
	return mustValid(&p), nil
}

// Mesh returns a flat machine arranged as a w x h 2D mesh: transit
// between nodes grows by HopLatency per Manhattan hop beyond the first,
// so neighbors pay exactly the CM-5 transit and far corners pay the
// full diameter. Node i sits at (i mod w, i div w). Software costs are
// CM-5-class; only transit is topology-aware.
func Mesh(w, h int) (*Params, error) {
	if w < 1 || h < 1 || w*h < 2 {
		return nil, fmt.Errorf("network: mesh needs positive dimensions with >= 2 nodes (got %dx%d)", w, h)
	}
	if w*h > MaxNodes {
		return nil, fmt.Errorf("network: mesh %dx%d exceeds %d nodes", w, h, MaxNodes)
	}
	p := *CM5()
	p.MeshW, p.MeshH = w, h
	p.HopLatency = 1 * sim.Microsecond
	return mustValid(&p), nil
}

// FatTree returns a 4-ary fat tree with the given number of levels:
// 4^levels nodes in leaf groups of 4, with one intermediate fabric per
// internal level. Wire latency doubles per level upward (600ns at the
// leaves), modeling the longer cable runs and switch traversals; the
// per-byte cost also doubles, modeling the oversubscription a real fat
// tree's thinning links impose.
func FatTree(levels int) (*Params, error) {
	if levels < 2 || levels > 6 {
		return nil, fmt.Errorf("network: fattree needs 2..6 levels (got %d; 4^levels nodes, max %d)", levels, MaxNodes)
	}
	p := *CM5()
	nodes := 1
	for i := 0; i < levels; i++ {
		nodes *= 4
	}
	p.GroupSize = 4
	p.Groups = nodes / 4
	p.IntraWireLatency = 600 * sim.Nanosecond
	p.IntraPerByteWire = 3 * sim.Nanosecond
	span := 4
	wire := p.IntraWireLatency
	perByte := p.IntraPerByteWire
	for k := 2; k <= levels; k++ {
		span *= 4
		wire *= 2
		perByte *= 2
		if k < levels {
			p.Hier = append(p.Hier, FabricLevel{Span: span, Wire: wire, PerByte: perByte})
		} else {
			// The root level is the machine's top-level network.
			p.WireLatency = wire
			p.PerByteWire = perByte
		}
	}
	return mustValid(&p), nil
}

// shapeString renders a cluster shape as its preset spelling.
func shapeString(shape []int) string {
	parts := make([]string, len(shape))
	for i, d := range shape {
		parts[i] = strconv.Itoa(d)
	}
	return "cluster:" + strings.Join(parts, "x")
}

// parseDims splits "4x8" / "4x4x8" into integer dimensions.
func parseDims(s string) ([]int, bool) {
	parts := strings.Split(s, "x")
	if len(parts) < 1 {
		return nil, false
	}
	dims := make([]int, len(parts))
	for i, ps := range parts {
		v, err := strconv.Atoi(ps)
		if err != nil {
			return nil, false
		}
		dims[i] = v
	}
	return dims, true
}
