package network

import (
	"strings"
	"testing"

	"presto/internal/sim"
)

// TestClusterPreset pins the cluster:<groups>x<cores> parser and the
// two-level topology it produces.
func TestClusterPreset(t *testing.T) {
	p, err := Preset("cluster:4x8")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Clustered() || p.Groups != 4 || p.GroupSize != 8 {
		t.Fatalf("cluster:4x8 => Groups %d GroupSize %d Clustered %v", p.Groups, p.GroupSize, p.Clustered())
	}
	if g := p.GroupOf(9); g != 1 {
		t.Fatalf("GroupOf(9) = %d, want 1", g)
	}
	if !p.SameGroup(8, 15) || p.SameGroup(7, 8) {
		t.Fatal("SameGroup boundary wrong at the 8/15 vs 7/8 edge")
	}
	for _, bad := range []string{"cluster:", "cluster:4", "cluster:x8", "cluster:4x", "cluster:ax8", "cluster:0x8", "cluster:4x1", "cluster:4096x2"} {
		if _, err := Preset(bad); err == nil {
			t.Fatalf("Preset(%q) accepted", bad)
		}
	}
	if _, err := Preset("bogus"); err == nil || !strings.Contains(err.Error(), "cluster:<groups>x<cores>") {
		t.Fatalf("unknown-preset error should advertise the cluster form, got %v", err)
	}
}

// TestPairMinLatencyMatrix pins the parallel engine's lookahead matrix:
// intra-group pairs see the (small) intra fabric transit, cross-group
// pairs the (large) top-level transit, and both are capped by the barrier
// cost. On flat presets every pair collapses to MinLatency.
func TestPairMinLatencyMatrix(t *testing.T) {
	p, err := Preset("cluster:2x2")
	if err != nil {
		t.Fatal(err)
	}
	intra := p.PairMinLatency(0, 1) // nodes 0,1 share group 0
	inter := p.PairMinLatency(1, 2) // groups 0 and 1
	if want := p.intraTransit(0); intra != want {
		t.Fatalf("intra pair lookahead = %v, want intra transit %v", intra, want)
	}
	if want := p.TransitDelay(0); inter != want {
		t.Fatalf("inter pair lookahead = %v, want top-level transit %v", inter, want)
	}
	if inter <= intra {
		t.Fatalf("cross-group lookahead %v not wider than intra %v", inter, intra)
	}
	if p.MinLatency() != intra {
		t.Fatalf("clustered MinLatency = %v, want intra minimum %v", p.MinLatency(), intra)
	}
	if pair := p.PairMinLatency(0, 1); pair > p.BarrierLatency {
		t.Fatalf("pair lookahead %v exceeds barrier %v", pair, p.BarrierLatency)
	}
	for _, flat := range []*Params{CM5(), NOW(), HardwareDSM()} {
		if flat.Clustered() {
			t.Fatal("flat preset reports Clustered")
		}
		if got, want := flat.PairMinLatency(0, 5), flat.MinLatency(); got != want {
			t.Fatalf("flat PairMinLatency = %v, want MinLatency %v", got, want)
		}
		if got, want := flat.TransitDelayPair(64, 2, 3), flat.TransitDelay(64); got != want {
			t.Fatalf("flat TransitDelayPair = %v, want TransitDelay %v", got, want)
		}
	}
}

// TestClusterTransitPair pins that payload costs ride the right wire.
func TestClusterTransitPair(t *testing.T) {
	p, err := Cluster(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.TransitDelayPair(64, 0, 3), p.intraTransit(64); got != want {
		t.Fatalf("intra transit = %v, want %v", got, want)
	}
	if got, want := p.TransitDelayPair(64, 3, 4), p.TransitDelay(64); got != want {
		t.Fatalf("inter transit = %v, want %v", got, want)
	}
}

// TestTransitDelayPairAtClamp: jitter may stretch a transit but can never
// pull it below the pair's minimal transit — otherwise a jittered message
// could undercut the per-lane-pair lookahead and break the parallel
// engine's conservative windows.
func TestTransitDelayPairAtClamp(t *testing.T) {
	base, err := Cluster(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := base.WithJitter(25, 0xfeed)
	for now := sim.Time(0); now < 200*sim.Microsecond; now += 977 * sim.Nanosecond {
		for src := 0; src < 4; src++ {
			for dst := 0; dst < 4; dst++ {
				if src == dst {
					continue
				}
				d := p.TransitDelayPairAt(0, now, src, dst)
				if min := p.TransitDelayPair(0, src, dst); d < min {
					t.Fatalf("jittered transit %v below pair floor %v (now %v, %d->%d)", d, min, now, src, dst)
				}
			}
		}
	}
	// Flat params: pair-aware jitter must be byte-identical to the scalar
	// path (same hash inputs, same clamp) so existing fingerprints hold.
	f := CM5().WithJitter(25, 0xbeef)
	for now := sim.Time(0); now < 100*sim.Microsecond; now += 1013 * sim.Nanosecond {
		if a, b := f.TransitDelayPairAt(32, now, 1, 2), f.TransitDelayAt(32, now, 1, 2); a != b {
			t.Fatalf("flat pair-aware transit %v != scalar %v at %v", a, b, now)
		}
	}
}

// TestClusterValidate pins the new Validate clauses.
func TestClusterValidate(t *testing.T) {
	p, _ := Cluster(2, 2)
	bad := *p
	bad.IntraWireLatency = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero IntraWireLatency accepted on a clustered machine")
	}
	bad = *p
	bad.IntraPerByteWire = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative IntraPerByteWire accepted")
	}
	bad = *CM5()
	bad.Groups = 4 // groups without a group size is meaningless
	if err := bad.Validate(); err == nil {
		t.Fatal("Groups without GroupSize accepted")
	}
	bad = *CM5()
	bad.GroupSize = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative GroupSize accepted")
	}
}
