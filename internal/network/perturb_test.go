package network

import (
	"testing"

	"presto/internal/sim"
)

// TestJitterBounds checks the perturbation layer's two contracts: every
// jittered cost stays within ±JitterPct of its base, and transit delays
// never drop below MinLatency (the parallel engine's lookahead).
func TestJitterBounds(t *testing.T) {
	for _, base := range []*Params{CM5(), NOW(), HardwareDSM()} {
		for _, pct := range []int{1, 5, 25, 50} {
			p := base.WithJitter(pct, 0xfeed)
			if err := p.Validate(); err != nil {
				t.Fatalf("jittered params invalid: %v", err)
			}
			for i := 0; i < 500; i++ {
				now := sim.Time(i) * 37 * sim.Microsecond
				payload := (i * 13) % 512
				src, dst := i%8, (i*3+1)%8

				d := p.TransitDelayAt(payload, now, src, dst)
				if d < p.MinLatency() {
					t.Fatalf("%d%% jitter: transit %v below lookahead %v", pct, d, p.MinLatency())
				}
				checkWithin(t, pct, base.TransitDelay(payload), d)

				s := p.SendCostAt(payload, now, src, dst)
				checkWithin(t, pct, base.SendCost(payload), s)

				r := p.RecvOverheadAt(now, dst)
				checkWithin(t, pct, base.RecvOverhead, r)
			}
		}
	}
}

// checkWithin asserts got ∈ [base·(1-pct%), base·(1+pct%)] with one unit
// of slack for the basis-point rounding.
func checkWithin(t *testing.T, pct int, base, got sim.Time) {
	t.Helper()
	span := sim.Time(int64(base) * int64(pct) / 100)
	if got < base-span-1 || got > base+span+1 {
		t.Fatalf("%d%% jitter: %v strays outside %v ± %v", pct, got, base, span)
	}
}

// TestJitterDeterministic: the perturbation is a pure function of
// (seed, virtual time, endpoints, payload) — identical inputs give
// identical costs, and at least one input actually perturbs.
func TestJitterDeterministic(t *testing.T) {
	p := CM5().WithJitter(25, 42)
	q := CM5().WithJitter(25, 42)
	varied := false
	for i := 0; i < 200; i++ {
		now := sim.Time(i) * sim.Microsecond
		a := p.TransitDelayAt(64, now, 0, 1)
		b := q.TransitDelayAt(64, now, 0, 1)
		if a != b {
			t.Fatalf("jitter not reproducible: %v vs %v", a, b)
		}
		if a != CM5().TransitDelay(64) {
			varied = true
		}
	}
	if !varied {
		t.Fatalf("25%% jitter never perturbed any transit")
	}
	// Distinct seeds must explore distinct orderings.
	r := CM5().WithJitter(25, 43)
	same := true
	for i := 0; i < 200 && same; i++ {
		now := sim.Time(i) * sim.Microsecond
		same = p.TransitDelayAt(64, now, 0, 1) == r.TransitDelayAt(64, now, 0, 1)
	}
	if same {
		t.Fatalf("seeds 42 and 43 produce identical jitter streams")
	}
}

// TestZeroJitterIsIdentity: without jitter the *At variants equal the
// base cost model exactly.
func TestZeroJitterIsIdentity(t *testing.T) {
	p := CM5()
	for i := 0; i < 100; i++ {
		now := sim.Time(i) * sim.Microsecond
		if p.TransitDelayAt(64, now, 0, 1) != p.TransitDelay(64) ||
			p.SendCostAt(64, now, 0, 1) != p.SendCost(64) ||
			p.RecvOverheadAt(now, 1) != p.RecvOverhead {
			t.Fatalf("zero-jitter params perturb costs")
		}
	}
}

func TestValidate(t *testing.T) {
	for _, name := range []string{"cm5", "now", "hwdsm"} {
		p, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("preset %s invalid: %v", name, err)
		}
	}
	if _, err := Preset("ethernet"); err == nil {
		t.Fatalf("unknown preset accepted")
	}

	bad := CM5()
	bad.RecvOverhead = 0
	if err := bad.Validate(); err == nil {
		t.Fatalf("zero RecvOverhead accepted")
	}
	bad = CM5()
	bad.PerByteWire = -1
	if err := bad.Validate(); err == nil {
		t.Fatalf("negative PerByteWire accepted")
	}
	bad = CM5()
	bad.JitterPct = 100
	if err := bad.Validate(); err == nil {
		t.Fatalf("JitterPct 100 accepted")
	}
	bad = CM5()
	bad.WireLatency = 0
	bad.BarrierLatency = 0
	if err := bad.Validate(); err == nil {
		t.Fatalf("degenerate MinLatency accepted")
	}
}
