package predict

import (
	"fmt"
	"strings"
	"testing"

	"presto/internal/chaos"
	"presto/internal/network"
	"presto/internal/rt"
)

// calSpec derives a chaos workload pinned to the predictor's calibration
// conventions: 32-byte blocks, no jitter.
func calSpec(seed int64) chaos.Spec {
	s := chaos.Derive(seed, chaos.ScaleQuick)
	s.BlockSize = 32
	s.JitterPct = 0
	return s
}

// TestIdentityExact locks the model's anchor: predicting the calibration
// configuration itself must reproduce elapsed time, breakdown and
// counters exactly — not approximately.
func TestIdentityExact(t *testing.T) {
	for _, proto := range []rt.ProtocolKind{rt.ProtoStache, rt.ProtoPredictive} {
		s := calSpec(7)
		rc := chaos.RunConfig{Protocol: proto, Engine: rt.EngineSerial}
		m, err := chaos.ExecuteCalibration(s, rc)
		if err != nil {
			t.Fatal(err)
		}
		cal, err := Calibrate(m, "identity")
		if err != nil {
			t.Fatal(err)
		}
		p, err := cal.Predict(Target{})
		if err != nil {
			t.Fatal(err)
		}
		if p.ElapsedNS != cal.ElapsedNS {
			t.Fatalf("%s: identity elapsed %d != calibration %d", proto, p.ElapsedNS, cal.ElapsedNS)
		}
		if p.Breakdown != m.Breakdown() {
			t.Fatalf("%s: identity breakdown %+v != %+v", proto, p.Breakdown, m.Breakdown())
		}
		if p.Counters != m.Counters() {
			t.Fatalf("%s: identity counters %+v != %+v", proto, p.Counters, m.Counters())
		}
	}
}

// TestRecordingDoesNotPerturb asserts the observation-only contract: a
// calibration run's fingerprint is byte-identical to a plain run's.
func TestRecordingDoesNotPerturb(t *testing.T) {
	s := calSpec(11)
	rc := chaos.RunConfig{Protocol: rt.ProtoPredictive, Engine: rt.EngineSerial}
	plain := chaos.ExecuteRun(s, rc)
	if plain.Err != "" {
		t.Fatal(plain.Err)
	}
	m, err := chaos.ExecuteCalibration(s, rc)
	if err != nil {
		t.Fatal(err)
	}
	if got := int64(m.Elapsed()); got != plain.ElapsedNS {
		t.Fatalf("recording perturbed the run: elapsed %d != %d", got, plain.ElapsedNS)
	}
	if got := m.Counters(); got != plain.Counters {
		t.Fatalf("recording perturbed the run: counters %+v != %+v", got, plain.Counters)
	}
}

// TestBlockSizeExtrapolation sanity-checks the block-size axis on a few
// seeds: predictions must land within a loose band of the simulation
// (the strict <15% MAE gate runs over the full chaos band and figure
// sweeps in CI).
func TestBlockSizeExtrapolation(t *testing.T) {
	table := &ErrorTable{}
	for seed := int64(0); seed < 4; seed++ {
		s := calSpec(seed)
		proto := rt.ProtoStache
		if seed%2 == 1 {
			proto = rt.ProtoPredictive
		}
		rc := chaos.RunConfig{Protocol: proto, Engine: rt.EngineSerial}
		m, err := chaos.ExecuteCalibration(s, rc)
		if err != nil {
			t.Fatal(err)
		}
		cal, err := Calibrate(m, "bs")
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 2, 3} {
			bs := 32 << k
			p, err := cal.Predict(Target{BlockSize: bs})
			if err != nil {
				t.Fatal(err)
			}
			sim := s
			sim.BlockSize = bs
			fp := chaos.ExecuteRun(sim, rc)
			if fp.Err != "" {
				t.Fatal(fp.Err)
			}
			table.Add("bs", fmt.Sprintf("seed %d", seed), bs, p.ElapsedNS, fp.ElapsedNS)
		}
	}
	t.Logf("block-size extrapolation MAE %.2f%% (max %.2f%%)", table.MAE(), table.MaxErr())
	if mae := table.MAE(); mae > 25 {
		t.Fatalf("block-size extrapolation MAE %.2f%% exceeds the 25%% smoke bound", mae)
	}
}

// TestNetworkExtrapolation predicts a calibrated workload onto different
// interconnects, including a clustered one, and checks against simulation.
func TestNetworkExtrapolation(t *testing.T) {
	s := calSpec(3)
	s.Net = "cm5"
	rc := chaos.RunConfig{Protocol: rt.ProtoStache, Engine: rt.EngineSerial}
	m, err := chaos.ExecuteCalibration(s, rc)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := Calibrate(m, "net")
	if err != nil {
		t.Fatal(err)
	}
	table := &ErrorTable{}
	for _, preset := range []string{"now", "hwdsm", fmt.Sprintf("cluster:%dx2", s.Nodes/2)} {
		if s.Nodes%2 != 0 {
			break
		}
		net, err := network.Preset(preset)
		if err != nil {
			t.Fatal(err)
		}
		p, err := cal.Predict(Target{Net: net})
		if err != nil {
			t.Fatal(err)
		}
		sim := s
		sim.Net = preset
		fp := chaos.ExecuteRun(sim, rc)
		if fp.Err != "" {
			t.Fatal(fp.Err)
		}
		table.Add("net", preset, s.BlockSize, p.ElapsedNS, fp.ElapsedNS)
	}
	t.Logf("network extrapolation MAE %.2f%% (max %.2f%%)", table.MAE(), table.MaxErr())
	if mae := table.MAE(); mae > 40 {
		t.Fatalf("network extrapolation MAE %.2f%% exceeds the 40%% smoke bound", mae)
	}
}

// TestChaosBandSmoke runs a small band end to end. The chaos band is
// adversarial by construction (randomized conflict storms and RMW
// contention); its standalone error runs higher than the structured
// figure workloads, so the smoke bound here is looser than the 15%
// CI gate, which applies to the combined figure-sweep + chaos table.
func TestChaosBandSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos band runs full simulations")
	}
	table, err := ChaosBand(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 6*len(chaosBandShifts) {
		t.Fatalf("got %d rows, want %d", len(table.Rows), 6*len(chaosBandShifts))
	}
	t.Logf("chaos band MAE %.2f%% (max %.2f%%)", table.MAE(), table.MaxErr())
	if mae := table.MAE(); mae > 30 {
		t.Fatalf("chaos band MAE %.2f%% exceeds the 30%% smoke bound", mae)
	}
}

// TestPredictZeroAlloc locks the sweep hot path: Predict on a built
// calibration allocates nothing.
func TestPredictZeroAlloc(t *testing.T) {
	cal := Synthetic(16, 4)
	nets := []*network.Params{network.CM5(), network.NOW(), network.HardwareDSM()}
	var sink int64
	allocs := testing.AllocsPerRun(100, func() {
		for _, net := range nets {
			for k := 0; k <= MaxShift; k++ {
				p, err := cal.Predict(Target{BlockSize: 32 << k, Net: net})
				if err != nil {
					t.Fatal(err)
				}
				sink += p.ElapsedNS
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("Predict allocates %.1f per sweep, want 0", allocs)
	}
	_ = sink
}

// TestTargetValidation covers the error paths.
func TestTargetValidation(t *testing.T) {
	cal := Synthetic(4, 2)
	if _, err := cal.Predict(Target{BlockSize: 48}); err != ErrBlockSize {
		t.Fatalf("48B target: got %v, want ErrBlockSize", err)
	}
	if _, err := cal.Predict(Target{BlockSize: 32 << (MaxShift + 1)}); err != ErrBlockSize {
		t.Fatalf("oversized target: got %v, want ErrBlockSize", err)
	}
	if _, err := cal.Predict(Target{Nodes: -1}); err != ErrNodes {
		t.Fatalf("negative nodes: got %v, want ErrNodes", err)
	}
	if _, err := cal.Predict(Target{BlockSize: 64, Nodes: 8}); err != nil {
		t.Fatalf("valid target rejected: %v", err)
	}
}

// TestCalibrateRequiresInstrumentation rejects machines missing the
// profiler or recorder.
func TestCalibrateRequiresInstrumentation(t *testing.T) {
	m := rt.New(rt.Config{Nodes: 2, BlockSize: 32})
	if _, err := Calibrate(m, "x"); err == nil {
		t.Fatal("calibrated a machine without Profile/Record")
	}
}

// TestPhasesForecast checks the per-phase view: identity spans sum to the
// calibration elapsed time (after normalization) and every calibration
// phase appears.
func TestPhasesForecast(t *testing.T) {
	s := calSpec(5)
	rc := chaos.RunConfig{Protocol: rt.ProtoStache, Engine: rt.EngineSerial}
	m, err := chaos.ExecuteCalibration(s, rc)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := Calibrate(m, "phases")
	if err != nil {
		t.Fatal(err)
	}
	fc, err := cal.Phases(Target{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fc) == 0 || fc[0].Phase != -1 {
		t.Fatalf("forecast must lead with the (outside) phase, got %+v", fc)
	}
	var sum int64
	for _, f := range fc {
		sum += f.SpanNS
	}
	if sum == 0 {
		t.Fatal("zero total span")
	}
}

// TestErrorTableCSV locks the CSV shape.
func TestErrorTableCSV(t *testing.T) {
	table := &ErrorTable{}
	table.Add("figure5", "C** opt (32)", 32, 1_000_000, 1_100_000)
	var b strings.Builder
	table.WriteCSV(&b)
	want := "experiment,version,block_bytes,predicted_s,simulated_s,abs_pct_err\nfigure5,C** opt (32),32,0.001000,0.001100,9.09\n"
	if b.String() != want {
		t.Fatalf("CSV mismatch:\n%q\nwant\n%q", b.String(), want)
	}
	if table.MAE() == 0 || table.MaxErr() == 0 {
		t.Fatal("error stats empty")
	}
}
