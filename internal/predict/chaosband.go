package predict

import (
	"fmt"

	"presto/internal/chaos"
	"presto/internal/rt"
)

// chaosBandShifts are the block-size extrapolations each seed validates
// (from the forced 32-byte calibration point).
var chaosBandShifts = []int{1, 2, 3} // 64, 128, 256 bytes

// ChaosBand sweeps a band of chaos seeds: each seed derives a synthetic
// workload, runs one 32-byte calibration simulation, and validates the
// predictor against full simulations at larger block sizes. Seeds
// alternate protocol (stache on even, predictive on odd). Jitter is
// forced off — the predictor models deterministic interconnects, and a
// jittered band would measure the jitter, not the model.
func ChaosBand(seeds int) (*ErrorTable, error) {
	return ChaosBandShifts(seeds, chaosBandShifts)
}

// ChaosBandShifts is ChaosBand restricted to the given block-size shifts.
// The CI predict-validate gate runs the 2x band (shift 1), where the
// adversarial seeds stay inside the model's gated error budget; the wider
// extrapolations are reported as an informational table (DESIGN.md §13).
func ChaosBandShifts(seeds int, shifts []int) (*ErrorTable, error) {
	table := &ErrorTable{}
	for seed := int64(0); seed < int64(seeds); seed++ {
		s := chaos.Derive(seed, chaos.ScaleQuick)
		s.BlockSize = 32
		s.JitterPct = 0
		proto := rt.ProtoStache
		if seed%2 == 1 {
			proto = rt.ProtoPredictive
		}
		rc := chaos.RunConfig{Protocol: proto, Engine: rt.EngineSerial}

		m, err := chaos.ExecuteCalibration(s, rc)
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", seed, err)
		}
		cal, err := Calibrate(m, fmt.Sprintf("chaos-%d", seed))
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", seed, err)
		}
		for _, k := range shifts {
			bs := s.BlockSize << k
			p, err := cal.Predict(Target{BlockSize: bs})
			if err != nil {
				return nil, fmt.Errorf("seed %d bs %d: %w", seed, bs, err)
			}
			sim := s
			sim.BlockSize = bs
			fp := chaos.ExecuteRun(sim, rc)
			if fp.Err != "" {
				return nil, fmt.Errorf("seed %d bs %d: simulation failed: %s", seed, bs, fp.Err)
			}
			table.Add("chaos-band", fmt.Sprintf("seed %d %s", seed, proto), bs, p.ElapsedNS, fp.ElapsedNS)
		}
	}
	return table, nil
}
