// Package predict is the analytical fast path: it turns one recorded
// calibration simulation per (program, protocol) pair into elapsed-time
// and breakdown predictions across block sizes, node counts and network
// presets — no event simulation (ROADMAP item 4, after PPT-Multicore).
//
// A calibration run executes with both the causal profiler
// (rt.Config.Profile) and the communication recorder (rt.Config.Record)
// enabled. Calibrate distills it into per-(phase, node) attribution
// buckets plus conflict-aware per-block-size fault and pre-send counts;
// Predict then rescales each bucket by analytically derived cost ratios
// and recombines per-phase critical spans into an elapsed-time estimate.
// The model is exact at the calibration point — predicting the
// calibration configuration reproduces its elapsed time, breakdown and
// counters bit for bit — and stays within the validated error band
// (DESIGN.md §13) across the figure 5-7 sweeps and chaos seed bands.
package predict

import (
	"errors"
	"fmt"

	"presto/internal/network"
	"presto/internal/rt"
	"presto/internal/sim"
)

// MaxShift bounds block-size extrapolation: targets may use any block
// size from the calibration size B0 up to B0<<MaxShift.
const MaxShift = 6

// Target names one configuration to predict. Zero fields mean "as
// calibrated".
type Target struct {
	// BlockSize must be the calibration block size shifted left by at
	// most MaxShift (the fault-coarsening tables are per power of two).
	BlockSize int
	// Net overrides the interconnect (any preset, flat or cluster:GxC).
	Net *network.Params
	// Nodes overrides the node count. The communication schedule keeps
	// the calibration decomposition; compute is conserved and pair
	// latencies use a virtual-to-physical node mapping, so node-count
	// extrapolation is coarser than the block-size and network axes.
	Nodes int
}

// Prediction is one extrapolated configuration: the same quantities a
// simulation reports, without running one.
type Prediction struct {
	ElapsedNS int64
	Breakdown rt.Breakdown
	Counters  rt.Counters
}

// PhaseForecast is one parallel phase's predicted contribution.
type PhaseForecast struct {
	Phase  int
	Name   string
	SpanNS int64 // predicted critical span of the phase
}

// Errors returned by Predict for malformed targets.
var (
	ErrBlockSize = errors.New("predict: target block size is not the calibration size shifted by 0..MaxShift")
	ErrNodes     = errors.New("predict: target node count must be positive")
)

// nodeCal is one (phase, node) slot of the calibration: the causal
// buckets plus target-independent denominators for the ratio model.
type nodeCal struct {
	compute, transit, occupancy, service float64
	barrier, stall, presend              float64
	busy0                                float64 // bucket sum excluding barrier and idle
	lambda0                              float64 // Σ_h hist0[h]·λ(cal net, B0, n, h)
	tau0                                 float64 // Σ_h hist0[h]·τ(cal net, B0, n, h)
}

// phaseCal is one parallel phase of the calibration. A phase's span
// decomposes into the critical node's busy time plus synchronization
// slack (barrier wait + release + idle) that the remaining nodes absorb.
type phaseCal struct {
	id        int
	name      string
	span0     float64 // max over nodes of the phase's total time (incl idle)
	busyCrit0 float64 // max over nodes of busy time
	sumBusy0  float64 // Σ over nodes of busy time
	nodes     []nodeCal
}

// shiftCal holds the conflict-aware fault and pre-send counts for one
// block-size shift k (block size B0<<k), flattened for cache locality.
type shiftCal struct {
	faults    []float64 // [phase*N0+n] weighted fault count
	faultHome []float64 // [(phase*N0+n)*N0+h] fault count served by home h
	imb       []float64 // [phase] replayed imbalance slack (cal-net units)
	stallq    []float64 // [phase*nodes+node] replayed stall incl. queuing
	reads     float64   // machine-wide read faults
	writes    float64   // machine-wide write faults
	presends  float64   // machine-wide pre-send arrivals
}

// Calibration is the distilled calibration run. Build one with
// Calibrate (or Synthetic for benchmarks); Predict is allocation-free,
// so a single calibration answers thousand-configuration sweeps in
// microseconds each.
type Calibration struct {
	App       string
	Protocol  string
	Nodes     int // N0
	BlockSize int // B0
	Net       *network.Params
	ElapsedNS int64

	bd0      rt.Breakdown
	ct0      rt.Counters
	sumSpan0 float64
	phases   []phaseCal
	shifts   [MaxShift + 1]shiftCal
}

// lambda is the model's per-fault miss latency: a two-hop request/reply
// between faulter n and home h (pair-aware, so cluster targets see the
// intra-group fabric when both ends share a group).
func lambda(p *network.Params, block, n, h int) float64 {
	return float64(p.FaultDetect + p.SendCost(0) + p.TransitDelayPair(0, n, h) +
		p.RecvOverhead + p.SendCost(block) + p.TransitDelayPair(block, h, n) + p.RecvOverhead)
}

// tau is the in-flight portion of the reply (the transit bucket's unit
// cost).
func tau(p *network.Params, block, n, h int) float64 {
	return float64(p.TransitDelayPair(block, h, n))
}

// scale returns v rescaled by num/den, keeping v when the denominator
// vanishes. The division happens first so that num==den yields exactly
// v — the identity-exactness guarantee rides on this.
func scale(v, num, den float64) float64 {
	if den == 0 {
		return v
	}
	return v * (num / den)
}

// shiftOf maps a target block size to its shift index.
func (c *Calibration) shiftOf(bs int) (int, error) {
	if bs == 0 {
		return 0, nil
	}
	for k := 0; k <= MaxShift; k++ {
		if c.BlockSize<<k == bs {
			return k, nil
		}
	}
	return 0, ErrBlockSize
}

// Predict extrapolates the calibration to the target configuration.
// It allocates nothing: sweeping thousands of targets reuses the same
// calibration tables.
func (c *Calibration) Predict(t Target) (Prediction, error) {
	k, err := c.shiftOf(t.BlockSize)
	if err != nil {
		return Prediction{}, err
	}
	net := t.Net
	if net == nil {
		net = c.Net
	}
	n1 := t.Nodes
	if n1 == 0 {
		n1 = c.Nodes
	}
	if n1 <= 0 {
		return Prediction{}, ErrNodes
	}
	return c.predict(k, net, n1, nil), nil
}

// Phases returns the per-phase span forecast for a target (the
// figure-style per-phase view; allocates the result slice).
func (c *Calibration) Phases(t Target) ([]PhaseForecast, error) {
	k, err := c.shiftOf(t.BlockSize)
	if err != nil {
		return nil, err
	}
	net := t.Net
	if net == nil {
		net = c.Net
	}
	n1 := t.Nodes
	if n1 == 0 {
		n1 = c.Nodes
	}
	if n1 <= 0 {
		return nil, ErrNodes
	}
	out := make([]PhaseForecast, len(c.phases))
	c.predict(k, net, n1, out)
	return out, nil
}

// predict is the model core. out, when non-nil, receives one
// PhaseForecast per calibration phase.
func (c *Calibration) predict(k int, net *network.Params, n1 int, out []PhaseForecast) Prediction {
	n0 := c.Nodes
	b1 := c.BlockSize << k
	sc := &c.shifts[k]
	s0 := &c.shifts[0]

	// Machine-wide unit-cost ratios (target cost over calibration cost).
	occR := ratio(float64(net.FaultDetect+net.SendCost(0)), float64(c.Net.FaultDetect+c.Net.SendCost(0)))
	svcR := ratio(float64(net.RecvOverhead), float64(c.Net.RecvOverhead))
	psCostR := ratio(float64(net.SendCost(b1)), float64(c.Net.SendCost(c.BlockSize)))
	psCntR := ratio(sc.presends, s0.presends)
	compR := float64(n0) / float64(n1)

	var sumSpanT, slackT, slack0 float64
	var gRW0, gRWT, gPS0, gPST float64
	for pi := range c.phases {
		ph := &c.phases[pi]
		var critT, phLamT, phLamK0 float64
		var phStallT, phStall0 float64
		for n := 0; n < n0; n++ {
			nc := &ph.nodes[n]
			pn := n * n1 / n0 // virtual node's physical position
			// Home-weighted per-fault latency and transit numerators at
			// the target shift's fault distribution, plus the same sum
			// under the calibration network (phLamK0) to isolate the
			// network's cost ratio from the fault-count change.
			base := (pi*n0 + n) * n0
			var lamT, tauT, lamK0 float64
			hist := sc.faultHome[base : base+n0]
			for h := 0; h < n0; h++ {
				w := hist[h]
				if w == 0 {
					continue
				}
				phh := h * n1 / n0
				lamT += w * lambda(net, b1, pn, phh)
				tauT += w * tau(net, b1, pn, phh)
				lamK0 += w * lambda(c.Net, b1, n, h)
			}
			phLamT += lamT
			phLamK0 += lamK0
			fK := sc.faults[pi*n0+n]
			f0 := s0.faults[pi*n0+n]

			computeT := nc.compute * compR
			// Stall scales with the replay's charged wait (miss round
			// trips plus queuing behind in-flight transfers), carried to
			// the target network by the per-fault cost-mix ratio.
			stallT := scale(nc.stall, sc.stallq[pi*n0+n]*ratio(lamT, lamK0), s0.stallq[pi*n0+n])
			transitT := scale(nc.transit, tauT, nc.tau0)
			occT := scale(nc.occupancy, fK, f0) * occR
			serviceT := scale(nc.service, fK, f0) * svcR
			presendT := nc.presend * psCntR * psCostR

			phStallT += stallT
			phStall0 += nc.stall
			busyT := computeT + stallT + transitT + occT + serviceT + presendT
			if busyT > critT {
				critT = busyT
			}
			gRW0 += nc.stall + nc.occupancy + nc.transit
			gRWT += stallT + occT + transitT
			gPS0 += nc.presend
			gPST += presendT
		}
		// Phase span: the critical node's busy time plus synchronization
		// slack (straggler wait plus barrier cost). The replay explains
		// the alternating-straggler part of the slack — its cross-shift
		// delta (network-rescaled) adjusts that share directly. The
		// remainder (barrier latency, stall variance the reconstruction
		// cannot see) is assumed to track the phase's total stall volume
		// and scales with the stall ratio.
		slack0ph := ph.span0 - ph.busyCrit0
		if slack0ph < 0 {
			slack0ph = 0
		}
		netR := ratio(phLamT, phLamK0)
		replAdj := (sc.imb[pi] - s0.imb[pi]) * netR
		w := 0.0
		if slack0ph > 0 && s0.imb[pi] > 0 {
			w = s0.imb[pi] / slack0ph
			if w > 1 {
				w = 1
				replAdj = slack0ph * (sc.imb[pi]/s0.imb[pi] - 1) * netR
			}
		}
		slackTph := slack0ph*netR + replAdj +
			(1-w)*slack0ph*(ratio(phStallT, phStall0)-netR)
		if slackTph < 0 {
			slackTph = 0
		}
		spanT := critT + slackTph
		sumSpanT += spanT
		slackT += slackTph
		slack0 += slack0ph
		if out != nil {
			out[pi] = PhaseForecast{Phase: ph.id, Name: ph.name, SpanNS: round(spanT)}
		}
	}

	elapsed := scale(float64(c.ElapsedNS), sumSpanT, c.sumSpan0)

	var p Prediction
	p.ElapsedNS = round(elapsed)
	p.Breakdown = rt.Breakdown{
		Elapsed:    sim.Time(p.ElapsedNS),
		Compute:    sim.Time(round(float64(c.bd0.Compute) * compR)),
		RemoteWait: sim.Time(round(scale(float64(c.bd0.RemoteWait), gRWT, gRW0))),
		Presend:    sim.Time(round(scale(float64(c.bd0.Presend), gPST, gPS0))),
		Sync:       sim.Time(round(scale(float64(c.bd0.Sync), slackT, slack0))),
	}

	readR := ratio(sc.reads, s0.reads)
	writeR := ratio(sc.writes, s0.writes)
	actR := ratio(sc.reads+sc.writes+sc.presends, s0.reads+s0.writes+s0.presends)
	msgs := round(float64(c.ct0.MsgsSent) * actR)
	hdr0 := float64(c.ct0.MsgsSent) * float64(c.Net.HeaderBytes)
	payload0 := float64(c.ct0.BytesSent) - hdr0
	if payload0 < 0 {
		payload0 = 0
	}
	p.Counters = rt.Counters{
		ReadFaults:      round(float64(c.ct0.ReadFaults) * readR),
		WriteFaults:     round(float64(c.ct0.WriteFaults) * writeR),
		MsgsSent:        msgs,
		BytesSent:       round(payload0*actR*float64(int64(1)<<k)) + msgs*int64(net.HeaderBytes),
		PresendsSent:    round(float64(c.ct0.PresendsSent) * psCntR),
		PresendsSkipped: round(float64(c.ct0.PresendsSkipped) * psCntR),
		BulkMsgs:        round(float64(c.ct0.BulkMsgs) * psCntR),
		Conflicts:       round(float64(c.ct0.Conflicts) * actR),
		// Topology-dependent traffic counters scale with overall message
		// activity: the cross-group fraction and the aggregation rate are
		// properties of the communication pattern and the interconnect
		// shape, both of which calibration holds fixed.
		CrossMsgs:     round(float64(c.ct0.CrossMsgs) * actR),
		AggMsgs:       round(float64(c.ct0.AggMsgs) * actR),
		AggEntriesOut: round(float64(c.ct0.AggEntriesOut) * actR),
		AggEntriesIn:  round(float64(c.ct0.AggEntriesIn) * actR),
	}
	return p
}

// ratio returns num/den, or 1 when the denominator vanishes (an absent
// cost component keeps its calibration weight of zero anyway).
func ratio(num, den float64) float64 {
	if den == 0 {
		return 1
	}
	return num / den
}

// round converts a non-negative model value to int64 nanoseconds/counts.
func round(v float64) int64 {
	if v <= 0 {
		return 0
	}
	return int64(v + 0.5)
}

// String summarizes the calibration.
func (c *Calibration) String() string {
	return fmt.Sprintf("predict: %s/%s calibrated at %d nodes, %dB blocks, %d phases",
		c.App, c.Protocol, c.Nodes, c.BlockSize, len(c.phases))
}
