package predict

import (
	"presto/internal/network"
	"presto/internal/rt"
	"presto/internal/sim"
)

// Synthetic builds a deterministic calibration without running a
// simulation — benchmark and test scaffolding for the predictor's hot
// path (kernelbench predict_sweep256). The tables are plausible rather
// than measured: a producer/consumer fault pattern whose counts shrink
// with block size, plus fixed attribution buckets.
func Synthetic(nodes, phases int) *Calibration {
	c := &Calibration{
		App:       "synthetic",
		Protocol:  string(rt.ProtoStache),
		Nodes:     nodes,
		BlockSize: 32,
		Net:       network.CM5(),
	}
	rng := uint64(0x9e3779b97f4a7c15)
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}

	np := phases + 1 // phase -1 plus the named phases
	c.phases = make([]phaseCal, np)
	for k := 0; k <= MaxShift; k++ {
		c.shifts[k].faults = make([]float64, np*nodes)
		c.shifts[k].faultHome = make([]float64, np*nodes*nodes)
		c.shifts[k].stallq = make([]float64, np*nodes)
		c.shifts[k].imb = make([]float64, np)
	}
	for pi := range c.phases {
		ph := &c.phases[pi]
		ph.id = pi - 1
		ph.name = "synthetic"
		ph.nodes = make([]nodeCal, nodes)
		for n := 0; n < nodes; n++ {
			nc := &ph.nodes[n]
			faults := int64(200 + next(400))
			home := (n + 1 + next(nodes-1)) % nodes
			lam := lambda(c.Net, c.BlockSize, n, home)
			nc.compute = float64(1_000_000 + next(500_000))
			nc.stall = float64(faults) * lam
			nc.transit = float64(faults) * tau(c.Net, c.BlockSize, n, home)
			nc.occupancy = float64(faults) * float64(c.Net.FaultDetect+c.Net.SendCost(0))
			nc.service = float64(faults) * float64(c.Net.RecvOverhead)
			nc.barrier = float64(50_000 + next(50_000))
			nc.presend = float64(20_000 + next(20_000))
			nc.busy0 = nc.compute + nc.stall + nc.transit + nc.occupancy +
				nc.service + nc.presend
			idle := float64(next(100_000))
			if t := nc.busy0 + nc.barrier + idle; t > ph.span0 {
				ph.span0 = t
			}
			if nc.busy0 > ph.busyCrit0 {
				ph.busyCrit0 = nc.busy0
			}
			ph.sumBusy0 += nc.busy0
			// Fault counts halve per shift until a floor: spatial
			// locality with a residual conflicted fraction.
			f := faults
			for k := 0; k <= MaxShift; k++ {
				c.shifts[k].faults[pi*nodes+n] = float64(f)
				c.shifts[k].faultHome[(pi*nodes+n)*nodes+home] = float64(f)
				c.shifts[k].stallq[pi*nodes+n] = float64(f) * lam
				c.shifts[k].reads += float64(f * 3 / 4)
				c.shifts[k].writes += float64(f - f*3/4)
				c.shifts[k].presends += float64(f / 8)
				if f > 32 {
					f = f/2 + 16
				}
			}
			nc.lambda0 = c.shifts[0].faultHome[(pi*nodes+n)*nodes+home] * lam
			nc.tau0 = c.shifts[0].faultHome[(pi*nodes+n)*nodes+home] * tau(c.Net, c.BlockSize, n, home)
		}
		// Imbalance slack shrinks with block size alongside the faults.
		imb := 400_000.0
		for k := 0; k <= MaxShift; k++ {
			c.shifts[k].imb[pi] = imb
			if imb > 50_000 {
				imb = imb/2 + 25_000
			}
		}
		c.sumSpan0 += ph.span0
	}

	var e float64
	for pi := range c.phases {
		e += c.phases[pi].span0
	}
	c.ElapsedNS = int64(e)
	c.bd0 = rt.Breakdown{
		Elapsed:    sim.Time(c.ElapsedNS),
		Compute:    sim.Time(c.ElapsedNS / 2),
		RemoteWait: sim.Time(c.ElapsedNS / 4),
		Presend:    sim.Time(c.ElapsedNS / 16),
		Sync:       sim.Time(c.ElapsedNS / 8),
	}
	c.ct0 = rt.Counters{
		ReadFaults:   int64(c.shifts[0].reads),
		WriteFaults:  int64(c.shifts[0].writes),
		MsgsSent:     int64(c.shifts[0].reads+c.shifts[0].writes) * 2,
		BytesSent:    int64(c.shifts[0].reads+c.shifts[0].writes) * int64(2*c.Net.HeaderBytes+c.BlockSize),
		PresendsSent: int64(c.shifts[0].presends),
	}
	return c
}
