package predict

import (
	"fmt"
	"io"
)

// ErrorRow is one predicted-vs-simulated comparison.
type ErrorRow struct {
	Experiment  string  `json:"experiment"`
	Label       string  `json:"label"`
	BlockSize   int     `json:"block_bytes"`
	PredictedNS int64   `json:"predicted_ns"`
	SimulatedNS int64   `json:"simulated_ns"`
	AbsPctErr   float64 `json:"abs_pct_err"`
}

// ErrorTable collects predicted-vs-simulated rows and summarizes the
// mean absolute elapsed-time error — the quantity the CI predict-validate
// job gates (<15%, DESIGN.md §13).
type ErrorTable struct {
	Rows []ErrorRow `json:"rows"`
}

// Add appends a comparison, computing its absolute percentage error.
func (t *ErrorTable) Add(experiment, label string, blockSize int, predictedNS, simulatedNS int64) {
	r := ErrorRow{
		Experiment:  experiment,
		Label:       label,
		BlockSize:   blockSize,
		PredictedNS: predictedNS,
		SimulatedNS: simulatedNS,
	}
	if simulatedNS != 0 {
		r.AbsPctErr = 100 * abs(float64(predictedNS)-float64(simulatedNS)) / float64(simulatedNS)
	}
	t.Rows = append(t.Rows, r)
}

// MAE returns the mean absolute percentage error across rows (0 when
// empty).
func (t *ErrorTable) MAE() float64 {
	if len(t.Rows) == 0 {
		return 0
	}
	var sum float64
	for _, r := range t.Rows {
		sum += r.AbsPctErr
	}
	return sum / float64(len(t.Rows))
}

// MaxErr returns the largest absolute percentage error across rows.
func (t *ErrorTable) MaxErr() float64 {
	var max float64
	for _, r := range t.Rows {
		if r.AbsPctErr > max {
			max = r.AbsPctErr
		}
	}
	return max
}

// WriteCSV renders the table in a fixed column order; output is
// deterministic for a fixed row set, so goldens can lock it byte for
// byte.
func (t *ErrorTable) WriteCSV(w io.Writer) {
	fmt.Fprintln(w, "experiment,version,block_bytes,predicted_s,simulated_s,abs_pct_err")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%s,%s,%d,%.6f,%.6f,%.2f\n",
			r.Experiment, r.Label, r.BlockSize,
			float64(r.PredictedNS)/1e9, float64(r.SimulatedNS)/1e9, r.AbsPctErr)
	}
}

// Render prints the human-readable error table plus the summary line.
func (t *ErrorTable) Render(w io.Writer) {
	fmt.Fprintf(w, "%-14s %-28s %6s %14s %14s %8s\n",
		"experiment", "version", "block", "predicted", "simulated", "err")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-14s %-28s %6d %14d %14d %7.2f%%\n",
			r.Experiment, r.Label, r.BlockSize, r.PredictedNS, r.SimulatedNS, r.AbsPctErr)
	}
	fmt.Fprintf(w, "\nmean absolute error %.2f%% over %d rows (max %.2f%%)\n",
		t.MAE(), len(t.Rows), t.MaxErr())
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
