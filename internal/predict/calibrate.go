package predict

import (
	"fmt"
	"math/bits"
	"sort"

	"presto/internal/causal"
	"presto/internal/memory"
	"presto/internal/rt"
)

// Calibrate distills a completed calibration run — a machine executed
// with rt.Config.Profile and rt.Config.Record both enabled — into the
// analytical model's tables. The machine must have finished its Run.
func Calibrate(m *rt.Machine, app string) (*Calibration, error) {
	if !m.Cfg.Profile || !m.Cfg.Record {
		return nil, fmt.Errorf("predict: calibration needs rt.Config.Profile and rt.Config.Record enabled")
	}
	prof, err := m.Profile(app)
	if err != nil {
		return nil, fmt.Errorf("predict: %w", err)
	}
	if err := prof.Validate(); err != nil {
		return nil, fmt.Errorf("predict: calibration profile invalid: %w", err)
	}
	n0 := m.Cfg.Nodes
	b0 := m.Cfg.BlockSize
	c := &Calibration{
		App:       app,
		Protocol:  string(m.Cfg.Protocol),
		Nodes:     n0,
		BlockSize: b0,
		Net:       m.Cfg.Net,
		ElapsedNS: int64(m.Elapsed()),
		bd0:       m.Breakdown(),
		ct0:       m.Counters(),
	}

	// Phase list: the union of phase IDs seen by any node's profile,
	// -1 (outside) first, then ascending.
	seen := map[int]bool{}
	var ids []int
	perNode := make([]map[int]causal.Buckets, n0)
	for i, np := range prof.PerNode {
		if i >= n0 {
			break
		}
		perNode[np.Node] = map[int]causal.Buckets{}
		for _, pa := range np.Phases {
			perNode[np.Node][pa.Phase] = pa.Buckets
			if !seen[pa.Phase] {
				seen[pa.Phase] = true
				ids = append(ids, pa.Phase)
			}
		}
	}
	sort.Ints(ids)

	names := map[int]string{}
	for _, id := range ids {
		if id == -1 {
			names[id] = "(outside)"
		} else {
			names[id] = m.PhaseName(id)
		}
	}

	c.phases = make([]phaseCal, len(ids))
	for pi, id := range ids {
		ph := &c.phases[pi]
		ph.id = id
		ph.name = names[id]
		ph.nodes = make([]nodeCal, n0)
		for n := 0; n < n0; n++ {
			b := perNode[n][id]
			nc := &ph.nodes[n]
			nc.compute = float64(b.ComputeNS)
			nc.transit = float64(b.TransitNS)
			nc.occupancy = float64(b.OccupancyNS)
			nc.service = float64(b.ServiceNS)
			nc.barrier = float64(b.BarrierNS)
			nc.stall = float64(b.StallNS)
			nc.presend = float64(b.PresendNS)
			// Same summation order as predict()'s busyT — the
			// identity-exactness guarantee depends on it.
			nc.busy0 = nc.compute + nc.stall + nc.transit + nc.occupancy +
				nc.service + nc.presend
			total := nc.busy0 + nc.barrier + float64(b.IdleNS)
			if total > ph.span0 {
				ph.span0 = total
			}
			if nc.busy0 > ph.busyCrit0 {
				ph.busyCrit0 = nc.busy0
			}
			ph.sumBusy0 += nc.busy0
		}
		c.sumSpan0 += ph.span0
	}

	if err := c.buildShifts(m); err != nil {
		return nil, err
	}

	// Target-independent ratio denominators: the home-weighted per-fault
	// latency and transit at the calibration point.
	for pi := range c.phases {
		for n := 0; n < n0; n++ {
			nc := &c.phases[pi].nodes[n]
			base := (pi*n0 + n) * n0
			hist := c.shifts[0].faultHome[base : base+n0]
			for h := 0; h < n0; h++ {
				w := hist[h]
				if w == 0 {
					continue
				}
				nc.lambda0 += w * lambda(c.Net, b0, n, h)
				nc.tau0 += w * tau(c.Net, b0, n, h)
			}
		}
	}
	return c, nil
}

// segAccess is one access of a node's barrier segment, in compressed
// (stall-free) node-local time.
type segAccess struct {
	dt    int64  // compute-time offset from the segment's first access
	bi    uint32 // index into the dense unique-block table
	pi    int32  // phase index into c.phases
	write bool
}

// nodeSeg is one node's trace slice between two barrier crossings (a
// (phase, iteration) episode), with recorded stalls compressed out.
type nodeSeg struct {
	node    int32
	firstAt int64 // recorded issue time of the first access
	accs    []segAccess
}

// globalSeg groups the nodes' slices of one barrier segment. Segments
// execute in recorded order; within one, the replay reconstructs the
// interleaving from compressed compute time plus replay-incurred stalls.
type globalSeg struct {
	minAt int64
	nodes []nodeSeg
}

// blkState is one coarse block's coherence state during replay: a
// modified owner (M) or a sharer set (S), plus a grace set of nodes
// whose copies were revoked but whose recall has not yet landed (the
// protocols defer recalls by a full miss round trip, so a displaced
// holder's burst keeps hitting until the grace deadline). Lazily
// initialized with the block's home as owner, mirroring the simulator's
// home-owned lines.
type blkState struct {
	owner      int32 // >= 0: that node holds the block modified
	sharers    uint64
	grace      uint64 // revoked holders still running on stale copies
	subs       uint64 // historical readers (pre-send subscribers)
	graceUntil int64
}

// psTouch is one (block, node) pre-send arrival count within a phase.
type psTouch struct {
	b     memory.Block
	node  int
	count int64
}

const offMask40 = uint64(1)<<40 - 1

// buildShifts derives the fault tables for every block-size shift by
// replaying the recorded access trace through a coherence automaton at
// each coarse granularity. The per-node traces merge into one global
// time order; at shift k accesses map onto B0<<k-sized blocks and a
// write-invalidate (or, for the update protocol, write-update) state
// machine counts the faults each access would take. This captures both
// directions the per-phase aggregate counts cannot: spatial coalescing
// (a node's sweep over neighboring constituents becomes one acquisition)
// and false-sharing amplification (interleaved writers bounce the coarse
// block and re-fault accesses that hit at the calibration size).
// Pre-send counts coarsen by per-node MAX — one pre-send covers the
// coarse block.
func (c *Calibration) buildShifts(m *rt.Machine) error {
	n0 := c.Nodes
	shift0 := uint(bits.TrailingZeros(uint(c.BlockSize)))
	np := len(c.phases)
	phaseIdx := make(map[int32]int32, np)
	for pi := range c.phases {
		phaseIdx[int32(c.phases[pi].id)] = int32(pi)
	}

	// Slice each node's trace into barrier segments — one (phase,
	// iteration) episode per slice, with recorded stalls compressed out —
	// and group the slices globally.
	type instKey struct {
		phase, iter, occ int32
	}
	segMap := map[instKey]*globalSeg{}
	// Dense unique-block table: the hot replay loop below runs once per
	// shift over every access, so block identity resolves through one map
	// pass here instead of a hash lookup per access per shift.
	blockIdx := map[uint64]uint32{}
	var blocks []uint64
	for n, node := range m.Nodes {
		if node.Rec == nil {
			return fmt.Errorf("predict: node %d has no communication record", n)
		}
		accs := node.Rec.Accesses
		occ := map[[2]int32]int32{}
		for i := 0; i < len(accs); {
			ph, it := accs[i].Phase, accs[i].Iter
			j := i
			for j < len(accs) && accs[j].Phase == ph && accs[j].Iter == it {
				j++
			}
			pk := [2]int32{ph, it}
			key := instKey{ph, it, occ[pk]}
			occ[pk]++
			gs := segMap[key]
			if gs == nil {
				gs = &globalSeg{minAt: int64(accs[i].At)}
				segMap[key] = gs
			} else if int64(accs[i].At) < gs.minAt {
				gs.minAt = int64(accs[i].At)
			}
			pi, ok := phaseIdx[ph]
			if !ok {
				pi = 0 // unprofiled phase: fold into (outside)
			}
			ns := nodeSeg{node: int32(n), firstAt: int64(accs[i].At)}
			ns.accs = make([]segAccess, j-i)
			base := int64(accs[i].At) - int64(accs[i].StallCum)
			for x := i; x < j; x++ {
				blk := uint64(accs[x].Block)
				bi, ok := blockIdx[blk]
				if !ok {
					bi = uint32(len(blocks))
					blockIdx[blk] = bi
					blocks = append(blocks, blk)
				}
				ns.accs[x-i] = segAccess{
					dt:    int64(accs[x].At) - int64(accs[x].StallCum) - base,
					bi:    bi,
					pi:    pi,
					write: accs[x].Write,
				}
			}
			gs.nodes = append(gs.nodes, ns)
			i = j
		}
	}
	ordered := make([]*globalSeg, 0, len(segMap))
	for _, gs := range segMap {
		sort.Slice(gs.nodes, func(i, j int) bool { return gs.nodes[i].node < gs.nodes[j].node })
		ordered = append(ordered, gs)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].minAt != ordered[j].minAt {
			return ordered[i].minAt < ordered[j].minAt
		}
		return ordered[i].nodes[0].node < ordered[j].nodes[0].node
	})

	update := c.Protocol == string(rt.ProtoUpdate)
	predictive := c.Protocol == string(rt.ProtoPredictive)

	fInt := make([][]int64, MaxShift+1)
	hInt := make([][]int64, MaxShift+1)
	qInt := make([][]int64, MaxShift+1)
	imbF := make([][]float64, MaxShift+1)
	var rInt, wInt, pInt [MaxShift + 1]int64
	for k := 0; k <= MaxShift; k++ {
		fInt[k] = make([]int64, np*n0)
		hInt[k] = make([]int64, np*n0*n0)
		qInt[k] = make([]int64, np*n0)
		imbF[k] = make([]float64, np)
	}

	clocks := make([]int64, n0)
	idx := make([]int, n0)
	stallAdj := make([]int64, n0)
	spanAcc := make([]int64, np)          // per phase: sum of segment spans
	busyAcc := make([]int64, np*n0)       // per (phase,node): total busy
	coarse := make([]uint32, len(blocks)) // unique block -> coarse index
	chome := make([]int32, 0, len(blocks))
	cmap := map[uint64]uint32{}
	var written []uint32
	for k := 0; k <= MaxShift; k++ {
		sh := shift0 + uint(k)
		b1 := c.BlockSize << k
		// Map each unique calibration block onto its coarse group for
		// this shift and resolve the group's home once — the home of the
		// coarse block's first constituent in the calibration address
		// space (the home function is the application's; this is the
		// closest stand-in for the target geometry's assignment).
		clear(cmap)
		chome = chome[:0]
		for u, blk := range blocks {
			// Block-padded regions re-pad per element at every block
			// size — coarsening can never merge their accesses, so they
			// group by element (and keep their calibration home). Other
			// regions keep a block-size-independent layout: coarsening
			// shifts their offsets.
			ck := blk&^offMask40 | (blk&offMask40)>>sh
			base := blk&^offMask40 | (blk&offMask40)>>sh<<sh
			if st := m.PaddedStride(int(blk >> 40)); st > 0 {
				ck = blk&^offMask40 | uint64(int64(blk&offMask40)/st)
				base = blk
			}
			ci, ok := cmap[ck]
			if !ok {
				ci = uint32(len(chome))
				cmap[ck] = ci
				chome = append(chome, int32(m.AS.HomeOf(memory.Addr(base))))
			}
			coarse[u] = ci
		}
		state := make([]blkState, len(chome))
		for ci := range state {
			if update {
				state[ci] = blkState{owner: -1, sharers: uint64(1) << chome[ci]}
			} else {
				state[ci] = blkState{owner: chome[ci]}
			}
		}
		for i := range clocks {
			clocks[i] = 0
		}
		for i := range spanAcc {
			spanAcc[i] = 0
		}
		for i := range busyAcc {
			busyAcc[i] = 0
		}
		var prevStart int64
		for _, gs := range ordered {
			// Barrier: the segment starts when its slowest participant
			// arrives, never before the previous segment.
			segStart := prevStart
			for _, ns := range gs.nodes {
				if clocks[ns.node] > segStart {
					segStart = clocks[ns.node]
				}
			}
			prevStart = segStart
			for si := range gs.nodes {
				idx[si], stallAdj[si] = 0, 0
			}
			written = written[:0]
			// Merge the participants' compressed streams by reconstructed
			// time: compute offsets plus the stalls replay has charged.
			for {
				best := -1
				var bt int64
				for si := range gs.nodes {
					if idx[si] >= len(gs.nodes[si].accs) {
						continue
					}
					t := segStart + gs.nodes[si].accs[idx[si]].dt + stallAdj[si]
					if best == -1 || t < bt {
						best, bt = si, t
					}
				}
				if best == -1 {
					break
				}
				ns := &gs.nodes[best]
				a := &ns.accs[idx[best]]
				idx[best]++

				ci := coarse[a.bi]
				home := chome[ci]
				st := &state[ci]
				bit := uint64(1) << ns.node
				inGrace := st.grace&bit != 0 && bt < st.graceUntil
				fault := false
				if update {
					// Write-update: copies are never invalidated; any
					// node faults once to join the sharers, then hits.
					if st.sharers&bit == 0 {
						fault = true
						st.sharers |= bit
					}
				} else if a.write {
					if st.owner != ns.node && !inGrace {
						fault = true
						g := st.sharers
						if st.owner >= 0 {
							g |= uint64(1) << st.owner
						}
						st.grace = g &^ bit
						st.owner = ns.node
						st.sharers = 0
						if predictive {
							st.subs |= g &^ bit
							written = append(written, ci)
						}
					}
				} else {
					if predictive {
						st.subs |= bit
					}
					if st.owner != ns.node && st.sharers&bit == 0 && !inGrace {
						fault = true
						if st.owner >= 0 {
							st.grace |= uint64(1) << st.owner
							st.sharers = uint64(1) << st.owner
							st.owner = -1
						}
						st.sharers |= bit
					}
				}
				if fault {
					// The faulting node stalls a miss round trip, queued
					// behind any in-flight transfer of the same block
					// (coarse blocks concentrate contention at the home);
					// displaced holders keep hitting on stale copies
					// until the recall lands at roughly the same time.
					lam := int64(lambda(c.Net, b1, int(ns.node), int(home)))
					stallAdj[best] += lam
					st.graceUntil = bt + lam
					fInt[k][int(a.pi)*n0+int(ns.node)]++
					hInt[k][(int(a.pi)*n0+int(ns.node))*n0+int(home)]++
					qInt[k][int(a.pi)*n0+int(ns.node)] += lam
					if a.write {
						wInt[k]++
					} else {
						rInt[k]++
					}
				}
			}
			// Predictive protocol: at the barrier, newly written blocks
			// are pre-sent to their historical readers, whose next reads
			// then hit without faulting.
			for _, ci := range written {
				st := &state[ci]
				st.sharers |= st.subs
			}
			// The segment's reconstructed span and per-node busy times.
			// Per phase the replay accumulates the critical path (sum of
			// segment spans, where a different node may be critical each
			// segment) and each node's total busy time; the gap between
			// them is the alternating-straggler slack that barriers
			// absorb. Its ratio across shifts drives slack prediction.
			var segSpan int64
			pi := int(gs.nodes[0].accs[0].pi)
			for si := range gs.nodes {
				ns := &gs.nodes[si]
				if len(ns.accs) == 0 {
					continue
				}
				busy := ns.accs[len(ns.accs)-1].dt + stallAdj[si]
				end := segStart + busy
				if end > clocks[ns.node] {
					clocks[ns.node] = end
				}
				if busy > segSpan {
					segSpan = busy
				}
				busyAcc[pi*n0+int(ns.node)] += busy
			}
			spanAcc[pi] += segSpan
		}
		for pi := 0; pi < np; pi++ {
			var maxBusy int64
			for n := 0; n < n0; n++ {
				if b := busyAcc[pi*n0+n]; b > maxBusy {
					maxBusy = b
				}
			}
			if sl := spanAcc[pi] - maxBusy; sl > 0 {
				imbF[k][pi] = float64(sl)
			}
		}
	}

	c.coarsenPresends(m, phaseIdx, shift0, n0, &pInt)

	for k := 0; k <= MaxShift; k++ {
		sc := &c.shifts[k]
		sc.faults = make([]float64, np*n0)
		sc.faultHome = make([]float64, np*n0*n0)
		sc.imb = imbF[k]
		for i, v := range fInt[k] {
			sc.faults[i] = float64(v)
		}
		for i, v := range hInt[k] {
			sc.faultHome[i] = float64(v)
		}
		sc.reads = float64(rInt[k])
		sc.writes = float64(wInt[k])
		sc.presends = float64(pInt[k])
		sc.stallq = make([]float64, np*n0)
		for i, v := range qInt[k] {
			sc.stallq[i] = float64(v)
		}
	}
	return nil
}

// coarsenPresends folds the per-phase pre-send arrival counts into
// machine-wide totals per shift: within a coarse block a node's counts
// MAX across constituents, then sum over nodes and phases.
func (c *Calibration) coarsenPresends(m *rt.Machine, phaseIdx map[int32]int32, shift0 uint, n0 int, pInt *[MaxShift + 1]int64) {
	byPhase := map[int32][]psTouch{}
	for n, node := range m.Nodes {
		for id, blocks := range node.Rec.Presend {
			pi, ok := phaseIdx[int32(id)]
			if !ok {
				pi = 0
			}
			for b, cnt := range blocks {
				byPhase[pi] = append(byPhase[pi], psTouch{b: b, node: n, count: cnt})
			}
		}
	}
	maxP := make([]int64, n0)
	touched := make([]bool, n0)
	order := make([]int, 0, n0)
	for _, pres := range byPhase {
		sort.Slice(pres, func(i, j int) bool {
			if pres[i].b != pres[j].b {
				return pres[i].b < pres[j].b
			}
			return pres[i].node < pres[j].node
		})
		for k := 0; k <= MaxShift; k++ {
			sh := shift0 + uint(k)
			key := func(b memory.Block) uint64 {
				// Same element-vs-offset grouping as the fault replay:
				// padded regions never coalesce across elements.
				if st := m.PaddedStride(b.RegionID()); st > 0 {
					return uint64(b.RegionID())<<40 | uint64(b.Offset()/st)
				}
				return uint64(b.RegionID())<<40 | uint64(b.Offset())>>sh
			}
			for i := 0; i < len(pres); {
				j := i
				for j < len(pres) && key(pres[j].b) == key(pres[i].b) {
					j++
				}
				order = order[:0]
				for _, e := range pres[i:j] {
					if !touched[e.node] {
						touched[e.node] = true
						order = append(order, e.node)
					}
					if e.count > maxP[e.node] {
						maxP[e.node] = e.count
					}
				}
				for _, n := range order {
					pInt[k] += maxP[n]
					touched[n] = false
					maxP[n] = 0
				}
				i = j
			}
		}
	}
}
