package chaos

import (
	"reflect"
	"testing"

	"presto/internal/blockstate"
	"presto/internal/rt"
)

// TestStorageDifferential is the dense-storage property test: for a band
// of derived workloads, running the same program with the paged
// block-state backend and with the retained map-based reference must
// produce identical fingerprints — same elapsed time, kernel stats,
// counters, final memory AND identical quiescent protocol state
// (StateHash covers directory entries, deferral flags and schedules).
// The storage layer may change complexity, never behavior.
func TestStorageDifferential(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 40
	}
	protos := []rt.ProtocolKind{rt.ProtoStache, rt.ProtoPredictive}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		s := Derive(seed, ScaleQuick)
		for _, proto := range protos {
			dense := ExecuteStorage(s, proto, rt.EngineSerial, "", 2_000_000, blockstate.Dense)
			ref := ExecuteStorage(s, proto, rt.EngineSerial, "", 2_000_000, blockstate.MapRef)
			if !reflect.DeepEqual(dense, ref) {
				t.Fatalf("seed %d %s: dense vs map-reference diverge on %v\ndense: %v\nref:   %v",
					seed, proto, dense.diff(ref), dense, ref)
			}
			if !dense.Clean() {
				t.Fatalf("seed %d %s: unclean run: %v", seed, proto, dense)
			}
		}
	}
}

// TestStorageDefaultIsDense pins the default: an empty Storage kind must
// behave exactly like an explicit blockstate.Dense.
func TestStorageDefaultIsDense(t *testing.T) {
	s := Derive(11, ScaleQuick)
	def := Execute(s, rt.ProtoPredictive, rt.EngineSerial, "", 2_000_000)
	dense := ExecuteStorage(s, rt.ProtoPredictive, rt.EngineSerial, "", 2_000_000, blockstate.Dense)
	if !reflect.DeepEqual(def, dense) {
		t.Fatalf("default storage diverges from dense: %v", def.diff(dense))
	}
}
