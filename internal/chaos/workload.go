package chaos

import (
	"fmt"
	"sort"

	"presto/internal/blockstate"
	"presto/internal/causal"
	"presto/internal/check"
	"presto/internal/memory"
	"presto/internal/network"
	"presto/internal/rt"
	"presto/internal/sim"
)

// Fingerprint condenses one run into the values the differential oracle
// compares. Every field is deterministic for a deterministic simulation,
// so engine comparisons assert full equality.
type Fingerprint struct {
	Err        string          `json:"err,omitempty"`
	ElapsedNS  int64           `json:"elapsed_ns"`
	Kernel     sim.KernelStats `json:"kernel"`
	Counters   rt.Counters     `json:"counters"`
	MemHash    uint64          `json:"mem_hash"`
	StateHash  uint64          `json:"state_hash"`
	Violations []string        `json:"violations,omitempty"`
}

// Clean reports a run that completed without error and with every
// invariant intact.
func (f Fingerprint) Clean() bool { return f.Err == "" && len(f.Violations) == 0 }

func (f Fingerprint) String() string {
	if f.Err != "" {
		return "error: " + f.Err
	}
	s := fmt.Sprintf("elapsed=%dns events=%d msgs=%d mem=%016x",
		f.ElapsedNS, f.Kernel.Events, f.Counters.MsgsSent, f.MemHash)
	if n := len(f.Violations); n > 0 {
		s += fmt.Sprintf(" violations=%d", n)
	}
	return s
}

// diff lists the fields on which two fingerprints disagree (engine
// divergence reporting).
func (f Fingerprint) diff(g Fingerprint) []string {
	var out []string
	add := func(field string, a, b any) {
		out = append(out, fmt.Sprintf("%s: %v vs %v", field, a, b))
	}
	if f.Err != g.Err {
		add("err", f.Err, g.Err)
	}
	if f.ElapsedNS != g.ElapsedNS {
		add("elapsed_ns", f.ElapsedNS, g.ElapsedNS)
	}
	if f.Kernel != g.Kernel {
		add("kernel", f.Kernel, g.Kernel)
	}
	if f.Counters != g.Counters {
		add("counters", f.Counters, g.Counters)
	}
	if f.MemHash != g.MemHash {
		add("mem_hash", fmt.Sprintf("%016x", f.MemHash), fmt.Sprintf("%016x", g.MemHash))
	}
	if f.StateHash != g.StateHash {
		add("state_hash", fmt.Sprintf("%016x", f.StateHash), fmt.Sprintf("%016x", g.StateHash))
	}
	if len(f.Violations) != len(g.Violations) {
		add("violations", len(f.Violations), len(g.Violations))
	} else {
		for i := range f.Violations {
			if f.Violations[i] != g.Violations[i] {
				add("violation", f.Violations[i], g.Violations[i])
				break
			}
		}
	}
	return out
}

// Execute runs the spec once under one protocol × engine combination and
// fingerprints the outcome. mutation names an injected protocol defect
// (rt.Mutation*; empty for honest runs); maxEvents guards against
// livelock (a mutated protocol may spin).
func Execute(s Spec, proto rt.ProtocolKind, engine rt.EngineKind, mutation string, maxEvents int64) Fingerprint {
	return execute(s, proto, engine, mutation, maxEvents, "", "", false)
}

// ExecuteAggregated is Execute with node-leader aggregation enabled
// (rt.Config.Aggregate; a timing-visible no-op on flat interconnects).
func ExecuteAggregated(s Spec, proto rt.ProtocolKind, engine rt.EngineKind, mutation string, maxEvents int64) Fingerprint {
	return execute(s, proto, engine, mutation, maxEvents, "", "", true)
}

// ExecuteStorage is Execute with an explicit block-state storage backend
// (the dense-vs-map differential; empty means the dense default).
func ExecuteStorage(s Spec, proto rt.ProtocolKind, engine rt.EngineKind, mutation string, maxEvents int64, storage blockstate.Kind) Fingerprint {
	return execute(s, proto, engine, mutation, maxEvents, storage, "", false)
}

// ExecuteSched is Execute with an explicit kernel event scheduler (the
// wheel-vs-heap differential; empty means the wheel default).
func ExecuteSched(s Spec, proto rt.ProtocolKind, engine rt.EngineKind, sched rt.SchedKind, maxEvents int64) Fingerprint {
	return execute(s, proto, engine, "", maxEvents, "", sched, false)
}

// EngineConfig pins the parallel engine's execution knobs for a
// differential run: worker count, lookahead derivation, and the
// work-stealing ablation. The zero value is the engine's default.
type EngineConfig struct {
	Workers   int
	Lookahead rt.LookaheadKind
	NoSteal   bool
}

// ExecuteEngine runs the spec on the parallel engine with explicit
// engine knobs and fingerprints the outcome. The requested worker count
// is clamped to the spec's lane count (a clustered interconnect coarsens
// lanes to node groups), so band tests can sweep fixed worker counts
// across arbitrary derived shapes.
func ExecuteEngine(s Spec, proto rt.ProtocolKind, ec EngineConfig, maxEvents int64) Fingerprint {
	fp, _ := runEngine(s, proto, rt.EngineParallel, "", maxEvents, &ec)
	return fp
}

// RunConfig pins every execution knob for one configured run — the
// serving layer's single-combination job shape (internal/serve), where a
// spec names its protocol, engine, scheduler and storage backend
// explicitly instead of running the differential matrix. Zero values
// mean the runtime defaults (rt.Config.withDefaults).
type RunConfig struct {
	Protocol  rt.ProtocolKind
	Engine    rt.EngineKind
	Sched     rt.SchedKind
	Storage   blockstate.Kind
	Lookahead rt.LookaheadKind
	NoSteal   bool
	Workers   int
	MaxEvents int64
	Aggregate bool
}

// ExecuteRun runs the spec once under an explicit run configuration and
// fingerprints the outcome. Worker counts are clamped to the spec's lane
// count like every other entry point.
func ExecuteRun(s Spec, rc RunConfig) Fingerprint {
	cfg := rt.Config{
		Nodes:     s.Nodes,
		BlockSize: s.BlockSize,
		Protocol:  rc.Protocol,
		Engine:    rc.Engine,
		Sched:     rc.Sched,
		Storage:   rc.Storage,
		Lookahead: rc.Lookahead,
		NoSteal:   rc.NoSteal,
		Workers:   rc.Workers,
		MaxEvents: rc.MaxEvents,
	}
	fp, _ := runConfigured(s, cfg)
	return fp
}

// ExecuteProfiled is Execute with the causal profiler enabled. It
// returns the fingerprint — which must equal Execute's, since profiling
// may not perturb the simulation — plus the assembled profile, already
// checked against the attribution invariant (per-node bucket sums equal
// total simulated time; serial critical-path length equals elapsed).
func ExecuteProfiled(s Spec, proto rt.ProtocolKind, engine rt.EngineKind, maxEvents int64) (Fingerprint, *causal.Profile, error) {
	fp, m := run(s, proto, engine, "", maxEvents, "", "", true, false)
	if m == nil {
		return fp, nil, fmt.Errorf("chaos: profiled run failed: %s", fp.Err)
	}
	p, err := m.Profile("chaos")
	if err != nil {
		return fp, nil, err
	}
	if err := p.Validate(); err != nil {
		return fp, nil, err
	}
	return fp, p, nil
}

// ExecuteCalibration runs the spec once with both the causal profiler
// and the communication recorder enabled and returns the machine, ready
// to hand to predict.Calibrate. The fingerprint is discarded — callers
// wanting differential checks should run ExecuteRun separately; a
// calibration run is observation-identical to the plain run anyway.
func ExecuteCalibration(s Spec, rc RunConfig) (*rt.Machine, error) {
	cfg := rt.Config{
		Nodes:     s.Nodes,
		BlockSize: s.BlockSize,
		Protocol:  rc.Protocol,
		Engine:    rc.Engine,
		Sched:     rc.Sched,
		Storage:   rc.Storage,
		Lookahead: rc.Lookahead,
		NoSteal:   rc.NoSteal,
		Workers:   rc.Workers,
		MaxEvents: rc.MaxEvents,
		Aggregate: rc.Aggregate,
		Profile:   true,
		Record:    true,
	}
	fp, m := runConfigured(s, cfg)
	if m == nil {
		return nil, fmt.Errorf("chaos: calibration run failed: %s", fp.Err)
	}
	return m, nil
}

func execute(s Spec, proto rt.ProtocolKind, engine rt.EngineKind, mutation string, maxEvents int64, storage blockstate.Kind, sched rt.SchedKind, agg bool) Fingerprint {
	fp, _ := run(s, proto, engine, mutation, maxEvents, storage, sched, false, agg)
	return fp
}

// run executes the spec and returns the machine alongside the
// fingerprint (nil when the run itself errored).
func run(s Spec, proto rt.ProtocolKind, engine rt.EngineKind, mutation string, maxEvents int64, storage blockstate.Kind, sched rt.SchedKind, profile bool, agg bool) (Fingerprint, *rt.Machine) {
	cfg := rt.Config{
		Nodes:     s.Nodes,
		BlockSize: s.BlockSize,
		Protocol:  proto,
		Engine:    engine,
		MaxEvents: maxEvents, ChaosMutation: mutation,
		Storage:   storage,
		Sched:     sched,
		Profile:   profile,
		Aggregate: agg,
	}
	return runConfigured(s, cfg)
}

// runEngine is run with explicit parallel-engine knobs.
func runEngine(s Spec, proto rt.ProtocolKind, engine rt.EngineKind, mutation string, maxEvents int64, ec *EngineConfig) (Fingerprint, *rt.Machine) {
	cfg := rt.Config{
		Nodes:     s.Nodes,
		BlockSize: s.BlockSize,
		Protocol:  proto,
		Engine:    engine,
		MaxEvents: maxEvents, ChaosMutation: mutation,
	}
	if ec != nil {
		cfg.Lookahead = ec.Lookahead
		cfg.NoSteal = ec.NoSteal
		cfg.Workers = ec.Workers
	}
	return runConfigured(s, cfg)
}

func runConfigured(s Spec, cfg rt.Config) (Fingerprint, *rt.Machine) {
	base, err := network.Preset(s.Net)
	if err != nil {
		panic(err) // derivation only emits known presets
	}
	net := base.WithJitter(s.JitterPct, uint64(s.Seed))
	cfg.Net = net
	// Clamp an explicit worker request to the machine's lane count: a
	// clustered interconnect coarsens lanes to node groups, and the band
	// tests sweep fixed worker counts over arbitrary derived shapes.
	if cfg.Engine == rt.EngineParallel && cfg.Workers > 0 {
		lanes := s.Nodes
		if net.Clustered() {
			lanes = s.Nodes / net.GroupSize
		}
		if cfg.Workers > lanes {
			cfg.Workers = lanes
		}
	}
	m := rt.New(cfg)
	wl := buildWorkload(m, s)
	var fp Fingerprint
	if err := m.Run(wl.program(s)); err != nil {
		fp.Err = err.Error()
		return fp, nil
	}
	fp.ElapsedNS = int64(m.Elapsed())
	fp.Kernel = m.Kernel.Stats()
	fp.Counters = m.Counters()
	fp.MemHash = m.HashMemory()
	fp.StateHash = stateHash(m)
	for _, v := range check.Machine(m) {
		fp.Violations = append(fp.Violations, v.String())
	}
	fp.Violations = append(fp.Violations, check.Accounting(m)...)
	// Violations accumulate home-by-home; sort into one canonical order so
	// fingerprints of identical runs compare equal.
	sort.Strings(fp.Violations)
	return fp, m
}

// clustered reports whether the spec's interconnect has node groups —
// the shapes node-leader aggregation coalesces across.
func (s Spec) clustered() bool {
	p, err := network.Preset(s.Net)
	return err == nil && p.Clustered()
}

// workload holds the spec's shared aggregates on one machine.
type workload struct {
	main   *rt.Array1D // produce/consume partitions (padding per spec)
	shared *rt.Array1D // unpadded: conflict and migrate targets
	acc    *rt.Array1D // accumulate targets
	ptrs   *rt.Array1D // one block-padded pointer slot per node
	arena  *rt.Arena
}

// arenaSegBytes sizes each node's arena segment: worst case every phase
// of every iteration allocates Count block-aligned objects
// (8×6×6 allocations × ≤(256+8) bytes ≈ 76 KiB at ScaleLong bounds).
const arenaSegBytes = 128 * 1024

func buildWorkload(m *rt.Machine, s Spec) *workload {
	wl := &workload{
		main:   m.NewArray1D("chaos/main", s.Elems, 1, s.Pad),
		shared: m.NewArray1D("chaos/shared", s.Elems, 1, false),
		acc:    m.NewArray1D("chaos/acc", max(4, s.Nodes), 1, false),
		ptrs:   m.NewArray1D("chaos/ptrs", s.Nodes, 1, true),
	}
	if s.UseArena {
		wl.arena = m.NewArena("chaos/arena", int64(s.Nodes)*arenaSegBytes)
	}
	return wl
}

// val is the deterministic value written at (iteration, phase, element).
// Values are integer-valued float64s so accumulation sums are exact and
// order-independent — final memory stays protocol-independent.
func val(seed int64, it, pi, i int) float64 {
	r := rng{s: uint64(seed) ^ uint64(it)<<40 ^ uint64(pi)<<20 ^ uint64(i)}
	return float64(r.next() % (1 << 20))
}

// program returns the SPMD body executing the spec's phase program.
func (wl *workload) program(s Spec) rt.Program {
	return func(w *rt.Worker) {
		for it := 0; it < s.Iters; it++ {
			for pi, ph := range s.Phases {
				pi, ph, it := pi, ph, it
				if ph.Kind == PhaseBroadcast {
					// Two compiler phases: owners refresh their partition,
					// then every node reads every partition. The read half
					// takes a distinct stable id past the spec's phase
					// range so its learned schedule (all nodes as readers
					// of each home) stays separate from the write half's.
					w.Phase(pi, func() { wl.bcastUpdate(w, s, ph, pi, it) })
					w.Phase(len(s.Phases)+pi, func() { wl.bcastRead(w, s, ph, it) })
					continue
				}
				w.Phase(pi, func() { wl.runPhase(w, s, ph, pi, it) })
			}
			if it == s.FlushIter {
				w.FlushSchedules(s.FlushID)
			}
		}
	}
}

// effStride rotates a phase's ring distance over iterations when the
// spec asks for pattern rotation (defeating a learned schedule).
func effStride(s Spec, ph PhaseSpec, it int) int {
	if s.Nodes < 2 {
		return 0
	}
	st := ph.Stride
	if s.RotEvery > 0 {
		st = 1 + (ph.Stride-1+it/s.RotEvery)%(s.Nodes-1)
	}
	return st
}

// bcastUpdate is the write half of PhaseBroadcast: each owner refreshes
// the elements of its partition that the read half will fetch, so every
// iteration invalidates the full reader set and the next read phase's
// pre-send walk owes a fresh copy to every node — several per remote
// group, which is what forces multi-part leader aggregates.
func (wl *workload) bcastUpdate(w *rt.Worker, s Spec, ph PhaseSpec, pi, it int) {
	per := s.Elems / s.Nodes
	lo := w.ID * per
	skew := rng{s: uint64(s.Seed) ^ uint64(it*31+pi*7+w.ID)}
	w.Compute(sim.Time(100+skew.next()%900) * sim.Nanosecond)
	for k := 0; k < ph.Count; k++ {
		i := lo + (k+it)%per
		w.WriteF64(wl.main.At(i, 0), val(s.Seed, it, pi, i))
	}
}

// bcastRead is the read half: every node reads the freshly written
// window of every partition (the all-read broadcast pattern).
func (wl *workload) bcastRead(w *rt.Worker, s Spec, ph PhaseSpec, it int) {
	per := s.Elems / s.Nodes
	for o := 0; o < s.Nodes; o++ {
		olo := o * per
		for k := 0; k < ph.Count; k++ {
			_ = w.ReadF64(wl.main.At(olo+(k+it)%per, 0))
		}
	}
}

func (wl *workload) runPhase(w *rt.Worker, s Spec, ph PhaseSpec, pi, it int) {
	per := s.Elems / s.Nodes
	lo := w.ID * per
	// Deterministic per-node compute skew: desynchronizes the nodes'
	// arrival at the contended accesses, widening the window for
	// overtaking-message races.
	skew := rng{s: uint64(s.Seed) ^ uint64(it*31+pi*7+w.ID)}
	w.Compute(sim.Time(100+skew.next()%900) * sim.Nanosecond)

	switch ph.Kind {
	case PhaseProduce:
		for k := 0; k < ph.Count; k++ {
			i := lo + (k*3+it)%per
			w.WriteF64(wl.main.At(i, 0), val(s.Seed, it, pi, i))
		}
	case PhaseConsume:
		tgt := (w.ID + effStride(s, ph, it)) % s.Nodes
		tlo := tgt * per
		for k := 0; k < ph.Count; k++ {
			i := tlo + (k*5+it)%per
			_ = w.ReadF64(wl.main.At(i, 0))
		}
	case PhaseConflict:
		// Interleaved single-writer elements sharing cache blocks:
		// Elems is a multiple of Nodes, so w.ID + k*Nodes stays in this
		// node's residue class and never collides with another writer.
		for k := 0; k < ph.Count; k++ {
			i := (w.ID + k*s.Nodes) % s.Elems
			w.WriteF64(wl.shared.At(i, 0), val(s.Seed, it, pi, i))
			_ = w.ReadF64(wl.shared.At((i+1)%s.Elems, 0))
		}
	case PhaseMigrate:
		writer := (it*max(1, effStride(s, ph, it)) + pi) % s.Nodes
		n := ph.Count
		if n > s.Elems {
			n = s.Elems
		}
		if w.ID == writer {
			for i := 0; i < n; i++ {
				w.WriteF64(wl.shared.At(i, 0), val(s.Seed, it, pi, i))
			}
		} else {
			for i := 0; i < n; i++ {
				_ = w.ReadF64(wl.shared.At(i, 0))
			}
		}
	case PhaseAccumulate:
		for k := 0; k < ph.Count; k++ {
			j := (k + it) % wl.acc.N
			w.AtomicAddF64(wl.acc.At(j, 0), float64(1+(w.ID+k)%7))
		}
	case PhaseArena:
		if wl.arena == nil {
			return
		}
		a := wl.arena.Alloc(w.ID, 8, s.Pad)
		w.WriteU64(a, uint64(val(s.Seed, it, pi, w.ID)))
		w.WriteU64(wl.ptrs.At(w.ID, 0), uint64(a))
		// Publication barrier: pointer chases below observe fully
		// published slots, keeping the read set deterministic.
		w.Barrier()
		tgt := (w.ID + effStride(s, ph, it)) % s.Nodes
		p := memory.Addr(w.ReadU64(wl.ptrs.At(tgt, 0)))
		_ = w.ReadU64(p)
	}
}
