package chaos

import (
	"fmt"
	"sort"

	"presto/internal/rt"
)

// The differential matrix: every seed runs under each protocol × engine
// combination. The write-update baseline is excluded — it intentionally
// violates value coherence between pushes, so the oracle's invariants do
// not apply to it.
var (
	protocols = []rt.ProtocolKind{rt.ProtoStache, rt.ProtoPredictive}
	engines   = []rt.EngineKind{rt.EngineSerial, rt.EngineParallel}
)

// comboKey names one cell of the matrix, e.g. "stache/parallel".
func comboKey(p rt.ProtocolKind, e rt.EngineKind) string {
	return string(p) + "/" + string(e)
}

// engineMutation reports whether a named defect lives in the parallel
// engine (rather than a protocol): such mutations are injected only into
// parallel runs.
func engineMutation(name string) bool {
	return name == rt.MutationStealReverseRun
}

// aggMutation reports whether a named defect lives in the node-leader
// aggregation layer: such mutations imply Options.Aggregate and are
// injected only into seeds whose interconnect is clustered (a flat
// fabric has nothing to coalesce, and rt rejects the combination).
func aggMutation(name string) bool {
	return name == rt.MutationAggDropEntry
}

// SeedResult is the differential oracle's verdict on one seed.
type SeedResult struct {
	Seed int64 `json:"seed"`
	Spec Spec  `json:"spec"`
	// Runs maps "protocol/engine" to that combination's fingerprint.
	Runs map[string]Fingerprint `json:"runs"`
	// Failures lists every oracle violation, empty for a clean seed.
	Failures []string `json:"failures,omitempty"`
}

// Failed reports whether any oracle check tripped.
func (r SeedResult) Failed() bool { return len(r.Failures) > 0 }

// RunSeed derives the seed's workload and runs the full differential
// matrix, checking:
//
//  1. every run completes without error (no deadlock, no event-budget
//     overrun) and with protocol invariants and pre-send accounting
//     intact at quiescence (check.Machine, check.Accounting);
//  2. for each protocol, the serial and parallel engines produce
//     byte-identical fingerprints (time, event counts, counters, final
//     memory);
//  3. across protocols, final memory is identical — the workload's
//     writes never depend on racy read values, so coherent protocols
//     must agree on every block's final contents.
func RunSeed(seed int64, o Options) SeedResult {
	o = o.withDefaults()
	res := SeedResult{
		Seed: seed,
		Spec: o.derive(seed),
		Runs: make(map[string]Fingerprint),
	}
	fail := func(format string, args ...any) {
		res.Failures = append(res.Failures, fmt.Sprintf(format, args...))
	}
	// Aggregation-layer mutations imply aggregated runs, and only bind on
	// clustered interconnects — a flat-fabric seed runs honestly (and
	// passes), so the campaign's catch comes from its clustered seeds.
	campaignMut := o.Mutation
	agg := o.Aggregate || aggMutation(campaignMut)
	if aggMutation(campaignMut) && !res.Spec.clustered() {
		campaignMut = ""
	}
	for _, p := range protocols {
		var fps [2]Fingerprint
		for i, e := range engines {
			// Engine mutations target the parallel engine only: the
			// serial run stays the honest reference the divergence is
			// measured against.
			mut := campaignMut
			if engineMutation(mut) && e != rt.EngineParallel {
				mut = ""
			}
			fp := execute(res.Spec, p, e, mut, o.MaxEvents, "", "", agg)
			res.Runs[comboKey(p, e)] = fp
			fps[i] = fp
			if fp.Err != "" {
				fail("%s: run error: %s", comboKey(p, e), fp.Err)
			}
			for _, v := range fp.Violations {
				fail("%s: %s", comboKey(p, e), v)
			}
		}
		// Engine identity only binds when both runs completed: error
		// strings (deadlock blocked-proc lists) are not part of the
		// determinism contract.
		if fps[0].Err == "" && fps[1].Err == "" {
			for _, d := range fps[0].diff(fps[1]) {
				fail("%s: engine divergence: %s", p, d)
			}
		}
	}
	a := res.Runs[comboKey(protocols[0], engines[0])]
	b := res.Runs[comboKey(protocols[1], engines[0])]
	if a.Err == "" && b.Err == "" && a.MemHash != b.MemHash {
		fail("final memory diverges across protocols: %s=%016x %s=%016x",
			protocols[0], a.MemHash, protocols[1], b.MemHash)
	}
	return res
}

// Render formats a SeedResult for humans: spec line, per-combination
// fingerprints in stable order, then failures.
func (r SeedResult) Render() string {
	out := r.Spec.String() + "\n"
	keys := make([]string, 0, len(r.Runs))
	for k := range r.Runs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out += fmt.Sprintf("  %-20s %s\n", k, r.Runs[k])
	}
	if !r.Failed() {
		return out + "  ok\n"
	}
	for _, f := range r.Failures {
		out += "  FAIL: " + f + "\n"
	}
	return out
}
