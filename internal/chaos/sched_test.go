package chaos

import (
	"reflect"
	"testing"

	"presto/internal/rt"
)

// TestSchedDifferential is the timing-wheel property test: for a band of
// derived workloads, running the same program under the wheel scheduler
// and under the binary-heap reference must produce identical fingerprints
// — same elapsed time, kernel stats (events, deliveries, resumes, queue
// high-water mark), counters, final memory AND identical quiescent
// protocol state (StateHash). The scheduler may change complexity, never
// dispatch order. Both kernel engines are covered, so the matrix is
// {wheel,heap} × {serial,parallel} per protocol per seed.
func TestSchedDifferential(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 40
	}
	protos := []rt.ProtocolKind{rt.ProtoStache, rt.ProtoPredictive}
	engines := []rt.EngineKind{rt.EngineSerial, rt.EngineParallel}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		s := Derive(seed, ScaleQuick)
		for _, proto := range protos {
			for _, engine := range engines {
				wheel := ExecuteSched(s, proto, engine, rt.SchedWheel, 2_000_000)
				heap := ExecuteSched(s, proto, engine, rt.SchedHeap, 2_000_000)
				if !reflect.DeepEqual(wheel, heap) {
					t.Fatalf("seed %d %s/%s: wheel vs heap diverge on %v\nwheel: %v\nheap:  %v",
						seed, proto, engine, wheel.diff(heap), wheel, heap)
				}
				if !wheel.Clean() {
					t.Fatalf("seed %d %s/%s: unclean run: %v", seed, proto, engine, wheel)
				}
			}
		}
	}
}

// TestSchedDefaultIsWheel pins the default: an empty Sched kind must
// behave exactly like an explicit rt.SchedWheel.
func TestSchedDefaultIsWheel(t *testing.T) {
	s := Derive(7, ScaleQuick)
	def := Execute(s, rt.ProtoPredictive, rt.EngineSerial, "", 2_000_000)
	wheel := ExecuteSched(s, rt.ProtoPredictive, rt.EngineSerial, rt.SchedWheel, 2_000_000)
	if !reflect.DeepEqual(def, wheel) {
		t.Fatalf("default scheduler diverges from wheel: %v", def.diff(wheel))
	}
}
