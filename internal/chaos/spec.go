// Package chaos is the repository's deterministic stress/fuzz subsystem.
// From a single int64 seed it derives a random machine shape and a
// multi-iteration phase program, executes it on the real runtime under
// every {protocol} × {engine} combination, and cross-checks the results
// with a differential oracle (same final memory across protocols,
// byte-identical fingerprints across engines, protocol invariants and
// exact pre-send accounting at quiescence). Failing seeds shrink to a
// minimal reproducer expressible as a one-line protofuzz command.
//
// Everything is a pure function of the seed: derivation, the workload's
// memory accesses, and the interconnect perturbation (network.Params
// jitter keyed on simulated state only). A seed therefore reproduces
// exactly on any host, under either simulation engine.
package chaos

import (
	"fmt"
	"strings"
)

// rng is a splitmix64 generator — small, fast, and stable across Go
// versions (unlike math/rand, whose stream is not guaranteed).
type rng struct{ s uint64 }

func newRNG(seed int64) *rng { return &rng{s: uint64(seed)} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		panic("chaos: intn of non-positive bound")
	}
	return int(r.next() % uint64(n))
}

// between returns a value in [lo, hi] inclusive.
func (r *rng) between(lo, hi int) int { return lo + r.intn(hi-lo+1) }

// chance is true pct% of the time.
func (r *rng) chance(pct int) bool { return r.intn(100) < pct }

// Scale selects the derivation envelope: how large a machine and program
// a seed may derive.
type Scale string

const (
	// ScaleQuick bounds seeds to small machines and short programs
	// (CI smoke budget: hundreds of seeds in seconds).
	ScaleQuick Scale = "quick"
	// ScaleLong allows larger machines and longer programs (nightly
	// soak runs).
	ScaleLong Scale = "long"
)

// ParseScale validates a -scale flag value.
func ParseScale(s string) (Scale, error) {
	switch Scale(s) {
	case ScaleQuick, ScaleLong:
		return Scale(s), nil
	}
	return "", fmt.Errorf("chaos: unknown scale %q (want %q or %q)", s, ScaleQuick, ScaleLong)
}

// Caps bounds seed derivation, the shrinker's lever: the same seed run
// under tighter caps derives the same workload shape, clamped. A zero
// field means unbounded.
type Caps struct {
	Nodes  int `json:"nodes,omitempty"`
	Phases int `json:"phases,omitempty"`
	Iters  int `json:"iters,omitempty"`
	Blocks int `json:"blocks,omitempty"` // caps the shared element pool
}

// PhaseKind names one synthetic phase body.
type PhaseKind int

const (
	// PhaseProduce writes deterministic values into the node's own
	// partition (owner-computes; the classic producer half).
	PhaseProduce PhaseKind = iota
	// PhaseConsume reads a rotated neighbor's partition (the consumer
	// half; the pre-send walk should learn this pattern).
	PhaseConsume
	// PhaseConflict writes interleaved elements of an unpadded array —
	// distinct elements, shared cache blocks (false sharing storm).
	PhaseConflict
	// PhaseMigrate has a single rotating writer update a hot set every
	// iteration while the other nodes read it (ownership migration).
	PhaseMigrate
	// PhaseAccumulate has every node atomically add integer-valued
	// deltas into a small shared accumulator array (RMW storm; exact
	// order-independent sums keep final memory protocol-independent).
	PhaseAccumulate
	// PhaseArena allocates from the shared arena, publishes the address
	// through a pointer slot, and has neighbors chase the pointer.
	PhaseArena
	// PhaseBroadcast splits into two compiler phases: owners update
	// their partition, then every node reads every partition. The read
	// phase's schedule lists all nodes as readers of each home's blocks
	// — several consumers per remote node group, the traffic shape
	// node-leader aggregation coalesces into multi-part leader messages.
	PhaseBroadcast

	numPhaseKinds
)

var phaseKindNames = [numPhaseKinds]string{
	"produce", "consume", "conflict", "migrate", "accumulate", "arena", "broadcast",
}

func (k PhaseKind) String() string { return phaseKindNames[k] }

// contended reports whether the phase kind forces inter-node protocol
// traffic on shared blocks (the patterns that exercise invalidations,
// recalls and the overtaking races).
func (k PhaseKind) contended() bool {
	return k == PhaseConflict || k == PhaseMigrate || k == PhaseAccumulate ||
		k == PhaseBroadcast
}

// PhaseSpec describes one compiler-identified phase of the synthetic
// program; the program executes all phases in order every iteration.
type PhaseSpec struct {
	Kind PhaseKind `json:"kind"`
	// Stride is the ring distance used by consume targets and the
	// migrate writer rotation, in [1, Nodes-1].
	Stride int `json:"stride"`
	// Count is the number of elements touched per node per execution.
	Count int `json:"count"`
}

// Spec is a fully derived synthetic workload: a machine shape plus a
// phase program. It is a pure function of (seed, scale, caps).
type Spec struct {
	Seed      int64       `json:"seed"`
	Nodes     int         `json:"nodes"`
	Net       string      `json:"net"` // interconnect preset (network.Preset)
	BlockSize int         `json:"block_size"`
	Iters     int         `json:"iters"`
	JitterPct int         `json:"jitter_pct"`
	Elems     int         `json:"elems"` // shared element pool (multiple of Nodes)
	Pad       bool        `json:"pad"`   // pad the main array to whole blocks
	UseArena  bool        `json:"use_arena"`
	FlushIter int         `json:"flush_iter"` // iteration whose end flushes schedules; -1 = never
	FlushID   int         `json:"flush_id"`   // phase id to flush, or -1 for all
	RotEvery  int         `json:"rot_every"`  // rotate strides every N iterations; 0 = never
	Phases    []PhaseSpec `json:"phases"`
}

func (s Spec) String() string {
	return fmt.Sprintf("seed=%d nodes=%d net=%s bs=%d iters=%d elems=%d jitter=%d%% phases=%d",
		s.Seed, s.Nodes, s.Net, s.BlockSize, s.Iters, s.Elems, s.JitterPct, len(s.Phases))
}

// Derive expands a seed into a workload at the given scale.
func Derive(seed int64, scale Scale) Spec { return DeriveCapped(seed, scale, Caps{}) }

// DeriveCapped derives the same workload shape as Derive and then clamps
// it to the caps. Derivation consumes the generator identically
// regardless of caps, so a capped run preserves the uncapped run's
// structural decisions — the property the shrinker relies on.
func DeriveCapped(seed int64, scale Scale, c Caps) Spec {
	r := newRNG(seed)
	maxNodes, maxPhases, maxIters := 8, 4, 4
	if scale == ScaleLong {
		maxNodes, maxPhases, maxIters = 16, 6, 8
	}
	s := Spec{Seed: seed}
	s.Nodes = r.between(2, maxNodes)
	// Hardware-assisted DSM weighted up: its sub-microsecond handler
	// occupancies are the regime where protocol messages overtake the
	// payload-carrying grants they chase (the deferral races). The
	// "cluster", "mesh" and "fattree" entries are sentinels clamp()
	// materializes into concrete shapes once the final node count is
	// known — the hierarchical topologies exercise the parallel engine's
	// pair-matrix lookahead, lane coarsening, and the distance-dependent
	// mesh transit.
	s.Net = []string{"cm5", "now", "hwdsm", "hwdsm",
		"cluster", "cluster", "mesh", "fattree"}[r.intn(8)]
	s.BlockSize = []int{32, 64, 128, 256}[r.intn(4)]
	s.Iters = r.between(2, maxIters)
	s.JitterPct = []int{0, 5, 10, 25}[r.intn(4)]
	s.Elems = r.between(2, 8) * s.Nodes
	s.Pad = r.chance(50)
	s.UseArena = r.chance(40)
	s.FlushIter, s.FlushID = -1, -1
	nph := r.between(1, maxPhases)
	if r.chance(30) {
		s.FlushIter = r.intn(s.Iters)
		if r.chance(50) {
			s.FlushID = r.intn(nph)
		}
	}
	if r.chance(40) {
		s.RotEvery = r.between(1, 2)
	}
	for i := 0; i < nph; i++ {
		k := PhaseKind(r.intn(int(numPhaseKinds)))
		if k == PhaseArena && !s.UseArena {
			k = PhaseConsume
		}
		s.Phases = append(s.Phases, PhaseSpec{
			Kind:   k,
			Stride: r.between(1, max(1, s.Nodes-1)),
			Count:  r.between(1, 6),
		})
	}
	// Guarantee at least one contended phase in the shrink-surviving
	// prefix: without invalidations/recalls a seed exercises nothing
	// interesting, and the shrinker truncates phases from the tail.
	contended := false
	for _, p := range s.Phases {
		contended = contended || p.Kind.contended()
	}
	if !contended {
		s.Phases[0].Kind = PhaseConflict
	}
	return s.clamp(c)
}

// clamp applies caps and restores the Spec's internal invariants
// (partitionable element pool, in-range strides and flush points).
func (s Spec) clamp(c Caps) Spec {
	if c.Nodes > 1 && s.Nodes > c.Nodes {
		s.Nodes = c.Nodes
	}
	if c.Phases > 0 && len(s.Phases) > c.Phases {
		s.Phases = s.Phases[:c.Phases]
	}
	if c.Iters > 0 && s.Iters > c.Iters {
		s.Iters = c.Iters
	}
	if c.Blocks > 0 && s.Elems > c.Blocks {
		s.Elems = c.Blocks
	}
	// Keep the pool an exact multiple of the node count so every node
	// owns a non-empty, equal partition.
	if s.Elems < s.Nodes {
		s.Elems = s.Nodes
	}
	s.Elems -= s.Elems % s.Nodes
	for i := range s.Phases {
		if s.Nodes > 1 {
			s.Phases[i].Stride = 1 + (s.Phases[i].Stride-1)%(s.Nodes-1)
		} else {
			s.Phases[i].Stride = 0
		}
	}
	if s.FlushIter >= s.Iters {
		s.FlushIter = s.Iters - 1
	}
	if s.FlushID >= len(s.Phases) {
		s.FlushID = -1
	}
	// Materialize topology sentinels against the final node count.
	// Matching the materialized prefixes too keeps re-clamping an
	// already-materialized spec (the shrinker tightening Nodes) coherent:
	// cluster shapes become groups of two whenever the nodes tile (the
	// flat hwdsm preset otherwise); a fat tree pins 4^levels nodes, so it
	// only survives at exactly 16 and degrades to a mesh elsewhere; a
	// mesh factors the node count into the squarest w x h grid, which
	// exists for every count (1 x n in the worst case).
	if s.Net == "cluster" || strings.HasPrefix(s.Net, "cluster:") {
		if s.Nodes >= 4 && s.Nodes%2 == 0 {
			s.Net = fmt.Sprintf("cluster:%dx2", s.Nodes/2)
		} else {
			s.Net = "hwdsm"
		}
	}
	if s.Net == "fattree" || strings.HasPrefix(s.Net, "fattree:") {
		if s.Nodes == 16 {
			s.Net = "fattree:2"
		} else {
			s.Net = "mesh"
		}
	}
	if s.Net == "mesh" || strings.HasPrefix(s.Net, "mesh:") {
		s.Net = meshShape(s.Nodes)
	}
	return s
}

// meshShape factors n into the squarest mesh:<w>x<h> preset with
// w*h == n (w <= h; w may be 1).
func meshShape(n int) string {
	w := 1
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			w = d
		}
	}
	return fmt.Sprintf("mesh:%dx%d", w, n/w)
}

// Size reports the spec's shrinkable dimensions as caps.
func (s Spec) Size() Caps {
	return Caps{Nodes: s.Nodes, Phases: len(s.Phases), Iters: s.Iters, Blocks: s.Elems}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
