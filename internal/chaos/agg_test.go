// Aggregation differential band: node-leader aggregation must be
// timing-visible but memory-invariant on every derived seed, the
// parallel engine must stay byte-identical with aggregation on, and the
// agg-drop-entry mutation must be caught and shrunk by the oracle.
package chaos

import (
	"strings"
	"testing"

	"presto/internal/rt"
)

const aggMaxEvents = 20_000_000

// TestAggregationBand sweeps seeds through aggregated and unaggregated
// runs. Clustered seeds must keep final memory identical (timing may
// move); flat seeds must be bit-for-bit unchanged (the layer is a
// no-op); and serial/parallel fingerprints must match with aggregation
// on.
func TestAggregationBand(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 40
	}
	clustered, aggregated := 0, 0
	for seed := int64(1); seed <= int64(seeds); seed++ {
		s := Derive(seed, ScaleQuick)
		off := Execute(s, rt.ProtoPredictive, rt.EngineSerial, "", aggMaxEvents)
		on := ExecuteAggregated(s, rt.ProtoPredictive, rt.EngineSerial, "", aggMaxEvents)
		if !off.Clean() || !on.Clean() {
			t.Fatalf("seed %d (%s): unclean runs:\noff: %v\non:  %v", seed, s, off, on)
		}
		if off.MemHash != on.MemHash {
			t.Fatalf("seed %d (%s): aggregation changed memory: %016x vs %016x",
				seed, s, off.MemHash, on.MemHash)
		}
		onPar := ExecuteAggregated(s, rt.ProtoPredictive, rt.EngineParallel, "", aggMaxEvents)
		if d := on.diff(onPar); len(d) != 0 {
			t.Fatalf("seed %d (%s): aggregated engines diverge: %v", seed, s, d)
		}
		if s.clustered() {
			clustered++
			if on.Counters.AggMsgs > 0 {
				aggregated++
			}
		} else if d := off.diff(on); len(d) != 0 {
			t.Fatalf("seed %d (%s): flat aggregation not a no-op: %v", seed, s, d)
		}
	}
	if clustered == 0 {
		t.Fatal("band derived no clustered seeds; aggregation untested")
	}
	// Without multi-part aggregates the band proves nothing about the
	// coalescing path — broadcast-phase seeds on clustered fabrics must
	// actually send leader aggregates.
	if aggregated == 0 {
		t.Fatalf("no clustered seed sent aggregates (%d clustered seeds)", clustered)
	}
	t.Logf("%d clustered seeds, %d with aggregate traffic", clustered, aggregated)
}

// TestAggDropMutationCaughtAndShrunk injects the aggregation
// entry-dropping defect and requires the differential oracle to catch
// it (via a wedged run or the conservation identity) and shrink it to a
// small reproducer carrying the right repro flags.
func TestAggDropMutationCaughtAndShrunk(t *testing.T) {
	rep := Fuzz(Options{Seeds: 120, Mutation: rt.MutationAggDropEntry})
	if rep.Ok() {
		t.Fatalf("mutation %s not caught over %d seeds", rt.MutationAggDropEntry, rep.SeedsRun)
	}
	f := rep.Failures[0]
	if !f.MinResult.Failed() {
		t.Fatal("shrunk reproducer does not fail")
	}
	if f.Min.Nodes > 6 || f.Min.Phases > 3 {
		t.Errorf("reproducer not minimal: nodes=%d phases=%d (want <=6, <=3)",
			f.Min.Nodes, f.Min.Phases)
	}
	if !strings.Contains(f.Repro, "-mutate "+rt.MutationAggDropEntry) {
		t.Errorf("repro command incomplete: %s", f.Repro)
	}
	o := Options{Mutation: rt.MutationAggDropEntry, Caps: f.Min}
	if r := RunSeed(f.Seed, o); !r.Failed() {
		t.Errorf("repro seed %d with caps %+v does not fail", f.Seed, f.Min)
	}
}

// TestHierarchicalTopologySeeds pins the sentinel materialization and
// executes a handcrafted fat-tree spec: 16 nodes is the one quick-range
// count where fattree:2 survives, and the engines must agree on it.
func TestHierarchicalTopologySeeds(t *testing.T) {
	meshes, fattrees := 0, 0
	for seed := int64(1); seed <= 300; seed++ {
		s := Derive(seed, ScaleLong)
		if strings.HasPrefix(s.Net, "mesh:") {
			meshes++
		}
		if strings.HasPrefix(s.Net, "fattree:") {
			fattrees++
			if s.Nodes != 16 {
				t.Fatalf("seed %d: fattree spec with %d nodes", seed, s.Nodes)
			}
		}
	}
	if meshes == 0 {
		t.Fatal("no mesh seeds derived in 300 long-scale seeds")
	}
	t.Logf("300 long-scale seeds: %d mesh, %d fattree", meshes, fattrees)

	s := Derive(42, ScaleQuick)
	s.Nodes = 16
	s.Net = "fattree:2"
	s.Elems = 4 * s.Nodes
	serial := ExecuteAggregated(s, rt.ProtoPredictive, rt.EngineSerial, "", aggMaxEvents)
	par := ExecuteAggregated(s, rt.ProtoPredictive, rt.EngineParallel, "", aggMaxEvents)
	if !serial.Clean() {
		t.Fatalf("fat-tree run unclean: %v", serial)
	}
	if d := serial.diff(par); len(d) != 0 {
		t.Fatalf("fat-tree engines diverge: %v", d)
	}
}
