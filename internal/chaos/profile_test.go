package chaos

import (
	"bytes"
	"encoding/json"
	"testing"

	"presto/internal/rt"
)

const profMaxEvents = 5_000_000

// TestAttributionInvariantBand runs a 200-seed chaos band with the
// causal profiler on and checks, for every seed:
//   - the attribution invariant (per-node bucket sums equal total
//     simulated time exactly; serial critical-path length equals the
//     end-to-end elapsed time) — enforced by ExecuteProfiled
//   - the fingerprint is byte-identical to the unprofiled run
func TestAttributionInvariantBand(t *testing.T) {
	protos := []rt.ProtocolKind{rt.ProtoStache, rt.ProtoPredictive, rt.ProtoUpdate}
	for seed := int64(0); seed < 200; seed++ {
		s := Derive(seed, ScaleQuick)
		proto := protos[seed%int64(len(protos))]
		base := Execute(s, proto, rt.EngineSerial, "", profMaxEvents)
		fp, p, err := ExecuteProfiled(s, proto, rt.EngineSerial, profMaxEvents)
		if err != nil {
			t.Fatalf("seed %d %s: %v\nspec: %s", seed, proto, err, s)
		}
		if d := base.diff(fp); len(d) > 0 {
			t.Fatalf("seed %d %s: profiler perturbed the run: %v", seed, proto, d)
		}
		if p.ElapsedNS != fp.ElapsedNS {
			t.Fatalf("seed %d: profile elapsed %d != fingerprint %d", seed, p.ElapsedNS, fp.ElapsedNS)
		}
	}
}

// TestAttributionInvariantParallel repeats the invariant check under the
// parallel engine on a smaller band, additionally asserting the
// parallel fingerprint (profiled) equals the serial one (unprofiled) —
// the strongest cross-engine × profiler identity.
func TestAttributionInvariantParallel(t *testing.T) {
	for seed := int64(0); seed < 24; seed++ {
		s := Derive(seed, ScaleQuick)
		base := Execute(s, rt.ProtoPredictive, rt.EngineSerial, "", profMaxEvents)
		fp, p, err := ExecuteProfiled(s, rt.ProtoPredictive, rt.EngineParallel, profMaxEvents)
		if err != nil {
			t.Fatalf("seed %d: %v\nspec: %s", seed, err, s)
		}
		if d := base.diff(fp); len(d) > 0 {
			t.Fatalf("seed %d: profiled parallel diverged from serial: %v", seed, d)
		}
		if p.Flight == nil {
			t.Fatalf("seed %d: parallel profile missing engine flight record", seed)
		}
		if p.Flight.Events == 0 || p.Flight.Windows == 0 {
			t.Fatalf("seed %d: empty engine flight record: %+v", seed, p.Flight)
		}
	}
}

// TestPhaseMetricsParallelMatchesSerial asserts the full metrics report
// — per-phase stats and every OnCommit-deferred registry counter — is
// byte-identical between the serial and parallel engines across a seed
// band. Deferred side effects must replay in commit order, so the JSON
// encodings must match exactly.
func TestPhaseMetricsParallelMatchesSerial(t *testing.T) {
	for seed := int64(0); seed < 16; seed++ {
		s := Derive(seed, ScaleQuick)
		for _, proto := range []rt.ProtocolKind{rt.ProtoStache, rt.ProtoPredictive} {
			_, ms := run(s, proto, rt.EngineSerial, "", profMaxEvents, "", "", false, false)
			_, mp := run(s, proto, rt.EngineParallel, "", profMaxEvents, "", "", false, false)
			if ms == nil || mp == nil {
				t.Fatalf("seed %d %s: run failed", seed, proto)
			}
			bs := mustJSON(t, ms.Report())
			bp := mustJSON(t, mp.Report())
			if !bytes.Equal(bs, bp) {
				t.Fatalf("seed %d %s: metrics report differs across engines\nspec: %s\nserial:   %.300s\nparallel: %.300s",
					seed, proto, s, bs, bp)
			}
		}
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestProfiledGoldenStability pins one profiled run's headline numbers
// so accidental attribution drift is caught: same seed, same buckets.
func TestProfiledGoldenStability(t *testing.T) {
	s := Derive(7, ScaleQuick)
	_, a, err := ExecuteProfiled(s, rt.ProtoPredictive, rt.EngineSerial, profMaxEvents)
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := ExecuteProfiled(s, rt.ProtoPredictive, rt.EngineSerial, profMaxEvents)
	if err != nil {
		t.Fatal(err)
	}
	ja, jb := mustJSON(t, a), mustJSON(t, b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("profile not deterministic:\n%s\nvs\n%s", ja, jb)
	}
	if len(a.Path.TopSegments) == 0 {
		t.Fatal("profile has no critical-path segments")
	}
	if a.MachineBuckets().Total() == 0 {
		t.Fatal("profile attributed no time")
	}
}
