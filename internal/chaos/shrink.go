package chaos

import (
	"fmt"
	"strings"
)

// Shrink minimizes a failing seed by tightening derivation caps rather
// than mutating the workload: DeriveCapped preserves the uncapped run's
// structural decisions, so the minimal reproducer is expressible as the
// original seed plus four -max-* flags (ReproCommand). Greedy descent
// per dimension — for each of nodes/phases/iters/blocks, try the floor,
// then halving, then decrement, keeping any cap under which the seed
// still fails — repeated until no dimension shrinks further.
func Shrink(seed int64, o Options) (Caps, SeedResult) {
	o = o.withDefaults()
	base := RunSeed(seed, o)
	if !base.Failed() {
		return o.Caps, base
	}
	cur := base.Spec.Size()
	best := base

	type dim struct {
		get func(Caps) int
		set func(*Caps, int)
		min int
	}
	dims := []dim{
		{func(c Caps) int { return c.Nodes }, func(c *Caps, v int) { c.Nodes = v }, 2},
		{func(c Caps) int { return c.Phases }, func(c *Caps, v int) { c.Phases = v }, 1},
		{func(c Caps) int { return c.Iters }, func(c *Caps, v int) { c.Iters = v }, 1},
		{func(c Caps) int { return c.Blocks }, func(c *Caps, v int) { c.Blocks = v }, 2},
	}

	try := func(c Caps) (SeedResult, bool) {
		oc := o
		oc.Caps = c
		r := RunSeed(seed, oc)
		return r, r.Failed()
	}

	for progress := true; progress; {
		progress = false
		for _, d := range dims {
			have := d.get(cur)
			for _, cand := range []int{d.min, have / 2, have - 1} {
				if cand >= have || cand < d.min {
					continue
				}
				trial := cur
				d.set(&trial, cand)
				if r, failed := try(trial); failed {
					cur, best = trial, r
					progress = true
					break
				}
			}
		}
	}
	// Report the dimensions actually derived at the minimal caps (the
	// caps may sit above what derivation produces).
	min := best.Spec.Size()
	return min, best
}

// ReproCommand renders the one-line command reproducing a failing seed
// at the given caps.
func ReproCommand(seed int64, o Options, c Caps) string {
	o = o.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "go run ./cmd/protofuzz -repro -seed %d -scale %s", seed, o.Scale)
	if c.Nodes > 0 {
		fmt.Fprintf(&b, " -max-nodes %d", c.Nodes)
	}
	if c.Phases > 0 {
		fmt.Fprintf(&b, " -max-phases %d", c.Phases)
	}
	if c.Iters > 0 {
		fmt.Fprintf(&b, " -max-iters %d", c.Iters)
	}
	if c.Blocks > 0 {
		fmt.Fprintf(&b, " -max-blocks %d", c.Blocks)
	}
	if o.Mutation != "" {
		fmt.Fprintf(&b, " -mutate %s", o.Mutation)
	}
	if o.Aggregate {
		fmt.Fprintf(&b, " -aggregate")
	}
	if o.JitterPct != 0 {
		fmt.Fprintf(&b, " -jitter %d", o.JitterPct)
	}
	return b.String()
}
