package chaos

import (
	"strings"
	"testing"

	"presto/internal/rt"
)

// TestEngineLookaheadBand is the multi-core engine's fingerprint band:
// 200 seeds, each run serially and then under the parallel engine with
// {global, pair} lookahead × {1, 4} workers (clamped to the derived lane
// count). Every combination must produce a fingerprint byte-identical to
// the serial reference. Roughly a third of the derived shapes carry a
// cluster:<g>x2 interconnect, exercising lane coarsening and the widened
// cross-group windows.
func TestEngineLookaheadBand(t *testing.T) {
	const maxEvents = 5_000_000
	protos := []rt.ProtocolKind{rt.ProtoStache, rt.ProtoPredictive}
	clustered := 0
	for seed := int64(0); seed < 200; seed++ {
		s := Derive(seed, ScaleQuick)
		if strings.HasPrefix(s.Net, "cluster:") {
			clustered++
		}
		proto := protos[seed%2]
		serial := Execute(s, proto, rt.EngineSerial, "", maxEvents)
		if serial.Err != "" {
			t.Fatalf("seed %d (%s): serial run errored: %s", seed, s, serial.Err)
		}
		for _, la := range []rt.LookaheadKind{rt.LookaheadGlobal, rt.LookaheadPair} {
			for _, workers := range []int{1, 4} {
				fp := ExecuteEngine(s, proto, EngineConfig{Workers: workers, Lookahead: la}, maxEvents)
				if d := serial.diff(fp); len(d) > 0 {
					t.Fatalf("seed %d (%s) %s workers=%d diverged from serial: %v",
						seed, s, la, workers, d)
				}
			}
		}
	}
	if clustered == 0 {
		t.Fatal("band derived no clustered interconnects; the pair matrix went unexercised")
	}
}

// TestEngineNoStealIdentity: the work-stealing ablation may change which
// worker executes a lane, never the outcome.
func TestEngineNoStealIdentity(t *testing.T) {
	const maxEvents = 5_000_000
	for seed := int64(0); seed < 40; seed++ {
		s := Derive(seed, ScaleQuick)
		steal := ExecuteEngine(s, rt.ProtoPredictive, EngineConfig{Workers: 4}, maxEvents)
		noSteal := ExecuteEngine(s, rt.ProtoPredictive, EngineConfig{Workers: 4, NoSteal: true}, maxEvents)
		if d := steal.diff(noSteal); len(d) > 0 {
			t.Fatalf("seed %d (%s): stealing changed the outcome: %v", seed, s, d)
		}
	}
}

// TestStealReverseRunMutationCaught injects the engine defect — window
// runs executed tail-first, the ordering property work stealing must
// preserve — and requires the differential oracle to catch and shrink
// it. The serial reference stays honest; only parallel runs are mutated.
func TestStealReverseRunMutationCaught(t *testing.T) {
	rep := Fuzz(Options{Seeds: 60, Mutation: rt.MutationStealReverseRun})
	if rep.Ok() {
		t.Fatalf("mutation %s not caught over %d seeds", rt.MutationStealReverseRun, rep.SeedsRun)
	}
	f := rep.Failures[0]
	if !f.MinResult.Failed() {
		t.Fatal("shrunk reproducer does not fail")
	}
	if !strings.Contains(f.Repro, "-mutate "+rt.MutationStealReverseRun) {
		t.Errorf("repro command incomplete: %s", f.Repro)
	}
	// The printed reproducer must actually reproduce.
	o := Options{Mutation: rt.MutationStealReverseRun, Caps: f.Min}
	if r := RunSeed(f.Seed, o); !r.Failed() {
		t.Errorf("repro seed %d with caps %+v does not fail", f.Seed, f.Min)
	}
}
