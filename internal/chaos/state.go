package chaos

import (
	"presto/internal/core"
	"presto/internal/memory"
	"presto/internal/rt"
	"presto/internal/schedule"
	"presto/internal/stache"
	"presto/internal/tempest"
)

// stateHash folds the machine's quiescent protocol state — every node's
// directory entries, cache-side deferral flags and (for the predictive
// protocol) schedule tables — into one 64-bit FNV-1a hash. All iteration
// is in deterministic ascending order, so two runs of the same program
// hash equal exactly when their protocol state is identical. This is the
// signal the dense-vs-map storage differential relies on: the two
// backends must converge to the same state, not merely the same memory.
func stateHash(m *rt.Machine) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xff)) * fnvPrime
			v >>= 8
		}
	}
	for _, n := range m.Nodes {
		mix(uint64(n.ID))
		// Home directory: entry states, sharer sets, owners and queued
		// requests, in ascending block order.
		n.Dir.ForEach(func(b memory.Block, e *tempest.DirEntry) {
			mix(uint64(b))
			mix(uint64(e.State))
			mixSet(mix, e.Sharers)
			mix(uint64(int64(e.Owner)))
			mix(uint64(e.PendingLen()))
			e.ForEachPending(func(pr tempest.PendReq) {
				v := uint64(pr.Req) << 2
				if pr.Write {
					v |= 1
				}
				if pr.Presend {
					v |= 2
				}
				mix(v)
			})
		})
		// Cache-side deferral flags (Stache state underlies all three
		// protocols chaos runs).
		stache.StateOf(n).ForEachDeferred(func(b memory.Block, flags uint8) {
			mix(uint64(b))
			mix(uint64(flags))
		})
		// Predictive communication schedules, by phase then block.
		if p, ok := m.Proto.(*core.Predictive); ok {
			p.ScheduleTable(n).ForEach(func(ph *schedule.Phase) {
				mix(uint64(ph.ID))
				for _, e := range ph.Entries() {
					mix(uint64(e.Block))
					mix(uint64(e.Mode))
					mixSet(mix, e.Readers)
					mix(uint64(int64(e.Writer)))
				}
			})
		}
	}
	return h
}

// mixSet folds a node set into the hash canonically — member count then
// each member in ascending order — so the hash depends only on set
// content, never on the set's internal word layout.
func mixSet(mix func(uint64), s tempest.Bitset) {
	mix(uint64(s.Count()))
	s.ForEach(func(n int) { mix(uint64(n)) })
}
