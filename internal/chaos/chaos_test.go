package chaos

import (
	"reflect"
	"strings"
	"testing"

	"presto/internal/rt"
)

func TestDeriveDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		a := Derive(seed, ScaleQuick)
		b := Derive(seed, ScaleQuick)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d derives unstably:\n%+v\n%+v", seed, a, b)
		}
	}
	// Distinct seeds must explore distinct shapes.
	if reflect.DeepEqual(Derive(1, ScaleQuick).Phases, Derive(2, ScaleQuick).Phases) &&
		Derive(1, ScaleQuick).Nodes == Derive(2, ScaleQuick).Nodes {
		t.Fatalf("seeds 1 and 2 derive identical workloads")
	}
}

func TestDeriveInvariants(t *testing.T) {
	for seed := int64(1); seed <= 200; seed++ {
		s := Derive(seed, ScaleQuick)
		if s.Nodes < 2 || s.Nodes > 8 {
			t.Fatalf("seed %d: nodes %d out of quick envelope", seed, s.Nodes)
		}
		if s.Elems%s.Nodes != 0 || s.Elems < s.Nodes {
			t.Fatalf("seed %d: elems %d not a positive multiple of nodes %d", seed, s.Elems, s.Nodes)
		}
		contended := false
		for _, p := range s.Phases {
			if p.Stride < 1 || p.Stride > s.Nodes-1 {
				t.Fatalf("seed %d: stride %d out of [1,%d]", seed, p.Stride, s.Nodes-1)
			}
			contended = contended || p.Kind.contended()
		}
		if !contended {
			t.Fatalf("seed %d: no contended phase in %v", seed, s.Phases)
		}
		if s.FlushIter >= s.Iters || s.FlushID >= len(s.Phases) {
			t.Fatalf("seed %d: flush point (%d,%d) out of range", seed, s.FlushIter, s.FlushID)
		}
	}
}

func TestDeriveCappedRespectsCaps(t *testing.T) {
	caps := Caps{Nodes: 3, Phases: 2, Iters: 2, Blocks: 9}
	for seed := int64(1); seed <= 100; seed++ {
		s := DeriveCapped(seed, ScaleQuick, caps)
		if s.Nodes > 3 || len(s.Phases) > 2 || s.Iters > 2 || s.Elems > 9 {
			t.Fatalf("seed %d: caps %+v violated by %s", seed, caps, s)
		}
		// Capping must preserve the uncapped run's structural decisions:
		// the surviving phase prefix is identical.
		u := Derive(seed, ScaleQuick)
		for i, p := range s.Phases {
			if p.Kind != u.Phases[i].Kind || p.Count != u.Phases[i].Count {
				t.Fatalf("seed %d: capped phase %d %+v diverges from uncapped %+v",
					seed, i, p, u.Phases[i])
			}
		}
	}
}

// TestCleanSeeds is the oracle's own health check: honest protocols must
// survive a band of seeds under every protocol × engine combination.
func TestCleanSeeds(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 4
	}
	rep := Fuzz(Options{Seeds: n, MaxFailures: 3})
	for _, f := range rep.Failures {
		t.Errorf("seed %d failed:\n%s", f.Seed, f.Result.Render())
	}
	if rep.SeedsRun != n {
		t.Errorf("ran %d seeds, want %d", rep.SeedsRun, n)
	}
}

// TestMutationCaughtAndShrunk injects the overtaking-deferral defect and
// requires the differential oracle to catch it and shrink it to a small
// reproducer (the PR's acceptance bound: ≤ 4 nodes, ≤ 3 phases).
func TestMutationCaughtAndShrunk(t *testing.T) {
	rep := Fuzz(Options{Seeds: 50, Mutation: rt.MutationStacheSkipDeferral})
	if rep.Ok() {
		t.Fatalf("mutation %s not caught over %d seeds", rt.MutationStacheSkipDeferral, rep.SeedsRun)
	}
	f := rep.Failures[0]
	if !f.MinResult.Failed() {
		t.Fatalf("shrunk reproducer does not fail")
	}
	if f.Min.Nodes > 4 || f.Min.Phases > 3 {
		t.Errorf("reproducer not minimal: nodes=%d phases=%d (want <=4, <=3)",
			f.Min.Nodes, f.Min.Phases)
	}
	if !strings.Contains(f.Repro, "-repro -seed") || !strings.Contains(f.Repro, "-mutate "+rt.MutationStacheSkipDeferral) {
		t.Errorf("repro command incomplete: %s", f.Repro)
	}
	// The printed command must actually reproduce: run the seed under
	// the minimal caps.
	o := Options{Mutation: rt.MutationStacheSkipDeferral, Caps: f.Min}
	if r := RunSeed(f.Seed, o); !r.Failed() {
		t.Errorf("repro seed %d with caps %+v does not fail", f.Seed, f.Min)
	}
}

// TestExecuteDeterministic pins the full fingerprint of one combination
// across repeated in-process runs (guards against host-state leaks into
// the simulation).
func TestExecuteDeterministic(t *testing.T) {
	s := Derive(7, ScaleQuick)
	a := Execute(s, rt.ProtoPredictive, rt.EngineParallel, "", 1_000_000)
	b := Execute(s, rt.ProtoPredictive, rt.EngineParallel, "", 1_000_000)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("repeated runs diverge:\n%v\n%v", a, b)
	}
	if a.Err != "" {
		t.Fatalf("seed 7 errored: %s", a.Err)
	}
}
