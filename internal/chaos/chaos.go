package chaos

import (
	"context"
	"fmt"
	"io"
)

// Options configures a fuzzing campaign (and, with Seeds=1, a single
// reproduction run).
type Options struct {
	// Seeds is the number of consecutive seeds to run (default 50).
	Seeds int
	// Start is the first seed (default 1).
	Start int64
	// Scale bounds derivation (default ScaleQuick).
	Scale Scale
	// Caps further bounds derivation (the -max-* repro flags).
	Caps Caps
	// Mutation injects a named protocol defect into every run
	// (rt.Mutation*). The campaign is then expected to fail — mutation
	// testing of the oracle itself.
	Mutation string
	// Aggregate runs every combination with node-leader message
	// aggregation enabled (rt.Config.Aggregate). A timing-visible no-op
	// on seeds whose interconnect is flat; implied by the agg-drop-entry
	// mutation.
	Aggregate bool
	// JitterPct overrides the derived interconnect jitter: 0 derives it
	// from the seed (default), >0 forces that percentage, <0 forces
	// jitter off.
	JitterPct int
	// MaxEvents bounds each run's simulation events, the livelock guard
	// for mutated protocols (default 20M).
	MaxEvents int64
	// MaxFailures stops the campaign after this many failing seeds
	// (default 1).
	MaxFailures int
	// NoShrink skips minimizing failing seeds.
	NoShrink bool
	// Ctx, when non-nil, cancels the campaign between seeds (and between
	// a failure and its shrink): Fuzz returns the partial report with
	// Interrupted set, so callers can flush artifacts for the seeds that
	// did run instead of dying mid-write.
	Ctx context.Context
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

func (o Options) withDefaults() Options {
	if o.Seeds == 0 {
		o.Seeds = 50
	}
	if o.Start == 0 {
		o.Start = 1
	}
	if o.Scale == "" {
		o.Scale = ScaleQuick
	}
	if o.MaxEvents == 0 {
		o.MaxEvents = 20_000_000
	}
	if o.MaxFailures == 0 {
		o.MaxFailures = 1
	}
	return o
}

// derive expands a seed under the campaign's scale, caps and jitter
// policy.
func (o Options) derive(seed int64) Spec {
	s := DeriveCapped(seed, o.Scale, o.Caps)
	switch {
	case o.JitterPct > 0:
		s.JitterPct = o.JitterPct
	case o.JitterPct < 0:
		s.JitterPct = 0
	}
	return s
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// Failure is one failing seed, minimized.
type Failure struct {
	Seed int64 `json:"seed"`
	// Result is the original (uncapped) failing run.
	Result SeedResult `json:"result"`
	// Min is the smallest cap set under which the seed still fails.
	Min Caps `json:"min"`
	// MinResult is the failing run at Min.
	MinResult SeedResult `json:"min_result"`
	// Repro is the one-line command reproducing MinResult.
	Repro string `json:"repro"`
}

// Report is a campaign's outcome.
type Report struct {
	SeedsRun int       `json:"seeds_run"`
	Failures []Failure `json:"failures,omitempty"`
	// Interrupted marks a campaign cut short by Options.Ctx: SeedsRun and
	// Failures cover only the seeds that completed.
	Interrupted bool `json:"interrupted,omitempty"`
}

// Ok reports a clean campaign.
func (r Report) Ok() bool { return len(r.Failures) == 0 }

// Fuzz runs the campaign: consecutive seeds through the differential
// oracle, shrinking each failure to a minimal reproducer, stopping after
// Options.MaxFailures failing seeds.
func Fuzz(o Options) Report {
	o = o.withDefaults()
	var rep Report
	for i := 0; i < o.Seeds; i++ {
		if o.Ctx != nil && o.Ctx.Err() != nil {
			rep.Interrupted = true
			break
		}
		seed := o.Start + int64(i)
		r := RunSeed(seed, o)
		rep.SeedsRun++
		if !r.Failed() {
			o.logf("seed %d ok (%s)", seed, r.Spec)
			continue
		}
		o.logf("seed %d FAILED:\n%s", seed, r.Render())
		f := Failure{Seed: seed, Result: r}
		if o.NoShrink || (o.Ctx != nil && o.Ctx.Err() != nil) {
			f.Min, f.MinResult = r.Spec.Size(), r
		} else {
			o.logf("shrinking seed %d ...", seed)
			f.Min, f.MinResult = Shrink(seed, o)
		}
		f.Repro = ReproCommand(seed, o, f.Min)
		o.logf("minimal: nodes=%d phases=%d iters=%d blocks=%d\nrepro: %s",
			f.Min.Nodes, f.Min.Phases, f.Min.Iters, f.Min.Blocks, f.Repro)
		rep.Failures = append(rep.Failures, f)
		if len(rep.Failures) >= o.MaxFailures {
			break
		}
	}
	return rep
}
