package blockstate

import (
	"sort"
	"testing"

	"presto/internal/memory"
)

func testAS(t *testing.T) *memory.AddressSpace {
	t.Helper()
	as := memory.NewAddressSpace(8, 32)
	as.NewRegion("r0", 1<<16, func(int64) int { return 0 })
	as.NewRegion("r1", 1000, func(int64) int { return 1 }) // non-power-of-2 size
	return as
}

func kinds() []Kind { return []Kind{Dense, MapRef} }

func TestStoreBasics(t *testing.T) {
	as := testAS(t)
	for _, kind := range kinds() {
		t.Run(string(kind), func(t *testing.T) {
			s := New[int](as, kind)
			b := as.Regions()[0].BlockAt(3)
			if s.Get(b) != nil {
				t.Fatalf("Get on empty store: want nil")
			}
			v, created := s.Ensure(b)
			if !created || v == nil || *v != 0 {
				t.Fatalf("Ensure first touch: created=%v v=%v", created, v)
			}
			*v = 42
			v2, created := s.Ensure(b)
			if created || v2 != v {
				t.Fatalf("Ensure second touch: created=%v, pointer stable=%v", created, v2 == v)
			}
			if got := s.Get(b); got != v || *got != 42 {
				t.Fatalf("Get after Ensure: %v", got)
			}
			if s.Len() != 1 {
				t.Fatalf("Len = %d, want 1", s.Len())
			}
			s.Remove(b)
			s.Remove(b) // absent remove is a no-op
			if s.Get(b) != nil || s.Len() != 0 {
				t.Fatalf("after Remove: Get=%v Len=%d", s.Get(b), s.Len())
			}
			// A re-ensured slot must be zero again, not carry stale state.
			v3, created := s.Ensure(b)
			if !created || *v3 != 0 {
				t.Fatalf("re-Ensure after Remove: created=%v *v=%d", created, *v3)
			}
		})
	}
}

func TestStoreForEachOrder(t *testing.T) {
	as := testAS(t)
	r0, r1 := as.Regions()[0], as.Regions()[1]
	// Deliberately inserted out of order, spanning pages and regions.
	blocks := []memory.Block{
		r1.BlockAt(5), r0.BlockAt(700), r0.BlockAt(0), r0.BlockAt(255),
		r0.BlockAt(256), r1.BlockAt(0), r0.BlockAt(63), r0.BlockAt(1),
	}
	want := append([]memory.Block(nil), blocks...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

	for _, kind := range kinds() {
		t.Run(string(kind), func(t *testing.T) {
			s := New[int](as, kind)
			for i, b := range blocks {
				v, _ := s.Ensure(b)
				*v = i
			}
			var got []memory.Block
			s.ForEach(func(b memory.Block, v *int) {
				if *v != indexOf(blocks, b) {
					t.Fatalf("block %#x: value %d, want %d", uint64(b), *v, indexOf(blocks, b))
				}
				got = append(got, b)
			})
			if len(got) != len(want) {
				t.Fatalf("ForEach visited %d entries, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("ForEach order[%d] = %#x, want %#x", i, uint64(got[i]), uint64(want[i]))
				}
			}
		})
	}
}

func indexOf(blocks []memory.Block, b memory.Block) int {
	for i, x := range blocks {
		if x == b {
			return i
		}
	}
	return -1
}

// xorshift for deterministic pseudo-random ops.
type prng struct{ s uint64 }

func (r *prng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

// TestStoreDifferential drives identical random op sequences through the
// Paged backend and a plain map, asserting identical observable state.
func TestStoreDifferential(t *testing.T) {
	as := testAS(t)
	r0, r1 := as.Regions()[0], as.Regions()[1]
	pick := func(r *prng) memory.Block {
		if r.next()%4 == 0 {
			return r1.BlockAt(int64(r.next() % uint64(r1.NumBlocks())))
		}
		return r0.BlockAt(int64(r.next() % uint64(r0.NumBlocks())))
	}
	for seed := uint64(1); seed <= 20; seed++ {
		r := &prng{s: seed}
		s := NewPaged[uint64](as)
		ref := map[memory.Block]uint64{}
		for op := 0; op < 2000; op++ {
			b := pick(r)
			switch r.next() % 3 {
			case 0:
				v, created := s.Ensure(b)
				_, had := ref[b]
				if created == had {
					t.Fatalf("seed %d op %d: created=%v but ref had=%v", seed, op, created, had)
				}
				*v = r.next()
				ref[b] = *v
			case 1:
				s.Remove(b)
				delete(ref, b)
			case 2:
				v := s.Get(b)
				rv, had := ref[b]
				if (v != nil) != had || (v != nil && *v != rv) {
					t.Fatalf("seed %d op %d: Get mismatch", seed, op)
				}
			}
		}
		if s.Len() != len(ref) {
			t.Fatalf("seed %d: Len %d != ref %d", seed, s.Len(), len(ref))
		}
		seen := 0
		prev := memory.Block(0)
		s.ForEach(func(b memory.Block, v *uint64) {
			if seen > 0 && b <= prev {
				t.Fatalf("seed %d: ForEach not ascending", seed)
			}
			prev = b
			seen++
			if rv, had := ref[b]; !had || rv != *v {
				t.Fatalf("seed %d: ForEach value mismatch at %#x", seed, uint64(b))
			}
		})
		if seen != len(ref) {
			t.Fatalf("seed %d: ForEach visited %d, ref %d", seed, seen, len(ref))
		}
	}
}

func TestBitTable(t *testing.T) {
	as := testAS(t)
	r0, r1 := as.Regions()[0], as.Regions()[1]
	bt := NewBitTable(as)
	b1, b2, b3 := r0.BlockAt(0), r0.BlockAt(200), r1.BlockAt(7)
	if bt.Has(b1) || bt.Count() != 0 {
		t.Fatal("empty table reports membership")
	}
	if !bt.Set(b1) || bt.Set(b1) {
		t.Fatal("Set newly-set semantics wrong")
	}
	bt.Set(b2)
	bt.Set(b3)
	if bt.Count() != 3 || !bt.Has(b2) || !bt.Has(b3) {
		t.Fatalf("Count=%d", bt.Count())
	}
	var order []memory.Block
	bt.ForEach(func(b memory.Block) { order = append(order, b) })
	if len(order) != 3 || order[0] != b1 || order[1] != b2 || order[2] != b3 {
		t.Fatalf("ForEach order: %v", order)
	}
	if !bt.Clear(b2) || bt.Clear(b2) {
		t.Fatal("Clear was-set semantics wrong")
	}
	if bt.Count() != 2 || bt.Has(b2) {
		t.Fatal("Clear did not unmark")
	}
	bt.Reset()
	if bt.Count() != 0 || bt.Has(b1) || bt.Has(b3) {
		t.Fatal("Reset left bits behind")
	}
	// Clearing in never-touched territory must be a safe no-op.
	if bt.Clear(r0.BlockAt(1500)) {
		t.Fatal("Clear of untouched block reported set")
	}
}

func TestBitTableDifferential(t *testing.T) {
	as := testAS(t)
	r0 := as.Regions()[0]
	for seed := uint64(1); seed <= 10; seed++ {
		r := &prng{s: seed * 77}
		bt := NewBitTable(as)
		ref := map[memory.Block]bool{}
		for op := 0; op < 3000; op++ {
			b := r0.BlockAt(int64(r.next() % uint64(r0.NumBlocks())))
			switch r.next() % 3 {
			case 0:
				if bt.Set(b) == ref[b] {
					t.Fatalf("seed %d op %d: Set mismatch", seed, op)
				}
				ref[b] = true
			case 1:
				if bt.Clear(b) != ref[b] {
					t.Fatalf("seed %d op %d: Clear mismatch", seed, op)
				}
				delete(ref, b)
			case 2:
				if bt.Has(b) != ref[b] {
					t.Fatalf("seed %d op %d: Has mismatch", seed, op)
				}
			}
		}
		if bt.Count() != len(ref) {
			t.Fatalf("seed %d: Count %d != ref %d", seed, bt.Count(), len(ref))
		}
	}
}
