// Package blockstate provides dense, paged storage for per-cache-block
// protocol state.
//
// Every protocol-side structure in the simulator — home directory
// entries, Stache deferral bookkeeping, communication-schedule entries —
// is keyed by memory.Block. Blocks are dense integers within a region
// (AddressSpace.BlockIndex), so a paged array beats a hash table on both
// lookup cost and iteration order: pages are allocated on first touch,
// occupancy bitsets make scans proportional to live entries, and ForEach
// walks blocks in ascending order by construction.
//
// Two backends implement the same Store interface:
//
//   - Paged: the production backend. Per-region slices of fixed-size
//     pages holding inline values; slot pointers are stable for the
//     table's lifetime (pages never move).
//   - Hash: a retained map-based reference. It mirrors the pre-dense
//     implementation and exists so the chaos storage oracle
//     (internal/chaos) can run identical workloads against both backends
//     and demand identical protocol state at quiescence. ForEach sorts
//     keys, so its iteration order matches Paged exactly.
//
// Both backends guarantee deterministic ascending-block iteration; no
// caller needs a sort-at-call-site pattern.
package blockstate

import (
	"fmt"
	"math/bits"
	"sort"

	"presto/internal/memory"
)

// Kind selects a Store backend.
type Kind string

const (
	// Dense is the paged production backend (the default; an empty Kind
	// means Dense).
	Dense Kind = "dense"
	// MapRef is the retained map-based reference backend, consulted by
	// the storage differential oracle in internal/chaos.
	MapRef Kind = "mapref"
)

// Parse validates a backend name. An empty string parses to Dense,
// matching New.
func Parse(s string) (Kind, error) {
	switch Kind(s) {
	case "":
		return Dense, nil
	case Dense, MapRef:
		return Kind(s), nil
	}
	return "", fmt.Errorf("blockstate: unknown storage backend %q (want %q or %q)", s, Dense, MapRef)
}

// Store is per-block protocol state keyed by memory.Block. Values are
// addressed by pointer; pointers returned by Get/Ensure stay valid until
// Remove (Paged slots never move, Hash entries are heap-allocated).
type Store[T any] interface {
	// Get returns the value for b, or nil if absent.
	Get(b memory.Block) *T
	// Ensure returns the value for b, materializing a zero value if
	// absent; created reports whether this call materialized it.
	Ensure(b memory.Block) (v *T, created bool)
	// Remove drops b's value. Removing an absent block is a no-op.
	Remove(b memory.Block)
	// Len returns the number of live entries.
	Len() int
	// ForEach visits every live entry in ascending block order.
	ForEach(fn func(b memory.Block, v *T))
}

// New builds a Store of the given kind. An empty kind means Dense.
func New[T any](as *memory.AddressSpace, kind Kind) Store[T] {
	if kind == MapRef {
		return NewHash[T]()
	}
	return NewPaged[T](as)
}

// pageBits sizes a page at 256 slots: large enough to amortize the
// two-level indirection, small enough that sparsely-touched regions
// (arenas) cost memory proportional to use.
const pageBits = 8

const pageSlots = 1 << pageBits

const pageWords = pageSlots / 64

// page holds a fixed window of block indices. occ marks live slots; the
// slots array is inline so a hot page is one allocation and entries have
// no per-entry pointer.
type page[T any] struct {
	occ   [pageWords]uint64
	slots [pageSlots]T
}

// Paged is the dense production backend.
type Paged[T any] struct {
	as *memory.AddressSpace
	// pages[regionID][pageIdx]; nil pages are untouched.
	pages [][]*page[T]
	n     int
}

// NewPaged builds an empty dense table over the address space.
func NewPaged[T any](as *memory.AddressSpace) *Paged[T] {
	return &Paged[T]{as: as}
}

// locate resolves b to its page and slot, growing nothing.
func (p *Paged[T]) locate(b memory.Block) (pg *page[T], slot int) {
	rid := b.RegionID()
	if rid >= len(p.pages) {
		return nil, 0
	}
	idx := p.as.BlockIndex(b)
	pi := int(idx >> pageBits)
	region := p.pages[rid]
	if pi >= len(region) {
		return nil, 0
	}
	return region[pi], int(idx & (pageSlots - 1))
}

// Get returns the value for b, or nil if absent.
func (p *Paged[T]) Get(b memory.Block) *T {
	pg, slot := p.locate(b)
	if pg == nil || pg.occ[slot>>6]&(1<<uint(slot&63)) == 0 {
		return nil
	}
	return &pg.slots[slot]
}

// Ensure returns the value for b, materializing a zeroed slot if absent.
func (p *Paged[T]) Ensure(b memory.Block) (*T, bool) {
	// Fast path: the page already exists (steady state after warm-up).
	if pg, slot := p.locate(b); pg != nil {
		w, m := slot>>6, uint64(1)<<uint(slot&63)
		if pg.occ[w]&m != 0 {
			return &pg.slots[slot], false
		}
		pg.occ[w] |= m
		p.n++
		return &pg.slots[slot], true
	}
	return p.ensureSlow(b)
}

// ensureSlow grows the region and page tables for b's first touch.
func (p *Paged[T]) ensureSlow(b memory.Block) (*T, bool) {
	rid := b.RegionID()
	for rid >= len(p.pages) {
		p.pages = append(p.pages, nil)
	}
	idx := p.as.BlockIndex(b)
	pi := int(idx >> pageBits)
	region := p.pages[rid]
	for pi >= len(region) {
		region = append(region, nil)
	}
	pg := &page[T]{}
	region[pi] = pg
	p.pages[rid] = region
	slot := int(idx & (pageSlots - 1))
	pg.occ[slot>>6] |= uint64(1) << uint(slot&63)
	p.n++
	return &pg.slots[slot], true
}

// Remove drops b's value and zeroes its slot so a later Ensure sees a
// fresh zero value.
func (p *Paged[T]) Remove(b memory.Block) {
	pg, slot := p.locate(b)
	if pg == nil {
		return
	}
	w, m := slot>>6, uint64(1)<<uint(slot&63)
	if pg.occ[w]&m == 0 {
		return
	}
	pg.occ[w] &^= m
	var zero T
	pg.slots[slot] = zero
	p.n--
}

// Len returns the number of live entries.
func (p *Paged[T]) Len() int { return p.n }

// ForEach visits live entries in ascending block order: regions in ID
// order, pages in index order, occupancy bits low to high.
func (p *Paged[T]) ForEach(fn func(b memory.Block, v *T)) {
	regions := p.as.Regions()
	for rid, region := range p.pages {
		if region == nil {
			continue
		}
		r := regions[rid]
		for pi, pg := range region {
			if pg == nil {
				continue
			}
			base := int64(pi) << pageBits
			for w, word := range pg.occ {
				for word != 0 {
					bit := bits.TrailingZeros64(word)
					word &= word - 1
					slot := w<<6 + bit
					fn(r.BlockAt(base+int64(slot)), &pg.slots[slot])
				}
			}
		}
	}
}

// Hash is the retained map-based reference backend.
type Hash[T any] struct {
	m map[memory.Block]*T
}

// NewHash builds an empty map-backed reference table.
func NewHash[T any]() *Hash[T] {
	return &Hash[T]{m: make(map[memory.Block]*T)}
}

// Get returns the value for b, or nil if absent.
func (h *Hash[T]) Get(b memory.Block) *T { return h.m[b] }

// Ensure returns the value for b, materializing a zero value if absent.
func (h *Hash[T]) Ensure(b memory.Block) (*T, bool) {
	if v, ok := h.m[b]; ok {
		return v, false
	}
	v := new(T)
	h.m[b] = v
	return v, true
}

// Remove drops b's value.
func (h *Hash[T]) Remove(b memory.Block) { delete(h.m, b) }

// Len returns the number of live entries.
func (h *Hash[T]) Len() int { return len(h.m) }

// ForEach visits live entries in ascending block order. The map is
// unordered, so keys are collected and sorted — this backend trades
// speed for being an independent reference, and its iteration order must
// match Paged exactly for the differential oracle.
func (h *Hash[T]) ForEach(fn func(b memory.Block, v *T)) {
	keys := make([]memory.Block, 0, len(h.m))
	for b := range h.m {
		keys = append(keys, b)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, b := range keys {
		fn(b, h.m[b])
	}
}

// BitTable is a dense per-block bit set (one bit per block, paged per
// region). It replaces map[memory.Block]bool membership sets on protocol
// hot paths: Set/Clear/Has are word operations, Count is O(1).
type BitTable struct {
	as *memory.AddressSpace
	// words[regionID][wordIdx]; grown on demand.
	words [][]uint64
	n     int
}

// NewBitTable builds an empty bit table over the address space.
func NewBitTable(as *memory.AddressSpace) *BitTable {
	return &BitTable{as: as}
}

// Set marks b and reports whether it was newly set.
func (t *BitTable) Set(b memory.Block) bool {
	rid := b.RegionID()
	for rid >= len(t.words) {
		t.words = append(t.words, nil)
	}
	idx := t.as.BlockIndex(b)
	w := int(idx >> 6)
	region := t.words[rid]
	for w >= len(region) {
		region = append(region, 0)
	}
	t.words[rid] = region
	m := uint64(1) << uint(idx&63)
	if region[w]&m != 0 {
		return false
	}
	region[w] |= m
	t.n++
	return true
}

// Clear unmarks b and reports whether it was set.
func (t *BitTable) Clear(b memory.Block) bool {
	rid := b.RegionID()
	if rid >= len(t.words) {
		return false
	}
	idx := t.as.BlockIndex(b)
	w := int(idx >> 6)
	region := t.words[rid]
	if w >= len(region) {
		return false
	}
	m := uint64(1) << uint(idx&63)
	if region[w]&m == 0 {
		return false
	}
	region[w] &^= m
	t.n--
	return true
}

// Has reports whether b is set.
func (t *BitTable) Has(b memory.Block) bool {
	rid := b.RegionID()
	if rid >= len(t.words) {
		return false
	}
	idx := t.as.BlockIndex(b)
	w := int(idx >> 6)
	region := t.words[rid]
	return w < len(region) && region[w]&(1<<uint(idx&63)) != 0
}

// Count returns the number of set blocks.
func (t *BitTable) Count() int { return t.n }

// Reset clears every bit, keeping capacity.
func (t *BitTable) Reset() {
	if t.n == 0 {
		return
	}
	for _, region := range t.words {
		for i := range region {
			region[i] = 0
		}
	}
	t.n = 0
}

// ForEach visits set blocks in ascending order.
func (t *BitTable) ForEach(fn func(b memory.Block)) {
	regions := t.as.Regions()
	for rid, region := range t.words {
		if len(region) == 0 {
			continue
		}
		r := regions[rid]
		for w, word := range region {
			for word != 0 {
				bit := bits.TrailingZeros64(word)
				word &= word - 1
				fn(r.BlockAt(int64(w<<6 + bit)))
			}
		}
	}
}
