package trace

import (
	"bufio"
	"encoding/json"
	"io"
)

// jsonEvent is the wire form of one JSONL trace line. Field order is
// fixed by the struct, so output is deterministic.
type jsonEvent struct {
	AtNS  int64  `json:"at_ns"`
	Node  int    `json:"node"`
	Proc  string `json:"proc"`
	Kind  string `json:"kind"`
	Phase int    `json:"phase"`
	Iter  int    `json:"iter,omitempty"`
	Flow  int64  `json:"flow,omitempty"`
	What  string `json:"what"`
}

// JSONL streams every event as one JSON object per line — the
// machine-readable firehose backend (pipe into jq, diff across runs).
type JSONL struct {
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONL returns a sink writing JSON lines to w. Call Close to flush.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	return &JSONL{w: bw, enc: json.NewEncoder(bw)}
}

// Record implements Sink. The first write error sticks and suppresses
// further output; Close reports it.
func (j *JSONL) Record(e Event) {
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(jsonEvent{
		AtNS:  int64(e.At),
		Node:  e.Node,
		Proc:  e.Proc.String(),
		Kind:  e.Kind.String(),
		Phase: e.Phase,
		Iter:  e.Iter,
		Flow:  e.Flow,
		What:  e.What,
	})
}

// Err reports the first write error encountered, letting callers detect
// a failing stream before Close (e.g. to abort a long run early instead
// of silently producing a truncated trace).
func (j *JSONL) Err() error { return j.err }

// Close flushes buffered lines and returns the first error encountered.
func (j *JSONL) Close() error {
	if j.err != nil {
		return j.err
	}
	j.err = j.w.Flush()
	return j.err
}
