package trace

import (
	"strings"
	"testing"

	"presto/internal/sim"
)

func TestRingRetainsLastEvents(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Add(sim.Time(i), i%3, Send, "event %d", i)
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d", r.Total())
	}
	ev := r.Events()
	if len(ev) != 4 {
		t.Fatalf("retained = %d", len(ev))
	}
	// Oldest first, covering events 6..9.
	for i, e := range ev {
		want := 6 + i
		if !strings.Contains(e.What, "event") || e.At != sim.Time(want) {
			t.Fatalf("event %d = %+v", i, e)
		}
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing(8)
	r.Add(1, 0, Fault, "f")
	r.Add(2, 1, Recv, "r")
	ev := r.Events()
	if len(ev) != 2 || ev[0].Kind != Fault || ev[1].Kind != Recv {
		t.Fatalf("events = %+v", ev)
	}
}

func TestDumpFormat(t *testing.T) {
	r := NewRing(8)
	r.Add(5*sim.Microsecond, 2, Send, "GetRO(%#x)", 0x40)
	out := r.Dump()
	for _, want := range []string{"n2", "send", "GetRO(0x40)", "5.000us"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{Send: "send", Recv: "recv", Fault: "fault", Note: "note"} {
		if k.String() != want {
			t.Fatalf("%d = %q", k, k.String())
		}
	}
}

func TestDefaultCapacity(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 300; i++ {
		r.Add(sim.Time(i), 0, Note, "x")
	}
	if len(r.Events()) != 256 {
		t.Fatalf("default cap = %d", len(r.Events()))
	}
}
