// Package trace records structured protocol events. The runtime attaches
// a Sink to every node of a machine; events flow to one or more pluggable
// backends: a bounded in-memory Ring (debugging and test assertions), a
// JSONL stream writer, and a Chrome trace_event exporter (chrome://tracing
// / Perfetto) that renders each simulated node's compute and protocol
// processor as a timeline track with phase spans and message-flow arrows.
//
// Virtual time is deterministic, so identical configurations produce
// byte-identical trace output from the stream backends.
package trace

import (
	"fmt"
	"strings"

	"presto/internal/sim"
)

// Kind classifies a traced event.
type Kind uint8

const (
	// Send is a message injected into the interconnect.
	Send Kind = iota
	// Recv is a message dispatched by a protocol processor.
	Recv
	// Fault is an access fault vectored on a compute processor.
	Fault
	// Note is a free-form protocol annotation.
	Note
	// PhaseBegin marks a compute processor entering a parallel phase.
	PhaseBegin
	// PhaseEnd marks a compute processor leaving a parallel phase.
	PhaseEnd
)

func (k Kind) String() string {
	switch k {
	case Send:
		return "send"
	case Recv:
		return "recv"
	case Fault:
		return "fault"
	case Note:
		return "note"
	case PhaseBegin:
		return "phase-begin"
	case PhaseEnd:
		return "phase-end"
	}
	return "?"
}

// ProcID identifies which of a node's two processors emitted an event.
type ProcID uint8

const (
	// ProcCompute is the node's compute processor.
	ProcCompute ProcID = iota
	// ProcProto is the node's protocol processor.
	ProcProto
)

func (p ProcID) String() string {
	if p == ProcProto {
		return "protocol"
	}
	return "compute"
}

// Event is one traced protocol event.
type Event struct {
	At   sim.Time
	Node int
	Proc ProcID
	Kind Kind
	// Phase is the compute processor's current parallel phase (-1 when
	// outside any phase or unknown).
	Phase int
	// Iter is the phase's iteration index (0-based; meaningful only when
	// Phase >= 0).
	Iter int
	// Flow links a Send event to the Recv event that dispatches the same
	// message (0 when unlinked).
	Flow int64
	What string
}

func (e Event) String() string {
	return fmt.Sprintf("%12v n%-2d %-5s %s", e.At, e.Node, e.Kind, e.What)
}

// Sink receives traced events. Record must not retain e.What aliases
// beyond the call unless the backend copies (Event is value-copied, so
// this holds automatically).
type Sink interface {
	Record(e Event)
}

// Multi fans events out to several sinks. Nil sinks are skipped; with
// zero or one live sink the sink itself (or nil) is returned.
func Multi(sinks ...Sink) Sink {
	live := make(multiSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

type multiSink []Sink

func (m multiSink) Record(e Event) {
	for _, s := range m {
		s.Record(e)
	}
}

// Ring is a bounded event log shared by all nodes of one machine: the
// cheapest backend, retaining the most recent events for post-mortem
// dumps and invariant-violation context.
type Ring struct {
	buf   []Event
	next  int
	total int64
}

// NewRing returns a ring holding the last cap events (cap <= 0 selects
// the default capacity of 256).
func NewRing(cap int) *Ring {
	if cap <= 0 {
		cap = 256
	}
	return &Ring{buf: make([]Event, 0, cap)}
}

// Record implements Sink.
func (r *Ring) Record(e Event) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.total++
}

// Add appends a formatted event (convenience wrapper over Record with no
// phase/flow attribution).
func (r *Ring) Add(at sim.Time, node int, kind Kind, format string, args ...any) {
	r.Record(Event{At: at, Node: node, Kind: kind, Phase: -1, What: fmt.Sprintf(format, args...)})
}

// Total reports how many events have been recorded overall (including
// evicted ones).
func (r *Ring) Total() int64 { return r.total }

// Reset empties the ring for reuse across runs, keeping its capacity.
func (r *Ring) Reset() {
	r.buf = r.buf[:0]
	r.next = 0
	r.total = 0
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	if len(r.buf) < cap(r.buf) {
		return append([]Event(nil), r.buf...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// EventsFor returns the retained events involving any of the given nodes,
// oldest first, capped to the most recent max (max <= 0 means all).
func (r *Ring) EventsFor(nodes []int, max int) []Event {
	want := func(id int) bool {
		for _, n := range nodes {
			if n == id {
				return true
			}
		}
		return false
	}
	var out []Event
	for _, e := range r.Events() {
		if want(e.Node) {
			out = append(out, e)
		}
	}
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// Dump renders the retained events as one string.
func (r *Ring) Dump() string {
	var b strings.Builder
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
