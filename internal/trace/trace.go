// Package trace records protocol events into a bounded ring buffer for
// debugging and for assertions in tests. Tracing is off by default; the
// runtime attaches a Ring to every node when the machine is configured
// with Trace > 0.
package trace

import (
	"fmt"
	"strings"

	"presto/internal/sim"
)

// Kind classifies a traced event.
type Kind uint8

const (
	// Send is a message injected into the interconnect.
	Send Kind = iota
	// Recv is a message dispatched by a protocol processor.
	Recv
	// Fault is an access fault vectored on a compute processor.
	Fault
	// Note is a free-form protocol annotation.
	Note
)

func (k Kind) String() string {
	switch k {
	case Send:
		return "send"
	case Recv:
		return "recv"
	case Fault:
		return "fault"
	case Note:
		return "note"
	}
	return "?"
}

// Event is one traced protocol event.
type Event struct {
	At   sim.Time
	Node int
	Kind Kind
	What string
}

func (e Event) String() string {
	return fmt.Sprintf("%12v n%-2d %-5s %s", e.At, e.Node, e.Kind, e.What)
}

// Ring is a bounded event log shared by all nodes of one machine.
type Ring struct {
	buf   []Event
	next  int
	total int64
}

// NewRing returns a ring holding the last cap events.
func NewRing(cap int) *Ring {
	if cap <= 0 {
		cap = 256
	}
	return &Ring{buf: make([]Event, 0, cap)}
}

// Add appends an event, evicting the oldest when full.
func (r *Ring) Add(at sim.Time, node int, kind Kind, format string, args ...any) {
	e := Event{At: at, Node: node, Kind: kind, What: fmt.Sprintf(format, args...)}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.total++
}

// Total reports how many events have been recorded overall.
func (r *Ring) Total() int64 { return r.total }

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	if len(r.buf) < cap(r.buf) {
		return append([]Event(nil), r.buf...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Dump renders the retained events as one string.
func (r *Ring) Dump() string {
	var b strings.Builder
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
