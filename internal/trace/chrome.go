package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome buffers events and, on Close, writes them in the Chrome
// trace_event format (the JSON object form, {"traceEvents": [...]}),
// loadable in chrome://tracing and Perfetto. Each simulated node becomes
// a process with two threads — "compute" (tid 0) and "protocol" (tid 1);
// parallel phases render as duration spans on the compute track, faults
// as instants, and every Send/Recv pair as a flow arrow between tracks.
//
// Timestamps are virtual microseconds (ts = virtual ns / 1000), so track
// alignment reflects simulated, not wall-clock, time. Output is
// deterministic for a deterministic simulation.
type Chrome struct {
	events []Event
	path   []PathSeg
}

// NewChrome returns an empty Chrome trace buffer.
func NewChrome() *Chrome { return &Chrome{} }

// Record implements Sink.
func (c *Chrome) Record(e Event) { c.events = append(c.events, e) }

// Len reports the number of buffered events.
func (c *Chrome) Len() int { return len(c.events) }

// PathSeg is one critical-path segment for the overlay track: a span of
// virtual time attributed to a processor ("run") or to the mechanism
// that woke it ("deliver", "barrier", "timer").
type PathSeg struct {
	Name  string // processor name ("compute3", "proto1", "kernel")
	Kind  string // "run", "deliver", "barrier" or "timer"
	Start int64  // virtual ns
	End   int64  // virtual ns
}

// critPid is the synthetic process id of the critical-path overlay
// track (far above any real node id).
const critPid = 1 << 20

// SetCriticalPath installs the critical-path overlay: Write renders the
// segments as a highlighted lane (its own process track) with flow
// arrows chaining consecutive segments, so the path reads as one
// causal chain across the trace.
func (c *Chrome) SetCriticalPath(segs []PathSeg) {
	c.path = append(c.path[:0], segs...)
}

// chromeEvent is one trace_event entry. Fields follow the trace-event
// format spec; omitempty keeps instants compact. Dur is a pointer so a
// zero-length completed event still serializes "dur":0.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   jsonMicros     `json:"ts"`
	Dur  *jsonMicros    `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`  // instant scope
	ID   string         `json:"id,omitempty"` // flow binding id
	BP   string         `json:"bp,omitempty"` // flow binding point
	Args map[string]any `json:"args,omitempty"`
}

// jsonMicros renders virtual nanoseconds as microseconds with fixed
// 3-decimal precision (exact, since the source is integer nanoseconds).
type jsonMicros int64

func (m jsonMicros) MarshalJSON() ([]byte, error) {
	ns := int64(m)
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	return []byte(fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)), nil
}

// Write renders the buffered events. The required tracks (process and
// thread metadata) are emitted for every node that appears in the buffer.
func (c *Chrome) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := func(v chromeEvent) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
		return nil
	}
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(v chromeEvent) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		return enc(v)
	}

	nodes := map[int]bool{}
	for _, e := range c.events {
		nodes[e.Node] = true
	}
	ids := make([]int, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if err := emit(chromeEvent{Name: "process_name", Ph: "M", Pid: id,
			Args: map[string]any{"name": fmt.Sprintf("node %d", id)}}); err != nil {
			return err
		}
		for tid, tn := range []string{"compute", "protocol"} {
			if err := emit(chromeEvent{Name: "thread_name", Ph: "M", Pid: id, Tid: tid,
				Args: map[string]any{"name": tn}}); err != nil {
				return err
			}
		}
	}

	zero := jsonMicros(0)
	for _, e := range c.events {
		tid := 0
		if e.Proc == ProcProto {
			tid = 1
		}
		base := chromeEvent{Pid: e.Node, Tid: tid, Ts: jsonMicros(e.At)}
		var out []chromeEvent
		switch e.Kind {
		case PhaseBegin:
			b := base
			b.Name, b.Cat, b.Ph = e.What, "phase", "B"
			b.Args = map[string]any{"phase": e.Phase, "iter": e.Iter}
			out = append(out, b)
		case PhaseEnd:
			b := base
			b.Name, b.Cat, b.Ph = e.What, "phase", "E"
			out = append(out, b)
		case Fault:
			b := base
			b.Name, b.Cat, b.Ph, b.S = "fault", "fault", "i", "t"
			b.Args = map[string]any{"what": e.What}
			out = append(out, b)
		case Send:
			b := base
			b.Name, b.Cat, b.Ph, b.Dur = e.What, "msg", "X", &zero
			out = append(out, b)
			if e.Flow != 0 {
				f := base
				f.Name, f.Cat, f.Ph = "msg", "msg", "s"
				f.ID = fmt.Sprintf("%d", e.Flow)
				out = append(out, f)
			}
		case Recv:
			b := base
			b.Name, b.Cat, b.Ph, b.Dur = e.What, "msg", "X", &zero
			out = append(out, b)
			if e.Flow != 0 {
				f := base
				f.Name, f.Cat, f.Ph, f.BP = "msg", "msg", "f", "e"
				f.ID = fmt.Sprintf("%d", e.Flow)
				out = append(out, f)
			}
		default: // Note and future kinds: instants
			b := base
			b.Name, b.Cat, b.Ph, b.S = e.Kind.String(), "note", "i", "t"
			b.Args = map[string]any{"what": e.What}
			out = append(out, b)
		}
		for _, v := range out {
			if err := emit(v); err != nil {
				return err
			}
		}
	}
	if len(c.path) > 0 {
		if err := emit(chromeEvent{Name: "process_name", Ph: "M", Pid: critPid,
			Args: map[string]any{"name": "critical path"}}); err != nil {
			return err
		}
		if err := emit(chromeEvent{Name: "thread_name", Ph: "M", Pid: critPid, Tid: 0,
			Args: map[string]any{"name": "segments"}}); err != nil {
			return err
		}
		for i, s := range c.path {
			dur := jsonMicros(s.End - s.Start)
			b := chromeEvent{
				Name: fmt.Sprintf("%s %s", s.Name, s.Kind), Cat: "critpath", Ph: "X",
				Pid: critPid, Tid: 0, Ts: jsonMicros(s.Start), Dur: &dur,
				Args: map[string]any{"proc": s.Name, "kind": s.Kind},
			}
			if err := emit(b); err != nil {
				return err
			}
			// Flow arrows chain consecutive segments into one causal line.
			if i+1 < len(c.path) {
				id := fmt.Sprintf("cp%d", i)
				f := chromeEvent{Name: "critpath", Cat: "critpath", Ph: "s",
					Pid: critPid, Tid: 0, Ts: jsonMicros(s.End), ID: id}
				if err := emit(f); err != nil {
					return err
				}
				nxt := c.path[i+1]
				g := chromeEvent{Name: "critpath", Cat: "critpath", Ph: "f", BP: "e",
					Pid: critPid, Tid: 0, Ts: jsonMicros(nxt.Start), ID: id}
				if err := emit(g); err != nil {
					return err
				}
			}
		}
	}
	if _, err := bw.WriteString("\n],\"displayTimeUnit\":\"ns\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
