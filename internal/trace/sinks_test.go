package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"presto/internal/sim"
)

func TestRingExactWrapBoundary(t *testing.T) {
	// Filling a ring to exactly its capacity must retain every event in
	// order; one more evicts exactly the oldest.
	r := NewRing(4)
	for i := 0; i < 4; i++ {
		r.Add(sim.Time(i), 0, Note, "e%d", i)
	}
	ev := r.Events()
	if len(ev) != 4 {
		t.Fatalf("retained = %d", len(ev))
	}
	for i, e := range ev {
		if e.At != sim.Time(i) {
			t.Fatalf("event %d at %v", i, e.At)
		}
	}
	r.Add(4, 0, Note, "e4")
	ev = r.Events()
	if len(ev) != 4 || ev[0].At != 1 || ev[3].At != 4 {
		t.Fatalf("after wrap: %+v", ev)
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d", r.Total())
	}
}

func TestRingReset(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 6; i++ {
		r.Add(sim.Time(i), 0, Note, "x")
	}
	r.Reset()
	if r.Total() != 0 || len(r.Events()) != 0 {
		t.Fatalf("after reset: total=%d events=%d", r.Total(), len(r.Events()))
	}
	// The ring must be fully reusable: oldest-first order again.
	r.Add(10, 1, Fault, "f")
	r.Add(11, 2, Send, "s")
	ev := r.Events()
	if len(ev) != 2 || ev[0].At != 10 || ev[1].At != 11 {
		t.Fatalf("after reuse: %+v", ev)
	}
}

func TestRingEventsFor(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 12; i++ {
		r.Add(sim.Time(i), i%4, Note, "e%d", i)
	}
	got := r.EventsFor([]int{1, 3}, 0)
	if len(got) != 6 {
		t.Fatalf("filtered = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].At < got[i-1].At {
			t.Fatal("not oldest-first")
		}
	}
	capped := r.EventsFor([]int{1, 3}, 2)
	if len(capped) != 2 || capped[1].At != 11 {
		t.Fatalf("capped = %+v", capped)
	}
}

func TestMultiSkipsNils(t *testing.T) {
	a := NewRing(4)
	b := NewRing(4)
	if Multi() != nil || Multi(nil) != nil {
		t.Fatal("empty Multi must be nil")
	}
	if got := Multi(nil, a); got != Sink(a) {
		t.Fatal("single live sink must be returned unwrapped")
	}
	m := Multi(a, nil, b)
	m.Record(Event{At: 1, Node: 0, Kind: Send})
	if a.Total() != 1 || b.Total() != 1 {
		t.Fatalf("tee totals = %d, %d", a.Total(), b.Total())
	}
}

func TestJSONLOutput(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Record(Event{At: 1500, Node: 2, Proc: ProcProto, Kind: Send, Phase: 3, Iter: 1, Flow: 7, What: "GetRO -> n0"})
	j.Record(Event{At: 2500, Node: 0, Proc: ProcCompute, Kind: Fault, Phase: -1, What: "read 0x40"})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d:\n%s", len(lines), buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	for k, want := range map[string]any{
		"at_ns": 1500.0, "node": 2.0, "proc": "protocol", "kind": "send",
		"phase": 3.0, "iter": 1.0, "flow": 7.0, "what": "GetRO -> n0",
	} {
		if first[k] != want {
			t.Fatalf("line 1 %s = %v, want %v", k, first[k], want)
		}
	}
}

func TestJSONLDeterministic(t *testing.T) {
	run := func() string {
		var buf bytes.Buffer
		j := NewJSONL(&buf)
		for i := 0; i < 50; i++ {
			j.Record(Event{At: sim.Time(i * 10), Node: i % 3, Kind: Kind(i % 3), Phase: i % 2, What: "w"})
		}
		j.Close()
		return buf.String()
	}
	if run() != run() {
		t.Fatal("identical event streams rendered differently")
	}
}

func TestChromeOutput(t *testing.T) {
	c := NewChrome()
	c.Record(Event{At: 1000, Node: 0, Proc: ProcCompute, Kind: PhaseBegin, Phase: 2, Iter: 1, What: "forces"})
	c.Record(Event{At: 1500, Node: 0, Proc: ProcCompute, Kind: Fault, Phase: 2, What: "read 0x40"})
	c.Record(Event{At: 2000, Node: 0, Proc: ProcCompute, Kind: Send, Phase: 2, Flow: 9, What: "GetRO -> n1"})
	c.Record(Event{At: 3500, Node: 1, Proc: ProcProto, Kind: Recv, Phase: -1, Flow: 9, What: "GetRO"})
	c.Record(Event{At: 9000, Node: 0, Proc: ProcCompute, Kind: PhaseEnd, Phase: 2, Iter: 1, What: "forces"})
	if c.Len() != 5 {
		t.Fatalf("len = %d", c.Len())
	}
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	// Metadata for both nodes: 2 * (process_name + 2 thread_name).
	meta := 0
	phases := map[string]int{}
	flows := map[string]int{}
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "M":
			meta++
		case "B", "E":
			phases[e["ph"].(string)]++
			if e["name"] != "forces" {
				t.Fatalf("phase span named %v", e["name"])
			}
		case "s", "f":
			flows[e["ph"].(string)]++
			if e["id"] != "9" {
				t.Fatalf("flow id = %v", e["id"])
			}
		}
	}
	if meta != 6 {
		t.Fatalf("metadata events = %d", meta)
	}
	if phases["B"] != 1 || phases["E"] != 1 {
		t.Fatalf("phase spans = %v", phases)
	}
	if flows["s"] != 1 || flows["f"] != 1 {
		t.Fatalf("flow events = %v", flows)
	}
	// Timestamps are microseconds with exact 3-decimal nanosecond
	// precision: 1500ns -> 1.500.
	if !strings.Contains(buf.String(), `"ts":1.500`) {
		t.Fatalf("expected exact microsecond rendering:\n%s", buf.String())
	}
}

func TestChromeDeterministic(t *testing.T) {
	build := func() *Chrome {
		c := NewChrome()
		for i := 0; i < 40; i++ {
			c.Record(Event{At: sim.Time(i * 7), Node: i % 3, Proc: ProcID(i % 2),
				Kind: Kind(i % 6), Phase: i % 4, Flow: int64(i), What: "w"})
		}
		return c
	}
	var b1, b2 bytes.Buffer
	if err := build().Write(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().Write(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("identical event streams rendered differently")
	}
}
