package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"presto/internal/sim"
)

// failWriter fails every write after the first n bytes.
type failWriter struct {
	n       int
	written int
}

var errDisk = errors.New("disk full")

func (f *failWriter) Write(p []byte) (int, error) {
	if f.written+len(p) > f.n {
		ok := f.n - f.written
		if ok < 0 {
			ok = 0
		}
		f.written += ok
		return ok, errDisk
	}
	f.written += len(p)
	return len(p), nil
}

// TestJSONLSurfacesWriteError checks that a failing writer is not
// silently swallowed: the sticky error is visible via Err during the
// run and returned by Close.
func TestJSONLSurfacesWriteError(t *testing.T) {
	j := NewJSONL(&failWriter{n: 16})
	// Enough events to overflow the 16-byte budget and the bufio buffer.
	e := Event{At: 1, Node: 0, Kind: Send, What: strings.Repeat("x", 2048)}
	for i := 0; i < 8 && j.Err() == nil; i++ {
		j.Record(e)
	}
	if j.Err() == nil {
		t.Fatal("Err() did not surface the write failure")
	}
	if err := j.Close(); !errors.Is(err, errDisk) {
		t.Fatalf("Close returned %v, want the underlying write error", err)
	}
}

// TestJSONLSurfacesFlushError checks the flush-at-Close path: writes
// that fit the buffer fail only when Close flushes.
func TestJSONLSurfacesFlushError(t *testing.T) {
	j := NewJSONL(&failWriter{n: 4})
	j.Record(Event{At: 1, Node: 0, Kind: Send, What: "small"})
	if err := j.Close(); !errors.Is(err, errDisk) {
		t.Fatalf("Close returned %v, want the underlying flush error", err)
	}
}

// TestChromeSurfacesWriteError checks Chrome.Write propagates writer
// failures instead of producing a silently truncated trace.
func TestChromeSurfacesWriteError(t *testing.T) {
	c := NewChrome()
	for i := 0; i < 64; i++ {
		c.Record(Event{At: sim.Time(i), Node: i % 4, Kind: Fault, What: "block"})
	}
	if err := c.Write(&failWriter{n: 64}); !errors.Is(err, errDisk) {
		t.Fatalf("Write returned %v, want the underlying write error", err)
	}
}

// TestChromeCriticalPathOverlay checks the overlay track renders: a
// dedicated process with one span per segment and flow arrows chaining
// them.
func TestChromeCriticalPathOverlay(t *testing.T) {
	c := NewChrome()
	c.Record(Event{At: 10, Node: 0, Kind: Fault, What: "block"})
	c.SetCriticalPath([]PathSeg{
		{Name: "compute0", Kind: "run", Start: 0, End: 100},
		{Name: "compute0", Kind: "deliver", Start: 100, End: 150},
		{Name: "compute1", Kind: "run", Start: 150, End: 170},
	})
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"critical path"`, // overlay process name
		`"compute0 run"`,  // span names
		`"compute0 deliver"`,
		`"compute1 run"`,
		`"ph":"s"`, `"ph":"f"`, // flow arrows
		`"id":"cp0"`, `"id":"cp1"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("overlay output missing %s", want)
		}
	}
}
