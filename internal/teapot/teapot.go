// Package teapot is a miniature protocol model checker in the spirit of
// Teapot, the domain-specific language the authors used to develop the
// predictive protocol ("Teapot: Language Support for Writing Memory
// Coherence Protocols", paper reference [3]; Teapot specifications were
// verified with an explicit-state model checker).
//
// A Model describes a coherence protocol abstractly for a single cache
// block: directory state at the home, per-cache tags, an unordered
// network (the CM-5 did not guarantee point-to-point ordering between
// different-size messages), and a data version number used to detect
// stale reads. The checker enumerates every reachable state by
// breadth-first search over request issuance and message delivery and
// verifies safety invariants in quiescent states plus deadlock freedom
// everywhere.
//
// Two models ship with the package: the full Stache model with the
// cache-side deferral rules the production protocol uses (verified
// clean), and a naive variant without them, which the checker correctly
// convicts — the reason those rules exist.
package teapot

import (
	"fmt"
	"sort"
	"strings"
)

// Tag is a cache's access-control state in the abstract model.
type Tag uint8

// Tags.
const (
	Invalid Tag = iota
	ReadOnly
	ReadWrite
)

func (t Tag) String() string {
	return [...]string{"I", "RO", "RW"}[t]
}

// DirState is the home directory state.
type DirState uint8

// Directory states.
const (
	DirHome DirState = iota
	DirRemoteExcl
	DirAwaitAcks
	DirAwaitWB
)

func (s DirState) String() string {
	return [...]string{"Home", "RemoteExcl", "AwaitAcks", "AwaitWB"}[s]
}

// MsgKind enumerates protocol messages for one block.
type MsgKind uint8

// Message kinds.
const (
	GetRO MsgKind = iota
	GetRW
	DataRO
	DataRW
	Inval
	InvalAck
	RecallRO
	RecallRW
	WriteBackRO // downgraded
	WriteBackRW // invalidated
)

var msgNames = [...]string{
	"GetRO", "GetRW", "DataRO", "DataRW", "Inval", "InvalAck",
	"RecallRO", "RecallRW", "WriteBackRO", "WriteBackRW",
}

func (k MsgKind) String() string { return msgNames[k] }

// Msg is one in-flight message. Src/Dst are cache indices; the home is a
// separate party addressed with home = -1.
type Msg struct {
	Kind MsgKind
	Src  int // sending cache, or -1 for home
	Dst  int // receiving cache, or -1 for home
	Ver  int // data version carried (Data*/WriteBack*)
}

// pend is a queued request at the home.
type pend struct {
	Req   int
	Write bool
}

// State is one global protocol state for the single modeled block.
type State struct {
	// Directory at home.
	Dir      DirState
	Sharers  uint8 // bitmask over caches
	Owner    int8  // exclusive owner or -1
	AcksLeft int8
	Grantee  int8
	Pending  []pend

	// HomeTag is the home node's own access tag; HomeVer the version its
	// copy holds.
	HomeTag Tag
	HomeVer int8

	// Per-cache state.
	Tags     []Tag
	Vers     []int8 // version each RO/RW copy holds
	Waiting  []bool // request outstanding
	WaitingW []bool // outstanding request is a write
	// Deferral state (the production protocol's race resolutions).
	DefInval  []bool
	DefRecall []int8 // 0 none, 1 RO, 2 RW

	// Writes remaining per cache (bounds the state space).
	Budget []int8

	// LatestVer is the newest version ever written.
	LatestVer int8

	// Net is the unordered network (multiset of messages).
	Net []Msg
}

// clone deep-copies the state.
func (s *State) clone() *State {
	c := *s
	c.Pending = append([]pend(nil), s.Pending...)
	c.Tags = append([]Tag(nil), s.Tags...)
	c.Vers = append([]int8(nil), s.Vers...)
	c.Waiting = append([]bool(nil), s.Waiting...)
	c.WaitingW = append([]bool(nil), s.WaitingW...)
	c.DefInval = append([]bool(nil), s.DefInval...)
	c.DefRecall = append([]int8(nil), s.DefRecall...)
	c.Budget = append([]int8(nil), s.Budget...)
	c.Net = append([]Msg(nil), s.Net...)
	return &c
}

// key canonicalizes the state for the visited set. The network multiset
// is sorted so message ordering does not split states.
func (s *State) key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|%d|%d|%d|%d|%v|%d|%d|", s.Dir, s.Sharers, s.Owner, s.AcksLeft, s.Grantee, s.Pending, s.HomeTag, s.HomeVer)
	fmt.Fprintf(&b, "%v|%v|%v|%v|%v|%v|%v|%d|", s.Tags, s.Vers, s.Waiting, s.WaitingW, s.DefInval, s.DefRecall, s.Budget, s.LatestVer)
	net := append([]Msg(nil), s.Net...)
	sort.Slice(net, func(i, j int) bool {
		a, c := net[i], net[j]
		if a.Kind != c.Kind {
			return a.Kind < c.Kind
		}
		if a.Src != c.Src {
			return a.Src < c.Src
		}
		if a.Dst != c.Dst {
			return a.Dst < c.Dst
		}
		return a.Ver < c.Ver
	})
	fmt.Fprintf(&b, "%v", net)
	return b.String()
}

// quiescent reports no in-flight traffic, no transients and no waiters.
func (s *State) quiescent() bool {
	if len(s.Net) > 0 || len(s.Pending) > 0 {
		return false
	}
	if s.Dir == DirAwaitAcks || s.Dir == DirAwaitWB {
		return false
	}
	for i := range s.Tags {
		if s.Waiting[i] {
			return false
		}
	}
	return true
}

// Model selects the protocol variant to check.
type Model struct {
	// Caches is the number of remote caches (the home is separate).
	Caches int
	// WritesPerCache bounds each cache's write requests.
	WritesPerCache int
	// ReadsAreUnbounded lets caches re-read after invalidation; bounded
	// implicitly by the version/budget space.
	// Deferrals enables the production race resolutions (deferred
	// invalidations/recalls). Without them the unordered network breaks
	// the naive protocol, which the checker detects.
	Deferrals bool
}

// Violation describes a safety failure with the offending state.
type Violation struct {
	Msg   string
	State string
}

func (v Violation) String() string { return v.Msg + "\n  in state " + v.State }

// Result summarizes a check.
type Result struct {
	States     int
	Quiescent  int
	Violations []Violation
}

// Check explores all reachable states.
func (m Model) Check(maxStates int) Result {
	if m.Caches <= 0 {
		m.Caches = 2
	}
	if m.WritesPerCache <= 0 {
		m.WritesPerCache = 1
	}
	init := &State{
		Dir: DirHome, Owner: -1, Grantee: -1,
		HomeTag: ReadWrite,
		Tags:    make([]Tag, m.Caches),
		Vers:    make([]int8, m.Caches),
		Waiting: make([]bool, m.Caches), WaitingW: make([]bool, m.Caches),
		DefInval: make([]bool, m.Caches), DefRecall: make([]int8, m.Caches),
		Budget: make([]int8, m.Caches),
	}
	for i := range init.Budget {
		init.Budget[i] = int8(m.WritesPerCache)
	}

	seen := map[string]bool{init.key(): true}
	queue := []*State{init}
	res := Result{}
	push := func(s *State) {
		k := s.key()
		if !seen[k] {
			seen[k] = true
			queue = append(queue, s)
		}
	}

	for len(queue) > 0 && res.States < maxStates && len(res.Violations) == 0 {
		s := queue[0]
		queue = queue[1:]
		res.States++

		if s.quiescent() {
			res.Quiescent++
			if vs := m.checkInvariants(s); len(vs) > 0 {
				res.Violations = append(res.Violations, vs...)
				break
			}
		}

		succ := m.successors(s)
		if len(succ) == 0 && !s.quiescent() {
			res.Violations = append(res.Violations, Violation{
				Msg:   "deadlock: non-quiescent state with no successors",
				State: s.key(),
			})
			break
		}
		for _, n := range succ {
			push(n)
		}
	}
	return res
}

// checkInvariants validates a quiescent state.
func (m Model) checkInvariants(s *State) []Violation {
	var out []Violation
	bad := func(format string, args ...any) {
		out = append(out, Violation{Msg: fmt.Sprintf(format, args...), State: s.key()})
	}
	writers := 0
	if s.HomeTag == ReadWrite {
		writers++
	}
	for i, t := range s.Tags {
		if t == ReadWrite {
			writers++
			if s.Dir != DirRemoteExcl || int(s.Owner) != i {
				bad("cache %d writable but directory says %v owner %d", i, s.Dir, s.Owner)
			}
		}
		if t == ReadOnly {
			if s.Vers[i] != s.LatestVer {
				bad("cache %d holds stale version %d (latest %d)", i, s.Vers[i], s.LatestVer)
			}
			if s.Sharers&(1<<uint(i)) == 0 {
				bad("cache %d readable but not in sharer set", i)
			}
		}
		if t == Invalid && s.Sharers&(1<<uint(i)) != 0 && s.Dir == DirHome {
			bad("cache %d invalid but listed as sharer", i)
		}
	}
	if writers > 1 {
		bad("%d simultaneous writers", writers)
	}
	if s.Dir == DirHome && s.HomeTag == Invalid {
		bad("home invalid in DirHome")
	}
	if s.Dir == DirHome && s.HomeVer != s.LatestVer && s.HomeTag != Invalid {
		bad("home holds stale version %d (latest %d)", s.HomeVer, s.LatestVer)
	}
	return out
}
