package teapot

// successors enumerates every next state: spontaneous request issuance,
// local writes, and delivery of each in-flight message (the network is
// unordered, so every message is a candidate — this is what finds
// overtaking races).
func (m Model) successors(s *State) []*State {
	var out []*State

	// Request issuance and local writes.
	for i := 0; i < m.Caches; i++ {
		if s.Waiting[i] {
			continue
		}
		if s.Tags[i] == Invalid && !s.DefInval[i] && s.DefRecall[i] == 0 {
			// Issue a read.
			n := s.clone()
			n.Waiting[i], n.WaitingW[i] = true, false
			n.Net = append(n.Net, Msg{Kind: GetRO, Src: i, Dst: -1})
			out = append(out, n)
		}
		if s.Budget[i] > 0 && s.Tags[i] != ReadWrite && !s.DefInval[i] && s.DefRecall[i] == 0 {
			// Issue a write (upgrade or fetch-exclusive).
			n := s.clone()
			n.Waiting[i], n.WaitingW[i] = true, true
			n.Net = append(n.Net, Msg{Kind: GetRW, Src: i, Dst: -1})
			out = append(out, n)
		}
		if s.Budget[i] > 0 && s.Tags[i] == ReadWrite {
			// Perform a local write on the held exclusive copy.
			n := s.clone()
			n.LatestVer++
			n.Vers[i] = n.LatestVer
			n.Budget[i]--
			out = append(out, n)
		}
	}

	// Message deliveries.
	for idx := range s.Net {
		n := s.clone()
		msg := n.Net[idx]
		n.Net = append(n.Net[:idx], n.Net[idx+1:]...)
		if msg.Dst == -1 {
			m.homeHandle(n, msg)
		} else {
			m.cacheHandle(n, msg)
		}
		out = append(out, n)
	}
	return out
}

func (m Model) send(s *State, msg Msg) { s.Net = append(s.Net, msg) }

// homeHandle mirrors internal/stache's home-side handlers.
func (m Model) homeHandle(s *State, msg Msg) {
	switch msg.Kind {
	case GetRO:
		m.handleGet(s, msg.Src, false)
	case GetRW:
		m.handleGet(s, msg.Src, true)
	case InvalAck:
		s.AcksLeft--
		if s.AcksLeft == 0 {
			m.grantRW(s, int(s.Grantee))
			m.drain(s)
		}
	case WriteBackRO:
		s.HomeVer = int8(msg.Ver)
		s.HomeTag = ReadOnly
		s.Sharers = 1 << uint(msg.Src)
		s.Dir = DirHome
		s.Owner = -1
		m.drain(s)
	case WriteBackRW:
		s.HomeVer = int8(msg.Ver)
		s.HomeTag = ReadWrite
		s.Sharers = 0
		s.Dir = DirHome
		s.Owner = -1
		m.drain(s)
	}
}

func (m Model) handleGet(s *State, req int, write bool) {
	switch s.Dir {
	case DirHome:
		if !write {
			if s.Sharers&(1<<uint(req)) != 0 {
				return // in-flight copy; drop
			}
			m.grantRO(s, req)
			return
		}
		others := s.Sharers &^ (1 << uint(req))
		if others == 0 {
			m.grantRW(s, req)
			return
		}
		s.Dir = DirAwaitAcks
		s.Grantee = int8(req)
		s.AcksLeft = 0
		for i := 0; i < m.Caches; i++ {
			if others&(1<<uint(i)) != 0 {
				s.AcksLeft++
				m.send(s, Msg{Kind: Inval, Src: -1, Dst: i})
			}
		}
		s.Sharers = 0
	case DirRemoteExcl:
		if int(s.Owner) == req {
			return // grant in flight; drop
		}
		s.Pending = append(s.Pending, pend{Req: req, Write: write})
		s.Dir = DirAwaitWB
		if write {
			m.send(s, Msg{Kind: RecallRW, Src: -1, Dst: int(s.Owner)})
		} else {
			m.send(s, Msg{Kind: RecallRO, Src: -1, Dst: int(s.Owner)})
		}
	case DirAwaitAcks:
		if int(s.Grantee) == req {
			return // grant pending; drop
		}
		s.Pending = append(s.Pending, pend{Req: req, Write: write})
	case DirAwaitWB:
		s.Pending = append(s.Pending, pend{Req: req, Write: write})
	}
}

func (m Model) grantRO(s *State, req int) {
	s.Sharers |= 1 << uint(req)
	if s.HomeTag == ReadWrite {
		s.HomeTag = ReadOnly
	}
	m.send(s, Msg{Kind: DataRO, Src: -1, Dst: req, Ver: int(s.HomeVer)})
}

func (m Model) grantRW(s *State, req int) {
	s.Sharers = 0
	m.send(s, Msg{Kind: DataRW, Src: -1, Dst: req, Ver: int(s.HomeVer)})
	s.HomeTag = Invalid
	s.Dir = DirRemoteExcl
	s.Owner = int8(req)
}

func (m Model) drain(s *State) {
	for len(s.Pending) > 0 {
		if s.Dir != DirHome && s.Dir != DirRemoteExcl {
			return
		}
		before := len(s.Pending)
		p := s.Pending[0]
		s.Pending = s.Pending[1:]
		m.handleGet(s, p.Req, p.Write)
		if s.Dir == DirHome && len(s.Pending) >= before {
			return
		}
	}
}

// cacheHandle mirrors internal/stache's cache-side handlers; the
// Deferrals switch selects the production race resolutions or the naive
// behavior the checker convicts.
func (m Model) cacheHandle(s *State, msg Msg) {
	i := msg.Dst
	switch msg.Kind {
	case DataRO:
		if s.DefInval[i] {
			// The invalidation overtook this grant: consume the copy for
			// the waiting read (if any), acknowledge, end invalid.
			s.DefInval[i] = false
			m.send(s, Msg{Kind: InvalAck, Src: i, Dst: -1})
			if s.Waiting[i] && !s.WaitingW[i] {
				// The read used the in-flight data once.
				s.Waiting[i] = false
				s.Tags[i] = Invalid
				return
			}
			// Otherwise re-issue the outstanding request.
			if s.Waiting[i] {
				kind := GetRO
				if s.WaitingW[i] {
					kind = GetRW
				}
				m.send(s, Msg{Kind: kind, Src: i, Dst: -1})
			}
			return
		}
		s.Tags[i] = ReadOnly
		s.Vers[i] = int8(msg.Ver)
		if s.Waiting[i] && !s.WaitingW[i] {
			s.Waiting[i] = false
		}
	case DataRW:
		if s.DefRecall[i] != 0 {
			kind := s.DefRecall[i]
			s.DefRecall[i] = 0
			ver := int8(msg.Ver)
			if s.Waiting[i] && s.WaitingW[i] && s.Budget[i] > 0 {
				// Complete the waiting write once, then honor the recall
				// (the production pending-use guarantee).
				s.LatestVer++
				ver = s.LatestVer
				s.Budget[i]--
				s.Waiting[i] = false
			} else if s.Waiting[i] {
				s.Waiting[i] = false
			}
			if kind == 1 { // RecallRO
				s.Tags[i] = ReadOnly
				s.Vers[i] = ver
				m.send(s, Msg{Kind: WriteBackRO, Src: i, Dst: -1, Ver: int(ver)})
			} else {
				s.Tags[i] = Invalid
				m.send(s, Msg{Kind: WriteBackRW, Src: i, Dst: -1, Ver: int(ver)})
			}
			return
		}
		s.Tags[i] = ReadWrite
		s.Vers[i] = int8(msg.Ver)
		if s.Waiting[i] {
			if s.WaitingW[i] && s.Budget[i] > 0 {
				// Complete the waiting write with the grant in hand.
				s.LatestVer++
				s.Vers[i] = s.LatestVer
				s.Budget[i]--
			}
			s.Waiting[i] = false
		}
	case Inval:
		if s.Tags[i] >= ReadOnly {
			s.Tags[i] = Invalid
			m.send(s, Msg{Kind: InvalAck, Src: i, Dst: -1})
			return
		}
		if m.Deferrals {
			s.DefInval[i] = true
			return
		}
		// Naive: acknowledge immediately; the chased data will install a
		// stale readable copy later.
		m.send(s, Msg{Kind: InvalAck, Src: i, Dst: -1})
	case RecallRO:
		if s.Tags[i] == ReadWrite {
			s.Tags[i] = ReadOnly
			m.send(s, Msg{Kind: WriteBackRO, Src: i, Dst: -1, Ver: int(s.Vers[i])})
			return
		}
		if m.Deferrals {
			s.DefRecall[i] = 1
			return
		}
		m.send(s, Msg{Kind: WriteBackRO, Src: i, Dst: -1, Ver: int(s.Vers[i])})
		s.Tags[i] = ReadOnly
	case RecallRW:
		if s.Tags[i] == ReadWrite {
			s.Tags[i] = Invalid
			m.send(s, Msg{Kind: WriteBackRW, Src: i, Dst: -1, Ver: int(s.Vers[i])})
			return
		}
		if m.Deferrals {
			s.DefRecall[i] = 2
			return
		}
		m.send(s, Msg{Kind: WriteBackRW, Src: i, Dst: -1, Ver: int(s.Vers[i])})
		s.Tags[i] = Invalid
	}
}
