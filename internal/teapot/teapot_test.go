package teapot

import "testing"

func TestStacheModelVerifiesClean(t *testing.T) {
	res := Model{Caches: 2, WritesPerCache: 2, Deferrals: true}.Check(2_000_000)
	if len(res.Violations) > 0 {
		t.Fatalf("violations:\n%s", res.Violations[0])
	}
	if res.States < 200 {
		t.Fatalf("suspiciously small state space: %d", res.States)
	}
	if res.Quiescent == 0 {
		t.Fatal("no quiescent states reached")
	}
	t.Logf("explored %d states (%d quiescent)", res.States, res.Quiescent)
}

func TestStacheModelThreeCaches(t *testing.T) {
	if testing.Short() {
		t.Skip("large state space")
	}
	res := Model{Caches: 3, WritesPerCache: 1, Deferrals: true}.Check(5_000_000)
	if len(res.Violations) > 0 {
		t.Fatalf("violations:\n%s", res.Violations[0])
	}
	t.Logf("explored %d states (%d quiescent)", res.States, res.Quiescent)
}

func TestNaiveProtocolConvicted(t *testing.T) {
	// Without the deferral rules, the unordered network lets an
	// invalidation or recall overtake the grant it chases, producing a
	// stale readable copy or a stale writeback. The checker must find it.
	res := Model{Caches: 2, WritesPerCache: 1, Deferrals: false}.Check(2_000_000)
	if len(res.Violations) == 0 {
		t.Fatal("naive protocol passed; the checker is too weak")
	}
	t.Logf("naive protocol convicted after %d states: %s", res.States, res.Violations[0].Msg)
}

func TestStateKeyCanonicalizesNetwork(t *testing.T) {
	a := &State{
		Owner: -1, Grantee: -1, HomeTag: ReadWrite,
		Tags: make([]Tag, 2), Vers: make([]int8, 2),
		Waiting: make([]bool, 2), WaitingW: make([]bool, 2),
		DefInval: make([]bool, 2), DefRecall: make([]int8, 2),
		Budget: []int8{1, 1},
		Net: []Msg{
			{Kind: GetRO, Src: 0, Dst: -1},
			{Kind: GetRW, Src: 1, Dst: -1},
		},
	}
	b := a.clone()
	b.Net[0], b.Net[1] = b.Net[1], b.Net[0]
	if a.key() != b.key() {
		t.Fatal("network ordering split equivalent states")
	}
}

func TestQuiescence(t *testing.T) {
	s := &State{
		Owner: -1, Grantee: -1, HomeTag: ReadWrite,
		Tags: make([]Tag, 2), Vers: make([]int8, 2),
		Waiting: make([]bool, 2), WaitingW: make([]bool, 2),
		DefInval: make([]bool, 2), DefRecall: make([]int8, 2),
		Budget: []int8{0, 0},
	}
	if !s.quiescent() {
		t.Fatal("idle state not quiescent")
	}
	s.Net = []Msg{{Kind: GetRO, Src: 0, Dst: -1}}
	if s.quiescent() {
		t.Fatal("in-flight message ignored")
	}
}
