// Package interp executes compiled cstar programs on the simulated DSM
// machine, closing the loop the original system implemented: the C**
// compiler's directives drive the predictive protocol in the runtime
// (paper §1). Main runs SPMD on every node's compute processor; parallel
// calls partition the parallel aggregate's elements over the nodes;
// compiler-placed directives fire the pre-send phase at the points the
// placement analysis chose (including hoisted loop preheaders).
//
// Semantics notes: aggregate sizes must be compile-time constants;
// out-of-range element reads yield the boundary value 0 and out-of-range
// writes are dropped (mesh boundary convention); main's sequential code
// may not access aggregate elements directly (use reduce), matching the
// paper's restriction of the analyzed sequential portion.
package interp

import (
	"fmt"
	"math"

	"presto/internal/compiler"
	"presto/internal/lang"
	"presto/internal/memory"
	"presto/internal/rt"
	"presto/internal/sim"
)

// Options configures one interpreted run.
type Options struct {
	Machine rt.Config
	// CostOp is the modeled cost per evaluated operator/access (default
	// 300ns, a mid-90s interpreter-free compiled-code estimate).
	CostOp sim.Time
}

// Result carries the run's timing and final scalar state.
type Result struct {
	Machine   *rt.Machine
	Breakdown rt.Breakdown
	Counters  rt.Counters
	// Scalars holds main's top-level scalar variables after the run
	// (worker 0's view; SPMD execution makes all views identical).
	Scalars map[string]float64
}

// aggHandle is a bound aggregate instance. Aggregates are laid out
// field-major — one plane (region) per field — so distinct fields of one
// element never share a cache block; interleaving them would turn every
// phase that writes one field while neighbors read another into
// false-sharing conflicts (paper §3.3).
type aggHandle struct {
	decl *lang.AggregateDecl
	g2   []*rt.Grid2D  // one per field (2-D)
	a1   []*rt.Array1D // one per field (1-D)
	rows int
	cols int // 1 for 1-D
}

func (h *aggHandle) at(i, j, field int) (memory.Addr, bool) {
	if i < 0 || i >= h.rows || j < 0 || j >= h.cols {
		return 0, false
	}
	if h.g2 != nil {
		return h.g2[field].At(i, j, 0), true
	}
	return h.a1[field].At(i, 0), true
}

// Run executes an analyzed program under the given machine options.
func Run(a *compiler.Analysis, opt Options) (*Result, error) {
	if opt.CostOp == 0 {
		opt.CostOp = 300 * sim.Nanosecond
	}
	m := rt.New(opt.Machine)

	// Pre-allocate aggregates (sizes must be constant expressions).
	aggs := map[string]*aggHandle{}
	var allocErr error
	collectAggLets(a.Main.Body, func(l *lang.LetStmt) {
		if allocErr != nil || aggs[l.Name] != nil {
			return
		}
		decl := a.Prog.Aggregate(l.AggType)
		sizes := make([]int, len(l.AggDims))
		for k, e := range l.AggDims {
			v, ok := constEval(e)
			if !ok || v <= 0 || v != math.Trunc(v) {
				allocErr = fmt.Errorf("interp: aggregate %s size must be a positive constant", l.Name)
				return
			}
			sizes[k] = int(v)
		}
		h := &aggHandle{decl: decl}
		if decl.Dims == 2 {
			dist := rt.RowBlock
			if decl.Dist == "tiled" {
				dist = rt.Tiled
			}
			h.rows, h.cols = sizes[0], sizes[1]
			for _, f := range decl.Fields {
				h.g2 = append(h.g2, m.NewGrid2D(l.Name+"."+f, sizes[0], sizes[1], 1, dist))
			}
		} else {
			h.rows, h.cols = sizes[0], 1
			for _, f := range decl.Fields {
				h.a1 = append(h.a1, m.NewArray1D(l.Name+"."+f, sizes[0], 1, false))
			}
		}
		aggs[l.Name] = h
	})
	if allocErr != nil {
		return nil, allocErr
	}

	// Map each statement to the directives that fire before it (hoisted
	// directives sit on synthetic preheader nodes whose successor holds
	// the loop statement).
	dirBefore := map[lang.Stmt][]*compiler.Phase{}
	for _, ph := range a.Phases {
		n := a.Graph.Node(ph.DirectiveNode)
		stmt := n.Stmt
		if stmt == nil && len(n.Succs) > 0 {
			stmt = a.Graph.Node(n.Succs[0]).Stmt
		}
		if stmt == nil {
			return nil, fmt.Errorf("interp: directive for phase %d has no anchor statement", ph.ID)
		}
		dirBefore[stmt] = append(dirBefore[stmt], ph)
	}
	// Map call statements to their covering phase.
	phaseOfStmt := map[lang.Stmt]*compiler.Phase{}
	for _, cs := range a.Graph.Calls {
		if ph := a.PhaseOf(cs); ph != nil {
			phaseOfStmt[a.Graph.Node(cs.NodeID).Stmt] = ph
		}
	}

	scalars := map[string]float64{}
	var runErr error
	err := m.Run(func(w *rt.Worker) {
		ev := &evaluator{
			a: a, m: m, w: w, opt: opt, aggs: aggs,
			dirBefore: dirBefore, phaseOfStmt: phaseOfStmt,
		}
		env := newEnv(nil)
		defer func() {
			if r := recover(); r != nil {
				if e, ok := r.(*evalError); ok {
					if runErr == nil {
						runErr = e.err
					}
					return
				}
				panic(r)
			}
		}()
		ev.execBlock(a.Main.Body, env)
		if w.ID == 0 {
			for k, v := range env.vars {
				scalars[k] = v
			}
		}
	})
	if err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	return &Result{
		Machine:   m,
		Breakdown: m.Breakdown(),
		Counters:  m.Counters(),
		Scalars:   scalars,
	}, nil
}

// collectAggLets visits aggregate-instantiating lets anywhere in main.
func collectAggLets(b *lang.Block, fn func(*lang.LetStmt)) {
	for _, s := range b.Stmts {
		switch v := s.(type) {
		case *lang.LetStmt:
			if v.AggType != "" {
				fn(v)
			}
		case *lang.IfStmt:
			collectAggLets(v.Then, fn)
			if v.Else != nil {
				collectAggLets(v.Else, fn)
			}
		case *lang.ForStmt:
			collectAggLets(v.Body, fn)
		}
	}
}

// constEval evaluates constant arithmetic (aggregate sizes).
func constEval(e lang.Expr) (float64, bool) {
	switch v := e.(type) {
	case *lang.NumberLit:
		return v.Value, true
	case *lang.BinaryExpr:
		l, ok1 := constEval(v.L)
		r, ok2 := constEval(v.R)
		if !ok1 || !ok2 {
			return 0, false
		}
		return applyBinary(v.Op, l, r), true
	case *lang.UnaryExpr:
		x, ok := constEval(v.X)
		if !ok {
			return 0, false
		}
		if v.Op == lang.Minus {
			return -x, true
		}
		return bool2f(x == 0), true
	}
	return 0, false
}

type evalError struct{ err error }

type env struct {
	vars   map[string]float64
	parent *env
}

func newEnv(parent *env) *env {
	return &env{vars: map[string]float64{}, parent: parent}
}

func (e *env) lookup(name string) (float64, bool) {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			return v, true
		}
	}
	return 0, false
}

func (e *env) assign(name string, v float64) bool {
	for s := e; s != nil; s = s.parent {
		if _, ok := s.vars[name]; ok {
			s.vars[name] = v
			return true
		}
	}
	return false
}

type evaluator struct {
	a           *compiler.Analysis
	m           *rt.Machine
	w           *rt.Worker
	opt         Options
	aggs        map[string]*aggHandle
	dirBefore   map[lang.Stmt][]*compiler.Phase
	phaseOfStmt map[lang.Stmt]*compiler.Phase
}

func (ev *evaluator) fail(format string, args ...any) {
	panic(&evalError{fmt.Errorf("interp: "+format, args...)})
}

// execBlock runs main's sequential statements (SPMD on every worker).
func (ev *evaluator) execBlock(b *lang.Block, e *env) {
	for _, s := range b.Stmts {
		for _, ph := range ev.dirBefore[s] {
			ev.w.Directive(ph.ID)
		}
		ev.execStmt(s, e)
	}
}

func (ev *evaluator) execStmt(s lang.Stmt, e *env) {
	switch v := s.(type) {
	case *lang.LetStmt:
		if v.AggType != "" {
			return // bound at allocation
		}
		e.vars[v.Name] = ev.evalSeq(v.Value, e)
	case *lang.AssignStmt:
		tgt, ok := v.Target.(*lang.VarRef)
		if !ok {
			ev.fail("main may not write aggregate elements directly")
		}
		val := ev.evalSeq(v.Value, e)
		if !e.assign(tgt.Name, val) {
			ev.fail("assignment to undeclared variable %q", tgt.Name)
		}
	case *lang.IfStmt:
		if ev.evalSeq(v.Cond, e) != 0 {
			ev.execBlock(v.Then, newEnv(e))
		} else if v.Else != nil {
			ev.execBlock(v.Else, newEnv(e))
		}
	case *lang.ForStmt:
		from := int(ev.evalSeq(v.From, e))
		to := int(ev.evalSeq(v.To, e))
		le := newEnv(e)
		for i := from; i < to; i++ {
			le.vars[v.Var] = float64(i)
			ev.execBlock(v.Body, le)
		}
	case *lang.ExprStmt:
		if call, ok := v.X.(*lang.CallExpr); ok {
			ev.execCall(s, call, e)
			return
		}
		ev.evalSeq(v.X, e)
	case *lang.ReturnStmt:
		// main-level return: stop executing (simplified).
		ev.fail("return in main is not supported")
	default:
		ev.fail("unsupported statement %T", s)
	}
}

// execCall runs a parallel function invocation as a data-parallel step.
func (ev *evaluator) execCall(stmt lang.Stmt, call *lang.CallExpr, e *env) {
	f := ev.a.Prog.Func(call.Callee)
	if f == nil || !f.Parallel {
		ev.fail("call to non-parallel function %q in main", call.Callee)
	}
	// Bind arguments.
	args := make([]any, len(call.Args))
	for i, arg := range call.Args {
		p := f.Params[i]
		if p.Type == "float" || p.Type == "int" {
			args[i] = ev.evalSeq(arg, e)
			continue
		}
		vr, ok := arg.(*lang.VarRef)
		if !ok {
			ev.fail("aggregate argument %d of %s must be a variable", i, call.Callee)
		}
		h := ev.aggs[vr.Name]
		if h == nil {
			ev.fail("unknown aggregate %q", vr.Name)
		}
		if h.decl.Name != p.Type {
			ev.fail("aggregate %q has type %s, want %s", vr.Name, h.decl.Name, p.Type)
		}
		args[i] = h
	}
	par := f.ParallelParam()
	parIdx := -1
	for i, p := range f.Params {
		if p == par {
			parIdx = i
		}
	}
	ph := ev.aggs[call.Args[parIdx].(*lang.VarRef).Name]

	ev.w.ParallelStep(func() {
		w := ev.w
		runElem := func(i, j int) {
			fe := &frameEnv{f: f, args: args, i: i, j: j}
			ops := 0
			ev.execParBlock(f.Body, fe, newEnv(nil), &ops)
			w.Compute(sim.Time(ops) * ev.opt.CostOp)
		}
		if ph.g2 != nil {
			if ph.g2[0].Dist == rt.Tiled {
				rlo, rhi, clo, chi := ph.g2[0].MyTile(w)
				for i := rlo; i < rhi; i++ {
					for j := clo; j < chi; j++ {
						runElem(i, j)
					}
				}
			} else {
				lo, hi := ph.g2[0].MyRows(w)
				for i := lo; i < hi; i++ {
					for j := 0; j < ph.cols; j++ {
						runElem(i, j)
					}
				}
			}
		} else {
			lo, hi := ph.a1[0].MyRange(w)
			for i := lo; i < hi; i++ {
				runElem(i, 0)
			}
		}
	})
}

// frameEnv is a parallel invocation's parameter binding plus element
// position.
type frameEnv struct {
	f    *lang.FuncDecl
	args []any
	i, j int
}

func (fe *frameEnv) param(name string) (any, bool) {
	for k, p := range fe.f.Params {
		if p.Name == name {
			return fe.args[k], true
		}
	}
	return nil, false
}

func (ev *evaluator) execParBlock(b *lang.Block, fe *frameEnv, e *env, ops *int) (returned bool) {
	for _, s := range b.Stmts {
		switch v := s.(type) {
		case *lang.LetStmt:
			if v.AggType != "" {
				ev.fail("aggregate instantiation inside parallel function")
			}
			e.vars[v.Name] = ev.evalPar(v.Value, fe, e, ops)
		case *lang.AssignStmt:
			val := ev.evalPar(v.Value, fe, e, ops)
			switch tgt := v.Target.(type) {
			case *lang.VarRef:
				if !e.assign(tgt.Name, val) {
					ev.fail("assignment to undeclared variable %q", tgt.Name)
				}
			case *lang.FieldAccess:
				ev.writeField(tgt, val, fe, e, ops)
			}
		case *lang.IfStmt:
			if ev.evalPar(v.Cond, fe, e, ops) != 0 {
				if ev.execParBlock(v.Then, fe, newEnv(e), ops) {
					return true
				}
			} else if v.Else != nil {
				if ev.execParBlock(v.Else, fe, newEnv(e), ops) {
					return true
				}
			}
		case *lang.ForStmt:
			from := int(ev.evalPar(v.From, fe, e, ops))
			to := int(ev.evalPar(v.To, fe, e, ops))
			le := newEnv(e)
			for i := from; i < to; i++ {
				le.vars[v.Var] = float64(i)
				if ev.execParBlock(v.Body, fe, le, ops) {
					return true
				}
			}
		case *lang.ExprStmt:
			ev.evalPar(v.X, fe, e, ops)
		case *lang.ReturnStmt:
			return true
		}
	}
	return false
}

// resolveField computes the target element of a field access within a
// parallel invocation.
func (ev *evaluator) resolveField(fa *lang.FieldAccess, fe *frameEnv, e *env, ops *int) (h *aggHandle, i, j, field int) {
	v, ok := fe.param(fa.Base)
	if !ok {
		ev.fail("unknown aggregate %q in %s", fa.Base, fe.f.Name)
	}
	h, ok = v.(*aggHandle)
	if !ok {
		ev.fail("%q is not an aggregate", fa.Base)
	}
	field = h.decl.FieldIndex(fa.Field)
	if field < 0 {
		ev.fail("aggregate %s has no field %q", h.decl.Name, fa.Field)
	}
	if fa.Index == nil {
		return h, fe.i, fe.j, field
	}
	i = int(ev.evalPar(fa.Index[0], fe, e, ops))
	if len(fa.Index) > 1 {
		j = int(ev.evalPar(fa.Index[1], fe, e, ops))
	}
	return h, i, j, field
}

func (ev *evaluator) writeField(fa *lang.FieldAccess, val float64, fe *frameEnv, e *env, ops *int) {
	h, i, j, field := ev.resolveField(fa, fe, e, ops)
	*ops += 2
	if a, ok := h.at(i, j, field); ok {
		ev.w.WriteF64(a, val)
	} // out-of-range writes are dropped (boundary convention)
}

func (ev *evaluator) evalPar(x lang.Expr, fe *frameEnv, e *env, ops *int) float64 {
	*ops++
	switch v := x.(type) {
	case *lang.NumberLit:
		return v.Value
	case *lang.PosRef:
		if v.Dim == 0 {
			return float64(fe.i)
		}
		return float64(fe.j)
	case *lang.VarRef:
		if val, ok := e.lookup(v.Name); ok {
			return val
		}
		if pv, ok := fe.param(v.Name); ok {
			if f, ok := pv.(float64); ok {
				return f
			}
			ev.fail("aggregate %q used as scalar", v.Name)
		}
		ev.fail("unknown variable %q", v.Name)
	case *lang.FieldAccess:
		h, i, j, field := ev.resolveField(v, fe, e, ops)
		if a, ok := h.at(i, j, field); ok {
			return ev.w.ReadF64(a)
		}
		return 0 // boundary value
	case *lang.BinaryExpr:
		return applyBinary(v.Op, ev.evalPar(v.L, fe, e, ops), ev.evalPar(v.R, fe, e, ops))
	case *lang.UnaryExpr:
		xv := ev.evalPar(v.X, fe, e, ops)
		if v.Op == lang.Minus {
			return -xv
		}
		return bool2f(xv == 0)
	case *lang.CallExpr:
		return ev.intrinsic(v, func(x lang.Expr) float64 { return ev.evalPar(x, fe, e, ops) })
	case *lang.ReduceExpr:
		ev.fail("reduce inside parallel functions is not supported")
	}
	return 0
}

// intrinsic evaluates the built-in math functions (the numeric intrinsics
// C** inherited from C++).
func (ev *evaluator) intrinsic(c *lang.CallExpr, eval func(lang.Expr) float64) float64 {
	arity := func(n int) {
		if len(c.Args) != n {
			ev.fail("%s expects %d argument(s), got %d", c.Callee, n, len(c.Args))
		}
	}
	switch c.Callee {
	case "sqrt":
		arity(1)
		return math.Sqrt(eval(c.Args[0]))
	case "abs":
		arity(1)
		return math.Abs(eval(c.Args[0]))
	case "floor":
		arity(1)
		return math.Floor(eval(c.Args[0]))
	case "min":
		arity(2)
		return math.Min(eval(c.Args[0]), eval(c.Args[1]))
	case "max":
		arity(2)
		return math.Max(eval(c.Args[0]), eval(c.Args[1]))
	default:
		ev.fail("call to %q: only intrinsics (sqrt, abs, floor, min, max) may be called in expressions", c.Callee)
		return 0
	}
}

// evalSeq evaluates main's sequential expressions (scalar-only, except
// reductions which synchronize all workers).
func (ev *evaluator) evalSeq(x lang.Expr, e *env) float64 {
	switch v := x.(type) {
	case *lang.NumberLit:
		return v.Value
	case *lang.VarRef:
		if val, ok := e.lookup(v.Name); ok {
			return val
		}
		ev.fail("unknown variable %q in main", v.Name)
	case *lang.BinaryExpr:
		return applyBinary(v.Op, ev.evalSeq(v.L, e), ev.evalSeq(v.R, e))
	case *lang.UnaryExpr:
		xv := ev.evalSeq(v.X, e)
		if v.Op == lang.Minus {
			return -xv
		}
		return bool2f(xv == 0)
	case *lang.ReduceExpr:
		return ev.evalReduce(v)
	case *lang.PosRef:
		ev.fail("#%d outside a parallel function", v.Dim)
	case *lang.FieldAccess:
		ev.fail("main may not read aggregate elements directly; use reduce")
	case *lang.CallExpr:
		return ev.intrinsic(v, func(x lang.Expr) float64 { return ev.evalSeq(x, e) })
	}
	return 0
}

// evalReduce computes a language-level reduction over an aggregate field:
// each worker folds its own elements locally, then a machine reduction
// combines the partials (outside the coherence protocol, paper §1).
func (ev *evaluator) evalReduce(r *lang.ReduceExpr) float64 {
	h := ev.aggs[r.Base]
	if h == nil {
		ev.fail("reduce over unknown aggregate %q", r.Base)
	}
	field := h.decl.FieldIndex(r.Field)
	if field < 0 {
		ev.fail("aggregate %s has no field %q", h.decl.Name, r.Field)
	}
	w := ev.w
	var acc float64
	first := true
	fold := func(v float64) {
		switch r.Op {
		case lang.Plus:
			acc += v
		case lang.Star:
			if first {
				acc = v
			} else {
				acc *= v
			}
		case lang.Lt: // min
			if first || v < acc {
				acc = v
			}
		case lang.Gt: // max
			if first || v > acc {
				acc = v
			}
		}
		first = false
	}
	if r.Op == lang.Star {
		acc = 1
	}
	count := 0
	if h.g2 != nil {
		if h.g2[field].Dist == rt.Tiled {
			rlo, rhi, clo, chi := h.g2[field].MyTile(w)
			for i := rlo; i < rhi; i++ {
				for j := clo; j < chi; j++ {
					a, _ := h.at(i, j, field)
					fold(w.ReadF64(a))
					count++
				}
			}
		} else {
			lo, hi := h.g2[field].MyRows(w)
			for i := lo; i < hi; i++ {
				for j := 0; j < h.cols; j++ {
					a, _ := h.at(i, j, field)
					fold(w.ReadF64(a))
					count++
				}
			}
		}
	} else {
		lo, hi := h.a1[field].MyRange(w)
		for i := lo; i < hi; i++ {
			a, _ := h.at(i, 0, field)
			fold(w.ReadF64(a))
			count++
		}
	}
	w.Compute(sim.Time(count) * ev.opt.CostOp)
	switch r.Op {
	case lang.Plus:
		return w.ReduceSum(acc)
	case lang.Gt:
		return w.ReduceMax(acc)
	case lang.Lt:
		return -w.ReduceMax(-acc)
	default: // product via sum of logs would lose precision; use two maxes
		// Products are rare; emulate with a sum-reduction of logs only
		// for positive values is lossy, so just reduce via sum of
		// pair-exchange: fall back to ReduceSum of log is unacceptable —
		// reduce by max twice is wrong; simplest: error.
		ev.fail("product reductions are not supported")
		return 0
	}
}

func applyBinary(op lang.Kind, l, r float64) float64 {
	switch op {
	case lang.Plus:
		return l + r
	case lang.Minus:
		return l - r
	case lang.Star:
		return l * r
	case lang.Slash:
		return l / r
	case lang.Percent:
		return float64(int64(l) % int64(r))
	case lang.Lt:
		return bool2f(l < r)
	case lang.Gt:
		return bool2f(l > r)
	case lang.Le:
		return bool2f(l <= r)
	case lang.Ge:
		return bool2f(l >= r)
	case lang.EqEq:
		return bool2f(l == r)
	case lang.NotEq:
		return bool2f(l != r)
	case lang.AndAnd:
		return bool2f(l != 0 && r != 0)
	case lang.OrOr:
		return bool2f(l != 0 || r != 0)
	}
	return 0
}

func bool2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
