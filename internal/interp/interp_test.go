package interp

import (
	"math"
	"os"
	"testing"

	"presto/internal/compiler"
	"presto/internal/lang"
	"presto/internal/rt"
)

const jacobiSrc = `
aggregate Cell[,] {
  float v;
  float nv;
}

parallel func inject(parallel g: Cell) {
  if #0 == 0 {
    g.v = 1;
  }
}

parallel func sweep(parallel g: Cell) {
  g.nv = 0.25 * (g[#0-1, #1].v + g[#0+1, #1].v + g[#0, #1-1].v + g[#0, #1+1].v);
}

parallel func commit(parallel g: Cell) {
  if #0 > 0 {
    g.v = g.nv;
  }
}

func main() {
  let g = Cell[16, 16];
  inject(g);
  for it in 0..8 {
    sweep(g);
    commit(g);
  }
  let total = reduce(+, g.v);
  let peak = reduce(>, g.v);
}
`

func analyze(t *testing.T, src string) *compiler.Analysis {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := compiler.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// jacobiReference computes the same recurrence on the host.
func jacobiReference(n, iters int) (total, peak float64) {
	v := make([][]float64, n)
	nv := make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, n)
		nv[i] = make([]float64, n)
	}
	for j := 0; j < n; j++ {
		v[0][j] = 1
	}
	read := func(i, j int) float64 {
		if i < 0 || i >= n || j < 0 || j >= n {
			return 0
		}
		return v[i][j]
	}
	for it := 0; it < iters; it++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				nv[i][j] = 0.25 * (read(i-1, j) + read(i+1, j) + read(i, j-1) + read(i, j+1))
			}
		}
		for i := 1; i < n; i++ {
			for j := 0; j < n; j++ {
				v[i][j] = nv[i][j]
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			total += v[i][j]
			if v[i][j] > peak {
				peak = v[i][j]
			}
		}
	}
	return total, peak
}

func runJacobi(t *testing.T, proto rt.ProtocolKind) *Result {
	t.Helper()
	a := analyze(t, jacobiSrc)
	r, err := Run(a, Options{Machine: rt.Config{Nodes: 4, BlockSize: 32, Protocol: proto}})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestJacobiMatchesReference(t *testing.T) {
	r := runJacobi(t, rt.ProtoStache)
	total, peak := jacobiReference(16, 8)
	if math.Abs(r.Scalars["total"]-total) > 1e-9 {
		t.Fatalf("total = %v, want %v", r.Scalars["total"], total)
	}
	if math.Abs(r.Scalars["peak"]-peak) > 1e-9 {
		t.Fatalf("peak = %v, want %v", r.Scalars["peak"], peak)
	}
}

func TestJacobiProtocolEquivalence(t *testing.T) {
	rs := runJacobi(t, rt.ProtoStache)
	rp := runJacobi(t, rt.ProtoPredictive)
	if rs.Scalars["total"] != rp.Scalars["total"] {
		t.Fatalf("totals differ: %v vs %v", rs.Scalars["total"], rp.Scalars["total"])
	}
	if rp.Counters.PresendsSent == 0 {
		t.Fatal("compiled directives fired no pre-sends")
	}
	if rp.Breakdown.RemoteWait >= rs.Breakdown.RemoteWait {
		t.Fatalf("predictive remote wait %v >= stache %v",
			rp.Breakdown.RemoteWait, rs.Breakdown.RemoteWait)
	}
}

func TestHoistedDirectiveProgram(t *testing.T) {
	// A home-only loop between unstructured phases: the directive is
	// hoisted; the program must still run correctly end to end.
	src := `
aggregate A[] { float x; float s; }

parallel func scatter(parallel g: A) {
  g.s = g[#0-1].x + g[#0+1].x;
}

parallel func scale(parallel g: A) {
  g.x = g.x * 0.5 + g.s * 0.25;
}

func main() {
  let g = A[32];
  for it in 0..4 {
    scatter(g);
    for k in 0..3 {
      scale(g);
    }
  }
  let total = reduce(+, g.x);
}
`
	a := analyze(t, src)
	hoisted := false
	for _, ph := range a.Phases {
		if ph.Hoisted {
			hoisted = true
		}
	}
	if !hoisted {
		t.Fatal("test premise broken: no hoisted directive")
	}
	rs, err := Run(a, Options{Machine: rt.Config{Nodes: 4, BlockSize: 32}})
	if err != nil {
		t.Fatal(err)
	}
	a2 := analyze(t, src)
	rp, err := Run(a2, Options{Machine: rt.Config{Nodes: 4, BlockSize: 32, Protocol: rt.ProtoPredictive}})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Scalars["total"] != rp.Scalars["total"] {
		t.Fatalf("totals differ: %v vs %v", rs.Scalars["total"], rp.Scalars["total"])
	}
}

func TestInterpDeterministic(t *testing.T) {
	r1 := runJacobi(t, rt.ProtoPredictive)
	r2 := runJacobi(t, rt.ProtoPredictive)
	if r1.Breakdown.Elapsed != r2.Breakdown.Elapsed || r1.Scalars["total"] != r2.Scalars["total"] {
		t.Fatal("non-deterministic interpretation")
	}
}

func TestInterpErrors(t *testing.T) {
	cases := []string{
		// Non-constant aggregate size.
		`aggregate A[] { float x; }
		 parallel func f(parallel g: A) { g.x = 1; }
		 func main() { let n = 4; let g = A[n]; f(g); }`,
		// Main reading aggregate elements directly.
		`aggregate A[] { float x; }
		 parallel func f(parallel g: A) { g.x = 1; }
		 func main() { let g = A[4]; f(g); let y = 1; y = y + 1; }`,
	}
	// Only the first case must fail; the second is valid and checks that
	// scalar reassignment works.
	a0 := analyze(t, cases[0])
	if _, err := Run(a0, Options{Machine: rt.Config{Nodes: 2, BlockSize: 32}}); err == nil {
		t.Fatal("expected error for non-constant size")
	}
	a1 := analyze(t, cases[1])
	r, err := Run(a1, Options{Machine: rt.Config{Nodes: 2, BlockSize: 32}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Scalars["y"] != 2 {
		t.Fatalf("y = %v, want 2", r.Scalars["y"])
	}
}

func Test1DAggregates(t *testing.T) {
	src := `
aggregate V[] { float x; float y; }
parallel func initv(parallel g: V) { g.x = #0; }
parallel func shift(parallel g: V) { g.y = g[#0+1].x; }
func main() {
  let g = V[64];
  initv(g);
  shift(g);
  let total = reduce(+, g.y);
}
`
	a := analyze(t, src)
	r, err := Run(a, Options{Machine: rt.Config{Nodes: 4, BlockSize: 32}})
	if err != nil {
		t.Fatal(err)
	}
	// After init, x[i] = i; after shift, y[i] = i+1 except y[63] = 0
	// (boundary). Sum = (1+...+63) + 0 = 2016.
	if r.Scalars["total"] != 2016 {
		t.Fatalf("total = %v, want 2016", r.Scalars["total"])
	}
}

func TestTiledDistribution(t *testing.T) {
	// The same program under rowblock and tiled distributions must give
	// identical results; only the communication pattern differs.
	mk := func(dist string) string {
		return `
aggregate Cell[,] ` + dist + ` {
  float v;
  float nv;
}
parallel func seed(parallel g: Cell) {
  g.v = #0 * 10 + #1;
}
parallel func sweep(parallel g: Cell) {
  g.nv = g[#0-1, #1].v + g[#0+1, #1].v + g[#0, #1-1].v + g[#0, #1+1].v;
}
func main() {
  let g = Cell[16, 16];
  seed(g);
  for it in 0..3 {
    sweep(g);
  }
  let total = reduce(+, g.nv);
}
`
	}
	results := map[string]float64{}
	for _, dist := range []string{"rowblock", "tiled"} {
		a := analyze(t, mk(dist))
		r, err := Run(a, Options{Machine: rt.Config{Nodes: 4, BlockSize: 32}})
		if err != nil {
			t.Fatal(err)
		}
		results[dist] = r.Scalars["total"]
		if r.Scalars["total"] == 0 {
			t.Fatalf("%s: zero total", dist)
		}
	}
	if results["rowblock"] != results["tiled"] {
		t.Fatalf("distributions disagree: %v vs %v", results["rowblock"], results["tiled"])
	}
}

func TestTiledRequires2D(t *testing.T) {
	if _, err := lang.Parse(`aggregate A[] tiled { float x; }`); err == nil {
		t.Fatal("tiled 1-D aggregate must be rejected")
	}
	if _, err := lang.Parse(`aggregate A[,] diagonal { float x; }`); err == nil {
		t.Fatal("unknown distribution must be rejected")
	}
}

func TestNsquaredKernel(t *testing.T) {
	src, err := os.ReadFile("../../testdata/nsquared.cstar")
	if err != nil {
		t.Fatal(err)
	}
	run := func(proto rt.ProtocolKind) *Result {
		a := analyze(t, string(src))
		r, err := Run(a, Options{Machine: rt.Config{Nodes: 8, BlockSize: 32, Protocol: proto}})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	rs := run(rt.ProtoStache)
	rp := run(rt.ProtoPredictive)
	if rs.Scalars["spread"] != rp.Scalars["spread"] || rs.Scalars["energy"] != rp.Scalars["energy"] {
		t.Fatalf("protocols disagree: %v/%v vs %v/%v",
			rs.Scalars["spread"], rs.Scalars["energy"], rp.Scalars["spread"], rp.Scalars["energy"])
	}
	if rs.Scalars["spread"] <= 0 {
		t.Fatalf("degenerate spread %v", rs.Scalars["spread"])
	}
	if rp.Breakdown.RemoteWait >= rs.Breakdown.RemoteWait {
		t.Fatalf("static pattern not predicted: %v vs %v", rp.Breakdown.RemoteWait, rs.Breakdown.RemoteWait)
	}
}

func TestIntrinsics(t *testing.T) {
	src := `
aggregate A[] { float x; }
parallel func f(parallel g: A) {
  g.x = sqrt(16) + abs(0 - 2) + min(3, 5) + max(3, 5) + floor(2.9);
}
func main() {
  let g = A[4];
  f(g);
  let total = reduce(+, g.x);
}
`
	a := analyze(t, src)
	r, err := Run(a, Options{Machine: rt.Config{Nodes: 2, BlockSize: 32}})
	if err != nil {
		t.Fatal(err)
	}
	// 4 + 2 + 3 + 5 + 2 = 16 per element, 4 elements.
	if r.Scalars["total"] != 64 {
		t.Fatalf("total = %v, want 64", r.Scalars["total"])
	}
}

func TestUnknownCallRejected(t *testing.T) {
	src := `
aggregate A[] { float x; }
parallel func f(parallel g: A) { g.x = mystery(1); }
func main() { let g = A[4]; f(g); }
`
	a := analyze(t, src)
	if _, err := Run(a, Options{Machine: rt.Config{Nodes: 2, BlockSize: 32}}); err == nil {
		t.Fatal("unknown intrinsic accepted")
	}
}
