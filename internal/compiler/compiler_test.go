package compiler

import (
	"os"
	"strings"
	"testing"

	"presto/internal/lang"
)

func analyze(t *testing.T, src string) *Analysis {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSummaryClassification(t *testing.T) {
	// The paper's update example (§4.2): (primal: W, Home),
	// (dual: R, Non-Home).
	src := `
aggregate Primal[] { float v; }
aggregate Dual[] { float v; }
parallel func update(parallel primal: Primal, dual: Dual) {
  primal.v = primal.v + dual[#0+1].v;
}
func main() {
  let p = Primal[8];
  let d = Dual[8];
  update(p, d);
}
`
	a := analyze(t, src)
	s := a.Summaries["update"]
	str := s.String()
	for _, want := range []string{"(primal: W, Home)", "(primal: R, Home)", "(dual: R, Non-Home)"} {
		if !strings.Contains(str, want) {
			t.Errorf("summary %q missing %q", str, want)
		}
	}
	if s.HomeOnly() {
		t.Error("summary with dual access reported home-only")
	}
}

func TestOwnElementForms(t *testing.T) {
	src := `
aggregate G[,] { float v; }
parallel func f(parallel g: G) {
  g[#0, #1].v = g.v;          // both Home
}
parallel func h(parallel g: G) {
  g[#1, #0].v = g[#0, #0].v;  // swapped / repeated positions: Non-Home
}
func main() {
  let g = G[4, 4];
  f(g);
  h(g);
}
`
	a := analyze(t, src)
	if !a.Summaries["f"].HomeOnly() {
		t.Errorf("f should be home-only: %s", a.Summaries["f"])
	}
	if a.Summaries["h"].HomeOnly() {
		t.Errorf("h should not be home-only: %s", a.Summaries["h"])
	}
}

func TestPlacementRules(t *testing.T) {
	// producer: owner writes; consumer: unstructured reads. The consumer
	// needs a schedule (rule 2); the producer needs one only when reached
	// by the consumer's unstructured accesses (rule 1) — which happens
	// from the second loop iteration via the back edge.
	src := `
aggregate A[] { float x; }
parallel func produce(parallel g: A) { g.x = 1; }
parallel func consume(parallel g: A) { g.x = g[#0+1].x; }
func main() {
  let g = A[8];
  for i in 0..10 {
    produce(g);
    consume(g);
  }
}
`
	a := analyze(t, src)
	var produceCS, consumeCS = a.Graph.Calls[0], a.Graph.Calls[1]
	if !a.Needs(consumeCS) {
		t.Fatal("consume needs a schedule (rule 2)")
	}
	if !a.Needs(produceCS) {
		t.Fatal("produce needs a schedule (rule 1, via back edge)")
	}
}

func TestNoDirectiveWithoutCommunication(t *testing.T) {
	src := `
aggregate A[] { float x; }
parallel func localonly(parallel g: A) { g.x = g.x + 1; }
func main() {
  let g = A[8];
  for i in 0..10 {
    localonly(g);
  }
}
`
	a := analyze(t, src)
	if a.Needs(a.Graph.Calls[0]) {
		t.Fatal("home-only program must need no schedule")
	}
	if len(a.Phases) != 0 {
		t.Fatalf("phases = %d, want 0", len(a.Phases))
	}
}

func TestKillStopsReaching(t *testing.T) {
	// After an owner write with no subsequent unstructured access, a
	// second owner write is NOT reached by unstructured accesses.
	src := `
aggregate A[] { float x; }
parallel func unstr(parallel g: A) { g.x = g[#0+1].x; }
parallel func owner(parallel g: A) { g.x = 1; }
func main() {
  let g = A[8];
  unstr(g);
  owner(g);
  owner(g);
}
`
	a := analyze(t, src)
	calls := a.Graph.Calls
	if !a.Needs(calls[1]) {
		t.Fatal("first owner write is reached by unstructured accesses")
	}
	if a.Needs(calls[2]) {
		t.Fatal("second owner write follows a kill; needs no schedule")
	}
}

func TestSeparateAggregatesIndependent(t *testing.T) {
	src := `
aggregate A[] { float x; }
parallel func unstrA(parallel g: A) { g.x = g[#0+1].x; }
parallel func ownerB(parallel g: A) { g.x = 2; }
func main() {
  let a = A[8];
  let b = A[8];
  unstrA(a);
  ownerB(b);
}
`
	an := analyze(t, src)
	if an.Needs(an.Graph.Calls[1]) {
		t.Fatal("owner write to b must not be affected by unstructured accesses to a")
	}
}

func TestBarnesFigure4(t *testing.T) {
	src, err := os.ReadFile("../../testdata/barnes.cstar")
	if err != nil {
		t.Fatal(err)
	}
	a := analyze(t, string(src))

	// All four parallel calls need schedules, under the paper's four
	// phases (Figure 4).
	covered := a.CoveredCalls()
	if len(covered) != 4 {
		t.Fatalf("covered calls = %d, want 4 (make, com, forces, advance)", len(covered))
	}
	if len(a.Phases) != 4 {
		t.Fatalf("phases = %d, want 4\n%s", len(a.Phases), a.Report())
	}
	var comPhase *Phase
	for _, cs := range a.Graph.Calls {
		if cs.Func == "center_of_mass" {
			comPhase = a.PhaseOf(cs)
		}
	}
	if comPhase == nil {
		t.Fatal("center_of_mass not covered")
	}
	// The home-only center-of-mass loop gets a single hoisted directive
	// covering all its executions (the paper's "single directive" for
	// that phase).
	if !comPhase.Hoisted {
		t.Fatal("center_of_mass directive not hoisted out of its loop")
	}
	// The directive must sit at the loop preheader, before the loop.
	pre := a.Graph.Node(comPhase.DirectiveNode)
	if pre.Label != "preheader" {
		t.Fatalf("directive at %q, want loop preheader\n%s", pre.Label, a.Report())
	}

	rep := a.Report()
	for _, want := range []string{
		"make_tree: {", "(t: R, Non-Home)", "(t: W, Non-Home)",
		"center_of_mass: {", "(cells: W, Home)",
		"4 pre-send directives", "hoisted out of loop",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q\n%s", want, rep)
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	bad := []string{
		// No main.
		`aggregate A[] { float x; } parallel func f(parallel g: A) { g.x = 1; }`,
		// Arity mismatch.
		`aggregate A[] { float x; }
		 parallel func f(parallel g: A, h: A) { g.x = h[#0].x; }
		 func main() { let a = A[4]; f(a); }`,
		// Access to unknown base inside parallel function.
		`aggregate A[] { float x; }
		 parallel func f(parallel g: A) { q.x = 1; }
		 func main() { let a = A[4]; f(a); }`,
	}
	for i, src := range bad {
		prog, err := lang.Parse(src)
		if err != nil {
			continue // parse-time rejection is fine too
		}
		if _, err := Analyze(prog); err == nil {
			t.Errorf("case %d: expected analysis error", i)
		}
	}
}
