package compiler

import (
	"fmt"
	"sort"
	"strings"

	"presto/internal/cfg"
	"presto/internal/dataflow"
	"presto/internal/lang"
)

// VarAccess is a call-site access resolved to a main-level aggregate
// variable.
type VarAccess struct {
	Var      string
	Mode     Mode
	Locality Locality
}

// Phase is one runtime communication-schedule phase: a directive point and
// the parallel calls it covers.
type Phase struct {
	ID int
	// DirectiveNode is the CFG node at which the pre-send directive
	// executes (a call node, or a loop preheader after hoisting).
	DirectiveNode int
	// Calls covered by this phase's schedule.
	Calls []*cfg.CallSite
	// Hoisted marks a directive moved out of a home-only loop.
	Hoisted bool
	// MergedHomeOnly marks a phase that absorbed neighboring home-only
	// phases (the paper's coalescing optimization).
	MergedHomeOnly bool
}

// Analysis is the complete compiler analysis of one program.
type Analysis struct {
	Prog      *lang.Program
	Main      *lang.FuncDecl
	Summaries map[string]*Summary
	Graph     *cfg.Graph

	// AggVars lists main's aggregate variables in bit order.
	AggVars []string
	aggBit  map[string]int
	aggType map[string]string

	Flow   *dataflow.Result
	Phases []*Phase

	// needs marks call sites requiring a schedule, before coalescing.
	needs map[*cfg.CallSite]bool
	// phaseOf maps each covered call site to its phase.
	phaseOf map[*cfg.CallSite]*Phase
}

// Analyze runs the full pipeline on a parsed program.
func Analyze(prog *lang.Program) (*Analysis, error) {
	a := &Analysis{
		Prog:      prog,
		Summaries: map[string]*Summary{},
		aggBit:    map[string]int{},
		aggType:   map[string]string{},
		needs:     map[*cfg.CallSite]bool{},
		phaseOf:   map[*cfg.CallSite]*Phase{},
	}
	for _, f := range prog.Funcs {
		if !f.Parallel {
			continue
		}
		s, err := Summarize(f, prog)
		if err != nil {
			return nil, err
		}
		a.Summaries[f.Name] = s
	}
	a.Main = prog.Func("main")
	if a.Main == nil {
		return nil, fmt.Errorf("compiler: program has no main")
	}
	g, err := cfg.Build(a.Main, prog)
	if err != nil {
		return nil, err
	}
	a.Graph = g

	// Aggregate variables instantiated in main, in declaration order.
	collectLets(a.Main.Body, func(l *lang.LetStmt) {
		if l.AggType == "" {
			return
		}
		if _, dup := a.aggBit[l.Name]; dup {
			return
		}
		a.aggBit[l.Name] = len(a.AggVars)
		a.aggType[l.Name] = l.AggType
		a.AggVars = append(a.AggVars, l.Name)
	})
	if len(a.AggVars) > 64 {
		return nil, fmt.Errorf("compiler: more than 64 aggregate variables")
	}

	// Validate call arities so access resolution is safe.
	for _, cs := range g.Calls {
		f := prog.Func(cs.Func)
		if len(cs.Args) != len(f.Params) {
			return nil, fmt.Errorf("compiler: call to %s with %d args, want %d", cs.Func, len(cs.Args), len(f.Params))
		}
	}

	a.Flow = dataflow.Forward(g, dataflow.Funcs{GenFn: a.gen, KillFn: a.kill})
	a.decideNeeds()
	a.placePhases()
	return a, nil
}

func collectLets(b *lang.Block, fn func(*lang.LetStmt)) {
	for _, s := range b.Stmts {
		switch v := s.(type) {
		case *lang.LetStmt:
			fn(v)
		case *lang.IfStmt:
			collectLets(v.Then, fn)
			if v.Else != nil {
				collectLets(v.Else, fn)
			}
		case *lang.ForStmt:
			collectLets(v.Body, fn)
		}
	}
}

// CallAccesses resolves a call site's summary to main's aggregate
// variables.
func (a *Analysis) CallAccesses(cs *cfg.CallSite) []VarAccess {
	sum := a.Summaries[cs.Func]
	var out []VarAccess
	for _, acc := range sum.SortedAccesses() {
		v := cs.Args[acc.Param]
		if v == "" {
			continue
		}
		out = append(out, VarAccess{Var: v, Mode: acc.Mode, Locality: acc.Locality})
	}
	return out
}

// Transfer functions (paper §4.3):
//  1. owner writes kill reaching unstructured accesses;
//  2. unstructured writes kill and generate;
//  3. unstructured reads generate (multiple readers are allowed).
func (a *Analysis) gen(nodeID int) dataflow.Bits {
	n := a.Graph.Node(nodeID)
	if n.Call == nil {
		return 0
	}
	var g dataflow.Bits
	for _, acc := range a.CallAccesses(n.Call) {
		if acc.Locality == NonHome {
			if bit, ok := a.aggBit[acc.Var]; ok {
				g = g.Set(bit)
			}
		}
	}
	return g
}

func (a *Analysis) kill(nodeID int) dataflow.Bits {
	n := a.Graph.Node(nodeID)
	if n.Call == nil {
		return 0
	}
	var k dataflow.Bits
	for _, acc := range a.CallAccesses(n.Call) {
		if acc.Mode == Write {
			if bit, ok := a.aggBit[acc.Var]; ok {
				k = k.Set(bit)
			}
		}
	}
	return k
}

// decideNeeds applies the placement rules (paper §4.3): a call requires a
// schedule if (1) it is reached by unstructured accesses of an aggregate
// it owner-writes, or (2) it itself makes unstructured accesses.
func (a *Analysis) decideNeeds() {
	for _, cs := range a.Graph.Calls {
		in := a.Flow.In[cs.NodeID]
		need := false
		for _, acc := range a.CallAccesses(cs) {
			if acc.Locality == NonHome {
				need = true // rule 2
				break
			}
			if acc.Mode == Write {
				if bit, ok := a.aggBit[acc.Var]; ok && in.Has(bit) {
					need = true // rule 1
					break
				}
			}
		}
		a.needs[cs] = need
	}
}

// HomeOnlyCall reports whether the call's accesses are all Home.
func (a *Analysis) HomeOnlyCall(cs *cfg.CallSite) bool {
	return a.Summaries[cs.Func].HomeOnly()
}

// Needs reports whether the call site requires a communication schedule.
func (a *Analysis) Needs(cs *cfg.CallSite) bool { return a.needs[cs] }

// PhaseOf returns the phase covering a call site, or nil.
func (a *Analysis) PhaseOf(cs *cfg.CallSite) *Phase { return a.phaseOf[cs] }

// placePhases assigns phase directives and applies the coalescing
// optimization: an inside-out pass hoists directives out of loops whose
// directive-needing calls are all home-only, and neighboring home-only
// phases merge into the adjacent phase (paper §4.3).
func (a *Analysis) placePhases() {
	assigned := map[*cfg.CallSite]*Phase{}

	// Inside-out loop pass (inner loops were recorded after their outer
	// loops, so iterate in reverse).
	for i := len(a.Graph.Loops) - 1; i >= 0; i-- {
		loop := a.Graph.Loops[i]
		var calls []*cfg.CallSite
		allHome := true
		for _, id := range loop.BodyIDs {
			n := a.Graph.Node(id)
			if n.Call == nil || !a.needs[n.Call] {
				continue
			}
			if assigned[n.Call] != nil {
				allHome = false // an inner loop already owns it
				continue
			}
			calls = append(calls, n.Call)
			if !a.HomeOnlyCall(n.Call) {
				allHome = false
			}
		}
		if !allHome || len(calls) == 0 {
			continue
		}
		ph := &Phase{DirectiveNode: loop.PreID, Calls: calls, Hoisted: true}
		a.Phases = append(a.Phases, ph)
		for _, cs := range calls {
			assigned[cs] = ph
		}
	}

	// Straight-line pass in program order.
	for _, cs := range a.Graph.Calls {
		if !a.needs[cs] || assigned[cs] != nil {
			continue
		}
		ph := &Phase{DirectiveNode: cs.NodeID, Calls: []*cfg.CallSite{cs}}
		a.Phases = append(a.Phases, ph)
		assigned[cs] = ph
	}

	// Order phases by directive position.
	sort.Slice(a.Phases, func(i, j int) bool {
		return a.Phases[i].DirectiveNode < a.Phases[j].DirectiveNode
	})

	// Neighbor coalescing: adjacent phases that each include only home
	// accesses share one directive (the earlier point). Phases with
	// non-home accesses keep their own directives — their schedules
	// differ per iteration in what they pre-send.
	merged := a.Phases[:0]
	for _, ph := range a.Phases {
		if len(merged) > 0 && a.phaseHomeOnly(ph) && a.phaseHomeOnly(merged[len(merged)-1]) {
			prev := merged[len(merged)-1]
			prev.Calls = append(prev.Calls, ph.Calls...)
			prev.MergedHomeOnly = true
			prev.Hoisted = prev.Hoisted || ph.Hoisted
			continue
		}
		merged = append(merged, ph)
	}
	a.Phases = merged

	for i, ph := range a.Phases {
		ph.ID = i + 1
		for _, cs := range ph.Calls {
			a.phaseOf[cs] = ph
		}
	}
}

func (a *Analysis) phaseHomeOnly(ph *Phase) bool {
	for _, cs := range ph.Calls {
		if !a.HomeOnlyCall(cs) {
			return false
		}
	}
	return true
}

// Report renders the analysis like the paper's Figure 4: the CFG annotated
// with access lists (a) and with runtime phase directives (b).
func (a *Analysis) Report() string {
	var b strings.Builder
	b.WriteString("Parallel function access summaries (context-insensitive):\n")
	names := make([]string, 0, len(a.Summaries))
	for n := range a.Summaries {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  %s\n", a.Summaries[n])
	}
	fmt.Fprintf(&b, "\nAggregate variables: %s\n", strings.Join(a.AggVars, ", "))
	b.WriteString("\nAnnotated CFG (access lists and directives):\n")
	dirAt := map[int][]*Phase{}
	for _, ph := range a.Phases {
		dirAt[ph.DirectiveNode] = append(dirAt[ph.DirectiveNode], ph)
	}
	for _, n := range a.Graph.Nodes {
		fmt.Fprintf(&b, "%3d: %-44s", n.ID, n.Label)
		if n.Call != nil {
			var parts []string
			for _, acc := range a.CallAccesses(n.Call) {
				parts = append(parts, fmt.Sprintf("(%s: %s, %s)", acc.Var, acc.Mode, acc.Locality))
			}
			fmt.Fprintf(&b, " %s", strings.Join(parts, " "))
			if ph := a.phaseOf[n.Call]; ph != nil {
				fmt.Fprintf(&b, "  [phase %d]", ph.ID)
			}
		}
		for _, ph := range dirAt[n.ID] {
			extra := ""
			if ph.Hoisted {
				extra = ", hoisted out of loop"
			}
			if ph.MergedHomeOnly {
				extra += ", coalesced"
			}
			fmt.Fprintf(&b, "  <<presend directive: phase %d%s>>", ph.ID, extra)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "\n%d parallel phases, %d pre-send directives\n", len(a.CoveredCalls()), len(a.Phases))
	return b.String()
}

// CoveredCalls returns the call sites covered by any phase.
func (a *Analysis) CoveredCalls() []*cfg.CallSite {
	var out []*cfg.CallSite
	for _, cs := range a.Graph.Calls {
		if a.phaseOf[cs] != nil {
			out = append(out, cs)
		}
	}
	return out
}
