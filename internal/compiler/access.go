// Package compiler implements the paper's compiler analysis (§4): it
// classifies each parallel function's aggregate accesses as Home/Non-Home
// reads and writes (context-insensitive summary, §4.2), computes the
// reaching-unstructured-accesses property over main's CFG with an
// iterative bit-vector data-flow (§4.3), decides which parallel calls need
// a communication schedule and a pre-send directive, and applies the
// coalescing optimization that merges neighboring home-only phases and
// hoists directives out of home-only loops.
package compiler

import (
	"fmt"
	"sort"
	"strings"

	"presto/internal/lang"
)

// Mode distinguishes reads from writes.
type Mode uint8

// Access modes.
const (
	Read Mode = iota
	Write
)

func (m Mode) String() string {
	if m == Write {
		return "W"
	}
	return "R"
}

// Locality classifies an access against the owning element (paper §4.2):
// Home accesses touch the invocation's own element; everything else is
// conservatively Non-Home.
type Locality uint8

// Localities.
const (
	Home Locality = iota
	NonHome
)

func (l Locality) String() string {
	if l == NonHome {
		return "Non-Home"
	}
	return "Home"
}

// Access is one summarized aggregate access of a parallel function.
type Access struct {
	Param    int // parameter position of the aggregate
	Mode     Mode
	Locality Locality
}

// Summary is a parallel function's deduplicated access list
// (paper §4.2: e.g. update's summary is {(primal, W, Home),
// (dual, R, Non-Home)}).
type Summary struct {
	Func     *lang.FuncDecl
	Accesses []Access
}

// String renders the summary like the paper's examples.
func (s *Summary) String() string {
	parts := make([]string, 0, len(s.Accesses))
	for _, a := range s.Accesses {
		parts = append(parts, fmt.Sprintf("(%s: %s, %s)", s.Func.Params[a.Param].Name, a.Mode, a.Locality))
	}
	return s.Func.Name + ": {" + strings.Join(parts, ", ") + "}"
}

// HomeOnly reports whether every summarized access is a Home access.
func (s *Summary) HomeOnly() bool {
	for _, a := range s.Accesses {
		if a.Locality == NonHome {
			return false
		}
	}
	return true
}

// Summarize computes a parallel function's access summary.
func Summarize(f *lang.FuncDecl, prog *lang.Program) (*Summary, error) {
	if !f.Parallel {
		return nil, fmt.Errorf("compiler: %s is not a parallel function", f.Name)
	}
	sum := &Summary{Func: f}
	seen := map[Access]bool{}
	add := func(a Access) {
		if !seen[a] {
			seen[a] = true
			sum.Accesses = append(sum.Accesses, a)
		}
	}

	paramIdx := map[string]int{}
	for i, p := range f.Params {
		paramIdx[p.Name] = i
	}
	par := f.ParallelParam()
	dims := 0
	if d := prog.Aggregate(par.Type); d != nil {
		dims = d.Dims
	}

	classify := func(fa *lang.FieldAccess, mode Mode) error {
		idx, ok := paramIdx[fa.Base]
		if !ok {
			return fmt.Errorf("compiler: %s: access to unknown aggregate %q", f.Name, fa.Base)
		}
		p := f.Params[idx]
		if p.Type == "float" || p.Type == "int" {
			return fmt.Errorf("compiler: %s: field access on scalar parameter %q", f.Name, fa.Base)
		}
		loc := NonHome
		if p.Parallel && isOwnElement(fa, dims) {
			loc = Home
		}
		add(Access{Param: idx, Mode: mode, Locality: loc})
		return nil
	}

	var err error
	walkStmts(f.Body, func(s lang.Stmt) {
		if a, ok := s.(*lang.AssignStmt); ok {
			if fa, ok := a.Target.(*lang.FieldAccess); ok && err == nil {
				if e := classify(fa, Write); e != nil {
					err = e
				}
				// Index expressions are reads.
				for _, ix := range fa.Index {
					walkExprReads(ix, classify, &err)
				}
			}
		}
	}, func(e lang.Expr) {
		if err != nil {
			return
		}
		walkExprReads(e, classify, &err)
	})
	if err != nil {
		return nil, err
	}
	return sum, nil
}

// isOwnElement reports whether fa names the invocation's own element: the
// bare form `g.f` or the explicit `g[#0, #1].f` with positions in order.
func isOwnElement(fa *lang.FieldAccess, dims int) bool {
	if fa.Index == nil {
		return true
	}
	if dims != 0 && len(fa.Index) != dims {
		return false
	}
	for k, ix := range fa.Index {
		pr, ok := ix.(*lang.PosRef)
		if !ok || pr.Dim != k {
			return false
		}
	}
	return true
}

// walkStmts visits statements and the value-position expressions within
// them. onStmt sees each statement (for assignment targets); onExpr sees
// each read expression.
func walkStmts(b *lang.Block, onStmt func(lang.Stmt), onExpr func(lang.Expr)) {
	for _, s := range b.Stmts {
		onStmt(s)
		switch v := s.(type) {
		case *lang.LetStmt:
			if v.Value != nil {
				onExpr(v.Value)
			}
			for _, d := range v.AggDims {
				onExpr(d)
			}
		case *lang.AssignStmt:
			onExpr(v.Value)
		case *lang.IfStmt:
			onExpr(v.Cond)
			walkStmts(v.Then, onStmt, onExpr)
			if v.Else != nil {
				walkStmts(v.Else, onStmt, onExpr)
			}
		case *lang.ForStmt:
			onExpr(v.From)
			onExpr(v.To)
			walkStmts(v.Body, onStmt, onExpr)
		case *lang.ExprStmt:
			onExpr(v.X)
		case *lang.ReturnStmt:
			if v.Value != nil {
				onExpr(v.Value)
			}
		}
	}
}

// walkExprReads classifies every FieldAccess read within e.
func walkExprReads(e lang.Expr, classify func(*lang.FieldAccess, Mode) error, err *error) {
	switch v := e.(type) {
	case *lang.FieldAccess:
		if *err == nil {
			if e := classify(v, Read); e != nil {
				*err = e
			}
		}
		for _, ix := range v.Index {
			walkExprReads(ix, classify, err)
		}
	case *lang.BinaryExpr:
		walkExprReads(v.L, classify, err)
		walkExprReads(v.R, classify, err)
	case *lang.UnaryExpr:
		walkExprReads(v.X, classify, err)
	case *lang.CallExpr:
		for _, a := range v.Args {
			walkExprReads(a, classify, err)
		}
	case *lang.ReduceExpr:
		// Reductions are runtime-implemented (outside the protocol).
	}
}

// SortedAccesses returns the accesses ordered for stable output.
func (s *Summary) SortedAccesses() []Access {
	out := append([]Access(nil), s.Accesses...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Param != out[j].Param {
			return out[i].Param < out[j].Param
		}
		if out[i].Mode != out[j].Mode {
			return out[i].Mode < out[j].Mode
		}
		return out[i].Locality < out[j].Locality
	})
	return out
}
