package stache

import (
	"encoding/binary"
	"math"
	"testing"

	"presto/internal/memory"
	"presto/internal/network"
	"presto/internal/sim"
	"presto/internal/tempest"
)

// rig builds one real Stache node (ID 0) and a scripted fake peer (ID 1)
// whose "protocol processor" is driven by the test, so message orderings
// — including overtaking races — can be forced exactly.
type rig struct {
	k     *sim.Kernel
	as    *memory.AddressSpace
	node  *tempest.Node // real node, runs Stache
	peer  *tempest.Node // fake: only its ProtoProc mailbox is used
	proto *Protocol
}

// newRig homes even blocks at the real node and odd blocks at the peer.
func newRig(t *testing.T) *rig {
	t.Helper()
	r := &rig{k: sim.NewKernel(), proto: New()}
	r.as = memory.NewAddressSpace(2, 32)
	r.as.NewRegion("r", 4096, func(b int64) int { return int(b % 2) })
	r.node = tempest.NewNode(0, r.as, network.CM5(), r.proto)
	r.peer = tempest.NewNode(1, r.as, network.CM5(), r.proto)
	peers := []*tempest.Node{r.node, r.peer}
	r.node.Peers = peers
	r.peer.Peers = peers
	r.proto.Init(r.node)
	r.node.ProtoProc = r.k.Spawn("proto0", r.node.ProtocolLoop)
	r.node.ProtoProc.SetDaemon(true)
	return r
}

func f64bytes(vals ...float64) []byte {
	b := make([]byte, 32)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
	}
	return b
}

// remoteBlock returns a block homed at the fake peer.
const remoteAddr = memory.Addr(32) // block index 1 -> home node 1

func TestReadMissRoundTrip(t *testing.T) {
	r := newRig(t)
	var got float64
	r.node.Compute = r.k.Spawn("compute", func(p *sim.Proc) {
		got = r.node.ReadF64(p, remoteAddr)
	})
	r.peer.ProtoProc = r.k.Spawn("script", func(p *sim.Proc) {
		d := p.Recv()
		if m, ok := d.Msg.(tempest.MsgGetRO); !ok || m.Req != 0 {
			t.Errorf("home got %T", d.Msg)
		}
		r.peer.Post(p, r.node, tempest.MsgDataRO{Block: remoteAddr, Data: f64bytes(7.5)})
	})
	r.peer.ProtoProc.SetDaemon(true)
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 7.5 {
		t.Fatalf("read = %v", got)
	}
	if r.node.Store.Tag(remoteAddr) != memory.ReadOnly {
		t.Fatalf("tag = %v", r.node.Store.Tag(remoteAddr))
	}
}

// TestInvalOvertakesDataRO forces the invalidation to arrive before the
// read-only grant it chases: the node must install the copy, let the
// waiting read complete once, then invalidate and acknowledge (progress
// guarantee).
func TestInvalOvertakesDataRO(t *testing.T) {
	r := newRig(t)
	var got float64
	r.node.Compute = r.k.Spawn("compute", func(p *sim.Proc) {
		got = r.node.ReadF64(p, remoteAddr)
	})
	ackSeen := false
	r.peer.ProtoProc = r.k.Spawn("script", func(p *sim.Proc) {
		p.Recv() // GetRO
		// Force overtaking: Inval lands strictly before DataRO.
		base := p.Now()
		p.SendAt(r.node.ProtoProc, tempest.MsgInval{Block: remoteAddr}, base+10*sim.Microsecond)
		p.SendAt(r.node.ProtoProc, tempest.MsgDataRO{Block: remoteAddr, Data: f64bytes(3.25)}, base+20*sim.Microsecond)
		d := p.Recv()
		if m, ok := d.Msg.(tempest.MsgInvalAck); ok && m.From == 0 {
			ackSeen = true
		} else {
			t.Errorf("expected InvalAck, got %T", d.Msg)
		}
	})
	r.peer.ProtoProc.SetDaemon(true)
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 3.25 {
		t.Fatalf("read = %v (the waiting read must see the in-flight data once)", got)
	}
	if !ackSeen {
		t.Fatal("no invalidation acknowledgement")
	}
	if r.node.Store.Tag(remoteAddr) != memory.Invalid {
		t.Fatalf("tag after post-use inval = %v", r.node.Store.Tag(remoteAddr))
	}
}

// TestRecallOvertakesDataRW forces the recall before the writable grant:
// the waiting write must complete exactly once, then the (fresh) data is
// written back and the copy invalidated.
func TestRecallOvertakesDataRW(t *testing.T) {
	r := newRig(t)
	r.node.Compute = r.k.Spawn("compute", func(p *sim.Proc) {
		r.node.WriteF64(p, remoteAddr, 9.75)
	})
	var wb []byte
	r.peer.ProtoProc = r.k.Spawn("script", func(p *sim.Proc) {
		p.Recv() // GetRW
		base := p.Now()
		p.SendAt(r.node.ProtoProc, tempest.MsgRecallRW{Block: remoteAddr}, base+10*sim.Microsecond)
		p.SendAt(r.node.ProtoProc, tempest.MsgDataRW{Block: remoteAddr, Data: f64bytes(1.5)}, base+20*sim.Microsecond)
		d := p.Recv()
		m, ok := d.Msg.(tempest.MsgWriteBack)
		if !ok {
			t.Errorf("expected WriteBack, got %T", d.Msg)
			return
		}
		if m.Downgraded {
			t.Error("RecallRW must not downgrade")
		}
		wb = m.Data
	})
	r.peer.ProtoProc.SetDaemon(true)
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(wb) == 0 {
		t.Fatal("no writeback")
	}
	if v := math.Float64frombits(binary.LittleEndian.Uint64(wb)); v != 9.75 {
		t.Fatalf("writeback carries %v, want the completed write 9.75", v)
	}
	if r.node.Store.Tag(remoteAddr) != memory.Invalid {
		t.Fatalf("tag after recall = %v", r.node.Store.Tag(remoteAddr))
	}
}

// TestRecallROOvertakesPresendGrant: a pre-send writable grant with no
// local waiter gets recalled in flight; the node must write back the
// arriving data and keep a read-only copy (RecallRO).
func TestRecallROOvertakesPresendGrant(t *testing.T) {
	r := newRig(t)
	r.node.Compute = r.k.Spawn("compute", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond) // idle; no fault outstanding
	})
	done := false
	r.peer.ProtoProc = r.k.Spawn("script", func(p *sim.Proc) {
		base := p.Now()
		p.SendAt(r.node.ProtoProc, tempest.MsgRecallRO{Block: remoteAddr}, base+10*sim.Microsecond)
		p.SendAt(r.node.ProtoProc, tempest.MsgDataRW{Block: remoteAddr, Data: f64bytes(4.5), Presend: true}, base+20*sim.Microsecond)
		d := p.Recv()
		m, ok := d.Msg.(tempest.MsgWriteBack)
		if !ok || !m.Downgraded {
			t.Errorf("expected downgraded WriteBack, got %#v", d.Msg)
			return
		}
		done = true
	})
	r.peer.ProtoProc.SetDaemon(true)
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("script incomplete")
	}
	if r.node.Store.Tag(remoteAddr) != memory.ReadOnly {
		t.Fatalf("tag = %v, want ReadOnly after RecallRO", r.node.Store.Tag(remoteAddr))
	}
}

// homeRig drives the real node as the HOME side: scripted remote
// requesters send Get messages and observe grants.
func TestHomeSideGrantAndDropRules(t *testing.T) {
	r := newRig(t)
	local := memory.Addr(0) // block 0 homed at node 0
	r.node.Compute = r.k.Spawn("compute", func(p *sim.Proc) {
		p.Sleep(5 * sim.Millisecond)
	})
	var replies []any
	r.peer.ProtoProc = r.k.Spawn("script", func(p *sim.Proc) {
		// First read: must be granted.
		r.peer.Post(p, r.node, tempest.MsgGetRO{Block: local, Req: 1})
		replies = append(replies, p.Recv().Msg)
		// Second read while already a sharer (in-flight race): dropped.
		r.peer.Post(p, r.node, tempest.MsgGetRO{Block: local, Req: 1})
		// Upgrade to write: granted (sharer set is just us).
		r.peer.Post(p, r.node, tempest.MsgGetRW{Block: local, Req: 1})
		replies = append(replies, p.Recv().Msg)
		// Write request while we already own it exclusively: dropped.
		r.peer.Post(p, r.node, tempest.MsgGetRW{Block: local, Req: 1})
		p.Sleep(sim.Millisecond) // leave room for any (wrong) extra replies
		for {
			if _, ok := p.TryRecv(); !ok {
				break
			}
			replies = append(replies, "extra")
		}
	})
	r.peer.ProtoProc.SetDaemon(true)
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(replies) != 2 {
		t.Fatalf("replies = %v, want exactly DataRO then DataRW", replies)
	}
	if _, ok := replies[0].(tempest.MsgDataRO); !ok {
		t.Fatalf("first reply %T", replies[0])
	}
	if _, ok := replies[1].(tempest.MsgDataRW); !ok {
		t.Fatalf("second reply %T", replies[1])
	}
	e := r.node.Dir.Lookup(local)
	if e == nil || e.State != tempest.DirRemoteExcl || e.Owner != 1 {
		t.Fatalf("directory = %+v", e)
	}
	if r.node.Store.Tag(local) != memory.Invalid {
		t.Fatalf("home tag = %v after exclusive grant", r.node.Store.Tag(local))
	}
}

// TestHomeRecallsExclusiveForReader: a read request for a remotely-owned
// block triggers RecallRO; the writeback restores the home copy and both
// nodes end with read-only copies.
func TestHomeRecallsExclusiveForReader(t *testing.T) {
	r := newRig(t)
	local := memory.Addr(0)
	r.node.Compute = r.k.Spawn("compute", func(p *sim.Proc) {
		p.Sleep(10 * sim.Millisecond)
	})
	var reply any
	r.peer.ProtoProc = r.k.Spawn("script", func(p *sim.Proc) {
		// Take exclusive ownership.
		r.peer.Post(p, r.node, tempest.MsgGetRW{Block: local, Req: 1})
		p.Recv() // DataRW
		// Another reader (pretend node 1 relays for a would-be node; the
		// directory only knows requester IDs, so reuse ID 1 is invalid —
		// instead fault the home's own compute):
		// Use the home's local read path: owner != home, so the home must
		// recall from us.
		r.node.Post(p, r.node, tempest.MsgGetRO{Block: local, Req: 0})
		d := p.Recv() // RecallRO
		if _, ok := d.Msg.(tempest.MsgRecallRO); !ok {
			t.Errorf("expected RecallRO, got %T", d.Msg)
		}
		// Respond with the writeback (we hold data 5.5).
		r.peer.Post(p, r.node, tempest.MsgWriteBack{Block: local, Data: f64bytes(5.5), From: 1, Downgraded: true})
		reply = "done"
	})
	r.peer.ProtoProc.SetDaemon(true)
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if reply == nil {
		t.Fatal("script incomplete")
	}
	e := r.node.Dir.Lookup(local)
	if e.State != tempest.DirHome || !e.Sharers.Has(1) {
		t.Fatalf("directory = %+v", e)
	}
	if r.node.Store.Tag(local) != memory.ReadOnly {
		t.Fatalf("home tag = %v", r.node.Store.Tag(local))
	}
	if v := math.Float64frombits(binary.LittleEndian.Uint64(r.node.Store.Data(local))); v != 5.5 {
		t.Fatalf("home data = %v", v)
	}
}
