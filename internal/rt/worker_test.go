package rt

import (
	"testing"

	"presto/internal/memory"
	"presto/internal/sim"
)

func TestSignalRoundTrip(t *testing.T) {
	m := New(Config{Nodes: 3, BlockSize: 32})
	order := []int{}
	if err := m.Run(func(w *Worker) {
		// Token ring: 0 -> 1 -> 2.
		switch w.ID {
		case 0:
			order = append(order, 0)
			w.Signal(1, 10)
		case 1:
			if tag := w.AwaitSignal(); tag != 10 {
				t.Errorf("tag = %d", tag)
			}
			order = append(order, 1)
			w.Signal(2, 20)
		case 2:
			if tag := w.AwaitSignal(); tag != 20 {
				t.Errorf("tag = %d", tag)
			}
			order = append(order, 2)
		}
		w.Barrier()
	}); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestSignalStashedDuringFaultWait(t *testing.T) {
	// A signal arriving while its target is blocked in a fault must be
	// stashed, not crash the fault loop.
	m := New(Config{Nodes: 2, BlockSize: 32})
	arr := m.NewArray1D("a", 8, 1, false)
	if err := m.Run(func(w *Worker) {
		if w.ID == 1 {
			// Long remote read sequence: plenty of fault-wait windows.
			for i := 0; i < 8; i++ {
				w.ReadF64(arr.At(i%4, 0))
			}
			if tag := w.AwaitSignal(); tag != 5 {
				t.Errorf("tag = %d", tag)
			}
		} else {
			w.Signal(1, 5)
		}
		w.Barrier()
	}); err != nil {
		t.Fatal(err)
	}
}

func TestGatherPrefetches(t *testing.T) {
	m := New(Config{Nodes: 4, BlockSize: 32})
	arr := m.NewArray1D("a", 64, 1, false)
	if err := m.Run(func(w *Worker) {
		lo, hi := arr.MyRange(w)
		for i := lo; i < hi; i++ {
			w.WriteF64(arr.At(i, 0), float64(i))
		}
		w.Barrier()
		if w.ID == 0 {
			// Gather blocks homed on three other nodes, then read them:
			// every read must hit the prefetched copies.
			var addrs []memory.Addr
			for i := 16; i < 64; i++ {
				addrs = append(addrs, arr.At(i, 0))
			}
			before := w.Node.Stats.ReadFaults
			w.Gather(addrs)
			sum := 0.0
			for i := 16; i < 64; i++ {
				sum += w.ReadF64(arr.At(i, 0))
			}
			if want := float64((16 + 63) * 48 / 2); sum != want {
				t.Errorf("sum = %v, want %v", sum, want)
			}
			if w.Node.Stats.ReadFaults != before {
				t.Errorf("reads faulted %d times after gather", w.Node.Stats.ReadFaults-before)
			}
			if w.Node.Stats.RemoteWait == 0 {
				t.Error("gather wait not accounted")
			}
		}
		w.Barrier()
	}); err != nil {
		t.Fatal(err)
	}
}

func TestGatherAllLocalIsFree(t *testing.T) {
	m := New(Config{Nodes: 2, BlockSize: 32})
	arr := m.NewArray1D("a", 8, 1, false)
	if err := m.Run(func(w *Worker) {
		lo, hi := arr.MyRange(w)
		var addrs []memory.Addr
		for i := lo; i < hi; i++ {
			addrs = append(addrs, arr.At(i, 0))
		}
		msgs := w.Node.Stats.MsgsSent
		w.Gather(addrs) // everything local: no messages, no wait
		if w.Node.Stats.MsgsSent != msgs {
			t.Errorf("local gather sent messages")
		}
		w.Barrier()
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCombineArrays(t *testing.T) {
	m := New(Config{Nodes: 4, BlockSize: 32})
	if err := m.Run(func(w *Worker) {
		local := make([]float64, 8)
		for i := range local {
			local[i] = float64(w.ID)
		}
		lo, hi := w.Range(8)
		sum := w.CombineArrays(local, lo, hi)
		for k, v := range sum {
			if v != 0+1+2+3 {
				t.Errorf("worker %d sum[%d] = %v", w.ID, lo+k, v)
			}
		}
		// Back-to-back combines must not interfere.
		for i := range local {
			local[i] = 1
		}
		sum2 := w.CombineArrays(local, lo, hi)
		for _, v := range sum2 {
			if v != 4 {
				t.Errorf("second combine = %v", v)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAtomicAddNoLostUpdates(t *testing.T) {
	m := New(Config{Nodes: 8, BlockSize: 32})
	arr := m.NewArray1D("a", 4, 1, true)
	const perNode = 25
	if err := m.Run(func(w *Worker) {
		for i := 0; i < perNode; i++ {
			w.AtomicAddF64(arr.At(0, 0), 1)
		}
		w.Barrier()
	}); err != nil {
		t.Fatal(err)
	}
	if got := m.SnapshotF64(arr.At(0, 0)); got != 8*perNode {
		t.Fatalf("sum = %v, want %d (lost updates)", got, 8*perNode)
	}
}

// TestTimeAccountingBuckets: for a balanced program, the per-node bucket
// sum matches each node's final clock (no unaccounted virtual time).
func TestTimeAccountingBuckets(t *testing.T) {
	m := New(Config{Nodes: 4, BlockSize: 32, Protocol: ProtoPredictive})
	arr := m.NewArray1D("a", 32, 1, false)
	if err := m.Run(func(w *Worker) {
		lo, hi := arr.MyRange(w)
		for it := 0; it < 3; it++ {
			w.Phase(1, func() {
				for i := lo; i < hi; i++ {
					w.WriteF64(arr.At(i, 0), float64(it))
				}
				w.Compute(100 * sim.Microsecond)
			})
			w.Phase(2, func() {
				for i := 0; i < arr.N; i++ {
					w.ReadF64(arr.At(i, 0))
				}
			})
		}
	}); err != nil {
		t.Fatal(err)
	}
	for _, n := range m.Nodes {
		total := n.Stats.Total()
		end := m.Elapsed()
		// Buckets must account for at least 95% of the node's lifetime
		// (the residue is fault-retry tag checks charged nowhere).
		if total < end*90/100 || total > end {
			t.Fatalf("node %d accounted %v of %v", n.ID, total, end)
		}
	}
}

func TestRangeCoversExactly(t *testing.T) {
	m := New(Config{Nodes: 3, BlockSize: 32})
	seen := make([]int, 10)
	if err := m.Run(func(w *Worker) {
		lo, hi := w.Range(10)
		for i := lo; i < hi; i++ {
			seen[i]++
		}
		w.Barrier()
	}); err != nil {
		t.Fatal(err)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("item %d covered %d times", i, c)
		}
	}
}

func TestMachineRunTwiceFails(t *testing.T) {
	m := New(Config{Nodes: 1, BlockSize: 32})
	if err := m.Run(func(w *Worker) {}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(func(w *Worker) {}); err == nil {
		t.Fatal("second Run must fail")
	}
}

func TestUnknownProtocolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Nodes: 1, BlockSize: 32, Protocol: "bogus"})
}
