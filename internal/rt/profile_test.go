package rt

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"presto/internal/causal"
)

// profProgram is a small cross-node workload exercising phases, faults,
// barriers and (under the predictive protocol) pre-sends.
func profProgram(arr *Array1D, arrLen int) Program {
	return func(w *Worker) {
		for it := 0; it < 3; it++ {
			w.Phase(1, func() {
				lo, hi := w.Range(arrLen)
				for i := lo; i < hi; i++ {
					w.Compute(200)
					v := w.ReadF64(arr.At((i+1)%arrLen, 0))
					w.WriteF64(arr.At(i, 0), v+1)
				}
			})
		}
	}
}

func buildProf(t *testing.T, cfg Config) *Machine {
	t.Helper()
	m := New(cfg)
	arr := m.NewArray1D("a", 16, 1, true)
	m.NamePhase(1, "sweep")
	if err := m.Run(profProgram(arr, 16)); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestProfileInvariant runs the workload under every protocol on both
// engines and checks the load-bearing invariants: per-node buckets sum
// exactly to the node's simulated time, and (serial) the critical-path
// length equals the end-to-end elapsed time.
func TestProfileInvariant(t *testing.T) {
	for _, proto := range []ProtocolKind{ProtoStache, ProtoPredictive, ProtoUpdate} {
		for _, eng := range []EngineKind{EngineSerial, EngineParallel} {
			t.Run(string(proto)+"/"+string(eng), func(t *testing.T) {
				m := buildProf(t, Config{Nodes: 4, BlockSize: 32, Protocol: proto, Engine: eng, Profile: true})
				p, err := m.Profile("test")
				if err != nil {
					t.Fatal(err)
				}
				if err := p.Validate(); err != nil {
					t.Fatal(err)
				}
				if eng == EngineSerial && p.Path.LengthNS != int64(m.Elapsed()) {
					t.Fatalf("critical path %d != elapsed %d", p.Path.LengthNS, int64(m.Elapsed()))
				}
				if eng == EngineParallel && p.Flight == nil {
					t.Fatal("parallel run produced no engine flight record")
				}
			})
		}
	}
}

// TestProfileDoesNotPerturb checks that turning the profiler on changes
// no simulated result: breakdowns, counters, metrics registry and the
// kernel event statistics must be byte-identical.
func TestProfileDoesNotPerturb(t *testing.T) {
	base := buildProf(t, Config{Nodes: 4, BlockSize: 32, Protocol: ProtoPredictive})
	prof := buildProf(t, Config{Nodes: 4, BlockSize: 32, Protocol: ProtoPredictive, Profile: true})
	if !reflect.DeepEqual(base.Breakdown(), prof.Breakdown()) {
		t.Errorf("breakdown changed with profiler on:\n%+v\n%+v", base.Breakdown(), prof.Breakdown())
	}
	if base.Counters() != prof.Counters() {
		t.Errorf("counters changed with profiler on")
	}
	b1, _ := json.Marshal(base.Report())
	b2, _ := json.Marshal(prof.Report())
	if !bytes.Equal(b1, b2) {
		t.Errorf("metrics report changed with profiler on")
	}
}

// TestProfileSerialParallelAgree checks the attribution itself is
// engine-independent: the same workload profiled under both engines
// yields identical per-node buckets and critical paths (the engine
// flight record is the only parallel-specific addition).
func TestProfileSerialParallelAgree(t *testing.T) {
	ser := buildProf(t, Config{Nodes: 4, BlockSize: 32, Protocol: ProtoStache, Profile: true})
	par := buildProf(t, Config{Nodes: 4, BlockSize: 32, Protocol: ProtoStache, Engine: EngineParallel, Profile: true})
	ps, err := ser.Profile("test")
	if err != nil {
		t.Fatal(err)
	}
	pp, err := par.Profile("test")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ps.PerNode, pp.PerNode) {
		t.Errorf("per-node attribution differs across engines:\nserial   %+v\nparallel %+v", ps.PerNode, pp.PerNode)
	}
	pp.Path.Truncated = ps.Path.Truncated // identical by construction; explicit for clarity
	if !reflect.DeepEqual(ps.Path, pp.Path) {
		t.Errorf("critical path differs across engines")
	}
}

// TestProfileJSONRoundTrip marshals a real profile and parses it back:
// the profile.json schema must survive a round trip with nothing lost
// (the contract internal/predict will rely on).
func TestProfileJSONRoundTrip(t *testing.T) {
	m := buildProf(t, Config{Nodes: 4, BlockSize: 32, Protocol: ProtoPredictive, Engine: EngineParallel, Profile: true})
	p, err := m.Profile("test")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back causal.Profile
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped profile fails validation: %v", err)
	}
	raw2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Fatal("profile.json round trip is lossy")
	}
	var render bytes.Buffer
	p.Render(&render)
	if render.Len() == 0 {
		t.Fatal("Render produced no output")
	}
}
