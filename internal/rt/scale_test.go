// 1024-node scale tests: the tentpole guarantee that a kilonode machine
// completes under every engine, scheduler and storage backend with
// byte-identical results, on each hierarchical topology family.
package rt_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"presto/internal/blockstate"
	"presto/internal/check"
	"presto/internal/network"
	"presto/internal/rt"
	"presto/internal/sim"
)

// groupExchangeProg is the scale workload: every node writes its own
// slot, then reads a window of slots owned by the next group over. Each
// home's readers all sit in one remote group, so the pre-send walk owes
// several bulks to that group per phase — multi-part aggregation
// traffic, O(nodes) total work.
func groupExchangeProg(m *rt.Machine, iters int) rt.Program {
	n := m.Cfg.Nodes
	gs := m.Cfg.Net.GroupSize
	arr := m.NewArray1D("gx", n, 1, true)
	return func(w *rt.Worker) {
		w.WriteF64(arr.At(w.ID, 0), float64(w.ID+1))
		w.Barrier()
		next := (w.ID/gs + 1) % (n / gs) * gs // first node of the next group
		s := 0.0
		for it := 0; it < iters; it++ {
			w.Phase(1, func() {
				w.WriteF64(arr.At(w.ID, 0), float64(w.ID+it)+s)
				w.Compute(5 * sim.Microsecond)
			})
			w.Phase(2, func() {
				s = 0
				for j := 0; j < 6; j++ {
					s += w.ReadF64(arr.At(next+(w.ID+j)%gs, 0))
				}
				s /= float64(n)
				w.Compute(5 * sim.Microsecond)
			})
		}
	}
}

// run1024 executes prog on a 1024-node machine and returns the machine
// plus its serialized report (the fingerprint).
func run1024(t *testing.T, cfg rt.Config, prog func(*rt.Machine, int) rt.Program, iters int) (*rt.Machine, []byte) {
	t.Helper()
	m := rt.New(cfg)
	if err := m.Run(prog(m, iters)); err != nil {
		t.Fatalf("run (engine=%s sched=%s storage=%s net=%v): %v",
			cfg.Engine, cfg.Sched, cfg.Storage, cfg.Net.ExpectNodes(), err)
	}
	rep, err := json.Marshal(m.Report())
	if err != nil {
		t.Fatal(err)
	}
	return m, rep
}

// TestScale1024Combos runs the full {engine} x {scheduler} x {storage}
// matrix on an aggregated 1024-node two-level cluster. All eight
// fingerprints must be byte-identical: engines, schedulers and storage
// backends are performance knobs, never semantic ones.
func TestScale1024Combos(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-node matrix skipped in -short")
	}
	net, err := network.Preset("cluster:16x64")
	if err != nil {
		t.Fatal(err)
	}
	base := rt.Config{Nodes: 1024, BlockSize: 32, Net: net,
		Protocol: rt.ProtoPredictive, Aggregate: true}
	var ref []byte
	var refName string
	for _, engine := range []rt.EngineKind{rt.EngineSerial, rt.EngineParallel} {
		for _, sched := range []rt.SchedKind{rt.SchedWheel, rt.SchedHeap} {
			for _, storage := range []blockstate.Kind{blockstate.Dense, blockstate.MapRef} {
				name := fmt.Sprintf("%s/%s/%s", engine, sched, storage)
				c := base
				c.Engine = engine
				c.Sched = sched
				c.Storage = storage
				m, rep := run1024(t, c, groupExchangeProg, 3)
				if ref == nil {
					ref, refName = rep, name
					cs := m.Counters()
					if cs.AggMsgs == 0 {
						t.Fatal("aggregated 1024-node run sent no aggregates")
					}
					if cs.AggEntriesOut != cs.AggEntriesIn {
						t.Fatalf("conservation broken at 1024 nodes: %d out, %d in",
							cs.AggEntriesOut, cs.AggEntriesIn)
					}
					if vs := check.Accounting(m); len(vs) != 0 {
						t.Fatalf("accounting violations: %v", vs)
					}
				} else if !bytes.Equal(ref, rep) {
					t.Fatalf("%s fingerprint diverges from %s", name, refName)
				}
			}
		}
	}
}

// TestScale1024Topologies completes a 1024-node run on each hierarchical
// topology family — mesh:32x32 (flat, distance-dependent transit) and
// fattree:5 (4-ary, 256 leaf groups) — under both engines, byte-identical.
func TestScale1024Topologies(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-node topology sweep skipped in -short")
	}
	for _, spec := range []struct {
		net string
		agg bool
	}{
		{"mesh:32x32", false},
		{"fattree:5", true},
	} {
		net, err := network.Preset(spec.net)
		if err != nil {
			t.Fatal(err)
		}
		base := rt.Config{Nodes: 1024, BlockSize: 32, Net: net,
			Protocol: rt.ProtoPredictive, Aggregate: spec.agg}
		_, serial := run1024(t, base, neighborProg, 2)
		c := base
		c.Engine = rt.EngineParallel
		m, par := run1024(t, c, neighborProg, 2)
		if !bytes.Equal(serial, par) {
			t.Fatalf("%s: parallel fingerprint diverges from serial", spec.net)
		}
		if vs := check.Machine(m); len(vs) != 0 {
			t.Fatalf("%s: coherence violations: %v", spec.net, vs)
		}
	}
}

// TestScale1024NodeCountValidation pins the topology/node-count contract
// at scale: a preset that fixes the machine size rejects a mismatched
// Nodes, and group tiling still binds.
func TestScale1024NodeCountValidation(t *testing.T) {
	for _, tc := range []struct {
		net   string
		nodes int
		ok    bool
	}{
		{"mesh:32x32", 1024, true},
		{"mesh:32x32", 512, false},
		{"fattree:5", 1024, true},
		{"fattree:5", 1023, false},
		{"cluster:16x64", 1024, true},
		{"cluster:16x64", 1000, false},
	} {
		net, err := network.Preset(tc.net)
		if err != nil {
			t.Fatal(err)
		}
		m := rt.New(rt.Config{Nodes: tc.nodes, Net: net})
		err = m.Run(func(w *rt.Worker) { w.Barrier() })
		if tc.ok && err != nil {
			t.Fatalf("%s/%d rejected: %v", tc.net, tc.nodes, err)
		}
		if !tc.ok && err == nil {
			t.Fatalf("%s/%d accepted, want node-count error", tc.net, tc.nodes)
		}
	}
}
