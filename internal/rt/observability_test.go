package rt

import (
	"testing"

	"presto/internal/trace"
)

// presendPipeline runs a deterministic 2-node pipeline: node 0 writes K
// blocks it homes each iteration, node 1 reads them. From the second
// iteration on, the predictive protocol pre-sends every block node 1
// will read, so its read faults in the consumer phase occur only in
// iteration 0. afterIters, when non-nil, runs on every worker after the
// iteration loop (behind a barrier).
func presendPipeline(t *testing.T, iters int, afterIters func(w *Worker)) *Machine {
	t.Helper()
	m := New(Config{Nodes: 2, BlockSize: 32, Protocol: ProtoPredictive, Trace: 64})
	// 16 elements x 8B = 4 blocks; node 0 homes elements 0..7 (2 blocks).
	arr := m.NewArray1D("x", 16, 1, false)
	err := m.Run(func(w *Worker) {
		for it := 0; it < iters; it++ {
			w.Phase(1, func() {
				if w.ID == 0 {
					for i := 0; i < 8; i++ {
						w.WriteF64(arr.At(i, 0), float64(it*100+i))
					}
				}
			})
			w.Phase(2, func() {
				if w.ID == 1 {
					for i := 0; i < 8; i++ {
						if got := w.ReadF64(arr.At(i, 0)); got != float64(it*100+i) {
							t.Errorf("iter %d elem %d = %v", it, i, got)
						}
					}
				}
			})
		}
		if afterIters != nil {
			w.Barrier()
			afterIters(w)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPresendHitAccountingExact(t *testing.T) {
	const iters = 4
	m := presendPipeline(t, iters, nil)
	consumer := m.Nodes[1]
	ph := consumer.Met.Phases.Lookup(2)
	if ph == nil {
		t.Fatal("consumer recorded no phase-2 stats")
	}
	// Node 0 homes 2 blocks; iterations 1..3 pre-send both, and every
	// pre-sent block is consumed before any fault.
	const wantPresends = 2 * (iters - 1)
	if ph.PresendsIn != wantPresends || ph.PresendHits != wantPresends {
		t.Fatalf("phase 2 presends in/hits = %d/%d, want %d/%d",
			ph.PresendsIn, ph.PresendHits, wantPresends, wantPresends)
	}
	// Only iteration 0 faults: one read fault per producer-homed block.
	if ph.ReadFaults != 2 || ph.WriteFaults != 0 {
		t.Fatalf("phase 2 faults = %d read, %d write", ph.ReadFaults, ph.WriteFaults)
	}
	if ph.Iters != iters {
		t.Fatalf("phase 2 iters = %d", ph.Iters)
	}
	if got := ph.Coverage(); got != 0.75 {
		t.Fatalf("coverage = %v, want 0.75 (6 hits / (6 hits + 2 faults))", got)
	}
	if got := ph.Accuracy(); got != 1.0 {
		t.Fatalf("accuracy = %v, want 1.0", got)
	}
	// Node-global counters agree and nothing went stale.
	if got := consumer.Met.PresendsIn.Value(); got != wantPresends {
		t.Fatalf("global presends_in = %d", got)
	}
	if got := consumer.Met.PresendHits.Value(); got != wantPresends {
		t.Fatalf("global presend_hits = %d", got)
	}
	if got := consumer.Met.PresendsStale.Value(); got != 0 {
		t.Fatalf("presends_stale = %d", got)
	}
	// The machine-level breakdown aggregates the same numbers.
	var stat *PhaseStat
	for _, p := range m.PhaseBreakdown() {
		if p.Phase == 2 {
			q := p
			stat = &q
		}
	}
	if stat == nil {
		t.Fatal("phase 2 missing from PhaseBreakdown")
	}
	if stat.PresendsIn != wantPresends || stat.PresendHits != wantPresends || stat.Faults() != 2 {
		t.Fatalf("breakdown phase 2 = %+v", stat)
	}
}

func TestFlushSchedulesResetsHitCounters(t *testing.T) {
	m := presendPipeline(t, 4, func(w *Worker) {
		w.FlushSchedules(2)
	})
	consumer := m.Nodes[1]
	ph := consumer.Met.Phases.Lookup(2)
	if ph == nil {
		t.Fatal("consumer recorded no phase-2 stats")
	}
	if ph.PresendsIn != 0 || ph.PresendHits != 0 {
		t.Fatalf("flush left phase 2 presends in/hits = %d/%d", ph.PresendsIn, ph.PresendHits)
	}
	// Faults and timing survive the flush; only schedule-hit counters
	// restart with the rebuilt schedule.
	if ph.ReadFaults != 2 {
		t.Fatalf("flush clobbered fault counts: %d", ph.ReadFaults)
	}
	// A full flush (id < 0) also clears the node-global counters.
	m2 := presendPipeline(t, 4, func(w *Worker) {
		w.FlushSchedules(-1)
	})
	c2 := m2.Nodes[1]
	if c2.Met.PresendsIn.Value() != 0 || c2.Met.PresendHits.Value() != 0 {
		t.Fatalf("full flush left global counters %d/%d",
			c2.Met.PresendsIn.Value(), c2.Met.PresendHits.Value())
	}
}

func TestPhaseTraceSpans(t *testing.T) {
	m := presendPipeline(t, 2, nil)
	begins, ends := 0, 0
	for _, e := range m.Ring.Events() {
		switch e.Kind {
		case trace.PhaseBegin:
			begins++
			if e.Phase != 1 && e.Phase != 2 {
				t.Fatalf("span for unknown phase %d", e.Phase)
			}
		case trace.PhaseEnd:
			ends++
		}
	}
	if begins == 0 || begins != ends {
		t.Fatalf("phase spans unbalanced: %d begins, %d ends", begins, ends)
	}
}

func TestKernelStatsPopulated(t *testing.T) {
	m := presendPipeline(t, 2, nil)
	ks := m.Kernel.Stats()
	if ks.Events == 0 || ks.Deliveries == 0 || ks.Procs == 0 {
		t.Fatalf("kernel stats = %+v", ks)
	}
	rep := m.Report()
	if rep.Protocol != "predictive" || rep.Nodes != 2 || rep.ElapsedNS == 0 {
		t.Fatalf("report header = %+v", rep)
	}
	if len(rep.Phases) != 2 {
		t.Fatalf("report phases = %+v", rep.Phases)
	}
	if rep.Registry == nil || len(rep.Registry.Counters) == 0 {
		t.Fatal("report registry empty")
	}
}
