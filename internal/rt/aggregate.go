package rt

import (
	"fmt"

	"presto/internal/memory"
)

// Dist selects a computation/data distribution for 2-D aggregates
// (paper §4.1: C** provided block distributions on 1-D aggregates and
// row-block and tiled distributions on 2-D aggregates).
type Dist int

const (
	// RowBlock assigns contiguous bands of rows to nodes.
	RowBlock Dist = iota
	// Tiled assigns rectangular tiles to nodes.
	Tiled
)

// Grid2D is a two-dimensional aggregate of elements with a fixed number
// of float64 fields, distributed row-block or tiled.
type Grid2D struct {
	M          *Machine
	R          *memory.Region
	Rows, Cols int
	Fields     int
	Dist       Dist

	stride  int64 // bytes per element
	rowsPer int   // RowBlock rows per node
	tileR   int   // Tiled rows per tile
	tileC   int   // Tiled cols per tile
	tilesX  int   // Tiled: tiles per row of tiles (columns direction)
}

// NewGrid2D allocates a rows×cols aggregate with fields float64 members
// per element.
func (m *Machine) NewGrid2D(name string, rows, cols, fields int, dist Dist) *Grid2D {
	if rows <= 0 || cols <= 0 || fields <= 0 {
		panic(fmt.Sprintf("rt: bad grid shape %dx%dx%d", rows, cols, fields))
	}
	g := &Grid2D{
		M: m, Rows: rows, Cols: cols, Fields: fields, Dist: dist,
		stride: int64(fields) * 8,
	}
	nodes := m.Cfg.Nodes
	g.rowsPer = (rows + nodes - 1) / nodes
	// Tiled: factor the node count as close to square as possible.
	pr := 1
	for f := 1; f*f <= nodes; f++ {
		if nodes%f == 0 {
			pr = f
		}
	}
	pc := nodes / pr
	g.tileR = (rows + pr - 1) / pr
	g.tileC = (cols + pc - 1) / pc
	g.tilesX = pc
	size := int64(rows) * int64(cols) * g.stride
	g.R = m.AS.NewRegion(name, size, func(blockIdx int64) int {
		elem := blockIdx * int64(m.Cfg.BlockSize) / g.stride
		max := int64(rows)*int64(cols) - 1
		if elem > max {
			elem = max
		}
		return g.Owner(int(elem/int64(cols)), int(elem%int64(cols)))
	})
	return g
}

// Owner returns the node owning element (i,j) under the distribution.
func (g *Grid2D) Owner(i, j int) int {
	switch g.Dist {
	case Tiled:
		n := (i/g.tileR)*g.tilesX + j/g.tileC
		if n >= g.M.Cfg.Nodes {
			n = g.M.Cfg.Nodes - 1
		}
		return n
	default:
		n := i / g.rowsPer
		if n >= g.M.Cfg.Nodes {
			n = g.M.Cfg.Nodes - 1
		}
		return n
	}
}

// At returns the address of field f of element (i,j).
func (g *Grid2D) At(i, j, f int) memory.Addr {
	if i < 0 || i >= g.Rows || j < 0 || j >= g.Cols || f < 0 || f >= g.Fields {
		panic(fmt.Sprintf("rt: grid index (%d,%d,%d) out of range", i, j, f))
	}
	off := (int64(i)*int64(g.Cols)+int64(j))*g.stride + int64(f)*8
	return g.R.Addr(off)
}

// MyRows returns the half-open row interval owned by worker w (RowBlock).
func (g *Grid2D) MyRows(w *Worker) (lo, hi int) {
	lo = w.ID * g.rowsPer
	hi = lo + g.rowsPer
	if lo > g.Rows {
		lo = g.Rows
	}
	if hi > g.Rows {
		hi = g.Rows
	}
	return lo, hi
}

// MyTile returns the half-open row/col intervals owned by worker w (Tiled).
func (g *Grid2D) MyTile(w *Worker) (rlo, rhi, clo, chi int) {
	ti := w.ID / g.tilesX
	tj := w.ID % g.tilesX
	rlo, rhi = ti*g.tileR, (ti+1)*g.tileR
	clo, chi = tj*g.tileC, (tj+1)*g.tileC
	if rhi > g.Rows {
		rhi = g.Rows
	}
	if rlo > g.Rows {
		rlo = g.Rows
	}
	if chi > g.Cols {
		chi = g.Cols
	}
	if clo > g.Cols {
		clo = g.Cols
	}
	return rlo, rhi, clo, chi
}

// Array1D is a one-dimensional aggregate with a block distribution.
type Array1D struct {
	M      *Machine
	R      *memory.Region
	N      int
	Fields int

	stride int64
	per    int
}

// NewArray1D allocates an n-element aggregate with fields float64 members
// per element. padToBlock pads each element to a whole number of cache
// blocks (isolating elements from false sharing at the cost of space).
func (m *Machine) NewArray1D(name string, n, fields int, padToBlock bool) *Array1D {
	if n <= 0 || fields <= 0 {
		panic(fmt.Sprintf("rt: bad array shape %dx%d", n, fields))
	}
	a := &Array1D{M: m, N: n, Fields: fields, stride: int64(fields) * 8}
	if padToBlock {
		bs := int64(m.Cfg.BlockSize)
		a.stride = (a.stride + bs - 1) / bs * bs
	}
	a.per = (n + m.Cfg.Nodes - 1) / m.Cfg.Nodes
	size := int64(n) * a.stride
	a.R = m.AS.NewRegion(name, size, func(blockIdx int64) int {
		elem := blockIdx * int64(m.Cfg.BlockSize) / a.stride
		if elem >= int64(n) {
			elem = int64(n) - 1
		}
		return a.Owner(int(elem))
	})
	if padToBlock {
		if m.paddedStride == nil {
			m.paddedStride = map[int]int64{}
		}
		m.paddedStride[a.R.ID] = a.stride
	}
	return a
}

// PaddedStride returns the element stride of a block-padded array
// region, 0 for regions whose layout is block-size independent. A padded
// array re-pads each element to its own block(s) at whatever block size
// the machine is built with, so spatial coalescing across its element
// boundaries can never happen — the predictor's replay groups such
// regions by element instead of by coarsened offset.
func (m *Machine) PaddedStride(regionID int) int64 {
	return m.paddedStride[regionID]
}

// Owner returns the node owning element i.
func (a *Array1D) Owner(i int) int {
	n := i / a.per
	if n >= a.M.Cfg.Nodes {
		n = a.M.Cfg.Nodes - 1
	}
	return n
}

// At returns the address of field f of element i.
func (a *Array1D) At(i, f int) memory.Addr {
	if i < 0 || i >= a.N || f < 0 || f >= a.Fields {
		panic(fmt.Sprintf("rt: array index (%d,%d) out of range", i, f))
	}
	return a.R.Addr(int64(i)*a.stride + int64(f)*8)
}

// MyRange returns the half-open element interval owned by worker w.
func (a *Array1D) MyRange(w *Worker) (lo, hi int) {
	lo = w.ID * a.per
	hi = lo + a.per
	if lo > a.N {
		lo = a.N
	}
	if hi > a.N {
		hi = a.N
	}
	return lo, hi
}

// Arena is a shared-memory allocation region for dynamic structures
// (quad-trees, oct-trees). Each node allocates from its own segment, so
// allocated storage homes on the allocating node.
type Arena struct {
	M *Machine
	R *memory.Region

	segSize int64
	next    []int64 // per-node allocation cursor (segment-relative)
}

// NewArena allocates a shared arena of totalBytes split into equal
// per-node segments.
func (m *Machine) NewArena(name string, totalBytes int64) *Arena {
	nodes := int64(m.Cfg.Nodes)
	bs := int64(m.Cfg.BlockSize)
	seg := (totalBytes + nodes - 1) / nodes
	seg = (seg + bs - 1) / bs * bs // block-align segments
	a := &Arena{M: m, segSize: seg, next: make([]int64, nodes)}
	a.R = m.AS.NewRegion(name, seg*nodes, func(blockIdx int64) int {
		n := blockIdx * bs / seg
		if n >= nodes {
			n = nodes - 1
		}
		return int(n)
	})
	return a
}

// Alloc reserves bytes in node's segment. blockAlign starts the allocation
// on a cache-block boundary (isolating the object from false sharing).
// The returned address is always 8-byte aligned.
func (a *Arena) Alloc(node int, bytes int64, blockAlign bool) memory.Addr {
	if bytes <= 0 {
		panic("rt: arena alloc of non-positive size")
	}
	cur := a.next[node]
	if blockAlign {
		bs := int64(a.M.Cfg.BlockSize)
		cur = (cur + bs - 1) / bs * bs
	} else {
		cur = (cur + 7) &^ 7
	}
	if cur+bytes > a.segSize {
		panic(fmt.Sprintf("rt: arena %q segment of node %d exhausted (%d + %d > %d)",
			a.R.Name, node, cur, bytes, a.segSize))
	}
	a.next[node] = cur + bytes
	return a.R.Addr(int64(node)*a.segSize + cur)
}

// ResetNode empties one node's segment (e.g. rebuilding a tree each
// iteration into the same deterministic addresses). The caller must ensure
// no live shared pointers into the segment remain.
func (a *Arena) ResetNode(node int) { a.next[node] = 0 }

// Reset returns the arena to empty (between iterations that rebuild a
// structure from scratch). The caller must ensure no live shared pointers
// into the arena remain.
func (a *Arena) Reset() {
	for i := range a.next {
		a.next[i] = 0
	}
}

// Used reports the bytes allocated from node's segment.
func (a *Arena) Used(node int) int64 { return a.next[node] }
