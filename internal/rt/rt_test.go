package rt

import (
	"fmt"
	"math/rand"
	"testing"

	"presto/internal/memory"
	"presto/internal/sim"
)

func TestSingleNodeLocalAccess(t *testing.T) {
	m := New(Config{Nodes: 1, BlockSize: 32})
	arr := m.NewArray1D("a", 16, 1, false)
	var got float64
	if err := m.Run(func(w *Worker) {
		w.WriteF64(arr.At(3, 0), 7.5)
		got = w.ReadF64(arr.At(3, 0))
	}); err != nil {
		t.Fatal(err)
	}
	if got != 7.5 {
		t.Fatalf("got %v", got)
	}
	c := m.Counters()
	if c.ReadFaults+c.WriteFaults != 0 {
		t.Fatalf("local access faulted: %+v", c)
	}
}

func TestRemoteReadMiss(t *testing.T) {
	m := New(Config{Nodes: 2, BlockSize: 32})
	arr := m.NewArray1D("a", 2, 1, true) // one element per node
	var got float64
	if err := m.Run(func(w *Worker) {
		if w.ID == 0 {
			w.WriteF64(arr.At(0, 0), 3.25) // local
		}
		w.Barrier()
		if w.ID == 1 {
			got = w.ReadF64(arr.At(0, 0)) // remote miss
		}
		w.Barrier()
	}); err != nil {
		t.Fatal(err)
	}
	if got != 3.25 {
		t.Fatalf("remote read = %v", got)
	}
	c := m.Counters()
	if c.ReadFaults != 1 {
		t.Fatalf("read faults = %d, want 1", c.ReadFaults)
	}
	if m.Nodes[1].Stats.RemoteWait <= 0 {
		t.Fatal("no remote wait accounted")
	}
	// Latency should be in the CM-5 software-DSM ballpark.
	rw := m.Nodes[1].Stats.RemoteWait
	if rw < 50*sim.Microsecond || rw > 400*sim.Microsecond {
		t.Fatalf("remote wait = %v, outside plausible band", rw)
	}
}

func TestWriteInvalidatesReaders(t *testing.T) {
	// Producer-consumer under Stache: each transfer costs a fresh fault.
	const iters = 5
	m := New(Config{Nodes: 2, BlockSize: 32})
	arr := m.NewArray1D("a", 2, 1, true)
	vals := make([]float64, 0, iters)
	if err := m.Run(func(w *Worker) {
		for it := 0; it < iters; it++ {
			if w.ID == 0 {
				w.WriteF64(arr.At(0, 0), float64(it))
			}
			w.Barrier()
			if w.ID == 1 {
				vals = append(vals, w.ReadF64(arr.At(0, 0)))
			}
			w.Barrier()
		}
	}); err != nil {
		t.Fatal(err)
	}
	for it, v := range vals {
		if v != float64(it) {
			t.Fatalf("iteration %d read %v", it, v)
		}
	}
	c := m.Counters()
	// First write is a local hit (home starts ReadWrite); afterwards each
	// iteration pays one read fault and one (invalidating) write fault.
	if c.ReadFaults != iters {
		t.Fatalf("read faults = %d, want %d", c.ReadFaults, iters)
	}
	if c.WriteFaults != iters-1 {
		t.Fatalf("write faults = %d, want %d", c.WriteFaults, iters-1)
	}
}

func TestMigratoryBlock(t *testing.T) {
	// A block written by alternating nodes migrates; values chain.
	const iters = 6
	m := New(Config{Nodes: 2, BlockSize: 32})
	arr := m.NewArray1D("a", 2, 1, true)
	if err := m.Run(func(w *Worker) {
		for it := 0; it < iters; it++ {
			if it%2 == w.ID {
				v := w.ReadF64(arr.At(0, 0))
				w.WriteF64(arr.At(0, 0), v+1)
			}
			w.Barrier()
		}
	}); err != nil {
		t.Fatal(err)
	}
	if got := m.SnapshotF64(arr.At(0, 0)); got != float64(iters) {
		t.Fatalf("final = %v, want %d", got, iters)
	}
}

// producerConsumer runs a phase-structured producer-consumer program and
// returns the machine plus per-iteration read-fault counts on node 1.
func producerConsumer(t *testing.T, proto ProtocolKind, iters int) (*Machine, []int64) {
	t.Helper()
	m := New(Config{Nodes: 2, BlockSize: 32, Protocol: proto})
	arr := m.NewArray1D("a", 8, 1, false) // 4 elements per 32B block
	faults := make([]int64, 0, iters)
	if err := m.Run(func(w *Worker) {
		lo, hi := arr.MyRange(w)
		for it := 0; it < iters; it++ {
			w.Phase(1, func() {
				if w.ID == 0 {
					for i := lo; i < hi; i++ {
						w.WriteF64(arr.At(i, 0), float64(it*100+i))
					}
				}
			})
			before := w.Node.Stats.ReadFaults
			w.Phase(2, func() {
				if w.ID == 1 {
					for i := 0; i < arr.N/2; i++ {
						if got := w.ReadF64(arr.At(i, 0)); got != float64(it*100+i) {
							t.Errorf("iter %d elem %d = %v", it, i, got)
						}
					}
				}
			})
			if w.ID == 1 {
				faults = append(faults, w.Node.Stats.ReadFaults-before)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	return m, faults
}

func TestPredictivePresendEliminatesFaults(t *testing.T) {
	const iters = 5
	mStache, fStache := producerConsumer(t, ProtoStache, iters)
	mPred, fPred := producerConsumer(t, ProtoPredictive, iters)

	// Stache: every iteration re-faults on the invalidated blocks.
	for it := 1; it < iters; it++ {
		if fStache[it] == 0 {
			t.Fatalf("stache iteration %d had no read faults", it)
		}
	}
	// Predictive: after the first (recording) iteration, pre-send
	// satisfies the reads locally.
	if fPred[0] == 0 {
		t.Fatal("predictive first iteration should fault (recording)")
	}
	for it := 1; it < iters; it++ {
		if fPred[it] != 0 {
			t.Fatalf("predictive iteration %d still faulted %d times", it, fPred[it])
		}
	}
	cp := mPred.Counters()
	if cp.PresendsSent == 0 {
		t.Fatal("no pre-sends recorded")
	}
	if b := mPred.Breakdown(); b.Presend == 0 {
		t.Fatal("no pre-send time accounted")
	}
	// The predictive version should spend less time waiting for
	// remote data in steady state.
	bs, bp := mStache.Breakdown(), mPred.Breakdown()
	if bp.RemoteWait >= bs.RemoteWait {
		t.Fatalf("remote wait: predictive %v >= stache %v", bp.RemoteWait, bs.RemoteWait)
	}
}

func TestPresendCoalescing(t *testing.T) {
	run := func(noCoalesce bool) *Machine {
		m := New(Config{Nodes: 2, BlockSize: 32, Protocol: ProtoPredictive, NoCoalesce: noCoalesce})
		arr := m.NewArray1D("a", 64, 1, false) // 8 contiguous blocks on node 0
		if err := m.Run(func(w *Worker) {
			for it := 0; it < 3; it++ {
				w.Phase(1, func() {
					if w.ID == 0 {
						for i := 0; i < 32; i++ {
							w.WriteF64(arr.At(i, 0), float64(it+i))
						}
					}
				})
				w.Phase(2, func() {
					if w.ID == 1 {
						for i := 0; i < 32; i++ {
							w.ReadF64(arr.At(i, 0))
						}
					}
				})
			}
		}); err != nil {
			t.Fatal(err)
		}
		return m
	}
	mc := run(false)
	mn := run(true)
	cc, cn := mc.Counters(), mn.Counters()
	if cc.BulkMsgs == 0 {
		t.Fatal("coalescing produced no bulk messages")
	}
	if cn.BulkMsgs != 0 {
		t.Fatal("no-coalesce still sent bulk messages")
	}
	if cc.MsgsSent >= cn.MsgsSent {
		t.Fatalf("coalescing did not reduce messages: %d vs %d", cc.MsgsSent, cn.MsgsSent)
	}
	if mc.Breakdown().Presend >= mn.Breakdown().Presend {
		t.Fatalf("coalescing did not reduce pre-send time: %v vs %v",
			mc.Breakdown().Presend, mn.Breakdown().Presend)
	}
}

func TestConflictBlocksNotPresent(t *testing.T) {
	// Node 0 writes one half of a block while node 1 reads the other half
	// in the same phase: false sharing, recorded as a conflict and never
	// pre-sent.
	m := New(Config{Nodes: 2, BlockSize: 64, Protocol: ProtoPredictive})
	arr := m.NewArray1D("a", 8, 1, false) // 8B elements: elements 0..7 in one 64B block
	if err := m.Run(func(w *Worker) {
		for it := 0; it < 4; it++ {
			w.Phase(1, func() {
				if w.ID == 0 {
					w.WriteF64(arr.At(0, 0), float64(it))
				}
				if w.ID == 1 {
					w.ReadF64(arr.At(3, 0))
				}
			})
		}
	}); err != nil {
		t.Fatal(err)
	}
	c := m.Counters()
	if c.Conflicts == 0 {
		t.Fatal("false sharing not recorded as conflict")
	}
}

func TestReductions(t *testing.T) {
	m := New(Config{Nodes: 4, BlockSize: 32})
	var sum, max float64
	if err := m.Run(func(w *Worker) {
		sum = w.ReduceSum(float64(w.ID + 1))
		max = w.ReduceMax(float64(w.ID * 10))
	}); err != nil {
		t.Fatal(err)
	}
	if sum != 10 {
		t.Fatalf("sum = %v, want 10", sum)
	}
	if max != 30 {
		t.Fatalf("max = %v, want 30", max)
	}
}

func TestUpdateProtocolPush(t *testing.T) {
	m := New(Config{Nodes: 2, BlockSize: 32, Protocol: ProtoUpdate})
	arr := m.NewArray1D("a", 2, 1, true)
	reads := []float64{}
	if err := m.Run(func(w *Worker) {
		// Establish the consumer's copy.
		if w.ID == 1 {
			reads = append(reads, w.ReadF64(arr.At(0, 0)))
		}
		w.Barrier()
		for it := 1; it <= 3; it++ {
			if w.ID == 0 {
				w.WriteF64(arr.At(0, 0), float64(it)) // local, no invalidation
				w.PushUpdates([]memory.Addr{arr.At(0, 0)})
			}
			w.Barrier()
			w.Compute(sim.Millisecond) // let the push land
			if w.ID == 1 {
				reads = append(reads, w.ReadF64(arr.At(0, 0)))
			}
			w.Barrier()
		}
	}); err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 2, 3}
	for i, v := range reads {
		if v != want[i] {
			t.Fatalf("reads = %v, want %v", reads, want)
		}
	}
	c := m.Counters()
	// The producer never write-faults remotely and the consumer only
	// faults once (the initial fetch).
	if c.ReadFaults != 1 {
		t.Fatalf("read faults = %d, want 1", c.ReadFaults)
	}
	if c.PresendsSent == 0 {
		t.Fatal("no pushes sent")
	}
}

func TestSnapshotFollowsOwner(t *testing.T) {
	m := New(Config{Nodes: 2, BlockSize: 32})
	arr := m.NewArray1D("a", 2, 1, true)
	if err := m.Run(func(w *Worker) {
		if w.ID == 1 {
			w.WriteF64(arr.At(0, 0), 9.5) // node 1 takes ownership of node 0's block
		}
		w.Barrier()
	}); err != nil {
		t.Fatal(err)
	}
	if got := m.SnapshotF64(arr.At(0, 0)); got != 9.5 {
		t.Fatalf("snapshot = %v, want 9.5 (owner copy)", got)
	}
}

// randomProgram builds a deterministic phase-structured random workload:
// owners write their elements, then everyone reads a pseudo-random sample,
// accumulating a checksum.
func randomProgram(proto ProtocolKind, seed int64, nodes, elems, iters int) (checksum float64, elapsed sim.Time, err error) {
	m := New(Config{Nodes: nodes, BlockSize: 32, Protocol: proto})
	arr := m.NewArray1D("x", elems, 1, false)
	var local []float64
	e := m.Run(func(w *Worker) {
		lo, hi := arr.MyRange(w)
		rng := rand.New(rand.NewSource(seed + int64(w.ID)))
		var acc float64
		for it := 0; it < iters; it++ {
			w.Phase(1, func() {
				for i := lo; i < hi; i++ {
					w.WriteF64(arr.At(i, 0), float64(it)+float64(i)/1000)
				}
			})
			w.Phase(2, func() {
				for k := 0; k < elems/2; k++ {
					i := rng.Intn(elems)
					acc += w.ReadF64(arr.At(i, 0))
				}
			})
		}
		total := w.ReduceSum(acc)
		if w.ID == 0 {
			local = append(local, total)
		}
	})
	if e != nil {
		return 0, 0, e
	}
	return local[0], m.Elapsed(), nil
}

func TestProtocolEquivalence(t *testing.T) {
	// The predictive protocol must not change program results, only
	// timing. (Random reads make the sampled set iteration-stable per
	// seed, so both protocols see identical access sequences.)
	for _, seed := range []int64{1, 7, 42} {
		cs, _, err := randomProgram(ProtoStache, seed, 4, 64, 3)
		if err != nil {
			t.Fatal(err)
		}
		cp, _, err := randomProgram(ProtoPredictive, seed, 4, 64, 3)
		if err != nil {
			t.Fatal(err)
		}
		if cs != cp {
			t.Fatalf("seed %d: stache %v != predictive %v", seed, cs, cp)
		}
	}
}

func TestDeterministicElapsed(t *testing.T) {
	for _, proto := range []ProtocolKind{ProtoStache, ProtoPredictive} {
		_, e1, err := randomProgram(proto, 5, 4, 64, 3)
		if err != nil {
			t.Fatal(err)
		}
		_, e2, err := randomProgram(proto, 5, 4, 64, 3)
		if err != nil {
			t.Fatal(err)
		}
		if e1 != e2 {
			t.Fatalf("%s: non-deterministic elapsed %v vs %v", proto, e1, e2)
		}
	}
}

func TestPhaseDirectiveOverheadOnlyWhenRepeated(t *testing.T) {
	m := New(Config{Nodes: 2, BlockSize: 32, Protocol: ProtoPredictive})
	_ = m.NewArray1D("a", 4, 1, false)
	if err := m.Run(func(w *Worker) {
		w.Phase(9, func() { w.Compute(sim.Microsecond) })
	}); err != nil {
		t.Fatal(err)
	}
	if b := m.Breakdown(); b.Presend != 0 {
		t.Fatalf("first phase execution charged pre-send time: %v", b.Presend)
	}
}

func TestFlushSchedulesForcesRelearning(t *testing.T) {
	m := New(Config{Nodes: 2, BlockSize: 32, Protocol: ProtoPredictive})
	arr := m.NewArray1D("a", 8, 1, false)
	var faultsAfterFlush int64
	if err := m.Run(func(w *Worker) {
		for it := 0; it < 6; it++ {
			w.Phase(1, func() {
				if w.ID == 0 {
					for i := 0; i < 4; i++ {
						w.WriteF64(arr.At(i, 0), float64(it))
					}
				}
			})
			before := w.Node.Stats.ReadFaults
			w.Phase(2, func() {
				if w.ID == 1 {
					for i := 0; i < 4; i++ {
						w.ReadF64(arr.At(i, 0))
					}
				}
			})
			if it == 3 {
				w.FlushSchedules(-1)
			}
			if it == 4 && w.ID == 1 {
				faultsAfterFlush = w.Node.Stats.ReadFaults - before
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if faultsAfterFlush == 0 {
		t.Fatal("flush did not force re-learning faults")
	}
}

func TestManyNodesSmoke(t *testing.T) {
	// 32 nodes, modest grid, both protocols complete and agree.
	for _, proto := range []ProtocolKind{ProtoStache, ProtoPredictive} {
		m := New(Config{Nodes: 32, BlockSize: 32, Protocol: proto})
		g := m.NewGrid2D("g", 64, 64, 1, RowBlock)
		if err := m.Run(func(w *Worker) {
			lo, hi := g.MyRows(w)
			for it := 0; it < 2; it++ {
				w.Phase(1, func() {
					for i := lo; i < hi; i++ {
						for j := 0; j < g.Cols; j++ {
							w.WriteF64(g.At(i, j, 0), float64(it+i+j))
						}
					}
				})
				w.Phase(2, func() {
					var s float64
					for i := lo; i < hi; i++ {
						up := i - 1
						if up < 0 {
							up = 0
						}
						for j := 0; j < g.Cols; j++ {
							s += w.ReadF64(g.At(up, j, 0))
						}
					}
					_ = s
				})
			}
		}); err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
	}
}

func BenchmarkProducerConsumerStache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := New(Config{Nodes: 4, BlockSize: 32})
		arr := m.NewArray1D("a", 32, 1, false)
		if err := m.Run(func(w *Worker) {
			lo, hi := arr.MyRange(w)
			for it := 0; it < 3; it++ {
				w.Phase(1, func() {
					for i := lo; i < hi; i++ {
						w.WriteF64(arr.At(i, 0), float64(it))
					}
				})
				w.Phase(2, func() {
					for i := 0; i < arr.N; i++ {
						w.ReadF64(arr.At(i, 0))
					}
				})
			}
		}); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = fmt.Sprintf // keep fmt for debugging edits
