// Engine-configuration tests for the multi-core parallel engine: worker
// validation, cluster lane derivation, and identity of the pair-matrix
// lookahead with the serial reference on a two-level interconnect.
package rt_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"presto/internal/network"
	"presto/internal/rt"
	"presto/internal/sim"
)

// neighborProg is a small SPMD neighbor-exchange program: every node
// writes its slot, then repeatedly reads both neighbors' slots and
// accumulates — plenty of cross-node (and, clustered, cross-group)
// protocol traffic.
func neighborProg(m *rt.Machine, iters int) rt.Program {
	n := m.Cfg.Nodes
	arr := m.NewArray1D("ring", n, 1, true)
	return func(w *rt.Worker) {
		w.WriteF64(arr.At(w.ID, 0), float64(w.ID+1))
		w.Barrier()
		for it := 0; it < iters; it++ {
			w.Phase(1, func() {
				l := w.ReadF64(arr.At((w.ID+n-1)%n, 0))
				r := w.ReadF64(arr.At((w.ID+1)%n, 0))
				w.Compute(20 * sim.Microsecond)
				w.WriteF64(arr.At(w.ID, 0), l+r)
			})
			w.Barrier()
		}
	}
}

// runNeighbor executes the neighbor exchange under one engine config and
// returns the externally observable artifacts.
func runNeighbor(t *testing.T, cfg rt.Config) (sim.Time, []byte) {
	t.Helper()
	m := rt.New(cfg)
	if err := m.Run(neighborProg(m, 6)); err != nil {
		t.Fatalf("run (%+v): %v", cfg, err)
	}
	rep, err := json.Marshal(m.Report())
	if err != nil {
		t.Fatal(err)
	}
	return m.Elapsed(), rep
}

// TestClusterEngineIdentity: on a clustered interconnect the pair-matrix
// lookahead coarsens lanes to groups and widens windows to the top-level
// transit — and the result must still be byte-identical to the serial
// engine and to the global-lookahead reference, for every worker count.
func TestClusterEngineIdentity(t *testing.T) {
	net, err := network.Preset("cluster:4x2")
	if err != nil {
		t.Fatal(err)
	}
	base := rt.Config{Nodes: 8, BlockSize: 32, Net: net}
	elapsed, report := runNeighbor(t, base)
	for _, tc := range []struct {
		name string
		la   rt.LookaheadKind
		w    int
		ns   bool
	}{
		{"pair-w1", rt.LookaheadPair, 1, false},
		{"pair-w4", rt.LookaheadPair, 4, false},
		{"pair-w4-nosteal", rt.LookaheadPair, 4, true},
		{"global-w4", rt.LookaheadGlobal, 4, false},
		{"auto", rt.LookaheadPair, 0, false},
	} {
		c := base
		c.Engine = rt.EngineParallel
		c.Lookahead = tc.la
		c.Workers = tc.w
		c.NoSteal = tc.ns
		e, rep := runNeighbor(t, c)
		if e != elapsed {
			t.Fatalf("%s: elapsed %v, serial %v", tc.name, e, elapsed)
		}
		if !bytes.Equal(rep, report) {
			t.Fatalf("%s: metrics report diverges from serial:\n%s\nvs\n%s", tc.name, rep, report)
		}
	}
}

// TestWorkersValidation pins the -workers contract: negatives and
// requests beyond the lane count are errors, 0 means auto.
func TestWorkersValidation(t *testing.T) {
	net, err := network.Preset("cluster:2x2")
	if err != nil {
		t.Fatal(err)
	}
	run := func(cfg rt.Config) error {
		m := rt.New(cfg)
		return m.Run(func(w *rt.Worker) { w.Barrier() })
	}
	err = run(rt.Config{Nodes: 4, Engine: rt.EngineParallel, Workers: -1})
	if err == nil || !strings.Contains(err.Error(), "negative worker count") {
		t.Fatalf("negative workers: %v", err)
	}
	// 4 flat nodes = 4 lanes: 5 workers cannot all execute.
	err = run(rt.Config{Nodes: 4, Engine: rt.EngineParallel, Workers: 5})
	if err == nil || !strings.Contains(err.Error(), "exceed") {
		t.Fatalf("workers beyond flat lanes: %v", err)
	}
	// Clustered, 4 nodes coarsen to 2 lanes: 3 workers is now too many...
	err = run(rt.Config{Nodes: 4, Net: net, Engine: rt.EngineParallel, Workers: 3})
	if err == nil || !strings.Contains(err.Error(), "2 lanes") {
		t.Fatalf("workers beyond cluster lanes: %v", err)
	}
	// ...while auto clamps itself.
	if err := run(rt.Config{Nodes: 4, Net: net, Engine: rt.EngineParallel}); err != nil {
		t.Fatalf("auto workers: %v", err)
	}
}

// TestClusterTopologyValidation: the machine's node count must tile the
// clustered interconnect exactly, under either engine.
func TestClusterTopologyValidation(t *testing.T) {
	net, err := network.Preset("cluster:4x2")
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []rt.EngineKind{rt.EngineSerial, rt.EngineParallel} {
		m := rt.New(rt.Config{Nodes: 6, Net: net, Engine: engine}) // 6 != 4x2
		if err := m.Run(func(w *rt.Worker) {}); err == nil {
			t.Fatalf("%s: 6 nodes on a 4x2 cluster accepted", engine)
		}
		odd, _ := network.Cluster(3, 2)
		m = rt.New(rt.Config{Nodes: 7, Net: odd, Engine: engine})
		if err := m.Run(func(w *rt.Worker) {}); err == nil || !strings.Contains(err.Error(), "tile") {
			t.Fatalf("%s: 7 nodes in groups of 2 accepted: %v", engine, err)
		}
	}
}

// TestExecInfo pins the execution-facts surface dsmrun -metrics attaches.
func TestExecInfo(t *testing.T) {
	net, err := network.Preset("cluster:4x2")
	if err != nil {
		t.Fatal(err)
	}
	m := rt.New(rt.Config{Nodes: 8, Net: net, Engine: rt.EngineParallel, Workers: 2})
	if err := m.Run(neighborProg(m, 1)); err != nil {
		t.Fatal(err)
	}
	e := m.ExecInfo()
	if e.Engine != "parallel" || e.Workers != 2 || e.Lanes != 4 || e.Lookahead != "pair" {
		t.Fatalf("exec info %+v", e)
	}
	if e.GOMAXPROCS <= 0 || e.NumCPU <= 0 {
		t.Fatalf("host shape missing: %+v", e)
	}
	// Report itself must stay host-independent: Exec is attached by the
	// caller, never by Report.
	if m.Report().Exec != nil {
		t.Fatal("Report() filled Exec; it must stay deterministic")
	}
}

// TestStealReverseRunMutationRejectedOnSerial: the engine mutation is
// meaningless without the parallel engine and must be rejected rather
// than silently ignored.
func TestStealReverseRunMutationRejectedOnSerial(t *testing.T) {
	m := rt.New(rt.Config{Nodes: 2, ChaosMutation: rt.MutationStealReverseRun})
	err := m.Run(func(w *rt.Worker) { w.Barrier() })
	if err == nil || !strings.Contains(err.Error(), "parallel") {
		t.Fatalf("serial engine accepted %s: %v", rt.MutationStealReverseRun, err)
	}
}
