package rt

import (
	"fmt"
	"sort"

	"presto/internal/causal"
	"presto/internal/sim"
	"presto/internal/trace"
)

// nodeProf holds one node's attribution slots: the compute processor's
// time split per parallel phase (outside = between phases), plus the
// protocol processor's own timeline. Slots are written by the node's
// processors, which share a lane under the parallel engine, so no
// synchronization is needed.
type nodeProf struct {
	outside sim.AttrSlot
	phases  map[int]*sim.AttrSlot
	proto   sim.AttrSlot
}

// slot returns the attribution slot for phase id (-1 = outside any
// phase), creating per-phase slots on first use. Installed as the node's
// Prof callback.
func (np *nodeProf) slot(id int) *sim.AttrSlot {
	if id < 0 {
		return &np.outside
	}
	s := np.phases[id]
	if s == nil {
		if np.phases == nil {
			np.phases = make(map[int]*sim.AttrSlot)
		}
		s = new(sim.AttrSlot)
		np.phases[id] = s
	}
	return s
}

// Profile assembles the causal profile after a run with Cfg.Profile on:
// per-node exact time attribution (per phase), the critical path walked
// backward from the last-finishing compute processor, and — under the
// parallel engine — the engine's flight data. The app name is recorded
// in the artifact.
func (m *Machine) Profile(app string) (*causal.Profile, error) {
	if !m.ran {
		return nil, fmt.Errorf("rt: Profile before Run")
	}
	if m.prof == nil {
		return nil, fmt.Errorf("rt: profiling was not enabled (Config.Profile)")
	}
	p := &causal.Profile{
		Schema:    causal.SchemaVersion,
		App:       app,
		Protocol:  string(m.Cfg.Protocol),
		Nodes:     m.Cfg.Nodes,
		BlockSize: m.Cfg.BlockSize,
		Engine:    string(m.Cfg.Engine),
		ElapsedNS: int64(m.Elapsed()),
	}
	for i, np := range m.prof {
		n := causal.NodeProfile{
			Node:         i,
			TotalNS:      int64(m.Nodes[i].Compute.Now()),
			ProtoTotalNS: int64(m.Nodes[i].ProtoProc.Now()),
			Proto:        causal.FromSlot(&np.proto),
		}
		n.Phases = append(n.Phases, causal.PhaseAttr{
			Phase: -1, Name: "(outside)", Buckets: causal.FromSlot(&np.outside),
		})
		ids := make([]int, 0, len(np.phases))
		for id := range np.phases {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			n.Phases = append(n.Phases, causal.PhaseAttr{
				Phase: id, Name: m.PhaseName(id), Buckets: causal.FromSlot(np.phases[id]),
			})
		}
		for _, ph := range n.Phases {
			n.Buckets.Add(ph.Buckets)
		}
		p.PerNode = append(p.PerNode, n)
	}
	// Critical path: walk backward from the compute processor that
	// defines Elapsed (the last to finish; lowest node wins ties, which
	// is deterministic).
	last := 0
	for i, e := range m.ends {
		if e > m.ends[last] {
			last = i
		}
	}
	path, err := causal.ComputePath(m.Kernel, m.Nodes[last].Compute.ID(), m.Elapsed())
	if err != nil {
		return nil, err
	}
	p.Path = causal.PathProfileOf(path, 40)
	if f := m.Kernel.EngineFlightRecord(); f != nil {
		hist := f.EventHist[:]
		for len(hist) > 0 && hist[len(hist)-1] == 0 {
			hist = hist[:len(hist)-1]
		}
		kind := string(m.Cfg.Lookahead)
		if kind == "" {
			kind = string(LookaheadPair)
		}
		p.Flight = &causal.EngineProfile{
			Workers:       m.workers,
			Lanes:         m.lanes,
			Lookahead:     kind,
			LookaheadNS:   int64(m.lookahead),
			Windows:       f.Windows,
			Events:        f.Events,
			SoloWindows:   f.SoloWindows,
			MergedWindows: f.MergedWindows,
			Steals:        f.Steals,
			LaneHist:      append([]int64(nil), f.LaneHist...),
			EventHist:     append([]int64(nil), hist...),
			OpenWallNS:    f.OpenNS,
			ExecWallNS:    f.ExecNS,
			CommitWallNS:  f.CommitNS,
		}
	}
	return p, nil
}

// CriticalPath recomputes the full critical path (Profile keeps only a
// condensed form). Used by the Chrome trace overlay.
func (m *Machine) CriticalPath() (causal.Path, error) {
	if !m.ran {
		return causal.Path{}, fmt.Errorf("rt: CriticalPath before Run")
	}
	last := 0
	for i, e := range m.ends {
		if e > m.ends[last] {
			last = i
		}
	}
	return causal.ComputePath(m.Kernel, m.Nodes[last].Compute.ID(), m.Elapsed())
}

// PathOverlay converts a critical path into the Chrome trace sink's
// overlay form (trace.Chrome.SetCriticalPath).
func PathOverlay(p causal.Path) []trace.PathSeg {
	out := make([]trace.PathSeg, len(p.Segments))
	for i, s := range p.Segments {
		out[i] = trace.PathSeg{
			Name: s.Name, Kind: s.Kind,
			Start: int64(s.Start), End: int64(s.End),
		}
	}
	return out
}
