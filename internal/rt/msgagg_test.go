// Node-leader message aggregation tests: memory invariance, coalesced-
// entry conservation, cross-group traffic reduction, engine identity,
// and the agg-drop-entry mutation contract.
package rt_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"presto/internal/check"
	"presto/internal/memory"
	"presto/internal/network"
	"presto/internal/rt"
	"presto/internal/sim"
)

// broadcastProg alternates a write phase (every node updates its own
// slot) with a read phase (every node reads all slots). Under the
// predictive protocol each home's read-phase schedule lists every other
// node as a reader, so the pre-send walk owes one bulk to each of the
// other nodes — several per remote cluster group, exactly the traffic
// shape node-leader aggregation coalesces.
func broadcastProg(m *rt.Machine, iters int) rt.Program {
	n := m.Cfg.Nodes
	arr := m.NewArray1D("bcast", n, 1, true)
	return func(w *rt.Worker) {
		w.WriteF64(arr.At(w.ID, 0), float64(w.ID+1))
		w.Barrier()
		s := 0.0
		for it := 0; it < iters; it++ {
			// Phase 1 writes only, phase 2 reads only: the read phase's
			// schedule stays conflict-free, so every home pre-sends its
			// slot to all the other nodes.
			w.Phase(1, func() {
				w.WriteF64(arr.At(w.ID, 0), float64(w.ID+it)+s/float64(n))
				w.Compute(5 * sim.Microsecond)
			})
			w.Phase(2, func() {
				s = 0
				for i := 0; i < n; i++ {
					s += w.ReadF64(arr.At(i, 0))
				}
				w.Compute(5 * sim.Microsecond)
			})
		}
	}
}

// gatherProg exercises the inspector-executor path: every node gathers
// every other node's slot in one step, so each home answers a burst of
// 31 MsgGetBulk requests — its replies to one remote group coalesce via
// the protocol loop's idle flush.
func gatherProg(m *rt.Machine, iters int) rt.Program {
	n := m.Cfg.Nodes
	arr := m.NewArray1D("gath", n, 1, true)
	return func(w *rt.Worker) {
		w.WriteF64(arr.At(w.ID, 0), float64(w.ID+1))
		w.Barrier()
		for it := 0; it < iters; it++ {
			addrs := make([]memory.Addr, 0, n)
			for i := 0; i < n; i++ {
				addrs = append(addrs, arr.At(i, 0))
			}
			w.Gather(addrs)
			s := 0.0
			for i := 0; i < n; i++ {
				s += w.ReadF64(arr.At(i, 0))
			}
			w.Compute(5 * sim.Microsecond)
			w.Barrier()
			w.WriteF64(arr.At(w.ID, 0), s+float64(w.ID))
			w.Barrier()
		}
	}
}

func runAgg(t *testing.T, cfg rt.Config, prog func(*rt.Machine, int) rt.Program, iters int) *rt.Machine {
	t.Helper()
	m := rt.New(cfg)
	if err := m.Run(prog(m, iters)); err != nil {
		t.Fatalf("run (%+v): %v", cfg, err)
	}
	return m
}

// TestAggregationPredictive pins the tentpole contract on the pre-send
// path: with aggregation on, final memory is byte-identical, every
// coalesced entry is conserved, and cross-group message traffic drops.
func TestAggregationPredictive(t *testing.T) {
	net, err := network.Preset("cluster:4x8")
	if err != nil {
		t.Fatal(err)
	}
	base := rt.Config{Nodes: 32, BlockSize: 32, Net: net, Protocol: rt.ProtoPredictive}
	off := runAgg(t, base, broadcastProg, 4)
	on := runAgg(t, func() rt.Config { c := base; c.Aggregate = true; return c }(), broadcastProg, 4)

	if hOff, hOn := off.HashMemory(), on.HashMemory(); hOff != hOn {
		t.Fatalf("memory hash diverges: off %#x, on %#x", hOff, hOn)
	}
	cOff, cOn := off.Counters(), on.Counters()
	if cOff.AggMsgs != 0 || cOff.AggEntriesOut != 0 {
		t.Fatalf("unaggregated run shows aggregation traffic: %+v", cOff)
	}
	if cOn.AggMsgs == 0 {
		t.Fatal("aggregated run sent no aggregates (workload not exercising the layer)")
	}
	if cOn.AggEntriesOut != cOn.AggEntriesIn {
		t.Fatalf("conservation broken: %d out, %d in", cOn.AggEntriesOut, cOn.AggEntriesIn)
	}
	if cOn.CrossMsgs >= cOff.CrossMsgs {
		t.Fatalf("aggregation did not reduce cross-group messages: %d -> %d", cOff.CrossMsgs, cOn.CrossMsgs)
	}
	for _, m := range []*rt.Machine{off, on} {
		if vs := check.Machine(m); len(vs) != 0 {
			t.Fatalf("coherence violations: %v", vs)
		}
		if vs := check.Accounting(m); len(vs) != 0 {
			t.Fatalf("accounting violations: %v", vs)
		}
	}
}

// TestAggregationGatherStache covers the gather-reply path under plain
// Stache: aggregated gathers complete (no one waits on a parked
// buffer), memory matches, and entries are conserved.
func TestAggregationGatherStache(t *testing.T) {
	net, err := network.Preset("cluster:4x8")
	if err != nil {
		t.Fatal(err)
	}
	base := rt.Config{Nodes: 32, BlockSize: 32, Net: net}
	off := runAgg(t, base, gatherProg, 3)
	on := runAgg(t, func() rt.Config { c := base; c.Aggregate = true; return c }(), gatherProg, 3)
	if hOff, hOn := off.HashMemory(), on.HashMemory(); hOff != hOn {
		t.Fatalf("memory hash diverges: off %#x, on %#x", hOff, hOn)
	}
	c := on.Counters()
	if c.AggEntriesOut != c.AggEntriesIn {
		t.Fatalf("conservation broken: %d out, %d in", c.AggEntriesOut, c.AggEntriesIn)
	}
	if vs := check.Accounting(on); len(vs) != 0 {
		t.Fatalf("accounting violations: %v", vs)
	}
}

// TestAggregationEngineIdentity: with aggregation on, the parallel
// engine must stay byte-identical to the serial reference — the flush
// triggers are all functions of virtual state.
func TestAggregationEngineIdentity(t *testing.T) {
	net, err := network.Preset("cluster:4x8")
	if err != nil {
		t.Fatal(err)
	}
	base := rt.Config{Nodes: 32, BlockSize: 32, Net: net,
		Protocol: rt.ProtoPredictive, Aggregate: true}
	serial := runAgg(t, base, broadcastProg, 3)
	sref, err := json.Marshal(serial.Report())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		c := base
		c.Engine = rt.EngineParallel
		c.Workers = workers
		par := runAgg(t, c, broadcastProg, 3)
		pref, err := json.Marshal(par.Report())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sref, pref) {
			t.Fatalf("workers=%d: parallel report diverges from serial", workers)
		}
	}
}

// TestAggDropEntryMutation pins the oracle contract: the mutation is
// rejected without aggregation; with it, the run either wedges (the
// home believes the dropped copy is in flight, so the consumer's
// refetch is never answered — a detected deadlock) or, if it happens to
// complete, the conservation identity reports the loss. Either way the
// defect cannot slip through, even though the memory hash alone might
// miss it.
func TestAggDropEntryMutation(t *testing.T) {
	net, err := network.Preset("cluster:4x8")
	if err != nil {
		t.Fatal(err)
	}
	m := rt.New(rt.Config{Nodes: 32, Net: net, ChaosMutation: rt.MutationAggDropEntry})
	if err := m.Run(func(w *rt.Worker) { w.Barrier() }); err == nil ||
		!strings.Contains(err.Error(), "Aggregate") {
		t.Fatalf("mutation without Aggregate accepted: %v", err)
	}

	cfg := rt.Config{Nodes: 32, BlockSize: 32, Net: net, Protocol: rt.ProtoPredictive,
		Aggregate: true, ChaosMutation: rt.MutationAggDropEntry}
	mut := rt.New(cfg)
	runErr := mut.Run(broadcastProg(mut, 4))
	c := mut.Counters()
	if c.AggEntriesIn >= c.AggEntriesOut {
		t.Fatalf("mutation dropped nothing: %d out, %d in", c.AggEntriesOut, c.AggEntriesIn)
	}
	if runErr == nil {
		found := false
		for _, v := range check.Accounting(mut) {
			if strings.Contains(v, "aggregation conservation") {
				found = true
			}
		}
		if !found {
			t.Fatal("mutated run completed and the conservation check missed the dropped entry")
		}
	}
}

// TestAggregationFlatNoop: on a flat interconnect Aggregate is a no-op
// — identical results, no aggregates.
func TestAggregationFlatNoop(t *testing.T) {
	base := rt.Config{Nodes: 8, BlockSize: 32, Protocol: rt.ProtoPredictive}
	off := runAgg(t, base, broadcastProg, 2)
	on := runAgg(t, func() rt.Config { c := base; c.Aggregate = true; return c }(), broadcastProg, 2)
	offRep, _ := json.Marshal(off.Report())
	onRep, _ := json.Marshal(on.Report())
	if !bytes.Equal(offRep, onRep) {
		t.Fatal("Aggregate changed results on a flat interconnect")
	}
	if on.Counters().AggMsgs != 0 {
		t.Fatal("flat machine sent aggregates")
	}
}
