package rt

import "fmt"

// The Parse* helpers validate the string forms of the machine's
// configuration kinds (flag values, HTTP experiment specs). An empty
// string parses to the kind's default, matching Config.withDefaults, so
// callers can normalize and validate in one step.

// ParseProtocol validates a coherence-protocol name.
func ParseProtocol(s string) (ProtocolKind, error) {
	switch ProtocolKind(s) {
	case "":
		return ProtoStache, nil
	case ProtoStache, ProtoPredictive, ProtoUpdate:
		return ProtocolKind(s), nil
	}
	return "", fmt.Errorf("rt: unknown protocol %q (want %q, %q or %q)",
		s, ProtoStache, ProtoPredictive, ProtoUpdate)
}

// ParseEngine validates a kernel-engine name.
func ParseEngine(s string) (EngineKind, error) {
	switch EngineKind(s) {
	case "":
		return EngineSerial, nil
	case EngineSerial, EngineParallel:
		return EngineKind(s), nil
	}
	return "", fmt.Errorf("rt: unknown engine %q (want %q or %q)", s, EngineSerial, EngineParallel)
}

// ParseSched validates an event-scheduler name.
func ParseSched(s string) (SchedKind, error) {
	switch SchedKind(s) {
	case "":
		return SchedWheel, nil
	case SchedWheel, SchedHeap:
		return SchedKind(s), nil
	}
	return "", fmt.Errorf("rt: unknown scheduler %q (want %q or %q)", s, SchedWheel, SchedHeap)
}

// ParseLookahead validates a parallel-engine lookahead kind.
func ParseLookahead(s string) (LookaheadKind, error) {
	switch LookaheadKind(s) {
	case "":
		return LookaheadPair, nil
	case LookaheadPair, LookaheadGlobal:
		return LookaheadKind(s), nil
	}
	return "", fmt.Errorf("rt: unknown lookahead %q (want %q or %q)", s, LookaheadPair, LookaheadGlobal)
}
