package rt

import (
	"presto/internal/memory"
	"presto/internal/sim"
	"presto/internal/tempest"
	"presto/internal/trace"
	"presto/internal/update"
)

// Worker is one node's view of a running SPMD program: shared-memory
// access, phase directives, barriers and reductions. All methods must be
// called from the worker's own compute processor (i.e. inside the Program
// body).
type Worker struct {
	M    *Machine
	Node *tempest.Node
	P    *sim.Proc
	ID   int

	redEpoch int
	seen     map[int]int
}

// Nodes returns the machine's node count.
func (w *Worker) Nodes() int { return w.M.Cfg.Nodes }

// Compute models t of application computation.
func (w *Worker) Compute(t sim.Time) {
	w.Node.Stats.Compute += t
	if ps := w.Node.CurPhase(); ps != nil {
		ps.ComputeNS += int64(t)
	}
	w.P.Advance(t)
}

// ReadF64 loads a shared float64 (faulting into the protocol as needed).
func (w *Worker) ReadF64(a memory.Addr) float64 { return w.Node.ReadF64(w.P, a) }

// WriteF64 stores a shared float64.
func (w *Worker) WriteF64(a memory.Addr, v float64) { w.Node.WriteF64(w.P, a, v) }

// AtomicAddF64 adds delta to a shared float64 atomically (write access is
// acquired before the read, so the read-modify-write cannot be torn by a
// concurrent writer — the shared-memory analogue of a lock-protected
// accumulate).
func (w *Worker) AtomicAddF64(a memory.Addr, delta float64) {
	w.Node.RMWF64(w.P, a, func(v float64) float64 { return v + delta })
}

// ReadU64 loads a shared uint64.
func (w *Worker) ReadU64(a memory.Addr) uint64 { return w.Node.ReadU64(w.P, a) }

// WriteU64 stores a shared uint64.
func (w *Worker) WriteU64(a memory.Addr, v uint64) { w.Node.WriteU64(w.P, a, v) }

// ReadU32 loads a shared uint32.
func (w *Worker) ReadU32(a memory.Addr) uint32 { return w.Node.ReadU32(w.P, a) }

// WriteU32 stores a shared uint32.
func (w *Worker) WriteU32(a memory.Addr, v uint32) { w.Node.WriteU32(w.P, a, v) }

// Barrier joins the machine-wide barrier, accounting the wait as
// synchronization time. It first drains anything the compute processor
// left in the node-leader aggregation buffers — the phase-boundary
// safety net: no coalesced bulk ever survives into the next phase.
func (w *Worker) Barrier() {
	w.Node.FlushAgg(w.P)
	w.P.SetWaitCat(sim.CatBarrier)
	wait := w.P.Wait(w.M.barrier)
	w.P.SetWaitCat(sim.CatIdle)
	w.Node.Stats.Sync += wait
	if ps := w.Node.CurPhase(); ps != nil {
		ps.SyncNS += int64(wait)
	}
}

// Phase executes body as compiler-identified parallel phase id. On a
// predictive machine this runs the phase directive: from the second
// execution on, the pre-send transfers scheduled data and a stabilization
// barrier aligns the nodes (both accounted as pre-send time, the figures'
// "predictive protocol" bucket); faulting requests during body extend the
// phase's communication schedule. Every phase ends with the data-parallel
// completion barrier (synchronization time).
func (w *Worker) Phase(id int, body func()) {
	if w.seen == nil {
		w.seen = make(map[int]int)
	}
	iter := w.seen[id]
	first := iter == 0
	w.seen[id]++
	w.beginPhase(id, iter)
	pp, predictive := w.M.Proto.(tempest.PhaseProtocol)
	if predictive {
		w.P.SetWaitCat(sim.CatPresend)
		pp.BeginPhase(w.Node, id)
		if !first {
			// Stabilization barrier after the pre-send (paper §3.4).
			wait := w.P.Wait(w.M.barrier)
			w.Node.Stats.Presend += wait
			if ps := w.Node.CurPhase(); ps != nil {
				ps.PresendNS += int64(wait)
			}
		}
		w.P.SetWaitCat(sim.CatIdle)
	}
	body()
	w.Barrier()
	if predictive {
		pp.EndPhase(w.Node, id)
	}
	w.endPhase(id, iter)
}

// beginPhase enters the phase metrics context and records the trace span
// opening on this node's compute track.
func (w *Worker) beginPhase(id, iter int) {
	w.Node.BeginPhaseMetrics(id, iter)
	if w.Node.Trace != nil {
		ev := trace.Event{
			At: w.P.Now(), Node: w.ID, Proc: trace.ProcCompute,
			Kind: trace.PhaseBegin, Phase: id, Iter: iter,
			What: w.M.PhaseName(id),
		}
		w.P.OnCommit(func() { w.Node.Trace.Record(ev) })
	}
}

// endPhase closes the trace span and leaves the metrics context.
func (w *Worker) endPhase(id, iter int) {
	if w.Node.Trace != nil {
		ev := trace.Event{
			At: w.P.Now(), Node: w.ID, Proc: trace.ProcCompute,
			Kind: trace.PhaseEnd, Phase: id, Iter: iter,
			What: w.M.PhaseName(id),
		}
		w.P.OnCommit(func() { w.Node.Trace.Record(ev) })
	}
	w.Node.EndPhaseMetrics()
}

// Directive runs a compiler-placed phase directive decoupled from the
// parallel work it covers (used by the interpreter, where a hoisted
// directive precedes a loop of parallel calls): the pre-send executes and
// recording for phase id begins. On non-phase protocols it is a no-op.
func (w *Worker) Directive(id int) {
	if w.seen == nil {
		w.seen = make(map[int]int)
	}
	iter := w.seen[id]
	first := iter == 0
	w.seen[id]++
	if cur, it := w.Node.PhaseContext(); cur >= 0 {
		// A new directive ends the previous one's attribution span.
		w.endPhase(cur, it)
	}
	w.beginPhase(id, iter)
	pp, ok := w.M.Proto.(tempest.PhaseProtocol)
	if !ok {
		return
	}
	w.P.SetWaitCat(sim.CatPresend)
	pp.BeginPhase(w.Node, id)
	if !first {
		wait := w.P.Wait(w.M.barrier)
		w.Node.Stats.Presend += wait
		if ps := w.Node.CurPhase(); ps != nil {
			ps.PresendNS += int64(wait)
		}
	}
	w.P.SetWaitCat(sim.CatIdle)
}

// ParallelStep executes one data-parallel operation under the phase
// established by the last Directive: the body runs, then the
// data-parallel completion barrier.
func (w *Worker) ParallelStep(body func()) {
	body()
	w.Barrier()
}

// FlushSchedules drops this node's communication schedules (phase id, or
// all if id < 0). Call between phases, right after a barrier.
func (w *Worker) FlushSchedules(id int) {
	if p, ok := w.M.Proto.(interface {
		FlushSchedules(n *tempest.Node, id int)
	}); ok {
		p.FlushSchedules(w.Node, id)
	}
	// A flushed schedule restarts its learning: reset the node's schedule
	// hit/consumption counters so coverage reflects the new schedule.
	w.Node.ResetPresendCounters(id)
}

// PushUpdates multicasts the current contents of home-resident blocks to
// their recorded consumers (write-update protocol only; a no-op
// otherwise). The push cost is accounted as compute time, since it is part
// of the hand-optimized application's loop rather than a transparent
// protocol action.
func (w *Worker) PushUpdates(addrs []memory.Addr) {
	u, ok := w.M.Proto.(*update.Update)
	if !ok {
		return
	}
	blocks := make([]memory.Block, 0, len(addrs))
	var last memory.Block
	for i, a := range addrs {
		b := w.M.AS.BlockOf(a)
		if i > 0 && b == last {
			continue
		}
		blocks = append(blocks, b)
		last = b
	}
	start := w.P.Now()
	u.Push(w.Node, w.P, blocks)
	w.Node.Stats.Compute += w.P.Now() - start
}

// ReduceSum returns the sum of every worker's v. It synchronizes all
// workers (one barrier) like C**'s language-level reductions, which do not
// go through the coherence protocol.
func (w *Worker) ReduceSum(v float64) float64 {
	buf := w.reduceSlot(v)
	var s float64
	for _, x := range buf {
		s += x
	}
	return s
}

// ReduceMax returns the maximum of every worker's v.
func (w *Worker) ReduceMax(v float64) float64 {
	buf := w.reduceSlot(v)
	max := buf[0]
	for _, x := range buf[1:] {
		if x > max {
			max = x
		}
	}
	return max
}

// reduceSlot deposits v and synchronizes; the returned buffer holds every
// worker's contribution. Alternating buffers make back-to-back reductions
// safe with a single barrier each.
func (w *Worker) reduceSlot(v float64) []float64 {
	buf := w.M.redBufs[w.redEpoch&1]
	w.redEpoch++
	buf[w.ID] = v
	w.Barrier()
	return buf
}

// Gather fetches read-only copies of the blocks containing addrs with one
// bulk request per home node and blocks until every home has replied —
// the execution step of an inspector-executor runtime (CHAOS-style,
// paper §2). Blocks the node already holds are skipped; blocks a home
// cannot serve from its valid copy are skipped by the home (subsequent
// reads fault normally). The wait is accounted as remote-data time.
func (w *Worker) Gather(addrs []memory.Addr) {
	start := w.P.Now()
	perHome := make([][]memory.Block, w.Nodes())
	seen := map[memory.Block]bool{}
	for _, a := range addrs {
		b := w.M.AS.BlockOf(a)
		if seen[b] {
			continue
		}
		seen[b] = true
		if l := w.Node.Store.Line(b); l != nil && l.Tag != memory.Invalid {
			continue // already cached
		}
		home := w.M.AS.HomeOf(b)
		if home == w.ID {
			continue
		}
		perHome[home] = append(perHome[home], b)
	}
	expect := 0
	for home, blocks := range perHome {
		if len(blocks) == 0 {
			continue
		}
		w.Node.Post(w.P, w.M.Nodes[home], tempest.MsgGetBulk{Blocks: blocks, Req: w.ID})
		expect++
	}
	w.P.SetWaitCat(sim.CatStall)
	for k := 0; k < expect; k++ {
		w.Node.RecvCompute(w.P, func(m any) bool {
			_, ok := m.(tempest.MsgGatherDone)
			return ok
		})
	}
	w.P.SetWaitCat(sim.CatIdle)
	w.Node.Stats.RemoteWait += w.P.Now() - start
}

// Signal sends an application-level token to another worker's compute
// processor (e.g. serializing parallel tree insertion). Sender occupancy
// and transit follow the cost model.
func (w *Worker) Signal(dst, tag int) {
	m := tempest.MsgSignal{Tag: tag, From: w.ID}
	if dst == w.ID {
		panic("rt: signal to self")
	}
	w.P.AdvanceCat(w.M.Cfg.Net.SendCost(m.PayloadBytes()), sim.CatOccupancy)
	w.P.Send(w.M.Nodes[dst].Compute, m, w.M.Cfg.Net.TransitDelayPair(m.PayloadBytes(), w.ID, dst))
	w.Node.Stats.MsgsSent++
	w.Node.Stats.BytesSent += int64(m.PayloadBytes() + w.M.Cfg.Net.HeaderBytes)
	if !w.M.Cfg.Net.SameGroup(w.ID, dst) {
		w.Node.Stats.CrossMsgs++
	}
}

// AwaitSignal blocks until a signal arrives (possibly already stashed
// while the worker was in a protocol wait) and returns its tag. The wait
// is accounted as synchronization time.
func (w *Worker) AwaitSignal() int {
	if d, ok := w.Node.PopSignal(); ok {
		return d.Msg.(tempest.MsgSignal).Tag
	}
	start := w.P.Now()
	w.P.SetWaitCat(sim.CatBarrier)
	d := w.Node.RecvCompute(w.P, func(m any) bool {
		_, ok := m.(tempest.MsgSignal)
		return ok
	})
	w.P.SetWaitCat(sim.CatIdle)
	w.Node.Stats.Sync += w.P.Now() - start
	return d.Msg.(tempest.MsgSignal).Tag
}

// CombineArrays element-wise sums every worker's private contribution
// array and returns the [lo,hi) slice of the total. It models a
// language-level array reduction (C** reductions are implemented by the
// runtime outside the coherence protocol, paper §1): one barrier, a
// log-free gather cost charged per node, and a second barrier before the
// buffers may be reused.
func (w *Worker) CombineArrays(local []float64, lo, hi int) []float64 {
	m := w.M
	m.combBufs[w.ID] = local
	w.Barrier()
	out := make([]float64, hi-lo)
	for _, buf := range m.combBufs {
		for i := lo; i < hi; i++ {
			out[i-lo] += buf[i]
		}
	}
	// Gather cost: (P-1) remote segments of (hi-lo) float64s, plus the
	// adds themselves.
	n := m.Cfg.Nodes
	bytes := (n - 1) * (hi - lo) * 8
	cost := sim.Time(n-1)*m.Cfg.Net.SendOverhead + sim.Time(bytes)*m.Cfg.Net.PerByteWire +
		sim.Time((hi-lo)*n)*costAdd
	w.Compute(cost)
	w.Barrier()
	return out
}

// costAdd is the modeled cost of one floating-point accumulate during a
// runtime-implemented reduction.
const costAdd = 30 * sim.Nanosecond

// Range block-partitions n items over the machine's workers and returns
// this worker's half-open interval.
func (w *Worker) Range(n int) (lo, hi int) {
	per := (n + w.Nodes() - 1) / w.Nodes()
	lo = w.ID * per
	hi = lo + per
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}
