package rt

import (
	"testing"
	"testing/quick"
)

func TestGrid2DRowBlockGeometry(t *testing.T) {
	m := New(Config{Nodes: 4, BlockSize: 32})
	g := m.NewGrid2D("g", 16, 8, 2, RowBlock)
	if g.Owner(0, 0) != 0 || g.Owner(15, 7) != 3 || g.Owner(7, 3) != 1 {
		t.Fatalf("owners: %d %d %d", g.Owner(0, 0), g.Owner(15, 7), g.Owner(7, 3))
	}
	// Address arithmetic: row-major, 16-byte elements.
	a00 := g.At(0, 0, 0)
	a01 := g.At(0, 1, 0)
	a10 := g.At(1, 0, 0)
	if a01.Offset()-a00.Offset() != 16 {
		t.Fatalf("column stride = %d", a01.Offset()-a00.Offset())
	}
	if a10.Offset()-a00.Offset() != 8*16 {
		t.Fatalf("row stride = %d", a10.Offset()-a00.Offset())
	}
	if g.At(0, 0, 1).Offset()-a00.Offset() != 8 {
		t.Fatal("field stride")
	}
	// Home of a block matches the owner of its first element.
	b := m.AS.BlockOf(g.At(8, 0, 0))
	if m.AS.HomeOf(b) != g.Owner(8, 0) {
		t.Fatal("block home mismatch")
	}
}

func TestGrid2DTiledGeometry(t *testing.T) {
	m := New(Config{Nodes: 4, BlockSize: 32})
	g := m.NewGrid2D("g", 8, 8, 1, Tiled)
	// 4 nodes factor as 2x2 tiles of 4x4.
	cases := map[[2]int]int{
		{0, 0}: 0, {0, 7}: 1, {7, 0}: 2, {7, 7}: 3, {3, 3}: 0, {4, 4}: 3,
	}
	for pos, want := range cases {
		if got := g.Owner(pos[0], pos[1]); got != want {
			t.Fatalf("owner(%d,%d) = %d, want %d", pos[0], pos[1], got, want)
		}
	}
}

func TestGridTileRanges(t *testing.T) {
	m := New(Config{Nodes: 4, BlockSize: 32})
	g := m.NewGrid2D("g", 8, 8, 1, Tiled)
	if err := m.Run(func(w *Worker) {
		rlo, rhi, clo, chi := g.MyTile(w)
		// Every cell in the tile must be owned by this worker.
		for i := rlo; i < rhi; i++ {
			for j := clo; j < chi; j++ {
				if g.Owner(i, j) != w.ID {
					t.Errorf("worker %d tile contains cell (%d,%d) owned by %d", w.ID, i, j, g.Owner(i, j))
				}
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// Property: MyRows/MyRange partition exactly (disjoint cover).
func TestPartitionProperty(t *testing.T) {
	f := func(rawN uint8, rawNodes uint8) bool {
		n := int(rawN)%200 + 1
		nodes := int(rawNodes)%8 + 1
		m := New(Config{Nodes: nodes, BlockSize: 32})
		arr := m.NewArray1D("a", n, 1, false)
		covered := make([]int, n)
		ok := true
		if err := m.Run(func(w *Worker) {
			lo, hi := arr.MyRange(w)
			for i := lo; i < hi; i++ {
				covered[i]++
				if arr.Owner(i) != w.ID {
					ok = false
				}
			}
		}); err != nil {
			return false
		}
		for _, c := range covered {
			if c != 1 {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestArray1DPadding(t *testing.T) {
	m := New(Config{Nodes: 2, BlockSize: 64})
	padded := m.NewArray1D("p", 4, 1, true)
	dense := m.NewArray1D("d", 4, 1, false)
	if padded.At(1, 0).Offset()-padded.At(0, 0).Offset() != 64 {
		t.Fatal("padded stride")
	}
	if dense.At(1, 0).Offset()-dense.At(0, 0).Offset() != 8 {
		t.Fatal("dense stride")
	}
}

func TestArenaAllocationAndReset(t *testing.T) {
	m := New(Config{Nodes: 2, BlockSize: 32})
	a := m.NewArena("arena", 4096)
	p1 := a.Alloc(0, 24, false)
	p2 := a.Alloc(0, 8, false)
	if p2.Offset()-p1.Offset() != 24 {
		t.Fatalf("alloc packing: %d", p2.Offset()-p1.Offset())
	}
	p3 := a.Alloc(0, 16, true)
	if p3.Offset()%32 != 0 {
		t.Fatalf("block-aligned alloc at %d", p3.Offset())
	}
	// Node 1 allocations land in node 1's segment (block-disjoint homes).
	q := a.Alloc(1, 8, false)
	if m.AS.HomeOf(q) != 1 || m.AS.HomeOf(p1) != 0 {
		t.Fatal("arena homes wrong")
	}
	used := a.Used(0)
	if used == 0 {
		t.Fatal("no usage tracked")
	}
	a.ResetNode(0)
	if a.Used(0) != 0 || a.Used(1) == 0 {
		t.Fatal("ResetNode scope wrong")
	}
	// Deterministic reuse: same sequence yields same addresses.
	if r := a.Alloc(0, 24, false); r != p1 {
		t.Fatalf("reused alloc at %#x, want %#x", uint64(r), uint64(p1))
	}
	a.Reset()
	if a.Used(1) != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestArenaExhaustionPanics(t *testing.T) {
	m := New(Config{Nodes: 2, BlockSize: 32})
	a := m.NewArena("tiny", 128)
	defer func() {
		if recover() == nil {
			t.Fatal("expected exhaustion panic")
		}
	}()
	for i := 0; i < 100; i++ {
		a.Alloc(0, 32, false)
	}
}
