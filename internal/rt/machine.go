// Package rt is the data-parallel runtime of the simulated machine: it
// plays the role C**'s runtime system played on Blizzard. It builds a
// machine of N nodes (each with a compute and a protocol processor),
// distributes aggregate data over the shared address space (block,
// row-block and tiled distributions, paper §4.1), executes SPMD programs
// with compiler-placed parallel-phase directives, and accounts each node's
// execution time into the paper's three buckets: remote-data wait,
// predictive-protocol (pre-send), and compute+synchronization.
package rt

import (
	"encoding/binary"
	"fmt"
	"math"

	"presto/internal/core"
	"presto/internal/memory"
	"presto/internal/network"
	"presto/internal/sim"
	"presto/internal/stache"
	"presto/internal/tempest"
	"presto/internal/trace"
	"presto/internal/update"
)

// ProtocolKind selects the coherence protocol a machine runs.
type ProtocolKind string

const (
	// ProtoStache is the default write-invalidate protocol (the paper's
	// unoptimized configuration).
	ProtoStache ProtocolKind = "stache"
	// ProtoPredictive is the paper's predictive protocol.
	ProtoPredictive ProtocolKind = "predictive"
	// ProtoUpdate is the write-update protocol used by the hand-optimized
	// SPMD baseline (Falsafi et al.).
	ProtoUpdate ProtocolKind = "update"
)

// Config describes one machine configuration.
type Config struct {
	// Nodes is the processor count (the paper used 32).
	Nodes int
	// BlockSize is the cache-block size in bytes (32–1024 in the paper).
	BlockSize int
	// Protocol selects the coherence protocol (default ProtoStache).
	Protocol ProtocolKind
	// Net overrides the interconnect cost model (default network.CM5).
	Net *network.Params
	// NoCoalesce disables pre-send bulk coalescing (ablation).
	NoCoalesce bool
	// AnticipateConflicts enables the conflict-anticipation extension.
	AnticipateConflicts bool
	// Trace, when positive, attaches a shared protocol-event ring of that
	// capacity to every node (debugging/tests).
	Trace int
	// MaxEvents, when positive, bounds simulation events (livelock guard).
	MaxEvents int64
	// FlushEvery, when positive, makes the predictive protocol rebuild
	// each phase schedule every FlushEvery-th pre-send (deletion-heavy
	// patterns, paper §3.3).
	FlushEvery int
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Nodes == 0 {
		out.Nodes = 32
	}
	if out.BlockSize == 0 {
		out.BlockSize = 32
	}
	if out.Protocol == "" {
		out.Protocol = ProtoStache
	}
	if out.Net == nil {
		out.Net = network.CM5()
	}
	return out
}

// Machine is one simulated DSM machine instance. Allocate aggregates
// first, then call Run exactly once.
type Machine struct {
	Cfg    Config
	Kernel *sim.Kernel
	AS     *memory.AddressSpace
	Proto  tempest.Protocol
	Nodes  []*tempest.Node

	// Ring is the shared protocol trace when Cfg.Trace > 0.
	Ring *trace.Ring

	barrier  *sim.Barrier
	redBufs  [2][]float64
	combBufs [][]float64
	ends     []sim.Time
	ran      bool
}

// New builds a machine for the given configuration.
func New(cfg Config) *Machine {
	c := cfg.withDefaults()
	m := &Machine{
		Cfg:    c,
		Kernel: sim.NewKernel(),
		AS:     memory.NewAddressSpace(c.Nodes, c.BlockSize),
	}
	switch c.Protocol {
	case ProtoStache:
		m.Proto = stache.New()
	case ProtoPredictive:
		p := core.New()
		p.Coalesce = !c.NoCoalesce
		p.AnticipateConflicts = c.AnticipateConflicts
		p.FlushEvery = c.FlushEvery
		m.Proto = p
	case ProtoUpdate:
		m.Proto = update.New()
	default:
		panic(fmt.Sprintf("rt: unknown protocol %q", c.Protocol))
	}
	m.barrier = m.Kernel.NewBarrier(c.Nodes, c.Net.BarrierLatency)
	return m
}

// Program is the SPMD body run by every node's compute processor.
type Program func(w *Worker)

// Run builds the nodes over the allocated regions, spawns the protocol
// and compute processors, and runs the simulation to completion.
func (m *Machine) Run(prog Program) error {
	if m.ran {
		return fmt.Errorf("rt: machine already ran")
	}
	m.ran = true
	c := m.Cfg
	m.Kernel.MaxEvents = c.MaxEvents
	var ring *trace.Ring
	if c.Trace > 0 {
		ring = trace.NewRing(c.Trace)
		m.Ring = ring
	}
	m.Nodes = make([]*tempest.Node, c.Nodes)
	for i := 0; i < c.Nodes; i++ {
		m.Nodes[i] = tempest.NewNode(i, m.AS, c.Net, m.Proto)
		m.Nodes[i].Trace = ring
	}
	for _, n := range m.Nodes {
		n.Peers = m.Nodes
		m.Proto.Init(n)
	}
	for _, n := range m.Nodes {
		n := n
		n.ProtoProc = m.Kernel.Spawn(fmt.Sprintf("proto%d", n.ID), n.ProtocolLoop)
		n.ProtoProc.SetDaemon(true)
	}
	m.redBufs[0] = make([]float64, c.Nodes)
	m.redBufs[1] = make([]float64, c.Nodes)
	m.ends = make([]sim.Time, c.Nodes)
	for _, n := range m.Nodes {
		n := n
		w := &Worker{M: m, Node: n, ID: n.ID}
		n.Compute = m.Kernel.Spawn(fmt.Sprintf("compute%d", n.ID), func(p *sim.Proc) {
			w.P = p
			prog(w)
			m.ends[n.ID] = p.Now()
		})
	}
	return m.Kernel.Run()
}

// Elapsed returns the machine's execution time: the latest compute
// processor completion across nodes.
func (m *Machine) Elapsed() sim.Time {
	var max sim.Time
	for _, e := range m.ends {
		if e > max {
			max = e
		}
	}
	return max
}

// Breakdown is the machine-level execution-time decomposition used by the
// paper's figures. Bucket values are averages over nodes, so a balanced
// run's buckets sum to roughly Elapsed.
type Breakdown struct {
	Elapsed    sim.Time
	Compute    sim.Time
	RemoteWait sim.Time
	Presend    sim.Time
	Sync       sim.Time
}

// ComputeSynch returns the combined compute+synchronization bucket
// (the paper's figures merge these).
func (b Breakdown) ComputeSynch() sim.Time { return b.Compute + b.Sync }

// Breakdown aggregates per-node stats into the figure buckets.
func (m *Machine) Breakdown() Breakdown {
	var b Breakdown
	for _, n := range m.Nodes {
		b.Compute += n.Stats.Compute
		b.RemoteWait += n.Stats.RemoteWait
		b.Presend += n.Stats.Presend
		b.Sync += n.Stats.Sync
	}
	nn := sim.Time(len(m.Nodes))
	if nn > 0 {
		b.Compute /= nn
		b.RemoteWait /= nn
		b.Presend /= nn
		b.Sync /= nn
	}
	b.Elapsed = m.Elapsed()
	return b
}

// Counters aggregates protocol event counters across nodes.
type Counters struct {
	ReadFaults, WriteFaults       int64
	MsgsSent, BytesSent           int64
	PresendsSent, PresendsSkipped int64
	BulkMsgs, Conflicts           int64
}

// Counters sums the per-node counters.
func (m *Machine) Counters() Counters {
	var c Counters
	for _, n := range m.Nodes {
		c.ReadFaults += n.Stats.ReadFaults
		c.WriteFaults += n.Stats.WriteFaults
		c.MsgsSent += n.Stats.MsgsSent
		c.BytesSent += n.Stats.BytesSent
		c.PresendsSent += n.Stats.PresendsSent
		c.PresendsSkipped += n.Stats.PresendsSkipped
		c.BulkMsgs += n.Stats.BulkMsgs
		c.Conflicts += n.Stats.Conflicts
	}
	return c
}

// PerNode returns each node's time breakdown (imbalance analysis: the
// paper notes Adaptive's shared-data wait is distributed unevenly, §5.1).
func (m *Machine) PerNode() []Breakdown {
	out := make([]Breakdown, len(m.Nodes))
	for i, n := range m.Nodes {
		out[i] = Breakdown{
			Elapsed:    m.ends[i],
			Compute:    n.Stats.Compute,
			RemoteWait: n.Stats.RemoteWait,
			Presend:    n.Stats.Presend,
			Sync:       n.Stats.Sync,
		}
	}
	return out
}

// SnapshotF64 reads a shared value after the run completes, consulting the
// directory to find the node holding the current copy (validation only —
// not part of the simulated execution).
func (m *Machine) SnapshotF64(a memory.Addr) float64 {
	b := m.AS.BlockOf(a)
	home := m.Nodes[m.AS.HomeOf(a)]
	src := home.Store
	if e := home.Dir.Lookup(b); e != nil && e.State == tempest.DirRemoteExcl {
		src = m.Nodes[e.Owner].Store
	}
	l := src.Line(b)
	if l == nil {
		panic(fmt.Sprintf("rt: snapshot of absent block %#x", uint64(b)))
	}
	off := a.Offset() & int64(m.Cfg.BlockSize-1)
	return math.Float64frombits(binary.LittleEndian.Uint64(l.Data[off:]))
}
