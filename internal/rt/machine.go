// Package rt is the data-parallel runtime of the simulated machine: it
// plays the role C**'s runtime system played on Blizzard. It builds a
// machine of N nodes (each with a compute and a protocol processor),
// distributes aggregate data over the shared address space (block,
// row-block and tiled distributions, paper §4.1), executes SPMD programs
// with compiler-placed parallel-phase directives, and accounts each node's
// execution time into the paper's three buckets: remote-data wait,
// predictive-protocol (pre-send), and compute+synchronization.
package rt

import (
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"sort"

	"presto/internal/blockstate"
	"presto/internal/core"
	"presto/internal/memory"
	"presto/internal/metrics"
	"presto/internal/network"
	"presto/internal/sim"
	"presto/internal/stache"
	"presto/internal/tempest"
	"presto/internal/trace"
	"presto/internal/update"
)

// ProtocolKind selects the coherence protocol a machine runs.
type ProtocolKind string

const (
	// ProtoStache is the default write-invalidate protocol (the paper's
	// unoptimized configuration).
	ProtoStache ProtocolKind = "stache"
	// ProtoPredictive is the paper's predictive protocol.
	ProtoPredictive ProtocolKind = "predictive"
	// ProtoUpdate is the write-update protocol used by the hand-optimized
	// SPMD baseline (Falsafi et al.).
	ProtoUpdate ProtocolKind = "update"
)

// EngineKind selects how the simulation kernel executes events.
type EngineKind string

const (
	// EngineSerial is the classic single-threaded event loop.
	EngineSerial EngineKind = "serial"
	// EngineParallel runs nodes concurrently inside conservative time
	// windows bounded by the interconnect's minimum latency, committing
	// results in serial event order — output is byte-identical to
	// EngineSerial.
	EngineParallel EngineKind = "parallel"
)

// LookaheadKind selects how the parallel engine derives its conservative
// windows from the interconnect.
type LookaheadKind string

const (
	// LookaheadPair (default) derives a per-lane-pair lookahead matrix
	// from the interconnect topology: a lane pair's bound is the minimum
	// cost of any message between their node groups. On a clustered
	// interconnect lanes are whole groups and every lane pair crosses
	// groups, so windows are bounded by the (large) top-level transit
	// instead of the (small) intra-group minimum. On flat interconnects
	// every pair collapses to the global minimum latency, making this
	// byte-identical to LookaheadGlobal.
	LookaheadPair LookaheadKind = "pair"
	// LookaheadGlobal is the legacy scalar bound — the interconnect's
	// global minimum latency — kept as a differential reference for the
	// pair matrix.
	LookaheadGlobal LookaheadKind = "global"
)

// SchedKind selects the kernel's pending-event scheduler.
type SchedKind string

const (
	// SchedWheel is the timing-wheel scheduler (default). The bucket width
	// is the interconnect's minimum cross-node latency, aligning one
	// conservative lookahead window with O(1) buckets.
	SchedWheel SchedKind = "wheel"
	// SchedHeap is the binary-heap reference scheduler, kept for
	// differential testing — output is byte-identical to SchedWheel.
	SchedHeap SchedKind = "heap"
)

// Config describes one machine configuration.
type Config struct {
	// Nodes is the processor count (the paper used 32).
	Nodes int
	// BlockSize is the cache-block size in bytes (32–1024 in the paper).
	BlockSize int
	// Protocol selects the coherence protocol (default ProtoStache).
	Protocol ProtocolKind
	// Net overrides the interconnect cost model (default network.CM5).
	Net *network.Params
	// NoCoalesce disables pre-send bulk coalescing (ablation).
	NoCoalesce bool
	// Aggregate enables node-leader message aggregation on clustered
	// interconnects: cross-group bulk traffic (pre-send grants, update
	// pushes, gather replies) destined for one remote group is coalesced
	// into a single leader-to-leader message and redistributed over the
	// cheap intra-group fabric (tempest/aggregate.go). Timing-visible
	// but memory-invariant; a no-op on flat interconnects.
	Aggregate bool
	// AnticipateConflicts enables the conflict-anticipation extension.
	AnticipateConflicts bool
	// Trace, when positive, attaches a shared protocol-event ring of that
	// capacity to every node (debugging/tests).
	Trace int
	// Sink, when non-nil, also receives every protocol trace event (a
	// JSONL stream or Chrome trace_event exporter; see internal/trace).
	// Trace and Sink compose: events fan out to both.
	Sink trace.Sink
	// MaxEvents, when positive, bounds simulation events (livelock guard).
	MaxEvents int64
	// FlushEvery, when positive, makes the predictive protocol rebuild
	// each phase schedule every FlushEvery-th pre-send (deletion-heavy
	// patterns, paper §3.3).
	FlushEvery int
	// Engine selects the kernel execution strategy (default EngineSerial).
	Engine EngineKind
	// Workers caps the worker goroutines of the parallel engine. 0 means
	// auto: GOMAXPROCS clamped to the machine's lane count. Negative
	// values and values beyond the lane count are configuration errors
	// (Run reports them). Ignored for EngineSerial.
	Workers int
	// Lookahead selects how the parallel engine bounds its conservative
	// windows (default LookaheadPair). Results are byte-identical across
	// kinds; the pair matrix only widens windows. Ignored for
	// EngineSerial.
	Lookahead LookaheadKind
	// NoSteal disables deterministic work stealing between the parallel
	// engine's workers (each worker then executes only the lanes it
	// owns). Results are byte-identical either way; this is a
	// performance ablation knob.
	NoSteal bool
	// Sched selects the kernel's pending-event scheduler (default
	// SchedWheel). SchedHeap keeps the reference heap for differential
	// testing; results are byte-identical either way.
	Sched SchedKind
	// ChaosMutation names a deliberate protocol defect to inject
	// (mutation testing for internal/chaos — the differential oracle must
	// catch every listed mutation). Empty in normal operation.
	ChaosMutation string
	// Storage selects the block-state backend for directories, protocol
	// deferral state and schedules: blockstate.Dense (default) uses paged
	// tables indexed by block index; blockstate.MapRef keeps the map-based
	// reference implementation for differential testing.
	Storage blockstate.Kind
	// Profile enables the causal profiler: the kernel's flight recorder
	// records every binding wake, every processor's simulated time is
	// attributed into exact categories, and Machine.Profile assembles the
	// critical path and attribution report after the run. Simulated
	// results (fingerprints, metrics, goldens) are identical either way.
	Profile bool
	// ProfileCap overrides the flight recorder's edge capacity
	// (default sim.DefaultRecorderCap). The recorder is a ring: a run
	// emitting more binding wakes than the cap still profiles, but the
	// critical-path walk is marked truncated.
	ProfileCap int
	// Record attaches a communication recorder to every node, capturing
	// per-phase fault/pre-send/traffic schedules for the analytical
	// predictor (internal/predict). Observation only: simulated results
	// are identical either way.
	Record bool
}

// Chaos mutations accepted by Config.ChaosMutation.
const (
	// MutationStacheSkipDeferral disables Stache's cache-side deferral of
	// invalidations/recalls that overtake the data grant they chase.
	MutationStacheSkipDeferral = "stache-skip-deferral"
	// MutationStealReverseRun makes the parallel engine execute each
	// lane's initial window run tail-first, breaking the execution-order
	// guarantee work stealing must preserve. Requires EngineParallel.
	MutationStealReverseRun = "steal-reverse-run"
	// MutationAggDropEntry makes node-leader aggregation drop one
	// coalesced bulk entry per multi-part flush. Memory is never
	// corrupted, but the loss is not silent: on the pre-send path the
	// home has already registered the consumer as a sharer, so the
	// consumer's refetch is treated as in flight and the run deadlocks;
	// paths that do recover leave AggEntriesOut != AggEntriesIn for the
	// conservation identity (check.Accounting). Either signal — a run
	// error or the counter gap — is what the differential oracle keys
	// on, not the memory hash. Requires Aggregate and a clustered
	// interconnect.
	MutationAggDropEntry = "agg-drop-entry"
)

func (c *Config) withDefaults() Config {
	out := *c
	if out.Nodes == 0 {
		out.Nodes = 32
	}
	if out.BlockSize == 0 {
		out.BlockSize = 32
	}
	if out.Protocol == "" {
		out.Protocol = ProtoStache
	}
	if out.Net == nil {
		out.Net = network.CM5()
	}
	if out.Engine == "" {
		out.Engine = EngineSerial
	}
	if out.Sched == "" {
		out.Sched = SchedWheel
	}
	return out
}

// Machine is one simulated DSM machine instance. Allocate aggregates
// first, then call Run exactly once.
type Machine struct {
	Cfg    Config
	Kernel *sim.Kernel
	AS     *memory.AddressSpace
	Proto  tempest.Protocol
	Nodes  []*tempest.Node

	// Ring is the shared protocol trace when Cfg.Trace > 0.
	Ring *trace.Ring
	// Reg is the machine's metrics registry; every node's instruments
	// register here under an "nNN/" prefix.
	Reg *metrics.Registry

	barrier *sim.Barrier
	// paddedStride maps block-padded array regions to their element
	// stride (see PaddedStride).
	paddedStride map[int]int64
	redBufs      [2][]float64
	combBufs     [][]float64
	ends         []sim.Time
	ran          bool
	phaseNames   map[int]string
	prof         []*nodeProf
	workers      int
	lanes        int
	lookahead    sim.Time // executed window width (parallel engine)
}

// New builds a machine for the given configuration.
func New(cfg Config) *Machine {
	c := cfg.withDefaults()
	m := &Machine{
		Cfg:        c,
		Kernel:     sim.NewKernel(),
		AS:         memory.NewAddressSpace(c.Nodes, c.BlockSize),
		Reg:        metrics.New(),
		phaseNames: make(map[int]string),
	}
	switch c.Protocol {
	case ProtoStache:
		s := stache.New()
		s.Storage = c.Storage
		if c.ChaosMutation == MutationStacheSkipDeferral {
			s.BreakOvertakingDeferral = true
		}
		m.Proto = s
	case ProtoPredictive:
		p := core.New()
		p.Storage = c.Storage
		p.Coalesce = !c.NoCoalesce
		p.AnticipateConflicts = c.AnticipateConflicts
		p.FlushEvery = c.FlushEvery
		m.Proto = p
	case ProtoUpdate:
		u := update.New()
		u.Storage = c.Storage
		m.Proto = u
	default:
		panic(fmt.Sprintf("rt: unknown protocol %q", c.Protocol))
	}
	m.barrier = m.Kernel.NewBarrier(c.Nodes, c.Net.BarrierLatency)
	return m
}

// Program is the SPMD body run by every node's compute processor.
type Program func(w *Worker)

// Run builds the nodes over the allocated regions, spawns the protocol
// and compute processors, and runs the simulation to completion.
func (m *Machine) Run(prog Program) error {
	if m.ran {
		return fmt.Errorf("rt: machine already ran")
	}
	m.ran = true
	c := m.Cfg
	if err := c.Net.Validate(); err != nil {
		return fmt.Errorf("rt: bad interconnect parameters: %w", err)
	}
	switch c.ChaosMutation {
	case "", MutationStacheSkipDeferral:
	case MutationStealReverseRun:
		if c.Engine != EngineParallel {
			return fmt.Errorf("rt: mutation %q targets the parallel engine, machine runs %q", c.ChaosMutation, c.Engine)
		}
	case MutationAggDropEntry:
		if !c.Aggregate || !c.Net.Clustered() {
			return fmt.Errorf("rt: mutation %q targets node-leader aggregation (needs Aggregate on a clustered interconnect)", c.ChaosMutation)
		}
	default:
		return fmt.Errorf("rt: unknown chaos mutation %q", c.ChaosMutation)
	}
	switch c.Lookahead {
	case "", LookaheadPair, LookaheadGlobal:
	default:
		return fmt.Errorf("rt: unknown lookahead kind %q (want pair or global)", c.Lookahead)
	}
	if c.Net.Clustered() && c.Nodes%c.Net.GroupSize != 0 {
		return fmt.Errorf("rt: %d nodes do not tile into groups of %d", c.Nodes, c.Net.GroupSize)
	}
	if want := c.Net.ExpectNodes(); want != 0 && c.Nodes != want {
		return fmt.Errorf("rt: interconnect describes %d nodes, machine has %d", want, c.Nodes)
	}
	switch c.Sched {
	case SchedWheel:
		// Size the wheel to the machine: two processors per node can keep
		// roughly that many events in flight, so a 1024-node burst stays
		// on the O(1) bucket path instead of thrashing the overflow heap.
		m.Kernel.UseSchedulerSized(sim.SchedWheel, c.Net.MinLatency(), 2*c.Nodes)
	case SchedHeap:
		m.Kernel.UseScheduler(sim.SchedHeap, 0)
	default:
		return fmt.Errorf("rt: unknown scheduler %q", c.Sched)
	}
	m.Kernel.MaxEvents = c.MaxEvents
	var ring *trace.Ring
	if c.Trace > 0 {
		ring = trace.NewRing(c.Trace)
		m.Ring = ring
	}
	sink := c.Sink
	if ring != nil {
		sink = trace.Multi(ring, c.Sink)
	}
	m.Nodes = make([]*tempest.Node, c.Nodes)
	for i := 0; i < c.Nodes; i++ {
		n := tempest.NewNode(i, m.AS, c.Net, m.Proto)
		if c.Storage == blockstate.MapRef {
			n.Dir = tempest.NewDirectoryRef(m.AS)
		}
		n.Trace = sink
		n.UseMetrics(m.Reg)
		if c.Record {
			n.Rec = tempest.NewCommRecord()
		}
		m.Nodes[i] = n
	}
	for _, n := range m.Nodes {
		n.Peers = m.Nodes
		m.Proto.Init(n)
		if c.Aggregate {
			n.EnableAggregation(c.ChaosMutation == MutationAggDropEntry)
		}
	}
	if c.Profile {
		m.Kernel.EnableRecorder(c.ProfileCap)
		m.prof = make([]*nodeProf, c.Nodes)
		for i := range m.prof {
			m.prof[i] = &nodeProf{}
		}
	}
	for _, n := range m.Nodes {
		n := n
		n.ProtoProc = m.Kernel.Spawn(fmt.Sprintf("proto%d", n.ID), n.ProtocolLoop)
		n.ProtoProc.SetDaemon(true)
		if m.prof != nil {
			// The protocol processor's whole timeline lands in the node's
			// proto slot; its on-CPU time is protocol service by definition.
			n.ProtoProc.SetRunCat(sim.CatService)
			n.ProtoProc.SetAttrSlot(&m.prof[n.ID].proto)
		}
	}
	m.redBufs[0] = make([]float64, c.Nodes)
	m.redBufs[1] = make([]float64, c.Nodes)
	m.combBufs = make([][]float64, c.Nodes)
	m.ends = make([]sim.Time, c.Nodes)
	for _, n := range m.Nodes {
		n := n
		w := &Worker{M: m, Node: n, ID: n.ID}
		n.Compute = m.Kernel.Spawn(fmt.Sprintf("compute%d", n.ID), func(p *sim.Proc) {
			w.P = p
			prog(w)
			m.ends[n.ID] = p.Now()
		})
		if m.prof != nil {
			np := m.prof[n.ID]
			n.Compute.SetAttrSlot(np.slot(-1))
			n.Prof = np.slot
		}
	}
	switch c.Engine {
	case EngineSerial:
		return m.Kernel.Run()
	case EngineParallel:
		// A lane is the unit of concurrent execution. On a flat
		// interconnect each node is a lane: a node's compute and protocol
		// processors share state (Store, Dir, Stats, metrics), so they
		// must execute on the same lane. On a clustered interconnect the
		// lane is a whole node group — coarsening to the interconnect
		// partition makes every lane pair cross-group, so the pair
		// lookahead matrix bounds windows by the (large) top-level
		// transit instead of the intra-group minimum.
		gsize := 1
		if c.Net.Clustered() {
			gsize = c.Net.GroupSize
		}
		lanes := c.Nodes / gsize
		workers, err := effectiveWorkers(c.Workers, lanes)
		if err != nil {
			return err
		}
		m.workers = workers
		m.lanes = lanes
		// Spawn order is protos 0..N-1 then computes N..2N-1, so ID mod
		// Nodes maps both of node i's procs to node i, and dividing by
		// the group size folds a group's nodes onto one lane.
		pcfg := sim.ParallelConfig{
			Workers:           workers,
			Lanes:             lanes,
			LaneOf:            func(p *sim.Proc) int { return (p.ID() % c.Nodes) / gsize },
			NoSteal:           c.NoSteal,
			MutateReverseRuns: c.ChaosMutation == MutationStealReverseRun,
		}
		switch {
		case lanes == 1:
			// One lane has no cross-lane hazards; any positive window is
			// conservative. The barrier cost is a comfortably wide one.
			pcfg.Lookahead = c.Net.BarrierLatency
		case c.Lookahead == LookaheadGlobal:
			pcfg.Lookahead = c.Net.MinLatency()
		default:
			pcfg.PairLookahead = func(i, j int) sim.Time {
				return c.Net.PairMinLatency(i*gsize, j*gsize)
			}
			// The executed width is the matrix's narrowest row. Every
			// lane pair of a clustered machine crosses groups (uniform
			// cost); on a flat one the matrix collapses to the global
			// minimum.
			if c.Net.Clustered() {
				m.lookahead = c.Net.PairMinLatency(0, gsize)
			} else {
				m.lookahead = c.Net.MinLatency()
			}
		}
		if pcfg.Lookahead > 0 {
			m.lookahead = pcfg.Lookahead
		}
		return m.Kernel.RunParallel(pcfg)
	default:
		return fmt.Errorf("rt: unknown engine %q", c.Engine)
	}
}

// effectiveWorkers resolves the requested parallel-engine worker count
// against the machine's lane count. 0 means auto (GOMAXPROCS clamped to
// the lane count); negative requests and requests beyond the lane count
// are configuration errors — workers execute lanes, so the surplus could
// never run.
func effectiveWorkers(req, lanes int) (int, error) {
	switch {
	case req < 0:
		return 0, fmt.Errorf("rt: negative worker count %d (0 means auto)", req)
	case req > lanes:
		return 0, fmt.Errorf("rt: %d workers exceed the machine's %d lanes (workers execute lanes; use 0 for auto)", req, lanes)
	case req == 0:
		req = runtime.GOMAXPROCS(0)
		if req > lanes {
			req = lanes
		}
	}
	return req, nil
}

// Elapsed returns the machine's execution time: the latest compute
// processor completion across nodes.
func (m *Machine) Elapsed() sim.Time {
	var max sim.Time
	for _, e := range m.ends {
		if e > max {
			max = e
		}
	}
	return max
}

// Breakdown is the machine-level execution-time decomposition used by the
// paper's figures. Bucket values are averages over nodes, so a balanced
// run's buckets sum to roughly Elapsed.
type Breakdown struct {
	Elapsed    sim.Time
	Compute    sim.Time
	RemoteWait sim.Time
	Presend    sim.Time
	Sync       sim.Time
}

// ComputeSynch returns the combined compute+synchronization bucket
// (the paper's figures merge these).
func (b Breakdown) ComputeSynch() sim.Time { return b.Compute + b.Sync }

// Breakdown aggregates per-node stats into the figure buckets.
func (m *Machine) Breakdown() Breakdown {
	var b Breakdown
	for _, n := range m.Nodes {
		b.Compute += n.Stats.Compute
		b.RemoteWait += n.Stats.RemoteWait
		b.Presend += n.Stats.Presend
		b.Sync += n.Stats.Sync
	}
	nn := sim.Time(len(m.Nodes))
	if nn > 0 {
		b.Compute /= nn
		b.RemoteWait /= nn
		b.Presend /= nn
		b.Sync /= nn
	}
	b.Elapsed = m.Elapsed()
	return b
}

// Counters aggregates protocol event counters across nodes.
type Counters struct {
	ReadFaults, WriteFaults       int64
	MsgsSent, BytesSent           int64
	PresendsSent, PresendsSkipped int64
	BulkMsgs, Conflicts           int64
	// CrossMsgs counts messages that left the sender's local fabric
	// (another group on a clustered machine; any remote node on a flat
	// one) — the traffic node-leader aggregation attacks.
	CrossMsgs int64
	// AggMsgs counts leader-to-leader aggregates; AggEntriesOut/In are
	// the coalesced-entry conservation pair (equal at quiescence).
	AggMsgs, AggEntriesOut, AggEntriesIn int64
}

// Counters sums the per-node counters.
func (m *Machine) Counters() Counters {
	var c Counters
	for _, n := range m.Nodes {
		c.ReadFaults += n.Stats.ReadFaults
		c.WriteFaults += n.Stats.WriteFaults
		c.MsgsSent += n.Stats.MsgsSent
		c.BytesSent += n.Stats.BytesSent
		c.PresendsSent += n.Stats.PresendsSent
		c.PresendsSkipped += n.Stats.PresendsSkipped
		c.BulkMsgs += n.Stats.BulkMsgs
		c.Conflicts += n.Stats.Conflicts
		c.CrossMsgs += n.Stats.CrossMsgs
		c.AggMsgs += n.Stats.AggMsgs
		c.AggEntriesOut += n.Stats.AggEntriesOut
		c.AggEntriesIn += n.Stats.AggEntriesIn
	}
	return c
}

// PerNode returns each node's time breakdown (imbalance analysis: the
// paper notes Adaptive's shared-data wait is distributed unevenly, §5.1).
func (m *Machine) PerNode() []Breakdown {
	out := make([]Breakdown, len(m.Nodes))
	for i, n := range m.Nodes {
		out[i] = Breakdown{
			Elapsed:    m.ends[i],
			Compute:    n.Stats.Compute,
			RemoteWait: n.Stats.RemoteWait,
			Presend:    n.Stats.Presend,
			Sync:       n.Stats.Sync,
		}
	}
	return out
}

// NamePhase attaches a human-readable name to a parallel-phase ID, used by
// trace spans and the per-phase breakdown. Call before Run.
func (m *Machine) NamePhase(id int, name string) {
	m.phaseNames[id] = name
}

// PhaseName returns the registered name for a phase, or "phase <id>".
func (m *Machine) PhaseName(id int) string {
	if s, ok := m.phaseNames[id]; ok {
		return s
	}
	return fmt.Sprintf("phase %d", id)
}

// PhaseStat is the machine-level per-phase breakdown: times are averages
// over nodes (like Breakdown), event counts are sums.
type PhaseStat struct {
	Phase int    `json:"phase"`
	Name  string `json:"name"`
	// Iters is the executions of the phase directive per node.
	Iters int64 `json:"iters"`
	// Per-node average times (virtual ns).
	ComputeNS    int64 `json:"compute_ns"`
	RemoteWaitNS int64 `json:"remote_wait_ns"`
	PresendNS    int64 `json:"presend_ns"`
	SyncNS       int64 `json:"sync_ns"`
	// Machine-wide event sums.
	ReadFaults  int64 `json:"read_faults"`
	WriteFaults int64 `json:"write_faults"`
	PresendsIn  int64 `json:"presends_in"`
	PresendHits int64 `json:"presend_hits"`
}

// Faults is the phase's total access faults.
func (p PhaseStat) Faults() int64 { return p.ReadFaults + p.WriteFaults }

// Coverage is the fraction of would-be faults the pre-send averted:
// hits / (hits + faults). Zero when the phase had no remote accesses.
func (p PhaseStat) Coverage() float64 {
	d := p.PresendHits + p.Faults()
	if d == 0 {
		return 0
	}
	return float64(p.PresendHits) / float64(d)
}

// Accuracy is the fraction of pre-sent blocks actually consumed:
// hits / presends-received. Zero when nothing was pre-sent.
func (p PhaseStat) Accuracy() float64 {
	if p.PresendsIn == 0 {
		return 0
	}
	return float64(p.PresendHits) / float64(p.PresendsIn)
}

// PhaseBreakdown aggregates every node's per-phase stats, sorted by phase
// ID. Iters is per-node (they agree under SPMD execution).
func (m *Machine) PhaseBreakdown() []PhaseStat {
	agg := make(map[int]*PhaseStat)
	for _, n := range m.Nodes {
		for _, ps := range n.Met.Phases.All() {
			a := agg[ps.Phase]
			if a == nil {
				a = &PhaseStat{Phase: ps.Phase, Name: m.PhaseName(ps.Phase)}
				agg[ps.Phase] = a
			}
			if ps.Iters > a.Iters {
				a.Iters = ps.Iters
			}
			a.ComputeNS += ps.ComputeNS
			a.RemoteWaitNS += ps.RemoteWaitNS
			a.PresendNS += ps.PresendNS
			a.SyncNS += ps.SyncNS
			a.ReadFaults += ps.ReadFaults
			a.WriteFaults += ps.WriteFaults
			a.PresendsIn += ps.PresendsIn
			a.PresendHits += ps.PresendHits
		}
	}
	out := make([]PhaseStat, 0, len(agg))
	for _, a := range agg {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Phase < out[j].Phase })
	nn := int64(len(m.Nodes))
	if nn > 0 {
		for i := range out {
			out[i].ComputeNS /= nn
			out[i].RemoteWaitNS /= nn
			out[i].PresendNS /= nn
			out[i].SyncNS /= nn
		}
	}
	return out
}

// MetricsReport is the machine's full post-run metrics export
// (dsmrun -metrics).
type MetricsReport struct {
	Protocol  string            `json:"protocol"`
	Nodes     int               `json:"nodes"`
	BlockSize int               `json:"block_size"`
	ElapsedNS int64             `json:"elapsed_ns"`
	Breakdown Breakdown         `json:"breakdown"`
	Counters  Counters          `json:"counters"`
	Phases    []PhaseStat       `json:"phases"`
	Kernel    sim.KernelStats   `json:"kernel"`
	Registry  *metrics.Snapshot `json:"registry"`
	// Exec carries host- and engine-dependent execution facts. It is NOT
	// filled by Report — the deterministic body above must stay
	// byte-identical across engines and hosts — callers that want it
	// (dsmrun -metrics) attach Machine.ExecInfo() explicitly.
	Exec *ExecInfo `json:"exec,omitempty"`
}

// ExecInfo describes how the engine actually executed a run: effective
// worker and lane counts plus host shape. These facts vary across hosts
// and engine configurations while the simulated results do not, so they
// are kept out of Report's deterministic body.
type ExecInfo struct {
	Engine     string `json:"engine"`
	Workers    int    `json:"workers,omitempty"`
	Lanes      int    `json:"lanes,omitempty"`
	Lookahead  string `json:"lookahead,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// ExecInfo reports the engine execution facts for the completed run.
func (m *Machine) ExecInfo() *ExecInfo {
	e := &ExecInfo{
		Engine:     string(m.Cfg.Engine),
		Workers:    m.workers,
		Lanes:      m.lanes,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if e.Engine == "" {
		e.Engine = string(EngineSerial)
	}
	if m.Cfg.Engine == EngineParallel {
		e.Lookahead = string(m.Cfg.Lookahead)
		if e.Lookahead == "" {
			e.Lookahead = string(LookaheadPair)
		}
	}
	return e
}

// Report assembles the metrics export. Call after Run.
func (m *Machine) Report() MetricsReport {
	return MetricsReport{
		Protocol:  string(m.Cfg.Protocol),
		Nodes:     m.Cfg.Nodes,
		BlockSize: m.Cfg.BlockSize,
		ElapsedNS: int64(m.Elapsed()),
		Breakdown: m.Breakdown(),
		Counters:  m.Counters(),
		Phases:    m.PhaseBreakdown(),
		Kernel:    m.Kernel.Stats(),
		Registry:  m.Reg.Snapshot(),
	}
}

// SnapshotBlock returns the authoritative contents of the block
// containing a after the run completes: the home node's copy, or the
// exclusive owner's when the directory records one (validation only — not
// part of the simulated execution).
func (m *Machine) SnapshotBlock(a memory.Addr) []byte {
	b := m.AS.BlockOf(a)
	home := m.Nodes[m.AS.HomeOf(a)]
	src := home.Store
	if e := home.Dir.Lookup(b); e != nil && e.State == tempest.DirRemoteExcl {
		src = m.Nodes[e.Owner].Store
	}
	l := src.Line(b)
	if l == nil {
		panic(fmt.Sprintf("rt: snapshot of absent block %#x", uint64(b)))
	}
	return l.Data
}

// SnapshotF64 reads a shared value after the run completes, consulting the
// directory to find the node holding the current copy (validation only —
// not part of the simulated execution).
func (m *Machine) SnapshotF64(a memory.Addr) float64 {
	data := m.SnapshotBlock(a)
	off := a.Offset() & int64(m.Cfg.BlockSize-1)
	return math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
}

// HashMemory folds the authoritative contents of every allocated region
// into one 64-bit FNV-1a hash. For a deterministic program whose writes do
// not depend on racy read values, the hash is protocol-independent — the
// chaos subsystem's differential oracle compares it across coherence
// protocols ("same program, same final memory").
func (m *Machine) HashMemory() uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	bs := int64(m.Cfg.BlockSize)
	for _, r := range m.AS.Regions() {
		for idx := int64(0); idx < r.NumBlocks(); idx++ {
			for _, c := range m.SnapshotBlock(r.Addr(idx * bs)) {
				h = (h ^ uint64(c)) * fnvPrime
			}
		}
	}
	return h
}
