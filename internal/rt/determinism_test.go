// Determinism acceptance tests for the parallel engine: running any of
// the paper applications with Engine=EngineParallel must produce output
// byte-identical to the serial engine — the same final virtual time, the
// same metrics report, and the same JSONL protocol trace.
package rt_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"presto/internal/apps/adaptive"
	"presto/internal/apps/barnes"
	"presto/internal/apps/water"
	"presto/internal/rt"
	"presto/internal/sim"
	"presto/internal/trace"
)

// artifacts captures everything a run externalizes.
type artifacts struct {
	elapsed sim.Time
	report  []byte
	trace   []byte
}

// runApp executes one small configuration of the named app with a JSONL
// trace attached and returns its observable output.
func runApp(t *testing.T, app string, engine rt.EngineKind, workers int) artifacts {
	t.Helper()
	var buf bytes.Buffer
	jsonl := trace.NewJSONL(&buf)
	mc := rt.Config{
		Nodes: 8, BlockSize: 32, Protocol: rt.ProtoPredictive,
		Engine: engine, Workers: workers, Sink: jsonl,
	}
	var m *rt.Machine
	var err error
	switch app {
	case "adaptive":
		var r *adaptive.Result
		r, err = adaptive.Run(adaptive.Config{Machine: mc, Size: 32, Iters: 1, RefineEvery: 1})
		if err == nil {
			m = r.Machine
		}
	case "barnes":
		var r *barnes.Result
		r, err = barnes.Run(barnes.Config{Machine: mc, Bodies: 256, Iters: 1})
		if err == nil {
			m = r.Machine
		}
	case "water":
		var r *water.Result
		r, err = water.Run(water.Config{Machine: mc, Molecules: 64, Steps: 1})
		if err == nil {
			m = r.Machine
		}
	default:
		t.Fatalf("unknown app %q", app)
	}
	if err != nil {
		t.Fatalf("%s (%s): %v", app, engine, err)
	}
	if err := jsonl.Close(); err != nil {
		t.Fatalf("trace close: %v", err)
	}
	rep, err := json.Marshal(m.Report())
	if err != nil {
		t.Fatalf("report marshal: %v", err)
	}
	return artifacts{elapsed: m.Elapsed(), report: rep, trace: buf.Bytes()}
}

// TestParallelEngineDeterminism runs one iteration of each paper
// application under both engines and requires identical final virtual
// time, metrics report bytes, and protocol trace bytes.
func TestParallelEngineDeterminism(t *testing.T) {
	for _, app := range []string{"adaptive", "barnes", "water"} {
		t.Run(app, func(t *testing.T) {
			serial := runApp(t, app, rt.EngineSerial, 0)
			for _, workers := range []int{1, 4} {
				par := runApp(t, app, rt.EngineParallel, workers)
				if serial.elapsed != par.elapsed {
					t.Fatalf("workers=%d: elapsed %v (serial) vs %v (parallel)",
						workers, serial.elapsed, par.elapsed)
				}
				if !bytes.Equal(serial.report, par.report) {
					t.Fatalf("workers=%d: metrics reports differ:\nserial:   %.400s\nparallel: %.400s",
						workers, serial.report, par.report)
				}
				if !bytes.Equal(serial.trace, par.trace) {
					t.Fatalf("workers=%d: JSONL traces differ (serial %d bytes, parallel %d bytes)",
						workers, len(serial.trace), len(par.trace))
				}
			}
		})
	}
}

// TestParallelEngineUnknown rejects unrecognized engine names.
func TestParallelEngineUnknown(t *testing.T) {
	m := rt.New(rt.Config{Nodes: 2, Engine: rt.EngineKind("warp")})
	err := m.Run(func(w *rt.Worker) { w.Barrier() })
	if err == nil {
		t.Fatal("expected error for unknown engine")
	}
}
