package serve

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"presto/internal/harness"
)

// newTestServer wires a Service behind httptest and returns a client.
func newTestServer(t *testing.T, cfg Config) (*Service, *Client) {
	t.Helper()
	svc := NewService(cfg)
	srv := httptest.NewServer(NewServer(svc).Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return svc, &Client{Base: srv.URL}
}

// TestBatchSecondRunFullyDeduped is the dedupe proof: submitting the
// identical batch twice must simulate each spec exactly once and return
// byte-identical response bodies, the second served entirely from cache.
func TestBatchSecondRunFullyDeduped(t *testing.T) {
	var runs atomic.Int64
	svc, cl := newTestServer(t, Config{
		Workers: 4,
		Runner: func(ctx context.Context, spec Spec) *Result {
			runs.Add(1)
			return &Result{ElapsedNS: spec.Seed}
		},
	})

	const n = 20
	req := BatchRequest{SeedRange: &SeedRange{Start: 1, Count: n}}
	var first, second bytes.Buffer
	if err := cl.BatchRaw(context.Background(), req, &first); err != nil {
		t.Fatal(err)
	}
	if err := cl.BatchRaw(context.Background(), req, &second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("replayed batch body differs:\n--- first\n%s--- second\n%s", &first, &second)
	}
	if lines := bytes.Count(first.Bytes(), []byte{'\n'}); lines != n {
		t.Fatalf("response has %d lines, want %d", lines, n)
	}
	if got := runs.Load(); got != n {
		t.Fatalf("runner executed %d times for two identical batches, want %d", got, n)
	}
	if c := counter(svc, "serve/cache_hits"); c != n {
		t.Fatalf("second batch produced %d cache hits, want %d (100%%)", c, n)
	}
	if c := counter(svc, "serve/cache_misses"); c != n {
		t.Fatalf("misses = %d, want %d", c, n)
	}
}

// TestBatchFigureCSVMatchesInProcess is the end-to-end determinism
// contract: a figure sweep pushed through HTTP returns the exact CSV an
// in-process harness run renders.
func TestBatchFigureCSVMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full figure5 sweep")
	}
	_, cl := newTestServer(t, Config{Workers: 2})

	fig5, ok := harness.ByID("figure5")
	if !ok {
		t.Fatal("figure5 not registered")
	}
	wantCSV, _, err := harness.RunCSV(fig5, harness.Options{Scale: harness.Quick})
	if err != nil {
		t.Fatal(err)
	}

	req := BatchRequest{Specs: []Spec{{Kind: KindExperiment, Experiment: "figure5"}}}
	var got *Result
	err = cl.Batch(context.Background(), req, func(r *Result) error { got = r; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Err != "" {
		t.Fatalf("batch result: %+v", got)
	}
	if got.Experiment == nil {
		t.Fatal("experiment payload missing")
	}
	if got.Experiment.CSV != string(wantCSV) {
		t.Fatalf("served CSV differs from in-process run:\n--- served\n%s--- in-process\n%s",
			got.Experiment.CSV, wantCSV)
	}
	if got.Experiment.CSVSHA256 != sha256Hex(wantCSV) {
		t.Fatalf("csv_sha256 %s does not match content", got.Experiment.CSVSHA256)
	}
}

// TestBatchChaosMatchesInProcess runs one single-combo chaos spec through
// HTTP and checks the fingerprint against a direct Run call.
func TestBatchChaosMatchesInProcess(t *testing.T) {
	_, cl := newTestServer(t, Config{Workers: 1})

	spec, err := Spec{
		Kind: KindChaos, Seed: 5, Protocol: "stache",
		MaxNodes: 2, MaxPhases: 1, MaxIters: 2, MaxBlocks: 4,
	}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	want := Run(context.Background(), spec)
	if want.Err != "" || want.MemHash == "" {
		t.Fatalf("in-process run: %+v", want)
	}

	var got *Result
	err = cl.Batch(context.Background(), BatchRequest{Specs: []Spec{spec}},
		func(r *Result) error { got = r; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Err != "" {
		t.Fatalf("batch result: %+v", got)
	}
	if got.MemHash != want.MemHash || got.ElapsedNS != want.ElapsedNS {
		t.Fatalf("served fingerprint (%s, %d) != in-process (%s, %d)",
			got.MemHash, got.ElapsedNS, want.MemHash, want.ElapsedNS)
	}
	if got.SpecHash != spec.Hash() {
		t.Fatalf("spec_hash %s, want %s", got.SpecHash, spec.Hash())
	}
}

func TestSpecEndpoint(t *testing.T) {
	_, cl := newTestServer(t, Config{
		Workers: 1,
		Runner: func(ctx context.Context, spec Spec) *Result {
			return &Result{ElapsedNS: spec.Seed}
		},
	})

	if _, err := cl.Spec(context.Background(), strings.Repeat("0", 64)); !errors.Is(err, ErrUnknownSpec) {
		t.Fatalf("unknown hash: %v", err)
	}

	spec := mustSpec(t, 11)
	var streamed *Result
	err := cl.Batch(context.Background(), BatchRequest{Specs: []Spec{spec}},
		func(r *Result) error { streamed = r; return nil })
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.Spec(context.Background(), spec.Hash())
	if err != nil {
		t.Fatal(err)
	}
	if got.SpecHash != streamed.SpecHash || got.ElapsedNS != streamed.ElapsedNS {
		t.Fatalf("GET /v1/spec %+v != streamed %+v", got, streamed)
	}
}

func TestBatchRejectsInvalidSpecs(t *testing.T) {
	_, cl := newTestServer(t, Config{Workers: 1})
	err := cl.Batch(context.Background(),
		BatchRequest{Specs: []Spec{{Kind: KindChaos}, {Kind: "nope"}}},
		func(*Result) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "unknown spec kind") {
		t.Fatalf("invalid batch: %v", err)
	}
	err = cl.Batch(context.Background(), BatchRequest{}, func(*Result) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "empty batch") {
		t.Fatalf("empty batch: %v", err)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, cl := newTestServer(t, Config{
		Workers: 1,
		Runner:  func(ctx context.Context, spec Spec) *Result { return &Result{} },
	})
	req := BatchRequest{SeedRange: &SeedRange{Start: 1, Count: 5}}
	if err := cl.BatchRaw(context.Background(), req, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	doc, err := cl.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]int64{}
	for _, c := range doc.Metrics.Counters {
		vals[c.Name] = c.Value
	}
	if vals["serve/jobs"] != 5 || vals["serve/cache_misses"] != 5 {
		t.Fatalf("counters after one 5-spec batch: %v", vals)
	}
	if doc.CacheEntries != 5 {
		t.Fatalf("cache_entries = %d", doc.CacheEntries)
	}
}
