package serve

import (
	"context"
	"fmt"

	"presto/internal/blockstate"
	"presto/internal/chaos"
	"presto/internal/harness"
	"presto/internal/network"
	"presto/internal/rt"
)

// Run is the production runner: it executes one normalized spec on the
// in-process simulator. A simulation cannot be preempted once started,
// so ctx is honored only at the boundary (a job whose context is already
// canceled returns a structured error without simulating); the Service's
// timeout layer handles overruns.
func Run(ctx context.Context, spec Spec) *Result {
	if err := ctx.Err(); err != nil {
		return &Result{Err: fmt.Sprintf("serve: job canceled before start: %v", err)}
	}
	switch spec.Kind {
	case KindChaos:
		if spec.chaosDiff() {
			return runChaosDiff(spec)
		}
		return runChaosSingle(spec)
	case KindExperiment:
		return runExperiment(spec)
	}
	return &Result{Err: fmt.Sprintf("serve: unknown spec kind %q", spec.Kind)}
}

// refCombo is the differential matrix cell whose fingerprint stamps the
// result's ElapsedNS/MemHash: the unoptimized protocol on the reference
// engine.
var refCombo = string(rt.ProtoStache) + "/" + string(rt.EngineSerial)

// runChaosDiff runs the full differential oracle on one seed — the
// protofuzz server path. Oracle violations are payload (the client
// decides what a failing seed means), not job errors.
func runChaosDiff(spec Spec) *Result {
	o := chaos.Options{
		Seeds:     1,
		Start:     spec.Seed,
		Scale:     chaos.Scale(spec.Scale),
		Caps:      spec.Caps(),
		JitterPct: spec.JitterPct,
		MaxEvents: spec.MaxEvents,
		NoShrink:  true,
	}
	r := chaos.RunSeed(spec.Seed, o)
	res := &Result{Chaos: &ChaosResult{Diff: &r}}
	if fp, ok := r.Runs[refCombo]; ok && fp.Err == "" {
		res.ElapsedNS = fp.ElapsedNS
		res.MemHash = fmt.Sprintf("%016x", fp.MemHash)
	}
	return res
}

// runChaosSingle executes one configured {protocol, engine, sched,
// storage} combination of a derived chaos workload, with the spec's
// block-size and interconnect overrides applied to the derivation.
func runChaosSingle(spec Spec) *Result {
	cs := chaos.DeriveCapped(spec.Seed, chaos.Scale(spec.Scale), spec.Caps())
	// Jitter policy mirrors chaos.Options.derive: >0 forces the
	// percentage, <0 forces it off, 0 keeps the derived value.
	switch {
	case spec.JitterPct > 0:
		cs.JitterPct = spec.JitterPct
	case spec.JitterPct < 0:
		cs.JitterPct = 0
	}
	if spec.BlockSize != 0 {
		cs.BlockSize = spec.BlockSize
	}
	if spec.Net != "" {
		cs.Net = spec.Net
	}
	fp := chaos.ExecuteRun(cs, chaos.RunConfig{
		Protocol:  rt.ProtocolKind(spec.Protocol),
		Engine:    rt.EngineKind(spec.Engine),
		Sched:     rt.SchedKind(spec.Sched),
		Storage:   blockstate.Kind(spec.Storage),
		Lookahead: rt.LookaheadKind(spec.Lookahead),
		NoSteal:   spec.NoSteal,
		Workers:   spec.Workers,
		MaxEvents: spec.MaxEvents,
	})
	res := &Result{Chaos: &ChaosResult{Fingerprint: &fp}}
	if fp.Err == "" {
		res.ElapsedNS = fp.ElapsedNS
		res.MemHash = fmt.Sprintf("%016x", fp.MemHash)
	}
	return res
}

// runExperiment runs a registered harness experiment and packages its
// CSV rows — byte-identical to an in-process harness.RunCSV call, the
// service's end-to-end determinism contract.
func runExperiment(spec Spec) *Result {
	e, ok := harness.ByID(spec.Experiment)
	if !ok {
		return &Result{Err: fmt.Sprintf("serve: unknown experiment %q", spec.Experiment)}
	}
	o := harness.Options{
		Scale:     harness.ParseScale(spec.Scale),
		Engine:    rt.EngineKind(spec.Engine),
		Workers:   spec.Workers,
		Lookahead: rt.LookaheadKind(spec.Lookahead),
		NoSteal:   spec.NoSteal,
		Sched:     rt.SchedKind(spec.Sched),
		Profile:   spec.Profile,
		Predict:   spec.Predict,
	}
	if spec.Net != "" {
		p, err := network.Preset(spec.Net)
		if err != nil {
			return &Result{Err: fmt.Sprintf("serve: %v", err)}
		}
		o.Net = p
	}
	csv, hres, err := harness.RunCSV(e, o)
	if err != nil {
		return &Result{Err: fmt.Sprintf("serve: experiment %s: %v", spec.Experiment, err)}
	}
	rows, err := hres.JSON()
	if err != nil {
		return &Result{Err: fmt.Sprintf("serve: experiment %s: encoding rows: %v", spec.Experiment, err)}
	}
	res := &Result{Experiment: &ExperimentResult{
		CSV:       string(csv),
		CSVSHA256: sha256Hex(csv),
		Notes:     hres.Notes,
		Rows:      rows,
	}}
	for _, row := range hres.Rows {
		res.ElapsedNS += int64(row.Total())
	}
	return res
}
