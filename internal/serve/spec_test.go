package serve

import (
	"strings"
	"testing"
)

func TestNormalizeChaosDefaults(t *testing.T) {
	n, err := Spec{Kind: KindChaos, Seed: 7}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Scale != "quick" {
		t.Fatalf("default scale = %q, want quick", n.Scale)
	}
	if n.MaxEvents != 20_000_000 {
		t.Fatalf("default max_events = %d", n.MaxEvents)
	}
	if !n.chaosDiff() {
		t.Fatal("no-protocol chaos spec must be differential")
	}
	// Normalizing is idempotent: the canonical form re-normalizes to itself.
	n2, err := n.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n != n2 {
		t.Fatalf("normalize not idempotent: %+v vs %+v", n, n2)
	}
}

func TestNormalizeChaosSingleComboFillsKinds(t *testing.T) {
	n, err := Spec{Kind: KindChaos, Seed: 1, Protocol: "stache"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Engine == "" || n.Sched == "" || n.Storage == "" || n.Lookahead == "" {
		t.Fatalf("single-combo defaults not filled: %+v", n)
	}
	if n.chaosDiff() {
		t.Fatal("protocol-bearing spec must not be differential")
	}
}

func TestHashDistinguishesAndCollapses(t *testing.T) {
	a, err := Spec{Kind: KindChaos, Seed: 3}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	// Explicit defaults normalize to the same canonical spec → same hash.
	b, err := Spec{Kind: KindChaos, Seed: 3, Scale: "quick", MaxEvents: 20_000_000}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() != b.Hash() {
		t.Fatalf("equivalent specs hash differently:\n%s\n%s", a.Canonical(), b.Canonical())
	}
	c, err := Spec{Kind: KindChaos, Seed: 4}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() == c.Hash() {
		t.Fatal("different seeds must hash differently")
	}
	if len(a.Hash()) != 64 {
		t.Fatalf("hash %q is not hex SHA-256", a.Hash())
	}
}

func TestNormalizeRejections(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"missing kind", Spec{}, "missing kind"},
		{"unknown kind", Spec{Kind: "nope"}, "unknown spec kind"},
		{"negative seed", Spec{Kind: KindChaos, Seed: -1}, "negative seed"},
		{"bad scale", Spec{Kind: KindChaos, Scale: "huge"}, "scale"},
		{"diff with engine", Spec{Kind: KindChaos, Engine: "parallel"}, "cannot set"},
		{"diff with block size", Spec{Kind: KindChaos, BlockSize: 64}, "cannot set"},
		{"bad block size", Spec{Kind: KindChaos, Protocol: "stache", BlockSize: 48}, "block_size"},
		{"bad protocol", Spec{Kind: KindChaos, Protocol: "mesi"}, "protocol"},
		{"bad net", Spec{Kind: KindChaos, Protocol: "stache", Net: "infiniband"}, "net"},
		{"chaos with experiment", Spec{Kind: KindChaos, Experiment: "figure5"}, "experiment fields"},
		{"unknown experiment", Spec{Kind: KindExperiment, Experiment: "figure99"}, "unknown experiment"},
		{"experiment missing id", Spec{Kind: KindExperiment}, "missing experiment"},
		{"experiment with seed", Spec{Kind: KindExperiment, Experiment: "figure5", Seed: 3}, "chaos fields"},
		{"experiment with protocol", Spec{Kind: KindExperiment, Experiment: "figure5", Protocol: "stache"}, "chaos fields"},
		{"experiment bad scale", Spec{Kind: KindExperiment, Experiment: "figure5", Scale: "long"}, "scale"},
	}
	for _, tc := range cases {
		if _, err := tc.spec.Normalize(); err == nil {
			t.Errorf("%s: Normalize accepted %+v", tc.name, tc.spec)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestExpandSeedRange(t *testing.T) {
	br := BatchRequest{
		SeedRange: &SeedRange{Start: 10, Count: 3},
		Specs:     []Spec{{Kind: KindExperiment, Experiment: "figure5"}},
	}
	specs, err := br.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("expanded %d specs, want 4", len(specs))
	}
	for i, want := range []int64{10, 11, 12} {
		if specs[i].Seed != want || specs[i].Kind != KindChaos {
			t.Fatalf("spec[%d] = %+v, want chaos seed %d", i, specs[i], want)
		}
	}
	if specs[3].Kind != KindExperiment {
		t.Fatalf("range must expand before explicit specs: %+v", specs[3])
	}

	if _, err := (&BatchRequest{}).Expand(0); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := br.Expand(2); err == nil {
		t.Fatal("over-limit batch accepted")
	}
	bad := BatchRequest{Specs: []Spec{{Kind: KindChaos}, {Kind: "nope"}}}
	if _, err := bad.Expand(0); err == nil {
		t.Fatal("batch with an invalid spec accepted")
	}
}
