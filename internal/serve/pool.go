package serve

import "sync"

// Pool is a fixed-size worker pool over a deterministic FIFO job queue:
// jobs start in exactly submission order (with one worker, they also
// finish in submission order). The queue is unbounded — backpressure is
// the caller's concern (the HTTP layer bounds batch sizes) — so Submit
// never blocks behind a slow job.
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []func()
	closed bool
	wg     sync.WaitGroup
}

// NewPool starts workers goroutines draining the queue.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = 1
	}
	p := &Pool{}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 && p.closed {
			p.mu.Unlock()
			return
		}
		job := p.queue[0]
		p.queue = p.queue[1:]
		p.mu.Unlock()
		job()
	}
}

// Submit enqueues a job. It reports false (and drops the job) after
// Close — callers must resolve their own futures in that case.
func (p *Pool) Submit(job func()) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.queue = append(p.queue, job)
	p.cond.Signal()
	return true
}

// Depth returns the number of queued (not yet started) jobs.
func (p *Pool) Depth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// Close drains the queue and stops the workers: already-submitted jobs
// run to completion, new submissions are rejected, and Close returns
// once every worker has exited.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}
