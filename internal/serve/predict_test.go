package serve

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPredictHashDisjoint pins the provenance guarantee: a predicted
// experiment and its simulated twin are different cache identities by
// construction, so the result cache can never serve one for the other.
func TestPredictHashDisjoint(t *testing.T) {
	sim, err := Spec{Kind: KindExperiment, Experiment: "figure5"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	pred, err := Spec{Kind: KindExperiment, Experiment: "figure5", Predict: true}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if sim.Hash() == pred.Hash() {
		t.Fatalf("predict flag does not split the spec hash:\n%s\n%s",
			sim.Canonical(), pred.Canonical())
	}
	if !strings.Contains(string(pred.Canonical()), `"predict":true`) {
		t.Fatalf("predict missing from canonical encoding: %s", pred.Canonical())
	}
}

// TestPredictNormalizeRejections: predict is meaningful only for the
// figure/sweep experiments — anywhere else it would mint a second cache
// identity for an identical result, so normalization rejects it.
func TestPredictNormalizeRejections(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"chaos", Spec{Kind: KindChaos, Seed: 1, Predict: true}, "experiment fields set"},
		{"non-capable experiment", Spec{Kind: KindExperiment, Experiment: "table1", Predict: true}, "predict is only supported"},
	}
	for _, c := range cases {
		if _, err := c.spec.Normalize(); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

// TestPredictMetrics asserts the /metricsz provenance split: each
// completed job counts as exactly one of predicted/simulated, and
// predicted jobs feed the dedicated latency histogram.
func TestPredictMetrics(t *testing.T) {
	svc := NewService(Config{
		Workers: 1,
		Runner: func(ctx context.Context, spec Spec) *Result {
			return &Result{}
		},
	})
	defer svc.Close()

	pred, err := Spec{Kind: KindExperiment, Experiment: "figure5", Predict: true}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Spec{Kind: KindExperiment, Experiment: "figure5"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, s := range []Spec{pred, pred, sim} {
		if _, err := svc.Do(s).Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// The second predict submission is a cache hit — only two jobs ran.
	if got := counter(svc, "serve/jobs_predicted"); got != 1 {
		t.Fatalf("jobs_predicted = %d, want 1", got)
	}
	if got := counter(svc, "serve/jobs_simulated"); got != 1 {
		t.Fatalf("jobs_simulated = %d, want 1", got)
	}
	doc := svc.MetricsSnapshot()
	if doc.PredictLatency.P50NS <= 0 || doc.PredictLatency.P99NS < doc.PredictLatency.P50NS {
		t.Fatalf("predict latency quantiles %+v", doc.PredictLatency)
	}
	names := map[string]bool{}
	for _, c := range doc.Metrics.Counters {
		names[c.Name] = true
	}
	for _, want := range []string{"serve/jobs_predicted", "serve/jobs_simulated"} {
		if !names[want] {
			t.Fatalf("snapshot missing %s", want)
		}
	}
}

// TestServedPredictErrorMatchesGolden closes the ISSUE's identity loop
// from the HTTP side: the predict-error experiment served over the wire
// must be byte-identical to the golden CSV the in-process harness test
// locks (internal/harness/testdata/golden/predict-error.csv).
func TestServedPredictErrorMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("predict-error simulates every figure target (tens of seconds)")
	}
	want, err := os.ReadFile(filepath.Join("..", "harness", "testdata", "golden", "predict-error.csv"))
	if err != nil {
		t.Fatalf("missing harness golden (regenerate with go test ./internal/harness -run PredictErrorGolden -update): %v", err)
	}

	_, cl := newTestServer(t, Config{Workers: 1})
	req := BatchRequest{Specs: []Spec{{Kind: KindExperiment, Experiment: "predict-error"}}}
	var got *Result
	err = cl.Batch(context.Background(), req, func(r *Result) error { got = r; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Err != "" || got.Experiment == nil {
		t.Fatalf("batch result: %+v", got)
	}
	if got.Experiment.CSV != string(want) {
		t.Fatalf("served predict-error CSV diverges from golden:\n--- served\n%s--- golden\n%s",
			got.Experiment.CSV, want)
	}
}
