package serve

import "container/list"

// Cache is a content-addressed LRU result cache with a byte budget: the
// key is a spec hash, the value the encoded NDJSON result line. It is
// not safe for concurrent use — the Service serializes access under its
// mutex. Eviction is deterministic: least-recently-used first, driven
// only by the sequence of Put/Get calls.
type Cache struct {
	budget  int64 // max resident bytes (values only); <=0 means unbounded
	bytes   int64
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
}

type cacheEntry struct {
	hash string
	line []byte
}

// NewCache builds a cache holding at most budget bytes of encoded
// results (<=0 = unbounded).
func NewCache(budget int64) *Cache {
	return &Cache{
		budget:  budget,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// Get returns the cached line for hash and marks it most recently used.
func (c *Cache) Get(hash string) ([]byte, bool) {
	e := c.entries[hash]
	if e == nil {
		return nil, false
	}
	c.lru.MoveToFront(e)
	return e.Value.(*cacheEntry).line, true
}

// Put inserts (or refreshes) a line and evicts least-recently-used
// entries until the budget holds again, returning the evicted hashes in
// eviction order. A line larger than the whole budget is not cached (a
// single oversized result must not flush every other entry).
func (c *Cache) Put(hash string, line []byte) (evicted []string) {
	if e := c.entries[hash]; e != nil {
		ce := e.Value.(*cacheEntry)
		c.bytes += int64(len(line)) - int64(len(ce.line))
		ce.line = line
		c.lru.MoveToFront(e)
	} else {
		if c.budget > 0 && int64(len(line)) > c.budget {
			return nil
		}
		c.entries[hash] = c.lru.PushFront(&cacheEntry{hash: hash, line: line})
		c.bytes += int64(len(line))
	}
	for c.budget > 0 && c.bytes > c.budget {
		back := c.lru.Back()
		if back == nil || back == c.lru.Front() {
			break // never evict the entry just inserted
		}
		ce := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.entries, ce.hash)
		c.bytes -= int64(len(ce.line))
		evicted = append(evicted, ce.hash)
	}
	return evicted
}

// Len returns the number of resident results.
func (c *Cache) Len() int { return len(c.entries) }

// Bytes returns the resident value bytes.
func (c *Cache) Bytes() int64 { return c.bytes }
