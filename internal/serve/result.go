package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"presto/internal/chaos"
)

// Result is one job's outcome, the unit streamed as one NDJSON line.
// Every field is deterministic for a fixed spec — no wall-clock times,
// no cache provenance — so a replayed batch's response body is
// byte-identical to the first run's. Cache-hit accounting is observable
// only through /metricsz.
type Result struct {
	// SpecHash is the content address of the normalized spec.
	SpecHash string `json:"spec_hash"`
	// Spec is the normalized spec the job ran.
	Spec Spec `json:"spec"`
	// Err reports a job-level failure (run error, panic, timeout). Oracle
	// violations are payload, not Err: a chaos seed whose differential
	// check fails is a successful job with a failing verdict.
	Err string `json:"err,omitempty"`
	// ElapsedNS is simulated time: the chaos reference run's elapsed time
	// or the summed row totals of an experiment.
	ElapsedNS int64 `json:"elapsed_ns,omitempty"`
	// MemHash is rt.Machine.HashMemory of the chaos reference run
	// (stache/serial), in %016x — the fingerprint clients verify.
	MemHash string `json:"mem_hash,omitempty"`
	// Chaos carries a chaos job's payload.
	Chaos *ChaosResult `json:"chaos,omitempty"`
	// Experiment carries an experiment job's payload.
	Experiment *ExperimentResult `json:"experiment,omitempty"`
}

// ChaosResult is a chaos job's payload: the full differential verdict or
// a single configured run's fingerprint.
type ChaosResult struct {
	Diff        *chaos.SeedResult  `json:"diff,omitempty"`
	Fingerprint *chaos.Fingerprint `json:"fingerprint,omitempty"`
}

// ExperimentResult is an experiment job's payload.
type ExperimentResult struct {
	// CSV holds the experiment's rows exactly as the in-process harness
	// renders them (Result.CSV) — the e2e determinism contract.
	CSV string `json:"csv"`
	// CSVSHA256 is the hex SHA-256 of CSV, the cheap client-side identity
	// check mirroring the chaos MemHash.
	CSVSHA256 string `json:"csv_sha256"`
	// Notes are the experiment's derived findings.
	Notes []string `json:"notes,omitempty"`
	// Rows is the harness's machine-readable record (per-phase metrics
	// included; attribution profiles when the spec asked for Profile).
	Rows json.RawMessage `json:"rows,omitempty"`
}

// Failed reports a job-level error or a failing chaos verdict.
func (r *Result) Failed() bool {
	if r.Err != "" {
		return true
	}
	return r.Chaos != nil && r.Chaos.Diff != nil && r.Chaos.Diff.Failed()
}

// encode renders the result as one NDJSON line (trailing newline
// included). The encoded bytes are what the cache stores and what every
// response writes, so replay identity is byte-exact by construction.
func (r *Result) encode() []byte {
	b, err := json.Marshal(r)
	if err != nil {
		// Fall back to a minimal error line rather than dropping the job.
		b, _ = json.Marshal(&Result{SpecHash: r.SpecHash, Spec: r.Spec,
			Err: fmt.Sprintf("serve: encoding result: %v", err)})
	}
	return append(b, '\n')
}

func sha256Hex(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// errResult builds a job-level failure result.
func errResult(spec Spec, hash, msg string) *Result {
	return &Result{SpecHash: hash, Spec: spec, Err: msg}
}

// BatchRequest is the POST /v1/batch body: an explicit spec list, a
// chaos seed range, or both (range first, then specs).
type BatchRequest struct {
	Specs []Spec `json:"specs,omitempty"`
	// SeedRange expands to Count consecutive chaos differential specs
	// starting at Start.
	SeedRange *SeedRange `json:"seed_range,omitempty"`
}

// SeedRange describes a band of consecutive chaos seeds sharing one
// derivation envelope — the protofuzz batch shape.
type SeedRange struct {
	Start     int64  `json:"start"`
	Count     int    `json:"count"`
	Scale     string `json:"scale,omitempty"`
	JitterPct int    `json:"jitter_pct,omitempty"`
	MaxEvents int64  `json:"max_events,omitempty"`
	MaxNodes  int    `json:"max_nodes,omitempty"`
	MaxPhases int    `json:"max_phases,omitempty"`
	MaxIters  int    `json:"max_iters,omitempty"`
	MaxBlocks int    `json:"max_blocks,omitempty"`
}

// Expand normalizes the request into the ordered spec list the batch
// runs. maxBatch bounds the total job count (0 = unbounded).
func (br *BatchRequest) Expand(maxBatch int) ([]Spec, error) {
	var out []Spec
	if sr := br.SeedRange; sr != nil {
		if sr.Count <= 0 {
			return nil, fmt.Errorf("serve: seed_range count must be positive (got %d)", sr.Count)
		}
		if maxBatch > 0 && sr.Count > maxBatch {
			return nil, fmt.Errorf("serve: seed_range count %d exceeds the batch limit %d", sr.Count, maxBatch)
		}
		for i := 0; i < sr.Count; i++ {
			s := Spec{
				Kind:      KindChaos,
				Seed:      sr.Start + int64(i),
				Scale:     sr.Scale,
				JitterPct: sr.JitterPct,
				MaxEvents: sr.MaxEvents,
				MaxNodes:  sr.MaxNodes,
				MaxPhases: sr.MaxPhases,
				MaxIters:  sr.MaxIters,
				MaxBlocks: sr.MaxBlocks,
			}
			n, err := s.Normalize()
			if err != nil {
				return nil, fmt.Errorf("serve: seed_range seed %d: %v", s.Seed, err)
			}
			out = append(out, n)
		}
	}
	for i, s := range br.Specs {
		n, err := s.Normalize()
		if err != nil {
			return nil, fmt.Errorf("serve: spec[%d]: %v", i, err)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("serve: empty batch (want specs and/or seed_range)")
	}
	if maxBatch > 0 && len(out) > maxBatch {
		return nil, fmt.Errorf("serve: batch of %d jobs exceeds the limit %d", len(out), maxBatch)
	}
	return out, nil
}
