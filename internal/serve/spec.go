// Package serve turns the deterministic simulator into a batch
// experiment service: canonical job specs with content hashes, a
// single-flight LRU result cache, a deterministic worker pool, and an
// HTTP/NDJSON front end (cmd/dsmserve).
//
// The whole design leans on one property: the simulator is a pure
// function of its spec. Same spec, same bytes — so every result is
// perfectly cacheable, identical in-flight requests can be coalesced
// into one simulation, and a replayed batch must produce a byte-identical
// response body.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"presto/internal/blockstate"
	"presto/internal/chaos"
	"presto/internal/harness"
	"presto/internal/network"
	"presto/internal/rt"
)

// Job kinds.
const (
	// KindChaos runs a seed-derived chaos workload. With Protocol unset
	// the full differential oracle runs (every {protocol} × {engine}
	// combination, cross-checked — the protofuzz server path); with
	// Protocol set, exactly one configured combination runs and the
	// result is its fingerprint.
	KindChaos = "chaos"
	// KindExperiment runs a registered harness experiment (figure5,
	// sweep, ...) and returns its CSV rows and notes.
	KindExperiment = "experiment"
)

// Spec is the canonical description of one simulation job. Its
// normalized form (Normalize) is the unit of identity: the canonical
// JSON encoding of a normalized spec, hashed, keys the result cache and
// dedupes concurrent submissions.
//
// Field applicability by kind:
//
//   - chaos: Seed, Scale (quick|long), JitterPct, MaxEvents, Max*, and —
//     only when Protocol is set — Engine/Sched/Storage/Lookahead/
//     NoSteal/Workers plus the BlockSize and Net overrides applied to
//     the derived workload.
//   - experiment: Experiment, Scale (quick|paper), Engine, Sched,
//     Lookahead, NoSteal, Workers, Net, Profile.
type Spec struct {
	Kind string `json:"kind"`

	// Chaos job shape.
	Seed      int64 `json:"seed,omitempty"`
	JitterPct int   `json:"jitter_pct,omitempty"` // 0 = derive from seed, <0 = off
	MaxEvents int64 `json:"max_events,omitempty"`
	MaxNodes  int   `json:"max_nodes,omitempty"` // derivation caps (chaos.Caps)
	MaxPhases int   `json:"max_phases,omitempty"`
	MaxIters  int   `json:"max_iters,omitempty"`
	MaxBlocks int   `json:"max_blocks,omitempty"`
	BlockSize int   `json:"block_size,omitempty"` // single-combo override of the derived block size

	// Experiment job shape.
	Experiment string `json:"experiment,omitempty"`
	Profile    bool   `json:"profile,omitempty"`
	// Predict routes the figure 5-7 and sweep experiments through the
	// analytical fast path (internal/predict) instead of per-row
	// simulation. The field is part of the canonical encoding, so a
	// predicted result and a simulated result of the same experiment hash
	// differently by construction — the cache can never serve one for the
	// other (provenance disjointness).
	Predict bool `json:"predict,omitempty"`

	// Execution knobs shared by both kinds.
	Scale     string `json:"scale,omitempty"`
	Protocol  string `json:"protocol,omitempty"`
	Engine    string `json:"engine,omitempty"`
	Sched     string `json:"sched,omitempty"`
	Storage   string `json:"storage,omitempty"`
	Lookahead string `json:"lookahead,omitempty"`
	NoSteal   bool   `json:"no_steal,omitempty"`
	Workers   int    `json:"workers,omitempty"`
	Net       string `json:"net,omitempty"`
}

// chaosDiff reports whether the spec runs the full differential matrix
// (no explicit protocol) rather than one configured combination.
func (s Spec) chaosDiff() bool { return s.Kind == KindChaos && s.Protocol == "" }

// Caps returns the spec's derivation caps.
func (s Spec) Caps() chaos.Caps {
	return chaos.Caps{Nodes: s.MaxNodes, Phases: s.MaxPhases, Iters: s.MaxIters, Blocks: s.MaxBlocks}
}

// Normalize validates the spec and fills defaults, returning the
// canonical form whose encoding is hashed. Two specs that normalize
// equal are the same job by construction; normalizing is idempotent.
func (s Spec) Normalize() (Spec, error) {
	switch s.Kind {
	case KindChaos:
		return s.normalizeChaos()
	case KindExperiment:
		return s.normalizeExperiment()
	case "":
		return s, fmt.Errorf("serve: spec missing kind (want %q or %q)", KindChaos, KindExperiment)
	}
	return s, fmt.Errorf("serve: unknown spec kind %q (want %q or %q)", s.Kind, KindChaos, KindExperiment)
}

func (s Spec) normalizeChaos() (Spec, error) {
	if s.Seed < 0 {
		return s, fmt.Errorf("serve: chaos spec: negative seed %d", s.Seed)
	}
	if s.Scale == "" {
		s.Scale = string(chaos.ScaleQuick)
	}
	if _, err := chaos.ParseScale(s.Scale); err != nil {
		return s, fmt.Errorf("serve: chaos spec: %v", err)
	}
	if s.MaxEvents <= 0 {
		s.MaxEvents = 20_000_000
	}
	if s.MaxNodes < 0 || s.MaxPhases < 0 || s.MaxIters < 0 || s.MaxBlocks < 0 {
		return s, fmt.Errorf("serve: chaos spec: negative derivation cap")
	}
	if s.Experiment != "" || s.Profile || s.Predict {
		return s, fmt.Errorf("serve: chaos spec: experiment fields set")
	}
	if s.chaosDiff() {
		// The differential matrix fixes its own combinations; explicit
		// execution knobs would silently not apply — reject them.
		if s.Engine != "" || s.Sched != "" || s.Storage != "" || s.Lookahead != "" ||
			s.NoSteal || s.Workers != 0 || s.BlockSize != 0 || s.Net != "" {
			return s, fmt.Errorf("serve: chaos differential spec (no protocol) cannot set engine/sched/storage/lookahead/no_steal/workers/block_size/net")
		}
		return s, nil
	}
	var err error
	if s.Protocol, err = parseKind(rt.ParseProtocol(s.Protocol)); err != nil {
		return s, err
	}
	if s.Engine, err = parseKind(rt.ParseEngine(s.Engine)); err != nil {
		return s, err
	}
	if s.Sched, err = parseKind(rt.ParseSched(s.Sched)); err != nil {
		return s, err
	}
	if s.Storage, err = parseKind(blockstate.Parse(s.Storage)); err != nil {
		return s, err
	}
	if s.Lookahead, err = parseKind(rt.ParseLookahead(s.Lookahead)); err != nil {
		return s, err
	}
	if s.Workers < 0 {
		return s, fmt.Errorf("serve: chaos spec: negative workers")
	}
	if s.BlockSize != 0 {
		switch s.BlockSize {
		case 32, 64, 128, 256, 512, 1024:
		default:
			return s, fmt.Errorf("serve: chaos spec: block_size %d not a supported power of two (32..1024)", s.BlockSize)
		}
	}
	if err := validNet(s.Net); err != nil {
		return s, err
	}
	return s, nil
}

func (s Spec) normalizeExperiment() (Spec, error) {
	if s.Experiment == "" {
		return s, fmt.Errorf("serve: experiment spec missing experiment id")
	}
	if _, ok := harness.ByID(s.Experiment); !ok {
		ids := ""
		for _, e := range harness.All() {
			if ids != "" {
				ids += ", "
			}
			ids += e.ID
		}
		return s, fmt.Errorf("serve: unknown experiment %q (registered: %s)", s.Experiment, ids)
	}
	if s.Seed != 0 || s.JitterPct != 0 || s.MaxEvents != 0 ||
		s.MaxNodes != 0 || s.MaxPhases != 0 || s.MaxIters != 0 || s.MaxBlocks != 0 ||
		s.BlockSize != 0 || s.Protocol != "" || s.Storage != "" {
		return s, fmt.Errorf("serve: experiment spec: chaos fields set (experiments pick protocols and block sizes per row)")
	}
	switch s.Scale {
	case "":
		s.Scale = "quick"
	case "quick", "paper":
	default:
		return s, fmt.Errorf("serve: experiment spec: unknown scale %q (want quick or paper)", s.Scale)
	}
	if s.Predict && !harness.PredictCapable(s.Experiment) {
		return s, fmt.Errorf("serve: experiment spec: predict is only supported for the figure and sweep experiments (not %q)", s.Experiment)
	}
	var err error
	if s.Engine, err = parseKind(rt.ParseEngine(s.Engine)); err != nil {
		return s, err
	}
	if s.Sched, err = parseKind(rt.ParseSched(s.Sched)); err != nil {
		return s, err
	}
	if s.Lookahead, err = parseKind(rt.ParseLookahead(s.Lookahead)); err != nil {
		return s, err
	}
	if s.Workers < 0 {
		return s, fmt.Errorf("serve: experiment spec: negative workers")
	}
	if err := validNet(s.Net); err != nil {
		return s, err
	}
	return s, nil
}

// parseKind adapts the rt/blockstate Parse helpers to normalized string
// fields: the parsed (defaulted) kind becomes the canonical value.
func parseKind[K ~string](k K, err error) (string, error) {
	if err != nil {
		return "", fmt.Errorf("serve: %v", err)
	}
	return string(k), nil
}

// validNet accepts an empty override or a valid interconnect preset.
func validNet(name string) error {
	if name == "" {
		return nil
	}
	p, err := network.Preset(name)
	if err != nil {
		return fmt.Errorf("serve: %v", err)
	}
	if err := p.Validate(); err != nil {
		return fmt.Errorf("serve: %v", err)
	}
	return nil
}

// Canonical returns the spec's canonical JSON encoding: the normalized
// struct marshaled with encoding/json, whose field order is fixed by
// declaration and whose omitempty zero-suppression is part of the
// canonical form. The spec must already be normalized.
func (s Spec) Canonical() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// A Spec contains only marshalable scalar fields.
		panic(fmt.Sprintf("serve: canonical encoding failed: %v", err))
	}
	return b
}

// Hash is the spec's content address: the hex SHA-256 of the canonical
// encoding. It keys the result cache, dedupes in-flight submissions and
// is carried on every result (and the GET /v1/spec/<hash> lookup path).
func (s Spec) Hash() string {
	sum := sha256.Sum256(s.Canonical())
	return hex.EncodeToString(sum[:])
}
