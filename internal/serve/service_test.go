package serve

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"presto/internal/metrics"
)

// mustSpec returns a normalized chaos differential spec for seed.
func mustSpec(t *testing.T, seed int64) Spec {
	t.Helper()
	n, err := Spec{Kind: KindChaos, Seed: seed}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// counter returns the named service counter's value under the service
// mutex (the registry itself is deliberately not thread-safe).
func counter(s *Service, name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reg.Counter(name).Value()
}

func TestServiceSingleFlightHammer(t *testing.T) {
	// 32 goroutines submit the identical spec while the one real job is
	// blocked on a gate: every submission must coalesce onto that job and
	// the runner must execute exactly once.
	var runs atomic.Int64
	gate := make(chan struct{})
	svc := NewService(Config{
		Workers: 4,
		Runner: func(ctx context.Context, spec Spec) *Result {
			runs.Add(1)
			<-gate
			return &Result{ElapsedNS: spec.Seed}
		},
	})
	defer svc.Close()

	spec := mustSpec(t, 42)
	const waiters = 32
	tickets := make(chan *Ticket, waiters)
	var submitted sync.WaitGroup
	for i := 0; i < waiters; i++ {
		submitted.Add(1)
		go func() {
			defer submitted.Done()
			tickets <- svc.Do(spec)
		}()
	}
	submitted.Wait()
	close(gate)

	var first []byte
	for i := 0; i < waiters; i++ {
		line, err := (<-tickets).Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = line
		} else if !bytes.Equal(first, line) {
			t.Fatalf("coalesced waiters saw different bytes:\n%s%s", first, line)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("runner executed %d times, want exactly 1", got)
	}
	if c := counter(svc, "serve/coalesced"); c != waiters-1 {
		t.Fatalf("coalesced counter = %d, want %d", c, waiters-1)
	}
	if c := counter(svc, "serve/cache_misses"); c != 1 {
		t.Fatalf("misses = %d, want 1", c)
	}
}

func TestServiceSecondRunIsCacheHit(t *testing.T) {
	var runs atomic.Int64
	svc := NewService(Config{
		Workers: 1,
		Runner: func(ctx context.Context, spec Spec) *Result {
			runs.Add(1)
			return &Result{ElapsedNS: spec.Seed, MemHash: fmt.Sprintf("%016x", spec.Seed)}
		},
	})
	defer svc.Close()

	spec := mustSpec(t, 7)
	first, err := svc.Do(spec).Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	second, err := svc.Do(spec).Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("replay bytes differ:\n%s%s", first, second)
	}
	if runs.Load() != 1 {
		t.Fatalf("runner ran %d times, want 1", runs.Load())
	}
	if c := counter(svc, "serve/cache_hits"); c != 1 {
		t.Fatalf("hits = %d, want 1", c)
	}
	line, ok, running := svc.Cached(spec.Hash())
	if !ok || running || !bytes.Equal(line, first) {
		t.Fatalf("Cached(%s) = ok=%v running=%v", spec.Hash(), ok, running)
	}
}

func TestServicePanicRecovery(t *testing.T) {
	var calls atomic.Int64
	svc := NewService(Config{
		Workers: 1,
		Runner: func(ctx context.Context, spec Spec) *Result {
			if calls.Add(1) == 1 {
				panic("boom")
			}
			return &Result{}
		},
	})
	defer svc.Close()

	spec := mustSpec(t, 1)
	line, err := svc.Do(spec).Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(line), "job panicked: boom") {
		t.Fatalf("panic not surfaced as structured error: %s", line)
	}
	if c := counter(svc, "serve/job_panics"); c != 1 {
		t.Fatalf("panics = %d", c)
	}
	// A panic on deterministic input is a property of the spec: cached.
	again, err := svc.Do(spec).Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(line, again) {
		t.Fatal("panic result not served from cache")
	}
	if calls.Load() != 1 {
		t.Fatalf("runner re-ran a cached panic (%d calls)", calls.Load())
	}
	// The pool worker survived: a different spec still runs.
	if _, err := svc.Do(mustSpec(t, 2)).Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestServiceTimeoutNotCached(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	svc := NewService(Config{
		Workers:    1,
		JobTimeout: 20 * time.Millisecond,
		Runner: func(ctx context.Context, spec Spec) *Result {
			if calls.Add(1) == 1 {
				<-release // overruns the job timeout
			}
			return &Result{ElapsedNS: spec.Seed}
		},
	})
	defer svc.Close()
	defer close(release)

	spec := mustSpec(t, 9)
	line, err := svc.Do(spec).Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(line), "job abandoned") {
		t.Fatalf("timeout not surfaced: %s", line)
	}
	if c := counter(svc, "serve/job_timeouts"); c != 1 {
		t.Fatalf("timeouts = %d", c)
	}
	// A timeout is a wall-clock accident, not a property of the spec: the
	// retry must simulate again and succeed.
	retry, err := svc.Do(spec).Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(retry), "job abandoned") {
		t.Fatalf("timeout result was cached: %s", retry)
	}
	if c := counter(svc, "serve/cache_misses"); c != 2 {
		t.Fatalf("misses = %d, want 2 (timeout must not populate the cache)", c)
	}
}

func TestServiceEvictionUnderBudget(t *testing.T) {
	svc := NewService(Config{
		Workers:    1,
		CacheBytes: 600, // a handful of encoded result lines
		Runner: func(ctx context.Context, spec Spec) *Result {
			return &Result{ElapsedNS: spec.Seed}
		},
	})
	defer svc.Close()

	for seed := int64(1); seed <= 12; seed++ {
		if _, err := svc.Do(mustSpec(t, seed)).Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if c := counter(svc, "serve/evictions"); c == 0 {
		t.Fatal("12 results in a 600-byte budget evicted nothing")
	}
	doc := svc.MetricsSnapshot()
	if doc.CacheBytes > 600 {
		t.Fatalf("cache holds %d bytes over the 600 budget", doc.CacheBytes)
	}
	if doc.CacheEntries >= 12 {
		t.Fatalf("cache kept all %d entries despite the budget", doc.CacheEntries)
	}
}

func TestServiceDrainResolvesTickets(t *testing.T) {
	svc := NewService(Config{
		Workers: 1,
		Runner:  func(ctx context.Context, spec Spec) *Result { return &Result{} },
	})
	svc.Close()
	line, err := svc.Do(mustSpec(t, 5)).Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(line), "draining") {
		t.Fatalf("post-drain submission got %s", line)
	}
}

func TestServiceMetricsSnapshot(t *testing.T) {
	reg := metrics.New()
	svc := NewService(Config{
		Workers:  1,
		Registry: reg,
		Runner: func(ctx context.Context, spec Spec) *Result {
			time.Sleep(time.Millisecond)
			return &Result{}
		},
	})
	defer svc.Close()
	if _, err := svc.Do(mustSpec(t, 3)).Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	doc := svc.MetricsSnapshot()
	if doc.JobLatency.P50NS <= 0 || doc.JobLatency.P99NS < doc.JobLatency.P50NS {
		t.Fatalf("latency quantiles %+v", doc.JobLatency)
	}
	names := map[string]bool{}
	for _, c := range doc.Metrics.Counters {
		names[c.Name] = true
	}
	for _, want := range []string{"serve/jobs", "serve/cache_hits", "serve/cache_misses",
		"serve/coalesced", "serve/queue_depth", "serve/evictions"} {
		if !names[want] {
			t.Fatalf("snapshot missing %s (have %v)", want, names)
		}
	}
}
