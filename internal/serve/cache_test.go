package serve

import (
	"bytes"
	"fmt"
	"testing"
)

func line(n int) []byte { return bytes.Repeat([]byte{'x'}, n) }

func TestCacheLRUEvictionOrder(t *testing.T) {
	c := NewCache(30)
	c.Put("a", line(10))
	c.Put("b", line(10))
	c.Put("c", line(10))
	if c.Len() != 3 || c.Bytes() != 30 {
		t.Fatalf("len=%d bytes=%d", c.Len(), c.Bytes())
	}
	// Touch "a" so "b" becomes least recently used.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	evicted := c.Put("d", line(10))
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted %v, want [b]", evicted)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b still resident after eviction")
	}
	for _, h := range []string{"a", "c", "d"} {
		if _, ok := c.Get(h); !ok {
			t.Fatalf("%s missing", h)
		}
	}
}

func TestCacheEvictionDeterministic(t *testing.T) {
	// The same Put/Get sequence must evict the same hashes in the same
	// order — eviction is part of the service's deterministic contract.
	run := func() []string {
		c := NewCache(50)
		var all []string
		for i := 0; i < 10; i++ {
			h := fmt.Sprintf("h%d", i)
			if i%3 == 0 {
				c.Get("h0")
			}
			all = append(all, c.Put(h, line(10))...)
		}
		return all
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("eviction orders differ: %v vs %v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("scenario never evicted — budget too large to test anything")
	}
}

func TestCacheRefreshExistingEntry(t *testing.T) {
	c := NewCache(100)
	c.Put("a", line(10))
	c.Put("a", line(40))
	if c.Len() != 1 || c.Bytes() != 40 {
		t.Fatalf("refresh: len=%d bytes=%d", c.Len(), c.Bytes())
	}
	got, ok := c.Get("a")
	if !ok || len(got) != 40 {
		t.Fatalf("refresh lost the new value (len %d)", len(got))
	}
}

func TestCacheOversizedLineNotCached(t *testing.T) {
	c := NewCache(20)
	c.Put("small", line(10))
	if ev := c.Put("huge", line(100)); len(ev) != 0 {
		t.Fatalf("oversized insert evicted %v", ev)
	}
	if _, ok := c.Get("huge"); ok {
		t.Fatal("oversized line cached")
	}
	if _, ok := c.Get("small"); !ok {
		t.Fatal("oversized insert flushed the resident entry")
	}
}

func TestCacheNeverEvictsJustInserted(t *testing.T) {
	c := NewCache(20)
	c.Put("a", line(5))
	// 20-byte insert exactly fills the budget after "a" goes; the new
	// entry itself must survive even though bytes == budget.
	ev := c.Put("b", line(20))
	if len(ev) != 1 || ev[0] != "a" {
		t.Fatalf("evicted %v, want [a]", ev)
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("just-inserted entry evicted")
	}
}

func TestCacheUnbounded(t *testing.T) {
	c := NewCache(-1)
	for i := 0; i < 100; i++ {
		if ev := c.Put(fmt.Sprintf("h%d", i), line(1000)); len(ev) != 0 {
			t.Fatalf("unbounded cache evicted %v", ev)
		}
	}
	if c.Len() != 100 {
		t.Fatalf("len=%d", c.Len())
	}
}
