package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"presto/internal/metrics"
)

// Runner executes one normalized spec. The production runner is Run
// (runner.go); tests inject counting or failing stubs.
type Runner func(ctx context.Context, spec Spec) *Result

// Config shapes a Service.
type Config struct {
	// Workers is the pool size (default 1). With one worker the whole
	// service is fully deterministic: jobs run in submission order.
	Workers int
	// CacheBytes budgets the result cache (default 256 MiB; <0 unbounded).
	CacheBytes int64
	// JobTimeout bounds one job's wall clock (default none). A simulation
	// cannot be preempted mid-run, so on timeout the job is abandoned to
	// finish on its own (bounded by the spec's MaxEvents) and the caller
	// receives a structured, uncached timeout error.
	JobTimeout time.Duration
	// Runner overrides the production runner (tests).
	Runner Runner
	// Registry receives the pool's instruments (default: a fresh one).
	Registry *metrics.Registry
}

// Service is the batch scheduler: a content-addressed single-flight
// result cache in front of a deterministic worker pool. Concurrent
// submissions of the same spec coalesce into one simulation; completed
// results are cached by spec hash; every counter lives in the metrics
// registry surfaced at /metricsz.
type Service struct {
	cfg    Config
	pool   *Pool
	runner Runner
	base   context.Context
	stop   context.CancelFunc

	mu       sync.Mutex
	cache    *Cache
	inflight map[string]*flight

	reg       *metrics.Registry
	hits      *metrics.Counter
	misses    *metrics.Counter
	coalesced *metrics.Counter
	jobs      *metrics.Counter
	errors    *metrics.Counter
	panics    *metrics.Counter
	timeouts  *metrics.Counter
	evictions *metrics.Counter
	depth     *metrics.Counter
	latency   *metrics.Histogram

	// Predictor-vs-simulator provenance split: every completed job counts
	// as exactly one of predicted/simulated (by its spec's predict flag),
	// and predicted jobs additionally feed a dedicated latency histogram —
	// the fast path's speedup is directly readable off /metricsz.
	predicted   *metrics.Counter
	simulated   *metrics.Counter
	predLatency *metrics.Histogram
}

// flight is one in-progress job shared by every coalesced waiter.
type flight struct {
	done chan struct{}
	line []byte // set before done closes
}

// NewService builds and starts a service.
func NewService(cfg Config) *Service {
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 256 << 20
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.New()
	}
	s := &Service{
		cfg:      cfg,
		pool:     NewPool(cfg.Workers),
		runner:   cfg.Runner,
		cache:    NewCache(cfg.CacheBytes),
		inflight: make(map[string]*flight),
		reg:      reg,

		hits:      reg.Counter("serve/cache_hits"),
		misses:    reg.Counter("serve/cache_misses"),
		coalesced: reg.Counter("serve/coalesced"),
		jobs:      reg.Counter("serve/jobs"),
		errors:    reg.Counter("serve/job_errors"),
		panics:    reg.Counter("serve/job_panics"),
		timeouts:  reg.Counter("serve/job_timeouts"),
		evictions: reg.Counter("serve/evictions"),
		depth:     reg.Counter("serve/queue_depth"),
		latency:   reg.Histogram("serve/job_latency_ns"),

		predicted:   reg.Counter("serve/jobs_predicted"),
		simulated:   reg.Counter("serve/jobs_simulated"),
		predLatency: reg.Histogram("serve/predict_latency_ns"),
	}
	if s.runner == nil {
		s.runner = Run
	}
	s.base, s.stop = context.WithCancel(context.Background())
	return s
}

// Ticket is a handle on one submission's (possibly shared) result.
type Ticket struct {
	line []byte // resolved immediately on a cache hit
	f    *flight
}

// Wait blocks until the result line is available or ctx is canceled.
// The returned bytes are exactly one NDJSON line.
func (t *Ticket) Wait(ctx context.Context) ([]byte, error) {
	if t.f == nil {
		return t.line, nil
	}
	select {
	case <-t.f.done:
		return t.f.line, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Do submits one normalized spec: cache hit resolves immediately, an
// in-flight duplicate coalesces onto the running job, and a fresh spec
// enqueues on the pool. Do never blocks on simulation work.
func (s *Service) Do(spec Spec) *Ticket {
	hash := spec.Hash()
	s.mu.Lock()
	if line, ok := s.cache.Get(hash); ok {
		s.hits.Inc()
		s.mu.Unlock()
		return &Ticket{line: line}
	}
	if fl := s.inflight[hash]; fl != nil {
		s.coalesced.Inc()
		s.mu.Unlock()
		return &Ticket{f: fl}
	}
	fl := &flight{done: make(chan struct{})}
	s.inflight[hash] = fl
	s.misses.Inc()
	s.mu.Unlock()

	if !s.pool.Submit(func() { s.runJob(spec, hash, fl) }) {
		// Pool closed mid-drain: resolve the flight with a structured
		// error instead of leaving waiters hanging.
		fl.line = errResult(spec, hash, "serve: server is draining").encode()
		s.mu.Lock()
		delete(s.inflight, hash)
		s.mu.Unlock()
		close(fl.done)
	}
	return &Ticket{f: fl}
}

// runJob executes on a pool worker: run (with recovery and timeout),
// encode once, cache if cacheable, publish to every waiter.
func (s *Service) runJob(spec Spec, hash string, fl *flight) {
	start := time.Now()
	res, timedOut := s.execute(spec, hash)
	res.SpecHash, res.Spec = hash, spec
	line := res.encode()

	s.mu.Lock()
	// Timeout results are wall-clock accidents, not properties of the
	// spec — never cache them, so a retry simulates again.
	if !timedOut {
		s.evictions.Add(int64(len(s.cache.Put(hash, line))))
	}
	if res.Err != "" {
		s.errors.Inc()
	}
	s.jobs.Inc()
	elapsed := time.Since(start).Nanoseconds()
	s.latency.Observe(elapsed)
	if spec.Predict {
		s.predicted.Inc()
		s.predLatency.Observe(elapsed)
	} else {
		s.simulated.Inc()
	}
	delete(s.inflight, hash)
	s.mu.Unlock()

	fl.line = line
	close(fl.done)
}

// execute runs the spec under the job timeout with panic recovery. A
// panicking or overrunning job becomes a structured error result instead
// of killing the server; an overrunning job's goroutine is abandoned
// (the simulation's MaxEvents budget bounds it).
func (s *Service) execute(spec Spec, hash string) (res *Result, timedOut bool) {
	ctx, cancel := s.base, func() {}
	if s.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(s.base, s.cfg.JobTimeout)
	}
	defer cancel()

	ch := make(chan *Result, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				s.mu.Lock()
				s.panics.Inc()
				s.mu.Unlock()
				ch <- errResult(spec, hash, fmt.Sprintf("serve: job panicked: %v", r))
			}
		}()
		ch <- s.runner(ctx, spec)
	}()
	select {
	case r := <-ch:
		return r, false
	case <-ctx.Done():
		s.mu.Lock()
		s.timeouts.Inc()
		s.mu.Unlock()
		return errResult(spec, hash, fmt.Sprintf("serve: job abandoned: %v", ctx.Err())), true
	}
}

// Cached returns the stored result line for a spec hash, or reports an
// in-flight job (the GET /v1/spec path).
func (s *Service) Cached(hash string) (line []byte, ok, running bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if line, ok := s.cache.Get(hash); ok {
		return line, true, false
	}
	_, running = s.inflight[hash]
	return nil, false, running
}

// LatencyQuantiles are the pool's job wall-clock estimates.
type LatencyQuantiles struct {
	P50NS int64 `json:"p50_ns"`
	P99NS int64 `json:"p99_ns"`
}

// MetricsDoc is the /metricsz body.
type MetricsDoc struct {
	Metrics    *metrics.Snapshot `json:"metrics"`
	JobLatency LatencyQuantiles  `json:"job_latency"`
	// PredictLatency summarizes the predictor-backed jobs' wall clock
	// (serve/predict_latency_ns); against JobLatency it shows the fast
	// path's speedup over full simulation.
	PredictLatency LatencyQuantiles `json:"predict_latency"`
	CacheEntries   int              `json:"cache_entries"`
	CacheBytes     int64            `json:"cache_bytes"`
}

// MetricsSnapshot renders the pool's instruments. The queue-depth gauge
// is published at snapshot time (metrics.Counter.Set), like the kernel
// statistics elsewhere in the tree.
func (s *Service) MetricsSnapshot() *MetricsDoc {
	queued := s.pool.Depth()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.depth.Set(int64(queued))
	return &MetricsDoc{
		Metrics: s.reg.Snapshot(),
		JobLatency: LatencyQuantiles{
			P50NS: s.latency.Quantile(0.50),
			P99NS: s.latency.Quantile(0.99),
		},
		PredictLatency: LatencyQuantiles{
			P50NS: s.predLatency.Quantile(0.50),
			P99NS: s.predLatency.Quantile(0.99),
		},
		CacheEntries: s.cache.Len(),
		CacheBytes:   s.cache.Bytes(),
	}
}

// Close drains the pool (queued jobs run to completion) and then cancels
// the base job context. Safe to call once, after the HTTP front end has
// stopped accepting work.
func (s *Service) Close() {
	s.pool.Close()
	s.stop()
}
