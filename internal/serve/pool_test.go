package serve

import (
	"sync"
	"testing"
)

func TestPoolFIFOSingleWorker(t *testing.T) {
	p := NewPool(1)
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		i := i
		wg.Add(1)
		p.Submit(func() {
			defer wg.Done()
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
	}
	wg.Wait()
	p.Close()
	for i, got := range order {
		if got != i {
			t.Fatalf("job %d ran at position %d — single-worker pool must be FIFO", got, i)
		}
	}
}

func TestPoolCloseDrainsQueue(t *testing.T) {
	p := NewPool(2)
	var mu sync.Mutex
	ran := 0
	for i := 0; i < 20; i++ {
		if !p.Submit(func() {
			mu.Lock()
			ran++
			mu.Unlock()
		}) {
			t.Fatal("Submit refused before Close")
		}
	}
	p.Close() // must block until every queued job has run
	if ran != 20 {
		t.Fatalf("Close returned with %d/20 jobs run", ran)
	}
	if p.Submit(func() {}) {
		t.Fatal("Submit accepted after Close")
	}
	if p.Depth() != 0 {
		t.Fatalf("depth %d after drain", p.Depth())
	}
}
