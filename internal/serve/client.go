package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client talks to a dsmserve instance. The zero HTTP client is fine for
// long streams — batch responses have no deadline; cancel via ctx.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8077".
	Base string
	// HTTP overrides the transport (default http.DefaultClient).
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// Batch submits a batch and invokes fn for each streamed result, in
// order, as lines arrive. fn returning an error aborts the stream and
// surfaces that error.
func (c *Client) Batch(ctx context.Context, req BatchRequest, fn func(*Result) error) error {
	return c.batch(ctx, req, nil, fn)
}

// BatchRaw submits a batch and copies the raw NDJSON stream to w —
// the byte-identity path (CI artifacts, replay comparisons).
func (c *Client) BatchRaw(ctx context.Context, req BatchRequest, w io.Writer) error {
	return c.batch(ctx, req, w, nil)
}

func (c *Client) batch(ctx context.Context, req BatchRequest, raw io.Writer, fn func(*Result) error) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/v1/batch"), bytes.NewReader(body))
	if err != nil {
		return err
	}
	hr.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(hr)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("serve: batch: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	if raw != nil {
		_, err := io.Copy(raw, resp.Body)
		return err
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20) // experiment rows can be large
	for sc.Scan() {
		var r Result
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			return fmt.Errorf("serve: decoding result line: %v", err)
		}
		if err := fn(&r); err != nil {
			return err
		}
	}
	return sc.Err()
}

// Spec fetches one cached result by spec hash. Running and unknown
// hashes are distinct errors (ErrRunning, ErrUnknownSpec).
func (c *Client) Spec(ctx context.Context, hash string) (*Result, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/spec/"+hash), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(hr)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusAccepted:
		return nil, ErrRunning
	case http.StatusNotFound:
		return nil, ErrUnknownSpec
	default:
		return nil, fmt.Errorf("serve: spec %s: %s", hash, resp.Status)
	}
	var r Result
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		return nil, err
	}
	return &r, nil
}

// Metrics fetches the /metricsz document.
func (c *Client) Metrics(ctx context.Context) (*MetricsDoc, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/metricsz"), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(hr)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: metricsz: %s", resp.Status)
	}
	var doc MetricsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// Sentinel client errors.
var (
	ErrRunning     = fmt.Errorf("serve: spec is still running")
	ErrUnknownSpec = fmt.Errorf("serve: unknown spec hash")
)
