package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Server is the HTTP front end over a Service:
//
//	POST /v1/batch        {"specs":[...], "seed_range":{...}} → NDJSON stream
//	GET  /v1/spec/{hash}  one cached result line (202 while running, 404 unknown)
//	GET  /healthz         liveness
//	GET  /metricsz        pool + cache instruments (MetricsDoc)
//
// Batch responses stream one result line per job, in submission order,
// flushed as each job completes: clients see results incrementally, yet
// the body is a deterministic function of the request — replaying a
// batch yields byte-identical bytes, served from cache.
type Server struct {
	svc *Service
	// MaxBatch bounds one request's job count (default 100000).
	MaxBatch int
}

// NewServer wraps a service.
func NewServer(svc *Service) *Server {
	return &Server{svc: svc, MaxBatch: 100000}
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/spec/{hash}", s.handleSpec)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	return mux
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("serve: decoding batch: %v", err), http.StatusBadRequest)
		return
	}
	specs, err := req.Expand(s.MaxBatch)
	if err != nil {
		// Reject the whole batch on any invalid spec: a partial batch
		// would silently change the response's shape.
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	// Submit everything up front so the pool can run jobs concurrently
	// and identical specs coalesce, then stream results in submission
	// order — the order is part of the deterministic response contract.
	tickets := make([]*Ticket, len(specs))
	for i, spec := range specs {
		tickets[i] = s.svc.Do(spec)
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	for _, t := range tickets {
		line, err := t.Wait(r.Context())
		if err != nil {
			// Client gone: stop writing. The jobs keep running and land
			// in the cache for the retry.
			return
		}
		if _, err := w.Write(line); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *Server) handleSpec(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	line, ok, running := s.svc.Cached(hash)
	switch {
	case ok:
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Write(line)
	case running:
		http.Error(w, "running", http.StatusAccepted)
	default:
		http.Error(w, "unknown spec hash", http.StatusNotFound)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"ok\":true,\"queue_depth\":%d}\n", s.svc.pool.Depth())
}

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	doc := s.svc.MetricsSnapshot()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}
