package memory

import (
	"testing"
	"testing/quick"
)

func evenOdd(b int64) int {
	return int(b % 2)
}

func newTestSpace(t *testing.T) (*AddressSpace, *Region) {
	t.Helper()
	as := NewAddressSpace(2, 32)
	r := as.NewRegion("data", 1024, evenOdd)
	return as, r
}

func TestAddrComposition(t *testing.T) {
	as := NewAddressSpace(4, 64)
	r0 := as.NewRegion("a", 4096, func(int64) int { return 0 })
	r1 := as.NewRegion("b", 4096, func(int64) int { return 1 })
	a := r1.Addr(100)
	if a.RegionID() != 1 || a.Offset() != 100 {
		t.Fatalf("addr decompose = (%d,%d)", a.RegionID(), a.Offset())
	}
	if as.Region(a) != r1 {
		t.Fatal("Region lookup failed")
	}
	if r0.Base().RegionID() != 0 {
		t.Fatal("r0 base region")
	}
}

func TestBlockGeometry(t *testing.T) {
	as, r := newTestSpace(t)
	a := r.Addr(40) // block 1 with 32-byte blocks
	b := as.BlockOf(a)
	if b.Offset() != 32 {
		t.Fatalf("block offset = %d, want 32", b.Offset())
	}
	if as.BlockIndex(b) != 1 {
		t.Fatalf("block index = %d, want 1", as.BlockIndex(b))
	}
	if as.HomeOf(a) != 1 {
		t.Fatalf("home = %d, want 1 (odd block)", as.HomeOf(a))
	}
	if r.NumBlocks() != 32 {
		t.Fatalf("NumBlocks = %d, want 32", r.NumBlocks())
	}
}

func TestContiguous(t *testing.T) {
	as, r := newTestSpace(t)
	b0 := as.BlockOf(r.Addr(0))
	b1 := as.BlockOf(r.Addr(32))
	b2 := as.BlockOf(r.Addr(64))
	if !as.Contiguous(b0, b1) || !as.Contiguous(b1, b2) {
		t.Fatal("adjacent blocks not contiguous")
	}
	if as.Contiguous(b0, b2) || as.Contiguous(b1, b0) {
		t.Fatal("non-adjacent reported contiguous")
	}
	r2 := as.NewRegion("other", 64, func(int64) int { return 0 })
	if as.Contiguous(b0, as.BlockOf(r2.Addr(32))) {
		t.Fatal("cross-region blocks reported contiguous")
	}
}

func TestHomeNodeStartsReadWrite(t *testing.T) {
	as, r := newTestSpace(t)
	s0 := NewStore(as, 0)
	s1 := NewStore(as, 1)
	a := r.Addr(0) // block 0 homes on node 0
	if s0.Tag(a) != ReadWrite {
		t.Fatalf("home tag = %v, want ReadWrite", s0.Tag(a))
	}
	if s1.Tag(a) != Invalid {
		t.Fatalf("remote tag = %v, want Invalid", s1.Tag(a))
	}
}

func TestLoadStoreFaultSemantics(t *testing.T) {
	as, r := newTestSpace(t)
	s0 := NewStore(as, 0)
	a := r.Addr(8) // block 0, home node 0

	if ok := s0.StoreF64(a, 3.5); !ok {
		t.Fatal("home store faulted")
	}
	if v, ok := s0.LoadF64(a); !ok || v != 3.5 {
		t.Fatalf("load = %v %v", v, ok)
	}

	s0.SetTag(as.BlockOf(a), ReadOnly)
	if _, ok := s0.LoadF64(a); !ok {
		t.Fatal("read of ReadOnly line faulted")
	}
	if ok := s0.StoreF64(a, 1); ok {
		t.Fatal("write to ReadOnly line did not fault")
	}

	s0.SetTag(as.BlockOf(a), Invalid)
	if _, ok := s0.LoadF64(a); ok {
		t.Fatal("read of Invalid line did not fault")
	}
}

func TestInstallMakesDataVisible(t *testing.T) {
	as, r := newTestSpace(t)
	s0 := NewStore(as, 0)
	s1 := NewStore(as, 1)
	a := r.Addr(16) // block 0, home 0
	b := as.BlockOf(a)

	s0.StoreF64(a, 42.25)
	s1.Install(b, s0.Data(b), ReadOnly)
	if v, ok := s1.LoadF64(a); !ok || v != 42.25 {
		t.Fatalf("after install: %v %v", v, ok)
	}
	if ok := s1.StoreF64(a, 0); ok {
		t.Fatal("write to ReadOnly installed copy did not fault")
	}
}

func TestEnsureMaterializesInvalid(t *testing.T) {
	as, r := newTestSpace(t)
	s1 := NewStore(as, 1)
	b := as.BlockOf(r.Addr(0)) // homed on node 0
	if s1.Line(b) != nil {
		t.Fatal("line unexpectedly materialized")
	}
	l := s1.Ensure(b)
	if l.Tag != Invalid || len(l.Data) != 32 {
		t.Fatalf("ensure: tag=%v len=%d", l.Tag, len(l.Data))
	}
	if s1.Ensure(b) != l {
		t.Fatal("Ensure not idempotent")
	}
}

func TestMisalignedAccessPanics(t *testing.T) {
	as, r := newTestSpace(t)
	s0 := NewStore(as, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on misaligned access")
		}
	}()
	s0.LoadF64(r.Addr(4))
}

func TestU32AndU64Accessors(t *testing.T) {
	as, r := newTestSpace(t)
	s0 := NewStore(as, 0)
	a := r.Addr(0)
	if ok := s0.StoreU64(a, 0xdeadbeefcafe); !ok {
		t.Fatal("StoreU64 fault")
	}
	if v, ok := s0.LoadU64(a); !ok || v != 0xdeadbeefcafe {
		t.Fatalf("LoadU64 = %x %v", v, ok)
	}
	a4 := r.Addr(12)
	if ok := s0.StoreU32(a4, 77); !ok {
		t.Fatal("StoreU32 fault")
	}
	if v, ok := s0.LoadU32(a4); !ok || v != 77 {
		t.Fatalf("LoadU32 = %d %v", v, ok)
	}
}

func TestBadBlockSizePanics(t *testing.T) {
	for _, bs := range []int{0, 8, 24, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("block size %d: expected panic", bs)
				}
			}()
			NewAddressSpace(2, bs)
		}()
	}
}

// Property: a float64 round-trips through any aligned offset of a home
// block regardless of block size.
func TestF64RoundTripProperty(t *testing.T) {
	f := func(v float64, rawOff uint16, bsSel uint8) bool {
		blockSizes := []int{32, 64, 128, 256, 1024}
		bs := blockSizes[int(bsSel)%len(blockSizes)]
		as := NewAddressSpace(1, bs)
		r := as.NewRegion("d", 1<<16, func(int64) int { return 0 })
		s := NewStore(as, 0)
		off := int64(rawOff) &^ 7
		a := r.Addr(off)
		if !s.StoreF64(a, v) {
			return false
		}
		got, ok := s.LoadF64(a)
		if !ok {
			return false
		}
		// NaN-safe comparison via bit pattern round trip.
		return got == v || (v != v && got != got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestBlockIndexRegionBoundaries pins block decomposition at the edges of
// a region: the first block, the last full block, and the partial tail
// block of a non-power-of-2 region size.
func TestBlockIndexRegionBoundaries(t *testing.T) {
	as := NewAddressSpace(2, 32)
	r := as.NewRegion("odd", 1000, evenOdd) // 31 full blocks + 8-byte tail
	if r.NumBlocks() != 32 {
		t.Fatalf("NumBlocks = %d, want 32 (1000/32 rounded up)", r.NumBlocks())
	}
	first := as.BlockOf(r.Addr(0))
	if as.BlockIndex(first) != 0 {
		t.Fatalf("first block index = %d", as.BlockIndex(first))
	}
	lastFull := as.BlockOf(r.Addr(31*32 - 1))
	if as.BlockIndex(lastFull) != 30 {
		t.Fatalf("offset %d block index = %d, want 30", 31*32-1, as.BlockIndex(lastFull))
	}
	tail := as.BlockOf(r.Addr(999))
	if as.BlockIndex(tail) != 31 {
		t.Fatalf("tail block index = %d, want 31", as.BlockIndex(tail))
	}
	if tail.RegionID() != first.RegionID() {
		t.Fatal("tail block left its region")
	}
}

// TestBlockAtRoundTrip: Region.BlockAt is the inverse of
// AddressSpace.BlockIndex for every block of the region, across block
// sizes and a non-power-of-2 region size.
func TestBlockAtRoundTrip(t *testing.T) {
	for _, bs := range []int{16, 32, 256} {
		as := NewAddressSpace(4, bs)
		as.NewRegion("pre", 3*int64(bs), func(int64) int { return 0 }) // shift region IDs past 0
		r := as.NewRegion("d", int64(bs)*17+5, func(b int64) int { return int(b % 4) })
		for i := int64(0); i < r.NumBlocks(); i++ {
			b := r.BlockAt(i)
			if as.BlockIndex(b) != i {
				t.Fatalf("bs=%d: BlockIndex(BlockAt(%d)) = %d", bs, i, as.BlockIndex(b))
			}
			if as.BlockOf(Addr(b)) != b {
				t.Fatalf("bs=%d: BlockAt(%d) not block-aligned", bs, i)
			}
			if b.RegionID() != r.ID {
				t.Fatalf("bs=%d: BlockAt(%d) in region %d, want %d", bs, i, b.RegionID(), r.ID)
			}
		}
	}
}

// TestContiguousAcrossRegionEnds: the last block of one region and the
// first of the next are never contiguous, even though the regions were
// allocated back to back — coalescing must not span regions.
func TestContiguousAcrossRegionEnds(t *testing.T) {
	as := NewAddressSpace(2, 32)
	r0 := as.NewRegion("a", 128, evenOdd)
	r1 := as.NewRegion("b", 128, evenOdd)
	last0 := r0.BlockAt(r0.NumBlocks() - 1)
	first1 := r1.BlockAt(0)
	if as.Contiguous(last0, first1) {
		t.Fatal("blocks of different regions reported contiguous")
	}
	// Within one region the same pair-distance is contiguous.
	if !as.Contiguous(r0.BlockAt(2), r0.BlockAt(3)) {
		t.Fatal("adjacent blocks not contiguous")
	}
	// The tail block of a non-power-of-2 region is contiguous with its
	// predecessor like any other block.
	odd := as.NewRegion("odd", 100, evenOdd) // 4 blocks, 4-byte tail
	if !as.Contiguous(odd.BlockAt(odd.NumBlocks()-2), odd.BlockAt(odd.NumBlocks()-1)) {
		t.Fatal("tail block not contiguous with predecessor")
	}
	// Identical blocks and reversed order are not contiguous.
	if as.Contiguous(first1, first1) || as.Contiguous(r0.BlockAt(3), r0.BlockAt(2)) {
		t.Fatal("degenerate pairs reported contiguous")
	}
}

// Property: BlockIndex agrees with plain offset division for arbitrary
// offsets and block sizes (the shift-based fast path must match).
func TestBlockIndexMatchesDivisionProperty(t *testing.T) {
	f := func(rawOff uint32, bsSel uint8) bool {
		blockSizes := []int{16, 32, 64, 128, 512}
		bs := blockSizes[int(bsSel)%len(blockSizes)]
		as := NewAddressSpace(2, bs)
		r := as.NewRegion("d", 1<<20, evenOdd)
		off := int64(rawOff) % (1 << 20)
		b := as.BlockOf(r.Addr(off))
		return as.BlockIndex(b) == off/int64(bs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: home assignment partitions blocks — every block has exactly
// one home and it is stable.
func TestHomePartitionProperty(t *testing.T) {
	f := func(seed uint32) bool {
		nodes := int(seed%7) + 2
		as := NewAddressSpace(nodes, 64)
		r := as.NewRegion("d", 4096, func(b int64) int { return int(b) % nodes })
		for i := int64(0); i < r.NumBlocks(); i++ {
			h := r.HomeOf(i)
			if h < 0 || h >= nodes || h != r.HomeOf(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
