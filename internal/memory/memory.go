// Package memory implements the fine-grain shared-memory substrate of the
// simulated DSM — the role Tempest's fine-grain access control played for
// Blizzard in the original system.
//
// A global address space is divided into named Regions. Each region is
// split into cache blocks of a machine-wide power-of-two size (32–1024
// bytes in the paper's experiments); every block has a home node given by
// the region's distribution function. Each node holds a Store: per-block
// lines carrying an access-control tag (Invalid, ReadOnly, ReadWrite) and
// the block's data. Loads and stores check tags; an inadequate tag is an
// access fault, which the runtime vectors to the user-level coherence
// protocol exactly as Tempest vectored faults to Stache handlers.
package memory

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// Tag is a cache block's access-control state.
type Tag uint8

const (
	// Invalid blocks fault on any access.
	Invalid Tag = iota
	// ReadOnly blocks may be loaded but fault on stores.
	ReadOnly
	// ReadWrite blocks may be loaded and stored.
	ReadWrite
)

func (t Tag) String() string {
	switch t {
	case Invalid:
		return "Invalid"
	case ReadOnly:
		return "ReadOnly"
	case ReadWrite:
		return "ReadWrite"
	}
	return fmt.Sprintf("Tag(%d)", uint8(t))
}

// Addr is a global shared-memory address: region ID in the high bits,
// byte offset within the region in the low 40 bits.
type Addr uint64

const offsetBits = 40
const offsetMask = (Addr(1) << offsetBits) - 1

// Block identifies a cache block: a block-aligned Addr.
type Block = Addr

// RegionID extracts the region identifier from an address.
func (a Addr) RegionID() int { return int(a >> offsetBits) }

// Offset extracts the byte offset within the region.
func (a Addr) Offset() int64 { return int64(a & offsetMask) }

// Add returns the address displaced by d bytes within the same region.
func (a Addr) Add(d int64) Addr { return Addr(int64(a) + d) }

// Region is a contiguous span of the global address space with a single
// home-distribution function.
type Region struct {
	ID   int
	Name string
	Size int64 // bytes

	as *AddressSpace
	// home maps a block index within the region to its home node.
	home func(blockIdx int64) int
}

// Base returns the address of the region's first byte.
func (r *Region) Base() Addr { return Addr(r.ID) << offsetBits }

// Addr returns the global address of the given byte offset.
func (r *Region) Addr(off int64) Addr {
	if off < 0 || off >= r.Size {
		panic(fmt.Sprintf("memory: offset %d outside region %q (size %d)", off, r.Name, r.Size))
	}
	return r.Base().Add(off)
}

// NumBlocks returns the number of cache blocks spanning the region.
func (r *Region) NumBlocks() int64 {
	bs := int64(r.as.blockSize)
	return (r.Size + bs - 1) / bs
}

// BlockAt returns the block with the given region-local index (the
// inverse of AddressSpace.BlockIndex).
func (r *Region) BlockAt(idx int64) Block {
	return r.Base().Add(idx << r.as.blockShift)
}

// HomeOf returns the home node of the region-local block index.
func (r *Region) HomeOf(blockIdx int64) int { return r.home(blockIdx) }

// AddressSpace is the machine-wide set of regions and the block geometry.
type AddressSpace struct {
	blockSize  int // power of two
	blockShift uint
	blockMask  Addr
	nodes      int
	regions    []*Region
}

// NewAddressSpace creates an address space for the given node count and
// cache-block size (a power of two, at least 16).
func NewAddressSpace(nodes, blockSize int) *AddressSpace {
	if blockSize < 16 || blockSize&(blockSize-1) != 0 {
		panic(fmt.Sprintf("memory: block size %d must be a power of two >= 16", blockSize))
	}
	// 4096 mirrors network.MaxNodes, the largest topology any preset
	// builds (sharer sets scale past 64 nodes via tempest.Bitset's
	// extension words).
	if nodes <= 0 || nodes > 4096 {
		panic(fmt.Sprintf("memory: node count %d out of range [1,4096]", nodes))
	}
	return &AddressSpace{
		blockSize:  blockSize,
		blockShift: uint(bits.TrailingZeros(uint(blockSize))),
		blockMask:  ^Addr(blockSize - 1),
		nodes:      nodes,
	}
}

// BlockSize returns the machine-wide cache-block size in bytes.
func (as *AddressSpace) BlockSize() int { return as.blockSize }

// Nodes returns the number of nodes sharing the address space.
func (as *AddressSpace) Nodes() int { return as.nodes }

// Regions returns all allocated regions in creation order.
func (as *AddressSpace) Regions() []*Region { return as.regions }

// NewRegion allocates a region of the given size whose blocks are homed by
// home (block index within region -> node).
func (as *AddressSpace) NewRegion(name string, size int64, home func(blockIdx int64) int) *Region {
	if size <= 0 || size > int64(offsetMask) {
		panic(fmt.Sprintf("memory: region size %d out of range", size))
	}
	r := &Region{
		ID:   len(as.regions),
		Name: name,
		Size: size,
		as:   as,
		home: home,
	}
	as.regions = append(as.regions, r)
	return r
}

// Region returns the region containing the address.
func (as *AddressSpace) Region(a Addr) *Region {
	id := a.RegionID()
	if id < 0 || id >= len(as.regions) {
		panic(fmt.Sprintf("memory: address %#x in unknown region %d", uint64(a), id))
	}
	return as.regions[id]
}

// BlockOf returns the block containing the address.
func (as *AddressSpace) BlockOf(a Addr) Block { return a & as.blockMask }

// BlockIndex returns the region-local block index of a block. Block size
// is a power of two, so this is a shift — cheap enough for the dense
// block-state tables (internal/blockstate) to use it on every access.
func (as *AddressSpace) BlockIndex(b Block) int64 { return b.Offset() >> as.blockShift }

// HomeOf returns the home node of the block containing the address.
func (as *AddressSpace) HomeOf(a Addr) int {
	r := as.Region(a)
	return r.HomeOf(as.BlockIndex(a))
}

// Contiguous reports whether b follows a immediately in the same region
// (the coalescing criterion for bulk pre-send messages).
func (as *AddressSpace) Contiguous(a, b Block) bool {
	return a.RegionID() == b.RegionID() && b.Offset()-a.Offset() == int64(as.blockSize)
}

// Line is one cache block's state on one node.
type Line struct {
	Tag  Tag
	Data []byte
}

// chunkBits sizes the second level of the line table: lines are grouped
// into chunks allocated on first touch, so huge sparsely-touched regions
// (tree arenas) cost memory proportional to use, not size.
const chunkBits = 12

const chunkSize = 1 << chunkBits

// Store is one node's view of the shared address space: a two-level line
// table per region. Home-owned lines materialize lazily with a ReadWrite
// tag and zeroed data (their initial state); other nodes' lines
// materialize when the protocol installs data.
type Store struct {
	node int
	as   *AddressSpace
	// lines[regionID][chunk][idxInChunk]; nil chunks/entries are
	// untouched.
	lines [][][]*Line
}

// NewStore builds node's view of all regions allocated so far. Call after
// all regions are created.
func NewStore(as *AddressSpace, node int) *Store {
	s := &Store{node: node, as: as}
	s.lines = make([][][]*Line, len(as.regions))
	for _, r := range as.regions {
		nChunks := (r.NumBlocks() + chunkSize - 1) >> chunkBits
		s.lines[r.ID] = make([][]*Line, nChunks)
	}
	return s
}

// Node returns the owning node's ID.
func (s *Store) Node() int { return s.node }

// AddressSpace returns the address space this store maps.
func (s *Store) AddressSpace() *AddressSpace { return s.as }

func (s *Store) lineAt(a Addr) *Line {
	rid := a.RegionID()
	if rid >= len(s.lines) {
		panic(fmt.Sprintf("memory: node %d: access to unmapped region %d", s.node, rid))
	}
	idx := a.Offset() / int64(s.as.blockSize)
	ch := s.lines[rid][idx>>chunkBits]
	if ch == nil {
		return s.slowLine(rid, idx, false)
	}
	if l := ch[idx&(chunkSize-1)]; l != nil {
		return l
	}
	return s.slowLine(rid, idx, false)
}

// slowLine materializes untouched lines: home-owned blocks appear in their
// initial ReadWrite state; remote blocks appear only when create is set
// (as Invalid lines with storage).
func (s *Store) slowLine(rid int, idx int64, create bool) *Line {
	home := s.as.regions[rid].HomeOf(idx) == s.node
	if !home && !create {
		return nil
	}
	ch := s.lines[rid][idx>>chunkBits]
	if ch == nil {
		ch = make([]*Line, chunkSize)
		s.lines[rid][idx>>chunkBits] = ch
	}
	l := ch[idx&(chunkSize-1)]
	if l == nil {
		l = &Line{Tag: Invalid, Data: make([]byte, s.as.blockSize)}
		if home {
			l.Tag = ReadWrite
		}
		ch[idx&(chunkSize-1)] = l
	}
	return l
}

// Line returns the node's line for block b, or nil if none materialized.
func (s *Store) Line(b Block) *Line { return s.lineAt(b) }

// Tag returns the node's access tag for the block containing a.
func (s *Store) Tag(a Addr) Tag {
	if l := s.lineAt(a); l != nil {
		return l.Tag
	}
	return Invalid
}

// Ensure returns the node's line for block b, materializing an Invalid
// line with zeroed storage if needed.
func (s *Store) Ensure(b Block) *Line {
	rid := b.RegionID()
	idx := b.Offset() / int64(s.as.blockSize)
	return s.slowLine(rid, idx, true)
}

// Install copies data into the node's line for b and sets its tag.
func (s *Store) Install(b Block, data []byte, tag Tag) {
	l := s.Ensure(b)
	copy(l.Data, data)
	l.Tag = tag
}

// SetTag changes the tag of an existing line; it panics if the line has
// never been materialized (protocol bug).
func (s *Store) SetTag(b Block, tag Tag) {
	l := s.lineAt(b)
	if l == nil {
		panic(fmt.Sprintf("memory: node %d: SetTag on absent line %#x", s.node, uint64(b)))
	}
	l.Tag = tag
}

// Data returns the node's backing bytes for block b (it panics if absent).
func (s *Store) Data(b Block) []byte {
	l := s.lineAt(b)
	if l == nil {
		panic(fmt.Sprintf("memory: node %d: Data of absent line %#x", s.node, uint64(b)))
	}
	return l.Data
}

func (s *Store) checkAlign(a Addr, size int64) (l *Line, off int64) {
	off = a.Offset()
	if off&(size-1) != 0 {
		panic(fmt.Sprintf("memory: misaligned %d-byte access at %#x", size, uint64(a)))
	}
	return s.lineAt(a), off & int64(s.as.blockSize-1)
}

// LoadF64 reads a float64; ok is false on an access fault.
func (s *Store) LoadF64(a Addr) (v float64, ok bool) {
	l, off := s.checkAlign(a, 8)
	if l == nil || l.Tag < ReadOnly {
		return 0, false
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(l.Data[off:])), true
}

// StoreF64 writes a float64; ok is false on an access fault.
func (s *Store) StoreF64(a Addr, v float64) (ok bool) {
	l, off := s.checkAlign(a, 8)
	if l == nil || l.Tag < ReadWrite {
		return false
	}
	binary.LittleEndian.PutUint64(l.Data[off:], math.Float64bits(v))
	return true
}

// LoadU64 reads a uint64; ok is false on an access fault.
func (s *Store) LoadU64(a Addr) (v uint64, ok bool) {
	l, off := s.checkAlign(a, 8)
	if l == nil || l.Tag < ReadOnly {
		return 0, false
	}
	return binary.LittleEndian.Uint64(l.Data[off:]), true
}

// StoreU64 writes a uint64; ok is false on an access fault.
func (s *Store) StoreU64(a Addr, v uint64) (ok bool) {
	l, off := s.checkAlign(a, 8)
	if l == nil || l.Tag < ReadWrite {
		return false
	}
	binary.LittleEndian.PutUint64(l.Data[off:], v)
	return true
}

// LoadU32 reads a uint32; ok is false on an access fault.
func (s *Store) LoadU32(a Addr) (v uint32, ok bool) {
	l, off := s.checkAlign(a, 4)
	if l == nil || l.Tag < ReadOnly {
		return 0, false
	}
	return binary.LittleEndian.Uint32(l.Data[off:]), true
}

// StoreU32 writes a uint32; ok is false on an access fault.
func (s *Store) StoreU32(a Addr, v uint32) (ok bool) {
	l, off := s.checkAlign(a, 4)
	if l == nil || l.Tag < ReadWrite {
		return false
	}
	binary.LittleEndian.PutUint32(l.Data[off:], v)
	return true
}
