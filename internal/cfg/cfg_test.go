package cfg

import (
	"testing"

	"presto/internal/lang"
)

func build(t *testing.T, src string) (*Graph, *lang.Program) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(prog.Func("main"), prog)
	if err != nil {
		t.Fatal(err)
	}
	return g, prog
}

func TestStraightLine(t *testing.T) {
	g, _ := build(t, `
aggregate A[] { float x; }
parallel func f(parallel g: A) { g.x = 1; }
func main() {
  let g = A[8];
  f(g);
  f(g);
}
`)
	if len(g.Calls) != 2 {
		t.Fatalf("calls = %d", len(g.Calls))
	}
	// entry -> let -> call -> call -> exit, each single-successor.
	n := g.Node(g.Entry)
	steps := 0
	for n.ID != g.Exit {
		if len(n.Succs) != 1 {
			t.Fatalf("node %d (%s) has %d succs", n.ID, n.Label, len(n.Succs))
		}
		n = g.Node(n.Succs[0])
		steps++
	}
	if steps != 4 {
		t.Fatalf("path length = %d, want 4", steps)
	}
	// Consecutive call nodes get consecutive IDs (used by coalescing).
	if g.Calls[1].NodeID != g.Calls[0].NodeID+1 {
		t.Fatalf("call node IDs %d,%d not adjacent", g.Calls[0].NodeID, g.Calls[1].NodeID)
	}
}

func TestIfElseDiamond(t *testing.T) {
	g, _ := build(t, `
aggregate A[] { float x; }
func main() {
  let g = A[8];
  let c = 1;
  if c > 0 {
    let a = 1;
  } else {
    let b = 2;
  }
  let d = 3;
}
`)
	// Find the if node and the join (let d).
	var ifNode, join *Node
	for _, n := range g.Nodes {
		if _, ok := n.Stmt.(*lang.IfStmt); ok {
			ifNode = n
		}
		if n.Label == "let d = 3" {
			join = n
		}
	}
	if ifNode == nil || join == nil {
		t.Fatal("missing nodes")
	}
	if len(ifNode.Succs) != 2 {
		t.Fatalf("if succs = %v", ifNode.Succs)
	}
	if len(join.Preds) != 2 {
		t.Fatalf("join preds = %v", join.Preds)
	}
}

func TestLoopBackEdgeAndPreheader(t *testing.T) {
	g, _ := build(t, `
aggregate A[] { float x; }
parallel func f(parallel g: A) { g.x = 1; }
func main() {
  let g = A[8];
  for i in 0..10 {
    f(g);
  }
}
`)
	if len(g.Loops) != 1 {
		t.Fatalf("loops = %d", len(g.Loops))
	}
	loop := g.Loops[0]
	head := g.Node(loop.Head)
	if head.Loop != loop {
		t.Fatal("head not linked to loop")
	}
	pre := g.Node(loop.PreID)
	if len(pre.Succs) != 1 || pre.Succs[0] != loop.Head {
		t.Fatalf("preheader succs = %v", pre.Succs)
	}
	// The call node must have a back edge to the head.
	callNode := g.Node(g.Calls[0].NodeID)
	back := false
	for _, s := range callNode.Succs {
		if s == loop.Head {
			back = true
		}
	}
	if !back {
		t.Fatal("no back edge from loop body")
	}
	if len(loop.BodyIDs) == 0 {
		t.Fatal("loop body empty")
	}
}

func TestNestedLoopsBodyPropagation(t *testing.T) {
	g, _ := build(t, `
aggregate A[] { float x; }
parallel func f(parallel g: A) { g.x = 1; }
func main() {
  let g = A[8];
  for i in 0..10 {
    for j in 0..10 {
      f(g);
    }
  }
}
`)
	if len(g.Loops) != 2 {
		t.Fatalf("loops = %d", len(g.Loops))
	}
	outer, inner := g.Loops[0], g.Loops[1]
	callID := g.Calls[0].NodeID
	contains := func(ids []int, id int) bool {
		for _, x := range ids {
			if x == id {
				return true
			}
		}
		return false
	}
	if !contains(inner.BodyIDs, callID) {
		t.Fatal("inner loop missing call")
	}
	if !contains(outer.BodyIDs, callID) {
		t.Fatal("outer loop missing propagated call")
	}
}

func TestUndefinedCalleeError(t *testing.T) {
	prog := lang.MustParse(`
aggregate A[] { float x; }
func main() { nosuch(1); }
`)
	if _, err := Build(prog.Func("main"), prog); err == nil {
		t.Fatal("expected undefined-function error")
	}
}

func TestSequentialCallNotParallelSite(t *testing.T) {
	g, _ := build(t, `
aggregate A[] { float x; }
func helper() { let q = 1; }
func main() { helper(); }
`)
	if len(g.Calls) != 0 {
		t.Fatalf("sequential call recorded as parallel site: %v", g.Calls)
	}
}
