// Package cfg builds the statement-level control-flow graph of a cstar
// program's sequential portion (main), the structure over which the
// compiler runs its reaching-unstructured-accesses analysis and places
// runtime phase directives (paper §4.3, Figure 4). As in the paper, the
// sequential portion is restricted to main — the compiler performs no
// inter-procedural analysis.
package cfg

import (
	"fmt"
	"strings"

	"presto/internal/lang"
)

// Node is one CFG node. Entry/Exit/Join nodes carry no statement.
type Node struct {
	ID    int
	Stmt  lang.Stmt // nil for entry/exit/join
	Label string

	// Call is set when Stmt is a call to a parallel function.
	Call *CallSite

	// Loop is set on loop-head nodes (the ForStmt's condition check).
	Loop *LoopInfo

	Succs []int
	Preds []int
}

// LoopInfo describes a for-loop head.
type LoopInfo struct {
	Head    int   // the loop-head node
	BodyIDs []int // all nodes belonging to the loop body (inclusive of nested)
	PreID   int   // preheader node (directive hoist target)
}

// CallSite is a parallel-function invocation in main.
type CallSite struct {
	NodeID int
	Func   string
	// Args holds the aggregate variable names passed at each parameter
	// position ("" for non-aggregate arguments).
	Args []string
}

// Graph is main's control-flow graph.
type Graph struct {
	Nodes []*Node
	Entry int
	Exit  int
	Calls []*CallSite
	Loops []*LoopInfo
}

func (g *Graph) newNode(label string, stmt lang.Stmt) *Node {
	n := &Node{ID: len(g.Nodes), Stmt: stmt, Label: label}
	g.Nodes = append(g.Nodes, n)
	return n
}

func (g *Graph) edge(from, to int) {
	g.Nodes[from].Succs = append(g.Nodes[from].Succs, to)
	g.Nodes[to].Preds = append(g.Nodes[to].Preds, from)
}

// Build constructs the CFG of a sequential function (normally main).
// parallelFuncs names the program's parallel functions so call sites can
// be identified.
func Build(f *lang.FuncDecl, prog *lang.Program) (*Graph, error) {
	if f.Parallel {
		return nil, fmt.Errorf("cfg: %s is a parallel function", f.Name)
	}
	g := &Graph{}
	entry := g.newNode("entry", nil)
	g.Entry = entry.ID
	frontier, err := g.buildBlock(f.Body, []int{entry.ID}, prog, nil)
	if err != nil {
		return nil, err
	}
	exit := g.newNode("exit", nil)
	g.Exit = exit.ID
	for _, p := range frontier {
		g.edge(p, exit.ID)
	}
	return g, nil
}

// buildBlock threads the statements of blk after preds and returns the new
// frontier. curLoop collects body nodes for the innermost enclosing loop.
func (g *Graph) buildBlock(blk *lang.Block, preds []int, prog *lang.Program, curLoop *LoopInfo) ([]int, error) {
	for _, s := range blk.Stmts {
		var err error
		preds, err = g.buildStmt(s, preds, prog, curLoop)
		if err != nil {
			return nil, err
		}
	}
	return preds, nil
}

func (g *Graph) buildStmt(s lang.Stmt, preds []int, prog *lang.Program, curLoop *LoopInfo) ([]int, error) {
	attach := func(n *Node) {
		for _, p := range preds {
			g.edge(p, n.ID)
		}
		if curLoop != nil {
			curLoop.BodyIDs = append(curLoop.BodyIDs, n.ID)
		}
	}
	switch v := s.(type) {
	case *lang.IfStmt:
		cond := g.newNode("if "+lang.ExprString(v.Cond), s)
		attach(cond)
		thenF, err := g.buildBlock(v.Then, []int{cond.ID}, prog, curLoop)
		if err != nil {
			return nil, err
		}
		elseF := []int{cond.ID}
		if v.Else != nil {
			elseF, err = g.buildBlock(v.Else, []int{cond.ID}, prog, curLoop)
			if err != nil {
				return nil, err
			}
		}
		return append(append([]int{}, thenF...), elseF...), nil

	case *lang.ForStmt:
		pre := g.newNode("preheader", nil)
		attach(pre)
		head := g.newNode(fmt.Sprintf("for %s in %s..%s", v.Var, lang.ExprString(v.From), lang.ExprString(v.To)), s)
		g.edge(pre.ID, head.ID)
		if curLoop != nil {
			curLoop.BodyIDs = append(curLoop.BodyIDs, head.ID)
		}
		loop := &LoopInfo{Head: head.ID, PreID: pre.ID}
		head.Loop = loop
		g.Loops = append(g.Loops, loop)
		bodyF, err := g.buildBlock(v.Body, []int{head.ID}, prog, loop)
		if err != nil {
			return nil, err
		}
		for _, b := range bodyF {
			g.edge(b, head.ID) // back edge
		}
		// Propagate body nodes to the enclosing loop as well.
		if curLoop != nil {
			curLoop.BodyIDs = append(curLoop.BodyIDs, loop.BodyIDs...)
		}
		return []int{head.ID}, nil

	case *lang.ReturnStmt:
		n := g.newNode("return", s)
		attach(n)
		return nil, nil // falls off to exit via no frontier; simplistic

	default:
		label := stmtLabel(s)
		n := g.newNode(label, s)
		attach(n)
		if call := callOf(s); call != nil {
			callee := prog.Func(call.Callee)
			if callee == nil {
				return nil, fmt.Errorf("cfg: %s: call to undefined function %q", n.Label, call.Callee)
			}
			if callee.Parallel {
				cs := &CallSite{NodeID: n.ID, Func: call.Callee}
				for _, a := range call.Args {
					if vr, ok := a.(*lang.VarRef); ok {
						cs.Args = append(cs.Args, vr.Name)
					} else {
						cs.Args = append(cs.Args, "")
					}
				}
				n.Call = cs
				g.Calls = append(g.Calls, cs)
			}
		}
		return []int{n.ID}, nil
	}
}

// callOf extracts a call expression from a statement, if any.
func callOf(s lang.Stmt) *lang.CallExpr {
	switch v := s.(type) {
	case *lang.ExprStmt:
		if c, ok := v.X.(*lang.CallExpr); ok {
			return c
		}
	case *lang.LetStmt:
		if c, ok := v.Value.(*lang.CallExpr); ok {
			return c
		}
	case *lang.AssignStmt:
		if c, ok := v.Value.(*lang.CallExpr); ok {
			return c
		}
	}
	return nil
}

func stmtLabel(s lang.Stmt) string {
	var b strings.Builder
	switch v := s.(type) {
	case *lang.LetStmt:
		if v.AggType != "" {
			fmt.Fprintf(&b, "let %s = %s[...]", v.Name, v.AggType)
		} else {
			fmt.Fprintf(&b, "let %s = %s", v.Name, lang.ExprString(v.Value))
		}
	case *lang.AssignStmt:
		fmt.Fprintf(&b, "%s = %s", lang.ExprString(v.Target), lang.ExprString(v.Value))
	case *lang.ExprStmt:
		b.WriteString(lang.ExprString(v.X))
	default:
		fmt.Fprintf(&b, "%T", s)
	}
	return b.String()
}

// Node returns the node with the given ID.
func (g *Graph) Node(id int) *Node { return g.Nodes[id] }

// Dump renders the graph for debugging and golden tests.
func (g *Graph) Dump() string {
	var b strings.Builder
	for _, n := range g.Nodes {
		fmt.Fprintf(&b, "%3d: %-40s ->", n.ID, n.Label)
		for _, s := range n.Succs {
			fmt.Fprintf(&b, " %d", s)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
