// Package dataflow implements the iterative bit-vector data-flow
// framework the compiler uses for its reaching-unstructured-accesses
// analysis (paper §4.3): a forward, any-path (union) problem in a
// framework identical to reaching definitions.
package dataflow

import (
	"math/bits"

	"presto/internal/cfg"
)

// Bits is a bit vector over the analysis facts (one bit per aggregate in
// the reaching-unstructured-accesses problem; at most 64 facts).
type Bits uint64

// Has reports bit i.
func (b Bits) Has(i int) bool { return b&(1<<uint(i)) != 0 }

// Set returns b with bit i set.
func (b Bits) Set(i int) Bits { return b | 1<<uint(i) }

// Count returns the number of set bits.
func (b Bits) Count() int { return bits.OnesCount64(uint64(b)) }

// GenKill supplies each node's transfer function as gen/kill sets:
// out = gen | (in &^ kill).
type GenKill interface {
	Gen(nodeID int) Bits
	Kill(nodeID int) Bits
}

// Result carries the fixpoint solution.
type Result struct {
	In  []Bits
	Out []Bits
	// Iterations is the number of passes until the fixpoint (tests).
	Iterations int
}

// Forward solves a forward any-path problem over g with the given
// transfer functions, using a worklist until fixpoint.
func Forward(g *cfg.Graph, tf GenKill) *Result {
	n := len(g.Nodes)
	res := &Result{In: make([]Bits, n), Out: make([]Bits, n)}

	// Seed the worklist in node order (reverse-postorder would converge
	// faster; the graphs here are tiny).
	work := make([]int, 0, n)
	inWork := make([]bool, n)
	for i := 0; i < n; i++ {
		work = append(work, i)
		inWork[i] = true
	}
	for len(work) > 0 {
		id := work[0]
		work = work[1:]
		inWork[id] = false
		res.Iterations++

		var in Bits
		for _, p := range g.Nodes[id].Preds {
			in |= res.Out[p]
		}
		out := tf.Gen(id) | (in &^ tf.Kill(id))
		res.In[id] = in
		if out == res.Out[id] {
			continue
		}
		res.Out[id] = out
		for _, s := range g.Nodes[id].Succs {
			if !inWork[s] {
				work = append(work, s)
				inWork[s] = true
			}
		}
	}
	return res
}

// Funcs adapts plain functions to GenKill.
type Funcs struct {
	GenFn  func(nodeID int) Bits
	KillFn func(nodeID int) Bits
}

// Gen implements GenKill.
func (f Funcs) Gen(id int) Bits { return f.GenFn(id) }

// Kill implements GenKill.
func (f Funcs) Kill(id int) Bits { return f.KillFn(id) }
