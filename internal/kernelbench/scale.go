// Kilonode-scale benchmarks: the hot paths the 1024-node tentpole
// leans on — the node-leader aggregation flush, the sized timing wheel
// under a 1024-proc event population, and the batched barrier release —
// plus the cross-group message-reduction guard that pins the paper's
// aggregation claim as a counter ratio rather than a wall-clock bound.
package kernelbench

import (
	"fmt"
	"testing"

	"presto/internal/memory"
	"presto/internal/network"
	"presto/internal/rt"
	"presto/internal/sim"
	"presto/internal/tempest"
)

// scaleCases returns the kilonode workloads in stable order.
func scaleCases() []Case {
	return []Case{
		{"agg_flush64", benchAggFlush64, true},
		{"wheel1024_burst", benchWheel1024Burst, false},
		{"barrier1024_release", benchBarrier1024, true},
	}
}

// benchProto satisfies tempest.Protocol for substrate-level benchmarks:
// deliveries are absorbed, faults resolve locally.
type benchProto struct{}

func (benchProto) Name() string         { return "bench" }
func (benchProto) Init(n *tempest.Node) {}
func (benchProto) OnFault(n *tempest.Node, b memory.Block, w bool) bool {
	n.Store.Ensure(b).Tag = memory.ReadWrite
	return true
}
func (benchProto) Handle(n *tempest.Node, d sim.Delivery) {}

// benchAggFlush64 drives the aggregation buffer through its occupancy
// flush in steady state: node 0 posts 8-entry cross-group bulks until
// the destination group's buffer hits the 64-entry cap, the flush
// coalesces them into one MsgAgg, and the group leader redistributes.
// One op is one coalesced bulk entry end to end (buffer, flush,
// leader hop, redistribution). Guarded: the buffering layer recycles
// its part slices through a pool, so the per-entry path may not
// allocate (the occasional message boxing amortizes far below one
// allocation per entry).
func benchAggFlush64(b *testing.B) {
	const (
		nodes      = 4
		entryBulk  = 8 // entries per posted bulk
		roundPosts = 8 // bulks per flush round (8 x 8 = occupancy cap)
		drain      = 500 * sim.Microsecond
	)
	b.ReportAllocs()
	net, err := network.Preset("cluster:2x2")
	if err != nil {
		b.Fatal(err)
	}
	k := sim.NewKernel()
	as := memory.NewAddressSpace(nodes, 32)
	r := as.NewRegion("agg", 1024, func(i int64) int { return int(i % nodes) })
	all := make([]*tempest.Node, nodes)
	for i := 0; i < nodes; i++ {
		all[i] = tempest.NewNode(i, as, net, benchProto{})
	}
	for _, n := range all {
		n.Peers = all
	}
	for _, n := range all {
		n := n
		n.ProtoProc = k.Spawn("proto", n.ProtocolLoop)
		n.ProtoProc.SetDaemon(true)
	}
	all[0].EnableAggregation(false)
	entries := make([]tempest.BulkEntry, entryBulk)
	for i := range entries {
		entries[i] = tempest.BulkEntry{Block: r.BlockAt(int64(i)), Data: make([]byte, 32)}
	}
	bulk := tempest.MsgBulk{Entries: entries}
	n := b.N
	k.Spawn("driver", func(p *sim.Proc) {
		sent := 0
		for sent < n {
			// One flush round: alternate destinations inside the remote
			// group so the aggregate carries several distinct parts.
			for j := 0; j < roundPosts; j++ {
				all[0].PostBulk(p, all[2+j%2], bulk)
			}
			sent += roundPosts * entryBulk
			p.Sleep(drain) // let the aggregate deliver and redistribute
		}
		all[0].FlushAgg(p)
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
	if all[0].Stats.AggMsgs == 0 || all[0].AggPending() != 0 {
		b.Fatalf("aggregation not exercised: %d aggs, %d pending",
			all[0].Stats.AggMsgs, all[0].AggPending())
	}
}

// benchWheel1024Burst holds a 1024-proc event population on a wheel
// sized for it (2048 buckets, the rt sizing rule of 2x the lane count):
// every proc sleeps on a scattered schedule spanning past the wheel
// horizon, so pushes exercise the near buckets, the overflow heap and
// its migration path at kilonode occupancy. One op is one full run of
// the 1024-proc workload.
func benchWheel1024Burst(b *testing.B) {
	const (
		procs  = 1024
		rounds = 3
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel()
		k.UseSchedulerSized(sim.SchedWheel, sim.Microsecond, 2*procs)
		for j := 0; j < procs; j++ {
			j := j
			k.Spawn(fmt.Sprintf("t%d", j), func(p *sim.Proc) {
				for r := 0; r < rounds; r++ {
					// 1µs..~1.5ms spread: mostly near-wheel, the long
					// tail lands in overflow (wheel horizon 2048µs).
					d := sim.Time(1+(j*37+r*101)%1500) * sim.Microsecond
					p.Sleep(d)
				}
			})
		}
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBarrier1024 measures the batched barrier release at kilonode
// width: 1024 procs arrive and the release wakes them in one pass. One
// op is one full barrier episode (1024 arrivals plus the release).
// Guarded: the arrive/release path may not allocate in steady state.
func benchBarrier1024(b *testing.B) {
	const procs = 1024
	b.ReportAllocs()
	k := sim.NewKernel()
	k.UseSchedulerSized(sim.SchedWheel, sim.Microsecond, 2*procs)
	bar := k.NewBarrier(procs, 10*sim.Microsecond)
	n := b.N
	for i := 0; i < procs; i++ {
		k.Spawn(fmt.Sprintf("w%d", i), func(p *sim.Proc) {
			for j := 0; j < n; j++ {
				p.Advance(sim.Microsecond)
				p.Wait(bar)
			}
		})
	}
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// MsgRatioGuard pins a message-count reduction as a counter ratio
// between two full runtime runs: Eval performs both runs and returns
// the numerator and denominator counters (plus a human-readable
// detail); paperbench -kernel-bench fails the run when num/den < Min
// or when Eval itself reports an error (e.g. the runs' final memory
// diverged, which would make the ratio meaningless).
type MsgRatioGuard struct {
	Name string
	Num  string // numerator label in reports
	Den  string // denominator label in reports
	Min  float64
	Eval func() (num, den float64, detail string, err error)
}

// MsgRatioGuards returns the counter-ratio bounds.
//
// agg_crossgroup_reduction is the tentpole's headline claim: on a
// clustered machine whose steady-state traffic is bulk data — the
// write-update push pattern, where each home multicasts its block to
// every remote consumer each iteration — node-leader aggregation must
// cut cross-group message traffic at least 4x while leaving final
// memory byte-identical and conserving every coalesced entry. The
// invalidation-based protocols bound lower on the same pattern: their
// per-sharer MsgInval/ack control traffic is not coalescible, so bulk
// grants are the minority of their cross traffic.
func MsgRatioGuards() []MsgRatioGuard {
	return []MsgRatioGuard{{
		Name: "agg_crossgroup_reduction",
		Num:  "crossmsgs_unaggregated",
		Den:  "crossmsgs_aggregated",
		Min:  4.0,
		Eval: evalAggCrossGroup,
	}}
}

// evalAggCrossGroup runs the push workload on a 32-node cluster
// (4 groups of 8) with aggregation off and on.
func evalAggCrossGroup() (float64, float64, string, error) {
	const iters = 16
	net, err := network.Preset("cluster:4x8")
	if err != nil {
		return 0, 0, "", err
	}
	cfg := rt.Config{Nodes: 32, BlockSize: 32, Net: net, Protocol: rt.ProtoUpdate}
	run := func(agg bool) (*rt.Machine, error) {
		c := cfg
		c.Aggregate = agg
		m := rt.New(c)
		if err := m.Run(aggPushProg(m, iters)); err != nil {
			return nil, err
		}
		return m, nil
	}
	off, err := run(false)
	if err != nil {
		return 0, 0, "", err
	}
	on, err := run(true)
	if err != nil {
		return 0, 0, "", err
	}
	if hOff, hOn := off.HashMemory(), on.HashMemory(); hOff != hOn {
		return 0, 0, "", fmt.Errorf("aggregation changed final memory: %#x vs %#x", hOff, hOn)
	}
	cOn := on.Counters()
	if cOn.AggMsgs == 0 {
		return 0, 0, "", fmt.Errorf("aggregated run sent no aggregates")
	}
	if cOn.AggEntriesOut != cOn.AggEntriesIn {
		return 0, 0, "", fmt.Errorf("aggregation conservation broken: %d out, %d in",
			cOn.AggEntriesOut, cOn.AggEntriesIn)
	}
	cOff := off.Counters()
	detail := fmt.Sprintf("cluster:4x8 push x%d: cross %d -> %d (aggs %d)",
		iters, cOff.CrossMsgs, cOn.CrossMsgs, cOn.AggMsgs)
	return float64(cOff.CrossMsgs), float64(cOn.CrossMsgs), detail, nil
}

// aggPushProg is the write-update steady state: one warm-up round
// registers every node as a sharer of every slot, then each iteration
// has every owner update its slot and multicast it (PushUpdates) to the
// 31 consumers — 24 of them across group boundaries, so each home owes
// three remote groups a bulk every iteration. Consumer reads hit the
// pushed local copies and generate no traffic of their own.
func aggPushProg(m *rt.Machine, iters int) rt.Program {
	n := m.Cfg.Nodes
	arr := m.NewArray1D("push", n, 1, true)
	return func(w *rt.Worker) {
		w.WriteF64(arr.At(w.ID, 0), float64(w.ID))
		w.Barrier()
		for i := 0; i < n; i++ {
			_ = w.ReadF64(arr.At(i, 0)) // register as a sharer everywhere
		}
		w.Barrier()
		own := []memory.Addr{arr.At(w.ID, 0)}
		for it := 0; it < iters; it++ {
			w.Phase(1, func() {
				w.WriteF64(own[0], float64(w.ID+it))
				w.PushUpdates(own)
				w.Compute(5 * sim.Microsecond)
			})
			w.Phase(2, func() {
				s := 0.0
				for i := 0; i < n; i++ {
					s += w.ReadF64(arr.At(i, 0))
				}
				_ = s
				w.Compute(5 * sim.Microsecond)
			})
		}
	}
}
