package kernelbench

import "testing"

// BenchmarkScale exposes the kilonode cases to `go test -bench` in
// their home package (run with -benchtime 1x for a functional smoke:
// the bodies carry their own correctness assertions — aggregates
// actually sent, buffers drained, kernels complete).
func BenchmarkScale(b *testing.B) {
	for _, c := range scaleCases() {
		b.Run(c.Name, c.Bench)
	}
}

// TestAggCrossGroupGuard pins the headline counter guard: ≥4x fewer
// cross-group messages with aggregation on, byte-identical memory.
func TestAggCrossGroupGuard(t *testing.T) {
	g := MsgRatioGuards()[0]
	num, den, detail, err := g.Eval()
	if err != nil {
		t.Fatal(err)
	}
	if num/den < g.Min {
		t.Fatalf("%s: %.2fx below %.1fx (%s)", g.Name, num/den, g.Min, detail)
	}
	t.Logf("%s: %.2fx (%s)", g.Name, num/den, detail)
}
