// Package kernelbench defines the simulation kernel's hot-path benchmark
// workloads in one place, so that `go test -bench` (internal/sim) and
// `paperbench -kernel-bench` (which records the committed BENCH_kernel.json)
// measure exactly the same code.
//
// Every workload spawns fresh Procs on a fresh Kernel and counts one kernel
// "operation" per loop iteration; allocation numbers therefore amortize the
// fixed setup cost over b.N and converge to the per-event hot-path cost.
package kernelbench

import (
	"fmt"
	"testing"

	"presto/internal/sim"
)

// Case is one kernel benchmark workload.
type Case struct {
	Name  string
	Bench func(b *testing.B)
	// ZeroAlloc marks a guarded hot path: the bench-regression gate
	// (paperbench -kernel-bench) fails the run if the case reports any
	// allocation per operation.
	ZeroAlloc bool
}

// Cases returns the kernel and protocol hot-path workloads in stable
// order: the simulation-kernel paths first, then the block-state
// protocol paths (protocol.go) and the analytical-predictor fast path
// (predict.go).
func Cases() []Case {
	return append([]Case{
		{"send_recv", benchSendRecv, true},
		{"send_recv_profiled", benchSendRecvProfiled, true},
		{"send_recv_chain", benchChain, true},
		{"send_recv_burst64", benchBurst, true},
		{"barrier8", benchBarrier, true},
		{"sleep_advance", benchSleep, true},
		{"fanout8", benchFanout, false},
		{"wheel_vs_heap_burst256", benchSchedBurst256, false},
		{"mesh8_serial", benchMesh(0), false},
		{"mesh8_parallel4", benchMesh(4), false},
		{"window_commit8", benchMesh(1), false},
		{"mesh8_dense_serial", benchDenseMesh(0), false},
		{"mesh8_dense_parallel4", benchDenseMesh(4), false},
		{"cluster8x2_dense_serial", benchClusterDense(0), false},
		{"cluster8x2_dense_parallel4", benchClusterDense(4), false},
	}, append(protocolCases(), append(predictCases(), scaleCases()...)...)...)
}

// RatioGuard bounds the ratio of two cases' ns/op; paperbench
// -kernel-bench fails the run when the bound is exceeded (and skips the
// guard when -kernel-filter excludes either case).
type RatioGuard struct {
	Name string // guard label in reports
	Num  string // numerator case
	Den  string // denominator case
	Max  float64
}

// RatioGuards returns the cross-case performance bounds.
//
// parallel_engine_overhead pins the conservative parallel engine's
// per-event overhead: on the mesh workload the 4-worker engine may cost
// at most 1.1x the serial engine even on a single-CPU host, so
// window-commit machinery can never silently regress again.
//
// recorder_overhead pins the causal flight recorder's cost with the
// recorder ON (ring push per binding wake plus attribution charging) at
// 1.25x plain send_recv. Since the enabled recorder is bounded this
// tightly, the disabled recorder — the same sites reduced to nil checks —
// is necessarily a dead branch; the committed-baseline diff on send_recv
// itself guards that directly.
func RatioGuards() []RatioGuard {
	return []RatioGuard{
		{Name: "parallel_engine_overhead", Num: "mesh8_parallel4", Den: "mesh8_serial", Max: 1.1},
		{Name: "recorder_overhead", Num: "send_recv_profiled", Den: "send_recv", Max: 1.25},
	}
}

// SpeedupGuard demands the parallel case beat the serial one by at least
// MinSpeedup on the same workload (serial/parallel >= MinSpeedup). These
// guards only hold on a multi-core host, so paperbench gates them behind
// the opt-in -kernel-speedup flag (CI's bench-multicore job passes it at
// GOMAXPROCS=4); single-CPU runs skip them.
type SpeedupGuard struct {
	Name       string
	Parallel   string // parallel case name
	Serial     string // serial case name
	MinSpeedup float64
}

// SpeedupGuards returns the multi-core wall-clock bounds: the dense mesh
// and cluster workloads — whose windows carry real per-lane computation —
// must run at least 2x faster under the 4-worker engine.
func SpeedupGuards() []SpeedupGuard {
	return []SpeedupGuard{
		{Name: "mesh_dense_speedup", Parallel: "mesh8_dense_parallel4", Serial: "mesh8_dense_serial", MinSpeedup: 2.0},
		{Name: "cluster_dense_speedup", Parallel: "cluster8x2_dense_parallel4", Serial: "cluster8x2_dense_serial", MinSpeedup: 2.0},
	}
}

// benchSendRecv is the canonical send/recv path: two Procs ping-pong one
// message per iteration. Each op is one full round trip (two deliveries,
// two resumes).
func benchSendRecv(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel()
	var msg any = new(struct{})
	n := b.N
	pong := k.Spawn("pong", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			d := p.Recv()
			p.Send(d.From, msg, sim.Microsecond)
		}
	})
	k.Spawn("ping", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.Send(pong, msg, sim.Microsecond)
			p.Recv()
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchSendRecvProfiled is benchSendRecv with the causal flight recorder
// enabled and attribution slots attached: every delivery wake records an
// edge into the pre-allocated ring and charges the woken Proc's slot.
// Guarded zero-alloc — the recorder's steady state may not allocate —
// and ratio-guarded against plain send_recv (recorder_overhead).
func benchSendRecvProfiled(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel()
	k.EnableRecorder(1 << 16)
	var slots [2]sim.AttrSlot
	var msg any = new(struct{})
	n := b.N
	pong := k.Spawn("pong", func(p *sim.Proc) {
		p.SetAttrSlot(&slots[0])
		for i := 0; i < n; i++ {
			d := p.Recv()
			p.Send(d.From, msg, sim.Microsecond)
		}
	})
	k.Spawn("ping", func(p *sim.Proc) {
		p.SetAttrSlot(&slots[1])
		for i := 0; i < n; i++ {
			p.Send(pong, msg, sim.Microsecond)
			p.Recv()
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchChain circulates a single token around an 8-proc ring: at every
// instant exactly one proc is runnable, so every dispatch is a direct
// proc-to-proc baton handoff (the chained-dispatch fast path) with no
// scheduler-goroutine bounce. Each op is one hop.
func benchChain(b *testing.B) {
	const procs = 8
	b.ReportAllocs()
	k := sim.NewKernel()
	var msg any = new(struct{})
	n := b.N
	ring := make([]*sim.Proc, procs)
	for i := 0; i < procs; i++ {
		i := i
		ring[i] = k.Spawn(fmt.Sprintf("c%d", i), func(p *sim.Proc) {
			// Hop h is taken by proc h%procs; proc i forwards every
			// token it receives and exits once its share of n is done.
			hops := n / procs
			if i < n%procs {
				hops++
			}
			for h := 0; h < hops; h++ {
				if !(i == 0 && h == 0) {
					p.Recv()
				}
				p.Send(ring[(i+1)%procs], msg, sim.Microsecond)
			}
			if i == n%procs {
				p.Recv() // absorb the final hop's token so the ring drains
			}
		})
	}
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchBurst drives the mailbox to depth 64 before the consumer drains it:
// the producer fires a burst while the consumer sleeps, so deliveries queue
// up and every Recv dequeues from a deep mailbox. A linear-time dequeue
// makes this workload quadratic in the burst size.
func benchBurst(b *testing.B) {
	const (
		burst  = 64
		window = 200 * sim.Microsecond
	)
	b.ReportAllocs()
	k := sim.NewKernel()
	var msg any = new(struct{})
	n := b.N
	cons := k.Spawn("cons", func(p *sim.Proc) {
		got := 0
		for got < n {
			p.Sleep(window) // deliveries queue but do not wake a sleeper
			for p.Pending() > 0 {
				p.Recv()
				got++
			}
		}
	})
	k.Spawn("prod", func(p *sim.Proc) {
		sent := 0
		for sent < n {
			m := burst
			if n-sent < m {
				m = n - sent
			}
			for j := 0; j < m; j++ {
				p.Send(cons, msg, sim.Microsecond)
			}
			sent += m
			p.Sleep(window) // yield so earlier bursts deliver; aligns with the consumer's next window
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchBarrier measures the barrier arrive/release path with 8 Procs.
// Each op is one barrier crossing by one Proc.
func benchBarrier(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel()
	const procs = 8
	bar := k.NewBarrier(procs, 10*sim.Microsecond)
	n := b.N
	for i := 0; i < procs; i++ {
		k.Spawn(fmt.Sprintf("w%d", i), func(p *sim.Proc) {
			for j := 0; j < n; j++ {
				p.Advance(sim.Microsecond)
				p.Wait(bar)
			}
		})
	}
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchSleep measures the clock-advance + self-resume path: a single Proc
// alternating Advance and Sleep, one timer event per op.
func benchSleep(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel()
	n := b.N
	k.Spawn("sleeper", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.Advance(100 * sim.Nanosecond)
			p.Sleep(sim.Microsecond)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchMesh is an 8-proc ring where every proc forwards a message to its
// right neighbor each round — the parallel engine's best case (all lanes
// busy every window). workers selects the engine: 0 runs the serial
// dispatcher, 1 runs the parallel engine's serialized (chained
// window-commit) path, >1 runs the worker pool; the same workload under
// every engine makes their per-event overhead directly comparable. Each
// op is one round (8 sends + 8 receives).
func benchMesh(workers int) func(b *testing.B) {
	return func(b *testing.B) {
		const (
			procs = 8
			delay = 10 * sim.Microsecond
		)
		b.ReportAllocs()
		k := sim.NewKernel()
		var msg any = new(struct{})
		n := b.N
		ring := make([]*sim.Proc, procs)
		for i := 0; i < procs; i++ {
			i := i
			ring[i] = k.Spawn(fmt.Sprintf("m%d", i), func(p *sim.Proc) {
				for r := 0; r < n; r++ {
					p.Send(ring[(i+1)%procs], msg, delay)
					p.Recv()
				}
			})
		}
		b.ResetTimer()
		var err error
		if workers > 0 {
			err = k.RunParallel(sim.ParallelConfig{Workers: workers, Lookahead: delay})
		} else {
			err = k.Run()
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// burnSink defeats dead-code elimination of burn's result.
var burnSink uint64

// burn spins deterministic integer work on the host CPU — a stand-in for
// the protocol-handler computation a real simulation carries per event.
// The dense benchmarks use it to give the parallel engine's workers
// something to actually parallelize; n≈2000 is a couple of microseconds.
func burn(n int) uint64 {
	x := uint64(n) | 1
	for i := 0; i < n; i++ {
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	}
	return x
}

// benchDenseMesh is benchMesh with per-round host computation on every
// proc: all 8 lanes are busy every window and each carries real work, so
// a multi-core host must show wall-clock speedup under the worker pool
// (SpeedupGuards; CI's bench-multicore job enforces >= 2x at 4 workers).
// Each op is one round: 8 burns + 8 sends + 8 receives.
func benchDenseMesh(workers int) func(b *testing.B) {
	return func(b *testing.B) {
		const (
			procs = 8
			delay = 10 * sim.Microsecond
			work  = 2000
		)
		b.ReportAllocs()
		k := sim.NewKernel()
		var msg any = new(struct{})
		n := b.N
		ring := make([]*sim.Proc, procs)
		sinks := make([]uint64, procs) // per-proc: lanes run concurrently
		for i := 0; i < procs; i++ {
			i := i
			ring[i] = k.Spawn(fmt.Sprintf("d%d", i), func(p *sim.Proc) {
				var acc uint64
				for r := 0; r < n; r++ {
					acc += burn(work)
					p.Advance(2 * sim.Microsecond)
					p.Send(ring[(i+1)%procs], msg, delay)
					p.Recv()
				}
				sinks[i] = acc
			})
		}
		b.ResetTimer()
		var err error
		if workers > 0 {
			err = k.RunParallel(sim.ParallelConfig{Workers: workers, Lookahead: delay})
		} else {
			err = k.Run()
		}
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range sinks {
			burnSink += s
		}
	}
}

// benchClusterDense models a two-level cluster at the kernel layer: 8
// lanes of two procs each (front+back, like a node's compute+protocol
// pair), cheap intra-lane traffic far below the cross-lane bound, and a
// per-lane-pair lookahead matrix set to the wide inter-group transit.
// Each window therefore carries several intra-lane events plus host
// computation per lane — the regime the pair matrix exists for: windows
// 40x wider than the intra-lane delay would allow under a global scalar
// bound. Each op is one round over all 8 lanes.
func benchClusterDense(workers int) func(b *testing.B) {
	return func(b *testing.B) {
		const (
			lanes  = 8
			localD = sim.Microsecond      // intra-lane (same group)
			farD   = 40 * sim.Microsecond // cross-lane (between groups)
			work   = 1000
		)
		b.ReportAllocs()
		k := sim.NewKernel()
		var msg any = new(struct{})
		n := b.N
		front := make([]*sim.Proc, lanes)
		back := make([]*sim.Proc, lanes)
		sinks := make([]uint64, 2*lanes) // per-proc: lanes run concurrently
		for i := 0; i < lanes; i++ {
			i := i
			back[i] = k.Spawn(fmt.Sprintf("b%d", i), func(p *sim.Proc) {
				var acc uint64
				for r := 0; r < n; r++ {
					d := p.Recv()
					acc += burn(work)
					p.Advance(sim.Microsecond)
					p.Send(d.From, msg, localD)
				}
				sinks[i] = acc
			})
		}
		for i := 0; i < lanes; i++ {
			i := i
			front[i] = k.Spawn(fmt.Sprintf("f%d", i), func(p *sim.Proc) {
				var acc uint64
				for r := 0; r < n; r++ {
					p.Send(back[i], msg, localD) // intra-lane round trip
					p.Recv()
					acc += burn(work)
					p.Advance(sim.Microsecond)
					p.Send(front[(i+1)%lanes], msg, farD) // cross-lane hop
					p.Recv()
				}
				sinks[lanes+i] = acc
			})
		}
		b.ResetTimer()
		var err error
		if workers > 0 {
			err = k.RunParallel(sim.ParallelConfig{
				Workers: workers,
				Lanes:   lanes,
				LaneOf:  func(p *sim.Proc) int { return p.ID() % lanes },
				PairLookahead: func(i, j int) sim.Time {
					return farD
				},
			})
		} else {
			err = k.Run()
		}
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range sinks {
			burnSink += s
		}
	}
}

// benchSchedBurst256 holds a 256-deep pending-event set with scattered
// timestamps — 256 procs in staggered sleep loops, durations spanning
// past the wheel's horizon so pushes hit near buckets, the overflow heap
// and its migration path. One op runs the workload once under the
// timing wheel and once under the binary-heap reference, so the CI
// regression diff catches a slowdown in either scheduler; the two
// kernels' stats are asserted identical (the differential in miniature).
func benchSchedBurst256(b *testing.B) {
	const (
		procs  = 256
		rounds = 4
	)
	run := func(kind sim.SchedulerKind) sim.KernelStats {
		k := sim.NewKernel()
		k.UseScheduler(kind, sim.Microsecond)
		for i := 0; i < procs; i++ {
			i := i
			k.Spawn(fmt.Sprintf("t%d", i), func(p *sim.Proc) {
				for r := 0; r < rounds; r++ {
					// 1µs..~1.5ms spread: mostly near-wheel, the long
					// tail lands in overflow (wheel horizon 256µs).
					d := sim.Time(1+(i*37+r*101)%1500) * sim.Microsecond
					p.Sleep(d)
				}
			})
		}
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
		return k.Stats()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := run(sim.SchedWheel)
		h := run(sim.SchedHeap)
		if w != h {
			b.Fatalf("wheel vs heap stats diverge: %+v vs %+v", w, h)
		}
	}
}

// benchFanout has one producer broadcasting to 8 consumers per iteration,
// exercising the event queue under wider fan-out than the ping-pong case.
func benchFanout(b *testing.B) {
	const fan = 8
	b.ReportAllocs()
	k := sim.NewKernel()
	var msg any = new(struct{})
	n := b.N
	consumers := make([]*sim.Proc, fan)
	for i := range consumers {
		consumers[i] = k.Spawn(fmt.Sprintf("c%d", i), func(p *sim.Proc) {
			for j := 0; j < n; j++ {
				p.Recv()
			}
		})
	}
	k.Spawn("prod", func(p *sim.Proc) {
		for j := 0; j < n; j++ {
			for _, c := range consumers {
				p.Send(c, msg, sim.Microsecond)
			}
			p.Sleep(2 * sim.Microsecond) // yield so the fan-out delivers each round
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}
