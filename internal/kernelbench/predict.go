package kernelbench

import (
	"testing"

	"presto/internal/network"
	"presto/internal/predict"
)

// predictCases returns the analytical-predictor workloads. The predictor
// answers parameter sweeps in place of simulations, so its per-target
// cost is a kernel hot path in its own right: predict_sweep256
// extrapolates one calibration to 256 configurations spanning every
// block-size shift, four interconnect presets and a range of node
// counts per operation, and is zero-alloc guarded — the fast path must
// never grow a hidden per-target allocation.
func predictCases() []Case {
	return []Case{
		{"predict_sweep256", benchPredictSweep256, true},
	}
}

// sink defeats dead-code elimination of the benchmark loop.
var sink int64

func benchPredictSweep256(b *testing.B) {
	cal := predict.Synthetic(16, 4)
	nets := make([]*network.Params, 0, 4)
	for _, name := range []string{"cm5", "now", "hwdsm", "cluster:4x8"} {
		p, err := network.Preset(name)
		if err != nil {
			b.Fatal(err)
		}
		nets = append(nets, p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sum int64
	for i := 0; i < b.N; i++ {
		for j := 0; j < 256; j++ {
			t := predict.Target{
				BlockSize: cal.BlockSize << (j % (predict.MaxShift + 1)),
				Net:       nets[(j/(predict.MaxShift+1))%len(nets)],
				Nodes:     2 + j%31,
			}
			pr, err := cal.Predict(t)
			if err != nil {
				b.Fatal(err)
			}
			sum += pr.ElapsedNS
		}
	}
	sink = sum
}
