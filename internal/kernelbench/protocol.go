// Protocol-path benchmarks: the block-state hot paths the dense paged
// storage layer (internal/blockstate) optimizes. Each dense case is
// paired with its map-reference twin so BENCH_kernel.json records the
// speedup the PR claims (directory churn, pre-send walk, deferral scan).
package kernelbench

import (
	"sort"
	"testing"

	"presto/internal/blockstate"
	"presto/internal/memory"
	"presto/internal/schedule"
	"presto/internal/tempest"
)

// protocolCases returns the block-state workloads in stable order.
func protocolCases() []Case {
	return []Case{
		{"dir_churn_dense", benchDirChurn(blockstate.Dense), true},
		{"dir_churn_mapref", benchDirChurn(blockstate.MapRef), false},
		{"presend_walk_repeat", benchPresendWalkRepeat, true},
		{"presend_walk_sortmap", benchPresendWalkSortMap, false},
		{"sched_build512_dense", benchSchedBuild(blockstate.Dense), false},
		{"sched_build512_mapref", benchSchedBuild(blockstate.MapRef), false},
		{"stache_deferral_scan_dense", benchDeferralScan(blockstate.Dense), true},
		{"stache_deferral_scan_mapref", benchDeferralScan(blockstate.MapRef), false},
	}
}

const (
	benchNodes  = 8
	benchBlocks = 512
)

func benchAS() (*memory.AddressSpace, *memory.Region) {
	as := memory.NewAddressSpace(benchNodes, 32)
	r := as.NewRegion("bench", benchBlocks*32, func(i int64) int { return int(i % benchNodes) })
	return as, r
}

// benchDirChurn is the home-directory steady state a protocol handler
// sees per message: resolve the entry for the request's block, resolve a
// second entry (the grant/ack side touches its own block), flip a
// sharer, and (every 16th op) queue and drain one pending request — the
// transient path whose buffers come from the directory slab. One op is
// one such handler-shaped sequence; the entry lookups are the cost the
// paged table attacks.
func benchDirChurn(kind blockstate.Kind) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		as, r := benchAS()
		var dir *tempest.Directory
		if kind == blockstate.MapRef {
			dir = tempest.NewDirectoryRef(as)
		} else {
			dir = tempest.NewDirectory(as)
		}
		for i := int64(0); i < benchBlocks; i++ {
			e := dir.Entry(r.BlockAt(i))
			e.Sharers.Add(int(i) % benchNodes)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			node := i % benchNodes
			e := dir.Entry(r.BlockAt(int64(i % benchBlocks)))
			e.Owner = node
			e2 := dir.Entry(r.BlockAt(int64((i * 7) % benchBlocks)))
			if e2.Sharers.Has(node) {
				e2.Sharers.Remove(node)
			} else {
				e2.Sharers.Add(node)
			}
			if i%16 == 0 {
				dir.PushPending(e, tempest.PendReq{Req: node})
				dir.PopPending(e)
			}
		}
	}
}

// benchPresendWalkRepeat is the steady-state pre-send walk over a stable
// 512-entry schedule: iterate the cached block-ordered entry slice. One
// op is one full walk. This path must never allocate.
func benchPresendWalkRepeat(b *testing.B) {
	b.ReportAllocs()
	as, r := benchAS()
	p := schedule.NewPhase(as, 1, blockstate.Dense)
	for i := int64(0); i < benchBlocks; i++ {
		p.RecordRead(r.BlockAt(i), int(i)%benchNodes)
	}
	p.Entries()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		live := 0
		for _, e := range p.Entries() {
			if e.Mode != schedule.ModeConflict {
				live++
			}
		}
		if live != benchBlocks {
			b.Fatal(live)
		}
	}
}

// benchPresendWalkSortMap is the walk this PR replaced: schedule entries
// in a map, with every walk collecting the keys and sorting them into
// block order. Kept as the reference cost for BENCH_kernel.json.
func benchPresendWalkSortMap(b *testing.B) {
	b.ReportAllocs()
	_, r := benchAS()
	m := make(map[memory.Block]*schedule.Entry, benchBlocks)
	for i := int64(0); i < benchBlocks; i++ {
		blk := r.BlockAt(i)
		m[blk] = &schedule.Entry{Block: blk, Mode: schedule.ModeRead}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		keys := make([]memory.Block, 0, len(m))
		for blk := range m {
			keys = append(keys, blk)
		}
		sort.Slice(keys, func(a, c int) bool { return keys[a] < keys[c] })
		live := 0
		for _, blk := range keys {
			if m[blk].Mode != schedule.ModeConflict {
				live++
			}
		}
		if live != benchBlocks {
			b.Fatal(live)
		}
	}
}

// benchSchedBuild measures building one 512-block phase schedule from
// scratch — the first-iteration fault storm — plus one Entries() walk.
// One op is one full build.
func benchSchedBuild(kind blockstate.Kind) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		as, r := benchAS()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := schedule.NewPhase(as, 1, kind)
			for j := int64(0); j < benchBlocks; j++ {
				if j%3 == 0 {
					p.RecordWrite(r.BlockAt(j), int(j)%benchNodes)
				} else {
					p.RecordRead(r.BlockAt(j), int(j)%benchNodes)
				}
			}
			if len(p.Entries()) != benchBlocks {
				b.Fatal("short schedule")
			}
		}
	}
}

// benchDeferralScan is the Stache deferral shape: a sparse set of blocks
// (32 of 512) carries a packed flags byte; each op scans the active set
// in block order and churns one record (set + clear on an existing
// page). One op is one scan.
func benchDeferralScan(kind blockstate.Kind) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		as, r := benchAS()
		st := blockstate.New[uint8](as, kind)
		for i := int64(0); i < benchBlocks; i += 16 {
			v, _ := st.Ensure(r.BlockAt(i))
			*v = uint8(1 + i%3)
		}
		sum := 0
		visit := func(_ memory.Block, v *uint8) { sum += int(*v) }
		churn := r.BlockAt(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st.ForEach(visit)
			v, _ := st.Ensure(churn)
			*v = uint8(i)
			st.Remove(churn)
		}
		if sum == 0 {
			b.Fatal("empty scan")
		}
	}
}
