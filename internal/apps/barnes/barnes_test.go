package barnes

import (
	"testing"

	"presto/internal/rt"
)

func smallCfg(proto rt.ProtocolKind, bs int) Config {
	return Config{
		Machine: rt.Config{Nodes: 8, BlockSize: bs, Protocol: proto},
		Bodies:  512,
		Iters:   3,
	}
}

func TestBarnesRuns(t *testing.T) {
	r, err := Run(smallCfg(rt.ProtoStache, 32))
	if err != nil {
		t.Fatal(err)
	}
	if r.Cells == 0 {
		t.Fatal("no tree cells built")
	}
	if r.Cells < 64 || r.Cells > 2*512+256 {
		t.Fatalf("implausible cell count %d", r.Cells)
	}
	if r.Checksum == 0 {
		t.Fatal("zero checksum")
	}
	if r.Counters.ReadFaults == 0 {
		t.Fatal("no communication")
	}
}

func TestBarnesProtocolEquivalence(t *testing.T) {
	rs, err := Run(smallCfg(rt.ProtoStache, 32))
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Run(smallCfg(rt.ProtoPredictive, 32))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Checksum != rp.Checksum || rs.Cells != rp.Cells {
		t.Fatalf("results differ: stache (%v,%d) predictive (%v,%d)",
			rs.Checksum, rs.Cells, rp.Checksum, rp.Cells)
	}
}

func TestBarnesPredictiveReducesRemoteWait(t *testing.T) {
	rs, err := Run(smallCfg(rt.ProtoStache, 32))
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Run(smallCfg(rt.ProtoPredictive, 32))
	if err != nil {
		t.Fatal(err)
	}
	if rp.Breakdown.RemoteWait >= rs.Breakdown.RemoteWait {
		t.Fatalf("predictive remote wait %v >= stache %v",
			rp.Breakdown.RemoteWait, rs.Breakdown.RemoteWait)
	}
	if rp.Counters.PresendsSent == 0 {
		t.Fatal("no pre-sends")
	}
}

func TestBarnesSpatialLocalityAtLargeBlocks(t *testing.T) {
	// The paper: Barnes shows good spatial locality, so the unoptimized
	// version benefits substantially from 1024-byte blocks.
	r32, err := Run(smallCfg(rt.ProtoStache, 32))
	if err != nil {
		t.Fatal(err)
	}
	r1024, err := Run(smallCfg(rt.ProtoStache, 1024))
	if err != nil {
		t.Fatal(err)
	}
	if r1024.Counters.ReadFaults*2 >= r32.Counters.ReadFaults {
		t.Fatalf("1024B faults %d not well below 32B faults %d",
			r1024.Counters.ReadFaults, r32.Counters.ReadFaults)
	}
	if r1024.Breakdown.RemoteWait >= r32.Breakdown.RemoteWait {
		t.Fatal("large blocks did not reduce remote wait")
	}
	if r32.Checksum != r1024.Checksum {
		t.Fatalf("block size changed the answer: %v vs %v", r32.Checksum, r1024.Checksum)
	}
}

func TestBarnesSPMDBaseline(t *testing.T) {
	cfg := smallCfg(rt.ProtoUpdate, 32)
	cfg.SPMD = true
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Counters.PresendsSent == 0 {
		t.Fatal("SPMD baseline pushed no updates")
	}
	if r.Checksum == 0 {
		t.Fatal("zero checksum")
	}
}

func TestBarnesDeterministic(t *testing.T) {
	r1, err := Run(smallCfg(rt.ProtoPredictive, 32))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(smallCfg(rt.ProtoPredictive, 32))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Checksum != r2.Checksum || r1.Breakdown.Elapsed != r2.Breakdown.Elapsed {
		t.Fatal("non-deterministic run")
	}
}

func TestBarnesBodiesStayInBox(t *testing.T) {
	r, err := Run(smallCfg(rt.ProtoStache, 32))
	if err != nil {
		t.Fatal(err)
	}
	m := r.Machine
	bodies := m.AS.Regions()[0]
	for i := 0; i < 512; i++ {
		for d := 0; d < 3; d++ {
			v := m.SnapshotF64(bodies.Addr(int64(i*32 + d*8)))
			if v < -0.01 || v > 1.01 {
				t.Fatalf("body %d dim %d = %v escaped the box", i, d, v)
			}
		}
	}
	// Node count must not change the physics.
	cfg := smallCfg(rt.ProtoStache, 32)
	cfg.Machine.Nodes = 4
	r4, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rel := abs(r4.Checksum-r.Checksum) / abs(r.Checksum); rel > 1e-12 {
		t.Fatalf("checksum depends on node count: %v vs %v (rel %g)", r4.Checksum, r.Checksum, rel)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
