// Package barnes implements the paper's Barnes benchmark: a Barnes-Hut
// gravitational N-body simulation (paper §5.2; Table 1: 16384 bodies, 3
// iterations).
//
// Bodies live in a shared aggregate ordered by a space-filling curve so a
// processor's bodies are spatially clustered (as SPLASH-2 Barnes orders
// bodies). Each time step runs the paper's four compiler-identified
// parallel phases:
//
//  1. classify — owners sort their bodies by spatial region and publish
//     per-region index lists;
//  2. build — each region's builder gathers its bodies (unstructured
//     remote reads) and constructs that subtree in its own arena segment,
//     folding the center-of-mass accumulation into insertion and
//     normalizing locally (the paper's coalesced center_of_mass);
//  3. forces — every body's force is computed by a depth-first traversal
//     opening cells whose size/distance ratio exceeds theta (unstructured
//     repetitive reads — the protocol's main target);
//  4. advance — owners integrate and write new positions (owner writes).
//
// Because the tree is rebuilt each step into deterministically reused
// arena addresses and bodies move slowly, the communication pattern is
// dynamic but largely repetitive — the property the predictive protocol
// exploits (paper §1).
//
// The hand-optimized SPMD baseline (paper Figure 6, Falsafi et al.) is
// modeled by running the same program on the write-update protocol,
// restricted to the body aggregate, with explicit position pushes after
// the advance phase.
package barnes

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"presto/internal/memory"
	"presto/internal/rt"
	"presto/internal/sim"
	"presto/internal/update"
)

// Phase directive IDs (the four parallel phases of Figure 4).
const (
	PhaseClassify = 1
	PhaseBuild    = 2
	PhaseForces   = 3
	PhaseAdvance  = 4
)

// regionsPerEdge partitions the unit box into regionsPerEdge^3 spatial
// regions whose subtrees are built in parallel.
const regionsPerEdge = 4

// numRegions is the total region (subtree) count.
const numRegions = regionsPerEdge * regionsPerEdge * regionsPerEdge

// Config describes one Barnes run.
type Config struct {
	Machine rt.Config
	Bodies  int // paper: 16384
	Iters   int // paper: 3
	Seed    int64
	Theta   float64 // opening criterion; paper-era codes used ~0.5-1.0

	// SPMD selects the hand-optimized SPMD baseline: write-update
	// protocol on body positions with explicit pushes.
	SPMD bool

	// CostVisit is the modeled computation per visited tree cell.
	CostVisit sim.Time
	// CostBody is the modeled computation per body-body interaction.
	CostBody sim.Time
	// CostInsert is the modeled computation per insertion level.
	CostInsert sim.Time
	// CostClassify is the modeled per-body classification cost.
	CostClassify sim.Time
	// CostAdvance is the modeled per-body integration cost.
	CostAdvance sim.Time
}

// Defaults fills unset fields with the paper's workload.
func (c Config) Defaults() Config {
	if c.Bodies == 0 {
		c.Bodies = 16384
	}
	if c.Iters == 0 {
		c.Iters = 3
	}
	if c.Seed == 0 {
		c.Seed = 1996
	}
	if c.Theta == 0 {
		c.Theta = 0.7
	}
	if c.CostVisit == 0 {
		// Cell open test + multipole evaluation on a ~33MHz node.
		c.CostVisit = 5 * sim.Microsecond
	}
	if c.CostBody == 0 {
		c.CostBody = 8 * sim.Microsecond
	}
	if c.CostInsert == 0 {
		c.CostInsert = 1500 * sim.Nanosecond
	}
	if c.CostClassify == 0 {
		c.CostClassify = 500 * sim.Nanosecond
	}
	if c.CostAdvance == 0 {
		c.CostAdvance = 3 * sim.Microsecond
	}
	return c
}

// Result carries timing and validation data.
type Result struct {
	Machine   *rt.Machine
	Breakdown rt.Breakdown
	Counters  rt.Counters
	// Checksum sums final positions and speeds (protocol-equivalence
	// oracle).
	Checksum float64
	// Cells is the total tree cells allocated in the last step.
	Cells int
}

// Cell layout within the arena (bytes): mass, cx, cy, cz, child[0..7].
const (
	cellMass  = 0
	cellCX    = 8
	cellCY    = 16
	cellCZ    = 24
	cellChild = 32
	cellSize  = 32 + 8*8
)

// child-reference encoding: 0 = empty, odd = body index*2+1,
// even non-zero = cell address.
func bodyRef(i int) uint64    { return uint64(i)*2 + 1 }
func isBodyRef(r uint64) bool { return r&1 == 1 }
func bodyIndex(r uint64) int  { return int(r >> 1) }
func regionIndex(x, y, z float64) int {
	ix, iy, iz := coord(x), coord(y), coord(z)
	return (ix*regionsPerEdge+iy)*regionsPerEdge + iz
}

func coord(v float64) int {
	i := int(v * regionsPerEdge)
	if i < 0 {
		i = 0
	}
	if i >= regionsPerEdge {
		i = regionsPerEdge - 1
	}
	return i
}

// Run executes Barnes on a machine built from cfg.
func Run(cfg Config) (*Result, error) {
	c := cfg.Defaults()
	n := c.Bodies
	m := rt.New(c.Machine)
	m.NamePhase(PhaseClassify, "classify")
	m.NamePhase(PhaseBuild, "tree-build")
	m.NamePhase(PhaseForces, "forces")
	m.NamePhase(PhaseAdvance, "advance")
	P := m.Cfg.Nodes

	// Bodies: x, y, z, mass (one 32-byte element per body).
	bodies := m.NewArray1D("bodies", n, 4, false)
	// Per-region subtree roots, homed at their builders.
	roots := m.NewArray1D("roots", numRegions, 1, false)
	// Mailboxes: each owner's bodies sorted by region, plus per-region
	// start offsets (numRegions+1 per node); both homed at the writer.
	mail := m.NewArray1D("mail", n, 1, false)
	mailIdx := m.NewArray1D("mailidx", P*(numRegions+1), 1, false)
	// Tree cells, allocated by each region's builder in its own segment.
	// A builder needs up to ~2 cells per body in its regions; clustered
	// inputs concentrate bodies, so size every builder's segment for half
	// of all bodies landing in its regions (line storage is lazy, so
	// headroom costs nothing).
	arena := m.NewArena("cells", int64(n)*cellSize*int64(P))

	if c.SPMD {
		if u, ok := m.Proto.(*update.Update); ok {
			u.SetRegions(bodies.R.ID)
		}
	}

	// Synthetic Plummer-flavored input: a uniform background plus dense
	// clusters, sorted along a space-filling (Morton) order so that
	// index-contiguous bodies are spatially local.
	rng := rand.New(rand.NewSource(c.Seed))
	clusters := [][3]float64{{0.3, 0.4, 0.5}, {0.7, 0.6, 0.4}, {0.2, 0.7, 0.7}, {0.6, 0.3, 0.6}}
	type body struct {
		x, y, z, mass float64
	}
	bs := make([]body, n)
	for i := range bs {
		var b body
		if i%8 == 0 { // clustered eighth: deep, unbalanced subtrees
			c := clusters[(i/8)%len(clusters)]
			b = body{
				x:    clamp01(c[0] + 0.1*rng.NormFloat64()),
				y:    clamp01(c[1] + 0.1*rng.NormFloat64()),
				z:    clamp01(c[2] + 0.1*rng.NormFloat64()),
				mass: 0.5 + rng.Float64(),
			}
		} else {
			b = body{x: rng.Float64(), y: rng.Float64(), z: rng.Float64(), mass: 0.5 + rng.Float64()}
		}
		bs[i] = b
	}
	sort.Slice(bs, func(i, j int) bool { return morton(bs[i].x, bs[i].y, bs[i].z) < morton(bs[j].x, bs[j].y, bs[j].z) })

	const dt = 1e-3
	checks := make([]float64, P)
	cellCounts := make([]int, P)

	err := m.Run(func(w *rt.Worker) {
		lo, hi := bodies.MyRange(w)
		rlo, rhi := roots.MyRange(w)
		vel := make([]float64, 3*(hi-lo)) // owner-private velocities
		acc := make([]float64, 3*(hi-lo))
		myCells := []memory.Addr{}

		// Owners publish initial body data.
		w.Phase(PhaseAdvance, func() {
			for i := lo; i < hi; i++ {
				w.WriteF64(bodies.At(i, 0), bs[i].x)
				w.WriteF64(bodies.At(i, 1), bs[i].y)
				w.WriteF64(bodies.At(i, 2), bs[i].z)
				w.WriteF64(bodies.At(i, 3), bs[i].mass)
			}
			w.Compute(sim.Time(hi-lo) * c.CostAdvance)
		})

		// newCell allocates and zeroes a local tree cell.
		newCell := func() memory.Addr {
			a := arena.Alloc(w.ID, cellSize, true)
			for off := int64(0); off < cellSize; off += 8 {
				w.WriteU64(a.Add(off), 0)
			}
			myCells = append(myCells, a)
			return a
		}

		step := func(iter int) {
			// Phase 1: classify — owners bucket their bodies by region
			// and publish index lists (local reads and writes; remote
			// reads happen in the build phase).
			w.Phase(PhaseClassify, func() {
				byRegion := make([][]int, numRegions)
				for i := lo; i < hi; i++ {
					x := w.ReadF64(bodies.At(i, 0))
					y := w.ReadF64(bodies.At(i, 1))
					z := w.ReadF64(bodies.At(i, 2))
					byRegion[regionIndex(x, y, z)] = append(byRegion[regionIndex(x, y, z)], i)
					w.Compute(c.CostClassify)
				}
				pos := lo
				for r := 0; r < numRegions; r++ {
					w.WriteU64(mailIdx.At(w.ID*(numRegions+1)+r, 0), uint64(pos))
					for _, i := range byRegion[r] {
						w.WriteU64(mail.At(pos, 0), uint64(i))
						pos++
					}
				}
				w.WriteU64(mailIdx.At(w.ID*(numRegions+1)+numRegions, 0), uint64(pos))
			})

			// Phase 2: build — each builder constructs its regions'
			// subtrees from everyone's mailboxes (unstructured reads),
			// then normalizes centers of mass locally.
			w.Phase(PhaseBuild, func() {
				if iter > 0 {
					// The tree is rebuilt from scratch each step into the
					// same (deterministic) arena addresses.
					myCells = myCells[:0]
					arena.ResetNode(w.ID)
				}
				re := 1.0 / regionsPerEdge
				for r := rlo; r < rhi; r++ {
					root := newCell()
					ox := float64(r/(regionsPerEdge*regionsPerEdge)) * re
					oy := float64(r/regionsPerEdge%regionsPerEdge) * re
					oz := float64(r%regionsPerEdge) * re
					count := 0
					for src := 0; src < w.Nodes(); src++ {
						start := w.ReadU64(mailIdx.At(src*(numRegions+1)+r, 0))
						end := w.ReadU64(mailIdx.At(src*(numRegions+1)+r+1, 0))
						for k := start; k < end; k++ {
							idx := int(w.ReadU64(mail.At(int(k), 0)))
							px := w.ReadF64(bodies.At(idx, 0))
							py := w.ReadF64(bodies.At(idx, 1))
							pz := w.ReadF64(bodies.At(idx, 2))
							ms := w.ReadF64(bodies.At(idx, 3))
							insertInto(w, c, bodies, root, ox, oy, oz, re, idx, px, py, pz, ms, newCell)
							count++
						}
					}
					if count == 0 {
						w.WriteU64(roots.At(r, 0), 0)
						continue
					}
					w.WriteU64(roots.At(r, 0), uint64(root))
				}
				// Normalize centers of mass (home-only writes — the
				// paper's coalesced center_of_mass loop).
				for _, cell := range myCells {
					ms := w.ReadF64(cell.Add(cellMass))
					if ms > 0 {
						inv := 1 / ms
						w.WriteF64(cell.Add(cellCX), w.ReadF64(cell.Add(cellCX))*inv)
						w.WriteF64(cell.Add(cellCY), w.ReadF64(cell.Add(cellCY))*inv)
						w.WriteF64(cell.Add(cellCZ), w.ReadF64(cell.Add(cellCZ))*inv)
					}
					w.Compute(500 * sim.Nanosecond)
				}
			})

			// Phase 3: forces — unstructured repetitive reads of cells
			// and bodies (the predictive protocol's target).
			w.Phase(PhaseForces, func() {
				re := 1.0 / regionsPerEdge
				for i := lo; i < hi; i++ {
					px := w.ReadF64(bodies.At(i, 0))
					py := w.ReadF64(bodies.At(i, 1))
					pz := w.ReadF64(bodies.At(i, 2))
					ax, ay, az := 0.0, 0.0, 0.0

					var trav func(ref uint64, ox, oy, oz, edge float64)
					trav = func(ref uint64, ox, oy, oz, edge float64) {
						if ref == 0 {
							return
						}
						if isBodyRef(ref) {
							j := bodyIndex(ref)
							if j == i {
								return
							}
							qx := w.ReadF64(bodies.At(j, 0))
							qy := w.ReadF64(bodies.At(j, 1))
							qz := w.ReadF64(bodies.At(j, 2))
							qm := w.ReadF64(bodies.At(j, 3))
							fx, fy, fz := pairAccel(px, py, pz, qx, qy, qz, qm)
							ax += fx
							ay += fy
							az += fz
							w.Compute(c.CostBody)
							return
						}
						cell := memory.Addr(ref)
						ms := w.ReadF64(cell.Add(cellMass))
						if ms == 0 {
							return
						}
						cx := w.ReadF64(cell.Add(cellCX))
						cy := w.ReadF64(cell.Add(cellCY))
						cz := w.ReadF64(cell.Add(cellCZ))
						dx, dy, dz := cx-px, cy-py, cz-pz
						d2 := dx*dx + dy*dy + dz*dz
						w.Compute(c.CostVisit)
						if edge*edge < c.Theta*c.Theta*d2 {
							fx, fy, fz := pairAccel(px, py, pz, cx, cy, cz, ms)
							ax += fx
							ay += fy
							az += fz
							return
						}
						half := edge / 2
						for oct := 0; oct < 8; oct++ {
							child := w.ReadU64(cell.Add(cellChild + int64(oct)*8))
							if child == 0 {
								continue
							}
							cox := ox + float64(oct>>2&1)*half
							coy := oy + float64(oct>>1&1)*half
							coz := oz + float64(oct&1)*half
							trav(child, cox, coy, coz, half)
						}
					}

					for r := 0; r < numRegions; r++ {
						ref := w.ReadU64(roots.At(r, 0))
						ox := float64(r/(regionsPerEdge*regionsPerEdge)) * re
						oy := float64(r/regionsPerEdge%regionsPerEdge) * re
						oz := float64(r%regionsPerEdge) * re
						trav(ref, ox, oy, oz, re)
					}
					acc[3*(i-lo)+0] = ax
					acc[3*(i-lo)+1] = ay
					acc[3*(i-lo)+2] = az
				}
			})

			// Phase 4: advance — owners integrate and publish positions.
			w.Phase(PhaseAdvance, func() {
				for i := lo; i < hi; i++ {
					k := 3 * (i - lo)
					vel[k+0] += dt * acc[k+0]
					vel[k+1] += dt * acc[k+1]
					vel[k+2] += dt * acc[k+2]
					for d := 0; d < 3; d++ {
						a := bodies.At(i, d)
						x := w.ReadF64(a) + dt*vel[k+d]
						if x < 0 {
							x = -x
						}
						if x > 1 {
							x = 2 - x
						}
						w.WriteF64(a, x)
					}
					w.Compute(c.CostAdvance)
				}
				if c.SPMD {
					// Hand-optimized push: send fresh positions straight
					// to their consumers (write-update protocol).
					addrs := make([]memory.Addr, 0, hi-lo)
					for i := lo; i < hi; i++ {
						addrs = append(addrs, bodies.At(i, 0))
					}
					w.PushUpdates(addrs)
				}
			})
		}

		for iter := 0; iter < c.Iters; iter++ {
			step(iter)
		}

		var cs float64
		for i := lo; i < hi; i++ {
			cs += w.ReadF64(bodies.At(i, 0)) + w.ReadF64(bodies.At(i, 1)) + w.ReadF64(bodies.At(i, 2))
		}
		for _, v := range vel {
			cs += v * v
		}
		checks[w.ID] = cs
		cellCounts[w.ID] = len(myCells)
	})
	if err != nil {
		return &Result{Machine: m}, fmt.Errorf("barnes: %w", err)
	}

	var checksum float64
	cells := 0
	for i := range checks {
		checksum += checks[i]
		cells += cellCounts[i]
	}
	return &Result{
		Machine:   m,
		Breakdown: m.Breakdown(),
		Counters:  m.Counters(),
		Checksum:  checksum,
		Cells:     cells,
	}, nil
}

// insertInto is the iterative oct-tree insertion used by the build phase.
func insertInto(w *rt.Worker, c Config, bodies *rt.Array1D, root memory.Addr, ox, oy, oz, edge float64, idx int, px, py, pz, ms float64, newCell func() memory.Addr) {
	cell := root
	for depth := 0; ; depth++ {
		if depth > 64 {
			panic("barnes: insertion depth exceeded (coincident bodies?)")
		}
		w.WriteF64(cell.Add(cellMass), w.ReadF64(cell.Add(cellMass))+ms)
		w.WriteF64(cell.Add(cellCX), w.ReadF64(cell.Add(cellCX))+ms*px)
		w.WriteF64(cell.Add(cellCY), w.ReadF64(cell.Add(cellCY))+ms*py)
		w.WriteF64(cell.Add(cellCZ), w.ReadF64(cell.Add(cellCZ))+ms*pz)
		w.Compute(c.CostInsert)

		half := edge / 2
		oct := 0
		nx, ny, nz := ox, oy, oz
		if px >= ox+half {
			oct |= 4
			nx += half
		}
		if py >= oy+half {
			oct |= 2
			ny += half
		}
		if pz >= oz+half {
			oct |= 1
			nz += half
		}
		slot := cell.Add(cellChild + int64(oct)*8)
		ref := w.ReadU64(slot)
		switch {
		case ref == 0:
			w.WriteU64(slot, bodyRef(idx))
			return
		case isBodyRef(ref):
			// Split: allocate a child cell, push the resident body one
			// level down (its data was read at its own insertion, so
			// these loads hit the local cache), then continue placing
			// the current body inside the new cell.
			other := bodyIndex(ref)
			obx := w.ReadF64(bodies.At(other, 0))
			oby := w.ReadF64(bodies.At(other, 1))
			obz := w.ReadF64(bodies.At(other, 2))
			obm := w.ReadF64(bodies.At(other, 3))
			nc := newCell()
			w.WriteU64(slot, uint64(nc))
			insertInto(w, c, bodies, nc, nx, ny, nz, half, other, obx, oby, obz, obm, newCell)
			cell, edge = nc, half
			ox, oy, oz = nx, ny, nz
		default:
			cell, edge = memory.Addr(ref), half
			ox, oy, oz = nx, ny, nz
		}
	}
}

// pairAccel returns the acceleration on p due to a point mass qm at q,
// with Plummer softening.
func pairAccel(px, py, pz, qx, qy, qz, qm float64) (ax, ay, az float64) {
	dx, dy, dz := qx-px, qy-py, qz-pz
	d2 := dx*dx + dy*dy + dz*dz + 1e-6
	inv := qm / (d2 * math.Sqrt(d2))
	return dx * inv, dy * inv, dz * inv
}

func clamp01(v float64) float64 {
	if v < 0.01 {
		return 0.01
	}
	if v > 0.99 {
		return 0.99
	}
	return v
}

func morton(x, y, z float64) uint64 {
	const bits = 10
	xi := uint64(x * (1 << bits))
	yi := uint64(y * (1 << bits))
	zi := uint64(z * (1 << bits))
	var m uint64
	for b := bits - 1; b >= 0; b-- {
		m = m<<3 | (xi>>uint(b)&1)<<2 | (yi>>uint(b)&1)<<1 | (zi >> uint(b) & 1)
	}
	return m
}
