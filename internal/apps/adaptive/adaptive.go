// Package adaptive implements the paper's Adaptive benchmark: a
// structured adaptive mesh relaxation computing electric potentials in a
// box (paper §5.1; Table 1: 128x128 mesh, 100 iterations).
//
// The program imposes a mesh over the box and computes the potential at
// each point by averaging its four neighbors; where the gradient is steep
// it subdivides the cell, attaching a dynamically allocated sub-grid (the
// paper's quad-tree, one level here). Each iteration performs two
// half-sweeps over double-buffered cell values; refined cells additionally
// update their sub-values, and neighbors of a refined cell read the facing
// sub-values instead of the coarse value — the "data movement from
// neighbor reads in the quad tree" the predictive protocol optimizes.
// Refinement grows incrementally as the solution front advances, which
// exercises the protocol's incremental schedules. Load imbalance from
// clustered refinement produces the uneven shared-data wait the paper
// notes (§5.1).
package adaptive

import (
	"fmt"

	"presto/internal/memory"
	"presto/internal/rt"
	"presto/internal/sim"
)

// Phase directive IDs.
const (
	PhaseInit   = 1 // initial condition (owner writes)
	PhaseSweepA = 2 // cur -> next half-sweep
	PhaseSweepB = 3 // next -> cur half-sweep
	PhaseRefine = 4 // gradient test + subdivision (owner writes)
)

// Config describes one Adaptive run.
type Config struct {
	Machine rt.Config
	Size    int // mesh edge; paper: 128
	Iters   int // paper: 100
	Seed    int64

	// RefineEvery is the interval (iterations) between refinement passes.
	RefineEvery int
	// MaxRefineFrac caps the fraction of cells that may refine.
	MaxRefineFrac float64

	// CostCell is the modeled computation per coarse cell update.
	CostCell sim.Time
	// CostSub is the modeled computation per refined cell's sub-grid
	// update (per half-sweep).
	CostSub sim.Time
}

// Defaults fills unset fields with the paper's workload.
func (c Config) Defaults() Config {
	if c.Size == 0 {
		c.Size = 128
	}
	if c.Iters == 0 {
		c.Iters = 100
	}
	if c.RefineEvery == 0 {
		c.RefineEvery = 5
	}
	if c.MaxRefineFrac == 0 {
		c.MaxRefineFrac = 0.25
	}
	if c.CostCell == 0 {
		// Coarse 4-point stencil with quad-tree presence checks on a
		// ~33MHz node.
		c.CostCell = 10 * sim.Microsecond
	}
	if c.CostSub == 0 {
		c.CostSub = 25 * sim.Microsecond
	}
	return c
}

// Result carries timing and validation data.
type Result struct {
	Machine   *rt.Machine
	Breakdown rt.Breakdown
	Counters  rt.Counters
	// Checksum is the sum of all coarse cell values after the run.
	Checksum float64
	// Refined is the final number of refined cells.
	Refined int
}

// Run executes Adaptive on a machine built from cfg.
func Run(cfg Config) (*Result, error) {
	c := cfg.Defaults()
	n := c.Size
	m := rt.New(c.Machine)
	m.NamePhase(PhaseInit, "init")
	m.NamePhase(PhaseSweepA, "sweep-a")
	m.NamePhase(PhaseSweepB, "sweep-b")
	m.NamePhase(PhaseRefine, "refine")

	cur := m.NewGrid2D("cur", n, n, 1, rt.RowBlock)
	next := m.NewGrid2D("next", n, n, 1, rt.RowBlock)
	// Per-cell quad-tree metadata: one word, 0 when unrefined, otherwise
	// the sub-grid's (8-byte-aligned) arena address with the low bit set.
	meta := m.NewGrid2D("meta", n, n, 1, rt.RowBlock)
	// Sub-grids: two parity buffers of 4 sub-values each (32 bytes per
	// parity), allocated from per-parity arenas so that (a) one sweep's
	// sources and targets never share a cache block and (b) sub-grids of
	// cells refined together are contiguous, which lets the pre-send
	// coalesce them into bulk messages.
	maxRefined := int(float64(n*n)*c.MaxRefineFrac) + n
	perCell := int64(64)
	if bs := int64(m.Cfg.BlockSize); bs > perCell {
		perCell = bs
	}
	sub0 := m.NewArena("quadtree0", int64(maxRefined)*perCell)
	sub1 := m.NewArena("quadtree1", int64(maxRefined)*perCell)

	refinedCount := make([]int, c.Machine.Nodes)
	sums := make([]float64, c.Machine.Nodes)

	// boundary returns the fixed potential outside the mesh: the west
	// wall is held at 1 (the "hot" electrode), the rest at 0.
	boundary := func(i, j int) float64 {
		if j < 0 {
			return 1.0
		}
		return 0.0
	}

	err := m.Run(func(w *rt.Worker) {
		lo, hi := cur.MyRows(w)

		// readMeta returns whether cell (i,j) is refined and the address
		// of its parity-0 sub-buffer (parity 1 lives in the twin arena at
		// the same offset).
		readMeta := func(i, j int) (bool, memory.Addr) {
			v := w.ReadU64(meta.At(i, j, 0))
			if v == 0 {
				return false, 0
			}
			return true, memory.Addr(v &^ 1)
		}

		// subAt returns the sub-buffer address of the given parity, using
		// the twin arenas' identical layout.
		subAt := func(sub memory.Addr, parity int) memory.Addr {
			if parity == 0 {
				return sub
			}
			return sub1.R.Addr(sub.Offset())
		}

		// effective reads the neighbor value seen from direction side
		// (0=N,1=S,2=E,3=W relative to the reader): facing sub-values for
		// refined cells, the coarse value otherwise. srcGrid/parity select
		// the half-sweep's source buffer.
		effective := func(srcGrid *rt.Grid2D, parity int, i, j, side int) float64 {
			if i < 0 || i >= n || j < 0 || j >= n {
				return boundary(i, j)
			}
			refined, sub := readMeta(i, j)
			if !refined {
				return w.ReadF64(srcGrid.At(i, j, 0))
			}
			// Sub-value layout within a parity buffer: [NW NE SW SE].
			base := subAt(sub, parity)
			var a, b memory.Addr
			switch side {
			case 0: // reader is south of (i,j): read its S edge
				a, b = base.Add(16), base.Add(24)
			case 1: // reader is north: read its N edge
				a, b = base.Add(0), base.Add(8)
			case 2: // reader is west of (i,j): read its W edge
				a, b = base.Add(0), base.Add(16)
			default: // reader is east: read its E edge
				a, b = base.Add(8), base.Add(24)
			}
			return 0.5 * (w.ReadF64(a) + w.ReadF64(b))
		}

		// sweep performs one half-sweep src->dst; parity selects the
		// sub-value source buffer (writes go to 1-parity).
		sweep := func(src, dst *rt.Grid2D, parity int) {
			for i := lo; i < hi; i++ {
				for j := 0; j < n; j++ {
					vN := effective(src, parity, i-1, j, 0)
					vS := effective(src, parity, i+1, j, 1)
					vW := effective(src, parity, i, j-1, 2)
					vE := effective(src, parity, i, j+1, 3)
					avg := 0.25 * (vN + vS + vW + vE)
					w.WriteF64(dst.At(i, j, 0), avg)
					w.Compute(c.CostCell)
					if refined, sub := readMeta(i, j); refined {
						// Update own sub-values into the other parity.
						out := subAt(sub, 1-parity)
						own := w.ReadF64(src.At(i, j, 0))
						w.WriteF64(out.Add(0), 0.5*own+0.25*(vN+vW))
						w.WriteF64(out.Add(8), 0.5*own+0.25*(vN+vE))
						w.WriteF64(out.Add(16), 0.5*own+0.25*(vS+vW))
						w.WriteF64(out.Add(24), 0.5*own+0.25*(vS+vE))
						w.Compute(c.CostSub)
					}
				}
			}
		}

		// Initial condition: zero interior, metadata cleared.
		w.Phase(PhaseInit, func() {
			for i := lo; i < hi; i++ {
				for j := 0; j < n; j++ {
					w.WriteF64(cur.At(i, j, 0), 0)
					w.WriteF64(next.At(i, j, 0), 0)
					w.WriteU64(meta.At(i, j, 0), 0)
				}
			}
			w.Compute(sim.Time((hi-lo)*n) * 200 * sim.Nanosecond)
		})

		myRefined := 0
		budget := maxRefined / w.Nodes()
		for it := 0; it < c.Iters; it++ {
			w.Phase(PhaseSweepA, func() { sweep(cur, next, 0) })
			w.Phase(PhaseSweepB, func() { sweep(next, cur, 1) })

			if (it+1)%c.RefineEvery != 0 {
				continue
			}
			// Refinement pass: owners subdivide steep cells. The
			// threshold tightens as the mesh relaxes, so the refined
			// region grows incrementally (adaptive pattern).
			thresh := 0.08 * (1 - float64(it)/float64(c.Iters))
			w.Phase(PhaseRefine, func() {
				for i := lo; i < hi; i++ {
					for j := 0; j < n; j++ {
						if myRefined >= budget {
							break
						}
						if refined, _ := readMeta(i, j); refined {
							continue
						}
						own := w.ReadF64(cur.At(i, j, 0))
						g := 0.0
						for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
							ni, nj := i+d[0], j+d[1]
							var nv float64
							if ni < 0 || ni >= n || nj < 0 || nj >= n {
								nv = boundary(ni, nj)
							} else {
								nv = w.ReadF64(cur.At(ni, nj, 0))
							}
							if diff := nv - own; diff > g {
								g = diff
							} else if -diff > g {
								g = -diff
							}
						}
						w.Compute(800 * sim.Nanosecond)
						if g <= thresh {
							continue
						}
						sub := sub0.Alloc(w.ID, 32, true)
						subB := sub1.Alloc(w.ID, 32, true)
						if subB.Offset() != sub.Offset() {
							panic("adaptive: twin arenas diverged")
						}
						for k := int64(0); k < 4; k++ {
							w.WriteF64(sub.Add(8*k), own)
							w.WriteF64(subB.Add(8*k), own)
						}
						w.WriteU64(meta.At(i, j, 0), uint64(sub)|1)
						myRefined++
						w.Compute(3 * sim.Microsecond)
					}
				}
			})
		}

		var s float64
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				s += w.ReadF64(cur.At(i, j, 0))
			}
		}
		sums[w.ID] = s
		refinedCount[w.ID] = myRefined
	})
	if err != nil {
		return &Result{Machine: m}, fmt.Errorf("adaptive: %w", err)
	}

	var checksum float64
	var refined int
	for i := range sums {
		checksum += sums[i]
		refined += refinedCount[i]
	}
	return &Result{
		Machine:   m,
		Breakdown: m.Breakdown(),
		Counters:  m.Counters(),
		Checksum:  checksum,
		Refined:   refined,
	}, nil
}
