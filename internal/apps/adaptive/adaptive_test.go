package adaptive

import (
	"testing"

	"presto/internal/rt"
)

func smallCfg(proto rt.ProtocolKind, bs int) Config {
	return Config{
		Machine:     rt.Config{Nodes: 8, BlockSize: bs, Protocol: proto},
		Size:        32,
		Iters:       12,
		RefineEvery: 3,
	}
}

func TestAdaptiveRuns(t *testing.T) {
	r, err := Run(smallCfg(rt.ProtoStache, 32))
	if err != nil {
		t.Fatal(err)
	}
	if r.Checksum <= 0 {
		t.Fatalf("checksum = %v; the hot wall should raise potentials", r.Checksum)
	}
	if r.Refined == 0 {
		t.Fatal("no cells refined; gradient threshold mis-tuned")
	}
	if r.Counters.ReadFaults == 0 {
		t.Fatal("no boundary communication")
	}
}

func TestAdaptiveProtocolEquivalence(t *testing.T) {
	rs, err := Run(smallCfg(rt.ProtoStache, 32))
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Run(smallCfg(rt.ProtoPredictive, 32))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Checksum != rp.Checksum || rs.Refined != rp.Refined {
		t.Fatalf("results differ: stache (%v,%d) predictive (%v,%d)",
			rs.Checksum, rs.Refined, rp.Checksum, rp.Refined)
	}
}

func TestAdaptivePredictiveReducesRemoteWait(t *testing.T) {
	rs, err := Run(smallCfg(rt.ProtoStache, 32))
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Run(smallCfg(rt.ProtoPredictive, 32))
	if err != nil {
		t.Fatal(err)
	}
	if rp.Breakdown.RemoteWait >= rs.Breakdown.RemoteWait {
		t.Fatalf("predictive remote wait %v >= stache %v",
			rp.Breakdown.RemoteWait, rs.Breakdown.RemoteWait)
	}
	if rp.Counters.PresendsSent == 0 {
		t.Fatal("no pre-sends")
	}
}

func TestAdaptiveIncrementalSchedules(t *testing.T) {
	// Refinement adds sub-grids over time; later iterations must fault on
	// the new blocks once (incremental schedule growth), after which the
	// pre-send covers them too. We check that predictive total faults stay
	// well below stache's (which re-faults every iteration).
	rs, err := Run(smallCfg(rt.ProtoStache, 32))
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Run(smallCfg(rt.ProtoPredictive, 32))
	if err != nil {
		t.Fatal(err)
	}
	if rp.Counters.ReadFaults*3 >= rs.Counters.ReadFaults {
		t.Fatalf("predictive faults %d not well below stache %d",
			rp.Counters.ReadFaults, rs.Counters.ReadFaults)
	}
}

func TestAdaptiveDeterministic(t *testing.T) {
	r1, err := Run(smallCfg(rt.ProtoPredictive, 32))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(smallCfg(rt.ProtoPredictive, 32))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Checksum != r2.Checksum || r1.Breakdown.Elapsed != r2.Breakdown.Elapsed {
		t.Fatal("non-deterministic run")
	}
}

func TestAdaptiveBlockSizes(t *testing.T) {
	// Larger blocks exploit the row-contiguous layout: fewer faults for
	// the unoptimized version (the paper's block-size tradeoff).
	r32, err := Run(smallCfg(rt.ProtoStache, 32))
	if err != nil {
		t.Fatal(err)
	}
	r256, err := Run(smallCfg(rt.ProtoStache, 256))
	if err != nil {
		t.Fatal(err)
	}
	if r256.Counters.ReadFaults >= r32.Counters.ReadFaults {
		t.Fatalf("256B faults %d >= 32B faults %d", r256.Counters.ReadFaults, r32.Counters.ReadFaults)
	}
	if r32.Checksum != r256.Checksum {
		t.Fatalf("block size changed the answer: %v vs %v", r32.Checksum, r256.Checksum)
	}
}

func TestAdaptivePhysicalBounds(t *testing.T) {
	// The potential is a convex combination of boundary values in [0,1],
	// so every interior cell must stay within [0,1] and the hot wall must
	// raise nearby cells above the far side.
	r, err := Run(smallCfg(rt.ProtoStache, 32))
	if err != nil {
		t.Fatal(err)
	}
	m := r.Machine
	n := 32
	grid := m.AS.Regions()[0] // "cur"
	var nearWall, farWall float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := m.SnapshotF64(grid.Addr(int64(i*n+j) * 8))
			if v < 0 || v > 1 {
				t.Fatalf("cell (%d,%d) = %v outside [0,1]", i, j, v)
			}
			if j == 1 {
				nearWall += v
			}
			if j == n-2 {
				farWall += v
			}
		}
	}
	if nearWall <= farWall {
		t.Fatalf("potential not decaying from the hot wall: near=%v far=%v", nearWall, farWall)
	}
}
