package unstructured

import (
	"testing"

	"presto/internal/check"
	"presto/internal/rt"
)

func cfg(s Strategy, adaptEvery int) Config {
	return Config{
		Machine:    rt.Config{Nodes: 8, BlockSize: 32},
		Strategy:   s,
		Primal:     512,
		Dual:       512,
		Edges:      4,
		Iters:      10,
		AdaptEvery: adaptEvery,
	}
}

func TestStrategiesAgree(t *testing.T) {
	for _, adapt := range []int{0, 3} {
		var ref float64
		for _, s := range []Strategy{Plain, Predictive, InspectorExecutor} {
			r, err := Run(cfg(s, adapt))
			if err != nil {
				t.Fatalf("%s: %v", s, err)
			}
			if r.Checksum == 0 {
				t.Fatalf("%s: zero checksum", s)
			}
			if ref == 0 {
				ref = r.Checksum
			} else if r.Checksum != ref {
				t.Fatalf("%s (adapt=%d): checksum %v != %v", s, adapt, r.Checksum, ref)
			}
			if vs := check.Machine(r.Machine); len(vs) > 0 {
				t.Fatalf("%s: coherence: %s", s, check.Report(vs))
			}
		}
	}
}

func TestStaticPatternBothOptimizationsWork(t *testing.T) {
	plain, err := Run(cfg(Plain, 0))
	if err != nil {
		t.Fatal(err)
	}
	pred, err := Run(cfg(Predictive, 0))
	if err != nil {
		t.Fatal(err)
	}
	ie, err := Run(cfg(InspectorExecutor, 0))
	if err != nil {
		t.Fatal(err)
	}
	if pred.Breakdown.RemoteWait >= plain.Breakdown.RemoteWait {
		t.Fatalf("predictive remote wait %v >= plain %v", pred.Breakdown.RemoteWait, plain.Breakdown.RemoteWait)
	}
	if ie.Counters.ReadFaults >= plain.Counters.ReadFaults {
		t.Fatalf("IE faults %d >= plain %d (gather should prefetch)", ie.Counters.ReadFaults, plain.Counters.ReadFaults)
	}
	if pred.Breakdown.Elapsed >= plain.Breakdown.Elapsed {
		t.Fatal("predictive not faster than plain on a static pattern")
	}
	if ie.Breakdown.Elapsed >= plain.Breakdown.Elapsed {
		t.Fatal("inspector-executor not faster than plain on a static pattern")
	}
	// With no adaptation the inspector runs exactly once per node.
	if ie.Inspections != 8 {
		t.Fatalf("inspections = %d, want 8", ie.Inspections)
	}
}

func TestAdaptivePatternReinspects(t *testing.T) {
	ie, err := Run(cfg(InspectorExecutor, 3))
	if err != nil {
		t.Fatal(err)
	}
	// 10 iterations, adapt every 3 => epochs at 3,6,9 => 4 inspections
	// per node.
	if ie.Inspections != 8*4 {
		t.Fatalf("inspections = %d, want 32", ie.Inspections)
	}
}

func TestAdaptiveChurnFavorsIncrementalSchedules(t *testing.T) {
	// Under churn, the predictive protocol adds new blocks incrementally,
	// while the inspector pays a full re-analysis each epoch. The paper's
	// §2 argument: incremental schedules are necessary for adaptive
	// applications.
	c := cfg(Predictive, 2)
	c.Iters = 16
	pred, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	c.Strategy = InspectorExecutor
	ie, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	c.Strategy = Plain
	plain, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Breakdown.Elapsed >= plain.Breakdown.Elapsed {
		t.Fatal("predictive lost its advantage under churn")
	}
	// The inspector's repeated analysis cost must be visible as extra
	// compute relative to its static-pattern run.
	if ie.Breakdown.Compute <= pred.Breakdown.Compute {
		t.Fatalf("IE compute %v <= predictive %v; inspection cost missing",
			ie.Breakdown.Compute, pred.Breakdown.Compute)
	}
}

func TestDeterministic(t *testing.T) {
	r1, err := Run(cfg(InspectorExecutor, 3))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg(InspectorExecutor, 3))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Checksum != r2.Checksum || r1.Breakdown.Elapsed != r2.Breakdown.Elapsed {
		t.Fatal("non-deterministic")
	}
}
