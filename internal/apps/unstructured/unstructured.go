// Package unstructured implements an irregular bipartite-mesh kernel —
// the paper's Figure 3 workload (an unstructured mesh update that reads
// the dual mesh through per-element edge lists) — and uses it to compare
// the predictive protocol against the paper's closest related work, the
// CHAOS-style Inspector-Executor approach (§2).
//
// Each primal element holds E edge references into the dual mesh.
// Every iteration the duals are updated by their owners, then each primal
// gathers its duals' values through the indirection and relaxes. The
// three execution strategies are:
//
//   - plain Stache (every remote dual read faults);
//   - the predictive protocol (faults in one iteration build the
//     schedule; later iterations are pre-sent) — fully automatic;
//   - Inspector-Executor: an app-level inspector scans the edge lists and
//     builds a communication schedule (charged compute time), and an
//     executor issues bulk gathers before each compute phase. The
//     schedule is reused while the edges are unchanged (Ponnusamy et
//     al.); whenever the mesh adapts, the inspector must re-run.
//
// EdgeChurn rotates a fraction of edges every AdaptEvery iterations,
// reproducing the adaptive-application scenario where the paper argues
// incremental schedules beat rebuild-from-scratch inspection (§2, §3.3).
package unstructured

import (
	"fmt"
	"math/rand"

	"presto/internal/memory"
	"presto/internal/rt"
	"presto/internal/sim"
)

// Strategy selects the communication strategy.
type Strategy string

// Strategies.
const (
	// Plain runs on the write-invalidate protocol with no optimization.
	Plain Strategy = "plain"
	// Predictive runs on the paper's predictive protocol.
	Predictive Strategy = "predictive"
	// InspectorExecutor runs on Stache with app-level inspection and
	// bulk-gather execution.
	InspectorExecutor Strategy = "inspector"
)

// Phase directive IDs.
const (
	PhaseDual   = 1 // owners update dual values
	PhasePrimal = 2 // primal relax via indirection (unstructured reads)
)

// Config describes one run.
type Config struct {
	Machine  rt.Config
	Strategy Strategy

	Primal int // primal elements
	Dual   int // dual elements
	Edges  int // edges per primal element
	Iters  int
	Seed   int64

	// AdaptEvery > 0 rotates EdgeChurn of each node's edges every
	// AdaptEvery iterations (the adaptive scenario).
	AdaptEvery int
	// EdgeChurn is the fraction of edges rewired per adaptation.
	EdgeChurn float64

	// CostEdge is the modeled computation per edge relaxation.
	CostEdge sim.Time
	// CostInspectEdge is the inspector's per-edge analysis cost.
	CostInspectEdge sim.Time
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.Strategy == "" {
		c.Strategy = Plain
	}
	if c.Primal == 0 {
		c.Primal = 2048
	}
	if c.Dual == 0 {
		c.Dual = 2048
	}
	if c.Edges == 0 {
		c.Edges = 6
	}
	if c.Iters == 0 {
		c.Iters = 20
	}
	if c.Seed == 0 {
		c.Seed = 1996
	}
	if c.EdgeChurn == 0 {
		// "In adaptive problems, communication changes frequently, but
		// incremental changes between iterations are small" (paper §1).
		c.EdgeChurn = 0.03
	}
	if c.CostEdge == 0 {
		c.CostEdge = 2 * sim.Microsecond
	}
	if c.CostInspectEdge == 0 {
		// CHAOS-style inspection translates and dedups every reference
		// and rebuilds the schedule — "typically expensive" (paper §2);
		// ~100 instructions per reference on a ~33MHz node.
		c.CostInspectEdge = 3 * sim.Microsecond
	}
	return c
}

// machineProtocol maps the strategy to a coherence protocol.
func (c Config) machineProtocol() rt.ProtocolKind {
	if c.Strategy == Predictive {
		return rt.ProtoPredictive
	}
	return rt.ProtoStache
}

// Result carries timing and validation data.
type Result struct {
	Machine   *rt.Machine
	Breakdown rt.Breakdown
	Counters  rt.Counters
	// Checksum sums the final primal values.
	Checksum float64
	// Inspections counts inspector runs (InspectorExecutor only).
	Inspections int
}

// Run executes the kernel under cfg.
func Run(cfg Config) (*Result, error) {
	c := cfg.Defaults()
	m := rt.New(rt.Config{
		Nodes:     c.Machine.Nodes,
		BlockSize: c.Machine.BlockSize,
		Protocol:  c.machineProtocol(),
		Net:       c.Machine.Net,
		Trace:     c.Machine.Trace,
		Sink:      c.Machine.Sink,
		MaxEvents: c.Machine.MaxEvents,
	})
	m.NamePhase(PhaseDual, "dual-update")
	m.NamePhase(PhasePrimal, "primal-relax")
	P := m.Cfg.Nodes

	primal := m.NewArray1D("primal", c.Primal, 1, false)
	dual := m.NewArray1D("dual", c.Dual, 1, false)

	// Edge lists: mostly-local with a remote tail, like a partitioned
	// irregular mesh. Edges are private to each owner in the C** program
	// (indirection arrays are node-local in the kernel), so they live in
	// host memory.
	rng := rand.New(rand.NewSource(c.Seed))
	edges := make([][]int, c.Primal)
	for i := range edges {
		edges[i] = make([]int, c.Edges)
		for k := range edges[i] {
			if rng.Float64() < 0.6 {
				// Local-ish: a dual near the primal's position.
				edges[i][k] = (i + rng.Intn(32) - 16 + c.Dual) % c.Dual
			} else {
				edges[i][k] = rng.Intn(c.Dual)
			}
		}
	}
	// Pre-plan edge rewires so every strategy sees identical meshes.
	rewires := planRewires(c, edges)

	sums := make([]float64, P)
	inspections := make([]int, P)

	err := m.Run(func(w *rt.Worker) {
		plo, phi := primal.MyRange(w)
		dlo, dhi := dual.MyRange(w)

		// Inspector state: the set of addresses this node's executor must
		// gather, valid while inspectedAt matches the current mesh epoch.
		var gatherList []memory.Addr
		inspectedAt := -1

		inspect := func(epoch int) {
			seen := map[int]bool{}
			gatherList = gatherList[:0]
			for i := plo; i < phi; i++ {
				for _, d := range edges[i] {
					if !seen[d] {
						seen[d] = true
						if dual.Owner(d) != w.ID {
							gatherList = append(gatherList, dual.At(d, 0))
						}
					}
				}
			}
			w.Compute(sim.Time((phi-plo)*c.Edges) * c.CostInspectEdge)
			inspectedAt = epoch
			inspections[w.ID]++
		}

		epoch := 0
		for it := 0; it < c.Iters; it++ {
			// Adapt the mesh: rewire the planned edges for this iteration
			// (identical across strategies; applied redundantly by every
			// worker to its own copy of the host-side lists).
			if rw := rewires[it]; len(rw) > 0 {
				for _, r := range rw {
					edges[r.primal][r.slot] = r.newDual
				}
				epoch++
			}

			w.Phase(PhaseDual, func() {
				for d := dlo; d < dhi; d++ {
					v := float64(d%97)*0.01 + float64(it)*0.001
					w.WriteF64(dual.At(d, 0), v)
				}
				w.Compute(sim.Time(dhi-dlo) * 300 * sim.Nanosecond)
			})

			if c.Strategy == InspectorExecutor {
				// Executor: re-inspect if the mesh changed, then gather
				// the schedule in bulk before computing.
				if inspectedAt != epoch {
					inspect(epoch)
				}
				w.Gather(gatherList)
			}

			w.Phase(PhasePrimal, func() {
				for i := plo; i < phi; i++ {
					acc := 0.0
					for _, d := range edges[i] {
						acc += w.ReadF64(dual.At(d, 0))
					}
					w.WriteF64(primal.At(i, 0), acc/float64(c.Edges))
					w.Compute(sim.Time(c.Edges) * c.CostEdge)
				}
			})
		}

		var s float64
		for i := plo; i < phi; i++ {
			s += w.ReadF64(primal.At(i, 0))
		}
		sums[w.ID] = s
	})
	if err != nil {
		return &Result{Machine: m}, fmt.Errorf("unstructured: %w", err)
	}

	var checksum float64
	insp := 0
	for i := range sums {
		checksum += sums[i]
		insp += inspections[i]
	}
	return &Result{
		Machine:     m,
		Breakdown:   m.Breakdown(),
		Counters:    m.Counters(),
		Checksum:    checksum,
		Inspections: insp,
	}, nil
}

type rewire struct {
	primal, slot, newDual int
}

// planRewires precomputes deterministic edge mutations per iteration.
func planRewires(c Config, edges [][]int) [][]rewire {
	out := make([][]rewire, c.Iters)
	if c.AdaptEvery <= 0 {
		return out
	}
	rng := rand.New(rand.NewSource(c.Seed + 7))
	per := int(float64(c.Primal*c.Edges) * c.EdgeChurn)
	for it := c.AdaptEvery; it < c.Iters; it += c.AdaptEvery {
		rw := make([]rewire, 0, per)
		for k := 0; k < per; k++ {
			rw = append(rw, rewire{
				primal:  rng.Intn(c.Primal),
				slot:    rng.Intn(c.Edges),
				newDual: rng.Intn(c.Dual),
			})
		}
		out[it] = rw
	}
	return out
}
