package water

import (
	"math"
	"testing"

	"presto/internal/rt"
)

func smallCfg(proto rt.ProtocolKind, bs int) Config {
	return Config{
		Machine:   rt.Config{Nodes: 8, BlockSize: bs, Protocol: proto},
		Molecules: 64,
		Steps:     4,
	}
}

func TestWaterRunsStache(t *testing.T) {
	r, err := Run(smallCfg(rt.ProtoStache, 32))
	if err != nil {
		t.Fatal(err)
	}
	if r.Breakdown.Elapsed <= 0 || r.Breakdown.Compute <= 0 {
		t.Fatalf("degenerate breakdown %+v", r.Breakdown)
	}
	if r.Counters.ReadFaults == 0 {
		t.Fatal("expected remote position reads to fault")
	}
	if r.Energy == 0 {
		t.Fatal("energy checksum is zero")
	}
}

func TestWaterProtocolEquivalence(t *testing.T) {
	rs, err := Run(smallCfg(rt.ProtoStache, 32))
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Run(smallCfg(rt.ProtoPredictive, 32))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Energy != rp.Energy {
		t.Fatalf("energy differs: stache %v predictive %v", rs.Energy, rp.Energy)
	}
}

func TestWaterPredictiveReducesRemoteWait(t *testing.T) {
	rs, err := Run(smallCfg(rt.ProtoStache, 32))
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Run(smallCfg(rt.ProtoPredictive, 32))
	if err != nil {
		t.Fatal(err)
	}
	if rp.Breakdown.RemoteWait >= rs.Breakdown.RemoteWait {
		t.Fatalf("predictive remote wait %v >= stache %v",
			rp.Breakdown.RemoteWait, rs.Breakdown.RemoteWait)
	}
	if rp.Counters.PresendsSent == 0 {
		t.Fatal("no pre-sends")
	}
	// The pattern is static: after the recording iteration the schedule
	// should satisfy nearly all position reads, so steady-state faults
	// must drop well below Stache's.
	if rp.Counters.ReadFaults*2 >= rs.Counters.ReadFaults {
		t.Fatalf("predictive read faults %d not well below stache %d",
			rp.Counters.ReadFaults, rs.Counters.ReadFaults)
	}
}

func TestWaterDeterministic(t *testing.T) {
	r1, err := Run(smallCfg(rt.ProtoPredictive, 32))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(smallCfg(rt.ProtoPredictive, 32))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Energy != r2.Energy || r1.Breakdown.Elapsed != r2.Breakdown.Elapsed {
		t.Fatalf("non-deterministic: %v/%v vs %v/%v",
			r1.Energy, r1.Breakdown.Elapsed, r2.Energy, r2.Breakdown.Elapsed)
	}
}

func TestWaterLargerBlocksFewerFaults(t *testing.T) {
	r32, err := Run(smallCfg(rt.ProtoStache, 32))
	if err != nil {
		t.Fatal(err)
	}
	r128, err := Run(smallCfg(rt.ProtoStache, 128))
	if err != nil {
		t.Fatal(err)
	}
	if r128.Counters.ReadFaults >= r32.Counters.ReadFaults {
		t.Fatalf("128B faults %d >= 32B faults %d (spatial locality should help)",
			r128.Counters.ReadFaults, r32.Counters.ReadFaults)
	}
}

func TestWaterEnergyFiniteAndStable(t *testing.T) {
	// The softened pair force and tiny time step keep the system tame:
	// the checksum must be finite and independent of node count.
	r8, err := Run(smallCfg(rt.ProtoStache, 32))
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(r8.Energy) || math.IsInf(r8.Energy, 0) {
		t.Fatalf("energy = %v", r8.Energy)
	}
	cfg := smallCfg(rt.ProtoStache, 32)
	cfg.Machine.Nodes = 4
	r4, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Partitioning changes the floating-point summation order of the
	// per-node checksum partials, so compare with a tight relative
	// tolerance.
	if rel := math.Abs(r4.Energy-r8.Energy) / math.Abs(r8.Energy); rel > 1e-12 {
		t.Fatalf("energy depends on node count: %v vs %v (rel %g)", r4.Energy, r8.Energy, rel)
	}
}
